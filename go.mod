module threading

go 1.23
