GO ?= go

.PHONY: all build test race race-sched vet lint lint-fix bench-smoke bench-loopdist bench-scaling bench-record bench-gate serve-smoke serve-sweep metrics-smoke trace-smoke clean

all: build vet lint test bench-gate serve-smoke metrics-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-detect just the scheduler hot paths (work stealing, deques,
# shared sched plumbing, the futures join paths the help-first work
# leans on, and the shard resolver's routing/drain machinery) — the
# focused loop for partitioner and balancer work.
race-sched:
	$(GO) test -race -count=2 ./internal/worksteal/... ./internal/deque/... ./internal/sched/... ./internal/futures/... ./internal/shard/...

vet:
	$(GO) vet ./...

# threadvet: the repo's own go/analysis-style suite enforcing the
# runtimes' concurrency contracts (joinleak, ctxdrop, lockspawn,
# atomicmix, grainconst, legacyopts, lockorder, blockingtask,
# racecapture, handlereuse). Fails on any unsuppressed diagnostic.
lint:
	$(GO) run ./cmd/threadvet ./...

# Apply threadvet's suggested fixes in place (ctxdrop call rewrites,
# redundant-Close deletion, ...) and report the findings that need a
# human. Applying twice is a no-op.
lint-fix:
	$(GO) run ./cmd/threadvet -fix ./...

# A fast, single-repetition pass over two figures — enough to catch a
# harness regression without a full sweep. The raw samples land in
# BENCH_smoke.json (benchgate schema), so even the smoke run leaves a
# compare-able artifact.
bench-smoke:
	$(GO) run ./cmd/threadbench -fig fig1,fig5 -threads 1,2 -reps 1 -scale 0.1 -out BENCH_smoke.json

# Regenerate the eager-vs-lazy loop-distribution measurements
# (benchgate schema; feed two runs to `benchgate compare`).
bench-loopdist:
	$(GO) run ./cmd/loopdist

# pSTL-Bench-style scaling suite: the flat loops under omp_for and
# eager cilk_for across a 1..GOMAXPROCS thread sweep, once at fixed
# total size (strong) and once at fixed per-thread size (weak). Each
# series carries its parallel efficiency in the benchgate schema.
bench-scaling:
	$(GO) run ./cmd/loopdist -sweep strong -out BENCH_scaling_strong.json
	$(GO) run ./cmd/loopdist -sweep weak -out BENCH_scaling_weak.json

# Re-record the committed kernel baselines the regression gate
# compares against: the single-pool suite (plus the spawn-heavy fib
# pair and the pinned-worker twins the fib-ordering and
# pinning-overhead invariants are defined over) and the sharded series
# the sharding-overhead invariant is defined over. Run on the machine
# of record after an intentional perf change, and commit the results.
bench-record:
	$(GO) run ./cmd/benchgate record -kernels axpy,sum,matvec,fib -pinned -out BENCH_kernels.json
	$(GO) run ./cmd/benchgate record -kernels axpy,sum -shards -1 -balancer least-loaded -out BENCH_shard.json
	$(GO) run ./cmd/loadsweep -out BENCH_latency.json

# Statistical benchmark-regression gate: fresh samples against the
# committed baseline, plus the paper's directional invariants
# (work-sharing <= eager work-stealing on flat loops; lazy <= eager at
# stress grain). Loose -ratio so shared/noisy machines don't flap;
# exit 1 means a real ordering inversion or a significant regression.
bench-gate:
	$(GO) run ./cmd/benchgate check -reps 3 -alpha 0.05 -ratio 1.3
	$(GO) run ./cmd/benchgate check -baseline BENCH_shard.json -reps 3 -alpha 0.05 -ratio 1.3

# Tail-latency gate, mirroring CI's latency-smoke lane: `benchgate
# check` detects the latency baseline (BENCH_latency.json, written by
# cmd/loadsweep), boots an in-process threadserve per model, re-sweeps
# the two lowest offered-load points, and gates the tail invariants
# (low-load p99 parity; sharded least-loaded p99 within 1.1x of
# single-pool). Tight -alpha so percentile noise cannot flap the gate;
# the bounds ride on the invariants themselves.
serve-smoke:
	$(GO) run ./cmd/benchgate check -baseline BENCH_latency.json -points 2 -requests 300 -alpha 0.01

# Full open-loop service sweep: every default runtime across the
# default offered-load points, with the per-point tail table on
# stdout. Use -out via cmd/loadsweep directly to record a baseline.
serve-sweep:
	$(GO) run ./cmd/loadsweep

# Telemetry smoke: boot a real threadserve, load it, scrape /metrics,
# and assert the exposition carries every required metric family with
# a quiet stall watchdog — the in-process twin of CI's metrics-smoke
# job (which curls the families over TCP), plus the zero-allocation
# pins on the metric fast paths and the watchdog's injected-stall
# unit tests.
metrics-smoke:
	$(GO) test -count=1 -run 'TestMetricsSmoke' ./cmd/threadserve/
	$(GO) test -count=1 -run 'TestMetrics|TestRequestID|TestUpdatesZeroAlloc|TestWatchdog' ./internal/serve/ ./internal/metrics/

# End-to-end exercise of the tracing pipeline: a small Sum+Fib sweep
# with -trace, then traceview converts the raw events to Chrome
# trace-event JSON and prints the derived-metrics summary. Leaves
# trace-smoke.json + trace-smoke.chrome.json for inspection.
trace-smoke:
	$(GO) run ./cmd/threadbench -fig fig2,fig5 -threads 2 -reps 1 -scale 0.1 -trace trace-smoke.json
	$(GO) run ./cmd/traceview trace-smoke.json

clean:
	$(GO) clean ./...
