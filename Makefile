GO ?= go

.PHONY: all build test race vet bench-smoke clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# A fast, single-repetition pass over two figures — enough to catch a
# harness regression without a full sweep.
bench-smoke:
	$(GO) run ./cmd/threadbench -fig fig1,fig5 -threads 1,2 -reps 1 -scale 0.1

clean:
	$(GO) clean ./...
