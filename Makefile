GO ?= go

.PHONY: all build test race race-sched vet lint bench-smoke bench-loopdist clean

all: build vet lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-detect just the scheduler hot paths (work stealing, deques,
# shared sched plumbing, and the futures join paths the help-first
# work leans on) — the focused loop for partitioner work.
race-sched:
	$(GO) test -race -count=2 ./internal/worksteal/... ./internal/deque/... ./internal/sched/... ./internal/futures/...

vet:
	$(GO) vet ./...

# threadvet: the repo's own go/analysis-style suite enforcing the
# runtimes' concurrency contracts (joinleak, ctxdrop, lockspawn,
# atomicmix, grainconst). Fails on any unsuppressed diagnostic.
lint:
	$(GO) run ./cmd/threadvet ./...

# A fast, single-repetition pass over two figures — enough to catch a
# harness regression without a full sweep.
bench-smoke:
	$(GO) run ./cmd/threadbench -fig fig1,fig5 -threads 1,2 -reps 1 -scale 0.1

# Regenerate the eager-vs-lazy loop-distribution measurements.
bench-loopdist:
	$(GO) run ./cmd/loopdist

clean:
	$(GO) clean ./...
