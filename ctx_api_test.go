package threading_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"threading"
)

// TestCtxAPISurface exercises the context-aware public API end to
// end: cancellation, deadline, typed panic propagation, and the
// typed tasks-unsupported error — all through the root package.
func TestCtxAPISurface(t *testing.T) {
	m, err := threading.NewModel(threading.OMPFor, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Cancellation mid-loop returns context.Canceled.
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	err = m.ParallelForCtx(ctx, 64, func(lo, hi int) {
		once.Do(cancel)
		<-ctx.Done()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ParallelForCtx err = %v, want context.Canceled", err)
	}

	// Panic propagation is typed and carries the recovered value.
	err = m.ParallelForCtx(context.Background(), 64, func(lo, hi int) {
		if lo == 0 {
			panic("root-boom")
		}
	})
	var pe *threading.PanicError
	if !errors.As(err, &pe) || pe.Value != "root-boom" {
		t.Fatalf("ParallelForCtx err = %v, want PanicError(root-boom)", err)
	}

	// Loop-only models refuse tasks with the typed sentinel.
	if err := m.TaskRunCtx(context.Background(), func(threading.TaskScope) {}); !errors.Is(err, threading.ErrTasksUnsupported) {
		t.Fatalf("TaskRunCtx err = %v, want ErrTasksUnsupported", err)
	}

	// The model remains usable after cancellation and panic.
	var n atomic.Int64
	if err := m.ParallelForCtx(context.Background(), 100, func(lo, hi int) {
		n.Add(int64(hi - lo))
	}); err != nil || n.Load() != 100 {
		t.Fatalf("reuse: err = %v, covered = %d", err, n.Load())
	}
}

func TestOptionCompatibility(t *testing.T) {
	// Legacy struct literals still satisfy the variadic constructors.
	legacyTeam := threading.NewTeam(2, threading.TeamOptions{CentralBarrier: true})
	legacyTeam.Close()
	legacyPool := threading.NewPool(2, threading.PoolOptions{})
	legacyPool.Close()
	legacyDev := threading.NewDevice("d0", threading.DeviceOptions{Units: 2})
	if err := legacyDev.Close(); err != nil {
		t.Fatal(err)
	}

	// Functional options are the preferred construction form.
	team := threading.NewTeam(2, threading.WithSchedule(threading.Dynamic(8)),
		threading.WithTaskPolicy(threading.TaskDeferred))
	defer team.Close()
	pool := threading.NewPool(2, threading.WithStealBackend(threading.DequeLocked),
		threading.WithSpinBeforePark(16))
	defer pool.Close()
	dev := threading.NewDevice("d1", threading.WithUnits(2), threading.WithLatency(time.Microsecond))
	defer dev.Close()

	if dev.Units() != 2 {
		t.Fatalf("Units = %d, want 2", dev.Units())
	}
	var n atomic.Int64
	if err := team.ParallelCtx(context.Background(), func(tc *threading.TeamCtx) {
		tc.ForRange(team.DefaultSchedule(), 0, 32, func(lo, hi int) { n.Add(int64(hi - lo)) })
	}); err != nil || n.Load() != 32 {
		t.Fatalf("team: err = %v, covered = %d", err, n.Load())
	}
	if err := pool.RunCtx(context.Background(), func(c *threading.PoolCtx) {
		c.ForEach(0, 32, 0, func(*threading.PoolCtx, int) { n.Add(1) })
	}); err != nil || n.Load() != 64 {
		t.Fatalf("pool: err = %v, counter = %d", err, n.Load())
	}
}

func TestDeadlinePropagatesThroughDevice(t *testing.T) {
	dev := threading.NewDevice("d2", threading.WithUnits(2))
	defer dev.Close()
	host := make([]float64, 8)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := dev.TargetCtx(ctx, []threading.Mapping{{Host: host, Dir: threading.MapToFrom}},
		func(bufs []*threading.Buffer) {
			<-ctx.Done()
		})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("TargetCtx err = %v, want context.DeadlineExceeded", err)
	}
}

// Example-shaped smoke test: the quick-start from the package docs.
func TestQuickStartCompiles(t *testing.T) {
	data := make([]float64, 1000)
	for i := range data {
		data[i] = float64(i)
	}
	m, err := threading.NewModel(threading.CilkFor, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := m.ParallelForCtx(ctx, len(data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] *= 2
		}
	}); err != nil {
		var pe *threading.PanicError
		switch {
		case errors.As(err, &pe):
			t.Fatalf("chunk panicked: %v", pe.Value)
		default:
			t.Fatal(err)
		}
	}
	if data[999] != 1998 {
		t.Fatalf("data[999] = %v, want 1998", data[999])
	}
	_ = fmt.Sprintf("%+v", err) // PanicError formats with a stack under %+v
}
