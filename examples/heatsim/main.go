// Heatsim: processor thermal simulation (the paper's Rodinia HotSpot
// scenario) as a standalone application. A synthetic floorplan's
// power map drives a finite-difference heat equation; the simulation
// runs under a chosen threading model and prints the temperature
// distribution as it evolves.
//
// Run with: go run ./examples/heatsim [-dim N] [-steps S] [-model omp_for]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"threading"
	"threading/internal/rodinia/hotspot"
)

func main() {
	dim := flag.Int("dim", 256, "grid dimension (dim x dim)")
	steps := flag.Int("steps", 60, "simulation time steps")
	model := flag.String("model", "omp_for", "threading model")
	flag.Parse()

	p := runtime.GOMAXPROCS(0)
	cfg := hotspot.NewConfig(*dim, *dim)
	temp, power := hotspot.GenerateInput(*dim, *dim, 7)

	m, err := threading.NewModel(*model, p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer m.Close()

	fmt.Printf("heatsim: %dx%d grid, %d steps, model %s, %d threads\n\n",
		*dim, *dim, *steps, *model, p)

	// Run in bursts so we can show the field converging.
	const bursts = 4
	cur := temp
	total := time.Duration(0)
	for b := 1; b <= bursts; b++ {
		start := time.Now()
		cur = hotspot.Parallel(m, cfg, cur, power, *steps/bursts)
		total += time.Since(start)
		lo, hi, mean := fieldStats(cur)
		fmt.Printf("after %3d steps: min=%.3f max=%.3f mean=%.3f\n",
			b*(*steps/bursts), lo, hi, mean)
		fmt.Println(sparkline(cur, *dim))
	}
	fmt.Printf("\nsimulated %d steps in %v\n", bursts*(*steps/bursts), total.Round(time.Millisecond))
}

// fieldStats returns min, max and mean of the field.
func fieldStats(f []float64) (lo, hi, mean float64) {
	lo, hi = f[0], f[0]
	var sum float64
	for _, v := range f {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		sum += v
	}
	return lo, hi, sum / float64(len(f))
}

// sparkline renders the grid's central row as a coarse heat strip.
func sparkline(f []float64, dim int) string {
	ramp := []rune(" .:-=+*#%@")
	row := f[(dim/2)*dim : (dim/2)*dim+dim]
	lo, hi, _ := fieldStats(f)
	span := hi - lo
	if span == 0 {
		span = 1
	}
	var sb strings.Builder
	sb.WriteString("  [")
	step := dim / 64
	if step < 1 {
		step = 1
	}
	for i := 0; i < dim; i += step {
		idx := int(float64(len(ramp)-1) * (row[i] - lo) / span)
		sb.WriteRune(ramp[idx])
	}
	sb.WriteString("]")
	return sb.String()
}
