// Quickstart: the three layers of the threading library in one page.
//
//  1. The portable Model interface — write a parallel loop once, run
//     it under any of the six threading-model configurations.
//  2. The OpenMP-style fork-join Team — work-sharing loops, barriers,
//     reductions.
//  3. The Cilk-style work-stealing Pool — recursive spawn/sync.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"runtime"

	"threading"
)

func main() {
	p := runtime.GOMAXPROCS(0)
	fmt.Printf("quickstart on %d logical processors\n\n", p)

	// --- Layer 1: the portable Model interface -------------------
	data := make([]float64, 1_000_000)
	for i := range data {
		data[i] = float64(i)
	}
	for _, name := range threading.ModelNames() {
		m, err := threading.NewModel(name, p)
		if err != nil {
			panic(err)
		}
		sum := m.ParallelReduce(len(data), 0,
			func(lo, hi int, acc float64) float64 {
				for i := lo; i < hi; i++ {
					acc += data[i]
				}
				return acc
			},
			func(a, b float64) float64 { return a + b })
		m.Close()
		fmt.Printf("  %-11s sum(0..%d) = %.0f\n", name, len(data)-1, sum)
	}

	// --- Layer 2: OpenMP-style fork-join team --------------------
	team := threading.NewTeam(p)
	hist := make([]int, 10)
	team.Parallel(func(tc *threading.TeamCtx) {
		// Work-sharing loop with a dynamic schedule; Critical
		// protects the shared histogram, as omp critical would.
		tc.For(threading.Dynamic(4096), 0, len(data), func(i int) {
			bucket := int(data[i]) * 10 / len(data)
			_ = bucket
		})
		tc.Barrier()
		tc.Critical(func() { hist[0]++ })
		tc.Single(func() { fmt.Println("\n  team: single construct ran once") })
	})
	team.Close()
	fmt.Printf("  team: critical section entered by all %d members: %d\n", p, hist[0])

	// --- Layer 3: Cilk-style work stealing -----------------------
	pool := threading.NewPool(p)
	var fib func(c *threading.PoolCtx, n int, out *uint64)
	fib = func(c *threading.PoolCtx, n int, out *uint64) {
		if n < 2 {
			*out = uint64(n)
			return
		}
		var a, b uint64
		c.Spawn(func(cc *threading.PoolCtx) { fib(cc, n-1, &a) })
		fib(c, n-2, &b)
		c.Sync()
		*out = a + b
	}
	var result uint64
	pool.Run(func(c *threading.PoolCtx) { fib(c, 25, &result) })
	stats := pool.Stats()
	pool.Close()
	fmt.Printf("\n  pool: fib(25) = %d via %d spawned tasks, %d steals\n",
		result, stats.Spawns, stats.Steals)
}
