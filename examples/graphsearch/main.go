// Graphsearch: level-synchronous BFS over a synthetic social-style
// graph, run under every threading model — the paper's Rodinia BFS
// scenario as a standalone application.
//
// The program generates a random graph, traverses it from node 0
// under each model, verifies all models agree, and prints the level
// histogram plus per-model timing.
//
// Run with: go run ./examples/graphsearch [-nodes N] [-degree D]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"threading"
	"threading/internal/rodinia/bfs"
)

func main() {
	nodes := flag.Int("nodes", 300_000, "number of graph nodes")
	degree := flag.Int("degree", 6, "average out-degree")
	flag.Parse()

	p := runtime.GOMAXPROCS(0)
	fmt.Printf("generating graph: %d nodes, average degree %d\n", *nodes, *degree)
	g := bfs.Generate(*nodes, *degree, 2024)
	if err := g.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "graph generation bug:", err)
		os.Exit(1)
	}
	fmt.Printf("graph has %d edges\n\n", g.NumEdges())

	start := time.Now()
	want := bfs.Seq(g, 0)
	seqTime := time.Since(start)
	fmt.Printf("sequential BFS: %v\n", seqTime.Round(time.Microsecond))

	// Level histogram from the reference traversal.
	maxLevel := int32(0)
	for _, l := range want {
		if l > maxLevel {
			maxLevel = l
		}
	}
	counts := make([]int, maxLevel+1)
	for _, l := range want {
		if l >= 0 {
			counts[l]++
		}
	}
	fmt.Println("frontier sizes by level:")
	for l, c := range counts {
		fmt.Printf("  level %2d: %d nodes\n", l, c)
	}
	fmt.Println()

	for _, name := range threading.ModelNames() {
		m, err := threading.NewModel(name, p)
		if err != nil {
			panic(err)
		}
		start = time.Now()
		got := bfs.Parallel(m, g, 0)
		elapsed := time.Since(start)
		m.Close()
		for i := range want {
			if got[i] != want[i] {
				fmt.Fprintf(os.Stderr, "%s: node %d level %d, want %d\n",
					name, i, got[i], want[i])
				os.Exit(1)
			}
		}
		fmt.Printf("  %-11s %10v  (%.2fx vs sequential, verified)\n",
			name, elapsed.Round(time.Microsecond),
			float64(seqTime)/float64(elapsed))
	}
}
