// Pipeline: data/event-driven parallelism with futures — the fourth
// parallelism pattern of the paper's Table I (std::future column for
// C++11), expressed with this library's Promise/Future/Async layer.
//
// A four-stage image-processing-style pipeline (generate -> blur ->
// normalize -> checksum) runs over a stream of frames. Stages are
// chained by futures, so frame k's blur overlaps frame k+1's
// generation: asynchronous task dependency without any explicit
// thread management.
//
// Run with: go run ./examples/pipeline [-frames N] [-dim D]
package main

import (
	"flag"
	"fmt"
	"time"

	"threading"
	"threading/internal/futures"
)

// frame is one unit of streaming work.
type frame struct {
	id  int
	pix []float64
}

func generate(id, dim int) frame {
	pix := make([]float64, dim*dim)
	st := uint64(id + 1)
	for i := range pix {
		st += 0x9E3779B97F4A7C15
		z := st
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		pix[i] = float64((z^(z>>31))>>11) / float64(1<<53)
	}
	return frame{id: id, pix: pix}
}

func blur(f frame, dim int) frame {
	out := make([]float64, len(f.pix))
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			sum, n := 0.0, 0
			for dr := -1; dr <= 1; dr++ {
				for dc := -1; dc <= 1; dc++ {
					rr, cc := r+dr, c+dc
					if rr >= 0 && rr < dim && cc >= 0 && cc < dim {
						sum += f.pix[rr*dim+cc]
						n++
					}
				}
			}
			out[r*dim+c] = sum / float64(n)
		}
	}
	return frame{id: f.id, pix: out}
}

func normalize(f frame) frame {
	lo, hi := f.pix[0], f.pix[0]
	for _, v := range f.pix {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	for i, v := range f.pix {
		f.pix[i] = (v - lo) / span
	}
	return f
}

func checksum(f frame) float64 {
	var s float64
	for i, v := range f.pix {
		s += v * float64(i%7+1)
	}
	return s
}

func main() {
	frames := flag.Int("frames", 24, "number of frames to stream")
	dim := flag.Int("dim", 256, "frame dimension")
	flag.Parse()

	fmt.Printf("pipeline: %d frames of %dx%d, stages chained by futures\n\n",
		*frames, *dim, *dim)

	start := time.Now()
	// Launch the full dependency graph: each stage consumes the
	// previous stage's future — the event-driven pattern.
	sums := make([]*futures.Future[float64], *frames)
	for k := 0; k < *frames; k++ {
		k := k
		gen := threading.Async(threading.LaunchAsync, func() (frame, error) {
			return generate(k, *dim), nil
		})
		blurred := threading.Async(threading.LaunchAsync, func() (frame, error) {
			f, err := gen.Get()
			if err != nil {
				return frame{}, err
			}
			return blur(f, *dim), nil
		})
		sums[k] = threading.Async(threading.LaunchAsync, func() (float64, error) {
			f, err := blurred.Get()
			if err != nil {
				return 0, err
			}
			return checksum(normalize(f)), nil
		})
	}
	var total float64
	for k, f := range sums {
		v, err := f.Get()
		if err != nil {
			panic(err)
		}
		total += v
		if k < 4 || k == *frames-1 {
			fmt.Printf("  frame %2d checksum %.4f\n", k, v)
		} else if k == 4 {
			fmt.Println("  ...")
		}
	}
	pipelined := time.Since(start)

	// Sequential comparison: same work, no overlap.
	start = time.Now()
	var seqTotal float64
	for k := 0; k < *frames; k++ {
		seqTotal += checksum(normalize(blur(generate(k, *dim), *dim)))
	}
	sequential := time.Since(start)

	if seqTotal != total {
		panic(fmt.Sprintf("pipeline checksum mismatch: %g vs %g", total, seqTotal))
	}
	fmt.Printf("\nchecksums verified equal (%.4f)\n", total)
	fmt.Printf("pipelined:  %v\nsequential: %v  (%.2fx)\n",
		pipelined.Round(time.Millisecond), sequential.Round(time.Millisecond),
		float64(sequential)/float64(pipelined))
}
