// Offload: the accelerator programming pattern of the paper's
// Table I (OpenMP target / OpenACC / CUDA / OpenCL) on the simulated
// device — explicit data movement between discrete address spaces,
// kernel launches over device compute units, and CUDA-style streams
// overlapping transfers with computation.
//
// Run with: go run ./examples/offload [-n N] [-units U]
package main

import (
	"flag"
	"fmt"
	"time"

	"threading/internal/offload"
)

func main() {
	n := flag.Int("n", 1_000_000, "vector length")
	units := flag.Int("units", 4, "device compute units")
	flag.Parse()

	dev := offload.NewDevice("sim-accelerator",
		offload.WithUnits(*units),
		offload.WithLatency(50*time.Microsecond)) // model interconnect latency

	x := make([]float64, *n)
	y := make([]float64, *n)
	for i := range x {
		x[i] = float64(i)
		y[i] = 1
	}
	const a = 2.5

	// --- Synchronous target region (OpenMP: target map(to:x) map(tofrom:y)).
	start := time.Now()
	dev.Target([]offload.Mapping{
		{Host: x, Dir: offload.MapTo},
		{Host: y, Dir: offload.MapToFrom},
	}, func(bufs []*offload.Buffer) {
		dev.Launch(*n, func(i int, v [][]float64) {
			v[1][i] += a * v[0][i]
		}, bufs[0], bufs[1])
	})
	fmt.Printf("target region: axpy of %d elements on %q (%d units) in %v\n",
		*n, dev.Name(), dev.Units(), time.Since(start).Round(time.Microsecond))
	fmt.Printf("  y[1] = %.1f (want %.1f)\n", y[1], 1+a*1)

	// --- Streamed double buffering: split the vector in half and let
	// one half's transfer overlap the other half's kernel.
	buf1, buf2 := dev.Alloc(*n/2), dev.Alloc(*n/2)
	s1, s2 := dev.NewStream(), dev.NewStream()
	half := *n / 2
	out := make([]float64, *n)

	start = time.Now()
	square := func(i int, v [][]float64) { v[0][i] *= v[0][i] }
	s1.CopyToDeviceAsync(buf1, x[:half])
	s2.CopyToDeviceAsync(buf2, x[half:2*half])
	s1.LaunchAsync(half, square, buf1)
	s2.LaunchAsync(half, square, buf2)
	s1.CopyFromDeviceAsync(out[:half], buf1)
	s2.CopyFromDeviceAsync(out[half:2*half], buf2)
	s1.Synchronize()
	s2.Synchronize()
	fmt.Printf("two streams: squared both halves in %v (FIFO per stream, overlapped across)\n",
		time.Since(start).Round(time.Microsecond))
	fmt.Printf("  out[3] = %.1f (want %.1f)\n", out[3], x[3]*x[3])

	s1.Destroy()
	s2.Destroy()
	buf1.Free()
	buf2.Free()

	st := dev.Stats()
	fmt.Printf("device counters: %d kernel launches, %d work items, %.1f MB to device, %.1f MB back\n",
		st.KernelLaunches, st.WorkItems,
		float64(st.BytesToDevice)/1e6, float64(st.BytesFromDevice)/1e6)
	if err := dev.Close(); err != nil {
		panic(err)
	}
}
