package models

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"threading/internal/sched"
)

// executorNames is every spelling NewExecutor must resolve, including
// a sharded one.
var executorNames = []string{
	OMPFor, OMPTask, CilkFor, CilkSpawn, CPPThread, CPPAsync,
	ShardedPrefix + CilkFor, ShardedPrefix + OMPFor,
}

func TestNewExecutorRunsLoops(t *testing.T) {
	for _, name := range executorNames {
		t.Run(name, func(t *testing.T) {
			ex, err := NewExecutor(name, 2)
			if err != nil {
				t.Fatalf("NewExecutor(%q): %v", name, err)
			}
			defer ex.Close()

			const n = 1000
			var hits [n]atomic.Int32
			if err := ex.ParallelForCtx(context.Background(), 0, n, 0, func(l, h int) {
				for i := l; i < h; i++ {
					hits[i].Add(1)
				}
			}); err != nil {
				t.Fatalf("ParallelForCtx: %v", err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("iteration %d executed %d times", i, got)
				}
			}

			sum, err := ex.ParallelReduceCtx(context.Background(), 0, n, 0, 0,
				func(l, h int, acc float64) float64 {
					for i := l; i < h; i++ {
						acc += float64(i)
					}
					return acc
				},
				func(a, b float64) float64 { return a + b })
			if err != nil {
				t.Fatalf("ParallelReduceCtx: %v", err)
			}
			if want := float64(n*(n-1)) / 2; sum != want {
				t.Fatalf("reduce = %g, want %g", sum, want)
			}

			var ran atomic.Bool
			if err := ex.SubmitCtx(context.Background(), func() { ran.Store(true) }); err != nil {
				t.Fatalf("SubmitCtx: %v", err)
			}
			if err := ex.Quiesce(); err != nil {
				t.Fatalf("Quiesce: %v", err)
			}
			if !ran.Load() {
				t.Fatal("submitted task never ran")
			}
		})
	}
}

// TestNewExecutorConcurrentSubmitters is the property the Model layer
// does not promise and the Executor layer must: many goroutines
// driving loops into one shared runtime at once, each loop covering
// its range exactly once.
func TestNewExecutorConcurrentSubmitters(t *testing.T) {
	for _, name := range executorNames {
		t.Run(name, func(t *testing.T) {
			ex, err := NewExecutor(name, 2)
			if err != nil {
				t.Fatalf("NewExecutor(%q): %v", name, err)
			}
			defer ex.Close()

			const callers, n = 4, 400
			var wg sync.WaitGroup
			errs := make([]error, callers)
			sums := make([]int64, callers)
			for c := 0; c < callers; c++ {
				c := c
				wg.Add(1)
				go func() {
					defer wg.Done()
					var sum atomic.Int64
					errs[c] = ex.ParallelForCtx(context.Background(), 0, n, 16, func(l, h int) {
						for i := l; i < h; i++ {
							sum.Add(int64(i))
						}
					})
					sums[c] = sum.Load()
				}()
			}
			wg.Wait()
			for c := 0; c < callers; c++ {
				if errs[c] != nil {
					t.Fatalf("caller %d: %v", c, errs[c])
				}
				if want := int64(n*(n-1)) / 2; sums[c] != want {
					t.Fatalf("caller %d sum = %d, want %d", c, sums[c], want)
				}
			}
		})
	}
}

func TestNewExecutorCancellation(t *testing.T) {
	for _, name := range executorNames {
		t.Run(name, func(t *testing.T) {
			ex, err := NewExecutor(name, 2)
			if err != nil {
				t.Fatalf("NewExecutor(%q): %v", name, err)
			}
			defer ex.Close()

			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			err = ex.ParallelForCtx(ctx, 0, 1<<20, 1, func(l, h int) {})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("ParallelForCtx on canceled ctx = %v, want Canceled", err)
			}
			// The runtime must be reusable after a canceled region.
			if err := ex.ParallelForCtx(context.Background(), 0, 64, 0, func(l, h int) {}); err != nil {
				t.Fatalf("reuse after cancel: %v", err)
			}
		})
	}
}

func TestNewExecutorSubmitPanicSurfacesInQuiesce(t *testing.T) {
	// The cpp adapter's own AsyncGroup path (pools and teams have their
	// own tested plumbing).
	ex, err := NewExecutor(CPPAsync, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	if err := ex.SubmitCtx(context.Background(), func() { panic("boom") }); err != nil {
		t.Fatalf("SubmitCtx: %v", err)
	}
	err = ex.Quiesce()
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Quiesce = %v, want PanicError", err)
	}
	if err := ex.Quiesce(); err != nil {
		t.Fatalf("second Quiesce = %v, want nil (error cleared)", err)
	}
}

func TestNewExecutorRejectsBadInput(t *testing.T) {
	if _, err := NewExecutor("no_such_model", 2); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := NewExecutor(CilkFor, 0); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := NewExecutor(ShardedPrefix+CPPThread, 2); err == nil {
		t.Fatal("sharded cpp_thread accepted (no runtime to shard)")
	}
}
