package models

import (
	"context"
	"fmt"
	"runtime"
	"strconv"

	"threading/internal/forkjoin"
	"threading/internal/sched"
	"threading/internal/shard"
	"threading/internal/worksteal"
)

// ShardedPrefix is the model-name prefix selecting sharded execution:
// "sharded:cilk_for" is the cilk_for model over a shard.Resolver.
const ShardedPrefix = "sharded:"

// shardableNames lists the base models whose runtime can be sharded:
// the pooled runtimes. The thread-per-chunk models have no persistent
// scheduler to shard.
var shardableNames = []string{CilkFor, CilkSpawn, OMPFor, OMPTask}

// shardable reports whether the named base model can back a shard.
func shardable(name string) bool {
	for _, n := range shardableNames {
		if n == name {
			return true
		}
	}
	return false
}

// sharded wraps a shard.Resolver as a Model: the base model's thread
// budget is split across independent runtime shards (pools for the
// cilk bases, teams for the omp bases) and every loop or reduction is
// routed through the resolver's balancer. Loops take the shard
// runtime's native form — divide-and-conquer on pool shards,
// work-sharing on team shards — so per-chunk mechanics match the base
// model's family, while distribution across shards is the resolver's.
//
// Sharded models are loop models: recursive task parallelism would
// need cross-shard joins, which the resolver deliberately does not
// provide (a task tree routes whole to one shard via SubmitCtx).
type sharded struct {
	res     *shard.Resolver
	name    string
	threads int
	grain   int
}

// NewSharded builds the sharded variant of a shardable base model.
// threads is the total budget, split near-evenly across shards; 0 or
// negative shard counts select a default (see WithShardCount). The
// returned model reports Name() as "sharded:<base>".
func NewSharded(base string, threads, shards int, opts ...Option) (Model, error) {
	var cfg config
	for _, o := range opts {
		o.applyModel(&cfg)
	}
	cfg.shards = shards
	return newSharded(base, threads, cfg)
}

// defaultShardCount is used when sharding is requested by name prefix
// without an explicit count: enough shards to bound steal domains
// while keeping at least two workers per shard where possible.
func defaultShardCount(threads int) int {
	k := threads / 2
	if k < 2 {
		k = 2
	}
	if k > threads {
		k = threads
	}
	return k
}

func newSharded(base string, threads int, cfg config) (Model, error) {
	res, err := newShardResolver(base, threads, cfg)
	if err != nil {
		return nil, err
	}
	return &sharded{
		res:     res,
		name:    ShardedPrefix + base,
		threads: threads,
		grain:   cfg.grain,
	}, nil
}

// newShardResolver builds the resolver behind a sharded model: the
// base model's thread budget split near-evenly across k family-native
// shards (pools for the cilk bases, teams for the omp bases) routed
// by the configured balancer. Shared by the sharded Model wrapper and
// by NewExecutor, which hands the resolver out directly as the
// concurrent submission surface.
func newShardResolver(base string, threads int, cfg config) (*shard.Resolver, error) {
	if !shardable(base) {
		return nil, fmt.Errorf("models: model %q cannot be sharded (shardable: %v)", base, shardableNames)
	}
	bal, err := shard.ParseBalancer(cfg.balancer)
	if err != nil {
		return nil, err
	}
	k := cfg.shards
	switch {
	case k == 0:
		k = defaultShardCount(threads)
	case k < 0:
		k = runtime.GOMAXPROCS(0)
	}
	if k > threads {
		k = threads
	}
	if k < 1 {
		k = 1
	}
	execs := make([]shard.Executor, 0, k)
	offset := 0 // next free tracer ring id; shards get disjoint ranges
	for i := 0; i < k; i++ {
		lo, hi := chunkFor(threads, k, i)
		w := hi - lo
		prefix := "s" + strconv.Itoa(i) + "/"
		switch base {
		case CilkFor, CilkSpawn:
			sub := cfg
			sub.tracer = cfg.tracer.View(offset, prefix)
			execs = append(execs, newWorkstealPool(w, sub))
			offset += w + worksteal.MaxHelpers
		case OMPFor, OMPTask:
			execs = append(execs, forkjoin.NewTeam(w,
				forkjoin.WithTracer(cfg.tracer.View(offset, prefix)),
				forkjoin.WithPinnedWorkers(cfg.pinned)))
			offset += w
		}
	}
	res, err := shard.New(shard.WithBalancer(bal), shard.WithShards(execs...))
	if err != nil {
		for _, e := range execs {
			e.Close()
		}
		return nil, err
	}
	return res, nil
}

func (m *sharded) Name() string { return m.name }
func (m *sharded) Threads() int { return m.threads }

// Resolver exposes the underlying resolver, for callers that manage
// shards directly (hot add/drain) or need per-shard introspection.
func (m *sharded) Resolver() *shard.Resolver { return m.res }

func (m *sharded) ParallelFor(n int, body func(lo, hi int)) {
	mustRun(m.ParallelForCtx(context.Background(), n, body))
}

func (m *sharded) ParallelForCtx(ctx context.Context, n int, body func(lo, hi int)) error {
	return m.res.ParallelForCtx(ctx, 0, n, m.grain, body)
}

func (m *sharded) ParallelReduce(n int, identity float64,
	body func(lo, hi int, acc float64) float64,
	combine func(a, b float64) float64) float64 {

	v, err := m.ParallelReduceCtx(context.Background(), n, identity, body, combine)
	mustRun(err)
	return v
}

func (m *sharded) ParallelReduceCtx(ctx context.Context, n int, identity float64,
	body func(lo, hi int, acc float64) float64,
	combine func(a, b float64) float64) (float64, error) {

	return m.res.ParallelReduceCtx(ctx, 0, n, m.grain, identity, body, combine)
}

func (m *sharded) SupportsTasks() bool { return false }

func (m *sharded) TaskRun(func(TaskScope)) {
	panic("models: sharded models are loop models; task trees route whole to one shard via the resolver's SubmitCtx")
}

func (m *sharded) TaskRunCtx(context.Context, func(TaskScope)) error {
	return fmt.Errorf("models: %s: %w", m.name, ErrTasksUnsupported)
}

func (m *sharded) SchedulerStats() (sched.Snapshot, bool) { return m.res.Stats(), true }

func (m *sharded) ResetSchedulerStats() { m.res.ResetStats() }

func (m *sharded) Close() { m.res.Close() }

// ShardedStats is the extra reporting surface of sharded models,
// obtained by type assertion: per-shard counter snapshots (tagged with
// shard ids) plus the sharding configuration, for renderers that break
// the merged totals out per shard.
type ShardedStats interface {
	// ShardSchedulerStats returns each shard's counters in id order.
	ShardSchedulerStats() []shard.Stat
	// NumShards reports the number of routable shards.
	NumShards() int
	// ShardBalancer reports the routing balancer's name.
	ShardBalancer() string
}

func (m *sharded) ShardSchedulerStats() []shard.Stat { return m.res.ShardStats() }
func (m *sharded) NumShards() int                    { return m.res.NumShards() }
func (m *sharded) ShardBalancer() string             { return m.res.BalancerName() }
