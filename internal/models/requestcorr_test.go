package models

import (
	"context"
	"strings"
	"testing"

	"threading/internal/sched"
	"threading/internal/tracez"
)

// Request correlation end to end: a request id threaded through the
// context must come back out of the trace as span attribution —
// including through a sharded executor, where the per-shard tracer
// views (s0/, s1/ lanes) offset worker ids and prefix labels.
func TestRequestIDFlowsIntoTrace(t *testing.T) {
	for _, name := range []string{CilkFor, OMPFor, ShardedPrefix + CilkFor} {
		t.Run(name, func(t *testing.T) {
			tr := tracez.New(1 << 10)
			ex, err := NewExecutor(name, 2,
				WithShardCount(2), WithTracer(tr))
			if err != nil {
				t.Fatalf("NewExecutor(%q): %v", name, err)
			}
			defer ex.Close()

			const rid = 42
			ctx := sched.WithRequestID(context.Background(), rid)
			if err := ex.ParallelForCtx(ctx, 0, 4096, 32, func(l, h int) {
				sink := 0
				for i := l; i < h; i++ {
					sink += i
				}
				_ = sink
			}); err != nil {
				t.Fatalf("ParallelForCtx: %v", err)
			}
			if err := ex.Quiesce(); err != nil {
				t.Fatalf("Quiesce: %v", err)
			}

			snap := tr.Snapshot()
			costs := tracez.SummarizeRequests(snap)
			if len(costs) == 0 {
				t.Fatal("no request costs derived from a tagged run")
			}
			rc := costs[0]
			if rc.ID != rid {
				t.Fatalf("attributed request id = %d, want %d", rc.ID, rid)
			}
			if rc.BusyNs <= 0 {
				t.Errorf("request busy time = %d, want > 0", rc.BusyNs)
			}
			if rc.Tasks == 0 && rc.Chunks == 0 {
				t.Errorf("request attributed no tasks or chunks: %+v", rc)
			}

			if strings.HasPrefix(name, ShardedPrefix) {
				// The sharded lanes must show up as composed view
				// prefixes, and the request should span shards.
				lanes := map[string]bool{}
				for _, wt := range snap.Workers {
					if i := strings.IndexByte(wt.Label, '/'); i >= 0 {
						lanes[wt.Label[:i+1]] = true
					}
				}
				if !lanes["s0/"] || !lanes["s1/"] {
					t.Errorf("shard lane prefixes missing: %v", lanes)
				}
			}
		})
	}
}
