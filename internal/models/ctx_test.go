package models

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"threading/internal/sched"
)

// eachModel runs fn as a subtest against every data-parallel model.
func eachModel(t *testing.T, fn func(t *testing.T, m Model)) {
	for _, name := range DataNames() {
		t.Run(name, func(t *testing.T) {
			m := MustNew(name, 4)
			defer m.Close()
			fn(t, m)
		})
	}
}

func TestParallelForCtxCompletes(t *testing.T) {
	eachModel(t, func(t *testing.T, m Model) {
		var n atomic.Int64
		if err := m.ParallelForCtx(context.Background(), 1000, func(lo, hi int) {
			n.Add(int64(hi - lo))
		}); err != nil {
			t.Fatalf("ParallelForCtx: %v", err)
		}
		if n.Load() != 1000 {
			t.Fatalf("covered %d of 1000 iterations", n.Load())
		}
	})
}

func TestParallelForCtxCancelMidLoop(t *testing.T) {
	eachModel(t, func(t *testing.T, m Model) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var once sync.Once
		err := m.ParallelForCtx(ctx, 64, func(lo, hi int) {
			once.Do(cancel)
			<-ctx.Done() // hold in-flight chunks until cancellation lands
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})
}

func TestParallelForCtxDeadline(t *testing.T) {
	eachModel(t, func(t *testing.T, m Model) {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		err := m.ParallelForCtx(ctx, 64, func(lo, hi int) {
			<-ctx.Done()
		})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
	})
}

func TestParallelForCtxExpiredContextSkipsBody(t *testing.T) {
	eachModel(t, func(t *testing.T, m Model) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // expire before the loop starts
		var ran atomic.Bool
		err := m.ParallelForCtx(ctx, 64, func(lo, hi int) { ran.Store(true) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if ran.Load() {
			t.Fatal("body ran under an already-expired context")
		}
	})
}

func TestParallelForCtxPanicBecomesPanicError(t *testing.T) {
	eachModel(t, func(t *testing.T, m Model) {
		err := m.ParallelForCtx(context.Background(), 64, func(lo, hi int) {
			if lo == 0 {
				panic("chunk-boom")
			}
		})
		var pe *sched.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("err = %v, want *sched.PanicError", err)
		}
		if pe.Value != "chunk-boom" {
			t.Fatalf("PanicError.Value = %v, want chunk-boom", pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatal("PanicError.Stack is empty")
		}
	})
}

func TestModelReusableAfterCancelAndPanic(t *testing.T) {
	eachModel(t, func(t *testing.T, m Model) {
		ctx, cancel := context.WithCancel(context.Background())
		var once sync.Once
		_ = m.ParallelForCtx(ctx, 32, func(lo, hi int) {
			once.Do(cancel)
			<-ctx.Done()
		})
		_ = m.ParallelForCtx(context.Background(), 32, func(lo, hi int) {
			if lo == 0 {
				panic("transient")
			}
		})
		// The legacy surface must still work on the same model.
		var n atomic.Int64
		m.ParallelFor(500, func(lo, hi int) { n.Add(int64(hi - lo)) })
		if n.Load() != 500 {
			t.Fatalf("after cancel+panic, ParallelFor covered %d of 500", n.Load())
		}
	})
}

func TestParallelReduceCtx(t *testing.T) {
	eachModel(t, func(t *testing.T, m Model) {
		got, err := m.ParallelReduceCtx(context.Background(), 1000, 0,
			func(lo, hi int, acc float64) float64 { return acc + float64(hi-lo) },
			func(a, b float64) float64 { return a + b })
		if err != nil {
			t.Fatalf("ParallelReduceCtx: %v", err)
		}
		if got != 1000 {
			t.Fatalf("reduce = %v, want 1000", got)
		}
	})
}

func TestParallelReduceCtxCancelReturnsIdentity(t *testing.T) {
	eachModel(t, func(t *testing.T, m Model) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var once sync.Once
		got, err := m.ParallelReduceCtx(ctx, 64, 42,
			func(lo, hi int, acc float64) float64 {
				once.Do(cancel)
				<-ctx.Done()
				return acc + float64(hi-lo)
			},
			func(a, b float64) float64 { return a + b })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if got != 42 {
			t.Fatalf("canceled reduce = %v, want the identity 42", got)
		}
	})
}

func TestTaskRunCtxUnsupportedTyped(t *testing.T) {
	for _, name := range []string{OMPFor, CilkFor} {
		t.Run(name, func(t *testing.T) {
			m := MustNew(name, 2)
			defer m.Close()
			err := m.TaskRunCtx(context.Background(), func(TaskScope) {})
			if !errors.Is(err, ErrTasksUnsupported) {
				t.Fatalf("err = %v, want ErrTasksUnsupported", err)
			}
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("error %q does not name the model %q", err, name)
			}
		})
	}
}

func TestTaskRunCtxRuns(t *testing.T) {
	for _, name := range TaskNames() {
		t.Run(name, func(t *testing.T) {
			m := MustNew(name, 4)
			defer m.Close()
			var n atomic.Int64
			err := m.TaskRunCtx(context.Background(), func(s TaskScope) {
				for i := 0; i < 8; i++ {
					s.Spawn(func(TaskScope) { n.Add(1) })
				}
				s.Sync()
			})
			if err != nil {
				t.Fatalf("TaskRunCtx: %v", err)
			}
			if n.Load() != 8 {
				t.Fatalf("ran %d of 8 tasks", n.Load())
			}
		})
	}
}

func TestTaskRunCtxCancel(t *testing.T) {
	for _, name := range TaskNames() {
		t.Run(name, func(t *testing.T) {
			m := MustNew(name, 4)
			defer m.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			err := m.TaskRunCtx(ctx, func(s TaskScope) {
				s.Spawn(func(TaskScope) { cancel() })
				s.Sync()
				<-ctx.Done()
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		})
	}
}

func TestTaskRunCtxPanicBecomesPanicError(t *testing.T) {
	for _, name := range TaskNames() {
		t.Run(name, func(t *testing.T) {
			m := MustNew(name, 4)
			defer m.Close()
			err := m.TaskRunCtx(context.Background(), func(s TaskScope) {
				s.Spawn(func(TaskScope) { panic("task-boom") })
				s.Sync()
			})
			var pe *sched.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *sched.PanicError", err)
			}
			if pe.Value != "task-boom" {
				t.Fatalf("PanicError.Value = %v, want task-boom", pe.Value)
			}
			// The model survives the panic.
			var n atomic.Int64
			if err := m.TaskRunCtx(context.Background(), func(s TaskScope) {
				s.Spawn(func(TaskScope) { n.Add(1) })
				s.Sync()
			}); err != nil {
				t.Fatalf("TaskRunCtx after panic: %v", err)
			}
			if n.Load() != 1 {
				t.Fatal("task did not run after a previous panic")
			}
		})
	}
}
