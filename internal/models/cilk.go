package models

import (
	"context"
	"fmt"

	"threading/internal/deque"
	"threading/internal/sched"
	"threading/internal/worksteal"
)

// cilkFor is the Cilk Plus loop configuration: cilk_for semantics,
// i.e. recursive divide-and-conquer splitting of the iteration space
// into spawned tasks over the lock-free work-stealing pool. Chunk
// distribution travels through steals — the property the paper blames
// for cilk_for's losses on flat data-parallel loops.
type cilkFor struct {
	pool  *worksteal.Pool
	n     int
	grain int // 0 selects the cilk_for default heuristic
}

// NewCilkFor returns the cilk_for model with the default grain
// heuristic min(2048, ceil(n/8p)) and the paper-faithful eager
// partitioner.
func NewCilkFor(threads int) Model {
	return NewCilkForPartitioner(threads, worksteal.Eager)
}

// newWorkstealPool builds the lock-free pool shared by the cilk
// models from the resolved model options. A nil tracer in cfg leaves
// tracing disabled.
func newWorkstealPool(threads int, cfg config) *worksteal.Pool {
	return worksteal.NewPool(threads,
		worksteal.WithDequeKind(deque.KindChaseLev),
		worksteal.WithPartitioner(cfg.partitioner),
		worksteal.WithTracer(cfg.tracer),
		worksteal.WithPinnedWorkers(cfg.pinned))
}

// NewCilkForPartitioner returns a cilk_for model whose loops are
// decomposed by the given partitioner — worksteal.Eager for the
// paper's up-front divide-and-conquer, worksteal.Lazy for
// demand-driven splitting.
func NewCilkForPartitioner(threads int, part worksteal.Partitioner) Model {
	return &cilkFor{pool: newWorkstealPool(threads, config{partitioner: part}), n: threads}
}

// NewCilkForGrain returns a cilk_for model with a fixed grain size,
// for the grain-size ablation benchmark.
func NewCilkForGrain(threads, grain int) Model {
	m := NewCilkFor(threads).(*cilkFor)
	m.grain = grain
	return m
}

// NewCilkForGrainPartitioner returns a cilk_for model with both a
// fixed grain size and a partitioner — the configuration surface of
// the loop-distribution benchmark, which contrasts eager and lazy
// decomposition at a distribution-stressing grain.
func NewCilkForGrainPartitioner(threads, grain int, part worksteal.Partitioner) Model {
	m := NewCilkForPartitioner(threads, part).(*cilkFor)
	m.grain = grain
	return m
}

func (m *cilkFor) Name() string { return CilkFor }
func (m *cilkFor) Threads() int { return m.n }

func (m *cilkFor) ParallelFor(n int, body func(lo, hi int)) {
	mustRun(m.ParallelForCtx(context.Background(), n, body))
}

func (m *cilkFor) ParallelForCtx(ctx context.Context, n int, body func(lo, hi int)) error {
	return m.pool.RunCtx(ctx, func(c *worksteal.Ctx) {
		c.ForDAC(0, n, m.grain, func(_ *worksteal.Ctx, l, h int) { body(l, h) })
	})
}

func (m *cilkFor) ParallelReduce(n int, identity float64,
	body func(lo, hi int, acc float64) float64,
	combine func(a, b float64) float64) float64 {

	v, err := m.ParallelReduceCtx(context.Background(), n, identity, body, combine)
	mustRun(err)
	return v
}

func (m *cilkFor) ParallelReduceCtx(ctx context.Context, n int, identity float64,
	body func(lo, hi int, acc float64) float64,
	combine func(a, b float64) float64) (float64, error) {

	r := worksteal.NewReducer(m.pool, identity, combine)
	err := m.pool.RunCtx(ctx, func(c *worksteal.Ctx) {
		c.ForDAC(0, n, m.grain, func(cc *worksteal.Ctx, l, h int) {
			v := r.View(cc)
			*v = body(l, h, *v)
		})
	})
	if err != nil {
		return identity, err
	}
	return r.Value(), nil
}

func (m *cilkFor) SupportsTasks() bool { return false }

func (m *cilkFor) TaskRun(func(TaskScope)) {
	panic("models: cilk_for is a loop model; use cilk_spawn for task parallelism")
}

func (m *cilkFor) TaskRunCtx(context.Context, func(TaskScope)) error {
	return fmt.Errorf("models: %s: %w", CilkFor, ErrTasksUnsupported)
}

func (m *cilkFor) SchedulerStats() (sched.Snapshot, bool) { return m.pool.Stats(), true }

func (m *cilkFor) ResetSchedulerStats() { m.pool.ResetStats() }

func (m *cilkFor) Close() { m.pool.Close() }

// cilkSpawn is the Cilk Plus tasking configuration: cilk_spawn /
// cilk_sync over lock-free Chase-Lev deques. For flat loops it spawns
// one task per manual chunk (the paper's task versions of the data
// kernels); for recursion it exposes spawn/sync directly.
type cilkSpawn struct {
	pool *worksteal.Pool
	n    int
}

// NewCilkSpawn returns the cilk_spawn model.
func NewCilkSpawn(threads int) Model {
	return NewCilkSpawnPartitioner(threads, worksteal.Eager)
}

// NewCilkSpawnPartitioner returns a cilk_spawn model whose pool is
// configured with the given partitioner. The model's own flat loops
// use manual chunked spawns, so the partitioner only affects task
// bodies that call back into ForDAC-based helpers; it is accepted here
// so a harness can configure every work-stealing model uniformly.
func NewCilkSpawnPartitioner(threads int, part worksteal.Partitioner) Model {
	return &cilkSpawn{pool: newWorkstealPool(threads, config{partitioner: part}), n: threads}
}

// NewCilkSpawnWithDeque returns a cilk_spawn model over the given
// deque kind — the Chase-Lev vs locked-deque ablation that isolates
// the paper's explanation for Fig. 5.
func NewCilkSpawnWithDeque(threads int, kind deque.Kind) Model {
	return &cilkSpawn{
		pool: worksteal.NewPool(threads, worksteal.WithDequeKind(kind)),
		n:    threads,
	}
}

func (m *cilkSpawn) Name() string { return CilkSpawn }
func (m *cilkSpawn) Threads() int { return m.n }

func (m *cilkSpawn) ParallelFor(n int, body func(lo, hi int)) {
	mustRun(m.ParallelForCtx(context.Background(), n, body))
}

func (m *cilkSpawn) ParallelForCtx(ctx context.Context, n int, body func(lo, hi int)) error {
	k := m.n
	return m.pool.RunCtx(ctx, func(c *worksteal.Ctx) {
		for i := 0; i < k; i++ {
			lo, hi := chunkFor(n, k, i)
			if lo >= hi {
				continue
			}
			c.Spawn(func(*worksteal.Ctx) { body(lo, hi) })
		}
		c.Sync()
	})
}

func (m *cilkSpawn) ParallelReduce(n int, identity float64,
	body func(lo, hi int, acc float64) float64,
	combine func(a, b float64) float64) float64 {

	v, err := m.ParallelReduceCtx(context.Background(), n, identity, body, combine)
	mustRun(err)
	return v
}

func (m *cilkSpawn) ParallelReduceCtx(ctx context.Context, n int, identity float64,
	body func(lo, hi int, acc float64) float64,
	combine func(a, b float64) float64) (float64, error) {

	k := m.n
	partials := make([]float64, k)
	err := m.pool.RunCtx(ctx, func(c *worksteal.Ctx) {
		for i := 0; i < k; i++ {
			i := i
			lo, hi := chunkFor(n, k, i)
			partials[i] = identity
			if lo >= hi {
				continue
			}
			c.Spawn(func(*worksteal.Ctx) { partials[i] = body(lo, hi, identity) })
		}
		c.Sync()
	})
	if err != nil {
		return identity, err
	}
	acc := identity
	for _, p := range partials {
		acc = combine(acc, p)
	}
	return acc, nil
}

func (m *cilkSpawn) SupportsTasks() bool { return true }

// cilkScope adapts worksteal spawn/sync to TaskScope.
type cilkScope struct {
	c *worksteal.Ctx
}

func (s *cilkScope) Spawn(fn func(TaskScope)) {
	s.c.Spawn(func(inner *worksteal.Ctx) {
		fn(&cilkScope{c: inner})
	})
}

func (s *cilkScope) Sync() { s.c.Sync() }

func (m *cilkSpawn) TaskRun(root func(TaskScope)) {
	mustRun(m.TaskRunCtx(context.Background(), root))
}

func (m *cilkSpawn) TaskRunCtx(ctx context.Context, root func(TaskScope)) error {
	return m.pool.RunCtx(ctx, func(c *worksteal.Ctx) {
		root(&cilkScope{c: c})
		// The pool's implicit sync at task return joins stragglers.
	})
}

func (m *cilkSpawn) SchedulerStats() (sched.Snapshot, bool) { return m.pool.Stats(), true }

func (m *cilkSpawn) ResetSchedulerStats() { m.pool.ResetStats() }

func (m *cilkSpawn) Close() { m.pool.Close() }
