package models

import (
	"testing"

	"threading/internal/tracez"
)

// TestWithTracerReachesEveryModel verifies the tracer option is
// actually plumbed into each model's runtime: running a loop under any
// of the six models must leave events in the tracer.
func TestWithTracerReachesEveryModel(t *testing.T) {
	for _, name := range DataNames() {
		t.Run(name, func(t *testing.T) {
			tr := tracez.New(1 << 12)
			m := MustNew(name, 2, WithTracer(tr))
			defer m.Close()
			var total int64
			m.ParallelFor(256, func(lo, hi int) {
				// Touch the range so chunk bodies are not optimized away.
				for i := lo; i < hi; i++ {
					total++
				}
			})
			snap := tr.Snapshot()
			events := 0
			for _, wt := range snap.Workers {
				events += len(wt.Events)
			}
			if events == 0 {
				t.Fatalf("%s recorded no trace events", name)
			}
		})
	}
}

// TestWithTracerTaskModels verifies recursive task runs reach the
// trace too (the cpp models route them through the overflow ring).
func TestWithTracerTaskModels(t *testing.T) {
	for _, name := range TaskNames() {
		t.Run(name, func(t *testing.T) {
			tr := tracez.New(1 << 12)
			m := MustNew(name, 2, WithTracer(tr))
			defer m.Close()
			m.TaskRun(func(s TaskScope) {
				for i := 0; i < 4; i++ {
					s.Spawn(func(TaskScope) {})
				}
				s.Sync()
			})
			snap := tr.Snapshot()
			events := 0
			for _, wt := range snap.Workers {
				events += len(wt.Events)
			}
			if events == 0 {
				t.Fatalf("%s recorded no trace events for a task run", name)
			}
		})
	}
}

// TestWithoutTracerStillWorks pins the disabled path: models built
// without WithTracer must run normally (nil rings, no events).
func TestWithoutTracerStillWorks(t *testing.T) {
	for _, name := range DataNames() {
		m := MustNew(name, 2)
		m.ParallelFor(64, func(int, int) {})
		m.Close()
	}
}
