package models

import (
	"context"
	"fmt"

	"threading/internal/forkjoin"
	"threading/internal/sched"
)

// ompFor is the OpenMP work-sharing configuration: a persistent
// fork-join team distributes loop iterations with the static schedule
// (the paper applies static scheduling across all models for the
// data-parallel comparison).
type ompFor struct {
	team *forkjoin.Team
	n    int
}

// NewOMPFor returns the omp_for model: fork-join work-sharing data
// parallelism on a persistent team.
func NewOMPFor(threads int) Model {
	return &ompFor{team: forkjoin.NewTeam(threads), n: threads}
}

// NewOMPForWithOptions is NewOMPFor with explicit runtime options,
// for ablation benchmarks (e.g. central vs sense-reversing barrier).
func NewOMPForWithOptions(threads int, opts ...forkjoin.Option) Model {
	return &ompFor{team: forkjoin.NewTeam(threads, opts...), n: threads}
}

func (m *ompFor) Name() string { return OMPFor }
func (m *ompFor) Threads() int { return m.n }

func (m *ompFor) ParallelFor(n int, body func(lo, hi int)) {
	mustRun(m.ParallelForCtx(context.Background(), n, body))
}

func (m *ompFor) ParallelForCtx(ctx context.Context, n int, body func(lo, hi int)) error {
	return m.team.ParallelCtx(ctx, func(tc *forkjoin.Ctx) {
		tc.ForRangeNoWait(m.team.DefaultSchedule(), 0, n, body)
		// The region's end barrier is the loop's implicit barrier.
	})
}

// Scheduler is the extra surface of the omp_for model: work-sharing
// with an explicit schedule, for the schedule ablation benchmarks.
// Obtain it by type-asserting the Model returned by NewOMPFor.
type Scheduler interface {
	Schedule(s forkjoin.Schedule, n int, body func(lo, hi int))
}

// Schedule exposes work-sharing with an explicit schedule, used by the
// schedule ablation benchmarks. It is specific to the omp_for model.
func (m *ompFor) Schedule(s forkjoin.Schedule, n int, body func(lo, hi int)) {
	m.team.Parallel(func(tc *forkjoin.Ctx) {
		tc.ForRangeNoWait(s, 0, n, body)
	})
}

func (m *ompFor) ParallelReduce(n int, identity float64,
	body func(lo, hi int, acc float64) float64,
	combine func(a, b float64) float64) float64 {

	v, err := m.ParallelReduceCtx(context.Background(), n, identity, body, combine)
	mustRun(err)
	return v
}

func (m *ompFor) ParallelReduceCtx(ctx context.Context, n int, identity float64,
	body func(lo, hi int, acc float64) float64,
	combine func(a, b float64) float64) (float64, error) {

	var result float64
	err := m.team.ParallelCtx(ctx, func(tc *forkjoin.Ctx) {
		r := tc.ReduceFloat64(m.team.DefaultSchedule(), 0, n, identity, body, combine)
		tc.Master(func() { result = r })
	})
	if err != nil {
		return identity, err
	}
	return result, nil
}

func (m *ompFor) SupportsTasks() bool { return false }

func (m *ompFor) TaskRun(func(TaskScope)) {
	panic("models: omp_for is a work-sharing model; use omp_task for task parallelism")
}

func (m *ompFor) TaskRunCtx(context.Context, func(TaskScope)) error {
	return fmt.Errorf("models: %s: %w", OMPFor, ErrTasksUnsupported)
}

func (m *ompFor) SchedulerStats() (sched.Snapshot, bool) { return m.team.Stats(), true }

func (m *ompFor) ResetSchedulerStats() { m.team.ResetStats() }

func (m *ompFor) Close() { m.team.Close() }

// ompTask is the OpenMP tasking configuration: the master member
// creates explicit tasks (one per manual chunk for loops, one per
// spawn for recursion) that are scheduled over lock-based per-member
// deques, modelling the Intel OpenMP task runtime.
type ompTask struct {
	team *forkjoin.Team
	n    int
}

// NewOMPTask returns the omp_task model.
func NewOMPTask(threads int) Model {
	return &ompTask{team: forkjoin.NewTeam(threads), n: threads}
}

// NewOMPTaskWithOptions is NewOMPTask with explicit runtime options,
// for ablations (e.g. lock-free task deques, immediate task policy).
func NewOMPTaskWithOptions(threads int, opts ...forkjoin.Option) Model {
	return &ompTask{team: forkjoin.NewTeam(threads, opts...), n: threads}
}

func (m *ompTask) Name() string { return OMPTask }
func (m *ompTask) Threads() int { return m.n }

func (m *ompTask) ParallelFor(n int, body func(lo, hi int)) {
	mustRun(m.ParallelForCtx(context.Background(), n, body))
}

func (m *ompTask) ParallelForCtx(ctx context.Context, n int, body func(lo, hi int)) error {
	k := m.n
	return m.team.ParallelCtx(ctx, func(tc *forkjoin.Ctx) {
		tc.Master(func() {
			for i := 0; i < k; i++ {
				lo, hi := chunkFor(n, k, i)
				if lo >= hi {
					continue
				}
				tc.Task(func(*forkjoin.Ctx) { body(lo, hi) })
			}
			tc.Taskwait()
		})
	})
}

func (m *ompTask) ParallelReduce(n int, identity float64,
	body func(lo, hi int, acc float64) float64,
	combine func(a, b float64) float64) float64 {

	v, err := m.ParallelReduceCtx(context.Background(), n, identity, body, combine)
	mustRun(err)
	return v
}

func (m *ompTask) ParallelReduceCtx(ctx context.Context, n int, identity float64,
	body func(lo, hi int, acc float64) float64,
	combine func(a, b float64) float64) (float64, error) {

	k := m.n
	partials := make([]float64, k)
	err := m.team.ParallelCtx(ctx, func(tc *forkjoin.Ctx) {
		tc.Master(func() {
			for i := 0; i < k; i++ {
				i := i
				lo, hi := chunkFor(n, k, i)
				partials[i] = identity
				if lo >= hi {
					continue
				}
				tc.Task(func(*forkjoin.Ctx) { partials[i] = body(lo, hi, identity) })
			}
			tc.Taskwait()
		})
	})
	if err != nil {
		return identity, err
	}
	acc := identity
	for _, p := range partials {
		acc = combine(acc, p)
	}
	return acc, nil
}

func (m *ompTask) SupportsTasks() bool { return true }

// ompScope adapts forkjoin tasking to TaskScope. Each scope tracks
// the Ctx of the member executing its task; Sync maps to taskwait,
// which joins exactly the children of the current task — the same
// semantics OpenMP gives the paper's omp-task Fibonacci.
type ompScope struct {
	tc *forkjoin.Ctx
}

func (s *ompScope) Spawn(fn func(TaskScope)) {
	s.tc.Task(func(inner *forkjoin.Ctx) {
		fn(&ompScope{tc: inner})
	})
}

func (s *ompScope) Sync() { s.tc.Taskwait() }

func (m *ompTask) TaskRun(root func(TaskScope)) {
	mustRun(m.TaskRunCtx(context.Background(), root))
}

func (m *ompTask) TaskRunCtx(ctx context.Context, root func(TaskScope)) error {
	return m.team.ParallelCtx(ctx, func(tc *forkjoin.Ctx) {
		tc.Master(func() {
			root(&ompScope{tc: tc})
			tc.Taskwait()
		})
	})
}

func (m *ompTask) SchedulerStats() (sched.Snapshot, bool) { return m.team.Stats(), true }

func (m *ompTask) ResetSchedulerStats() { m.team.ResetStats() }

func (m *ompTask) Close() { m.team.Close() }
