// Package models presents the six threading-model configurations the
// reproduced paper benchmarks behind one interface, so every kernel
// and application in this repository is written once and executed
// under each model:
//
//	omp_for    — fork-join work-sharing loops (OpenMP parallel for)
//	omp_task   — explicit tasks over lock-based deques (OpenMP task)
//	cilk_for   — divide-and-conquer loops over work stealing (cilk_for)
//	cilk_spawn — spawn/sync over lock-free work stealing (cilk_spawn)
//	cpp_thread — manual chunking, a fresh thread per chunk (std::thread)
//	cpp_async  — futures, one async task per chunk (std::async)
//
// The models differ only in scheduling policy and runtime machinery;
// the numeric work performed for a given kernel is identical, which is
// the property that makes cross-model timing comparisons meaningful.
package models

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"threading/internal/forkjoin"
	"threading/internal/sched"
	"threading/internal/tracez"
	"threading/internal/worksteal"
)

// ErrTasksUnsupported is returned (wrapped with the model's name) by
// TaskRunCtx on pure loop models — omp_for and cilk_for — which
// cannot express recursive task parallelism. Test with errors.Is.
var ErrTasksUnsupported = errors.New("model does not support task parallelism")

// Model is one threading-model configuration. Implementations are
// safe for repeated use but not for concurrent calls; Close releases
// any persistent workers.
//
// Every blocking operation comes in two forms: a context-aware
// variant (ParallelForCtx, ParallelReduceCtx, TaskRunCtx) that
// supports cooperative cancellation and returns the region's first
// failure as an error, and a legacy variant that runs under
// context.Background and panics on failure. Cancellation is observed
// at chunk/task boundaries through the shared sched.Region flag, so
// every model pays the same one-atomic-load cost and cross-model
// timings remain comparable.
type Model interface {
	// Name returns the model's identifier, e.g. "omp_for".
	Name() string
	// Threads returns the degree of parallelism the model was created
	// with.
	Threads() int
	// ParallelFor partitions [0, n) across the model's threads and
	// invokes body on disjoint chunks covering the range. It returns
	// after every chunk completes.
	ParallelFor(n int, body func(lo, hi int))
	// ParallelForCtx is ParallelFor with cooperative cancellation:
	// once ctx is done, unstarted chunks are skipped, in-flight chunks
	// drain, and the context's error is returned. A panic in body
	// cancels the loop and is returned as a *sched.PanicError. The
	// model remains usable after a canceled or failed loop.
	ParallelForCtx(ctx context.Context, n int, body func(lo, hi int)) error
	// ParallelReduce folds [0, n) into a float64: body folds one
	// chunk starting from acc, combine merges per-thread partials.
	// combine must be associative and commutative.
	ParallelReduce(n int, identity float64,
		body func(lo, hi int, acc float64) float64,
		combine func(a, b float64) float64) float64
	// ParallelReduceCtx is ParallelReduce with cooperative
	// cancellation. On failure it returns identity together with the
	// region's first error; the partial sums of a canceled reduction
	// are never observable.
	ParallelReduceCtx(ctx context.Context, n int, identity float64,
		body func(lo, hi int, acc float64) float64,
		combine func(a, b float64) float64) (float64, error)
	// SupportsTasks reports whether the model can express recursive
	// task parallelism. Pure loop models (omp_for, cilk_for) cannot,
	// mirroring the paper's Fibonacci experiment which runs only the
	// task-capable configurations.
	SupportsTasks() bool
	// TaskRun executes root as a task that may recursively Spawn and
	// Sync children. It panics for models where SupportsTasks is
	// false.
	TaskRun(root func(TaskScope))
	// TaskRunCtx is TaskRun with cooperative cancellation: once ctx
	// is done, further Spawns are dropped and the context's error is
	// returned; a task panic is returned as a *sched.PanicError. On
	// loop-only models it returns ErrTasksUnsupported (wrapped with
	// the model's name) instead of panicking.
	TaskRunCtx(ctx context.Context, root func(TaskScope)) error
	// SchedulerStats returns scheduler counters when the model's
	// runtime collects them (the pooled runtimes do; the raw
	// thread-per-chunk models do not).
	SchedulerStats() (sched.Snapshot, bool)
	// ResetSchedulerStats zeroes the counters; a no-op for models
	// without a persistent runtime.
	ResetSchedulerStats()
	// Close releases persistent workers. The model must not be used
	// afterwards.
	Close()
}

// TaskScope lets a task spawn and join children, independent of the
// underlying runtime. Spawn and Sync must only be called by the task
// that owns the scope.
type TaskScope interface {
	// Spawn schedules fn as a child task; fn receives its own scope.
	Spawn(fn func(TaskScope))
	// Sync blocks until all children spawned through this scope have
	// completed.
	Sync()
}

// Model names, as used by the benchmark harness and CLI tools.
const (
	OMPFor    = "omp_for"
	OMPTask   = "omp_task"
	CilkFor   = "cilk_for"
	CilkSpawn = "cilk_spawn"
	CPPThread = "cpp_thread"
	CPPAsync  = "cpp_async"
)

// Option configures optional, model-independent construction knobs.
// Models that a knob does not apply to simply ignore it, so a harness
// can pass the same options to every model name uniformly. Option is
// an interface (rather than a bare func type) so the root threading
// package can define combined option values that satisfy several
// layers' option types at once.
type Option interface{ applyModel(*config) }

type optionFunc func(*config)

func (f optionFunc) applyModel(c *config) { f(c) }

// config collects the resolved Option values.
type config struct {
	partitioner worksteal.Partitioner
	grain       int
	tracer      *tracez.Tracer
	shards      int
	balancer    string
	pinned      bool
}

// WithPartitioner selects the loop partitioner used by the
// work-stealing models (cilk_for, cilk_spawn). The zero value is
// worksteal.Eager, the paper-faithful divide-and-conquer
// decomposition; worksteal.Lazy enables demand-driven splitting. The
// other four models ignore this option.
func WithPartitioner(p worksteal.Partitioner) Option {
	return optionFunc(func(c *config) { c.partitioner = p })
}

// WithGrain fixes the cilk_for loop grain (the smallest chunk the
// divide-and-conquer decomposition produces). The zero value keeps
// the default heuristic min(2048, ceil(n/8p)); small fixed grains
// stress the distribution machinery, which is what the benchmark
// gate's work-stealing series measure. Models without a grain knob
// ignore this option.
func WithGrain(g int) Option {
	return optionFunc(func(c *config) { c.grain = g })
}

// WithTracer attaches a scheduler-event tracer to the model's runtime:
// the pooled runtimes record per-worker events, the thread-per-chunk
// models record one ring per chunk index plus an overflow ring for
// recursive tasks. A nil tracer (the zero value) disables tracing, and
// the runtimes' hot paths then pay only a nil check.
func WithTracer(tr *tracez.Tracer) Option {
	return optionFunc(func(c *config) { c.tracer = tr })
}

// WithShardCount splits a pooled model's runtime into n shards routed
// by a shard.Resolver: n independent pools (cilk_for, cilk_spawn) or
// teams (omp_for, omp_task) splitting the model's thread budget, so
// each steal domain is bounded to one shard's workers. n = 0 (the
// zero value) disables sharding; n < 0 selects one shard per
// GOMAXPROCS processor; n > the thread count is clamped. The
// thread-per-chunk models (cpp_*) ignore this option, so a harness
// can pass it uniformly.
func WithShardCount(n int) Option {
	return optionFunc(func(c *config) { c.shards = n })
}

// WithShardBalancer selects the balancer of a sharded model's
// resolver by name: "round-robin" (the default), "random",
// "least-loaded", or "affinity". Ignored unless sharding is enabled.
func WithShardBalancer(name string) Option {
	return optionFunc(func(c *config) { c.balancer = name })
}

// WithPinnedWorkers locks the pooled runtimes' worker goroutines to
// OS threads (runtime.LockOSThread) for the life of the model: pool
// workers for cilk_for/cilk_spawn, members 1..n-1 for
// omp_for/omp_task (member 0 is the caller's goroutine), and every
// shard's workers for the sharded forms. The thread-per-chunk models
// (cpp_*) ignore this option — their threads are born and die with
// each chunk, so there is nothing durable to pin.
func WithPinnedWorkers(on bool) Option {
	return optionFunc(func(c *config) { c.pinned = on })
}

// factories maps model names to constructors.
var factories = map[string]func(threads int, cfg config) Model{
	OMPFor: func(t int, cfg config) Model {
		return NewOMPForWithOptions(t, forkjoin.WithTracer(cfg.tracer),
			forkjoin.WithPinnedWorkers(cfg.pinned))
	},
	OMPTask: func(t int, cfg config) Model {
		return NewOMPTaskWithOptions(t, forkjoin.WithTracer(cfg.tracer),
			forkjoin.WithPinnedWorkers(cfg.pinned))
	},
	CilkFor: func(t int, cfg config) Model {
		return &cilkFor{pool: newWorkstealPool(t, cfg), n: t, grain: cfg.grain}
	},
	CilkSpawn: func(t int, cfg config) Model {
		return &cilkSpawn{pool: newWorkstealPool(t, cfg), n: t}
	},
	CPPThread: func(t int, cfg config) Model { return newCPPThread(t, cfg.tracer) },
	CPPAsync:  func(t int, cfg config) Model { return newCPPAsync(t, cfg.tracer) },
}

// Names returns all model names in a stable order.
func Names() []string {
	out := make([]string, 0, len(factories))
	for n := range factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DataNames returns the models used in the paper's data-parallel
// experiments, in presentation order.
func DataNames() []string {
	return []string{OMPFor, OMPTask, CilkFor, CilkSpawn, CPPThread, CPPAsync}
}

// TaskNames returns the task-capable models, in presentation order.
func TaskNames() []string {
	return []string{OMPTask, CilkSpawn, CPPThread, CPPAsync}
}

// New constructs the named model with the given thread count and
// options. A "sharded:" name prefix (e.g. "sharded:cilk_for") wraps
// the base model's runtime in a shard.Resolver, as does WithShardCount
// on a shardable base name; see NewSharded for the semantics.
func New(name string, threads int, opts ...Option) (Model, error) {
	if threads < 1 {
		return nil, fmt.Errorf("models: thread count %d < 1", threads)
	}
	var cfg config
	for _, o := range opts {
		o.applyModel(&cfg)
	}
	if base, ok := strings.CutPrefix(name, ShardedPrefix); ok {
		return newSharded(base, threads, cfg)
	}
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
	}
	if cfg.shards != 0 && shardable(name) {
		return newSharded(name, threads, cfg)
	}
	return f(threads, cfg), nil
}

// MustNew is New, panicking on error. For tests and benchmarks.
func MustNew(name string, threads int, opts ...Option) Model {
	m, err := New(name, threads, opts...)
	if err != nil {
		panic(err)
	}
	return m
}

// mustRun adapts a ctx-variant failure to the legacy panicking
// surface: a recorded task panic re-panics with its original value in
// the message, any other error panics wholesale. The legacy Model
// methods are thin wrappers built from this.
func mustRun(err error) {
	if err == nil {
		return
	}
	var pe *sched.PanicError
	if errors.As(err, &pe) {
		panic(fmt.Sprintf("models: parallel operation panicked: %v", pe.Value))
	}
	panic(fmt.Sprintf("models: parallel operation failed: %v", err))
}

// guarded wraps fn for execution on a raw thread or async task under
// reg: the body is skipped once the region is canceled, and a panic
// is recorded into the region instead of crossing the thread
// boundary — the same per-chunk guard the pooled runtimes apply
// internally, so all six models share cancellation semantics.
func guarded(reg *sched.Region, fn func()) func() {
	return func() {
		if reg.Canceled() {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				reg.RecordPanic(r)
			}
		}()
		fn()
	}
}

// chunkFor returns the manual-chunking bounds of chunk i of k over n
// iterations: contiguous blocks whose sizes differ by at most one —
// BASE = N/threads in the paper's C++ versions.
func chunkFor(n, k, i int) (lo, hi int) {
	base := n / k
	rem := n % k
	lo = i*base + min(i, rem)
	size := base
	if i < rem {
		size++
	}
	return lo, lo + size
}
