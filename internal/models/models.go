// Package models presents the six threading-model configurations the
// reproduced paper benchmarks behind one interface, so every kernel
// and application in this repository is written once and executed
// under each model:
//
//	omp_for    — fork-join work-sharing loops (OpenMP parallel for)
//	omp_task   — explicit tasks over lock-based deques (OpenMP task)
//	cilk_for   — divide-and-conquer loops over work stealing (cilk_for)
//	cilk_spawn — spawn/sync over lock-free work stealing (cilk_spawn)
//	cpp_thread — manual chunking, a fresh thread per chunk (std::thread)
//	cpp_async  — futures, one async task per chunk (std::async)
//
// The models differ only in scheduling policy and runtime machinery;
// the numeric work performed for a given kernel is identical, which is
// the property that makes cross-model timing comparisons meaningful.
package models

import (
	"fmt"
	"sort"

	"threading/internal/sched"
)

// Model is one threading-model configuration. Implementations are
// safe for repeated use but not for concurrent calls; Close releases
// any persistent workers.
type Model interface {
	// Name returns the model's identifier, e.g. "omp_for".
	Name() string
	// Threads returns the degree of parallelism the model was created
	// with.
	Threads() int
	// ParallelFor partitions [0, n) across the model's threads and
	// invokes body on disjoint chunks covering the range. It returns
	// after every chunk completes.
	ParallelFor(n int, body func(lo, hi int))
	// ParallelReduce folds [0, n) into a float64: body folds one
	// chunk starting from acc, combine merges per-thread partials.
	// combine must be associative and commutative.
	ParallelReduce(n int, identity float64,
		body func(lo, hi int, acc float64) float64,
		combine func(a, b float64) float64) float64
	// SupportsTasks reports whether the model can express recursive
	// task parallelism. Pure loop models (omp_for, cilk_for) cannot,
	// mirroring the paper's Fibonacci experiment which runs only the
	// task-capable configurations.
	SupportsTasks() bool
	// TaskRun executes root as a task that may recursively Spawn and
	// Sync children. It panics for models where SupportsTasks is
	// false.
	TaskRun(root func(TaskScope))
	// SchedulerStats returns scheduler counters when the model's
	// runtime collects them (the pooled runtimes do; the raw
	// thread-per-chunk models do not).
	SchedulerStats() (sched.Snapshot, bool)
	// ResetSchedulerStats zeroes the counters; a no-op for models
	// without a persistent runtime.
	ResetSchedulerStats()
	// Close releases persistent workers. The model must not be used
	// afterwards.
	Close()
}

// TaskScope lets a task spawn and join children, independent of the
// underlying runtime. Spawn and Sync must only be called by the task
// that owns the scope.
type TaskScope interface {
	// Spawn schedules fn as a child task; fn receives its own scope.
	Spawn(fn func(TaskScope))
	// Sync blocks until all children spawned through this scope have
	// completed.
	Sync()
}

// Model names, as used by the benchmark harness and CLI tools.
const (
	OMPFor    = "omp_for"
	OMPTask   = "omp_task"
	CilkFor   = "cilk_for"
	CilkSpawn = "cilk_spawn"
	CPPThread = "cpp_thread"
	CPPAsync  = "cpp_async"
)

// factories maps model names to constructors.
var factories = map[string]func(threads int) Model{
	OMPFor:    func(t int) Model { return NewOMPFor(t) },
	OMPTask:   func(t int) Model { return NewOMPTask(t) },
	CilkFor:   func(t int) Model { return NewCilkFor(t) },
	CilkSpawn: func(t int) Model { return NewCilkSpawn(t) },
	CPPThread: func(t int) Model { return NewCPPThread(t) },
	CPPAsync:  func(t int) Model { return NewCPPAsync(t) },
}

// Names returns all model names in a stable order.
func Names() []string {
	out := make([]string, 0, len(factories))
	for n := range factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DataNames returns the models used in the paper's data-parallel
// experiments, in presentation order.
func DataNames() []string {
	return []string{OMPFor, OMPTask, CilkFor, CilkSpawn, CPPThread, CPPAsync}
}

// TaskNames returns the task-capable models, in presentation order.
func TaskNames() []string {
	return []string{OMPTask, CilkSpawn, CPPThread, CPPAsync}
}

// New constructs the named model with the given thread count.
func New(name string, threads int) (Model, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
	}
	if threads < 1 {
		return nil, fmt.Errorf("models: thread count %d < 1", threads)
	}
	return f(threads), nil
}

// MustNew is New, panicking on error. For tests and benchmarks.
func MustNew(name string, threads int) Model {
	m, err := New(name, threads)
	if err != nil {
		panic(err)
	}
	return m
}

// chunkFor returns the manual-chunking bounds of chunk i of k over n
// iterations: contiguous blocks whose sizes differ by at most one —
// BASE = N/threads in the paper's C++ versions.
func chunkFor(n, k, i int) (lo, hi int) {
	base := n / k
	rem := n % k
	lo = i*base + min(i, rem)
	size := base
	if i < rem {
		size++
	}
	return lo, lo + size
}
