package models

import (
	"context"
	"fmt"
	"strings"

	"threading/internal/forkjoin"
	"threading/internal/sched"
	"threading/internal/shard"
)

// NewExecutor is the concurrent-submission counterpart of New: it
// builds the named model's runtime and returns it behind the
// shard.Executor interface instead of the Model one. Model methods
// are documented as not safe for concurrent calls — the Model layer
// exists to reproduce the paper's single-benchmark-loop semantics —
// whereas every Executor implementation accepts concurrent
// submitters: a worksteal.Pool runs concurrent loops help-first (each
// submitter claims one of MaxHelpers slots), a forkjoin.Team
// serializes overlapping loops through its execution lock (arrival
// order becomes queueing delay — a measurable property, not a bug),
// and a shard.Resolver routes concurrent submitters across shards by
// its balancer. That makes NewExecutor the constructor a server
// (cmd/threadserve) uses to put one shared runtime behind many
// request goroutines.
//
// Name resolution matches New: the six base names, plus the
// "sharded:" prefix (or WithShardCount on a shardable base) which
// returns the routing resolver itself. The thread-per-chunk C++
// models have no persistent runtime; they are adapted with a
// stateless executor that creates threads (cpp_thread) or async tasks
// (cpp_async) per call, so their per-operation spawn cost shows up in
// service latency exactly as it does in the paper's wall-time
// numbers. Loop grain is chosen per call via the Executor interface,
// so WithGrain is not consumed here.
//
// Close releases the runtime (Quiesce first, as with any Executor).
func NewExecutor(name string, threads int, opts ...Option) (shard.Executor, error) {
	if threads < 1 {
		return nil, fmt.Errorf("models: thread count %d < 1", threads)
	}
	var cfg config
	for _, o := range opts {
		o.applyModel(&cfg)
	}
	if base, ok := strings.CutPrefix(name, ShardedPrefix); ok {
		return newShardResolver(base, threads, cfg)
	}
	if cfg.shards != 0 && shardable(name) {
		return newShardResolver(name, threads, cfg)
	}
	switch name {
	case CilkFor, CilkSpawn:
		return newWorkstealPool(threads, cfg), nil
	case OMPFor, OMPTask:
		return forkjoin.NewTeam(threads,
			forkjoin.WithTracer(cfg.tracer),
			forkjoin.WithPinnedWorkers(cfg.pinned)), nil
	case CPPThread:
		return &chunkExecutor{m: newCPPThread(threads, cfg.tracer)}, nil
	case CPPAsync:
		return &chunkExecutor{m: newCPPAsync(threads, cfg.tracer)}, nil
	}
	return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
}

// chunkExecutor adapts a thread-per-chunk model (cpp_thread,
// cpp_async) to the Executor surface. The underlying models hold no
// mutable scheduler state — every loop creates fresh threads or async
// tasks and joins them before returning — so concurrent calls are
// independent by construction. Submissions run on a fresh goroutine
// each (the family's thread-per-task semantics) tracked by an
// AsyncGroup for Quiesce. The per-call grain is ignored: chunking is
// fixed at one chunk per configured thread, exactly as the paper's
// manual-chunking C++ versions do.
type chunkExecutor struct {
	m     Model
	async sched.AsyncGroup
}

var _ shard.Executor = (*chunkExecutor)(nil)

func (e *chunkExecutor) ParallelForCtx(ctx context.Context, lo, hi, grain int, body func(l, h int)) error {
	if hi <= lo {
		return ctx.Err()
	}
	return e.m.ParallelForCtx(ctx, hi-lo, func(l, h int) { body(l+lo, h+lo) })
}

func (e *chunkExecutor) ParallelReduceCtx(ctx context.Context, lo, hi, grain int, identity float64,
	body func(l, h int, acc float64) float64,
	combine func(a, b float64) float64) (float64, error) {

	if hi <= lo {
		return identity, ctx.Err()
	}
	return e.m.ParallelReduceCtx(ctx, hi-lo, identity,
		func(l, h int, acc float64) float64 { return body(l+lo, h+lo, acc) },
		combine)
}

func (e *chunkExecutor) SubmitCtx(ctx context.Context, fn func()) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	e.async.Add()
	go func() {
		defer e.async.Done()
		defer func() {
			if r := recover(); r != nil {
				e.async.Record(sched.NewPanicError(r))
			}
		}()
		fn()
	}()
	return nil
}

func (e *chunkExecutor) Quiesce() error { return e.async.Wait() }

func (e *chunkExecutor) Close() { e.m.Close() }
