package models

import (
	"context"
	"strconv"

	"threading/internal/futures"
	"threading/internal/sched"
	"threading/internal/tracez"
)

// cppThread is the C++11 std::thread configuration: no runtime at
// all. Parallel loops are manual chunking — one freshly created
// thread per chunk, joined at the end — so thread creation and join
// overhead is paid on every parallel operation, exactly as in the
// paper's std::thread versions.
type cppThread struct {
	n  int
	tr *tracez.Tracer
}

// NewCPPThread returns the cpp_thread model.
func NewCPPThread(threads int) Model { return newCPPThread(threads, nil) }

func newCPPThread(threads int, tr *tracez.Tracer) Model {
	labelChunkRings(tr, threads)
	return &cppThread{n: threads, tr: tr}
}

// labelChunkRings names the rings a thread-per-chunk model records
// into: chunk index i writes ring i, and recursive task spawns (which
// have no stable chunk identity) share the overflow ring n. The rings
// are created lazily by the first Record; only the labels are eager.
func labelChunkRings(tr *tracez.Tracer, n int) {
	if tr == nil {
		return
	}
	for i := 0; i < n; i++ {
		tr.Label(i, "cpp-c"+strconv.Itoa(i))
	}
	tr.Label(n, "cpp-task")
}

func (m *cppThread) Name() string { return CPPThread }
func (m *cppThread) Threads() int { return m.n }

func (m *cppThread) ParallelFor(n int, body func(lo, hi int)) {
	mustRun(m.ParallelForCtx(context.Background(), n, body))
}

func (m *cppThread) ParallelForCtx(ctx context.Context, n int, body func(lo, hi int)) error {
	reg := sched.NewRegion(ctx)
	k := m.n
	ths := make([]*futures.Thread, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := chunkFor(n, k, i)
		if lo >= hi {
			continue
		}
		ths = append(ths, futures.NewThreadTraced(m.tr.Ring(i), int64(lo), int64(hi),
			guarded(reg, func() { body(lo, hi) })))
	}
	for _, th := range ths {
		//threadvet:ignore ctxdrop drain on purpose: guarded bodies stop at chunk boundaries once ctx cancels, and the region must be empty before the model is reusable (JoinCtx would abandon live threads)
		th.Join()
	}
	return reg.Finish()
}

func (m *cppThread) ParallelReduce(n int, identity float64,
	body func(lo, hi int, acc float64) float64,
	combine func(a, b float64) float64) float64 {

	v, err := m.ParallelReduceCtx(context.Background(), n, identity, body, combine)
	mustRun(err)
	return v
}

func (m *cppThread) ParallelReduceCtx(ctx context.Context, n int, identity float64,
	body func(lo, hi int, acc float64) float64,
	combine func(a, b float64) float64) (float64, error) {

	reg := sched.NewRegion(ctx)
	k := m.n
	partials := make([]float64, k)
	ths := make([]*futures.Thread, 0, k)
	for i := 0; i < k; i++ {
		i := i
		lo, hi := chunkFor(n, k, i)
		partials[i] = identity
		if lo >= hi {
			continue
		}
		ths = append(ths, futures.NewThreadTraced(m.tr.Ring(i), int64(lo), int64(hi),
			guarded(reg, func() { partials[i] = body(lo, hi, identity) })))
	}
	for _, th := range ths {
		//threadvet:ignore ctxdrop drain on purpose: guarded bodies stop at chunk boundaries once ctx cancels, and every partial must be written before the combine loop reads them
		th.Join()
	}
	if err := reg.Finish(); err != nil {
		return identity, err
	}
	acc := identity
	for _, p := range partials {
		acc = combine(acc, p)
	}
	return acc, nil
}

func (m *cppThread) SupportsTasks() bool { return true }

// threadScope implements TaskScope by creating a real thread per
// spawn. This is the configuration the paper reports as hanging for
// fib(20)+ without a cut-off: the thread count equals the task count.
// Callers are expected to bound recursion depth (see kernels.FibTask).
// Every scope in a run shares the run's region: Spawn drops new tasks
// once the region is canceled, and a task panic is recorded into the
// region rather than re-panicking out of Join.
type threadScope struct {
	reg      *sched.Region
	ring     *tracez.Ring // shared overflow ring; nil disables tracing
	children []*futures.Thread
}

func (s *threadScope) Spawn(fn func(TaskScope)) {
	if s.reg.Canceled() {
		return
	}
	reg, ring := s.reg, s.ring
	s.children = append(s.children, futures.NewThreadTraced(ring, 0, 0, guarded(reg, func() {
		child := &threadScope{reg: reg, ring: ring}
		fn(child)
		child.Sync() // a thread joins its own children before exiting
	})))
}

func (s *threadScope) Sync() {
	for _, th := range s.children {
		th.Join()
	}
	s.children = s.children[:0]
}

func (m *cppThread) TaskRun(root func(TaskScope)) {
	mustRun(m.TaskRunCtx(context.Background(), root))
}

func (m *cppThread) TaskRunCtx(ctx context.Context, root func(TaskScope)) error {
	reg := sched.NewRegion(ctx)
	s := &threadScope{reg: reg, ring: m.tr.Ring(m.n)}
	guarded(reg, func() { root(s) })()
	s.Sync() // drain spawned threads even when root panicked or was skipped
	return reg.Finish()
}

func (m *cppThread) SchedulerStats() (sched.Snapshot, bool) {
	return sched.Snapshot{}, false // no runtime, no counters
}

func (m *cppThread) ResetSchedulerStats() {}

func (m *cppThread) Close() {}

// cppAsync is the C++11 std::async configuration: one async task per
// chunk for loops, futures for joins. Each async launch is a fresh
// thread of execution (std::launch::async), so it shares cpp_thread's
// creation overhead but adds future synchronization.
type cppAsync struct {
	n  int
	tr *tracez.Tracer
}

// NewCPPAsync returns the cpp_async model.
func NewCPPAsync(threads int) Model { return newCPPAsync(threads, nil) }

func newCPPAsync(threads int, tr *tracez.Tracer) Model {
	labelChunkRings(tr, threads)
	return &cppAsync{n: threads, tr: tr}
}

func (m *cppAsync) Name() string { return CPPAsync }
func (m *cppAsync) Threads() int { return m.n }

func (m *cppAsync) ParallelFor(n int, body func(lo, hi int)) {
	mustRun(m.ParallelForCtx(context.Background(), n, body))
}

func (m *cppAsync) ParallelForCtx(ctx context.Context, n int, body func(lo, hi int)) error {
	reg := sched.NewRegion(ctx)
	k := m.n
	fs := make([]*futures.Future[struct{}], 0, k)
	for i := 0; i < k; i++ {
		lo, hi := chunkFor(n, k, i)
		if lo >= hi {
			continue
		}
		fs = append(fs, futures.AsyncTraced(m.tr.Ring(i), futures.LaunchAsync, int64(lo), int64(hi),
			func() (struct{}, error) {
				guarded(reg, func() { body(lo, hi) })()
				return struct{}{}, nil
			}))
	}
	for _, f := range fs {
		//threadvet:ignore ctxdrop drain on purpose: guarded bodies stop at chunk boundaries once ctx cancels; GetCtx would abandon running tasks and race the next region
		if _, err := f.Get(); err != nil {
			reg.RecordError(err)
		}
	}
	return reg.Finish()
}

func (m *cppAsync) ParallelReduce(n int, identity float64,
	body func(lo, hi int, acc float64) float64,
	combine func(a, b float64) float64) float64 {

	v, err := m.ParallelReduceCtx(context.Background(), n, identity, body, combine)
	mustRun(err)
	return v
}

func (m *cppAsync) ParallelReduceCtx(ctx context.Context, n int, identity float64,
	body func(lo, hi int, acc float64) float64,
	combine func(a, b float64) float64) (float64, error) {

	reg := sched.NewRegion(ctx)
	k := m.n
	fs := make([]*futures.Future[float64], 0, k)
	for i := 0; i < k; i++ {
		lo, hi := chunkFor(n, k, i)
		if lo >= hi {
			continue
		}
		fs = append(fs, futures.AsyncTraced(m.tr.Ring(i), futures.LaunchAsync, int64(lo), int64(hi),
			func() (v float64, _ error) {
				v = identity
				guarded(reg, func() { v = body(lo, hi, identity) })()
				return v, nil
			}))
	}
	acc := identity
	for _, f := range fs {
		//threadvet:ignore ctxdrop drain on purpose: guarded bodies stop at chunk boundaries once ctx cancels; every chunk future must settle before the region is reported finished
		v, err := f.Get()
		if err != nil {
			reg.RecordError(err)
			continue
		}
		acc = combine(acc, v)
	}
	if err := reg.Finish(); err != nil {
		return identity, err
	}
	return acc, nil
}

func (m *cppAsync) SupportsTasks() bool { return true }

// asyncScope implements TaskScope over std::async-style futures.
// Every scope in a run shares the run's region: Spawn drops new tasks
// once the region is canceled, and a task panic is recorded into the
// region rather than surfacing as a future error.
type asyncScope struct {
	reg      *sched.Region
	ring     *tracez.Ring // shared overflow ring; nil disables tracing
	children []*futures.Future[struct{}]
}

func (s *asyncScope) Spawn(fn func(TaskScope)) {
	if s.reg.Canceled() {
		return
	}
	reg, ring := s.reg, s.ring
	s.children = append(s.children, futures.AsyncTraced(ring, futures.LaunchAsync, 0, 0,
		func() (struct{}, error) {
			guarded(reg, func() {
				child := &asyncScope{reg: reg, ring: ring}
				fn(child)
				child.Sync()
			})()
			return struct{}{}, nil
		}))
}

func (s *asyncScope) Sync() {
	for _, f := range s.children {
		if _, err := f.Get(); err != nil {
			s.reg.RecordError(err)
		}
	}
	s.children = s.children[:0]
}

func (m *cppAsync) TaskRun(root func(TaskScope)) {
	mustRun(m.TaskRunCtx(context.Background(), root))
}

func (m *cppAsync) TaskRunCtx(ctx context.Context, root func(TaskScope)) error {
	reg := sched.NewRegion(ctx)
	s := &asyncScope{reg: reg, ring: m.tr.Ring(m.n)}
	guarded(reg, func() { root(s) })()
	s.Sync() // drain spawned futures even when root panicked or was skipped
	return reg.Finish()
}

func (m *cppAsync) SchedulerStats() (sched.Snapshot, bool) {
	return sched.Snapshot{}, false
}

func (m *cppAsync) ResetSchedulerStats() {}

func (m *cppAsync) Close() {}
