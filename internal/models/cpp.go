package models

import (
	"threading/internal/futures"
	"threading/internal/sched"
)

// cppThread is the C++11 std::thread configuration: no runtime at
// all. Parallel loops are manual chunking — one freshly created
// thread per chunk, joined at the end — so thread creation and join
// overhead is paid on every parallel operation, exactly as in the
// paper's std::thread versions.
type cppThread struct {
	n int
}

// NewCPPThread returns the cpp_thread model.
func NewCPPThread(threads int) Model { return &cppThread{n: threads} }

func (m *cppThread) Name() string { return CPPThread }
func (m *cppThread) Threads() int { return m.n }

func (m *cppThread) ParallelFor(n int, body func(lo, hi int)) {
	k := m.n
	ths := make([]*futures.Thread, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := chunkFor(n, k, i)
		if lo >= hi {
			continue
		}
		ths = append(ths, futures.NewThread(func() { body(lo, hi) }))
	}
	for _, th := range ths {
		th.Join()
	}
}

func (m *cppThread) ParallelReduce(n int, identity float64,
	body func(lo, hi int, acc float64) float64,
	combine func(a, b float64) float64) float64 {

	k := m.n
	partials := make([]float64, k)
	ths := make([]*futures.Thread, 0, k)
	for i := 0; i < k; i++ {
		i := i
		lo, hi := chunkFor(n, k, i)
		partials[i] = identity
		if lo >= hi {
			continue
		}
		ths = append(ths, futures.NewThread(func() { partials[i] = body(lo, hi, identity) }))
	}
	for _, th := range ths {
		th.Join()
	}
	acc := identity
	for _, p := range partials {
		acc = combine(acc, p)
	}
	return acc
}

func (m *cppThread) SupportsTasks() bool { return true }

// threadScope implements TaskScope by creating a real thread per
// spawn. This is the configuration the paper reports as hanging for
// fib(20)+ without a cut-off: the thread count equals the task count.
// Callers are expected to bound recursion depth (see kernels.FibTask).
type threadScope struct {
	children []*futures.Thread
}

func (s *threadScope) Spawn(fn func(TaskScope)) {
	s.children = append(s.children, futures.NewThread(func() {
		child := &threadScope{}
		fn(child)
		child.Sync() // a thread joins its own children before exiting
	}))
}

func (s *threadScope) Sync() {
	for _, th := range s.children {
		th.Join()
	}
	s.children = s.children[:0]
}

func (m *cppThread) TaskRun(root func(TaskScope)) {
	s := &threadScope{}
	root(s)
	s.Sync()
}

func (m *cppThread) SchedulerStats() (sched.Snapshot, bool) {
	return sched.Snapshot{}, false // no runtime, no counters
}

func (m *cppThread) ResetSchedulerStats() {}

func (m *cppThread) Close() {}

// cppAsync is the C++11 std::async configuration: one async task per
// chunk for loops, futures for joins. Each async launch is a fresh
// thread of execution (std::launch::async), so it shares cpp_thread's
// creation overhead but adds future synchronization.
type cppAsync struct {
	n int
}

// NewCPPAsync returns the cpp_async model.
func NewCPPAsync(threads int) Model { return &cppAsync{n: threads} }

func (m *cppAsync) Name() string { return CPPAsync }
func (m *cppAsync) Threads() int { return m.n }

func (m *cppAsync) ParallelFor(n int, body func(lo, hi int)) {
	k := m.n
	fs := make([]*futures.Future[struct{}], 0, k)
	for i := 0; i < k; i++ {
		lo, hi := chunkFor(n, k, i)
		if lo >= hi {
			continue
		}
		fs = append(fs, futures.Async(futures.LaunchAsync, func() (struct{}, error) {
			body(lo, hi)
			return struct{}{}, nil
		}))
	}
	for _, f := range fs {
		if _, err := f.Get(); err != nil {
			panic(err)
		}
	}
}

func (m *cppAsync) ParallelReduce(n int, identity float64,
	body func(lo, hi int, acc float64) float64,
	combine func(a, b float64) float64) float64 {

	k := m.n
	fs := make([]*futures.Future[float64], 0, k)
	for i := 0; i < k; i++ {
		lo, hi := chunkFor(n, k, i)
		if lo >= hi {
			continue
		}
		fs = append(fs, futures.Async(futures.LaunchAsync, func() (float64, error) {
			return body(lo, hi, identity), nil
		}))
	}
	acc := identity
	for _, f := range fs {
		v, err := f.Get()
		if err != nil {
			panic(err)
		}
		acc = combine(acc, v)
	}
	return acc
}

func (m *cppAsync) SupportsTasks() bool { return true }

// asyncScope implements TaskScope over std::async-style futures.
type asyncScope struct {
	children []*futures.Future[struct{}]
}

func (s *asyncScope) Spawn(fn func(TaskScope)) {
	s.children = append(s.children, futures.Async(futures.LaunchAsync,
		func() (struct{}, error) {
			child := &asyncScope{}
			fn(child)
			child.Sync()
			return struct{}{}, nil
		}))
}

func (s *asyncScope) Sync() {
	for _, f := range s.children {
		if _, err := f.Get(); err != nil {
			panic(err)
		}
	}
	s.children = s.children[:0]
}

func (m *cppAsync) TaskRun(root func(TaskScope)) {
	s := &asyncScope{}
	root(s)
	s.Sync()
}

func (m *cppAsync) SchedulerStats() (sched.Snapshot, bool) {
	return sched.Snapshot{}, false
}

func (m *cppAsync) ResetSchedulerStats() {}

func (m *cppAsync) Close() {}
