package models

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"threading/internal/tracez"
)

func TestShardedModelBasics(t *testing.T) {
	for _, base := range shardableNames {
		t.Run(base, func(t *testing.T) {
			m, err := New(ShardedPrefix+base, 4, WithShardCount(2), WithShardBalancer("least-loaded"))
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer m.Close()
			if want := ShardedPrefix + base; m.Name() != want {
				t.Fatalf("Name = %q, want %q", m.Name(), want)
			}
			if m.Threads() != 4 {
				t.Fatalf("Threads = %d, want 4", m.Threads())
			}

			const n = 4096
			var covered atomic.Int64
			if err := m.ParallelForCtx(context.Background(), n, func(lo, hi int) {
				covered.Add(int64(hi - lo))
			}); err != nil {
				t.Fatalf("ParallelForCtx: %v", err)
			}
			if covered.Load() != n {
				t.Fatalf("covered %d of %d iterations", covered.Load(), n)
			}

			sum, err := m.ParallelReduceCtx(context.Background(), n, 0,
				func(lo, hi int, acc float64) float64 {
					for i := lo; i < hi; i++ {
						acc += float64(i)
					}
					return acc
				},
				func(a, b float64) float64 { return a + b })
			if err != nil {
				t.Fatalf("ParallelReduceCtx: %v", err)
			}
			if want := float64(n*(n-1)) / 2; sum != want {
				t.Fatalf("reduce = %v, want %v", sum, want)
			}

			if m.SupportsTasks() {
				t.Fatal("sharded models must not claim task support")
			}
			if err := m.TaskRunCtx(context.Background(), func(TaskScope) {}); !errors.Is(err, ErrTasksUnsupported) {
				t.Fatalf("TaskRunCtx = %v, want ErrTasksUnsupported", err)
			}

			ss, ok := m.(ShardedStats)
			if !ok {
				t.Fatal("sharded model does not expose ShardedStats")
			}
			if got := ss.NumShards(); got != 2 {
				t.Fatalf("NumShards = %d, want 2", got)
			}
			if got := ss.ShardBalancer(); got != "least-loaded" {
				t.Fatalf("ShardBalancer = %q, want least-loaded", got)
			}
			stats := ss.ShardSchedulerStats()
			if len(stats) != 2 {
				t.Fatalf("ShardSchedulerStats returned %d shards, want 2", len(stats))
			}
			merged, ok := m.SchedulerStats()
			if !ok {
				t.Fatal("SchedulerStats not available")
			}
			var tasks int64
			for _, st := range stats {
				tasks += st.Snapshot.TasksExecuted
			}
			if merged.TasksExecuted != tasks {
				t.Fatalf("merged %d tasks, shards sum %d", merged.TasksExecuted, tasks)
			}
		})
	}
}

func TestShardCountOptionOnBaseName(t *testing.T) {
	// WithShardCount on a shardable base name shards it without the
	// prefix; the cpp models ignore the option entirely.
	m, err := New(CilkFor, 4, WithShardCount(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer m.Close()
	if _, ok := m.(ShardedStats); !ok {
		t.Fatal("WithShardCount on cilk_for did not shard the runtime")
	}
	cpp, err := New(CPPThread, 2, WithShardCount(2))
	if err != nil {
		t.Fatalf("New cpp_thread: %v", err)
	}
	defer cpp.Close()
	if _, ok := cpp.(ShardedStats); ok {
		t.Fatal("cpp_thread should ignore WithShardCount")
	}
}

func TestShardedRejectsUnshardable(t *testing.T) {
	if _, err := New(ShardedPrefix+CPPThread, 2); err == nil {
		t.Fatal("sharded:cpp_thread should be rejected")
	}
	if _, err := New(ShardedPrefix+"nope", 2); err == nil {
		t.Fatal("sharded:nope should be rejected")
	}
	if _, err := New(ShardedPrefix+CilkFor, 2, WithShardBalancer("bogus")); err == nil {
		t.Fatal("bogus balancer should be rejected")
	}
}

func TestShardedTracerLanes(t *testing.T) {
	tr := tracez.New(1 << 10)
	m, err := New(ShardedPrefix+CilkFor, 4, WithShardCount(2), WithTracer(tr))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mustRunLoop(t, m)
	m.Close()
	snap := tr.Snapshot()
	if snap == nil || len(snap.Workers) == 0 {
		t.Fatal("no trace captured")
	}
	prefixes := map[string]bool{}
	for _, wt := range snap.Workers {
		if len(wt.Label) >= 3 && wt.Label[0] == 's' {
			prefixes[wt.Label[:3]] = true
		}
	}
	if !prefixes["s0/"] || !prefixes["s1/"] {
		t.Fatalf("expected worker labels for both shards, got %v", prefixes)
	}
}

func mustRunLoop(t *testing.T, m Model) {
	t.Helper()
	if err := m.ParallelForCtx(context.Background(), 1<<14, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			_ = i * i
		}
	}); err != nil {
		t.Fatalf("ParallelForCtx: %v", err)
	}
}
