package models

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"threading/internal/deque"
	"threading/internal/forkjoin"
	"threading/internal/worksteal"
)

func TestNamesStable(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("Names() has %d entries, want 6: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("not_a_model", 2); err == nil {
		t.Fatal("New accepted an unknown model name")
	}
	if _, err := New(OMPFor, 0); err == nil {
		t.Fatal("New accepted 0 threads")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on bad name")
		}
	}()
	MustNew("bogus", 1)
}

func TestChunkFor(t *testing.T) {
	check := func(n16 uint16, k8 uint8) bool {
		n := int(n16 % 10000)
		k := int(k8%16) + 1
		covered := 0
		prevHi := 0
		for i := 0; i < k; i++ {
			lo, hi := chunkFor(n, k, i)
			if lo != prevHi {
				return false // chunks must be contiguous
			}
			if hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestWithPartitioner builds every model with the lazy partitioner —
// models it does not apply to must ignore it — and checks a reduction
// stays correct under it.
func TestWithPartitioner(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := MustNew(name, 3, WithPartitioner(worksteal.Lazy))
			defer m.Close()
			const n = 10000
			got := m.ParallelReduce(n, 0,
				func(lo, hi int, acc float64) float64 {
					for i := lo; i < hi; i++ {
						acc += float64(i)
					}
					return acc
				},
				func(a, b float64) float64 { return a + b })
			if want := float64(n) * float64(n-1) / 2; got != want {
				t.Fatalf("lazy reduce = %g, want %g", got, want)
			}
		})
	}
}

func forEachModel(t *testing.T, threads int, fn func(t *testing.T, m Model)) {
	t.Helper()
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := MustNew(name, threads)
			defer m.Close()
			fn(t, m)
		})
	}
}

func TestModelIdentity(t *testing.T) {
	forEachModel(t, 3, func(t *testing.T, m Model) {
		if m.Threads() != 3 {
			t.Errorf("Threads = %d, want 3", m.Threads())
		}
		found := false
		for _, n := range Names() {
			if n == m.Name() {
				found = true
			}
		}
		if !found {
			t.Errorf("Name %q not in registry", m.Name())
		}
	})
}

func TestParallelForCoverage(t *testing.T) {
	const n = 20000
	forEachModel(t, 4, func(t *testing.T, m Model) {
		hits := make([]atomic.Int32, n)
		m.ParallelFor(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad chunk [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("iteration %d executed %d times", i, hits[i].Load())
			}
		}
	})
}

func TestParallelForSmallN(t *testing.T) {
	// Fewer iterations than threads: every model must still cover
	// exactly once and not call body with empty ranges.
	forEachModel(t, 8, func(t *testing.T, m Model) {
		for _, n := range []int{0, 1, 3, 7} {
			var total atomic.Int64
			m.ParallelFor(n, func(lo, hi int) {
				if lo >= hi {
					t.Errorf("n=%d: empty chunk [%d,%d)", n, lo, hi)
				}
				total.Add(int64(hi - lo))
			})
			if total.Load() != int64(n) {
				t.Fatalf("n=%d: covered %d iterations", n, total.Load())
			}
		}
	})
}

func TestParallelForRepeated(t *testing.T) {
	// Models must be reusable across many invocations (the harness
	// times repeated calls).
	const n = 1000
	forEachModel(t, 2, func(t *testing.T, m Model) {
		for rep := 0; rep < 10; rep++ {
			var total atomic.Int64
			m.ParallelFor(n, func(lo, hi int) { total.Add(int64(hi - lo)) })
			if total.Load() != n {
				t.Fatalf("rep %d: covered %d", rep, total.Load())
			}
		}
	})
}

func TestParallelReduce(t *testing.T) {
	const n = 50000
	want := float64(n) * float64(n-1) / 2
	forEachModel(t, 4, func(t *testing.T, m Model) {
		got := m.ParallelReduce(n, 0,
			func(lo, hi int, acc float64) float64 {
				for i := lo; i < hi; i++ {
					acc += float64(i)
				}
				return acc
			},
			func(a, b float64) float64 { return a + b })
		if got != want {
			t.Fatalf("sum = %g, want %g", got, want)
		}
	})
}

func TestParallelReduceEmpty(t *testing.T) {
	forEachModel(t, 4, func(t *testing.T, m Model) {
		got := m.ParallelReduce(0, 5,
			func(lo, hi int, acc float64) float64 { return acc + 1 },
			func(a, b float64) float64 { return a + b })
		// With no iterations, only identities are combined. The exact
		// count of identity combinations differs per model, but for
		// idempotent-on-identity combines (sum of 5s is not!) we use
		// max to assert: all partials are the identity.
		_ = got
	})
}

func TestTaskCapability(t *testing.T) {
	wantTasks := map[string]bool{
		OMPFor: false, OMPTask: true, CilkFor: false,
		CilkSpawn: true, CPPThread: true, CPPAsync: true,
	}
	forEachModel(t, 2, func(t *testing.T, m Model) {
		if m.SupportsTasks() != wantTasks[m.Name()] {
			t.Fatalf("SupportsTasks = %v, want %v", m.SupportsTasks(), wantTasks[m.Name()])
		}
		if !m.SupportsTasks() {
			defer func() {
				if recover() == nil {
					t.Error("TaskRun on loop-only model did not panic")
				}
			}()
			m.TaskRun(func(TaskScope) {})
		}
	})
}

// scopeFib computes fib recursively over a TaskScope with a cut-off,
// the pattern all task models share in the harness.
func scopeFib(s TaskScope, n int, out *uint64) {
	if n < 2 {
		*out = uint64(n)
		return
	}
	if n <= 12 { // sequential cut-off
		*out = fibSeq(n)
		return
	}
	var a, b uint64
	s.Spawn(func(cs TaskScope) { scopeFib(cs, n-1, &a) })
	scopeFib(s, n-2, &b)
	s.Sync()
	*out = a + b
}

func fibSeq(n int) uint64 {
	if n < 2 {
		return uint64(n)
	}
	return fibSeq(n-1) + fibSeq(n-2)
}

func TestTaskRunFib(t *testing.T) {
	want := fibSeq(22)
	for _, name := range TaskNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := MustNew(name, 4)
			defer m.Close()
			var got uint64
			m.TaskRun(func(s TaskScope) { scopeFib(s, 22, &got) })
			if got != want {
				t.Fatalf("fib(22) = %d, want %d", got, want)
			}
		})
	}
}

func TestTaskRunNestedSpawns(t *testing.T) {
	for _, name := range TaskNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := MustNew(name, 3)
			defer m.Close()
			var leaves atomic.Int64
			m.TaskRun(func(s TaskScope) {
				for i := 0; i < 8; i++ {
					s.Spawn(func(cs TaskScope) {
						for j := 0; j < 8; j++ {
							cs.Spawn(func(TaskScope) { leaves.Add(1) })
						}
						cs.Sync()
					})
				}
				s.Sync()
			})
			if leaves.Load() != 64 {
				t.Fatalf("leaves = %d, want 64", leaves.Load())
			}
		})
	}
}

func TestSchedulerStatsPresence(t *testing.T) {
	hasStats := map[string]bool{
		OMPFor: true, OMPTask: true, CilkFor: true,
		CilkSpawn: true, CPPThread: false, CPPAsync: false,
	}
	forEachModel(t, 2, func(t *testing.T, m Model) {
		if _, ok := m.SchedulerStats(); ok != hasStats[m.Name()] {
			t.Fatalf("SchedulerStats presence = %v, want %v", ok, hasStats[m.Name()])
		}
	})
}

func TestDataAndTaskNameSets(t *testing.T) {
	if len(DataNames()) != 6 {
		t.Errorf("DataNames = %v", DataNames())
	}
	for _, n := range TaskNames() {
		m := MustNew(n, 1)
		if !m.SupportsTasks() {
			t.Errorf("TaskNames contains loop-only model %s", n)
		}
		m.Close()
	}
}

func TestOMPForScheduleAblation(t *testing.T) {
	m := NewOMPFor(4).(*ompFor)
	defer m.Close()
	const n = 10000
	for _, s := range []forkjoin.Schedule{
		forkjoin.Static, forkjoin.Dynamic(16), forkjoin.Guided(8),
	} {
		var total atomic.Int64
		m.Schedule(s, n, func(lo, hi int) { total.Add(int64(hi - lo)) })
		if total.Load() != n {
			t.Fatalf("schedule %v covered %d, want %d", s, total.Load(), n)
		}
	}
}

func TestAblationConstructors(t *testing.T) {
	// The ablation variants must behave like their parents.
	variants := []Model{
		NewOMPForWithOptions(2, forkjoin.WithCentralBarrier()),
		NewOMPTaskWithOptions(2, forkjoin.WithLockFreeTasks()),
		NewOMPTaskWithOptions(2, forkjoin.WithTaskPolicy(forkjoin.TaskImmediate)),
		NewCilkSpawnWithDeque(2, deque.KindLocked),
		NewCilkForGrain(2, 64),
	}
	for _, m := range variants {
		var total atomic.Int64
		m.ParallelFor(5000, func(lo, hi int) { total.Add(int64(hi - lo)) })
		if total.Load() != 5000 {
			t.Fatalf("%s variant covered %d", m.Name(), total.Load())
		}
		m.Close()
	}
}

func TestResetSchedulerStatsAllModels(t *testing.T) {
	forEachModel(t, 2, func(t *testing.T, m Model) {
		m.ParallelFor(100, func(lo, hi int) {})
		m.ResetSchedulerStats()
		if s, ok := m.SchedulerStats(); ok && s.Spawns != 0 {
			t.Fatalf("reset left %d spawns", s.Spawns)
		}
	})
}
