package futures

import (
	"testing"

	"threading/internal/tracez"
)

func TestNewThreadTracedRecordsSpan(t *testing.T) {
	tr := tracez.New(64)
	ring := tr.Ring(0)
	th := NewThreadTraced(ring, 10, 20, func() {})
	th.Join()
	wt := tr.Snapshot().Workers[0]
	if len(wt.Events) != 2 {
		t.Fatalf("events = %d, want thread start + end", len(wt.Events))
	}
	if wt.Events[0].Kind != tracez.KindThreadStart || wt.Events[1].Kind != tracez.KindThreadEnd {
		t.Fatalf("unexpected kinds: %v, %v", wt.Events[0].Kind, wt.Events[1].Kind)
	}
	if wt.Events[0].A1 != 10 || wt.Events[0].A2 != 20 {
		t.Fatalf("span range = [%d, %d), want [10, 20)", wt.Events[0].A1, wt.Events[0].A2)
	}
}

func TestNewThreadTracedNilRing(t *testing.T) {
	th := NewThreadTraced(nil, 0, 0, func() {})
	th.Join() // must behave exactly like NewThread
}

func TestAsyncTracedRecordsSpan(t *testing.T) {
	tr := tracez.New(64)
	ring := tr.Ring(0)
	f := AsyncTraced(ring, LaunchAsync, 0, 8, func() (int, error) { return 7, nil })
	v, err := f.Get()
	if err != nil || v != 7 {
		t.Fatalf("Get = %d, %v", v, err)
	}
	wt := tr.Snapshot().Workers[0]
	if len(wt.Events) != 2 {
		t.Fatalf("events = %d, want thread start + end", len(wt.Events))
	}
}

func TestAsyncTracedDeferredRecordsOnGet(t *testing.T) {
	tr := tracez.New(64)
	ring := tr.Ring(0)
	f := AsyncTraced(ring, LaunchDeferred, 0, 0, func() (int, error) { return 1, nil })
	if n := len(tr.Snapshot().Workers); n != 0 {
		// The ring exists but must still be empty: deferred work has
		// not run yet.
		if len(tr.Snapshot().Workers[0].Events) != 0 {
			t.Fatal("deferred async recorded before Get")
		}
	}
	if v, err := f.Get(); err != nil || v != 1 {
		t.Fatalf("Get = %d, %v", v, err)
	}
	if len(tr.Snapshot().Workers[0].Events) != 2 {
		t.Fatal("deferred async did not record its span on Get")
	}
}
