package futures

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestThreadRunsAndJoins(t *testing.T) {
	var ran atomic.Bool
	th := NewThread(func() { ran.Store(true) })
	th.Join()
	if !ran.Load() {
		t.Fatal("thread body did not run before Join returned")
	}
	if th.Joinable() {
		t.Fatal("thread still joinable after Join")
	}
}

func TestThreadJoinTwicePanics(t *testing.T) {
	th := NewThread(func() {})
	th.Join()
	defer func() {
		if recover() == nil {
			t.Fatal("second Join did not panic")
		}
	}()
	th.Join()
}

func TestThreadDetach(t *testing.T) {
	done := make(chan struct{})
	th := NewThread(func() { close(done) })
	th.Detach()
	if th.Joinable() {
		t.Fatal("detached thread reports joinable")
	}
	<-done
	defer func() {
		if recover() == nil {
			t.Fatal("Join after Detach did not panic")
		}
	}()
	th.Join()
}

func TestThreadPanicPropagatesToJoiner(t *testing.T) {
	th := NewThread(func() { panic("inside") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Join did not re-panic")
		}
		if !strings.Contains(r.(string), "inside") {
			t.Fatalf("panic %q lost the message", r)
		}
	}()
	th.Join()
}

func TestManyThreadsJoin(t *testing.T) {
	const n = 64
	var sum atomic.Int64
	threads := make([]*Thread, n)
	for i := 0; i < n; i++ {
		i := i
		threads[i] = NewThread(func() { sum.Add(int64(i)) })
	}
	for _, th := range threads {
		th.Join()
	}
	if sum.Load() != n*(n-1)/2 {
		t.Fatalf("sum = %d, want %d", sum.Load(), n*(n-1)/2)
	}
}

func TestPromiseFuture(t *testing.T) {
	p := NewPromise[int]()
	f := p.Future()
	if f.Ready() {
		t.Fatal("future ready before Set")
	}
	go p.Set(42)
	v, err := f.Get()
	if err != nil || v != 42 {
		t.Fatalf("Get = (%d, %v), want (42, nil)", v, err)
	}
	if !f.Ready() {
		t.Fatal("future not ready after Get")
	}
	// Get is idempotent (shared-future style).
	if v, _ := f.Get(); v != 42 {
		t.Fatal("second Get lost the value")
	}
}

func TestPromiseSetError(t *testing.T) {
	p := NewPromise[string]()
	want := errors.New("nope")
	p.SetError(want)
	_, err := p.Future().Get()
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestPromiseDoubleSetPanics(t *testing.T) {
	p := NewPromise[int]()
	p.Set(1)
	defer func() {
		if recover() == nil {
			t.Fatal("double Set did not panic")
		}
	}()
	p.Set(2)
}

func TestBrokenPromise(t *testing.T) {
	p := NewPromise[int]()
	p.Break()
	_, err := p.Future().Get()
	if !errors.Is(err, ErrBrokenPromise) {
		t.Fatalf("err = %v, want ErrBrokenPromise", err)
	}
	p.Break() // idempotent on satisfied promise
	p2 := NewPromise[int]()
	p2.Set(7)
	p2.Break() // no-op after Set
	if v, err := p2.Future().Get(); v != 7 || err != nil {
		t.Fatalf("Break clobbered value: (%d, %v)", v, err)
	}
}

func TestAsyncPolicyAsync(t *testing.T) {
	f := Async(LaunchAsync, func() (int, error) { return 7, nil })
	v, err := f.Get()
	if err != nil || v != 7 {
		t.Fatalf("Get = (%d, %v), want (7, nil)", v, err)
	}
}

func TestAsyncDeferredRunsOnGetter(t *testing.T) {
	var ran atomic.Bool
	f := Async(LaunchDeferred, func() (int, error) { ran.Store(true); return 3, nil })
	time.Sleep(2 * time.Millisecond)
	if ran.Load() {
		t.Fatal("deferred function ran before Get")
	}
	if f.Ready() {
		t.Fatal("deferred future claims ready before Get")
	}
	v, err := f.Get()
	if err != nil || v != 3 || !ran.Load() {
		t.Fatalf("Get = (%d, %v), ran=%v", v, err, ran.Load())
	}
	// Second Get must not re-run the function.
	if v, _ := f.Get(); v != 3 {
		t.Fatal("second Get broke")
	}
}

func TestAsyncError(t *testing.T) {
	want := errors.New("bad")
	f := Async(LaunchAsync, func() (int, error) { return 0, want })
	if _, err := f.Get(); !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestAsyncPanicBecomesError(t *testing.T) {
	for _, pol := range []Policy{LaunchAsync, LaunchDeferred} {
		f := Async(pol, func() (int, error) { panic("ouch") })
		_, err := f.Get()
		if err == nil || !strings.Contains(err.Error(), "ouch") {
			t.Fatalf("policy %v: err = %v, want panic-derived error", pol, err)
		}
	}
}

func TestWaitFor(t *testing.T) {
	p := NewPromise[int]()
	f := p.Future()
	if f.WaitFor(2 * time.Millisecond) {
		t.Fatal("WaitFor succeeded with no value")
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		p.Set(1)
	}()
	if !f.WaitFor(5 * time.Second) {
		t.Fatal("WaitFor timed out despite Set")
	}
}

func TestPackagedTask(t *testing.T) {
	pt := NewPackagedTask(func() (int, error) { return 9, nil })
	f := pt.Future()
	if f.Ready() {
		t.Fatal("future ready before Invoke")
	}
	pt.Invoke()
	pt.Invoke() // second invoke is a no-op
	v, err := f.Get()
	if err != nil || v != 9 {
		t.Fatalf("Get = (%d, %v), want (9, nil)", v, err)
	}
}

func TestPackagedTaskError(t *testing.T) {
	want := errors.New("task error")
	pt := NewPackagedTask(func() (int, error) { return 0, want })
	pt.Invoke()
	if _, err := pt.Future().Get(); !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
	pt2 := NewPackagedTask(func() (int, error) { panic("pt") })
	pt2.Invoke()
	if _, err := pt2.Future().Get(); err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestPolicyString(t *testing.T) {
	if LaunchAsync.String() != "async" || LaunchDeferred.String() != "deferred" ||
		Policy(5).String() != "unknown" {
		t.Error("Policy.String values wrong")
	}
}

// TestAsyncFanOut checks that a batch of async tasks all deliver —
// the manual-chunking pattern the C++11 loop versions use.
func TestAsyncFanOut(t *testing.T) {
	check := func(n8 uint8) bool {
		n := int(n8%32) + 1
		fs := make([]*Future[int], n)
		for i := 0; i < n; i++ {
			i := i
			fs[i] = Async(LaunchAsync, func() (int, error) { return i * i, nil })
		}
		for i, f := range fs {
			v, err := f.Get()
			if err != nil || v != i*i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
