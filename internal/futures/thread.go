// Package futures provides a C++11-style threading layer: Thread
// (std::thread), Promise/Future (std::promise / std::future), Async
// with launch policies (std::async), and PackagedTask.
//
// In the reproduced paper this is the "C++11" contender: parallel
// loops are expressed by manual chunking — create one thread (or one
// async task) per chunk, join them all — and recursive task
// parallelism by std::async with a cut-off. A Thread here is a fresh
// goroutine per call, deliberately without pooling, so thread-creation
// overhead appears in measurements the way std::thread's does.
package futures

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"threading/internal/sched"
)

// Thread runs a function concurrently, like std::thread: it starts
// executing immediately on construction and must be joined (or
// detached) exactly once before it is discarded.
type Thread struct {
	done     chan struct{}
	panicErr *sched.PanicError
	joined   atomic.Bool
	detached atomic.Bool
}

// NewThread starts fn on a new thread of execution.
func NewThread(fn func()) *Thread {
	t := &Thread{done: make(chan struct{})}
	go func() {
		defer close(t.done)
		defer func() {
			if r := recover(); r != nil {
				t.panicErr = sched.NewPanicError(r)
			}
		}()
		fn()
	}()
	return t
}

// Join blocks until the thread's function returns. If the function
// panicked, Join re-panics on the joiner (where std::thread would
// have terminated the process). Join must be called at most once and
// not after Detach.
func (t *Thread) Join() {
	if t.detached.Load() {
		panic("futures: Join after Detach")
	}
	if t.joined.Swap(true) {
		panic("futures: thread joined twice")
	}
	<-t.done
	if t.panicErr != nil {
		panic(fmt.Sprintf("futures: thread panicked: %v", t.panicErr.Value))
	}
}

// JoinCtx waits for the thread's function to return or for ctx to be
// done, whichever happens first. If the thread finished, the join is
// consumed and JoinCtx returns nil — or the thread's panic as a
// *sched.PanicError instead of re-panicking. If ctx expired first,
// JoinCtx returns the context's error and the thread keeps running
// and remains joinable (a goroutine cannot be killed; cancellation
// here bounds the wait, not the work).
func (t *Thread) JoinCtx(ctx context.Context) error {
	if t.detached.Load() {
		panic("futures: Join after Detach")
	}
	select {
	case <-t.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if t.joined.Swap(true) {
		panic("futures: thread joined twice")
	}
	if t.panicErr != nil {
		return t.panicErr
	}
	return nil
}

// Detach lets the thread run to completion unobserved. After Detach
// the thread must not be joined.
func (t *Thread) Detach() {
	if t.joined.Load() {
		panic("futures: Detach after Join")
	}
	t.detached.Store(true)
}

// Joinable reports whether the thread can still be joined.
func (t *Thread) Joinable() bool {
	return !t.joined.Load() && !t.detached.Load()
}

// ErrBrokenPromise is returned by Future.Get when the promise was
// dropped without a value — the analogue of std::future_error with
// broken_promise.
var ErrBrokenPromise = errors.New("futures: broken promise")

// futureState is the shared state between a Promise and its Future.
// done is closed once val/err are written, so waiters can block on a
// channel receive — which also lets GetCtx select against a
// context's cancellation.
type futureState[T any] struct {
	mu    sync.Mutex
	done  chan struct{}
	ready bool
	val   T
	err   error
}

func newFutureState[T any]() *futureState[T] {
	return &futureState[T]{done: make(chan struct{})}
}

// deliver writes the outcome and closes done. It reports whether this
// call was the one that delivered; if strict, a second delivery
// panics instead.
func (st *futureState[T]) deliver(v T, err error, strict bool) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.ready {
		if strict {
			panic("futures: promise satisfied twice")
		}
		return false
	}
	st.val, st.err, st.ready = v, err, true
	close(st.done)
	return true
}

// Future is the receiving end of a Promise: Get blocks until a value
// or error is delivered.
type Future[T any] struct {
	st *futureState[T]
	// deferredFn, when non-nil, is executed lazily by the first Get —
	// std::launch::deferred semantics.
	deferredOnce *sync.Once
	deferredFn   func() (T, error)
}

// Promise is the producing end: exactly one of Set or SetError should
// be called. A Promise produces a single Future via Future.
type Promise[T any] struct {
	st *futureState[T]
	// fut is the fused future handle (see promiseBox); Future hands it
	// out instead of allocating per call.
	fut *Future[T]
}

// promiseBox fuses a promise, its future handle, and their shared
// state into one allocation, so the promise/future pair costs one
// heap object plus the done channel instead of four.
type promiseBox[T any] struct {
	p   Promise[T]
	fut Future[T]
	st  futureState[T]
}

// NewPromise returns an unfulfilled promise.
func NewPromise[T any]() *Promise[T] {
	b := &promiseBox[T]{}
	b.st.done = make(chan struct{})
	b.fut.st = &b.st
	b.p.st = &b.st
	b.p.fut = &b.fut
	return &b.p
}

// Future returns the future associated with this promise.
func (p *Promise[T]) Future() *Future[T] {
	if p.fut != nil {
		return p.fut
	}
	// A Promise built outside NewPromise (zero value plus manual state)
	// has no fused handle; fall back to a fresh one.
	return &Future[T]{st: p.st}
}

// Set delivers the value, waking all waiters. Setting a promise twice
// panics.
func (p *Promise[T]) Set(v T) {
	p.st.deliver(v, nil, true)
}

// SetError delivers an error instead of a value.
func (p *Promise[T]) SetError(err error) {
	var zero T
	p.st.deliver(zero, err, true)
}

// Break marks the promise abandoned: waiters receive
// ErrBrokenPromise. Breaking an already satisfied promise is a no-op.
func (p *Promise[T]) Break() {
	var zero T
	p.st.deliver(zero, ErrBrokenPromise, false)
}

// force runs a deferred future's function on the calling goroutine,
// once — std::launch::deferred.
func (f *Future[T]) force() {
	if f.deferredFn == nil {
		return
	}
	f.deferredOnce.Do(func() {
		v, err := f.deferredFn()
		f.st.deliver(v, err, false)
	})
}

// Get blocks until the value is available and returns it. For a
// deferred future, Get runs the deferred function on the calling
// goroutine the first time — std::launch::deferred.
func (f *Future[T]) Get() (T, error) {
	f.force()
	<-f.st.done
	return f.st.val, f.st.err
}

// GetCtx is Get with a bounded wait: it returns the value once
// delivered, or the context's error if ctx is done first (the
// producing task keeps running; cancellation bounds the wait, not the
// work). A deferred future is forced on the calling goroutine, as
// with Get, unless ctx is already done.
func (f *Future[T]) GetCtx(ctx context.Context) (T, error) {
	if err := ctx.Err(); err != nil {
		var zero T
		return zero, err
	}
	f.force()
	select {
	case <-f.st.done:
		return f.st.val, f.st.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// waitReady blocks until a value or error has been delivered, without
// forcing a deferred future (used by WhenAny, which must not execute
// deferred work on behalf of the caller).
func (f *Future[T]) waitReady() (T, error) {
	<-f.st.done
	return f.st.val, f.st.err
}

// Ready reports whether a value or error has been delivered. A
// deferred future is never ready until Get forces it.
func (f *Future[T]) Ready() bool {
	select {
	case <-f.st.done:
		return true
	default:
		return false
	}
}

// WaitFor blocks up to d for the result and reports whether it became
// available — std::future::wait_for. It does not force a deferred
// future.
func (f *Future[T]) WaitFor(d time.Duration) bool {
	if f.Ready() {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-f.st.done:
		return true
	case <-timer.C:
		return false
	}
}
