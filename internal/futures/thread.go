// Package futures provides a C++11-style threading layer: Thread
// (std::thread), Promise/Future (std::promise / std::future), Async
// with launch policies (std::async), and PackagedTask.
//
// In the reproduced paper this is the "C++11" contender: parallel
// loops are expressed by manual chunking — create one thread (or one
// async task) per chunk, join them all — and recursive task
// parallelism by std::async with a cut-off. A Thread here is a fresh
// goroutine per call, deliberately without pooling, so thread-creation
// overhead appears in measurements the way std::thread's does.
package futures

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Thread runs a function concurrently, like std::thread: it starts
// executing immediately on construction and must be joined (or
// detached) exactly once before it is discarded.
type Thread struct {
	done     chan struct{}
	panicVal any
	joined   atomic.Bool
	detached atomic.Bool
}

// NewThread starts fn on a new thread of execution.
func NewThread(fn func()) *Thread {
	t := &Thread{done: make(chan struct{})}
	go func() {
		defer close(t.done)
		defer func() {
			if r := recover(); r != nil {
				t.panicVal = fmt.Sprintf("futures: thread panicked: %v", r)
			}
		}()
		fn()
	}()
	return t
}

// Join blocks until the thread's function returns. If the function
// panicked, Join re-panics on the joiner (where std::thread would
// have terminated the process). Join must be called at most once and
// not after Detach.
func (t *Thread) Join() {
	if t.detached.Load() {
		panic("futures: Join after Detach")
	}
	if t.joined.Swap(true) {
		panic("futures: thread joined twice")
	}
	<-t.done
	if t.panicVal != nil {
		panic(t.panicVal)
	}
}

// Detach lets the thread run to completion unobserved. After Detach
// the thread must not be joined.
func (t *Thread) Detach() {
	if t.joined.Load() {
		panic("futures: Detach after Join")
	}
	t.detached.Store(true)
}

// Joinable reports whether the thread can still be joined.
func (t *Thread) Joinable() bool {
	return !t.joined.Load() && !t.detached.Load()
}

// ErrBrokenPromise is returned by Future.Get when the promise was
// dropped without a value — the analogue of std::future_error with
// broken_promise.
var ErrBrokenPromise = errors.New("futures: broken promise")

// future is the shared state between a Promise and its Future.
type futureState[T any] struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ready bool
	val   T
	err   error
}

// Future is the receiving end of a Promise: Get blocks until a value
// or error is delivered.
type Future[T any] struct {
	st *futureState[T]
	// deferredFn, when non-nil, is executed lazily by the first Get —
	// std::launch::deferred semantics.
	deferredOnce *sync.Once
	deferredFn   func() (T, error)
}

// Promise is the producing end: exactly one of Set or SetError should
// be called. A Promise produces a single Future via Future.
type Promise[T any] struct {
	st *futureState[T]
}

// NewPromise returns an unfulfilled promise.
func NewPromise[T any]() *Promise[T] {
	st := &futureState[T]{}
	st.cond = sync.NewCond(&st.mu)
	return &Promise[T]{st: st}
}

// Future returns the future associated with this promise.
func (p *Promise[T]) Future() *Future[T] {
	return &Future[T]{st: p.st}
}

// Set delivers the value, waking all waiters. Setting a promise twice
// panics.
func (p *Promise[T]) Set(v T) {
	p.st.mu.Lock()
	defer p.st.mu.Unlock()
	if p.st.ready {
		panic("futures: promise satisfied twice")
	}
	p.st.val = v
	p.st.ready = true
	p.st.cond.Broadcast()
}

// SetError delivers an error instead of a value.
func (p *Promise[T]) SetError(err error) {
	p.st.mu.Lock()
	defer p.st.mu.Unlock()
	if p.st.ready {
		panic("futures: promise satisfied twice")
	}
	p.st.err = err
	p.st.ready = true
	p.st.cond.Broadcast()
}

// Break marks the promise abandoned: waiters receive
// ErrBrokenPromise. Breaking an already satisfied promise is a no-op.
func (p *Promise[T]) Break() {
	p.st.mu.Lock()
	defer p.st.mu.Unlock()
	if p.st.ready {
		return
	}
	p.st.err = ErrBrokenPromise
	p.st.ready = true
	p.st.cond.Broadcast()
}

// Get blocks until the value is available and returns it. For a
// deferred future, Get runs the deferred function on the calling
// goroutine the first time — std::launch::deferred.
func (f *Future[T]) Get() (T, error) {
	if f.deferredFn != nil {
		f.deferredOnce.Do(func() {
			v, err := f.deferredFn()
			st := f.st
			st.mu.Lock()
			st.val, st.err = v, err
			st.ready = true
			st.cond.Broadcast()
			st.mu.Unlock()
		})
	}
	st := f.st
	st.mu.Lock()
	for !st.ready {
		st.cond.Wait()
	}
	v, err := st.val, st.err
	st.mu.Unlock()
	return v, err
}

// waitReady blocks until a value or error has been delivered, without
// forcing a deferred future (used by WhenAny, which must not execute
// deferred work on behalf of the caller).
func (f *Future[T]) waitReady() (T, error) {
	st := f.st
	st.mu.Lock()
	for !st.ready {
		st.cond.Wait()
	}
	v, err := st.val, st.err
	st.mu.Unlock()
	return v, err
}

// Ready reports whether a value or error has been delivered. A
// deferred future is never ready until Get forces it.
func (f *Future[T]) Ready() bool {
	st := f.st
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ready
}

// WaitFor blocks up to d for the result and reports whether it became
// available — std::future::wait_for. It does not force a deferred
// future.
func (f *Future[T]) WaitFor(d time.Duration) bool {
	deadline := time.Now().Add(d)
	st := f.st
	st.mu.Lock()
	defer st.mu.Unlock()
	for !st.ready {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return false
		}
		// sync.Cond has no timed wait; poll with a capped interval.
		st.mu.Unlock()
		sleep := remaining
		if sleep > time.Millisecond {
			sleep = time.Millisecond
		}
		time.Sleep(sleep)
		st.mu.Lock()
	}
	return true
}
