package futures

import (
	"testing"
	"time"
)

// TestReadyFastPathZeroAlloc proves the resolved-future fast path is
// allocation-free: Ready, Get, and WaitFor on a delivered future touch
// only the fused state.
func TestReadyFastPathZeroAlloc(t *testing.T) {
	p := NewPromise[int]()
	p.Set(42)
	f := p.Future()
	allocs := testing.AllocsPerRun(1000, func() {
		if !f.Ready() {
			t.Fatal("future not ready")
		}
		if v, err := f.Get(); err != nil || v != 42 {
			t.Fatalf("Get = %d, %v", v, err)
		}
		if !f.WaitFor(time.Millisecond) {
			t.Fatal("WaitFor = false on ready future")
		}
	})
	if allocs != 0 {
		t.Errorf("resolved-future fast path allocates: %.1f allocs/op", allocs)
	}
}

// TestNewPromiseFusedAlloc pins the promise/future/state fusion: one
// box plus the completion channel, so a full NewPromise → Set →
// Future → Get round trip stays at two allocations.
func TestNewPromiseFusedAlloc(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		p := NewPromise[int]()
		p.Set(7)
		if v, err := p.Future().Get(); err != nil || v != 7 {
			t.Fatalf("Get = %d, %v", v, err)
		}
	})
	if allocs > 2 {
		t.Errorf("NewPromise round trip allocates %.1f (want <= 2: box + channel)", allocs)
	}
}
