package futures

import "sync"

// This file provides the future combinators of the C++ Concurrency TS
// (std::experimental::when_all / when_any and future::then) — the
// paper lists C++ futures as its data/event-driven mechanism, and
// these are the standard ways futures compose into dependency graphs.

// WhenAll returns a future that resolves once every input future has
// resolved, carrying all values in input order. The first error (if
// any) is reported after all inputs settle.
func WhenAll[T any](fs ...*Future[T]) *Future[[]T] {
	p := NewPromise[[]T]()
	go func() {
		out := make([]T, len(fs))
		var firstErr error
		for i, f := range fs {
			v, err := f.Get()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			out[i] = v
		}
		if firstErr != nil {
			p.SetError(firstErr)
			return
		}
		p.Set(out)
	}()
	return p.Future()
}

// AnyResult is WhenAny's outcome: the index and value of the first
// input future to resolve.
type AnyResult[T any] struct {
	Index int
	Value T
}

// WhenAny returns a future that resolves as soon as any input future
// resolves (with a value or an error — whichever settles first wins,
// matching when_any semantics). Deferred inputs are not forced: as in
// the Concurrency TS, a deferred future only settles when its own Get
// runs. WhenAny panics if called with no futures.
func WhenAny[T any](fs ...*Future[T]) *Future[AnyResult[T]] {
	if len(fs) == 0 {
		panic("futures: WhenAny of nothing")
	}
	p := NewPromise[AnyResult[T]]()
	var once sync.Once
	for i, f := range fs {
		i, f := i, f
		go func() {
			v, err := f.waitReady()
			once.Do(func() {
				if err != nil {
					p.SetError(err)
					return
				}
				p.Set(AnyResult[T]{Index: i, Value: v})
			})
		}()
	}
	return p.Future()
}

// Then attaches a continuation to a future: the returned future
// resolves with fn applied to f's value once it arrives —
// future::then from the Concurrency TS. Errors short-circuit past fn.
func Then[T, U any](f *Future[T], fn func(T) (U, error)) *Future[U] {
	p := NewPromise[U]()
	go func() {
		v, err := f.Get()
		if err != nil {
			p.SetError(err)
			return
		}
		u, err := fn(v)
		if err != nil {
			p.SetError(err)
			return
		}
		p.Set(u)
	}()
	return p.Future()
}
