package futures

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestHedgeFastPrimaryDoesNotHedge(t *testing.T) {
	var calls atomic.Int32
	res, err := HedgeCtx(context.Background(), 50*time.Millisecond,
		func(ctx context.Context) (int, error) {
			calls.Add(1)
			return 7, nil
		})
	if err != nil || res.Value != 7 {
		t.Fatalf("HedgeCtx = %+v, %v", res, err)
	}
	if res.Hedged || res.Winner != 0 {
		t.Fatalf("fast primary hedged: %+v", res)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("attempts = %d, want 1", n)
	}
}

// TestHedgeLoserDrainedBeforeReturn is the leak test: when the
// duplicate wins, the slow primary must have been canceled AND have
// returned by the time HedgeCtx returns — nothing outlives the call.
func TestHedgeLoserDrainedBeforeReturn(t *testing.T) {
	var started, returned atomic.Int32
	var loserSawCancel atomic.Bool
	res, err := HedgeCtx(context.Background(), time.Millisecond,
		func(ctx context.Context) (int, error) {
			defer returned.Add(1)
			if started.Add(1) == 1 {
				// First attempt to run: stall until canceled (the
				// cooperative loser). Which attempt this is depends on
				// scheduling; the drain property below does not.
				<-ctx.Done()
				loserSawCancel.Store(true)
				return 0, ctx.Err()
			}
			return 42, nil // the other attempt wins
		})
	if err != nil {
		t.Fatalf("HedgeCtx: %v", err)
	}
	if !res.Hedged || res.Value != 42 {
		t.Fatalf("HedgeCtx = %+v, want hedged win of 42", res)
	}
	// Both attempts must have fully returned — no background goroutine
	// still holds the closure. This read races with nothing precisely
	// because HedgeCtx drains synchronously.
	if n := returned.Load(); n != 2 {
		t.Fatalf("returned attempts = %d, want 2 (loser leaked)", n)
	}
	if !loserSawCancel.Load() {
		t.Fatal("loser was never canceled")
	}
}

func TestHedgeZeroDelayHedgesImmediately(t *testing.T) {
	var calls atomic.Int32
	res, err := HedgeCtx(context.Background(), 0,
		func(ctx context.Context) (int, error) {
			calls.Add(1)
			return 1, nil
		})
	if err != nil || !res.Hedged {
		t.Fatalf("HedgeCtx = %+v, %v, want immediate hedge", res, err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("attempts = %d, want 2", n)
	}
}

func TestHedgeMasksFirstError(t *testing.T) {
	boom := errors.New("boom")
	var n atomic.Int32
	res, err := HedgeCtx(context.Background(), 0,
		func(ctx context.Context) (int, error) {
			if n.Add(1) == 1 {
				return 0, boom // first attempt fails fast
			}
			time.Sleep(2 * time.Millisecond)
			return 9, nil
		})
	if err != nil || res.Value != 9 {
		t.Fatalf("HedgeCtx = %+v, %v, want masked error and 9", res, err)
	}
}

func TestHedgeBothFail(t *testing.T) {
	boom := errors.New("boom")
	_, err := HedgeCtx(context.Background(), 0,
		func(ctx context.Context) (int, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("HedgeCtx err = %v, want boom", err)
	}
}

func TestHedgeContextExpiryDrainsPrimary(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	var returned atomic.Int32
	_, err := HedgeCtx(ctx, time.Second, // delay longer than the deadline
		func(c context.Context) (int, error) {
			defer returned.Add(1)
			<-c.Done()
			return 0, c.Err()
		})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("HedgeCtx err = %v, want deadline", err)
	}
	if n := returned.Load(); n != 1 {
		t.Fatalf("returned attempts = %d, want 1 (primary not drained)", n)
	}
}
