package futures

import (
	"context"
	"runtime/pprof"

	"threading/internal/tracez"
)

// This file is the tracing bridge for the C++11-style layer. Threads
// here are fresh goroutines with no persistent worker identity, so the
// caller supplies the ring to record into (typically one ring per
// chunk index, plus an overflow ring for recursive tasks) and the
// thread body brackets itself with KindThreadStart/KindThreadEnd. The
// [lo, hi) pair carries the chunk's iteration range when there is one,
// which is how manual chunking shows up in the chunk-size histogram
// alongside the other runtimes' loop chunks.

// NewThreadTraced is NewThread with tracing: the spawned thread
// records a thread span covering fn (tagged with the [lo, hi) chunk
// range, zeros when there is none) into r, and runs under a pprof
// label identifying the runtime. A nil ring is exactly NewThread.
func NewThreadTraced(r *tracez.Ring, lo, hi int64, fn func()) *Thread {
	if r == nil {
		return NewThread(fn)
	}
	return NewThread(func() {
		pprof.Do(context.Background(), pprof.Labels(
			"runtime", "futures",
		), func(context.Context) {
			r.Record(tracez.KindThreadStart, lo, hi)
			defer r.Record(tracez.KindThreadEnd, lo, hi)
			fn()
		})
	})
}

// AsyncTraced is Async with tracing: the task body records a thread
// span into r around fn, wherever the policy runs it (a fresh thread
// for LaunchAsync, the getter's goroutine for LaunchDeferred). A nil
// ring is exactly Async.
func AsyncTraced[T any](r *tracez.Ring, policy Policy, lo, hi int64, fn func() (T, error)) *Future[T] {
	if r == nil {
		return Async(policy, fn)
	}
	return Async(policy, func() (T, error) {
		r.Record(tracez.KindThreadStart, lo, hi)
		defer r.Record(tracez.KindThreadEnd, lo, hi)
		return fn()
	})
}
