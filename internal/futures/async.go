package futures

import (
	"sync"

	"threading/internal/sched"
)

// Policy selects how Async runs its function, mirroring std::launch.
type Policy int

const (
	// LaunchAsync runs the function immediately on a new thread of
	// execution — std::launch::async.
	LaunchAsync Policy = iota
	// LaunchDeferred delays the function until the first Get, which
	// then runs it on the getter's goroutine — std::launch::deferred.
	LaunchDeferred
)

// String returns the std::launch-style name of the policy.
func (p Policy) String() string {
	switch p {
	case LaunchAsync:
		return "async"
	case LaunchDeferred:
		return "deferred"
	default:
		return "unknown"
	}
}

// Async runs fn under the given policy and returns a future for its
// result. A panic in fn surfaces as a *sched.PanicError (wrapping the
// recovered value and the panicking goroutine's stack) from Get.
func Async[T any](policy Policy, fn func() (T, error)) *Future[T] {
	safe := func() (v T, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = sched.NewPanicError(r)
			}
		}()
		return fn()
	}
	if policy == LaunchDeferred {
		b := &deferredBox[T]{}
		b.st.done = make(chan struct{})
		b.fut = Future[T]{st: &b.st, deferredOnce: &b.once, deferredFn: safe}
		return &b.fut
	}
	// The async path delivers straight into a fused state+future
	// record — no intermediate Promise, and one heap object (plus the
	// done channel) instead of four.
	b := &asyncBox[T]{}
	b.st.done = make(chan struct{})
	b.fut.st = &b.st
	go func() {
		v, err := safe()
		b.st.deliver(v, err, true)
	}()
	return &b.fut
}

// asyncBox fuses an Async future's handle and shared state into one
// allocation.
type asyncBox[T any] struct {
	fut Future[T]
	st  futureState[T]
}

// deferredBox additionally embeds the once guarding the deferred
// function's single execution.
type deferredBox[T any] struct {
	fut  Future[T]
	st   futureState[T]
	once sync.Once
}

// PackagedTask wraps a function so that invoking it fulfills an
// associated future — std::packaged_task. It may be invoked at most
// once.
type PackagedTask[T any] struct {
	fn      func() (T, error)
	promise *Promise[T]
	once    sync.Once
}

// NewPackagedTask wraps fn.
func NewPackagedTask[T any](fn func() (T, error)) *PackagedTask[T] {
	return &PackagedTask[T]{fn: fn, promise: NewPromise[T]()}
}

// Future returns the future that Invoke will fulfill.
func (t *PackagedTask[T]) Future() *Future[T] { return t.promise.Future() }

// Invoke runs the wrapped function on the calling goroutine and
// fulfills the future. Subsequent invocations are no-ops. A panic in
// the wrapped function surfaces as a *sched.PanicError from Get.
func (t *PackagedTask[T]) Invoke() {
	t.once.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				t.promise.SetError(sched.NewPanicError(r))
			}
		}()
		v, err := t.fn()
		if err != nil {
			t.promise.SetError(err)
			return
		}
		t.promise.Set(v)
	})
}
