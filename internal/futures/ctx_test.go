package futures

import (
	"context"
	"errors"
	"testing"
	"time"

	"threading/internal/sched"
)

func TestGetCtxDelivered(t *testing.T) {
	f := Async(LaunchAsync, func() (int, error) { return 7, nil })
	v, err := f.GetCtx(context.Background())
	if err != nil || v != 7 {
		t.Fatalf("GetCtx = (%v, %v), want (7, nil)", v, err)
	}
}

func TestGetCtxCanceledBoundsTheWait(t *testing.T) {
	release := make(chan struct{})
	f := Async(LaunchAsync, func() (int, error) { <-release; return 7, nil })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := f.GetCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}

	// Cancellation bounded the wait, not the work: the value is still
	// deliverable afterwards.
	close(release)
	if v, err := f.Get(); err != nil || v != 7 {
		t.Fatalf("Get after expired GetCtx = (%v, %v), want (7, nil)", v, err)
	}
}

func TestGetCtxExpiredDoesNotForceDeferred(t *testing.T) {
	ran := false
	f := Async(LaunchDeferred, func() (int, error) { ran = true; return 1, nil })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.GetCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("expired GetCtx forced the deferred function")
	}
}

func TestJoinCtxDeadlineThenJoin(t *testing.T) {
	release := make(chan struct{})
	th := NewThread(func() { <-release })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := th.JoinCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if !th.Joinable() {
		t.Fatal("thread not joinable after an expired JoinCtx")
	}

	close(release)
	if err := th.JoinCtx(context.Background()); err != nil {
		t.Fatalf("JoinCtx after release: %v", err)
	}
	if th.Joinable() {
		t.Fatal("thread still joinable after a consumed JoinCtx")
	}
}

func TestJoinCtxPanicTyped(t *testing.T) {
	th := NewThread(func() { panic("thread-boom") })
	err := th.JoinCtx(context.Background())
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *sched.PanicError", err)
	}
	if pe.Value != "thread-boom" {
		t.Fatalf("PanicError.Value = %v, want thread-boom", pe.Value)
	}
}

func TestAsyncPanicIsPanicError(t *testing.T) {
	f := Async(LaunchAsync, func() (int, error) { panic("async-boom") })
	_, err := f.Get()
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *sched.PanicError", err)
	}
	if pe.Value != "async-boom" {
		t.Fatalf("PanicError.Value = %v, want async-boom", pe.Value)
	}
}
