package futures

import (
	"context"
	"time"
)

// This file adds the hedged-request combinator used by the service
// scenario (cmd/threadserve): launch an attempt, and if it has not
// settled after a delay, launch a duplicate and take whichever
// finishes first — "The Tail at Scale" hedging, expressed over the
// package's futures so the winner/loser plumbing is WhenAny.

// HedgeResult reports a hedged call's outcome: the winning value,
// whether a duplicate was actually launched, and which attempt won
// (0 = primary, 1 = duplicate).
type HedgeResult[T any] struct {
	Value  T
	Hedged bool
	Winner int
}

// HedgeCtx runs fn as a primary attempt; if the primary has not
// settled within delay, it launches one duplicate attempt and returns
// the first result to arrive. Each attempt receives its own child
// context, canceled as soon as the other attempt wins or ctx is done,
// so a cooperative fn (one that observes its context at chunk
// boundaries, as every Executor loop does) stops promptly after
// losing.
//
// HedgeCtx returns only after BOTH launched attempts have settled:
// the losing attempt is canceled and then drained synchronously, so
// no goroutine, future, or executor task outlives the call. That
// makes the combinator safe to layer over pooled runtimes — a loser
// is never left running against a region the caller has moved past.
//
// If ctx itself is done, both attempts are canceled, drained, and the
// context's error is returned. A non-positive delay hedges
// immediately.
func HedgeCtx[T any](ctx context.Context, delay time.Duration, fn func(ctx context.Context) (T, error)) (HedgeResult[T], error) {
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	primary := Async(LaunchAsync, func() (T, error) { return fn(pctx) })

	if delay > 0 && primary.WaitFor(delay) {
		//threadvet:ignore ctxdrop the future is already settled (WaitFor returned true); Get cannot block
		v, err := primary.Get()
		return HedgeResult[T]{Value: v, Winner: 0}, err
	}
	if err := ctx.Err(); err != nil {
		// The deadline burned down during the wait: don't hedge a dead
		// request — cancel and drain the primary, report the context.
		pcancel()
		//threadvet:ignore ctxdrop drain on purpose: the canceled primary must settle before the combinator returns (GetCtx would abandon a live attempt)
		primary.Get()
		var zero T
		return HedgeResult[T]{Value: zero}, err
	}

	dctx, dcancel := context.WithCancel(ctx)
	defer dcancel()
	dup := Async(LaunchAsync, func() (T, error) { return fn(dctx) })

	//threadvet:ignore ctxdrop WhenAny settles as soon as either attempt does; attempts observe ctx themselves, so this wait is already ctx-bounded
	any, anyErr := WhenAny(primary, dup).Get()
	// First settle decides; cancel both children (the winner has
	// already returned) and drain both attempts before returning.
	pcancel()
	dcancel()
	//threadvet:ignore ctxdrop drain on purpose: both attempts must settle before the combinator returns — the no-leak guarantee (GetCtx would abandon the loser)
	pv, perr := primary.Get()
	//threadvet:ignore ctxdrop drain on purpose: both attempts must settle before the combinator returns — the no-leak guarantee (GetCtx would abandon the loser)
	dv, derr := dup.Get()

	res := HedgeResult[T]{Hedged: true, Winner: any.Index}
	if anyErr != nil {
		// The first attempt to settle failed. WhenAny does not say
		// which; prefer a success from the other attempt (hedging
		// exists to mask exactly this), else report the first error.
		if perr == nil {
			res.Winner = 0
			res.Value = pv
			return res, nil
		}
		if derr == nil {
			res.Winner = 1
			res.Value = dv
			return res, nil
		}
		return res, anyErr
	}
	res.Value = any.Value
	return res, nil
}
