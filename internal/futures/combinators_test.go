package futures

import (
	"errors"
	"testing"
	"time"
)

func TestWhenAllValues(t *testing.T) {
	fs := make([]*Future[int], 5)
	for i := range fs {
		i := i
		fs[i] = Async(LaunchAsync, func() (int, error) { return i * i, nil })
	}
	all, err := WhenAll(fs...).Get()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range all {
		if v != i*i {
			t.Fatalf("all[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestWhenAllError(t *testing.T) {
	bad := errors.New("bad")
	fs := []*Future[int]{
		Async(LaunchAsync, func() (int, error) { return 1, nil }),
		Async(LaunchAsync, func() (int, error) { return 0, bad }),
	}
	if _, err := WhenAll(fs...).Get(); !errors.Is(err, bad) {
		t.Fatalf("err = %v, want bad", err)
	}
}

func TestWhenAllEmpty(t *testing.T) {
	all, err := WhenAll[int]().Get()
	if err != nil || len(all) != 0 {
		t.Fatalf("WhenAll() = (%v, %v)", all, err)
	}
}

func TestWhenAnyFirstWins(t *testing.T) {
	slow := NewPromise[int]()
	fast := Async(LaunchAsync, func() (int, error) { return 7, nil })
	res, err := WhenAny(slow.Future(), fast).Get()
	if err != nil {
		t.Fatal(err)
	}
	if res.Index != 1 || res.Value != 7 {
		t.Fatalf("res = %+v, want index 1 value 7", res)
	}
	slow.Set(1) // settle the promise so nothing leaks blocked
}

func TestWhenAnyError(t *testing.T) {
	bad := errors.New("first failure")
	slow := NewPromise[int]()
	failing := Async(LaunchAsync, func() (int, error) { return 0, bad })
	if _, err := WhenAny(slow.Future(), failing).Get(); !errors.Is(err, bad) {
		t.Fatalf("err = %v, want first failure", err)
	}
	slow.Set(0)
}

func TestWhenAnyEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WhenAny() did not panic")
		}
	}()
	WhenAny[int]()
}

func TestThenChains(t *testing.T) {
	f := Async(LaunchAsync, func() (int, error) { return 6, nil })
	g := Then(f, func(v int) (string, error) {
		if v != 6 {
			t.Errorf("continuation got %d", v)
		}
		return "ok", nil
	})
	s, err := g.Get()
	if err != nil || s != "ok" {
		t.Fatalf("Get = (%q, %v)", s, err)
	}
}

func TestThenErrorShortCircuits(t *testing.T) {
	bad := errors.New("upstream")
	f := Async(LaunchAsync, func() (int, error) { return 0, bad })
	ran := false
	g := Then(f, func(int) (int, error) { ran = true; return 0, nil })
	if _, err := g.Get(); !errors.Is(err, bad) {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("continuation ran despite upstream error")
	}
}

func TestThenContinuationError(t *testing.T) {
	bad := errors.New("in then")
	f := Async(LaunchAsync, func() (int, error) { return 1, nil })
	g := Then(f, func(int) (int, error) { return 0, bad })
	if _, err := g.Get(); !errors.Is(err, bad) {
		t.Fatalf("err = %v", err)
	}
}

func TestCombinatorGraph(t *testing.T) {
	// A small dependency DAG: two sources -> combine -> fan-out ->
	// when_all join, exercising composition end to end.
	a := Async(LaunchAsync, func() (int, error) { return 3, nil })
	b := Async(LaunchAsync, func() (int, error) { return 4, nil })
	ab, err := WhenAll(a, b).Get()
	if err != nil {
		t.Fatal(err)
	}
	sum := Async(LaunchAsync, func() (int, error) { return ab[0] + ab[1], nil })
	outs := make([]*Future[int], 3)
	for i := range outs {
		i := i
		outs[i] = Then(sum, func(v int) (int, error) { return v * (i + 1), nil })
	}
	vals, err := WhenAll(outs...).Get()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != 7*(i+1) {
			t.Fatalf("vals = %v", vals)
		}
	}
}

func TestWhenAnyTiming(t *testing.T) {
	start := time.Now()
	slow := Async(LaunchAsync, func() (int, error) {
		time.Sleep(200 * time.Millisecond)
		return 1, nil
	})
	fast := Async(LaunchAsync, func() (int, error) { return 2, nil })
	if _, err := WhenAny(slow, fast).Get(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("WhenAny waited for the slow future (%v)", elapsed)
	}
}
