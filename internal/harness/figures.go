package harness

import (
	"fmt"
	"math"

	"threading/internal/kernels"
	"threading/internal/models"
	"threading/internal/rodinia/bfs"
	"threading/internal/rodinia/hotspot"
	"threading/internal/rodinia/lavamd"
	"threading/internal/rodinia/lud"
	"threading/internal/rodinia/srad"
)

// Default workload sizes. The paper ran on a 36-core Xeon with N=100M
// vectors, 40k matvec, 2k matmul, fib(40), a 16M-node graph and an
// 8192^2 HotSpot grid; these defaults are the same workloads scaled to
// finish in seconds on a laptop-class host. Pass -scale to
// cmd/threadbench (or Config.Scale) to move them.
const (
	defaultVectorN    = 8_000_000
	defaultMatvecN    = 2048
	defaultMatmulN    = 256
	defaultFibN       = 28
	defaultFibCutoff  = 18 // for the thread-per-task models only
	defaultBFSNodes   = 1_000_000
	defaultBFSDegree  = 6
	defaultHotspotDim = 512
	defaultHotspotIts = 40
	defaultLUDN       = 384
	defaultLavaBoxes  = 4
	defaultSRADDim    = 512
	defaultSRADIts    = 8
	defaultLambda     = 0.5
)

// scaleLin scales a 1-D size.
func scaleLin(base int, s float64) int {
	n := int(float64(base) * s)
	if n < 1 {
		return 1
	}
	return n
}

// scaleDim scales one dimension of a 2-D workload so total work
// scales by s.
func scaleDim(base int, s float64) int {
	n := int(float64(base) * math.Sqrt(s))
	if n < 2 {
		return 2
	}
	return n
}

// scaleCube scales one dimension of an O(n^3) workload.
func scaleCube(base int, s float64) int {
	n := int(float64(base) * math.Cbrt(s))
	if n < 2 {
		return 2
	}
	return n
}

// scaleFib converts a scale factor to a Fibonacci argument shift:
// halving the scale removes about one level of recursion.
func scaleFib(base int, s float64) int {
	n := base + int(math.Round(math.Log2(s)))
	if n < 10 {
		return 10
	}
	return n
}

func almostEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(scale, 1)
}

// Registry returns the paper's ten performance experiments.
func Registry() []*Experiment {
	return []*Experiment{
		fig1Axpy(), fig2Sum(), fig3Matvec(), fig4Matmul(), fig5Fib(),
		fig6BFS(), fig7HotSpot(), fig8LUD(), fig9LavaMD(), fig10SRAD(),
	}
}

func fig1Axpy() *Experiment {
	return &Experiment{
		ID:      "fig1",
		Title:   "Axpy: y = a*x + y (paper: N=100M)",
		Finding: "cilk_for worst (~2x slower: steal-serialized chunk distribution); all others similar",
		Models:  models.DataNames(),
		Prepare: func(scale float64) *Workload {
			n := scaleLin(defaultVectorN, scale)
			const a = 2.0
			x := kernels.RandomVector(n, 1)
			y := kernels.RandomVector(n, 2)
			return &Workload{
				Desc: fmt.Sprintf("N=%d", n),
				Seq:  func() { kernels.AxpySeq(a, x, y) },
				Run:  func(m models.Model) { kernels.Axpy(m, a, x, y) },
				Check: func(m models.Model) error {
					want := kernels.RandomVector(n, 2)
					kernels.AxpySeq(a, x, want)
					got := kernels.RandomVector(n, 2)
					kernels.Axpy(m, a, x, got)
					for i := range got {
						if got[i] != want[i] {
							return fmt.Errorf("axpy: element %d: %g != %g", i, got[i], want[i])
						}
					}
					return nil
				},
			}
		},
	}
}

func fig2Sum() *Experiment {
	return &Experiment{
		ID:      "fig2",
		Title:   "Sum: reduction of a*X[i] (paper: N=100M)",
		Finding: "cilk_for worst (~5x); worksharing+reduction (omp) best — workstealing wrong for reduction loops",
		Models:  models.DataNames(),
		Prepare: func(scale float64) *Workload {
			n := scaleLin(defaultVectorN, scale)
			const a = 3.0
			x := kernels.RandomVector(n, 3)
			want := kernels.SumSeq(a, x)
			var sink float64
			return &Workload{
				Desc: fmt.Sprintf("N=%d", n),
				Seq:  func() { sink = kernels.SumSeq(a, x) },
				Run:  func(m models.Model) { sink = kernels.Sum(m, a, x) },
				Check: func(m models.Model) error {
					got := kernels.Sum(m, a, x)
					if !almostEqual(got, want, 1e-9) {
						return fmt.Errorf("sum: %g != %g", got, want)
					}
					_ = sink
					return nil
				},
			}
		},
	}
}

func fig3Matvec() *Experiment {
	return &Experiment{
		ID:      "fig3",
		Title:   "Matvec: y = A*x (paper: n=40k)",
		Finding: "cilk_for ~25% worse; others similar — impact of scheduling shrinks as intensity grows",
		Models:  models.DataNames(),
		Prepare: func(scale float64) *Workload {
			n := scaleDim(defaultMatvecN, scale)
			a := kernels.RandomMatrix(n, 4)
			x := kernels.RandomVector(n, 5)
			y := make([]float64, n)
			want := make([]float64, n)
			kernels.MatvecSeq(a, x, want, n)
			return &Workload{
				Desc: fmt.Sprintf("n=%d (%d x %d)", n, n, n),
				Seq:  func() { kernels.MatvecSeq(a, x, y, n) },
				Run:  func(m models.Model) { kernels.Matvec(m, a, x, y, n) },
				Check: func(m models.Model) error {
					got := make([]float64, n)
					kernels.Matvec(m, a, x, got, n)
					for i := range got {
						if !almostEqual(got[i], want[i], 1e-9) {
							return fmt.Errorf("matvec: row %d: %g != %g", i, got[i], want[i])
						}
					}
					return nil
				},
			}
		},
	}
}

func fig4Matmul() *Experiment {
	return &Experiment{
		ID:      "fig4",
		Title:   "Matmul: C = A*B (paper: n=2k)",
		Finding: "cilk_for ~10% worse; scheduling impact smallest at highest arithmetic intensity",
		Models:  models.DataNames(),
		Prepare: func(scale float64) *Workload {
			n := scaleCube(defaultMatmulN, scale)
			a := kernels.RandomMatrix(n, 6)
			b := kernels.RandomMatrix(n, 7)
			c := make([]float64, n*n)
			want := make([]float64, n*n)
			kernels.MatmulSeq(a, b, want, n)
			return &Workload{
				Desc: fmt.Sprintf("n=%d (%d x %d)", n, n, n),
				Seq:  func() { kernels.MatmulSeq(a, b, c, n) },
				Run:  func(m models.Model) { kernels.Matmul(m, a, b, c, n) },
				Check: func(m models.Model) error {
					got := make([]float64, n*n)
					kernels.Matmul(m, a, b, got, n)
					for i := range got {
						if !almostEqual(got[i], want[i], 1e-9) {
							return fmt.Errorf("matmul: element %d: %g != %g", i, got[i], want[i])
						}
					}
					return nil
				},
			}
		},
	}
}

func fig5Fib() *Experiment {
	// The paper's Fig. 5 compares cilk_spawn and omp task at fib(40)
	// with no cut-off (loop models are "not practical"; the uncut
	// std::thread/std::async versions hang above fib(20), so the
	// thread-backed models run with the BASE cut-off the paper's C++
	// loop versions use).
	return &Experiment{
		ID:      "fig5",
		Title:   "Fibonacci: recursive task parallelism (paper: fib(40))",
		Finding: "cilk_spawn ~20% better than omp_task (lock-based deques contend); uncut C++ versions unusable",
		Models:  models.TaskNames(),
		Prepare: func(scale float64) *Workload {
			n := scaleFib(defaultFibN, scale)
			cutoff := defaultFibCutoff + (n - defaultFibN)
			if cutoff < 10 {
				cutoff = 10
			}
			want := kernels.FibSeq(n)
			var sink uint64
			cutoffFor := func(m models.Model) int {
				switch m.Name() {
				case models.CPPThread, models.CPPAsync:
					return cutoff // a thread per branch does not survive uncut
				default:
					return 0 // pure spawning, as the paper ran cilk/omp
				}
			}
			return &Workload{
				Desc: fmt.Sprintf("fib(%d), uncut for pooled models, cutoff=%d for thread-backed", n, cutoff),
				Seq:  func() { sink = kernels.FibSeq(n) },
				Run:  func(m models.Model) { sink = kernels.FibTask(m, n, cutoffFor(m)) },
				Check: func(m models.Model) error {
					if got := kernels.FibTask(m, n, cutoffFor(m)); got != want {
						return fmt.Errorf("fib: %d != %d", got, want)
					}
					_ = sink
					return nil
				},
			}
		},
	}
}

func fig6BFS() *Experiment {
	return &Experiment{
		ID:      "fig6",
		Title:   "Rodinia BFS: level-synchronous graph traversal (paper: 16M nodes)",
		Finding: "scales to ~8 cores; cilk_for worst, others close — irregular per-node work, poor locality",
		Models:  models.DataNames(),
		Prepare: func(scale float64) *Workload {
			n := scaleLin(defaultBFSNodes, scale)
			g := bfs.Generate(n, defaultBFSDegree, 42)
			want := bfs.Seq(g, 0)
			return &Workload{
				Desc: fmt.Sprintf("nodes=%d, edges=%d", g.NumNodes, g.NumEdges()),
				Seq:  func() { bfs.Seq(g, 0) },
				Run:  func(m models.Model) { bfs.Parallel(m, g, 0) },
				Check: func(m models.Model) error {
					got := bfs.Parallel(m, g, 0)
					for i := range want {
						if got[i] != want[i] {
							return fmt.Errorf("bfs: node %d level %d != %d", i, got[i], want[i])
						}
					}
					return nil
				},
			}
		},
	}
}

func fig7HotSpot() *Experiment {
	return &Experiment{
		ID:      "fig7",
		Title:   "Rodinia HotSpot: thermal stencil simulation (paper: 8192^2)",
		Finding: "data-parallel versions weak; tasking gains as threads increase — dependent compute-heavy phases",
		Models:  models.DataNames(),
		Prepare: func(scale float64) *Workload {
			dim := scaleDim(defaultHotspotDim, scale)
			cfg := hotspot.NewConfig(dim, dim)
			temp, power := hotspot.GenerateInput(dim, dim, 9)
			want := hotspot.Seq(cfg, temp, power, defaultHotspotIts)
			return &Workload{
				Desc: fmt.Sprintf("grid=%dx%d, steps=%d", dim, dim, defaultHotspotIts),
				Seq:  func() { hotspot.Seq(cfg, temp, power, defaultHotspotIts) },
				Run: func(m models.Model) {
					hotspot.Parallel(m, cfg, temp, power, defaultHotspotIts)
				},
				Check: func(m models.Model) error {
					got := hotspot.Parallel(m, cfg, temp, power, defaultHotspotIts)
					for i := range want {
						if !almostEqual(got[i], want[i], 1e-9) {
							return fmt.Errorf("hotspot: cell %d: %g != %g", i, got[i], want[i])
						}
					}
					return nil
				},
			}
		},
	}
}

func fig8LUD() *Experiment {
	return &Experiment{
		ID:      "fig8",
		Title:   "Rodinia LUD: LU decomposition (paper: 2048)",
		Finding: "triangular shrinking loops: equal task counts, unequal work; frequent joins punish high fork cost",
		Models:  models.DataNames(),
		Prepare: func(scale float64) *Workload {
			n := scaleCube(defaultLUDN, scale)
			orig := lud.GenerateMatrix(n, 21)
			want := make([]float64, len(orig))
			copy(want, orig)
			lud.Seq(want, n)
			scratch := make([]float64, len(orig))
			return &Workload{
				Desc: fmt.Sprintf("n=%d (%d x %d)", n, n, n),
				Seq: func() {
					copy(scratch, orig)
					lud.Seq(scratch, n)
				},
				Run: func(m models.Model) {
					copy(scratch, orig)
					lud.Parallel(m, scratch, n)
				},
				Check: func(m models.Model) error {
					a := make([]float64, len(orig))
					copy(a, orig)
					lud.Parallel(m, a, n)
					if err := lud.MaxError(a, want); err > 1e-9 {
						return fmt.Errorf("lud: max deviation %g", err)
					}
					return nil
				},
			}
		},
	}
}

func fig9LavaMD() *Experiment {
	return &Experiment{
		ID:      "fig9",
		Title:   "Rodinia LavaMD: boxed N-body potential (paper: 10^3 boxes)",
		Finding: "uniform work per box: all models perform closely",
		Models:  models.DataNames(),
		Prepare: func(scale float64) *Workload {
			boxes := scaleCube(defaultLavaBoxes, scale)
			if boxes < 2 {
				boxes = 2
			}
			s := lavamd.Generate(boxes, 77)
			want := lavamd.Seq(s)
			return &Workload{
				Desc: fmt.Sprintf("boxes=%d^3, particles=%d", boxes, s.NumParticles()),
				Seq:  func() { lavamd.Seq(s) },
				Run:  func(m models.Model) { lavamd.Parallel(m, s) },
				Check: func(m models.Model) error {
					got := lavamd.Parallel(m, s)
					for i := range want {
						if !almostEqual(got[i].V, want[i].V, 1e-12) {
							return fmt.Errorf("lavamd: particle %d potential differs", i)
						}
					}
					return nil
				},
			}
		},
	}
}

func fig10SRAD() *Experiment {
	return &Experiment{
		ID:      "fig10",
		Title:   "Rodinia SRAD: speckle-reducing anisotropic diffusion (paper: 2048^2)",
		Finding: "regular stencil phases with reductions: models perform closely",
		Models:  models.DataNames(),
		Prepare: func(scale float64) *Workload {
			dim := scaleDim(defaultSRADDim, scale)
			im := srad.GenerateImage(dim, dim, 13)
			want := srad.Seq(im, defaultLambda, defaultSRADIts)
			return &Workload{
				Desc: fmt.Sprintf("image=%dx%d, iterations=%d", dim, dim, defaultSRADIts),
				Seq:  func() { srad.Seq(im, defaultLambda, defaultSRADIts) },
				Run: func(m models.Model) {
					srad.Parallel(m, im, defaultLambda, defaultSRADIts)
				},
				Check: func(m models.Model) error {
					got := srad.Parallel(m, im, defaultLambda, defaultSRADIts)
					for i := range want.Pix {
						if !almostEqual(got.Pix[i], want.Pix[i], 1e-6) {
							return fmt.Errorf("srad: pixel %d: %g != %g", i, got.Pix[i], want.Pix[i])
						}
					}
					return nil
				},
			}
		},
	}
}
