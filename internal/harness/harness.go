// Package harness drives the paper's performance experiments: for
// each figure it prepares a workload, runs it under every threading
// model across a sweep of thread counts with repetitions, verifies
// results against the sequential reference, and renders the timing
// and speedup tables that correspond to the paper's plots.
package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"time"

	"threading/internal/models"
	"threading/internal/sched"
	"threading/internal/shard"
	"threading/internal/stats"
	"threading/internal/tracez"
	"threading/internal/worksteal"
)

// Workload is one prepared experiment instance.
type Workload struct {
	// Desc describes the prepared size, e.g. "N=8000000".
	Desc string
	// Seq executes the sequential reference once.
	Seq func()
	// Run executes the workload under m once.
	Run func(m models.Model)
	// Check verifies that running under m produces the reference
	// result. May be nil when Run itself is self-checking.
	Check func(m models.Model) error
}

// Experiment is one paper figure: metadata plus a workload factory.
type Experiment struct {
	// ID is the figure identifier, e.g. "fig1".
	ID string
	// Title names the application and its role in the paper.
	Title string
	// Finding summarizes what the paper reports for this figure.
	Finding string
	// Models lists the model names this experiment runs (the paper
	// restricts Fig. 5 to the task-capable models).
	Models []string
	// Prepare builds the workload at the given scale in (0, 1].
	Prepare func(scale float64) *Workload
}

// Config controls an experiment run.
type Config struct {
	// Threads is the sweep of thread counts. Empty selects
	// {1, 2, 4, ..., 2*GOMAXPROCS}.
	Threads []int
	// Reps is the number of timed repetitions per cell; the minimum
	// is reported (standard practice for noisy shared machines).
	// Zero selects 3.
	Reps int
	// Scale multiplies the workload size. Zero selects 1.0.
	Scale float64
	// Verify runs each model's correctness check before timing.
	Verify bool
	// Partitioner selects the loop partitioner for the work-stealing
	// models. The zero value, worksteal.Eager, is the paper-faithful
	// decomposition and must be used when reproducing the paper's
	// figures; worksteal.Lazy enables demand-driven splitting.
	Partitioner worksteal.Partitioner
	// Stats collects per-cell scheduler counters (for models whose
	// runtime records them), reset after each warm-up so the numbers
	// cover exactly the timed repetitions.
	Stats bool
	// Grain fixes the cilk_for loop grain; the zero value keeps the
	// default heuristic (see models.WithGrain). The benchmark gate
	// uses it to measure the distribution-stressing regime.
	Grain int
	// KeepSamples retains every raw repetition timing in
	// Result.RawSamples — the sample-export hook the statistical
	// regression gate (internal/benchgate) is built on. Off by
	// default: a full sweep holds models x threads x reps durations.
	KeepSamples bool
	// Tracer, when non-nil, is attached to every model the sweep
	// constructs, so each cell's runtime records scheduler events into
	// it. The rings wrap around, so the capture covers the tail of the
	// sweep — trace a single figure/model/threads selection for a
	// readable timeline.
	Tracer *tracez.Tracer
	// Shards splits each pooled model's runtime into this many shards
	// behind a shard.Resolver (see models.WithShardCount): 0 disables
	// sharding, a negative value selects GOMAXPROCS shards. Models
	// without a persistent runtime ignore it.
	Shards int
	// Balancer names the resolver's balancer when Shards is non-zero:
	// round-robin (default), random, least-loaded, or affinity.
	Balancer string
	// Pinned locks the pooled runtimes' worker goroutines to OS
	// threads (see models.WithPinnedWorkers). Models without durable
	// workers ignore it.
	Pinned bool
}

// DefaultThreads returns the default sweep {1, 2, 4, ...} up to twice
// GOMAXPROCS (the paper sweeps past the physical core count into
// hyper-threading territory; we sweep into oversubscription).
func DefaultThreads() []int {
	max := 2 * runtime.GOMAXPROCS(0)
	var out []int
	for t := 1; t <= max; t *= 2 {
		out = append(out, t)
	}
	return out
}

func (c Config) withDefaults() Config {
	if len(c.Threads) == 0 {
		c.Threads = DefaultThreads()
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	return c
}

// Cell is one (model, threads) measurement.
type Cell struct {
	Model   string
	Threads int
	Sample  stats.Sample
}

// Result is the outcome of one experiment run.
type Result struct {
	Experiment  *Experiment
	Desc        string
	SeqTime     time.Duration
	Threads     []int
	Models      []string
	Partitioner worksteal.Partitioner
	// Shards and Balancer echo the sharding configuration of the run
	// (Config.Shards resolved against GOMAXPROCS; zero when unsharded).
	Shards   int
	Balancer string
	// Pinned and Grain echo the remaining model-shaping knobs of the
	// run, so exporters (benchgate.FromResults) can key samples by the
	// full measured configuration rather than assuming defaults.
	Pinned bool
	Grain  int
	Cells  map[string]map[int]stats.Sample
	// Sched holds per-cell scheduler counters, present only when the
	// run was configured with Stats and the model's runtime collects
	// them.
	Sched map[string]map[int]sched.Snapshot
	// ShardSched holds per-cell, per-shard counters for cells whose
	// model ran sharded (models.ShardedStats), present only when the
	// run was configured with Stats. The merged totals remain in Sched.
	ShardSched map[string]map[int][]shard.Stat
	// RawSamples holds every timed repetition per cell, in
	// measurement order, present only when the run was configured
	// with KeepSamples.
	RawSamples map[string]map[int][]time.Duration
	// TraceDropped holds the per-cell count of scheduler events the
	// tracer's rings overwrote during the timed reps (a wraparound
	// warning: the captured window is incomplete). Present only when
	// the run was configured with a Tracer.
	TraceDropped map[string]map[int]int64
}

// Run executes the experiment under cfg.
func Run(e *Experiment, cfg Config) (*Result, error) {
	return RunCtx(context.Background(), e, cfg)
}

// RunCtx is Run with cooperative cancellation: the sweep checks ctx
// between repetitions and between (model, threads) cells, so a
// canceled or expired context aborts the experiment at the next
// measurement boundary (an in-flight repetition runs to completion)
// and the context's error is returned.
func RunCtx(ctx context.Context, e *Experiment, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	w := e.Prepare(cfg.Scale)

	// Sequential baseline: best of Reps.
	var seqTimes []time.Duration
	for r := 0; r < cfg.Reps; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start := time.Now()
		w.Seq()
		seqTimes = append(seqTimes, time.Since(start))
	}
	seq := stats.Summarize(seqTimes).Min

	shards := cfg.Shards
	if shards < 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	res := &Result{
		Experiment:  e,
		Desc:        w.Desc,
		SeqTime:     seq,
		Threads:     cfg.Threads,
		Models:      e.Models,
		Partitioner: cfg.Partitioner,
		Shards:      shards,
		Balancer:    cfg.Balancer,
		Pinned:      cfg.Pinned,
		Grain:       cfg.Grain,
		Cells:       make(map[string]map[int]stats.Sample),
	}
	if cfg.Stats {
		res.Sched = make(map[string]map[int]sched.Snapshot)
		res.ShardSched = make(map[string]map[int][]shard.Stat)
	}
	if cfg.KeepSamples {
		res.RawSamples = make(map[string]map[int][]time.Duration)
	}
	if cfg.Tracer != nil {
		res.TraceDropped = make(map[string]map[int]int64)
	}
	for _, name := range e.Models {
		res.Cells[name] = make(map[int]stats.Sample)
		for _, threads := range cfg.Threads {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			m, err := models.New(name, threads,
				models.WithPartitioner(cfg.Partitioner), models.WithGrain(cfg.Grain),
				models.WithTracer(cfg.Tracer),
				models.WithShardCount(cfg.Shards), models.WithShardBalancer(cfg.Balancer),
				models.WithPinnedWorkers(cfg.Pinned))
			if err != nil {
				return nil, err
			}
			if cfg.Verify && w.Check != nil {
				if err := w.Check(m); err != nil {
					m.Close()
					return nil, fmt.Errorf("%s: %s @%d threads: %w", e.ID, name, threads, err)
				}
			}
			w.Run(m) // warm-up, untimed
			// Bracket the timed reps with snapshots instead of resetting,
			// so the reported counters are a true delta even if the
			// runtime saw other activity.
			base, _ := m.SchedulerStats()
			var shardBase []shard.Stat
			if ss, ok := m.(models.ShardedStats); ok && cfg.Stats {
				shardBase = ss.ShardSchedulerStats()
			}
			var dropBase int64
			if cfg.Tracer != nil {
				dropBase = cfg.Tracer.Dropped()
			}
			var ts []time.Duration
			for r := 0; r < cfg.Reps; r++ {
				if err := ctx.Err(); err != nil {
					m.Close()
					return nil, err
				}
				start := time.Now()
				w.Run(m)
				ts = append(ts, time.Since(start))
			}
			if cfg.Stats {
				if snap, ok := m.SchedulerStats(); ok {
					if res.Sched[name] == nil {
						res.Sched[name] = make(map[int]sched.Snapshot)
					}
					res.Sched[name][threads] = snap.Delta(base)
				}
				if ss, ok := m.(models.ShardedStats); ok {
					if res.ShardSched[name] == nil {
						res.ShardSched[name] = make(map[int][]shard.Stat)
					}
					res.ShardSched[name][threads] = deltaShardStats(shardBase, ss.ShardSchedulerStats())
				}
			}
			if cfg.KeepSamples {
				if res.RawSamples[name] == nil {
					res.RawSamples[name] = make(map[int][]time.Duration)
				}
				res.RawSamples[name][threads] = ts
			}
			if cfg.Tracer != nil {
				if res.TraceDropped[name] == nil {
					res.TraceDropped[name] = make(map[int]int64)
				}
				res.TraceDropped[name][threads] = cfg.Tracer.Dropped() - dropBase
			}
			m.Close()
			res.Cells[name][threads] = stats.Summarize(ts)
		}
	}
	return res, nil
}

// deltaShardStats subtracts the base bracket from the end-of-reps
// shard snapshots, matching shards by id (positions shift when shards
// are added or drained mid-run). A shard absent from the base — added
// after the bracket opened — deltas against zero.
func deltaShardStats(base, end []shard.Stat) []shard.Stat {
	byID := make(map[int]sched.Snapshot, len(base))
	for _, st := range base {
		byID[st.ID] = st.Snapshot
	}
	out := make([]shard.Stat, len(end))
	for i, st := range end {
		out[i] = shard.Stat{ID: st.ID, Snapshot: st.Snapshot.Delta(byID[st.ID])}
	}
	return out
}

// Render writes the result as two aligned text tables (time and
// speedup over the sequential reference), matching the series the
// paper plots.
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.Experiment.ID, r.Experiment.Title)
	fmt.Fprintf(w, "workload: %s\n", r.Desc)
	fmt.Fprintf(w, "paper:    %s\n", r.Experiment.Finding)
	if r.Partitioner != worksteal.Eager {
		fmt.Fprintf(w, "partitioner: %s (NOT paper-faithful; use eager to reproduce figures)\n", r.Partitioner)
	}
	if r.Shards != 0 {
		bal := r.Balancer
		if bal == "" {
			bal = "round-robin"
		}
		fmt.Fprintf(w, "sharding: %d shards, %s balancer (pooled models only)\n", r.Shards, bal)
	}
	fmt.Fprintf(w, "sequential reference: %v\n\n", r.SeqTime)

	fmt.Fprintf(w, "execution time (min of reps):\n")
	fmt.Fprintf(w, "%-8s", "threads")
	for _, m := range r.Models {
		fmt.Fprintf(w, " %12s", m)
	}
	fmt.Fprintln(w)
	for _, t := range r.Threads {
		fmt.Fprintf(w, "%-8d", t)
		for _, m := range r.Models {
			fmt.Fprintf(w, " %12v", r.Cells[m][t].Min.Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "\nspeedup vs sequential:\n")
	fmt.Fprintf(w, "%-8s", "threads")
	for _, m := range r.Models {
		fmt.Fprintf(w, " %12s", m)
	}
	fmt.Fprintln(w)
	for _, t := range r.Threads {
		fmt.Fprintf(w, "%-8d", t)
		for _, m := range r.Models {
			fmt.Fprintf(w, " %12.2f", stats.Speedup(r.SeqTime, r.Cells[m][t].Min))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// RenderStats writes the per-cell scheduler counters collected when
// the run was configured with Config.Stats. Cells whose model runtime
// does not record counters are omitted; with no counters at all it
// writes nothing.
//
// When any cell ran sharded, a "shard" column is added and each
// sharded cell expands into a merged row (tagged "-") followed by one
// row per shard id, so imbalance across shards is visible next to the
// totals. Unsharded runs keep the original layout; the counter columns
// are derived from Fields() in both cases. A traced run adds a
// "dropped" column — events the tracer rings overwrote during the
// cell's timed reps; nonzero means that cell's capture is truncated.
func (r *Result) RenderStats(w io.Writer) {
	if len(r.Sched) == 0 {
		return
	}
	sharded := false
	for _, cells := range r.ShardSched {
		if len(cells) > 0 {
			sharded = true
			break
		}
	}
	fmt.Fprintf(w, "scheduler counters (timed reps only):\n")
	fmt.Fprintf(w, "%-12s %-8s", "model", "threads")
	if sharded {
		fmt.Fprintf(w, " %-6s", "shard")
	}
	for _, f := range (sched.Snapshot{}).Fields() {
		fmt.Fprintf(w, " %13s", f.Name)
	}
	if r.TraceDropped != nil {
		fmt.Fprintf(w, " %13s", "dropped")
	}
	fmt.Fprintln(w)
	row := func(model string, threads int, tag string, s sched.Snapshot, dropped string) {
		fmt.Fprintf(w, "%-12s %-8d", model, threads)
		if sharded {
			fmt.Fprintf(w, " %-6s", tag)
		}
		for _, f := range s.Fields() {
			fmt.Fprintf(w, " %13d", f.Value)
		}
		if r.TraceDropped != nil {
			fmt.Fprintf(w, " %13s", dropped)
		}
		fmt.Fprintln(w)
	}
	for _, m := range r.Models {
		cells, ok := r.Sched[m]
		if !ok {
			continue
		}
		for _, t := range r.Threads {
			s, ok := cells[t]
			if !ok {
				continue
			}
			dropped := ""
			if r.TraceDropped != nil {
				// The tracer is shared across shards, so the drop count
				// is cell-wide: report it on the merged row only.
				dropped = strconv.FormatInt(r.TraceDropped[m][t], 10)
			}
			row(m, t, "-", s, dropped)
			for _, st := range r.ShardSched[m][t] {
				row(m, t, "s"+strconv.Itoa(st.ID), st.Snapshot, "")
			}
		}
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the result as CSV rows:
// experiment,model,threads,reps,min_ns,mean_ns,median_ns,speedup,partitioner.
func (r *Result) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, "experiment,model,threads,reps,min_ns,mean_ns,median_ns,speedup,partitioner")
	for _, m := range r.Models {
		for _, t := range r.Threads {
			s := r.Cells[m][t]
			fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d,%d,%.3f,%s\n",
				r.Experiment.ID, m, t, s.N,
				s.Min.Nanoseconds(), s.Mean.Nanoseconds(), s.Median.Nanoseconds(),
				stats.Speedup(r.SeqTime, s.Min), r.Partitioner)
		}
	}
}

// BestModel returns the model with the lowest time at the given
// thread count.
func (r *Result) BestModel(threads int) string {
	best, bestT := "", time.Duration(0)
	for _, m := range r.Models {
		s, ok := r.Cells[m][threads]
		if !ok {
			continue
		}
		if best == "" || s.Min < bestT {
			best, bestT = m, s.Min
		}
	}
	return best
}

// WorstModel returns the model with the highest time at the given
// thread count.
func (r *Result) WorstModel(threads int) string {
	worst, worstT := "", time.Duration(0)
	for _, m := range r.Models {
		s, ok := r.Cells[m][threads]
		if !ok {
			continue
		}
		if worst == "" || s.Min > worstT {
			worst, worstT = m, s.Min
		}
	}
	return worst
}

// Ratio returns time(a)/time(b) at the given thread count.
func (r *Result) Ratio(a, b string, threads int) float64 {
	sa, sb := r.Cells[a][threads], r.Cells[b][threads]
	if sb.Min <= 0 {
		return 0
	}
	return float64(sa.Min) / float64(sb.Min)
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	exps := Registry()
	out := make([]string, 0, len(exps))
	for _, e := range exps {
		out = append(out, e.ID)
	}
	sort.Slice(out, func(i, j int) bool {
		// fig1 < fig2 < ... < fig10 numerically.
		return figNum(out[i]) < figNum(out[j])
	})
	return out
}

func figNum(id string) int {
	var n int
	fmt.Sscanf(id, "fig%d", &n)
	return n
}

// ByID returns the registered experiment with the given ID.
func ByID(id string) (*Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return nil, false
}
