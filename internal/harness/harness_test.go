package harness

import (
	"strings"
	"testing"
	"time"

	"threading/internal/models"
	"threading/internal/stats"
)

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"fig1", "fig2", "fig3", "fig4", "fig5",
		"fig6", "fig7", "fig8", "fig9", "fig10"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
	for _, id := range ids {
		e, ok := ByID(id)
		if !ok || e.ID != id {
			t.Fatalf("ByID(%s) failed", id)
		}
		if e.Title == "" || e.Finding == "" || len(e.Models) == 0 || e.Prepare == nil {
			t.Fatalf("%s is underspecified: %+v", id, e)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("ByID accepted unknown id")
	}
}

func TestFig5ModelsAreTaskCapable(t *testing.T) {
	e, _ := ByID("fig5")
	for _, name := range e.Models {
		m := models.MustNew(name, 1)
		if !m.SupportsTasks() {
			t.Errorf("fig5 includes loop-only model %s", name)
		}
		m.Close()
	}
}

func TestDefaultThreadsShape(t *testing.T) {
	ts := DefaultThreads()
	if len(ts) == 0 || ts[0] != 1 {
		t.Fatalf("DefaultThreads = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] != 2*ts[i-1] {
			t.Fatalf("DefaultThreads not doubling: %v", ts)
		}
	}
}

// TestAllWorkloadsVerifyTiny prepares every figure at a tiny scale and
// verifies each model's output against the sequential reference — the
// end-to-end correctness gate for the entire harness.
func TestAllWorkloadsVerifyTiny(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			w := e.Prepare(0.004) // tiny
			if w.Desc == "" {
				t.Error("workload lacks a description")
			}
			w.Seq()
			for _, name := range e.Models {
				m := models.MustNew(name, 3)
				if w.Check != nil {
					if err := w.Check(m); err != nil {
						t.Errorf("%s under %s: %v", e.ID, name, err)
					}
				}
				w.Run(m)
				m.Close()
			}
		})
	}
}

func TestRunProducesFullGrid(t *testing.T) {
	e, _ := ByID("fig1")
	res, err := Run(e, Config{Threads: []int{1, 2}, Reps: 2, Scale: 0.003, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SeqTime <= 0 {
		t.Fatal("sequential time not measured")
	}
	for _, m := range e.Models {
		for _, th := range []int{1, 2} {
			s, ok := res.Cells[m][th]
			if !ok || s.N != 2 || s.Min <= 0 {
				t.Fatalf("missing or empty cell (%s, %d): %+v", m, th, s)
			}
		}
	}
}

// The sample-export hook the benchmark gate is built on: with
// KeepSamples the raw per-repetition timings survive summarization,
// one per rep, consistent with the summarized cell; without it the
// result stays lean.
func TestKeepSamplesExportsRawTimings(t *testing.T) {
	e, _ := ByID("fig2")
	res, err := Run(e, Config{Threads: []int{2}, Reps: 3, Scale: 0.003, KeepSamples: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range e.Models {
		ts, ok := res.RawSamples[m][2]
		if !ok || len(ts) != 3 {
			t.Fatalf("RawSamples[%s][2] = %v, want 3 samples", m, ts)
		}
		min := ts[0]
		for _, d := range ts {
			if d <= 0 {
				t.Fatalf("%s: non-positive sample %v", m, d)
			}
			if d < min {
				min = d
			}
		}
		if got := res.Cells[m][2].Min; got != min {
			t.Errorf("%s: summarized min %v != min of raw samples %v", m, got, min)
		}
	}

	res, err = Run(e, Config{Threads: []int{1}, Reps: 1, Scale: 0.003})
	if err != nil {
		t.Fatal(err)
	}
	if res.RawSamples != nil {
		t.Error("RawSamples allocated without KeepSamples")
	}
}

// Config.Grain reaches the cilk_for decomposition: at a tiny fixed
// grain the eager partitioner must create far more tasks than the
// default heuristic.
func TestGrainReachesCilkFor(t *testing.T) {
	e, _ := ByID("fig1")
	stressed, err := Run(e, Config{Threads: []int{1}, Reps: 1, Scale: 0.01, Grain: 8, Stats: true})
	if err != nil {
		t.Fatal(err)
	}
	def, err := Run(e, Config{Threads: []int{1}, Reps: 1, Scale: 0.01, Stats: true})
	if err != nil {
		t.Fatal(err)
	}
	sg := stressed.Sched["cilk_for"][1].Spawns
	dg := def.Sched["cilk_for"][1].Spawns
	if sg <= dg {
		t.Errorf("grain 8 spawns (%d) not above default-grain spawns (%d)", sg, dg)
	}
}

func TestRenderOutputs(t *testing.T) {
	e, _ := ByID("fig2")
	res, err := Run(e, Config{Threads: []int{1}, Reps: 1, Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	for _, want := range []string{"fig2", "workload:", "paper:", "speedup", "threads"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q", want)
		}
	}
	var csv strings.Builder
	res.RenderCSV(&csv)
	if !strings.Contains(csv.String(), "experiment,model,threads") {
		t.Error("CSV header missing")
	}
	lines := strings.Count(strings.TrimSpace(csv.String()), "\n")
	if lines != len(e.Models) { // header + one line per model at 1 thread count
		t.Errorf("CSV has %d data lines, want %d", lines, len(e.Models))
	}
}

func TestBestWorstRatio(t *testing.T) {
	e, _ := ByID("fig1")
	res := &Result{
		Experiment: e,
		Threads:    []int{2},
		Models:     []string{"a", "b"},
		Cells: map[string]map[int]stats.Sample{
			"a": {2: stats.Sample{Min: 10 * time.Millisecond}},
			"b": {2: stats.Sample{Min: 20 * time.Millisecond}},
		},
	}
	if res.BestModel(2) != "a" || res.WorstModel(2) != "b" {
		t.Fatalf("best/worst = %s/%s", res.BestModel(2), res.WorstModel(2))
	}
	if r := res.Ratio("b", "a", 2); r != 2 {
		t.Fatalf("Ratio = %g, want 2", r)
	}
}

func TestScaleHelpers(t *testing.T) {
	if scaleLin(100, 0.5) != 50 || scaleLin(10, 0.001) != 1 {
		t.Error("scaleLin wrong")
	}
	if scaleDim(100, 0.25) != 50 || scaleDim(4, 0.0001) != 2 {
		t.Error("scaleDim wrong")
	}
	if scaleCube(100, 0.125) != 50 {
		t.Error("scaleCube wrong")
	}
	if scaleFib(30, 0.5) != 29 || scaleFib(30, 1) != 30 || scaleFib(20, 1e-9) != 10 {
		t.Error("scaleFib wrong")
	}
}
