// Fixture for TestCheckDirFixture: a package outside go list's view
// that imports a real module package.
package fix

import "threading/internal/stats"

// Mean exists only to exercise cross-package type resolution.
func Mean() stats.Sample {
	return stats.Sample{}
}
