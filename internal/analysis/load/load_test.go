package load_test

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"threading/internal/analysis/load"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// TestLoadPackage checks that a real module package round-trips
// through the loader with full type information.
func TestLoadPackage(t *testing.T) {
	l := load.New(moduleRoot(t))
	pkgs, err := l.Load("./internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "threading/internal/stats" {
		t.Errorf("ImportPath = %q", p.ImportPath)
	}
	if p.Types == nil || p.Types.Scope().Lookup("Summarize") == nil {
		t.Error("type information missing: no Summarize in package scope")
	}
	if len(p.Info.Defs) == 0 || len(p.Info.Uses) == 0 {
		t.Error("Info.Defs/Uses not populated")
	}
	if len(p.Files) == 0 {
		t.Error("no parsed files")
	}
}

// TestLoadResolvesModuleImports checks that dependencies of a loaded
// package — including other module packages — import through export
// data: internal/harness imports internal/models, internal/sched, ...
func TestLoadResolvesModuleImports(t *testing.T) {
	l := load.New(moduleRoot(t))
	pkgs, err := l.Load("./internal/harness")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	found := false
	for _, imp := range pkgs[0].Types.Imports() {
		if imp.Path() == "threading/internal/models" {
			found = true
		}
	}
	if !found {
		t.Error("threading/internal/models not among harness imports")
	}
}

// TestCheckDirFixture checks the analysistest path: a directory that
// go list cannot see, importing a real module package.
func TestCheckDirFixture(t *testing.T) {
	l := load.New(moduleRoot(t))
	p, err := l.CheckDir("testdata/src/fix")
	if err != nil {
		t.Fatal(err)
	}
	if p.Types.Scope().Lookup("Mean") == nil {
		t.Error("Mean not in fixture scope")
	}
	if l.Fset() == (*token.FileSet)(nil) {
		t.Error("nil fset")
	}
}
