// Package load type-checks packages for the threadvet analyzers
// without any dependency outside the standard library.
//
// Strategy: `go list -export -deps -json` enumerates the requested
// packages and compiles their dependency graph into the build cache,
// reporting an export-data file per dependency. Each requested package
// is then parsed from source and type-checked with go/types, importing
// its dependencies through the standard gc importer fed from those
// export files. This is the same division of labour as
// golang.org/x/tools/go/packages in LoadSyntax mode, scoped down to
// what a single-module analysis driver needs, and it works fully
// offline.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// ImportPath is the package's import path (for analysistest
	// fixtures, a synthetic path derived from the directory name).
	ImportPath string
	// Dir is the directory holding the package's sources.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Loader loads packages for analysis. One Loader shares a FileSet and
// an import cache across all packages it loads.
type Loader struct {
	// Dir is the directory `go list` runs in; it must be inside the
	// module whose packages are being analyzed.
	Dir string

	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// New returns a Loader rooted at dir.
func New(dir string) *Loader {
	l := &Loader{
		Dir:     dir,
		fset:    token.NewFileSet(),
		exports: make(map[string]string),
	}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookup)
	return l
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// golist runs `go list -e -export -deps -json` over patterns,
// recording export-data locations for every listed package, and
// returns the listed packages in dependency order.
func (l *Loader) golist(patterns ...string) ([]*listedPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %s: decoding output: %v",
				strings.Join(patterns, " "), err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// lookup feeds the gc importer: it returns the export data for an
// import path, listing it on demand when the path was not part of an
// earlier Load (analysistest fixtures may import packages outside the
// preloaded graph).
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	if f, ok := l.exports[path]; ok {
		return os.Open(f)
	}
	if _, err := l.golist(path); err != nil {
		return nil, err
	}
	if f, ok := l.exports[path]; ok {
		return os.Open(f)
	}
	return nil, fmt.Errorf("no export data for %q", path)
}

// Load lists patterns (go list syntax, e.g. "./...") and type-checks
// each matched package from source. Dependencies are imported from
// export data and are not returned.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.golist(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, p := range listed {
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, errors.New(p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := l.check(p.ImportPath, p.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// CheckDir parses every .go file in dir as one package and
// type-checks it under a synthetic import path derived from the
// directory name. It exists for analysistest fixtures, which live
// under testdata and are invisible to `go list`; their imports of
// real module packages resolve through the loader's importer.
func (l *Loader) CheckDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return l.check(filepath.Base(dir), dir, files)
}

// check parses and type-checks one package from source.
func (l *Loader) check(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{
		ImportPath: path,
		Dir:        dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
