// Negative fixture: compute-only tasks, buffered channels, blocking
// on thread-per-task APIs, goroutines launched from tasks, and
// blocking outside any task are all fine.
package clean

import (
	"context"
	"time"

	"threading/internal/futures"
	"threading/internal/worksteal"
)

// Pure compute: nothing to report.
func compute(p *worksteal.Pool) {
	_ = p.ParallelForCtx(context.Background(), 0, 1024, 0, func(l, h int) {
		s := 0.0
		for i := l; i < h; i++ {
			s += float64(i)
		}
		_ = s
	})
}

// Buffered channels do not park the worker at this occupancy.
func buffered(p *worksteal.Pool) {
	results := make(chan int, 64)
	_ = p.SubmitCtx(context.Background(), func() {
		results <- 1
	})
}

// futures.Async is thread-per-task: blocking costs a goroutine, not
// a pool lane.
func threadPerTask() {
	f := futures.Async(futures.LaunchAsync, func() (int, error) {
		time.Sleep(time.Millisecond)
		return 1, nil
	})
	_, _ = f.Get()
}

// A goroutine launched from the task blocks its own goroutine, not
// the worker that runs the task.
func fireAndForget(p *worksteal.Pool) {
	_ = p.SubmitCtx(context.Background(), func() {
		go time.Sleep(time.Millisecond)
	})
}

// Blocking outside any task submission is not this analyzer's
// business.
func plainSleep() {
	time.Sleep(time.Millisecond)
}
