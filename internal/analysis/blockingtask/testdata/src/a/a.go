package a

import (
	"context"
	"sync"
	"time"

	"threading/internal/forkjoin"
	"threading/internal/worksteal"
)

// Direct block inside a submitted task.
func direct(p *worksteal.Pool) {
	_ = p.SubmitCtx(context.Background(), func() { // want `task passed to Pool.SubmitCtx reaches time.Sleep`
		time.Sleep(time.Millisecond)
	})
}

// The blocking call is buried two calls deep: task -> throttle ->
// pace -> time.Sleep.
func pace() {
	time.Sleep(time.Millisecond)
}

func throttle() {
	pace()
}

func twoDeep(p *worksteal.Pool) {
	_ = p.SubmitCtx(context.Background(), func() { // want `task passed to Pool.SubmitCtx reaches time.Sleep \(via a.throttle -> a.pace\)`
		throttle()
	})
}

// A named function used as the task is followed like a literal.
func worker() {
	var wg sync.WaitGroup
	wg.Wait()
}

func namedTask(t *forkjoin.Team) {
	_ = t.SubmitCtx(context.Background(), worker) // want `task passed to Team.SubmitCtx reaches sync.WaitGroup.Wait`
}

// Unbuffered channel operations inside a parallel-loop body.
func chanBody(p *worksteal.Pool) {
	done := make(chan struct{})
	_ = p.ParallelForCtx(context.Background(), 0, 8, 0, func(l, h int) { // want `task passed to Pool.ParallelForCtx reaches an unbuffered channel receive`
		<-done
	})
}

// Spawned subtasks inherit the check through Ctx.Spawn.
func nested(p *worksteal.Pool) {
	p.Run(func(c *worksteal.Ctx) {
		c.Spawn(func(cc *worksteal.Ctx) { // want `task passed to Ctx.Spawn reaches time.Sleep`
			time.Sleep(time.Microsecond)
		})
		c.Sync()
	})
}
