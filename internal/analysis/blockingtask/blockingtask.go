// Package blockingtask reports tasks handed to a fixed-width worker
// pool whose bodies — directly or through any depth of calls — block:
// time.Sleep, Wait on a WaitGroup/Cond/Latch/Barrier, joining a
// thread, quiescing a pool, provably unbuffered channel operations,
// or well-known blocking syscalls (exec, net dials, HTTP).
//
// Contract encoded: the paper's three runtime families all execute
// tasks on a fixed set of workers (the very property the whole
// comparison measures), so a task that parks its worker does not
// merely run late — it removes a lane from the machine. W workers and
// W simultaneously blocked tasks is a starvation collapse: the pool
// is alive, nothing progresses, and no profiler attributes the time
// (the workers are "idle"). This is the blocking-inside-stealable-
// tasks failure mode the AMT survey names as dominant for many-task
// runtimes. Thread-per-task APIs (futures.Async, futures.NewThread)
// are exempt: blocking there costs one goroutine, not a worker lane.
//
// Mechanism: every function is summarized bottom-up over the
// interprocedural call graph into the set of blocking operations it
// may reach; summaries cross package boundaries as analysis facts.
// Task arguments at pooled entry points (SubmitCtx, Spawn, Run,
// ParallelFor bodies, TaskRun roots, ...) are then checked against
// the summary of the function they resolve to, and the diagnostic
// spells out the call chain from the task to the blocking operation.
//
// Channel operations are counted only when the channel is *provably*
// unbuffered — declared in the analyzed package and only ever made
// with make(chan T) or make(chan T, 0). Anything with an unknown or
// positive buffer is assumed intentional.
package blockingtask

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"threading/internal/analysis"
	"threading/internal/analysis/interproc"
)

// Analyzer is the blockingtask pass.
var Analyzer = &analysis.Analyzer{
	Name: "blockingtask",
	Doc: "report tasks submitted to fixed-width pools that transitively " +
		"block (Sleep, Wait, joins, unbuffered channel ops, blocking syscalls)",
	Run: run,
}

// blockFact is the exported per-function summary: the blocking
// operations the function may transitively reach.
type blockFact struct {
	Reasons []reason
}

func (*blockFact) AFact() {}

// reason is one reachable blocking operation.
type reason struct {
	// Op names the operation ("time.Sleep", "unbuffered channel send").
	Op string
	// Pos is the operation's location.
	Pos token.Pos
	// Chain lists the functions from the summarized function down to
	// the operation (empty for a direct block).
	Chain []string
}

// maxReasons bounds summary growth; one reason is enough to diagnose
// and a handful preserves useful variety.
const maxReasons = 8

// blockingFuncs names well-known blocking callees outside this
// module, keyed by package path, then receiver type ("" for
// package-level), then name.
var blockingFuncs = map[string]map[string]map[string]string{
	"time": {"": {"Sleep": "time.Sleep"}},
	"sync": {
		"WaitGroup": {"Wait": "sync.WaitGroup.Wait"},
		"Cond":      {"Wait": "sync.Cond.Wait"},
	},
	"threading/internal/syncprim": {
		"Latch":          {"Wait": "syncprim.Latch.Wait"},
		"SenseBarrier":   {"Wait": "syncprim.SenseBarrier.Wait"},
		"CentralBarrier": {"Wait": "syncprim.CentralBarrier.Wait"},
	},
	"threading/internal/futures": {
		"Thread": {"Join": "futures.Thread.Join"},
	},
	"threading/internal/worksteal": {
		"Pool": {"Quiesce": "worksteal.Pool.Quiesce"},
	},
	"threading/internal/forkjoin": {
		"Team": {"Quiesce": "forkjoin.Team.Quiesce"},
	},
	"threading/internal/shard": {
		"Resolver": {"Quiesce": "shard.Resolver.Quiesce"},
	},
	"os/exec": {
		"Cmd": {
			"Run": "exec.Cmd.Run", "Output": "exec.Cmd.Output",
			"CombinedOutput": "exec.Cmd.CombinedOutput", "Wait": "exec.Cmd.Wait",
		},
	},
	"net": {"": {"Dial": "net.Dial", "DialTimeout": "net.DialTimeout"}},
	"net/http": {
		"":       {"Get": "http.Get", "Post": "http.Post", "Head": "http.Head", "PostForm": "http.PostForm"},
		"Client": {"Do": "http.Client.Do", "Get": "http.Client.Get", "Post": "http.Client.Post"},
	},
}

// cooperative names functions whose blocking is scheduler-cooperative
// and must not propagate into task summaries. Parker.Park is the
// runtime's own parking primitive: a worker that parks through it is
// accounted for by the scheduler (help-first joins steal before
// parking, and the pool compensates parked lanes), so a task chain
// that blocks only through Park — Ctx.Sync, ForDAC joins, quiescent
// workers — is the protocol working, not a starved worker.
var cooperative = map[string]bool{
	"threading/internal/sched.Parker.Park": true,
}

// cooperativeCallee reports whether the edge's callee is exempt.
func cooperativeCallee(e *interproc.Edge) bool {
	if e.Ext != nil {
		return cooperative[analysis.ObjectKey(e.Ext)]
	}
	if e.Callee != nil && e.Callee.Fn != nil {
		return cooperative[analysis.ObjectKey(e.Callee.Fn)]
	}
	return false
}

// blockingCallee classifies a statically resolved callee as a known
// blocking operation.
func blockingCallee(f *types.Func) (string, bool) {
	if f == nil || f.Pkg() == nil {
		return "", false
	}
	recvName := ""
	if recv := analysis.ReceiverNamed(f); recv != nil {
		recvName = recv.Origin().Obj().Name()
	}
	op, ok := blockingFuncs[f.Pkg().Path()][recvName][f.Name()]
	return op, ok
}

func run(pass *analysis.Pass) error {
	g := interproc.Build(pass)
	chans := collectChannels(pass)
	order := g.Postorder()
	sums := make(map[*interproc.Node]*blockFact, len(order))
	for _, n := range order {
		sums[n] = summarize(pass, g, n, sums, chans)
	}
	for fn, n := range g.ByFn {
		if f := sums[n]; f != nil && len(f.Reasons) > 0 {
			pass.ExportObjectFact(fn, f)
		}
	}

	// Report: every task argument of a pooled entry point whose
	// target transitively blocks.
	for _, n := range g.Nodes {
		for _, e := range n.Edges {
			if e.Kind != interproc.EdgeSpawn && e.Kind != interproc.EdgeLoopBody {
				continue
			}
			if !e.Entry.Pooled {
				continue
			}
			f := targetFact(pass, &e, sums)
			if f == nil || len(f.Reasons) == 0 {
				continue
			}
			r := f.Reasons[0]
			chain := ""
			if len(r.Chain) > 0 {
				chain = " (via " + strings.Join(r.Chain, " -> ") + ")"
			}
			pass.Reportf(e.Pos,
				"task passed to %s reaches %s%s at %s; a blocked task parks one of the pool's fixed workers (starvation under load)",
				analysis.FuncName(e.EntryFn), r.Op, chain,
				pass.Fset.Position(r.Pos))
		}
	}
	return nil
}

func targetFact(pass *analysis.Pass, e *interproc.Edge, sums map[*interproc.Node]*blockFact) *blockFact {
	if e.Callee != nil {
		return sums[e.Callee]
	}
	if e.Ext != nil {
		var f blockFact
		if pass.ImportObjectFact(e.Ext, &f) {
			return &f
		}
	}
	return nil
}

// summarize computes the blocking summary of one node.
func summarize(pass *analysis.Pass, g *interproc.Graph, n *interproc.Node, sums map[*interproc.Node]*blockFact, chans map[types.Object]chanBuf) *blockFact {
	f := &blockFact{}
	add := func(r reason) {
		if len(f.Reasons) < maxReasons {
			f.Reasons = append(f.Reasons, r)
		}
	}
	analysis.WithStack(n.Body, func(nd ast.Node, stack []ast.Node) bool {
		if lit, ok := nd.(*ast.FuncLit); ok && lit != n.Lit {
			return false // separate node
		}
		switch nd := nd.(type) {
		case *ast.GoStmt:
			// A goroutine launched from the task blocks its own
			// goroutine, not the worker.
			return false
		case *ast.SendStmt:
			if isUnbuffered(pass, nd.Chan, chans) {
				add(reason{Op: "an unbuffered channel send", Pos: nd.Arrow})
			}
		case *ast.UnaryExpr:
			if nd.Op == token.ARROW && isUnbuffered(pass, nd.X, chans) {
				// Receives in a select with more than one ready path
				// are not hard blocks; skip when under a select.
				if !underSelect(stack) {
					add(reason{Op: "an unbuffered channel receive", Pos: nd.OpPos})
				}
			}
		case *ast.CallExpr:
			callee := analysis.Callee(pass.TypesInfo, nd)
			if op, ok := blockingCallee(callee); ok {
				add(reason{Op: op, Pos: nd.Pos()})
				return true
			}
			for _, e := range g.EdgesAt(nd) {
				if e.Kind != interproc.EdgeCall {
					continue // spawned work does not block this body
				}
				if cooperativeCallee(e) {
					continue // scheduler-managed parking
				}
				var tf *blockFact
				if e.Callee != nil {
					tf = sums[e.Callee]
				} else if e.Ext != nil {
					var imported blockFact
					if pass.ImportObjectFact(e.Ext, &imported) {
						tf = &imported
					}
				}
				if tf == nil {
					continue
				}
				name := calleeName(e)
				for _, r := range tf.Reasons {
					chain := append([]string{name}, r.Chain...)
					add(reason{Op: r.Op, Pos: r.Pos, Chain: chain})
				}
			}
		}
		return true
	})
	sort.SliceStable(f.Reasons, func(i, j int) bool {
		return len(f.Reasons[i].Chain) < len(f.Reasons[j].Chain)
	})
	return f
}

func calleeName(e *interproc.Edge) string {
	if e.Ext != nil {
		return analysis.FuncName(e.Ext)
	}
	if e.Callee != nil {
		return e.Callee.Name()
	}
	return "call"
}

func underSelect(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.SelectStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// chanBuf is the buffering verdict for a channel variable.
type chanBuf int

const (
	bufUnknown chanBuf = iota
	bufUnbuffered
	bufBuffered
)

// collectChannels scans the package for channel variables whose every
// make site is visible, classifying them as provably unbuffered.
func collectChannels(pass *analysis.Pass) map[types.Object]chanBuf {
	out := make(map[types.Object]chanBuf)
	classify := func(obj types.Object, rhs ast.Expr) {
		if obj == nil || obj.Type() == nil {
			return
		}
		if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
			return
		}
		v := makeVerdict(pass, rhs)
		if prev, seen := out[obj]; seen && prev != v {
			out[obj] = bufUnknown // conflicting assignment sites: give up
		} else if !seen {
			out[obj] = v
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(nd ast.Node) bool {
			switch nd := nd.(type) {
			case *ast.AssignStmt:
				if len(nd.Lhs) != len(nd.Rhs) {
					return true
				}
				for i, lhs := range nd.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = pass.TypesInfo.Uses[id]
					}
					classify(obj, nd.Rhs[i])
				}
			case *ast.ValueSpec:
				for i, name := range nd.Names {
					if i < len(nd.Values) {
						classify(pass.TypesInfo.Defs[name], nd.Values[i])
					}
				}
			}
			return true
		})
	}
	return out
}

// makeVerdict classifies one assignment RHS as a make(chan) site.
func makeVerdict(pass *analysis.Pass, rhs ast.Expr) chanBuf {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return bufUnknown
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return bufUnknown
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return bufUnknown
	}
	if len(call.Args) == 0 {
		return bufUnknown
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return bufUnknown
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return bufUnknown
	}
	if len(call.Args) == 1 {
		return bufUnbuffered
	}
	if tv, ok := pass.TypesInfo.Types[call.Args[1]]; ok && tv.Value != nil {
		if v, ok := constant.Int64Val(tv.Value); ok && v == 0 {
			return bufUnbuffered
		}
	}
	return bufBuffered
}

// isUnbuffered reports whether the channel expression resolves to a
// variable proven to hold only unbuffered channels.
func isUnbuffered(pass *analysis.Pass, ch ast.Expr, chans map[types.Object]chanBuf) bool {
	switch e := ast.Unparen(ch).(type) {
	case *ast.Ident:
		return chans[pass.TypesInfo.Uses[e]] == bufUnbuffered
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok {
			return chans[sel.Obj()] == bufUnbuffered
		}
		return chans[pass.TypesInfo.Uses[e.Sel]] == bufUnbuffered
	}
	return false
}
