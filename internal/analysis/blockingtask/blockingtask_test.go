package blockingtask_test

import (
	"testing"

	"threading/internal/analysis/analysistest"
	"threading/internal/analysis/blockingtask"
)

func TestBlockingTask(t *testing.T) {
	analysistest.Run(t, blockingtask.Analyzer,
		"testdata/src/a",
		"testdata/src/clean",
	)
}
