package analysis_test

import (
	"go/types"
	"os"
	"path/filepath"
	"testing"

	"threading/internal/analysis"
	"threading/internal/analysis/load"
)

type testFact struct {
	N int
}

func (*testFact) AFact() {}

type otherFact struct {
	S string
}

func (*otherFact) AFact() {}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// TestFactRoundTrip pins the basic store contract: export then import
// by fact type, with isolation between fact types on the same object.
func TestFactRoundTrip(t *testing.T) {
	l := load.New(moduleRoot(t))
	pkgs, err := l.Load("threading/internal/syncprim")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	obj := pkgs[0].Types.Scope().Lookup("NewLatch")
	if obj == nil {
		t.Fatal("syncprim.NewLatch not found")
	}

	s := analysis.NewFactStore()
	s.Export(obj, &testFact{N: 42})
	s.Export(obj, &otherFact{S: "x"})

	var got testFact
	if !s.Import(obj, &got) || got.N != 42 {
		t.Fatalf("Import = %v, want N=42", got)
	}
	var other otherFact
	if !s.Import(obj, &other) || other.S != "x" {
		t.Fatalf("Import other fact = %v, want S=x", other)
	}
	var missing testFact
	none := analysis.NewFactStore()
	if none.Import(obj, &missing) {
		t.Fatal("Import from empty store reported a fact")
	}
}

// TestFactCrossPackageIdentity pins the property the interprocedural
// engine depends on: a function object obtained from a *source*
// type-check of its package and the distinct object a *dependent*
// package sees through gc export data resolve to the same fact. This
// is why the store keys by ObjectKey rather than object pointer.
func TestFactCrossPackageIdentity(t *testing.T) {
	l := load.New(moduleRoot(t))
	// forkjoin imports syncprim, so loading both gives us syncprim
	// twice: once from source, once through forkjoin's export-data
	// imports.
	pkgs, err := l.Load("threading/internal/syncprim", "threading/internal/forkjoin")
	if err != nil {
		t.Fatal(err)
	}
	var srcObj, expObj types.Object
	for _, p := range pkgs {
		switch p.ImportPath {
		case "threading/internal/syncprim":
			srcObj = p.Types.Scope().Lookup("NewLatch")
		case "threading/internal/forkjoin":
			for _, imp := range p.Types.Imports() {
				if imp.Path() == "threading/internal/syncprim" {
					expObj = imp.Scope().Lookup("NewLatch")
				}
			}
		}
	}
	if srcObj == nil || expObj == nil {
		t.Fatalf("objects not found: src=%v exp=%v", srcObj, expObj)
	}
	if srcObj == expObj {
		t.Fatal("test is vacuous: source and export-data objects are identical")
	}
	if analysis.ObjectKey(srcObj) != analysis.ObjectKey(expObj) {
		t.Fatalf("ObjectKey mismatch: %q vs %q",
			analysis.ObjectKey(srcObj), analysis.ObjectKey(expObj))
	}

	s := analysis.NewFactStore()
	s.Export(srcObj, &testFact{N: 7})
	var got testFact
	if !s.Import(expObj, &got) || got.N != 7 {
		t.Fatalf("fact exported on source object not visible on export-data object: %v", got)
	}
}

// TestObjectKeyMethods pins the method key shape (receiver-qualified).
func TestObjectKeyMethods(t *testing.T) {
	l := load.New(moduleRoot(t))
	pkgs, err := l.Load("threading/internal/syncprim")
	if err != nil {
		t.Fatal(err)
	}
	scope := pkgs[0].Types.Scope()
	latch := scope.Lookup("Latch")
	if latch == nil {
		t.Fatal("Latch not found")
	}
	named := latch.Type().(*types.Named)
	var wait types.Object
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "Wait" {
			wait = named.Method(i)
		}
	}
	if wait == nil {
		t.Fatal("Latch.Wait not found")
	}
	want := "threading/internal/syncprim.Latch.Wait"
	if got := analysis.ObjectKey(wait); got != want {
		t.Fatalf("ObjectKey(Latch.Wait) = %q, want %q", got, want)
	}
}
