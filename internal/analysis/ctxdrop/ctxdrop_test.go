package ctxdrop_test

import (
	"testing"

	"threading/internal/analysis/analysistest"
	"threading/internal/analysis/ctxdrop"
)

func TestCtxDrop(t *testing.T) {
	analysistest.Run(t, ctxdrop.Analyzer, "testdata/src/a")
}
