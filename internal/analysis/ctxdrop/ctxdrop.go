// Package ctxdrop reports calls that sever an in-scope
// context.Context from a cancellation-aware API.
//
// Contract encoded: every blocking entry point in this module has a
// context-aware sibling named by appending "Ctx" (ParallelFor →
// ParallelForCtx, Run → RunCtx, Get → GetCtx, Join → JoinCtx, ...),
// and a function that was handed a context must pass it on — calling
// the plain variant silently severs cancellation, so a deadline or a
// Ctrl-C stops propagating exactly at that frame. The sibling pairing
// is discovered from the type information rather than a hard-coded
// table: a call to N is flagged when the callee's package or receiver
// type also declares N+"Ctx" whose first parameter is a
// context.Context.
//
// Wrappers like func Run(...) { return RunCtx(context.Background(),
// ...) } are not flagged: they have no context parameter in scope.
package ctxdrop

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"threading/internal/analysis"
)

// Analyzer is the ctxdrop pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxdrop",
	Doc: "report calls to the plain variant of an API with a Ctx sibling " +
		"from a function that has a context.Context in scope",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.WithStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !ctxInScope(pass, stack) {
				return true
			}
			check(pass, call, stack)
			return true
		})
	}
	return nil
}

// ctxInScope reports whether the innermost enclosing function (or any
// enclosing function literal chain) binds a usable — named —
// context.Context parameter.
func ctxInScope(pass *analysis.Pass, stack []ast.Node) bool {
	has := false
	for _, n := range stack {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			// A declared function opens a fresh scope: closures above
			// it in the file (there are none — FuncDecl is top-level)
			// cannot leak a context in.
			has = hasNamedCtxParam(pass, fn.Type)
		case *ast.FuncLit:
			// A literal inherits the lexical scope, so an outer
			// context stays visible.
			has = has || hasNamedCtxParam(pass, fn.Type)
		}
	}
	return has
}

func hasNamedCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !analysis.IsContext(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return true
			}
		}
	}
	return false
}

func check(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	callee := analysis.Callee(pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	name := callee.Name()
	if strings.HasSuffix(name, "Ctx") {
		return
	}
	sib := sibling(callee, name+"Ctx")
	if sib == nil {
		return
	}
	// The sibling must actually accept a context first, and must be
	// callable from here.
	sig, ok := sib.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 || !analysis.IsContext(sig.Params().At(0).Type()) {
		return
	}
	if !sib.Exported() && sib.Pkg() != pass.Pkg {
		return
	}
	d := analysis.Diagnostic{
		Pos:      call.Pos(),
		Analyzer: pass.Analyzer.Name,
		Message: fmt.Sprintf(
			"a context.Context is in scope but %s is called; use %s so cancellation propagates",
			analysis.FuncName(callee), sib.Name()),
	}
	if fix := suggestFix(pass, call, sib.Name(), stack); fix != nil {
		d.SuggestedFixes = []analysis.SuggestedFix{*fix}
	}
	pass.Report(d)
}

// suggestFix builds the mechanical rewrite `f(args)` →
// `fCtx(ctx, args)`. Only statement calls are rewritten: the Ctx
// sibling usually adds an error result, which a statement discards
// legally while an expression context would stop compiling. The
// rewrite is idempotent for the driver's -fix loop because the
// rewritten call ends in "Ctx" and is never flagged again.
func suggestFix(pass *analysis.Pass, call *ast.CallExpr, sibName string, stack []ast.Node) *analysis.SuggestedFix {
	if len(stack) == 0 {
		return nil
	}
	if _, ok := stack[len(stack)-1].(*ast.ExprStmt); !ok {
		return nil
	}
	ctxName := ctxParamName(pass, stack)
	if ctxName == "" {
		return nil
	}
	var nameIdent *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		nameIdent = fun.Sel
	case *ast.Ident:
		nameIdent = fun
	default:
		return nil
	}
	return &analysis.SuggestedFix{
		Message: fmt.Sprintf("call %s with %s", sibName, ctxName),
		TextEdits: []analysis.TextEdit{
			{Pos: nameIdent.Pos(), End: nameIdent.End(), NewText: sibName},
			{Pos: call.Lparen + 1, End: call.Lparen + 1, NewText: ctxName + ", "},
		},
	}
}

// ctxParamName returns the name of the innermost named
// context.Context parameter visible from the bottom of stack.
func ctxParamName(pass *analysis.Pass, stack []ast.Node) string {
	name := ""
	for _, n := range stack {
		var ft *ast.FuncType
		switch fn := n.(type) {
		case *ast.FuncDecl:
			ft = fn.Type
			name = "" // fresh scope
		case *ast.FuncLit:
			ft = fn.Type
		default:
			continue
		}
		if ft.Params == nil {
			continue
		}
		for _, field := range ft.Params.List {
			tv, ok := pass.TypesInfo.Types[field.Type]
			if !ok || !analysis.IsContext(tv.Type) {
				continue
			}
			for _, id := range field.Names {
				if id.Name != "_" {
					name = id.Name
				}
			}
		}
	}
	return name
}

// sibling finds the method or package-level function named want
// alongside callee.
func sibling(callee *types.Func, want string) *types.Func {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, callee.Pkg(), want)
		f, _ := obj.(*types.Func)
		return f
	}
	f, _ := callee.Pkg().Scope().Lookup(want).(*types.Func)
	return f
}
