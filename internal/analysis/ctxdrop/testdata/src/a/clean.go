// Negative ctxdrop cases: nothing in this file may be reported.
package a

import (
	"context"

	"threading/internal/models"
)

// The Ctx variant is used: no drop.
func propagates(ctx context.Context, m models.Model, data []float64) error {
	return m.ParallelForCtx(ctx, len(data), func(lo, hi int) {})
}

// No context in scope: the legacy wrapper pattern is exactly this and
// must stay legal.
func wrapper(n int) int {
	return doWork(n)
}

// An unnamed (or blank) context parameter cannot be forwarded, so the
// plain call is not a drop.
func blankCtx(_ context.Context, n int) int {
	return doWork(n)
}

// A callee without a Ctx sibling is fine even with a context around.
func noSibling(ctx context.Context, m models.Model) {
	m.Close()
	_ = ctx
}

// A fresh function declaration does not inherit an outer context, and
// calls after the context-taking function ends are unaffected.
func after(n int) int {
	return doWork(n)
}
