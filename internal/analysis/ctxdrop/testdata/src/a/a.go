// Positive ctxdrop cases: every annotated line must be reported.
package a

import (
	"context"

	"threading/internal/models"
	"threading/internal/worksteal"
)

// A local sibling pair: doWork has a Ctx variant, so calling the
// plain form with a context in scope is a drop.
func doWork(n int) int { return n }

func doWorkCtx(ctx context.Context, n int) (int, error) { return n, ctx.Err() }

func localPair(ctx context.Context) {
	doWork(1) // want `context.Context is in scope but a.doWork is called; use doWorkCtx`
	_ = ctx
}

// A local method pair.
type runner struct{}

func (runner) Launch(n int) {}

func (runner) LaunchCtx(ctx context.Context, n int) error { return ctx.Err() }

func methodPair(ctx context.Context, r runner) {
	r.Launch(1) // want `context.Context is in scope but runner.Launch is called; use LaunchCtx`
	_ = ctx
}

// The real Model surface: ParallelFor/ParallelReduce/TaskRun all have
// Ctx siblings.
func modelLoop(ctx context.Context, m models.Model, data []float64) {
	m.ParallelFor(len(data), func(lo, hi int) {}) // want `Model.ParallelFor is called; use ParallelForCtx`
}

func poolRun(ctx context.Context, p *worksteal.Pool) {
	p.Run(func(c *worksteal.Ctx) {}) // want `Pool.Run is called; use RunCtx`
}

// The context stays visible inside function literals.
func insideClosure(ctx context.Context, m models.Model) func() {
	return func() {
		m.TaskRun(func(s models.TaskScope) {}) // want `Model.TaskRun is called; use TaskRunCtx`
	}
}
