package analysis

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// Fact is a datum attached to a types.Object by one analyzer pass and
// visible to later passes — the same contract as x/tools analysis
// facts, scoped down to the in-process driver this module ships. A
// fact type is a pointer to a struct defined by the exporting
// analyzer; because the FactStore keys entries by the fact's dynamic
// type, two analyzers can attach facts to the same object without
// colliding.
type Fact interface {
	// AFact is a marker method; it is never called.
	AFact()
}

// factKey identifies one fact: the object it is attached to (by
// stable path, see ObjectKey) and the fact's concrete type.
type factKey struct {
	obj string
	typ reflect.Type
}

// FactStore carries facts across packages within one analysis run.
// The driver creates one store per run and threads it through every
// Pass, analyzing packages in dependency order so that facts exported
// while analyzing a package are visible when its dependents are
// analyzed.
//
// Identity subtlety: a function analyzed from source and the same
// function seen by a dependent package through gc export data are
// *different* types.Object instances. The store therefore keys facts
// by ObjectKey — a stable textual path — rather than by object
// pointer, which is exactly the role objectpath plays for x/tools.
//
// FactStore is safe for concurrent use: the race-mode driver tests
// run all analyzers in parallel over shared loader results.
type FactStore struct {
	mu sync.RWMutex
	m  map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]Fact)}
}

// Export attaches fact to obj, replacing any existing fact of the
// same type. fact must be a non-nil pointer.
func (s *FactStore) Export(obj types.Object, fact Fact) {
	if s == nil || obj == nil || fact == nil {
		return
	}
	key := factKey{obj: ObjectKey(obj), typ: reflect.TypeOf(fact)}
	s.mu.Lock()
	s.m[key] = fact
	s.mu.Unlock()
}

// Import copies the fact of ptr's type attached to obj into *ptr and
// reports whether such a fact existed. ptr must be a non-nil pointer
// of the same concrete type the fact was exported with.
func (s *FactStore) Import(obj types.Object, ptr Fact) bool {
	if s == nil || obj == nil || ptr == nil {
		return false
	}
	key := factKey{obj: ObjectKey(obj), typ: reflect.TypeOf(ptr)}
	s.mu.RLock()
	stored, ok := s.m[key]
	s.mu.RUnlock()
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// Len returns the number of stored facts (for tests and -debug
// output).
func (s *FactStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Keys returns the sorted object keys holding at least one fact (for
// tests).
func (s *FactStore) Keys() []string {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	seen := make(map[string]bool, len(s.m))
	for k := range s.m {
		seen[k.obj] = true
	}
	s.mu.RUnlock()
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ObjectKey renders a stable cross-package identity for obj. For
// package-level functions and methods — the only objects the
// interprocedural engine attaches facts to — the key is unique and
// identical whether the object came from a source type-check or from
// gc export data: Go has no overloading, so package path + receiver
// type + name pins the function. Other objects (locals, fields) get a
// position-qualified key that is stable only within one type-check,
// which is all their intra-package uses need.
func ObjectKey(obj types.Object) string {
	if obj == nil {
		return ""
	}
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	if f, ok := obj.(*types.Func); ok {
		if recv := ReceiverNamed(f); recv != nil {
			return pkg + "." + recv.Origin().Obj().Name() + "." + f.Name()
		}
		return pkg + "." + f.Name()
	}
	return fmt.Sprintf("%s.%s@%d", pkg, obj.Name(), obj.Pos())
}

// ExportObjectFact attaches fact to obj in the pass's fact store.
// It is a no-op when the driver supplied no store.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.Facts.Export(obj, fact)
}

// ImportObjectFact copies the fact of ptr's type attached to obj into
// *ptr, reporting whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	return p.Facts.Import(obj, ptr)
}
