// Package analysistest runs a threadvet analyzer over fixture
// packages and checks its diagnostics against // want annotations, in
// the style of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory of .go files (conventionally
// testdata/src/<name> under the analyzer's package). A line expecting
// diagnostics carries a trailing comment of one or more quoted Go
// strings, each a regular expression:
//
//	futures.Async(...) // want `is discarded`
//	x := f()           // want "first" "second"
//
// Every diagnostic must match an annotation on its line and every
// annotation must be matched, so fixture files without annotations
// double as negative (no-diagnostic) cases. Fixtures may import real
// module packages ("threading/internal/futures", ...): the loader
// resolves them from export data, so the analyzers see the same types
// they see during a real threadvet run.
package analysistest

import (
	"go/scanner"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"threading/internal/analysis"
	"threading/internal/analysis/load"
)

// Run applies a to each fixture directory and reports mismatches
// through t. Paths are relative to the calling test's package
// directory (go test's working directory).
func Run(t *testing.T, a *analysis.Analyzer, dirs ...string) {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	l := load.New(root)
	for _, dir := range dirs {
		runDir(t, l, a, dir)
	}
}

func runDir(t *testing.T, l *load.Loader, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, err := l.CheckDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}

	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      l.Fset(),
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Facts:     analysis.NewFactStore(),
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %s failed: %v", dir, a.Name, err)
	}

	for _, d := range diags {
		pos := l.Fset().Position(d.Pos)
		key := wantKey{file: pos.Filename, line: pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", dir, pos, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic at %s:%d matching %q",
					dir, key.file, key.line, w.re.String())
			}
		}
	}
}

type wantKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants parses the fixture's // want annotations.
func collectWants(pkg *load.Package) (map[wantKey][]*want, error) {
	out := make(map[wantKey][]*want)
	for _, name := range fixtureFiles(pkg.Dir) {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		// Scan with a private FileSet: only line numbers are needed,
		// and the comments were already attached to pkg.Files in
		// whatever grouping the parser chose.
		fset := token.NewFileSet()
		file := fset.AddFile(name, -1, len(src))
		var s scanner.Scanner
		s.Init(file, src, nil, scanner.ScanComments)
		for {
			pos, tok, lit := s.Scan()
			if tok == token.EOF {
				break
			}
			if tok != token.COMMENT {
				continue
			}
			text, ok := strings.CutPrefix(lit, "// want ")
			if !ok {
				continue
			}
			position := fset.Position(pos)
			key := wantKey{file: name, line: position.Line}
			for _, pattern := range splitQuoted(text) {
				unq, err := strconv.Unquote(pattern)
				if err != nil {
					return nil, err
				}
				re, err := regexp.Compile(unq)
				if err != nil {
					return nil, err
				}
				out[key] = append(out[key], &want{re: re})
			}
		}
	}
	return out, nil
}

// splitQuoted splits `"a" "b"` (double-quoted or backquoted Go string
// literals separated by spaces) into its literals, quotes included.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		var end int
		switch s[0] {
		case '`':
			end = strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			end += 2
		case '"':
			end = 1
			for end < len(s) && s[end] != '"' {
				if s[end] == '\\' {
					end++
				}
				end++
			}
			if end >= len(s) {
				return out
			}
			end++
		default:
			return out
		}
		out = append(out, s[:end])
		s = s[end:]
	}
}

func fixtureFiles(dir string) []string {
	entries, _ := os.ReadDir(dir)
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod, where `go list` must run so fixture imports of module
// packages resolve.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
