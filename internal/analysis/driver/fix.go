package driver

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ApplyFixes applies the suggested fixes carried by findings to the
// files on disk and returns the findings it fixed and those it could
// not (no fix attached, or the fix overlaps an already-accepted
// edit). Files are rewritten atomically: the new content goes to a
// temp file in the same directory, then renames over the original,
// so a crash mid-sweep never leaves a half-edited file.
//
// Applying the same fixes twice is a no-op by construction: a fix
// either deletes the offending statement or rewrites the call into
// its compliant form, and either way the diagnostic that produced it
// no longer fires on the fixed source, so the second run resolves no
// edits. TestFixIdempotent pins this.
func ApplyFixes(findings []Finding) (applied, unfixed []Finding, err error) {
	// Accept fixes in finding order, refusing any fix that overlaps
	// an edit already accepted for the same file.
	accepted := make(map[string][]Edit)
	for _, f := range findings {
		if f.Fix == nil || len(f.Fix.Edits) == 0 {
			unfixed = append(unfixed, f)
			continue
		}
		ok := true
		for _, e := range f.Fix.Edits {
			if e.Start < 0 || e.End < e.Start {
				ok = false
				break
			}
			for _, prev := range accepted[e.File] {
				if e.Start < prev.End && prev.Start < e.End {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			unfixed = append(unfixed, f)
			continue
		}
		for _, e := range f.Fix.Edits {
			accepted[e.File] = append(accepted[e.File], e)
		}
		applied = append(applied, f)
	}

	for file, edits := range accepted {
		if err := applyFile(file, edits); err != nil {
			return nil, nil, err
		}
	}
	return applied, unfixed, nil
}

// applyFile splices edits into one file and renames the result over
// the original.
func applyFile(file string, edits []Edit) error {
	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	sort.Slice(edits, func(i, j int) bool { return edits[i].Start < edits[j].Start })
	var out []byte
	last := 0
	for _, e := range edits {
		if e.Start < last || e.End > len(src) {
			return fmt.Errorf("fix edit out of range in %s: [%d, %d) of %d bytes", file, e.Start, e.End, len(src))
		}
		out = append(out, src[last:e.Start]...)
		out = append(out, e.NewText...)
		last = e.End
	}
	out = append(out, src[last:]...)

	info, err := os.Stat(file)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(file), filepath.Base(file)+".threadvet-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, info.Mode()); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, file); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
