package driver_test

import (
	"sync"
	"testing"

	"threading/internal/analysis"
	"threading/internal/analysis/driver"
	"threading/internal/analysis/load"
)

// TestConcurrentAnalyze runs the whole suite over every module
// package concurrently against one shared loader result and one
// shared fact store. Under `go test -race` this exercises the
// FactStore's locking and the analyzers' freedom from hidden shared
// state; without -race it still pins that concurrent analysis
// neither errors nor interleaves results incorrectly (every package
// must yield the same findings it yields sequentially).
func TestConcurrentAnalyze(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	l := load.New(moduleRoot(t))
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}

	// Sequential baseline in dependency order, fresh store.
	sequential := make(map[string]int)
	seqFacts := analysis.NewFactStore()
	for _, pkg := range pkgs {
		fs, err := driver.AnalyzePackageFacts(l.Fset(), pkg, driver.All, seqFacts)
		if err != nil {
			t.Fatal(err)
		}
		sequential[pkg.ImportPath] = len(fs)
	}

	// Concurrent pass: one goroutine per package, shared store.
	// Packages running out of dependency order may miss imported
	// facts, which can only reduce interprocedural findings — so
	// assert counts never exceed the sequential baseline and
	// fact-free analyzers stay deterministic.
	conFacts := analysis.NewFactStore()
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	concurrent := make(map[string]int)
	errs := make(chan error, len(pkgs))
	for _, pkg := range pkgs {
		wg.Add(1)
		go func(pkg *load.Package) {
			defer wg.Done()
			fs, err := driver.AnalyzePackageFacts(l.Fset(), pkg, driver.All, conFacts)
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			concurrent[pkg.ImportPath] = len(fs)
			mu.Unlock()
		}(pkg)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for path, want := range sequential {
		got, ok := concurrent[path]
		if !ok {
			t.Errorf("%s: no concurrent result", path)
			continue
		}
		if got > want {
			t.Errorf("%s: concurrent analysis found %d findings, sequential %d", path, got, want)
		}
	}
}
