package driver

import (
	"encoding/json"
	"io"
	"strings"

	"threading/internal/analysis"
)

// Minimal SARIF 2.1.0 document shape — just the subset GitHub code
// scanning consumes: tool name, rule metadata, and one result per
// finding with a physical location. Field names follow the spec
// (camelCase); omitempty keeps absent optional blocks out of the
// output.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF writes findings as a SARIF 2.1.0 log with one run.
// analyzers populates the rule table (the "directive" pseudo-rule is
// appended for malformed-suppression findings); an empty findings
// slice still produces a valid log so CI can upload unconditionally.
func WriteSARIF(w io.Writer, fs []Finding, analyzers []*analysis.Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: doc}})
	}
	rules = append(rules, sarifRule{
		ID:               "directive",
		ShortDescription: sarifMessage{Text: "malformed threadvet:ignore directive"},
	})

	results := make([]sarifResult, 0, len(fs))
	for _, f := range fs {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: sarifURI(f.File)},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "threadvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifURI renders a path with forward slashes as SARIF requires.
func sarifURI(path string) string {
	return strings.ReplaceAll(path, "\\", "/")
}
