package driver

import (
	"strings"
	"testing"
)

// FuzzParseDirective pins the directive grammar: whatever the input,
// a well-formed parse yields a whitespace-free analyzer name equal
// to the first field and a non-empty reason covering the rest; a
// malformed parse yields zero values. The parser must never panic on
// arbitrary comment text.
func FuzzParseDirective(f *testing.F) {
	f.Add(" grainconst deliberate blowup demo")
	f.Add("")
	f.Add(" onlyanalyzer")
	f.Add("\tctxdrop   reason with   interior   spaces ")
	f.Add(" a b")
	f.Add(" weird unicode spacing")
	f.Fuzz(func(t *testing.T, rest string) {
		name, reason, ok := parseDirective(rest)
		if !ok {
			if name != "" || reason != "" {
				t.Fatalf("malformed parse returned values: %q %q", name, reason)
			}
			return
		}
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			t.Fatalf("ok=true for %q, which has %d fields", rest, len(fields))
		}
		if name != fields[0] {
			t.Fatalf("analyzer = %q, want first field %q", name, fields[0])
		}
		if strings.ContainsAny(name, " \t\n\r") {
			t.Fatalf("analyzer %q contains whitespace", name)
		}
		if reason == "" {
			t.Fatal("ok=true with empty reason")
		}
		if reason != strings.Join(fields[1:], " ") {
			t.Fatalf("reason = %q, want %q", reason, strings.Join(fields[1:], " "))
		}
	})
}
