// Package driver applies the threadvet analyzer suite to packages and
// turns raw diagnostics into findings: positioned, sorted, and
// filtered through //threadvet:ignore directives. cmd/threadvet is a
// thin CLI over this package; tests drive it directly.
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"threading/internal/analysis"
	"threading/internal/analysis/atomicmix"
	"threading/internal/analysis/ctxdrop"
	"threading/internal/analysis/grainconst"
	"threading/internal/analysis/joinleak"
	"threading/internal/analysis/legacyopts"
	"threading/internal/analysis/load"
	"threading/internal/analysis/lockspawn"
)

// All is the full threadvet suite.
var All = []*analysis.Analyzer{
	atomicmix.Analyzer,
	ctxdrop.Analyzer,
	grainconst.Analyzer,
	joinleak.Analyzer,
	legacyopts.Analyzer,
	lockspawn.Analyzer,
}

// directivePrefix introduces a suppression comment:
//
//	//threadvet:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line immediately above it. The
// reason is mandatory — an unexplained suppression is itself a
// finding — and the directive silences exactly the named analyzer.
const directivePrefix = "threadvet:ignore"

// Finding is one unsuppressed diagnostic, positioned for output.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the finding in the go vet style.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Run loads patterns (go list syntax) relative to dir, applies
// analyzers to every matched package, and returns the unsuppressed
// findings sorted by position. File paths are reported relative to
// dir when possible.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs
	}
	l := load.New(dir)
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, pkg := range pkgs {
		fs, err := AnalyzePackage(l.Fset(), pkg, analyzers)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	for i := range out {
		if rel, err := filepath.Rel(dir, out[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			out[i].File = rel
		}
	}
	sortFindings(out)
	return out, nil
}

// AnalyzePackage applies analyzers to one loaded package and returns
// the findings that survive the package's ignore directives, sorted
// by position. Malformed directives are reported as findings of the
// pseudo-analyzer "directive".
func AnalyzePackage(fset *token.FileSet, pkg *load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
		}
	}

	ignores, malformed := collectDirectives(fset, pkg.Files)

	var out []Finding
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if ignores[suppressionKey{file: pos.Filename, line: pos.Line, analyzer: d.Analyzer}] {
			continue
		}
		out = append(out, Finding{
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	out = append(out, malformed...)
	sortFindings(out)
	return out, nil
}

type suppressionKey struct {
	file     string
	line     int
	analyzer string
}

// collectDirectives scans the package's comments for
// //threadvet:ignore directives. A well-formed directive suppresses
// its named analyzer on the directive's own line and on the following
// line (so it works both as a trailing comment and as a comment
// line above the flagged statement).
func collectDirectives(fset *token.FileSet, files []*ast.File) (map[suppressionKey]bool, []Finding) {
	ignores := make(map[suppressionKey]bool)
	var malformed []Finding
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					malformed = append(malformed, Finding{
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Analyzer: "directive",
						Message: "malformed " + directivePrefix +
							" directive: want \"//" + directivePrefix + " <analyzer> <reason>\"",
					})
					continue
				}
				name := fields[0]
				ignores[suppressionKey{file: pos.Filename, line: pos.Line, analyzer: name}] = true
				ignores[suppressionKey{file: pos.Filename, line: pos.Line + 1, analyzer: name}] = true
			}
		}
	}
	return ignores, malformed
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// WriteText writes findings one per line in the go vet style.
func WriteText(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintln(w, f); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes findings as newline-delimited JSON objects, one
// diagnostic per line, for CI annotations and tooling:
//
//	{"file":"internal/x/y.go","line":10,"col":2,"analyzer":"ctxdrop","message":"..."}
func WriteJSON(w io.Writer, fs []Finding) error {
	enc := json.NewEncoder(w)
	for _, f := range fs {
		if err := enc.Encode(f); err != nil {
			return err
		}
	}
	return nil
}
