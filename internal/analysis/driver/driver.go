// Package driver applies the threadvet analyzer suite to packages and
// turns raw diagnostics into findings: positioned, sorted, and
// filtered through //threadvet:ignore directives. cmd/threadvet is a
// thin CLI over this package; tests drive it directly.
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"threading/internal/analysis"
	"threading/internal/analysis/atomicmix"
	"threading/internal/analysis/blockingtask"
	"threading/internal/analysis/ctxdrop"
	"threading/internal/analysis/grainconst"
	"threading/internal/analysis/handlereuse"
	"threading/internal/analysis/joinleak"
	"threading/internal/analysis/legacyopts"
	"threading/internal/analysis/load"
	"threading/internal/analysis/lockorder"
	"threading/internal/analysis/lockspawn"
	"threading/internal/analysis/racecapture"
)

// All is the full threadvet suite.
var All = []*analysis.Analyzer{
	atomicmix.Analyzer,
	blockingtask.Analyzer,
	ctxdrop.Analyzer,
	grainconst.Analyzer,
	handlereuse.Analyzer,
	joinleak.Analyzer,
	legacyopts.Analyzer,
	lockorder.Analyzer,
	lockspawn.Analyzer,
	racecapture.Analyzer,
}

// directivePrefix introduces a suppression comment:
//
//	//threadvet:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line immediately above it. The
// reason is mandatory — an unexplained suppression is itself a
// finding — and the directive silences exactly the named analyzer.
const directivePrefix = "threadvet:ignore"

// Finding is one unsuppressed diagnostic, positioned for output.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Fix holds the resolved edits of the diagnostic's first
	// suggested fix, if any. Deliberately outside the JSON contract
	// (TestJSONShape pins exactly five fields); ApplyFixes consumes
	// it.
	Fix *Fix `json:"-"`
}

// Fix is a suggested fix with its edits resolved to file offsets.
type Fix struct {
	Message string
	Edits   []Edit
}

// Edit replaces the byte range [Start, End) of File (an absolute
// path, unaffected by Run's relative-path rewriting) with NewText.
type Edit struct {
	File       string
	Start, End int
	NewText    string
}

// String renders the finding in the go vet style.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Run loads patterns (go list syntax) relative to dir, applies
// analyzers to every matched package, and returns the unsuppressed
// findings sorted by position. File paths are reported relative to
// dir when possible.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs
	}
	l := load.New(dir)
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	// One fact store across all packages: Load returns packages in
	// dependency order, so facts exported while analyzing a package
	// are visible when its importers are analyzed (bottom-up
	// cross-package propagation).
	facts := analysis.NewFactStore()
	var out []Finding
	for _, pkg := range pkgs {
		fs, err := AnalyzePackageFacts(l.Fset(), pkg, analyzers, facts)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	for i := range out {
		if rel, err := filepath.Rel(dir, out[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			out[i].File = rel
		}
	}
	sortFindings(out)
	return out, nil
}

// AnalyzePackage applies analyzers to one loaded package with a
// fresh fact store. Single-package convenience over
// AnalyzePackageFacts; fact-driven analyzers see only this package's
// own exports.
func AnalyzePackage(fset *token.FileSet, pkg *load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	return AnalyzePackageFacts(fset, pkg, analyzers, analysis.NewFactStore())
}

// AnalyzePackageFacts applies analyzers to one loaded package,
// reading and writing cross-package facts through facts, and returns
// the findings that survive the package's ignore directives, sorted
// by position. Malformed directives are reported as findings of the
// pseudo-analyzer "directive".
func AnalyzePackageFacts(fset *token.FileSet, pkg *load.Package, analyzers []*analysis.Analyzer, facts *analysis.FactStore) ([]Finding, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
		}
	}

	ignores, malformed := collectDirectives(fset, pkg.Files)

	var out []Finding
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if ignores[suppressionKey{file: pos.Filename, line: pos.Line, analyzer: d.Analyzer}] {
			continue
		}
		f := Finding{
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
		if len(d.SuggestedFixes) > 0 {
			f.Fix = resolveFix(fset, d.SuggestedFixes[0])
		}
		out = append(out, f)
	}
	out = append(out, malformed...)
	sortFindings(out)
	return out, nil
}

// resolveFix turns a position-based SuggestedFix into offset-based
// edits. Returns nil if any edit's positions are invalid.
func resolveFix(fset *token.FileSet, fix analysis.SuggestedFix) *Fix {
	out := &Fix{Message: fix.Message}
	for _, e := range fix.TextEdits {
		if !e.Pos.IsValid() {
			return nil
		}
		end := e.End
		if !end.IsValid() {
			end = e.Pos
		}
		start := fset.Position(e.Pos)
		stop := fset.Position(end)
		if start.Filename != stop.Filename || stop.Offset < start.Offset {
			return nil
		}
		out.Edits = append(out.Edits, Edit{
			File:    start.Filename,
			Start:   start.Offset,
			End:     stop.Offset,
			NewText: e.NewText,
		})
	}
	return out
}

type suppressionKey struct {
	file     string
	line     int
	analyzer string
}

// parseDirective parses the text following the //threadvet:ignore
// prefix. ok reports a well-formed directive: an analyzer name
// followed by a non-empty reason.
func parseDirective(rest string) (analyzer, reason string, ok bool) {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return "", "", false
	}
	return fields[0], strings.Join(fields[1:], " "), true
}

// collectDirectives scans the package's comments for
// //threadvet:ignore directives. A well-formed directive suppresses
// its named analyzer on exactly one line: a trailing directive (code
// precedes the comment on its line) suppresses its own line; a
// standalone directive (the comment is the first thing on its line)
// suppresses the line below. Earlier versions registered both lines
// unconditionally, so a trailing directive silently reached the next
// statement; TestDirectiveScope pins the split.
func collectDirectives(fset *token.FileSet, files []*ast.File) (map[suppressionKey]bool, []Finding) {
	ignores := make(map[suppressionKey]bool)
	var malformed []Finding
	srcCache := make(map[string][]byte)
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				name, _, ok := parseDirective(text)
				if !ok {
					malformed = append(malformed, Finding{
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Analyzer: "directive",
						Message: "malformed " + directivePrefix +
							" directive: want \"//" + directivePrefix + " <analyzer> <reason>\"",
					})
					continue
				}
				trailing, known := codePrecedes(srcCache, pos)
				switch {
				case !known:
					// Source unreadable (in-memory fixtures, etc.):
					// keep the historical both-lines behavior rather
					// than dropping suppressions.
					ignores[suppressionKey{file: pos.Filename, line: pos.Line, analyzer: name}] = true
					ignores[suppressionKey{file: pos.Filename, line: pos.Line + 1, analyzer: name}] = true
				case trailing:
					ignores[suppressionKey{file: pos.Filename, line: pos.Line, analyzer: name}] = true
				default:
					ignores[suppressionKey{file: pos.Filename, line: pos.Line + 1, analyzer: name}] = true
				}
			}
		}
	}
	return ignores, malformed
}

// codePrecedes reports whether non-whitespace source text precedes
// pos on its line. known is false when the file cannot be read, in
// which case trailing is meaningless.
func codePrecedes(cache map[string][]byte, pos token.Position) (trailing, known bool) {
	src, ok := cache[pos.Filename]
	if !ok {
		src, _ = os.ReadFile(pos.Filename)
		cache[pos.Filename] = src
	}
	if src == nil || pos.Offset > len(src) {
		return false, false
	}
	i := pos.Offset
	for i > 0 && src[i-1] != '\n' {
		i--
	}
	return strings.TrimSpace(string(src[i:pos.Offset])) != "", true
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// WriteText writes findings one per line in the go vet style.
func WriteText(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintln(w, f); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes findings as newline-delimited JSON objects, one
// diagnostic per line, for CI annotations and tooling:
//
//	{"file":"internal/x/y.go","line":10,"col":2,"analyzer":"ctxdrop","message":"..."}
func WriteJSON(w io.Writer, fs []Finding) error {
	enc := json.NewEncoder(w)
	for _, f := range fs {
		if err := enc.Encode(f); err != nil {
			return err
		}
	}
	return nil
}
