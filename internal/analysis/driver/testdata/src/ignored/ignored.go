// Fixture for driver suppression tests. Each block below violates an
// analyzer contract; the directives decide which findings survive.
package ignored

import (
	"context"

	"threading/internal/worksteal"
)

// Suppressed by a trailing directive on the flagged line.
func trailing(c *worksteal.Ctx, n int) {
	c.ForDAC(0, n, 1, func(cc *worksteal.Ctx, l, h int) {}) //threadvet:ignore grainconst deliberate blowup demo
}

// Suppressed by a directive on the line above.
func lineAbove(c *worksteal.Ctx, n int) {
	//threadvet:ignore grainconst deliberate blowup demo
	c.ForDAC(0, n, 1, func(cc *worksteal.Ctx, l, h int) {})
}

// A directive names exactly one analyzer: this grainconst directive
// does NOT silence the ctxdrop finding on the same line.
func wrongAnalyzer(ctx context.Context, p *worksteal.Pool) {
	p.Run(func(c *worksteal.Ctx) {}) //threadvet:ignore grainconst not the analyzer that fires here
}

// The scope split: a trailing directive suppresses only its own
// line, so the violation on the line below it must still be
// reported. (An earlier driver registered both lines for every
// directive, silently eating findings like this one.)
func trailingScope(c *worksteal.Ctx, n int) {
	_ = n //threadvet:ignore grainconst trailing directives stop at their own line
	c.ForDAC(0, n, 1, func(cc *worksteal.Ctx, l, h int) {})
}

// And the dual: a standalone directive suppresses only the line
// below, not its own line — the finding here is on the ForDAC line,
// which IS the line below, so this stays suppressed. The pair of
// functions pins both directions of the split.
func standaloneScope(c *worksteal.Ctx, n int) {
	//threadvet:ignore grainconst standalone directives reach exactly one line down
	c.ForDAC(0, n, 1, func(cc *worksteal.Ctx, l, h int) {})
}

// Unsuppressed: must be reported.
func unsuppressed(c *worksteal.Ctx, n int) {
	c.ForDAC(0, n, 1, func(cc *worksteal.Ctx, l, h int) {})
}

// A directive without a reason is malformed and is itself reported.
func malformed(c *worksteal.Ctx, n int) {
	//threadvet:ignore grainconst
	c.ForDAC(0, n, 0, func(cc *worksteal.Ctx, l, h int) {})
}
