// Fixture for `threadvet -fix`: both findings below carry suggested
// fixes, and applying them leaves a package the suite no longer
// flags (the idempotence test re-analyzes the fixed copy).
package fixable

import (
	"context"

	"threading/internal/worksteal"
)

// ctxdrop: statement call of the plain variant with ctx in scope is
// rewritten to RunCtx(ctx, ...).
func run(ctx context.Context, p *worksteal.Pool) {
	p.Run(func(c *worksteal.Ctx) {})
}

// handlereuse: the second Close is deleted.
func shutdown(p *worksteal.Pool) {
	p.Close()
	p.Close()
}
