package driver_test

import (
	"os"
	"path/filepath"
	"testing"

	"threading/internal/analysis/driver"
	"threading/internal/analysis/load"
)

// fixDir copies the fixable fixture into a fresh directory (the
// fixture itself must stay pristine for other runs) and returns the
// copy's path.
func fixDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	entries, err := os.ReadDir("testdata/src/fixable")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		src, err := os.ReadFile(filepath.Join("testdata/src/fixable", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), src, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// analyzeDir loads and analyzes one directory with a fresh loader
// (file offsets change between fix rounds, so the FileSet must not
// be reused).
func analyzeDir(t *testing.T, dir string) []driver.Finding {
	t.Helper()
	l := load.New(moduleRoot(t))
	pkg, err := l.CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := driver.AnalyzePackage(l.Fset(), pkg, driver.All)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func readAll(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(src)
	}
	return out
}

// TestFixIdempotent pins the -fix contract: one application resolves
// every fixable finding, and a second application changes nothing.
func TestFixIdempotent(t *testing.T) {
	dir := fixDir(t)

	findings := analyzeDir(t, dir)
	if len(findings) == 0 {
		t.Fatal("fixable fixture produced no findings")
	}
	var fixable int
	for _, f := range findings {
		if f.Fix != nil {
			fixable++
		}
	}
	if fixable < 2 {
		t.Fatalf("want >= 2 fixable findings (ctxdrop + handlereuse), got %d of %d:\n%v",
			fixable, len(findings), findings)
	}

	applied, unfixed, err := driver.ApplyFixes(findings)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != fixable {
		t.Fatalf("applied %d fixes, want %d (unfixed: %v)", len(applied), fixable, unfixed)
	}

	// Round two: the fixed package must be clean of fixable findings
	// and a second ApplyFixes must not touch the files.
	after := readAll(t, dir)
	round2 := analyzeDir(t, dir)
	for _, f := range round2 {
		if f.Fix != nil {
			t.Errorf("finding still fixable after -fix: %v", f)
		}
	}
	if _, _, err := driver.ApplyFixes(round2); err != nil {
		t.Fatal(err)
	}
	if again := readAll(t, dir); len(again) != len(after) {
		t.Fatalf("second apply changed the file set")
	} else {
		for name, content := range after {
			if again[name] != content {
				t.Errorf("second apply modified %s", name)
			}
		}
	}
}

// TestFixResolvesFindings spells out what the fixes do: the ctxdrop
// rewrite introduces RunCtx(ctx, ...) and the handlereuse fix
// deletes the duplicated Close.
func TestFixResolvesFindings(t *testing.T) {
	dir := fixDir(t)
	findings := analyzeDir(t, dir)
	if _, _, err := driver.ApplyFixes(findings); err != nil {
		t.Fatal(err)
	}
	src := readAll(t, dir)["fixable.go"]
	if !contains(src, "p.RunCtx(ctx, func(c *worksteal.Ctx) {})") {
		t.Errorf("ctxdrop fix not applied:\n%s", src)
	}
	if n := countOccurrences(src, "p.Close()"); n != 1 {
		t.Errorf("want exactly 1 p.Close() after fix, got %d:\n%s", n, src)
	}
}

func contains(s, sub string) bool { return countOccurrences(s, sub) > 0 }

func countOccurrences(s, sub string) int {
	n := 0
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			n++
		}
	}
	return n
}
