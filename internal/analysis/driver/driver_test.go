package driver_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"threading/internal/analysis/driver"
	"threading/internal/analysis/load"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

func analyzeFixture(t *testing.T) []driver.Finding {
	t.Helper()
	l := load.New(moduleRoot(t))
	pkg, err := l.CheckDir("testdata/src/ignored")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := driver.AnalyzePackage(l.Fset(), pkg, driver.All)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// TestIgnoreDirective pins the suppression contract: a directive
// silences exactly its named analyzer, on its own line or the line
// below, and a reason is mandatory.
func TestIgnoreDirective(t *testing.T) {
	findings := analyzeFixture(t)

	type key struct {
		analyzer string
		fn       string
	}
	got := make(map[key]bool)
	src, err := os.ReadFile("testdata/src/ignored/ignored.go")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(src), "\n")
	funcOf := func(line int) string {
		for i := line - 1; i >= 0; i-- {
			if strings.HasPrefix(lines[i], "func ") {
				name := strings.TrimPrefix(lines[i], "func ")
				return name[:strings.IndexByte(name, '(')]
			}
		}
		return "?"
	}
	for _, f := range findings {
		got[key{f.Analyzer, funcOf(f.Line)}] = true
	}

	want := map[key]bool{
		// The trailing and line-above grainconst directives suppress
		// their findings; the wrong-analyzer directive does not save
		// ctxdrop; the bare violation and the malformed directive are
		// reported; and a trailing directive does not reach the line
		// below it (the scope fix).
		{"ctxdrop", "wrongAnalyzer"}:    true,
		{"grainconst", "unsuppressed"}:  true,
		{"grainconst", "trailingScope"}: true,
		{"directive", "malformed"}:      true,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("findings = %v, want %v\nall findings:\n%v", got, want, findings)
	}
}

// TestJSONShape pins the -json output contract: one object per line
// with exactly the documented fields.
func TestJSONShape(t *testing.T) {
	findings := analyzeFixture(t)
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings")
	}

	var buf bytes.Buffer
	if err := driver.WriteJSON(&buf, findings); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(findings) {
		t.Fatalf("got %d JSON lines for %d findings", len(lines), len(findings))
	}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		for _, field := range []string{"file", "line", "col", "analyzer", "message"} {
			if _, ok := obj[field]; !ok {
				t.Errorf("line %d missing field %q: %s", i+1, field, line)
			}
		}
		if len(obj) != 5 {
			t.Errorf("line %d has %d fields, want 5: %s", i+1, len(obj), line)
		}
		if obj["analyzer"] != findings[i].Analyzer {
			t.Errorf("line %d analyzer = %v, want %s", i+1, obj["analyzer"], findings[i].Analyzer)
		}
	}
}

// TestFindingsSorted pins the deterministic ordering CI diffs rely
// on.
func TestFindingsSorted(t *testing.T) {
	findings := analyzeFixture(t)
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("findings out of order: %v before %v", a, b)
		}
	}
}
