// Package legacyopts reports composite literals of the legacy
// runtime-configuration structs — forkjoin.Options, worksteal.Options,
// offload.Options (and their root-package aliases TeamOptions,
// PoolOptions, DeviceOptions) — outside the packages that define them.
//
// Contract encoded: the Options structs predate the functional
// options and survive only as deprecated compatibility shims (each
// implements its package's Option interface, so NewTeam(n,
// Options{...}) keeps compiling). New code must configure runtimes
// through the functional options (WithSchedule, WithDequeKind,
// WithUnits, ...): a struct literal pins the full option set at its
// current shape and silently zero-fills every knob the author did not
// spell out, which is exactly the evolution hazard the functional
// form removes. The defining packages themselves may keep using their
// struct internally — the shim has to be implemented somewhere.
package legacyopts

import (
	"go/ast"

	"threading/internal/analysis"
)

// legacyPkgs maps each defining package to the replacement hint shown
// in the diagnostic.
var legacyPkgs = map[string]string{
	"threading/internal/forkjoin":  "WithSchedule, WithCentralBarrier, WithLockFreeTasks, WithTaskPolicy, WithSpinBeforeYield, WithTracer",
	"threading/internal/worksteal": "WithDequeKind, WithPartitioner, WithSpinBeforePark, WithTracer",
	"threading/internal/offload":   "WithUnits, WithLatency",
}

// Analyzer is the legacyopts pass.
var Analyzer = &analysis.Analyzer{
	Name: "legacyopts",
	Doc: "report composite literals of the deprecated runtime Options structs " +
		"outside their defining packages; use the functional options",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			check(pass, lit)
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	named, ok := analysis.Named(tv.Type)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Name() != "Options" || obj.Pkg() == nil {
		return
	}
	hint, legacy := legacyPkgs[obj.Pkg().Path()]
	if !legacy || pass.Pkg.Path() == obj.Pkg().Path() {
		return
	}
	pass.Reportf(lit.Pos(),
		"composite literal of deprecated %s.Options; use the functional options (%s)",
		obj.Pkg().Name(), hint)
}
