package legacyopts_test

import (
	"testing"

	"threading/internal/analysis/analysistest"
	"threading/internal/analysis/legacyopts"
)

func TestLegacyOpts(t *testing.T) {
	analysistest.Run(t, legacyopts.Analyzer, "testdata/src/a")
}
