package a

import (
	"threading/internal/forkjoin"
	"threading/internal/offload"
	"threading/internal/worksteal"
	"threading/internal/workspan"
)

// Functional options are the blessed form.
func functional() {
	t := forkjoin.NewTeam(2, forkjoin.WithCentralBarrier(), forkjoin.WithSpinBeforeYield(8))
	t.Close()
	p := worksteal.NewPool(2, worksteal.WithSpinBeforePark(16))
	p.Close()
	d := offload.NewDevice("dev", offload.WithUnits(2))
	d.Close()
}

// Options types outside the three runtime packages are none of this
// analyzer's business.
func unrelatedOptions() {
	_ = workspan.Profile(workspan.Options{}, func(s workspan.Scope) {
		s.Charge(1)
	})
}
