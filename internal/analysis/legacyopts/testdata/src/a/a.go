// Fixtures for the legacyopts analyzer: composite literals of the
// deprecated runtime Options structs are flagged — including through
// the root package's aliases — while functional options and unrelated
// Options types are not.
package a

import (
	"threading"
	"threading/internal/forkjoin"
	"threading/internal/offload"
	"threading/internal/worksteal"
)

func legacyLiterals() {
	t := forkjoin.NewTeam(2, forkjoin.Options{CentralBarrier: true}) // want `deprecated forkjoin\.Options`
	t.Close()
	p := worksteal.NewPool(2, worksteal.Options{}) // want `deprecated worksteal\.Options`
	p.Close()
	d := offload.NewDevice("dev", offload.Options{Units: 2}) // want `deprecated offload\.Options`
	d.Close()
}

func aliasLiterals() {
	t := threading.NewTeam(2, threading.TeamOptions{}) // want `deprecated forkjoin\.Options`
	t.Close()
	p := threading.NewPool(2, threading.PoolOptions{}) // want `deprecated worksteal\.Options`
	p.Close()
	d := threading.NewDevice("dev", threading.DeviceOptions{Units: 2}) // want `deprecated offload\.Options`
	d.Close()
}

func pointerAndVar() {
	opts := &forkjoin.Options{LockFreeTasks: true} // want `deprecated forkjoin\.Options`
	_ = opts
	var o worksteal.Options // zero-value declaration, no literal: not flagged
	_ = o
}
