package interproc

import (
	"go/ast"
	"go/token"
	"go/types"

	"threading/internal/analysis"
)

// EdgeKind distinguishes how control may reach the target.
type EdgeKind int

const (
	// EdgeCall is an ordinary synchronous call (including an
	// immediately invoked function literal).
	EdgeCall EdgeKind = iota
	// EdgeSpawn passes the target to a runtime entry point as an
	// asynchronous task.
	EdgeSpawn
	// EdgeLoopBody passes the target to a runtime entry point as a
	// parallel-loop body.
	EdgeLoopBody
	// EdgeRef is a function literal whose fate the analysis cannot
	// follow (stored, returned, or passed to a non-entry function).
	// Analyzers treat it conservatively: possibly invoked, context
	// unknown.
	EdgeRef
)

// Edge is one outgoing reference from a Node.
type Edge struct {
	Kind EdgeKind
	// Site is the call expression (nil for EdgeRef).
	Site *ast.CallExpr
	// Pos locates the edge for diagnostics.
	Pos token.Pos
	// Callee is the in-package target, when its body is available.
	Callee *Node
	// Ext is the statically resolved target declared outside the
	// package (summaries come from facts), nil for dynamic targets.
	Ext *types.Func
	// Entry describes the entry point for spawn/loop-body edges.
	Entry Entry
	// EntryFn is the entry point itself (e.g. Pool.SubmitCtx) for
	// spawn/loop-body edges.
	EntryFn *types.Func
}

// Node is one function with a body in the package: a declared
// function/method or a function literal.
type Node struct {
	// Fn is the declared function's object; nil for literals.
	Fn *types.Func
	// Lit is the literal; nil for declared functions.
	Lit *ast.FuncLit
	// Body is never nil.
	Body  *ast.BlockStmt
	Edges []Edge
}

// Pos returns the node's declaration position.
func (n *Node) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return n.Fn.Pos()
}

// Name renders the node for diagnostics.
func (n *Node) Name() string {
	if n.Fn != nil {
		return analysis.FuncName(n.Fn)
	}
	return "func literal"
}

// Graph is the module-local call graph of one package.
type Graph struct {
	Nodes []*Node
	ByFn  map[*types.Func]*Node
	ByLit map[*ast.FuncLit]*Node
	// byBody maps every node's body back to it, for enclosing-node
	// resolution during traversal.
	byBody map[*ast.BlockStmt]*Node
	// bySite indexes spawn/loop/call edges by their call expression.
	bySite map[*ast.CallExpr][]*Edge
}

// EdgesAt returns the edges attached to a call site.
func (g *Graph) EdgesAt(call *ast.CallExpr) []*Edge {
	return g.bySite[call]
}

// Build constructs the call graph of the pass's package.
func Build(pass *analysis.Pass) *Graph {
	g := &Graph{
		ByFn:   make(map[*types.Func]*Node),
		ByLit:  make(map[*ast.FuncLit]*Node),
		byBody: make(map[*ast.BlockStmt]*Node),
		bySite: make(map[*ast.CallExpr][]*Edge),
	}
	// First pass: create nodes for declared functions so forward
	// references resolve.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{Fn: fn, Body: fd.Body}
			g.Nodes = append(g.Nodes, n)
			g.ByFn[fn] = n
			g.byBody[fd.Body] = n
		}
	}
	// Second pass: literal nodes. Created before any edges so a call
	// site can resolve a literal argument it lexically precedes.
	for _, file := range pass.Files {
		ast.Inspect(file, func(nd ast.Node) bool {
			if l, ok := nd.(*ast.FuncLit); ok {
				lit := &Node{Lit: l, Body: l.Body}
				g.Nodes = append(g.Nodes, lit)
				g.ByLit[l] = lit
				g.byBody[l.Body] = lit
			}
			return true
		})
	}
	// Third pass: edges.
	for _, file := range pass.Files {
		analysis.WithStack(file, func(nd ast.Node, stack []ast.Node) bool {
			switch nd := nd.(type) {
			case *ast.FuncLit:
				if owner := g.enclosing(stack); owner != nil && !isTracked(pass, g, nd, stack) {
					owner.Edges = append(owner.Edges, Edge{
						Kind: EdgeRef, Pos: nd.Pos(), Callee: g.ByLit[nd],
					})
				}
			case *ast.CallExpr:
				owner := g.enclosing(stack)
				if owner == nil {
					return true // call in a var initializer etc.
				}
				g.addCallEdges(pass, owner, nd)
			}
			return true
		})
	}
	for i := range g.Nodes {
		n := g.Nodes[i]
		for j := range n.Edges {
			e := &n.Edges[j]
			if e.Site != nil {
				g.bySite[e.Site] = append(g.bySite[e.Site], e)
			}
		}
	}
	return g
}

// addCallEdges records the edges induced by one call expression.
func (g *Graph) addCallEdges(pass *analysis.Pass, owner *Node, call *ast.CallExpr) {
	// Immediately invoked literal: func(){...}().
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		owner.Edges = append(owner.Edges, Edge{
			Kind: EdgeCall, Site: call, Pos: call.Pos(), Callee: g.ByLit[lit],
		})
		return
	}
	if entryFn, entry, ok := Classify(pass.TypesInfo, call); ok {
		for _, ta := range TaskArgs(pass.TypesInfo, call, entry) {
			kind := EdgeSpawn
			if ta.Param.Loop {
				kind = EdgeLoopBody
			}
			e := Edge{
				Kind: kind, Site: call, Pos: call.Pos(),
				Entry: entry, EntryFn: entryFn,
			}
			switch {
			case ta.Lit != nil:
				e.Callee = g.ByLit[ta.Lit]
			case ta.Fn != nil:
				if n, ok := g.ByFn[ta.Fn]; ok {
					e.Callee = n
				} else {
					e.Ext = ta.Fn
				}
			default:
				continue // dynamic function value
			}
			owner.Edges = append(owner.Edges, e)
		}
		// The entry point itself is also an ordinary (blocking,
		// lock-holding) callee; fall through.
	}
	callee := analysis.Callee(pass.TypesInfo, call)
	if callee == nil {
		return
	}
	e := Edge{Kind: EdgeCall, Site: call, Pos: call.Pos()}
	if n, ok := g.ByFn[callee]; ok {
		e.Callee = n
	} else {
		e.Ext = callee
	}
	owner.Edges = append(owner.Edges, e)
}

// enclosing returns the node of the innermost function enclosing the
// current traversal position.
func (g *Graph) enclosing(stack []ast.Node) *Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			return g.ByLit[n]
		case *ast.FuncDecl:
			return g.byBody[n.Body]
		}
	}
	return nil
}

// isTracked reports whether lit is consumed by its parent in a way
// addCallEdges models (task argument of an entry point, or immediate
// invocation), so no EdgeRef is needed.
func isTracked(pass *analysis.Pass, g *Graph, lit *ast.FuncLit, stack []ast.Node) bool {
	// Walk past parens to the nearest interesting parent.
	i := len(stack) - 1
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	call, ok := stack[i].(*ast.CallExpr)
	if !ok {
		return false
	}
	if ast.Unparen(call.Fun) == lit {
		return true
	}
	if _, entry, ok := Classify(pass.TypesInfo, call); ok {
		for _, ta := range TaskArgs(pass.TypesInfo, call, entry) {
			if ta.Lit == lit {
				return true
			}
		}
	}
	return false
}

// Postorder returns the nodes callees-first (children of cycles in
// arbitrary order), the evaluation order for bottom-up summaries.
func (g *Graph) Postorder() []*Node {
	var out []*Node
	state := make(map[*Node]int) // 0 unvisited, 1 on stack, 2 done
	var visit func(n *Node)
	visit = func(n *Node) {
		if state[n] != 0 {
			return
		}
		state[n] = 1
		for _, e := range n.Edges {
			if e.Callee != nil {
				visit(e.Callee)
			}
		}
		state[n] = 2
		out = append(out, n)
	}
	for _, n := range g.Nodes {
		visit(n)
	}
	return out
}
