package interproc_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"threading/internal/analysis"
	"threading/internal/analysis/interproc"
	"threading/internal/analysis/load"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

func buildFixture(t *testing.T) (*analysis.Pass, *interproc.Graph) {
	t.Helper()
	l := load.New(moduleRoot(t))
	pkg, err := l.CheckDir("testdata/src/a")
	if err != nil {
		t.Fatal(err)
	}
	pass := &analysis.Pass{
		Analyzer:  &analysis.Analyzer{Name: "test"},
		Fset:      l.Fset(),
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	return pass, interproc.Build(pass)
}

// TestGraphEdges pins the edge classification: spawn and loop-body
// edges at entry-point calls, call edges for declared and immediately
// invoked functions, ref edges for stored literals.
func TestGraphEdges(t *testing.T) {
	_, g := buildFixture(t)

	var spawnsNode *interproc.Node
	for fn, n := range g.ByFn {
		if fn.Name() == "spawns" {
			spawnsNode = n
		}
	}
	if spawnsNode == nil {
		t.Fatal("node for spawns not found")
	}

	counts := map[interproc.EdgeKind]int{}
	var externals []string
	for _, e := range spawnsNode.Edges {
		counts[e.Kind]++
		if e.Ext != nil {
			externals = append(externals, e.Ext.Name())
		}
	}
	if counts[interproc.EdgeSpawn] != 1 {
		t.Errorf("spawn edges = %d, want 1", counts[interproc.EdgeSpawn])
	}
	if counts[interproc.EdgeLoopBody] != 1 {
		t.Errorf("loop-body edges = %d, want 1", counts[interproc.EdgeLoopBody])
	}
	if counts[interproc.EdgeRef] != 1 {
		t.Errorf("ref edges = %d, want 1 (the stored literal)", counts[interproc.EdgeRef])
	}
	// Call edges: helper, SubmitCtx, ParallelForCtx, Background x2,
	// and the immediately invoked literal.
	if counts[interproc.EdgeCall] < 4 {
		t.Errorf("call edges = %d, want >= 4 (%v)", counts[interproc.EdgeCall], externals)
	}

	// Postorder must place helper before spawns.
	order := g.Postorder()
	pos := map[*interproc.Node]int{}
	for i, n := range order {
		pos[n] = i
	}
	var helperNode *interproc.Node
	for fn, n := range g.ByFn {
		if fn.Name() == "helper" {
			helperNode = n
		}
	}
	if helperNode == nil {
		t.Fatal("helper node missing")
	}
	if pos[helperNode] > pos[spawnsNode] {
		t.Errorf("postorder: helper (%d) after spawns (%d)", pos[helperNode], pos[spawnsNode])
	}
}

// TestLockClasses pins the canonical lock-class shapes: package var
// ("<pkg>.mu") and struct field ("<pkg>.box.mu"), with acquire and
// release of the same expression mapping to the same class.
func TestLockClasses(t *testing.T) {
	pass, _ := buildFixture(t)

	acquired := map[string]int{}
	released := map[string]int{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(nd ast.Node) bool {
			call, ok := nd.(*ast.CallExpr)
			if !ok {
				return true
			}
			op, class, _ := interproc.LockOp(pass.TypesInfo, pass.Pkg, call)
			switch op {
			case interproc.LockAcquire:
				acquired[class]++
			case interproc.LockRelease:
				released[class]++
			}
			return true
		})
	}
	var pkgVar, field string
	for class := range acquired {
		switch {
		case strings.HasSuffix(class, ".box.mu"):
			field = class
		case strings.HasSuffix(class, "a.mu"):
			pkgVar = class
		}
	}
	if pkgVar == "" {
		t.Errorf("no package-var lock class found in %v", acquired)
	}
	if field == "" {
		t.Errorf("no struct-field lock class found in %v", acquired)
	}
	for class, n := range acquired {
		if released[class] != n {
			t.Errorf("class %q acquired %d released %d: acquire/release classes disagree",
				class, n, released[class])
		}
	}
}
