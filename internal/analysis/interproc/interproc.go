// Package interproc is the interprocedural substrate of the threadvet
// suite: a registry of the runtimes' task entry points, a per-package
// call graph whose edges distinguish ordinary calls from task spawns
// and parallel-loop bodies, and canonical lock-class resolution for
// sync.(RW)Mutex operations.
//
// The division of labour mirrors how the x/tools ecosystem layers
// ctrlflow/buildssa under the vet analyzers: this package computes the
// structures every interprocedural analyzer needs exactly once per
// pass, and the analyzers (lockorder, blockingtask, racecapture, ...)
// run their dataflow over it. Cross-package flow rides on
// analysis.FactStore: each analyzer summarizes the functions of the
// package being analyzed into facts, and the driver's
// dependency-order traversal makes callee summaries available when
// callers are analyzed.
package interproc

import (
	"go/ast"
	"go/types"

	"threading/internal/analysis"
)

// TaskParam describes one function-typed parameter of an entry point
// that the runtime executes as a task.
type TaskParam struct {
	// Index is the argument position.
	Index int
	// Loop marks a parallel-loop body: the function receives a range
	// (or index) and is invoked once per chunk, concurrently.
	Loop bool
}

// Entry describes one runtime entry point that accepts task
// functions.
type Entry struct {
	// TaskParams lists the argument positions holding task functions.
	TaskParams []TaskParam
	// OnCallerStack marks entry points that may execute submitted (or
	// stolen) tasks on the calling goroutine before returning —
	// blocking joins and help-first work stealing. Locks held at the
	// call site therefore order-before locks the tasks acquire.
	OnCallerStack bool
	// Pooled marks entry points whose tasks run on a fixed-width
	// worker pool, where a blocked task permanently occupies a
	// worker. Thread-per-task APIs (futures.Async, futures.NewThread)
	// are not pooled: blocking there costs a goroutine, not a lane.
	Pooled bool
}

// registry maps package path -> receiver type name ("" for
// package-level functions) -> function name -> Entry. It names every
// API of this module that accepts a function the runtime will execute
// concurrently with (or interleaved on the stack of) the caller.
var registry = map[string]map[string]map[string]Entry{
	"threading/internal/worksteal": {
		"Pool": {
			"Run":               {TaskParams: []TaskParam{{Index: 0}}, OnCallerStack: true, Pooled: true},
			"RunCtx":            {TaskParams: []TaskParam{{Index: 1}}, OnCallerStack: true, Pooled: true},
			"SubmitCtx":         {TaskParams: []TaskParam{{Index: 1}}, Pooled: true},
			"ParallelForCtx":    {TaskParams: []TaskParam{{Index: 4, Loop: true}}, OnCallerStack: true, Pooled: true},
			"ParallelReduceCtx": {TaskParams: []TaskParam{{Index: 5, Loop: true}, {Index: 6}}, OnCallerStack: true, Pooled: true},
		},
		"Ctx": {
			"Spawn":  {TaskParams: []TaskParam{{Index: 0}}, OnCallerStack: true, Pooled: true},
			"ForDAC": {TaskParams: []TaskParam{{Index: 3, Loop: true}}, OnCallerStack: true, Pooled: true},
			"ForEach": {TaskParams: []TaskParam{{Index: 3, Loop: true}},
				OnCallerStack: true, Pooled: true},
		},
	},
	"threading/internal/forkjoin": {
		"Team": {
			"Parallel":          {TaskParams: []TaskParam{{Index: 0}}, OnCallerStack: true, Pooled: true},
			"ParallelCtx":       {TaskParams: []TaskParam{{Index: 1}}, OnCallerStack: true, Pooled: true},
			"SubmitCtx":         {TaskParams: []TaskParam{{Index: 1}}, Pooled: true},
			"ParallelForCtx":    {TaskParams: []TaskParam{{Index: 4, Loop: true}}, OnCallerStack: true, Pooled: true},
			"ParallelReduceCtx": {TaskParams: []TaskParam{{Index: 5, Loop: true}, {Index: 6}}, OnCallerStack: true, Pooled: true},
		},
	},
	"threading/internal/shard": {
		"Resolver": {
			"SubmitCtx":         {TaskParams: []TaskParam{{Index: 1}}, Pooled: true},
			"ParallelForCtx":    {TaskParams: []TaskParam{{Index: 4, Loop: true}}, OnCallerStack: true, Pooled: true},
			"ParallelReduceCtx": {TaskParams: []TaskParam{{Index: 5, Loop: true}, {Index: 6}}, OnCallerStack: true, Pooled: true},
		},
	},
	"threading/internal/models": {
		"Model": {
			"ParallelFor":       {TaskParams: []TaskParam{{Index: 1, Loop: true}}, OnCallerStack: true, Pooled: true},
			"ParallelForCtx":    {TaskParams: []TaskParam{{Index: 2, Loop: true}}, OnCallerStack: true, Pooled: true},
			"ParallelReduce":    {TaskParams: []TaskParam{{Index: 2, Loop: true}, {Index: 3}}, OnCallerStack: true, Pooled: true},
			"ParallelReduceCtx": {TaskParams: []TaskParam{{Index: 3, Loop: true}, {Index: 4}}, OnCallerStack: true, Pooled: true},
			"TaskRun":           {TaskParams: []TaskParam{{Index: 0}}, OnCallerStack: true, Pooled: true},
			"TaskRunCtx":        {TaskParams: []TaskParam{{Index: 1}}, OnCallerStack: true, Pooled: true},
		},
		"TaskScope": {
			"Spawn": {TaskParams: []TaskParam{{Index: 0}}, OnCallerStack: true, Pooled: true},
		},
	},
	"threading/internal/futures": {
		"": {
			"Async":     {TaskParams: []TaskParam{{Index: 1}}},
			"NewThread": {TaskParams: []TaskParam{{Index: 0}}},
		},
	},
}

// Classify reports whether call is a task entry point, returning the
// resolved callee and its Entry description.
func Classify(info *types.Info, call *ast.CallExpr) (*types.Func, Entry, bool) {
	callee := analysis.Callee(info, call)
	if callee == nil || callee.Pkg() == nil {
		return nil, Entry{}, false
	}
	recvName := ""
	if recv := analysis.ReceiverNamed(callee); recv != nil {
		recvName = recv.Origin().Obj().Name()
	}
	byRecv, ok := registry[callee.Pkg().Path()]
	if !ok {
		return nil, Entry{}, false
	}
	e, ok := byRecv[recvName][callee.Name()]
	if !ok {
		return nil, Entry{}, false
	}
	return callee, e, true
}

// TaskArg is one task-function argument at an entry-point call site:
// a function literal, a statically resolved declared function, or
// (both nil) a dynamic function value the analysis cannot follow.
type TaskArg struct {
	Param TaskParam
	Expr  ast.Expr
	Lit   *ast.FuncLit
	Fn    *types.Func
}

// TaskArgs resolves the task arguments of a classified call.
func TaskArgs(info *types.Info, call *ast.CallExpr, e Entry) []TaskArg {
	var out []TaskArg
	for _, p := range e.TaskParams {
		if p.Index >= len(call.Args) {
			continue
		}
		arg := ast.Unparen(call.Args[p.Index])
		ta := TaskArg{Param: p, Expr: arg}
		switch a := arg.(type) {
		case *ast.FuncLit:
			ta.Lit = a
		case *ast.Ident:
			ta.Fn, _ = info.Uses[a].(*types.Func)
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[a]; ok {
				ta.Fn, _ = sel.Obj().(*types.Func)
			} else {
				ta.Fn, _ = info.Uses[a.Sel].(*types.Func)
			}
		}
		out = append(out, ta)
	}
	return out
}
