package a

import (
	"context"
	"sync"

	"threading/internal/worksteal"
)

var mu sync.Mutex

type box struct {
	mu sync.Mutex
	n  int
}

func helper() {
	mu.Lock()
	mu.Unlock()
}

func spawns(p *worksteal.Pool, b *box) {
	_ = p.SubmitCtx(context.Background(), func() {
		b.mu.Lock()
		b.n++
		b.mu.Unlock()
	})
	helper()
	_ = p.ParallelForCtx(context.Background(), 0, 10, 0, func(l, h int) {})
	stored := func() { helper() }
	_ = stored
	func() { helper() }()
}
