package interproc

import (
	"fmt"
	"go/ast"
	"go/types"

	"threading/internal/analysis"
)

// LockOpKind classifies a sync.(RW)Mutex method call.
type LockOpKind int

const (
	// LockNone: not a mutex operation.
	LockNone LockOpKind = iota
	// LockAcquire: Lock or RLock.
	LockAcquire
	// LockRelease: Unlock or RUnlock.
	LockRelease
)

// LockOp classifies call as a sync.Mutex/RWMutex acquire or release
// and returns the lock's canonical class and a display form of the
// receiver expression. RLock/RUnlock map to the same class as
// Lock/Unlock: read locks participate in order cycles with writers.
//
// The class abstracts lock *instances* into lock *classes*, the
// standard move that makes order analysis possible across call and
// spawn boundaries:
//
//   - a field selection s.mu keys on the field's declaring struct
//     ("pkg.Type.mu"), conflating all instances of the type;
//   - a package-level var keys on "pkg.name";
//   - a local (or captured) var keys on its declaration position,
//     unique within the package and shared by every closure that
//     captures it.
func LockOp(info *types.Info, pkg *types.Package, call *ast.CallExpr) (op LockOpKind, class, display string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return LockNone, "", ""
	}
	callee := analysis.Callee(info, call)
	if callee == nil {
		return LockNone, "", ""
	}
	recv := analysis.ReceiverNamed(callee)
	if recv == nil || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != "sync" {
		return LockNone, "", ""
	}
	if name := recv.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return LockNone, "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = LockAcquire
	case "Unlock", "RUnlock":
		op = LockRelease
	default:
		return LockNone, "", ""
	}
	class = LockClass(info, pkg, sel.X)
	return op, class, types.ExprString(sel.X)
}

// LockClass renders the canonical class of a lock expression (see
// LockOp). Expressions it cannot resolve fall back to their printed
// form qualified by the package, which keeps distinct shapes distinct
// at the cost of instance precision.
func LockClass(info *types.Info, pkg *types.Package, expr ast.Expr) string {
	expr = ast.Unparen(expr)
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok {
			// Field selection: class is the field within its named
			// receiver type.
			if recv, ok := analysis.Named(s.Recv()); ok {
				obj := recv.Origin().Obj()
				path := ""
				if obj.Pkg() != nil {
					path = obj.Pkg().Path()
				}
				return path + "." + obj.Name() + "." + e.Sel.Name
			}
		}
		// Package-qualified var: pkg.mu.
		if obj, ok := info.Uses[e.Sel].(*types.Var); ok {
			return varClass(obj, pkg)
		}
	case *ast.Ident:
		if obj, ok := info.Uses[e].(*types.Var); ok {
			return varClass(obj, pkg)
		}
	case *ast.StarExpr:
		return LockClass(info, pkg, e.X)
	}
	path := ""
	if pkg != nil {
		path = pkg.Path()
	}
	return path + ".expr:" + types.ExprString(expr)
}

// varClass keys a variable object: package-level vars by qualified
// name, locals by declaration position (stable within a package and
// shared across capturing closures).
func varClass(obj *types.Var, pkg *types.Package) string {
	if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	path := ""
	if obj.Pkg() != nil {
		path = obj.Pkg().Path()
	}
	return fmt.Sprintf("%s.%s@%d", path, obj.Name(), obj.Pos())
}

// IsDeferredCall reports whether call is the call of a defer
// statement given the immediate parent from a WithStack traversal.
func IsDeferredCall(parent ast.Node, call *ast.CallExpr) bool {
	d, ok := parent.(*ast.DeferStmt)
	return ok && d.Call == call
}
