// Negative lockspawn cases: nothing in this file may be reported.
package a

import (
	"sync"

	"threading/internal/worksteal"
)

// Unlock before submitting: fine.
func unlockFirst(mu *sync.Mutex, p *worksteal.Pool, state *int) {
	mu.Lock()
	*state++
	mu.Unlock()
	p.Run(func(c *worksteal.Ctx) {})
}

// Locking inside the task body is the correct shape: the lock is
// taken and released by whichever worker runs the chunk, not held
// across the join.
func lockInsideBody(mu *sync.Mutex, p *worksteal.Pool, state *int) {
	p.Run(func(c *worksteal.Ctx) {
		mu.Lock()
		*state++
		mu.Unlock()
	})
}

// A different function's lock does not leak into this one.
func separateFunctions(mu *sync.Mutex) {
	mu.Lock()
	mu.Unlock()
}

func submitsFreely(p *worksteal.Pool) {
	p.Run(func(c *worksteal.Ctx) {})
}
