// Positive lockspawn cases: every annotated line must be reported.
package a

import (
	"context"
	"sync"

	"threading/internal/models"
	"threading/internal/worksteal"
)

type server struct {
	mu    sync.Mutex
	state int
}

func (s *server) runLocked(p *worksteal.Pool) {
	s.mu.Lock()
	p.Run(func(c *worksteal.Ctx) { s.state++ }) // want `Pool.Run called while "s.mu" is held`
	s.mu.Unlock()
}

func (s *server) runCtxUnderDeferredUnlock(ctx context.Context, p *worksteal.Pool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return p.RunCtx(ctx, func(c *worksteal.Ctx) {}) // want `Pool.RunCtx called while "s.mu" is held`
}

func spawnUnderRLock(rw *sync.RWMutex, c *worksteal.Ctx) {
	rw.RLock()
	c.Spawn(func(cc *worksteal.Ctx) {}) // want `Ctx.Spawn called while "rw" is held`
	rw.RUnlock()
}

func taskRunUnderLock(mu *sync.Mutex, m models.Model) {
	mu.Lock()
	m.TaskRun(func(s models.TaskScope) {}) // want `Model.TaskRun called while "mu" is held`
	mu.Unlock()
}

func scopeSpawnUnderLock(mu *sync.Mutex, s models.TaskScope) {
	mu.Lock()
	defer mu.Unlock()
	s.Spawn(func(cs models.TaskScope) {}) // want `TaskScope.Spawn called while "mu" is held`
}

func forDACUnderLock(mu *sync.Mutex, c *worksteal.Ctx, n int) {
	mu.Lock()
	c.ForDAC(0, n, 0, func(cc *worksteal.Ctx, l, h int) {}) // want `Ctx.ForDAC called while "mu" is held`
	mu.Unlock()
}
