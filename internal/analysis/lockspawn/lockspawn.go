// Package lockspawn reports task submission or joining performed
// while a sync.Mutex or sync.RWMutex is held.
//
// Contract encoded: the work-stealing runtime uses help-first joins —
// a goroutine that submits work (Pool.Run/RunCtx, Ctx.Spawn/Sync,
// ForDAC/ForEach, the task models' TaskRun/TaskRunCtx and
// TaskScope.Spawn/Sync) may execute *stolen* tasks on its own stack
// while it waits for its subtree to drain. If the submitter holds a
// mutex and a stolen task (or a task in the joined subtree) takes the
// same mutex, the program deadlocks: the lock owner is busy running
// the very task that waits for the lock. Blocking inside stealable
// tasks is the second dominant bug class of Kulkarni & Lumsdaine's
// many-tasking survey; this analyzer keeps it out of the submission
// side.
//
// The check is lexical and per-function: a Lock/RLock on a
// sync.(RW)Mutex opens a held region that a matching non-deferred
// Unlock/RUnlock closes; a deferred unlock holds until the end of the
// function. Submission calls inside a held region — including inside
// function literals defined there, which the runtimes typically
// invoke synchronously — are reported.
package lockspawn

import (
	"go/ast"
	"go/token"
	"go/types"

	"threading/internal/analysis"
	"threading/internal/analysis/interproc"
)

// Analyzer is the lockspawn pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockspawn",
	Doc: "report work-stealing submission/join calls made while a " +
		"sync.Mutex or sync.RWMutex is held (deadlock under help-first joins)",
	Run: run,
}

// submitters lists the runtime entry points that may run stolen tasks
// on the caller's stack, keyed by package path then receiver type.
var submitters = map[string]map[string]map[string]bool{
	"threading/internal/worksteal": {
		"Pool": {"Run": true, "RunCtx": true},
		"Ctx":  {"Spawn": true, "Sync": true, "ForDAC": true, "ForEach": true},
	},
	"threading/internal/models": {
		"Model":     {"TaskRun": true, "TaskRunCtx": true},
		"TaskScope": {"Spawn": true, "Sync": true},
	},
}

func isSubmitter(f *types.Func) bool {
	recv := analysis.ReceiverNamed(f)
	if recv == nil {
		return false
	}
	obj := recv.Origin().Obj()
	if obj.Pkg() == nil {
		return false
	}
	byType, ok := submitters[obj.Pkg().Path()]
	if !ok {
		return false
	}
	return byType[obj.Name()][f.Name()]
}

// lockMethod classifies a call as acquiring or releasing a
// sync.(RW)Mutex and returns the key identifying the lock
// expression. Thin wrapper over interproc.LockOp, which lockorder
// and racecapture share.
func lockMethod(pass *analysis.Pass, call *ast.CallExpr) (key string, acquire, release bool) {
	op, _, display := interproc.LockOp(pass.TypesInfo, pass.Pkg, call)
	switch op {
	case interproc.LockAcquire:
		return display, true, false
	case interproc.LockRelease:
		return display, false, true
	}
	return "", false, false
}

type heldLock struct {
	key string
	pos token.Pos
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var held []heldLock
	analysis.WithStack(body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, acquire, release := lockMethod(pass, call); acquire || release {
			deferred := len(stack) > 0 && interproc.IsDeferredCall(stack[len(stack)-1], call)
			switch {
			case acquire:
				held = append(held, heldLock{key: key, pos: call.Pos()})
			case release && !deferred:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].key == key {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
			return true
		}
		if len(held) == 0 {
			return true
		}
		callee := analysis.Callee(pass.TypesInfo, call)
		if callee == nil || !isSubmitter(callee) {
			return true
		}
		h := held[len(held)-1]
		pass.Reportf(call.Pos(),
			"%s called while %q is held (Lock at %s): help-first joins may execute stolen tasks on this goroutine and retake the lock",
			analysis.FuncName(callee), h.key, pass.Fset.Position(h.pos))
		return true
	})
}
