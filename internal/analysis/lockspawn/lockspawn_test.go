package lockspawn_test

import (
	"testing"

	"threading/internal/analysis/analysistest"
	"threading/internal/analysis/lockspawn"
)

func TestLockSpawn(t *testing.T) {
	analysistest.Run(t, lockspawn.Analyzer, "testdata/src/a")
}
