// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer is a named
// check over one type-checked package, a Pass is one application of an
// Analyzer to one package, and a Diagnostic is one finding.
//
// The module deliberately has no third-party dependencies, so instead
// of importing x/tools this package re-creates the small slice of its
// surface that the threadvet analyzers need (see cmd/threadvet). The
// shape mirrors x/tools closely enough that porting an analyzer onto
// the real framework is mechanical.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check. Run inspects the package in Pass and
// reports findings through Pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //threadvet:ignore directives. It must be a single word.
	Name string
	// Doc is a one-paragraph description of the contract the analyzer
	// enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass is one application of one Analyzer to one type-checked
// package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts carries analyzer facts across the packages of one run.
	// The driver analyzes packages in dependency order with a shared
	// store, so facts exported for a package's functions are visible
	// when its dependents are analyzed. May be nil (single-package
	// runs); Export/ImportObjectFact tolerate that.
	Facts *FactStore
	// Report delivers one diagnostic. The driver fills in suppression
	// (ignore directives) and ordering.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
	// SuggestedFixes are machine-applicable repairs for the finding,
	// applied by `threadvet -fix`. A fix must leave the code free of
	// the diagnostic that produced it (the driver enforces
	// idempotence), and the first fix of each diagnostic is the one
	// applied.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one self-contained repair: a set of non-overlapping
// text edits within the diagnosed file.
type SuggestedFix struct {
	// Message says what applying the fix does ("pass ctx and call
	// RunCtx").
	Message string
	// TextEdits are applied together. Edits must not overlap.
	TextEdits []TextEdit
}

// TextEdit replaces the source in [Pos, End) with NewText. A
// zero-width range (Pos == End) is an insertion.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// Callee returns the static callee of call — a declared function or
// method — or nil when the callee is dynamic (a function value, a
// built-in, or a type conversion). Explicit generic instantiations
// (f[T](...)) are unwrapped.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch e := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(e.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(e.X)
	}
	switch e := fun.(type) {
	case *ast.Ident:
		f, _ := info.Uses[e].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		// Package-qualified call: pkg.Func.
		f, _ := info.Uses[e.Sel].(*types.Func)
		return f
	}
	return nil
}

// Named returns the named type of t, looking through one level of
// pointer and through aliases. For an instantiated generic type it
// returns the instance (use Origin to compare against the generic
// declaration).
func Named(t types.Type) (*types.Named, bool) {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// IsNamed reports whether t — possibly behind a pointer or alias, and
// comparing generic instances by their origin — is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n, ok := Named(t)
	if !ok {
		return false
	}
	obj := n.Origin().Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool { return IsNamed(t, "context", "Context") }

// ReceiverNamed returns the named type of f's receiver (through a
// pointer), or nil when f is not a method.
func ReceiverNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	if n, ok := Named(sig.Recv().Type()); ok {
		return n
	}
	return nil
}

// FuncName renders f for a diagnostic: "pkg.Func" for a package-level
// function, "Type.Method" for a method.
func FuncName(f *types.Func) string {
	if n := ReceiverNamed(f); n != nil {
		return n.Origin().Obj().Name() + "." + f.Name()
	}
	if f.Pkg() != nil {
		return f.Pkg().Name() + "." + f.Name()
	}
	return f.Name()
}

// WithStack traverses root depth-first in source order, calling fn
// with each node and the stack of its ancestors (outermost first, not
// including n itself). If fn returns false the node's children are
// skipped.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
			return true
		}
		return false
	})
}
