package racecapture_test

import (
	"testing"

	"threading/internal/analysis/analysistest"
	"threading/internal/analysis/racecapture"
)

func TestRaceCapture(t *testing.T) {
	analysistest.Run(t, racecapture.Analyzer,
		"testdata/src/a",
		"testdata/src/clean",
	)
}
