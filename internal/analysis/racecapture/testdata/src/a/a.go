package a

import (
	"context"

	"threading/internal/worksteal"
)

// The acceptance case: an unsynchronized captured-scalar
// accumulation inside a ParallelForCtx body.
func scalarAccum(p *worksteal.Pool, xs []float64) float64 {
	sum := 0.0
	_ = p.ParallelForCtx(context.Background(), 0, len(xs), 0, func(l, h int) {
		for i := l; i < h; i++ {
			sum += xs[i] // want `unsynchronized write to captured variable "sum" inside a Pool.ParallelForCtx body`
		}
	})
	return sum
}

// IncDec on a captured counter is the same race.
func counter(p *worksteal.Pool) int {
	n := 0
	_ = p.ParallelForCtx(context.Background(), 0, 128, 0, func(l, h int) {
		for i := l; i < h; i++ {
			n++ // want `unsynchronized write to captured variable "n"`
		}
	})
	return n
}

// A write through an index unrelated to the loop range can collide.
func wrongIndex(p *worksteal.Pool, out []int, k int) {
	_ = p.ParallelForCtx(context.Background(), 0, len(out), 0, func(l, h int) {
		for i := l; i < h; i++ {
			out[k] = i // want `write to captured "out" indexed by "k", which is not derived from the loop variable`
		}
	})
}

// Captured maps race on internal state even at distinct keys.
func mapWrite(p *worksteal.Pool, m map[int]int) {
	_ = p.ParallelForCtx(context.Background(), 0, 64, 0, func(l, h int) {
		for i := l; i < h; i++ {
			m[i] = i * i // want `write to captured map "m" inside a Pool.ParallelForCtx body`
		}
	})
}

// Writes to a captured struct field are as shared as a bare scalar.
type stats struct{ total float64 }

func fieldWrite(p *worksteal.Pool, s *stats, xs []float64) {
	_ = p.ParallelForCtx(context.Background(), 0, len(xs), 0, func(l, h int) {
		for i := l; i < h; i++ {
			s.total += xs[i] // want `unsynchronized write to captured variable "s"`
		}
	})
}

// ForDAC bodies are loop bodies too.
func dacAccum(p *worksteal.Pool, xs []int) int {
	acc := 0
	p.Run(func(c *worksteal.Ctx) {
		c.ForDAC(0, len(xs), 0, func(cc *worksteal.Ctx, l, h int) {
			for i := l; i < h; i++ {
				acc += xs[i] // want `unsynchronized write to captured variable "acc" inside a Ctx.ForDAC body`
			}
		})
	})
	return acc
}
