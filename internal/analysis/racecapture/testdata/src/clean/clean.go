// Negative fixture: the sanctioned parallel-loop write patterns.
package clean

import (
	"context"
	"sync"
	"sync/atomic"

	"threading/internal/worksteal"
)

// Element write indexed by the loop variable: disjoint ranges touch
// disjoint elements.
func indexed(p *worksteal.Pool, out []float64) {
	_ = p.ParallelForCtx(context.Background(), 0, len(out), 0, func(l, h int) {
		for i := l; i < h; i++ {
			out[i] = float64(i) * 2
		}
	})
}

// Index derived from the loop variable through arithmetic and a
// second local is still loop-derived.
func derivedIndex(p *worksteal.Pool, out []int) {
	_ = p.ParallelForCtx(context.Background(), 0, len(out)/2, 0, func(l, h int) {
		for i := l; i < h; i++ {
			j := 2 * i
			out[j] = i
			out[j+1] = i
		}
	})
}

// Mutex-guarded accumulation is synchronized.
func guarded(p *worksteal.Pool, xs []float64) float64 {
	var mu sync.Mutex
	sum := 0.0
	_ = p.ParallelForCtx(context.Background(), 0, len(xs), 0, func(l, h int) {
		local := 0.0
		for i := l; i < h; i++ {
			local += xs[i]
		}
		mu.Lock()
		sum += local
		mu.Unlock()
	})
	return sum
}

// Deferred unlock holds the lock to the end of the body.
func guardedDefer(p *worksteal.Pool, xs []float64) float64 {
	var mu sync.Mutex
	sum := 0.0
	_ = p.ParallelForCtx(context.Background(), 0, len(xs), 0, func(l, h int) {
		mu.Lock()
		defer mu.Unlock()
		for i := l; i < h; i++ {
			sum += xs[i]
		}
	})
	return sum
}

// Atomics are calls, not assignments: nothing to flag.
func atomicAccum(p *worksteal.Pool, xs []int64) int64 {
	var sum atomic.Int64
	_ = p.ParallelForCtx(context.Background(), 0, len(xs), 0, func(l, h int) {
		var local int64
		for i := l; i < h; i++ {
			local += xs[i]
		}
		sum.Add(local)
	})
	return sum.Load()
}

// Locals declared inside the body are private to the iteration chunk.
func localAccum(p *worksteal.Pool, xs []float64, out []float64) {
	_ = p.ParallelForCtx(context.Background(), 0, len(xs), 0, func(l, h int) {
		acc := 0.0
		for i := l; i < h; i++ {
			acc += xs[i]
		}
		out[l] = acc
	})
}
