// Package racecapture reports writes inside a parallel-loop body to
// variables captured by reference that are neither indexed by the
// loop variable nor synchronized — the shared-capture data race.
//
// Contract encoded: a body passed to ParallelFor/ParallelForCtx/
// ForDAC/ForEach executes concurrently on many workers over disjoint
// index ranges. The only captured locations a body may write without
// synchronization are elements of an array/slice addressed *by the
// loop index* (disjoint ranges touch disjoint elements). A captured
// scalar accumulation (sum += x), a write through an index unrelated
// to the loop variable, or any captured-map write (Go maps race on
// their internal state even at distinct keys) is a data race the Go
// race detector only catches when two iterations actually collide
// under test. Quantifying OpenMP (PAPERS.md) finds exactly this
// shared-write-in-parallel-loop family to be the most common
// real-world OpenMP defect; this analyzer is its static gate for the
// paper's loop models.
//
// Accepted (not reported): element writes whose index is derived from
// the body's range parameters (including through locals such as the
// canonical `for i := lo; i < hi; i++`), writes inside a lexically
// held mutex region, atomic.* calls and the atomic wrapper types
// (method calls mutate nothing syntactically), and writes to
// variables declared inside the body.
package racecapture

import (
	"go/ast"
	"go/types"

	"threading/internal/analysis"
	"threading/internal/analysis/interproc"
)

// Analyzer is the racecapture pass.
var Analyzer = &analysis.Analyzer{
	Name: "racecapture",
	Doc: "report unsynchronized writes to captured variables inside " +
		"parallel-loop bodies that are not indexed by the loop variable",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(nd ast.Node) bool {
			call, ok := nd.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, entry, ok := interproc.Classify(pass.TypesInfo, call)
			if !ok {
				return true
			}
			for _, ta := range interproc.TaskArgs(pass.TypesInfo, call, entry) {
				if ta.Param.Loop && ta.Lit != nil {
					checkBody(pass, callee, ta.Lit)
				}
			}
			return true
		})
	}
	return nil
}

// checkBody analyzes one parallel-loop body literal.
func checkBody(pass *analysis.Pass, entryFn *types.Func, lit *ast.FuncLit) {
	tainted := rangeParams(pass, lit)
	growTaint(pass, lit, tainted)

	var held int // lexically held mutexes
	analysis.WithStack(lit.Body, func(nd ast.Node, stack []ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.CallExpr:
			if op, _, _ := interproc.LockOp(pass.TypesInfo, pass.Pkg, nd); op != interproc.LockNone {
				deferred := len(stack) > 0 && interproc.IsDeferredCall(stack[len(stack)-1], nd)
				switch {
				case op == interproc.LockAcquire:
					held++
				case op == interproc.LockRelease && !deferred:
					if held > 0 {
						held--
					}
				}
			}
		case *ast.AssignStmt:
			if held > 0 {
				return true
			}
			for _, lhs := range nd.Lhs {
				checkWrite(pass, entryFn, lit, lhs, tainted)
			}
		case *ast.IncDecStmt:
			if held > 0 {
				return true
			}
			checkWrite(pass, entryFn, lit, nd.X, tainted)
		}
		return true
	})
}

// rangeParams collects the body's integer parameters — the loop
// range/index variables handed to it by the runtime.
func rangeParams(pass *analysis.Pass, lit *ast.FuncLit) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if lit.Type.Params == nil {
		return out
	}
	for _, field := range lit.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		basic, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsInteger == 0 {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// growTaint extends the tainted set with locals assigned from tainted
// expressions (e.g. i := lo in the canonical chunk loop). Two rounds
// handle one level of indirection through another local.
func growTaint(pass *analysis.Pass, lit *ast.FuncLit, tainted map[types.Object]bool) {
	for round := 0; round < 2; round++ {
		changed := false
		ast.Inspect(lit.Body, func(nd ast.Node) bool {
			as, ok := nd.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil || tainted[obj] {
					continue
				}
				if mentionsTainted(pass, as.Rhs[i], tainted) {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
}

func mentionsTainted(pass *analysis.Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(nd ast.Node) bool {
		if id, ok := nd.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && tainted[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkWrite classifies one write target inside the body.
func checkWrite(pass *analysis.Pass, entryFn *types.Func, lit *ast.FuncLit, lhs ast.Expr, tainted map[types.Object]bool) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	base, baseObj := baseVar(pass, lhs)
	if baseObj == nil {
		return
	}
	// Declared inside the body (including nested literals): private
	// to the iteration.
	if baseObj.Pos() >= lit.Pos() && baseObj.Pos() <= lit.End() {
		return
	}

	// Walk the LHS shape: indexed access with a loop-derived index
	// into a slice/array is the sanctioned pattern; maps are never
	// safe; everything else captured is a race.
	switch e := lhs.(type) {
	case *ast.IndexExpr:
		container, _ := pass.TypesInfo.Types[e.X]
		_, isMap := container.Type.Underlying().(*types.Map)
		if isMap {
			pass.Reportf(lhs.Pos(),
				"write to captured map %q inside a %s body: Go maps race on concurrent writes even at distinct keys; use per-worker maps or a mutex",
				types.ExprString(e.X), analysis.FuncName(entryFn))
			return
		}
		if mentionsTainted(pass, e.Index, tainted) {
			return // out[i] = ... with i derived from the range
		}
		pass.Reportf(lhs.Pos(),
			"write to captured %q indexed by %q, which is not derived from the loop variable, inside a %s body: concurrent iterations may collide; index by the loop variable or guard with a mutex",
			types.ExprString(e.X), types.ExprString(e.Index), analysis.FuncName(entryFn))
	default:
		pass.Reportf(lhs.Pos(),
			"unsynchronized write to captured variable %q inside a %s body: concurrent iterations race; accumulate per-chunk locally, index a slice by the loop variable, use an atomic, or guard with a mutex",
			types.ExprString(base), analysis.FuncName(entryFn))
	}
}

// baseVar peels selectors, stars, and indexes down to the root
// identifier of an lvalue and resolves its object.
func baseVar(pass *analysis.Pass, e ast.Expr) (ast.Expr, types.Object) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			if _, ok := obj.(*types.Var); !ok {
				return x, nil
			}
			return x, obj
		default:
			return e, nil
		}
	}
}
