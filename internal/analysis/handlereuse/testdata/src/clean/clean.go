// Negative fixture: handle lifecycles this analyzer must accept.
package clean

import (
	"context"

	"threading/internal/futures"
	"threading/internal/worksteal"
)

// The canonical lifecycle: use, then deferred Close.
func deferred(ctx context.Context) {
	p := worksteal.NewPool(2)
	defer p.Close()
	_ = p.SubmitCtx(ctx, func() {})
}

// A Close inside a branch does not poison the code after the branch
// (the branch may not run).
func branchClose(ctx context.Context, bail bool) {
	p := worksteal.NewPool(2)
	if bail {
		p.Close()
		return
	}
	_ = p.SubmitCtx(ctx, func() {})
	p.Close()
}

// Reassignment revives the handle.
func reassign() {
	p := worksteal.NewPool(2)
	p.Close()
	p = worksteal.NewPool(4)
	p.Close()
}

// Two distinct handles are independent.
func twoHandles() {
	a := worksteal.NewPool(2)
	b := worksteal.NewPool(2)
	a.Close()
	b.Close()
}

// Joining two different threads is fine; so is Joinable, which is
// not a consuming or dead method.
func joinEach(ts []*futures.Thread) {
	for _, t := range ts {
		t.Join()
	}
}

func checkThenJoin(t *futures.Thread) {
	if t.Joinable() {
		t.Join()
	}
}

// A handle consumed inside a literal does not affect the enclosing
// function's view, and vice versa.
func litScope(ctx context.Context) {
	p := worksteal.NewPool(2)
	cleanup := func() { p.Close() }
	_ = p.SubmitCtx(ctx, func() {})
	cleanup()
}
