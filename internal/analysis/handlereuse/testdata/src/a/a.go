package a

import (
	"context"

	"threading/internal/forkjoin"
	"threading/internal/futures"
	"threading/internal/models"
	"threading/internal/worksteal"
)

// Double Close: the second call is dead code (and would re-close the
// pool's internal channels at runtime).
func doubleClose() {
	p := worksteal.NewPool(2)
	p.Close()
	p.Close() // want `Close called on "p", which was already closed by the Close at`
}

// Submitting to a closed pool always fails.
func submitAfterClose(ctx context.Context) {
	p := worksteal.NewPool(2)
	p.Close()
	_ = p.SubmitCtx(ctx, func() {}) // want `SubmitCtx called on "p", which was already closed`
}

// Thread.Join panics on the second join.
func joinTwice(t *futures.Thread) {
	t.Join()
	t.Join() // want `Join called on "t", which was already joined or detached by the Join at`
}

// Join after Detach panics.
func joinAfterDetach(t *futures.Thread) {
	t.Detach()
	t.Join() // want `Join called on "t", which was already joined or detached by the Detach at`
}

// The Model interface carries the same Close discipline as the
// concrete pools behind it.
func modelAfterClose(m models.Model) {
	m.ParallelFor(64, func(lo, hi int) {})
	m.Close()
	m.ParallelFor(64, func(lo, hi int) {}) // want `ParallelFor called on "m", which was already closed`
}

// Teams too, including when the handle is a struct field.
type app struct{ team *forkjoin.Team }

func fieldHandle(a *app) {
	a.team.Close()
	a.team.Close() // want `Close called on "a.team", which was already closed`
}
