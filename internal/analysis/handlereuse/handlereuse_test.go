package handlereuse_test

import (
	"testing"

	"threading/internal/analysis/analysistest"
	"threading/internal/analysis/handlereuse"
)

func TestHandleReuse(t *testing.T) {
	analysistest.Run(t, handlereuse.Analyzer,
		"testdata/src/a",
		"testdata/src/clean",
	)
}
