// Package handlereuse reports uses of a task handle or execution
// region after the operation that consumes it: joining a
// futures.Thread twice (or after Detach), and submitting to or
// re-closing a Pool, Team, Resolver, Model, or Device after Close.
//
// The runtime already turns most of these into panics or deadlocks —
// Thread.Join panics on the second call, a closed Pool's SubmitCtx
// returns ErrClosed — but only when the path executes. This analyzer
// moves the failure to vet time for the straight-line cases, which is
// where the C++-style handle discipline the paper's futures model
// mimics (std::thread terminates on double-join) actually bites.
//
// The analysis is per-block and flow-insensitive across branches: a
// consumption inside an if body does not poison the code after the
// if (either arm may not run), and reassigning the handle variable
// revives it. Deferred consumers (`defer p.Close()`) neither consume
// nor get reported — they run at function exit in reverse order,
// after every lexically later use.
//
// The double-Close diagnostic carries a SuggestedFix deleting the
// redundant statement; `threadvet -fix` applies it.
package handlereuse

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"threading/internal/analysis"
)

// Analyzer is the handlereuse pass.
var Analyzer = &analysis.Analyzer{
	Name: "handlereuse",
	Doc: "report joins of an already-joined thread handle and calls on " +
		"closed pools, teams, resolvers, models, and devices",
	Run: run,
}

// handleClass describes one tracked handle type: which methods
// consume the handle and which methods are dead once it is consumed.
type handleClass struct {
	consume map[string]bool
	dead    map[string]bool
	// verb names the consuming action in diagnostics ("joined",
	// "closed").
	verb string
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// classes maps "pkgPath.TypeName" to its handle discipline. Keys
// follow interproc's entry-point registry; Model is an interface, so
// method lookups go through Named.Obj of the receiver's named type,
// which works the same way for interfaces.
var classes = map[string]handleClass{
	"threading/internal/futures.Thread": {
		consume: set("Join", "Detach"),
		dead:    set("Join", "JoinCtx", "Detach"),
		verb:    "joined or detached",
	},
	"threading/internal/worksteal.Pool": {
		consume: set("Close"),
		dead: set("Close", "Run", "RunCtx", "SubmitCtx",
			"ParallelForCtx", "ParallelReduceCtx"),
		verb: "closed",
	},
	"threading/internal/forkjoin.Team": {
		consume: set("Close"),
		dead: set("Close", "Parallel", "ParallelCtx", "SubmitCtx",
			"ParallelForCtx", "ParallelReduceCtx"),
		verb: "closed",
	},
	"threading/internal/shard.Resolver": {
		consume: set("Close"),
		dead: set("Close", "SubmitCtx", "ParallelForCtx",
			"ParallelReduceCtx"),
		verb: "closed",
	},
	"threading/internal/models.Model": {
		consume: set("Close"),
		dead: set("Close", "ParallelFor", "ParallelForCtx",
			"ParallelReduce", "ParallelReduceCtx", "TaskRun",
			"TaskRunCtx"),
		verb: "closed",
	},
	"threading/internal/offload.Device": {
		consume: set("Close"),
		dead: set("Close", "Alloc", "ToDevice", "FromDevice", "Launch",
			"LaunchCtx", "Target", "TargetCtx", "NewStream"),
		verb: "closed",
	},
}

// consumption records where and how a handle was consumed.
type consumption struct {
	pos    string // printed position of the consuming call
	method string
	class  handleClass
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(nd ast.Node) bool {
			switch nd := nd.(type) {
			case *ast.FuncDecl:
				if nd.Body != nil {
					scanBlock(pass, nd.Body.List, map[string]consumption{})
				}
				return false
			case *ast.FuncLit:
				scanBlock(pass, nd.Body.List, map[string]consumption{})
				return false
			}
			return true
		})
	}
	return nil
}

// scanBlock walks one statement list in order, threading the
// consumed-handle state through it. Nested control-flow blocks get a
// copy of the state (their consumptions don't leak out); nested
// function literals get a fresh empty state (they may run at any
// time relative to this block).
func scanBlock(pass *analysis.Pass, stmts []ast.Stmt, state map[string]consumption) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			// Deferred/concurrent calls execute at another time;
			// ordering arguments don't apply. Still scan any literal
			// bodies inside.
			scanLits(pass, stmt)
		case *ast.IfStmt:
			if s.Init != nil {
				scanStmtCalls(pass, s.Init, state)
			}
			scanBlock(pass, s.Body.List, copyState(state))
			if s.Else != nil {
				if blk, ok := s.Else.(*ast.BlockStmt); ok {
					scanBlock(pass, blk.List, copyState(state))
				} else {
					scanBlock(pass, []ast.Stmt{s.Else}, copyState(state))
				}
			}
		case *ast.ForStmt:
			scanBlock(pass, s.Body.List, copyState(state))
		case *ast.RangeStmt:
			scanBlock(pass, s.Body.List, copyState(state))
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			ast.Inspect(s, func(n ast.Node) bool {
				if cc, ok := n.(*ast.CaseClause); ok {
					scanBlock(pass, cc.Body, copyState(state))
					return false
				}
				if cc, ok := n.(*ast.CommClause); ok {
					scanBlock(pass, cc.Body, copyState(state))
					return false
				}
				return true
			})
		case *ast.BlockStmt:
			scanBlock(pass, s.List, state)
		case *ast.LabeledStmt:
			scanBlock(pass, []ast.Stmt{s.Stmt}, state)
		default:
			scanStmtCalls(pass, stmt, state)
		}
	}
}

// scanStmtCalls inspects one straight-line statement: reports calls
// on consumed handles, registers new consumptions, and revives
// handles that are reassigned.
func scanStmtCalls(pass *analysis.Pass, stmt ast.Stmt, state map[string]consumption) {
	// Reassignment revives the handle (h = futures.NewThread(...)),
	// including handles reached through the reassigned variable
	// (a = other revives a.team).
	if as, ok := stmt.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			expr := types.ExprString(ast.Unparen(lhs))
			for k := range state {
				_, kexpr, _ := strings.Cut(k, "|")
				if kexpr == expr || strings.HasPrefix(kexpr, expr+".") {
					delete(state, k)
				}
			}
		}
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			scanBlock(pass, lit.Body.List, map[string]consumption{})
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		recv := analysis.ReceiverNamed(fn)
		if recv == nil {
			return true
		}
		classKey := recvClassKey(recv)
		class, tracked := classes[classKey]
		if !tracked {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		key := classKey + "|" + types.ExprString(ast.Unparen(sel.X))
		if prev, dead := state[key]; dead && class.dead[fn.Name()] {
			diag := analysis.Diagnostic{
				Pos:      call.Pos(),
				Analyzer: pass.Analyzer.Name,
				Message: fmt.Sprintf(
					"%s called on %q, which was already %s by the %s at %s",
					fn.Name(), types.ExprString(sel.X), prev.class.verb,
					prev.method, prev.pos),
			}
			// Redundant Close/Detach as a standalone statement is
			// pure dead code: offer to delete it.
			if es, ok := stmt.(*ast.ExprStmt); ok && es.X == call &&
				class.consume[fn.Name()] && fn.Name() == prev.method {
				diag.SuggestedFixes = []analysis.SuggestedFix{{
					Message: fmt.Sprintf("delete redundant %s", fn.Name()),
					TextEdits: []analysis.TextEdit{{
						Pos: stmt.Pos(), End: stmt.End(),
					}},
				}}
			}
			pass.Report(diag)
			return true
		}
		if class.consume[fn.Name()] {
			state[key] = consumption{
				pos:    pass.Fset.Position(call.Pos()).String(),
				method: fn.Name(),
				class:  class,
			}
		}
		return true
	})
}

// scanLits scans function-literal bodies found under n with fresh
// state.
func scanLits(pass *analysis.Pass, n ast.Node) {
	ast.Inspect(n, func(nd ast.Node) bool {
		if lit, ok := nd.(*ast.FuncLit); ok {
			scanBlock(pass, lit.Body.List, map[string]consumption{})
			return false
		}
		return true
	})
}

// recvClassKey renders the receiver's named type as "pkgPath.Name".
func recvClassKey(named *types.Named) string {
	obj := named.Origin().Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

func copyState(state map[string]consumption) map[string]consumption {
	out := make(map[string]consumption, len(state))
	for k, v := range state {
		out[k] = v
	}
	return out
}
