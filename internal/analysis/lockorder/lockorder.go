// Package lockorder reports cycles in the mutex acquisition-order
// graph — the static face of ABBA deadlock — including cycles that
// only close across a task-spawn boundary.
//
// Contract encoded: the module's runtimes interleave foreign work
// with the caller's stack. Under help-first joins, a goroutine that
// holds lock A while it submits or joins work may execute a *stolen*
// task on its own stack; if any task in the system acquires B then A
// while a peer acquires A then B, the two orders form a cycle that a
// fixed-width pool turns into a hard deadlock (no spare worker exists
// to break the tie, unlike free-threaded Go). Quantifying OpenMP
// (PAPERS.md) finds misordered nested locking among the dominant
// real-world OpenMP defects; the AMT survey adds that the hazard
// worsens as scheduling moves from fork-join to message/shard
// routing, because the task that closes the cycle runs ever farther
// from the code that opened it.
//
// Mechanism: each function is summarized bottom-up over the
// interprocedural call graph into (a) the set of lock classes it may
// transitively acquire and (b) the acquisition-order edges it
// induces: an edge A -> B arises from acquiring B while holding A
// directly, from calling a function that (transitively) acquires B
// while holding A, or from passing a task to a runtime entry point
// while holding A when the task acquires B — the spawn-edge case, in
// which the acquisition happens on another worker (or on this very
// stack, via help-first stealing) while A is still held. Summaries
// cross package boundaries as analysis facts; the driver's
// dependency-order traversal makes callee facts available to
// callers. Cycles among the accumulated edges are reported at every
// in-package edge that participates in one.
//
// Lock identity is class-based (see interproc.LockClass): all
// instances of a struct field are one class. Self-edges (A -> A) are
// excluded from cycle detection — with instance conflation they are
// usually two different instances locked in sequence, and the
// genuinely recursive single-instance case is caught at runtime by
// the very first execution.
package lockorder

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"threading/internal/analysis"
	"threading/internal/analysis/interproc"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "report mutex acquisition-order cycles (ABBA deadlock), including " +
		"cycles that close across Spawn/SubmitCtx/ParallelFor task boundaries",
	Run: run,
}

// lockFact is the exported per-function summary.
type lockFact struct {
	// Acquires lists the lock classes the function may acquire,
	// transitively through calls (and through tasks it may run on the
	// caller's stack).
	Acquires []string
	// Edges are the acquisition-order edges the function induces,
	// transitively.
	Edges []orderEdge
}

func (*lockFact) AFact() {}

// orderEdge is one acquisition-order constraint From -> To.
type orderEdge struct {
	From, To         string
	FromDisp, ToDisp string
	// Pos is where the edge was discovered (the acquire, call, or
	// spawn site).
	Pos token.Pos
	// Via describes the mechanism for the diagnostic ("", "via call
	// to f", "in a task spawned while the lock is held").
	Via string
}

// maxSummary bounds per-function summary growth on pathological
// inputs; beyond it the summary saturates (sound for reporting
// precision, not completeness).
const maxSummary = 256

type summary struct {
	acquires map[string]string    // class -> display
	edges    map[[2]string]orderEdge // (from,to) -> first edge
}

func newSummary() *summary {
	return &summary{
		acquires: make(map[string]string),
		edges:    make(map[[2]string]orderEdge),
	}
}

func (s *summary) addAcquire(class, disp string) {
	if len(s.acquires) >= maxSummary {
		return
	}
	if _, ok := s.acquires[class]; !ok {
		s.acquires[class] = disp
	}
}

func (s *summary) addEdge(e orderEdge) {
	if e.From == e.To {
		return // see package doc: self-edges are instance-ambiguous
	}
	if len(s.edges) >= maxSummary {
		return
	}
	key := [2]string{e.From, e.To}
	if _, ok := s.edges[key]; !ok {
		s.edges[key] = e
	}
}

func (s *summary) fact() *lockFact {
	f := &lockFact{}
	for c := range s.acquires {
		f.Acquires = append(f.Acquires, c)
	}
	sort.Strings(f.Acquires)
	for _, e := range s.edges {
		f.Edges = append(f.Edges, e)
	}
	sort.Slice(f.Edges, func(i, j int) bool {
		a, b := f.Edges[i], f.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return f
}

func run(pass *analysis.Pass) error {
	g := interproc.Build(pass)
	order := g.Postorder()
	sums := make(map[*interproc.Node]*summary, len(order))
	for _, n := range order {
		sums[n] = summarize(pass, g, n, sums)
	}
	// Export facts for declared functions so dependent packages see
	// their lock behaviour.
	for fn, n := range g.ByFn {
		if s := sums[n]; s != nil && (len(s.acquires) > 0 || len(s.edges) > 0) {
			pass.ExportObjectFact(fn, s.fact())
		}
	}
	report(pass, sums)
	return nil
}

type heldLock struct {
	class, disp string
	pos         token.Pos
}

// summarize computes one node's lock summary from its body and the
// summaries of everything it references.
func summarize(pass *analysis.Pass, g *interproc.Graph, n *interproc.Node, sums map[*interproc.Node]*summary) *summary {
	s := newSummary()
	var held []heldLock

	analysis.WithStack(n.Body, func(nd ast.Node, stack []ast.Node) bool {
		if lit, ok := nd.(*ast.FuncLit); ok && lit != n.Lit {
			return false // nested literals are separate nodes
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, class, disp := interproc.LockOp(pass.TypesInfo, pass.Pkg, call); op != interproc.LockNone {
			deferred := len(stack) > 0 && interproc.IsDeferredCall(stack[len(stack)-1], call)
			switch {
			case op == interproc.LockAcquire && !deferred:
				for _, h := range held {
					s.addEdge(orderEdge{
						From: h.class, To: class,
						FromDisp: h.disp, ToDisp: disp,
						Pos: call.Pos(),
					})
				}
				s.addAcquire(class, disp)
				held = append(held, heldLock{class: class, disp: disp, pos: call.Pos()})
			case op == interproc.LockRelease && !deferred:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].class == class {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
			return true
		}

		for _, e := range g.EdgesAt(call) {
			target := calleeSummary(pass, e, sums)
			if target == nil {
				continue
			}
			// Propagate the callee's edges so cycles assembled from
			// pieces in different functions (and packages) are visible
			// to whoever holds the final piece.
			for _, te := range target.Edges {
				s.addEdge(te)
			}
			switch e.Kind {
			case interproc.EdgeCall:
				for _, c := range target.Acquires {
					for _, h := range held {
						s.addEdge(orderEdge{
							From: h.class, To: c,
							FromDisp: h.disp, ToDisp: shortClass(c),
							Pos: call.Pos(),
							Via: "via " + calleeName(e),
						})
					}
					s.addAcquire(c, shortClass(c))
				}
			case interproc.EdgeSpawn, interproc.EdgeLoopBody:
				for _, c := range target.Acquires {
					for _, h := range held {
						s.addEdge(orderEdge{
							From: h.class, To: c,
							FromDisp: h.disp, ToDisp: shortClass(c),
							Pos: call.Pos(),
							Via: "in a task passed to " + calleeName(e) + " while the lock is held",
						})
					}
					if e.Entry.OnCallerStack {
						// Help-first joins may run the task (or a
						// stolen peer) on this very stack.
						s.addAcquire(c, shortClass(c))
					}
				}
			}
		}
		return true
	})

	// Literals whose fate is unknown: fold their acquires (a caller
	// may invoke them) but induce no held-edges at the definition.
	for _, e := range n.Edges {
		if e.Kind != interproc.EdgeRef || e.Callee == nil {
			continue
		}
		if target := sums[e.Callee]; target != nil {
			for c, d := range target.acquires {
				s.addAcquire(c, d)
			}
			for _, te := range target.edges {
				s.addEdge(te)
			}
		}
	}
	return s
}

// calleeSummary resolves the lock summary of an edge target: local
// node summaries for in-package targets, imported facts for external
// ones.
func calleeSummary(pass *analysis.Pass, e *interproc.Edge, sums map[*interproc.Node]*summary) *lockFact {
	if e.Callee != nil {
		if s := sums[e.Callee]; s != nil {
			return s.fact()
		}
		return nil // recursion within an SCC: single-pass approximation
	}
	if e.Ext != nil {
		var f lockFact
		if pass.ImportObjectFact(e.Ext, &f) {
			return &f
		}
	}
	return nil
}

func calleeName(e *interproc.Edge) string {
	switch {
	case e.EntryFn != nil:
		return analysis.FuncName(e.EntryFn)
	case e.Ext != nil:
		return analysis.FuncName(e.Ext)
	case e.Callee != nil:
		return e.Callee.Name()
	}
	return "call"
}

// report finds cycles over the union of every summary's edges and
// reports each in-package edge participating in one.
func report(pass *analysis.Pass, sums map[*interproc.Node]*summary) {
	edges := make(map[[2]string]orderEdge)
	for _, s := range sums {
		for k, e := range s.edges {
			if _, ok := edges[k]; !ok {
				edges[k] = e
			}
		}
	}
	if len(edges) == 0 {
		return
	}
	adj := make(map[string][]string)
	for k := range edges {
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	inPkg := packageFiles(pass)

	reported := make(map[[2]string]bool)
	var keys [][2]string
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		e := edges[k]
		if reported[k] || !inPkg[pass.Fset.File(e.Pos)] {
			continue
		}
		// The edge closes a cycle iff From is reachable from To.
		path := findPath(adj, e.To, e.From)
		if path == nil {
			continue
		}
		reported[k] = true
		via := ""
		if e.Via != "" {
			via = " " + e.Via
		}
		pass.Reportf(e.Pos,
			"acquiring %q while %q is held%s closes the lock-order cycle %s (ABBA deadlock: a concurrent task may acquire the same locks in the opposite order)",
			e.ToDisp, e.FromDisp, via, cycleString(e, path))
	}
}

// findPath BFSes from -> to over adj and returns the node path
// (excluding from), or nil.
func findPath(adj map[string][]string, from, to string) []string {
	type item struct {
		node string
		prev int
	}
	queue := []item{{node: from, prev: -1}}
	seen := map[string]bool{from: true}
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		if cur.node == to {
			var rev []string
			for j := i; j != -1; j = queue[j].prev {
				rev = append(rev, queue[j].node)
			}
			path := make([]string, 0, len(rev))
			for j := len(rev) - 1; j >= 0; j-- {
				path = append(path, rev[j])
			}
			return path
		}
		next := adj[cur.node]
		sorted := append([]string(nil), next...)
		sort.Strings(sorted)
		for _, n := range sorted {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, item{node: n, prev: i})
			}
		}
	}
	return nil
}

// cycleString renders From -> To -> ... -> From with short class
// names.
func cycleString(e orderEdge, path []string) string {
	parts := []string{shortClass(e.From), shortClass(e.To)}
	for _, n := range path[1:] { // path[0] == e.To
		parts = append(parts, shortClass(n))
	}
	return strings.Join(parts, " -> ")
}

// shortClass trims the package path from a lock class for display:
// "threading/internal/x.Type.mu" -> "Type.mu".
func shortClass(class string) string {
	if i := strings.LastIndex(class, "/"); i >= 0 {
		class = class[i+1:]
	}
	if i := strings.IndexByte(class, '.'); i >= 0 {
		return class[i+1:]
	}
	return class
}

func packageFiles(pass *analysis.Pass) map[*token.File]bool {
	out := make(map[*token.File]bool, len(pass.Files))
	for _, f := range pass.Files {
		out[pass.Fset.File(f.Pos())] = true
	}
	return out
}
