package lockorder_test

import (
	"testing"

	"threading/internal/analysis/analysistest"
	"threading/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer,
		"testdata/src/a",
		"testdata/src/spawn",
		"testdata/src/clean",
	)
}
