// Fixture for the acceptance case: a two-mutex cycle that only
// closes across a Spawn edge. No single function acquires both locks
// in the e -> f order; the e -> f edge exists only because a task is
// spawned (and may be help-first-stolen back onto the spawner's
// stack) while e is held.
package spawn

import (
	"sync"

	"threading/internal/worksteal"
)

var (
	e sync.Mutex
	f sync.Mutex
)

func spawnSide(p *worksteal.Pool) {
	p.Run(func(c *worksteal.Ctx) {
		e.Lock()
		// The spawned task acquires f while this goroutine still
		// holds e: order edge e -> f across the spawn boundary.
		c.Spawn(func(cc *worksteal.Ctx) { // want `acquiring "f" while "e" is held in a task passed to Ctx.Spawn while the lock is held closes the lock-order cycle`
			f.Lock()
			f.Unlock()
		})
		e.Unlock()
		c.Sync()
	})
}

func plainSide() {
	f.Lock()
	e.Lock() // want `acquiring "e" while "f" is held closes the lock-order cycle`
	e.Unlock()
	f.Unlock()
}
