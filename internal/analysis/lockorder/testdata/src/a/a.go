package a

import "sync"

var (
	a sync.Mutex
	b sync.Mutex
)

// Classic ABBA: ab locks a then b, ba locks b then a.
func ab() {
	a.Lock()
	b.Lock() // want `acquiring "b" while "a" is held closes the lock-order cycle`
	b.Unlock()
	a.Unlock()
}

func ba() {
	b.Lock()
	a.Lock() // want `acquiring "a" while "b" is held closes the lock-order cycle`
	a.Unlock()
	b.Unlock()
}

// The cycle also closes through a call: holding a, call lockB, which
// locks b.
var (
	c sync.Mutex
	d sync.Mutex
)

func lockD() {
	d.Lock()
	d.Unlock()
}

func viaCall() {
	c.Lock()
	defer c.Unlock()
	lockD() // want `acquiring "d" while "c" is held via a.lockD closes the lock-order cycle`
}

func viaCallReverse() {
	d.Lock()
	c.Lock() // want `acquiring "c" while "d" is held closes the lock-order cycle`
	c.Unlock()
	d.Unlock()
}
