// Negative fixture: consistent lock ordering, nesting without
// reversal, and sequential (non-nested) acquisition produce no
// diagnostics.
package clean

import (
	"sync"

	"threading/internal/worksteal"
)

var (
	outer sync.Mutex
	inner sync.Mutex
)

// Consistent nesting order everywhere: outer before inner.
func first() {
	outer.Lock()
	inner.Lock()
	inner.Unlock()
	outer.Unlock()
}

func second() {
	outer.Lock()
	defer outer.Unlock()
	inner.Lock()
	defer inner.Unlock()
}

// Sequential acquisition: no order edge at all.
func sequential() {
	outer.Lock()
	outer.Unlock()
	inner.Lock()
	inner.Unlock()
}

// A task acquiring a lock while the spawner holds nothing induces no
// edge.
func spawnUnheld(p *worksteal.Pool) {
	p.Run(func(c *worksteal.Ctx) {
		c.Spawn(func(cc *worksteal.Ctx) {
			inner.Lock()
			inner.Unlock()
		})
		c.Sync()
	})
}

// Same field on two instances: instance-conflated self-edges are
// deliberately not reported (see package doc).
type node struct {
	mu   sync.Mutex
	next *node
}

func handOverHand(n *node) {
	n.mu.Lock()
	n.next.mu.Lock()
	n.next.mu.Unlock()
	n.mu.Unlock()
}
