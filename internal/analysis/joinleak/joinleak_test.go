package joinleak_test

import (
	"testing"

	"threading/internal/analysis/analysistest"
	"threading/internal/analysis/joinleak"
)

func TestJoinLeak(t *testing.T) {
	analysistest.Run(t, joinleak.Analyzer, "testdata/src/a")
}
