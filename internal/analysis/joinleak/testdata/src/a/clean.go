// Negative joinleak cases: nothing in this file may be reported.
package a

import (
	"context"

	"threading/internal/futures"
)

func joined() int {
	f := futures.Async(futures.LaunchAsync, func() (int, error) { return 1, nil })
	v, _ := f.Get()
	return v
}

func joinedCtx(ctx context.Context) error {
	t := futures.NewThread(func() {})
	return t.JoinCtx(ctx)
}

func detached() {
	t := futures.NewThread(func() {})
	t.Detach()
}

func joinedInClosure() func() {
	f := futures.Async(futures.LaunchAsync, func() (int, error) { return 1, nil })
	return func() { f.Get() }
}

func joinedLater() {
	t := futures.NewThread(func() {})
	defer t.Join()
}

func escapesAsArgument(join func(*futures.Thread)) {
	t := futures.NewThread(func() {})
	join(t)
}

func escapesByReturn() *futures.Future[int] {
	f := futures.Async(futures.LaunchDeferred, func() (int, error) { return 1, nil })
	return f
}

func escapesIntoSlice() []*futures.Future[int] {
	fs := make([]*futures.Future[int], 0, 1)
	f := futures.Async(futures.LaunchAsync, func() (int, error) { return 1, nil })
	fs = append(fs, f)
	return fs
}

func accessorNotCreator() {
	p := futures.NewPromise[int]()
	p.Future() // an accessor, not a fresh task: not a leak
	p.Set(1)
}

func combinatorConsumed(a, b *futures.Future[int]) ([]int, error) {
	all := futures.WhenAll(a, b)
	return all.Get()
}
