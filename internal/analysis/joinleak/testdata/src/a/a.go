// Positive joinleak cases: every annotated line must be reported.
package a

import (
	"threading"
	"threading/internal/futures"
)

func discardedFuture() {
	futures.Async(futures.LaunchAsync, func() (int, error) { return 1, nil }) // want `result of futures.Async is discarded`
}

func discardedThread() {
	futures.NewThread(func() {}) // want `result of futures.NewThread is discarded`
}

func blankFuture() {
	_ = futures.Async(futures.LaunchAsync, func() (int, error) { return 1, nil }) // want `result of futures.Async is discarded`
}

func neverConsumedFuture() {
	f := futures.Async(futures.LaunchAsync, func() (int, error) { return 1, nil }) // want `future "f" from futures.Async is never consumed`
	_ = f.Ready()                                                                  // observation does not discharge the join
}

func neverConsumedThread() {
	t := futures.NewThread(func() {}) // want `thread "t" from futures.NewThread is never consumed`
	_ = t.Joinable()
}

func rootPackageWrapper() {
	f := threading.Async(threading.LaunchAsync, func() (int, error) { return 1, nil }) // want `future "f" from threading.Async is never consumed`
	_ = f.WaitFor(0)
}

func varDecl() {
	var t = futures.NewThread(func() {}) // want `thread "t" from futures.NewThread is never consumed`
	_ = t.Joinable()
}

func discardedCombinator(a, b *futures.Future[int]) {
	futures.WhenAll(a, b) // want `result of futures.WhenAll is discarded`
}
