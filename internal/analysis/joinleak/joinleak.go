// Package joinleak reports futures and threads that are created but
// can never be joined.
//
// Contract encoded: every futures.Async / futures.NewThread handle
// (and every combinator future from Then/WhenAll/WhenAny) must
// eventually be consumed — Get/GetCtx on a future, Join/JoinCtx or an
// explicit Detach on a thread. A handle that is discarded, or bound to
// a local that is never consumed, leaves the underlying task running
// with nobody to observe its result or its panic: under the
// thread-per-task models that is a live goroutine pinned for the
// process lifetime, and in the paper's terms it is an unjoined spawn —
// the dominant bug class Kulkarni & Lumsdaine report for many-tasking
// runtimes.
//
// The analysis is intraprocedural and conservative: a handle that
// escapes the creating function (passed as an argument, returned,
// stored into a field, slice, map, or channel, or reassigned) is
// assumed joined elsewhere and not reported.
package joinleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"threading/internal/analysis"
)

const futuresPath = "threading/internal/futures"

// Analyzer is the joinleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "joinleak",
	Doc: "report futures.Async/NewThread handles that are discarded or " +
		"never consumed by Get/GetCtx/Join/JoinCtx/Detach",
	Run: run,
}

type handleKind int

const (
	kindNone handleKind = iota
	kindFuture
	kindThread
)

func (k handleKind) String() string {
	if k == kindThread {
		return "thread"
	}
	return "future"
}

// consumers maps each handle kind to the methods that discharge the
// join obligation. Observation-only methods (Ready, WaitFor,
// Joinable) intentionally do not.
var consumers = map[handleKind]map[string]bool{
	kindFuture: {"Get": true, "GetCtx": true},
	kindThread: {"Join": true, "JoinCtx": true, "Detach": true},
}

func consumerNames(k handleKind) string {
	if k == kindThread {
		return "Join/JoinCtx (or Detach)"
	}
	return "Get/GetCtx"
}

// handleType classifies t as a tracked handle.
func handleType(t types.Type) handleKind {
	if t == nil {
		return kindNone
	}
	switch {
	case analysis.IsNamed(t, futuresPath, "Future"):
		return kindFuture
	case analysis.IsNamed(t, futuresPath, "Thread"):
		return kindThread
	}
	return kindNone
}

// creatorCall reports whether call invokes a package-level function
// returning a fresh handle (futures.Async, futures.NewThread, the
// threading re-exports, combinators, and any helper with the same
// shape). Methods are excluded so accessors like Promise.Future do
// not register a second obligation for the same task.
func creatorCall(pass *analysis.Pass, call *ast.CallExpr) (handleKind, *types.Func) {
	callee := analysis.Callee(pass.TypesInfo, call)
	if callee == nil {
		return kindNone, nil
	}
	if sig, ok := callee.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return kindNone, nil
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return kindNone, nil
	}
	return handleType(tv.Type), callee
}

// candidate is one local variable bound to a fresh handle.
type candidate struct {
	kind    handleKind
	creator *types.Func
	pos     token.Pos
	name    string
	joined  bool
	escaped bool
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		runFile(pass, file)
	}
	return nil
}

func runFile(pass *analysis.Pass, file *ast.File) {
	candidates := make(map[*types.Var]*candidate)
	var order []*types.Var

	addCandidate := func(id *ast.Ident, kind handleKind, creator *types.Func) {
		obj, _ := pass.TypesInfo.Defs[id].(*types.Var)
		if obj == nil {
			return
		}
		if prev, ok := candidates[obj]; ok {
			// Redefinition in a nested scope shadows; track the
			// variable conservatively by disqualifying both.
			prev.escaped = true
			return
		}
		candidates[obj] = &candidate{kind: kind, creator: creator, pos: id.Pos(), name: id.Name}
		order = append(order, obj)
	}

	reportDiscard := func(pos token.Pos, kind handleKind, creator *types.Func) {
		pass.Reportf(pos,
			"result of %s is discarded: the %s it starts can never be joined; call %s",
			analysis.FuncName(creator), kind, consumerNames(kind))
	}

	// Phase 1: collect creation sites — discarded results and local
	// bindings.
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if kind, creator := creatorCall(pass, call); kind != kindNone {
					reportDiscard(call.Pos(), kind, creator)
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				kind, creator := creatorCall(pass, call)
				if kind == kindNone {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue // stored into a field/index: escapes
				}
				if id.Name == "_" {
					reportDiscard(call.Pos(), kind, creator)
					continue
				}
				if n.Tok == token.DEFINE {
					addCandidate(id, kind, creator)
				}
				// Plain reassignment (tok == ASSIGN) is handled in
				// phase 2: the LHS use disqualifies the variable.
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, v := range n.Values {
				call, ok := ast.Unparen(v).(*ast.CallExpr)
				if !ok {
					continue
				}
				kind, creator := creatorCall(pass, call)
				if kind == kindNone {
					continue
				}
				if n.Names[i].Name == "_" {
					reportDiscard(call.Pos(), kind, creator)
					continue
				}
				addCandidate(n.Names[i], kind, creator)
			}
		}
		return true
	})

	if len(candidates) == 0 {
		return
	}

	// Phase 2: classify every use of each candidate. A consuming
	// method call discharges the obligation; an observation-only
	// method is neutral; anything else (argument, return, store,
	// reassignment, address-taking) is an escape and silences the
	// check.
	analysis.WithStack(file, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, _ := pass.TypesInfo.Uses[id].(*types.Var)
		if obj == nil {
			return true
		}
		c, ok := candidates[obj]
		if !ok {
			return true
		}
		if len(stack) >= 2 {
			if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.X == id {
				if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == sel {
					if consumers[c.kind][sel.Sel.Name] {
						c.joined = true
					}
					// Non-consuming methods (Ready, WaitFor,
					// Joinable) neither join nor escape.
					return true
				}
				// Method value or field-like use: escapes.
				c.escaped = true
				return true
			}
		}
		c.escaped = true
		return true
	})

	for _, obj := range order {
		c := candidates[obj]
		if c.joined || c.escaped {
			continue
		}
		pass.Reportf(c.pos,
			"%s %q from %s is never consumed: call %s on every path or the task leaks",
			c.kind, c.name, analysis.FuncName(c.creator), consumerNames(c.kind))
	}
}
