// Positive grainconst cases: every annotated line must be reported.
package a

import (
	"threading/internal/kernels"
	"threading/internal/models"
	"threading/internal/worksteal"
)

func grainOfOne(c *worksteal.Ctx, n int) {
	c.ForDAC(0, n, 1, func(cc *worksteal.Ctx, l, h int) {}) // want `constant grain 1 passed to Ctx.ForDAC`
}

func forEachGrainOfOne(c *worksteal.Ctx, n int) {
	c.ForEach(0, n, 1, func(cc *worksteal.Ctx, i int) {}) // want `constant grain 1 passed to Ctx.ForEach`
}

func uncutFib(m models.Model) uint64 {
	return kernels.FibTask(m, 30, 0) // want `constant cutoff 0 passed to kernels.FibTask disables the sequential cut-off`
}

func cutoffOfOne(m models.Model) uint64 {
	return kernels.FibTask(m, 30, 1) // want `constant cutoff 1 passed to kernels.FibTask disables the sequential cut-off`
}

// Named constants count too: the value is what matters.
const degenerate = 1

func namedConstant(c *worksteal.Ctx, n int) {
	c.ForDAC(0, n, degenerate, func(cc *worksteal.Ctx, l, h int) {}) // want `constant grain 1 passed to Ctx.ForDAC`
}

// Local helpers with the contract parameter names are covered by the
// same check.
func decompose(lo, hi, grain int) {}

func localHelper() {
	decompose(0, 1<<20, 1) // want `constant grain 1 passed to a.decompose`
}
