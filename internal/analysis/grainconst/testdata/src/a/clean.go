// Negative grainconst cases: nothing in this file may be reported.
package a

import (
	"threading/internal/kernels"
	"threading/internal/models"
	"threading/internal/worksteal"
)

// Grain 0 selects the runtime's default grain: the recommended form.
func defaultGrain(c *worksteal.Ctx, n int) {
	c.ForDAC(0, n, 0, func(cc *worksteal.Ctx, l, h int) {})
}

// A coarse constant grain is fine.
func coarseGrain(c *worksteal.Ctx, n int) {
	c.ForEach(0, n, 64, func(cc *worksteal.Ctx, i int) {})
}

// A real cut-off is fine.
func cutFib(m models.Model) uint64 {
	return kernels.FibTask(m, 30, 18)
}

// Non-constant arguments are out of scope for a static check.
func dynamicGrain(c *worksteal.Ctx, n, grain int) {
	c.ForDAC(0, n, grain, func(cc *worksteal.Ctx, l, h int) {})
}

// A parameter that merely contains the word is not the contract
// parameter.
func unrelated(grainy int) {}

func callsUnrelated() {
	unrelated(1)
}
