// Package grainconst reports recursive-decomposition calls whose
// constant grain or cut-off degenerates into one task per element.
//
// Contract encoded: the paper's task-parallelism stress test (Fig. 5,
// fib) only terminates in reasonable time because recursion switches
// to sequential execution below a cut-off — the uncut std::thread and
// std::async configurations create one live thread per call-tree
// branch and hang beyond fib(20). The same failure mode exists for
// loops: a divide-and-conquer loop (ForDAC/ForEach) with a grain of 1
// spawns one task per iteration, so scheduling overhead swamps the
// body. This analyzer flags call sites that bake the degenerate
// constant in: an argument of 1 for a parameter named "grain" (0
// selects the runtime's default grain and is fine), and an argument
// of 0 or 1 for a parameter named "cutoff" (which this module's APIs
// document as disabling the cut-off entirely).
//
// Deliberate blowup demonstrations — reproducing the paper's uncut
// runs — should carry a //threadvet:ignore grainconst directive with
// the reason.
package grainconst

import (
	"go/ast"
	"go/constant"
	"go/types"

	"threading/internal/analysis"
)

// Analyzer is the grainconst pass.
var Analyzer = &analysis.Analyzer{
	Name: "grainconst",
	Doc: "report constant grain 1 / cutoff 0|1 arguments that decompose " +
		"into one task per element (the paper's fib-blowup failure mode)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			check(pass, call)
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, call *ast.CallExpr) {
	callee := analysis.Callee(pass.TypesInfo, call)
	if callee == nil {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		if sig.Variadic() && i == sig.Params().Len()-1 {
			break
		}
		pname := sig.Params().At(i).Name()
		if pname != "grain" && pname != "cutoff" {
			continue
		}
		v, ok := constIntArg(pass, call.Args[i])
		if !ok {
			continue
		}
		switch {
		case pname == "grain" && v == 1:
			pass.Reportf(call.Args[i].Pos(),
				"constant grain 1 passed to %s: one task per iteration swamps the body with scheduling overhead; pass 0 for the default grain or a coarser constant",
				analysis.FuncName(callee))
		case pname == "cutoff" && (v == 0 || v == 1):
			pass.Reportf(call.Args[i].Pos(),
				"constant cutoff %d passed to %s disables the sequential cut-off: recursion spawns a task per leaf (the paper's uncut fib hangs the thread-backed models); use a cutoff >= 2",
				v, analysis.FuncName(callee))
		}
	}
}

func constIntArg(pass *analysis.Pass, arg ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
