package grainconst_test

import (
	"testing"

	"threading/internal/analysis/analysistest"
	"threading/internal/analysis/grainconst"
)

func TestGrainConst(t *testing.T) {
	analysistest.Run(t, grainconst.Analyzer, "testdata/src/a")
}
