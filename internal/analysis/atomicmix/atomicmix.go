// Package atomicmix reports struct fields that are accessed both
// through sync/atomic operations and through plain loads or stores.
//
// Contract encoded: a memory location is either always accessed
// atomically or always protected by a lock — never a mixture. Mixed
// access is exactly the bug class the Chase-Lev deque's top/bottom
// indices invite: the THE protocol is only correct when every access
// to the shared indices is atomic, and one forgotten plain read turns
// a published bound into a torn or stale one that the race detector
// may or may not catch (this module's deques use the atomic.Int64
// wrapper types precisely so the compiler rules the mixture out; this
// analyzer covers code that still uses the function-based API on
// plain fields).
//
// The check is per package: every &x.f argument to a sync/atomic
// Load/Store/Add/Swap/CompareAndSwap/And/Or call registers field f as
// atomic; any other selection of f in the package is then reported as
// a plain access.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"threading/internal/analysis"
)

// Analyzer is the atomicmix pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "report struct fields accessed both via sync/atomic and via " +
		"plain loads/stores",
	Run: run,
}

// atomicOp reports whether name is a sync/atomic operation that takes
// the address of the word it operates on.
func atomicOp(name string) bool {
	for _, prefix := range []string{
		"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or",
	} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

type fieldUse struct {
	pos token.Pos
	op  string // atomic operation name, e.g. "LoadInt64"
}

func run(pass *analysis.Pass) error {
	atomicUses := make(map[*types.Var]fieldUse) // first atomic use per field
	inAtomicArg := make(map[*ast.SelectorExpr]bool)

	// Phase 1: record fields whose address feeds a sync/atomic call.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.Callee(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil ||
				callee.Pkg().Path() != "sync/atomic" || !atomicOp(callee.Name()) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				f := selectedField(pass, sel)
				if f == nil {
					continue
				}
				inAtomicArg[sel] = true
				if _, seen := atomicUses[f]; !seen {
					atomicUses[f] = fieldUse{pos: sel.Pos(), op: callee.Name()}
				}
			}
			return true
		})
	}
	if len(atomicUses) == 0 {
		return nil
	}

	// Phase 2: every other selection of those fields is a plain
	// access.
	var diags []analysis.Diagnostic
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicArg[sel] {
				return true
			}
			f := selectedField(pass, sel)
			if f == nil {
				return true
			}
			use, ok := atomicUses[f]
			if !ok {
				return true
			}
			diags = append(diags, analysis.Diagnostic{
				Pos:      sel.Pos(),
				Analyzer: pass.Analyzer.Name,
				Message: "field " + fieldName(f) + " is accessed with atomic." + use.op +
					" (" + pass.Fset.Position(use.pos).String() +
					") but read/written plainly here; mixed access is racy",
			})
			return true
		})
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pass.Report(d)
	}
	return nil
}

// selectedField resolves sel to the struct field it selects, or nil.
func selectedField(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	f, _ := s.Obj().(*types.Var)
	return f
}

func fieldName(f *types.Var) string {
	return f.Name()
}
