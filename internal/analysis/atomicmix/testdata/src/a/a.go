// Positive atomicmix cases: every annotated line must be reported.
package a

import "sync/atomic"

// counter mixes atomic and plain access — the Chase-Lev top/bottom
// bug class.
type counter struct {
	hits  int64
	cold  int64
	ticks uint32
}

func (c *counter) record() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddUint32(&c.ticks, 1)
}

func (c *counter) read() int64 {
	return c.hits // want `field hits is accessed with atomic.AddInt64 .* but read/written plainly here`
}

func (c *counter) reset() {
	c.hits = 0 // want `field hits is accessed with atomic.AddInt64 .* but read/written plainly here`
	c.cold = 0 // cold is never touched atomically: fine
}

func (c *counter) tick() uint32 {
	t := c.ticks // want `field ticks is accessed with atomic.AddUint32 .* but read/written plainly here`
	return t
}

func casMix(c *counter) bool {
	if c.hits > 0 { // want `field hits is accessed with atomic.AddInt64 .* but read/written plainly here`
		return atomic.CompareAndSwapInt64(&c.hits, 1, 0)
	}
	return false
}
