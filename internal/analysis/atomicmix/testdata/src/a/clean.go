// Negative atomicmix cases: nothing in this file may be reported.
package a

import (
	"sync"
	"sync/atomic"
)

// allAtomic only ever goes through sync/atomic: consistent.
type allAtomic struct {
	n int64
}

func (a *allAtomic) inc() { atomic.AddInt64(&a.n, 1) }

func (a *allAtomic) get() int64 { return atomic.LoadInt64(&a.n) }

// allPlain is guarded by a mutex and never touched atomically.
type allPlain struct {
	mu sync.Mutex
	n  int64
}

func (p *allPlain) inc() {
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
}

// typedAtomic uses the wrapper types, where mixing is impossible by
// construction — the style this module's deques use.
type typedAtomic struct {
	n atomic.Int64
}

func (t *typedAtomic) inc() { t.n.Add(1) }

func (t *typedAtomic) get() int64 { return t.n.Load() }
