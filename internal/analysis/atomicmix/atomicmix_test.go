package atomicmix_test

import (
	"testing"

	"threading/internal/analysis/analysistest"
	"threading/internal/analysis/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, atomicmix.Analyzer, "testdata/src/a")
}
