// Package core ties the reproduction together: it coordinates the
// qualitative comparison (feature tables), the six threading-model
// configurations, and the figure-by-figure benchmark harness into a
// single suite that regenerates the paper's evaluation. The
// user-facing API is re-exported by the repository's root package
// (threading); the CLI tools in cmd/ are thin wrappers over this
// package.
package core

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"threading/internal/features"
	"threading/internal/harness"
	"threading/internal/models"
	"threading/internal/tracez"
	"threading/internal/worksteal"
)

// SuiteConfig selects what RunSuite executes.
type SuiteConfig struct {
	// Experiments lists figure IDs ("fig1".."fig10"). Empty selects
	// all.
	Experiments []string
	// Threads, Reps, Scale, Verify configure each experiment run; see
	// harness.Config.
	Threads []int
	Reps    int
	Scale   float64
	Verify  bool
	// Partitioner selects the loop partitioner for the work-stealing
	// models (see harness.Config.Partitioner). Leave at the zero
	// value, worksteal.Eager, to reproduce the paper's figures.
	Partitioner worksteal.Partitioner
	// Stats appends per-cell scheduler counters to each experiment's
	// table output (ignored for CSV).
	Stats bool
	// CSV switches output from human-readable tables to CSV.
	CSV bool
	// KeepSamples retains the raw per-repetition timings in each
	// result's RawSamples (see harness.Config.KeepSamples), so the
	// run can be exported in the benchmark-gate sample schema.
	KeepSamples bool
	// Tracer, when non-nil, records scheduler events from every model
	// the suite constructs (see harness.Config.Tracer).
	Tracer *tracez.Tracer
	// Shards splits each pooled model's runtime into this many shards
	// behind a shard.Resolver (see harness.Config.Shards): 0 disables
	// sharding, a negative value selects GOMAXPROCS shards.
	Shards int
	// Balancer names the resolver's balancer when Shards is non-zero
	// (see harness.Config.Balancer).
	Balancer string
	// Pinned locks the pooled runtimes' workers to OS threads (see
	// harness.Config.Pinned).
	Pinned bool
}

// RunSuite executes the selected experiments and writes their tables
// to out. It returns the collected results for programmatic use.
func RunSuite(cfg SuiteConfig, out io.Writer) ([]*harness.Result, error) {
	return RunSuiteCtx(context.Background(), cfg, out)
}

// RunSuiteCtx is RunSuite with cooperative cancellation: a canceled
// or expired context aborts the suite at the next measurement
// boundary and the context's error is returned. Results of
// experiments that completed before the cancellation are returned
// alongside the error.
func RunSuiteCtx(ctx context.Context, cfg SuiteConfig, out io.Writer) ([]*harness.Result, error) {
	ids := cfg.Experiments
	if len(ids) == 0 {
		ids = harness.IDs()
	}
	var results []*harness.Result
	for _, id := range ids {
		e, ok := harness.ByID(id)
		if !ok {
			return nil, fmt.Errorf("core: unknown experiment %q (have %v)", id, harness.IDs())
		}
		start := time.Now()
		res, err := harness.RunCtx(ctx, e, harness.Config{
			Threads:     cfg.Threads,
			Reps:        cfg.Reps,
			Scale:       cfg.Scale,
			Verify:      cfg.Verify,
			Partitioner: cfg.Partitioner,
			Stats:       cfg.Stats,
			KeepSamples: cfg.KeepSamples,
			Tracer:      cfg.Tracer,
			Shards:      cfg.Shards,
			Balancer:    cfg.Balancer,
			Pinned:      cfg.Pinned,
		})
		if err != nil {
			return results, err
		}
		if cfg.CSV {
			res.RenderCSV(out)
		} else {
			res.Render(out)
			res.RenderStats(out)
			fmt.Fprintf(out, "(experiment wall time: %v)\n\n", time.Since(start).Round(time.Millisecond))
		}
		results = append(results, res)
	}
	return results, nil
}

// FeatureReport writes the paper's Tables I-III to out. tables
// selects which (1..3); empty selects all.
func FeatureReport(tables []int, out io.Writer) error {
	want := map[int]bool{}
	for _, n := range tables {
		if n < 1 || n > 3 {
			return fmt.Errorf("core: no table %d (have 1..3)", n)
		}
		want[n] = true
	}
	var sb strings.Builder
	for _, t := range features.Tables() {
		if len(want) > 0 && !want[t.Number] {
			continue
		}
		t.Render(&sb)
		sb.WriteString("\n")
	}
	_, err := io.WriteString(out, sb.String())
	return err
}

// Summary condenses one result into the paper-shape assertions the
// EXPERIMENTS.md log records: who wins, who loses, by what factor.
type Summary struct {
	Experiment string
	Threads    int
	Best       string
	Worst      string
	// WorstOverBest is time(worst)/time(best) at Threads.
	WorstOverBest float64
}

// Summarize extracts the Summary at the largest measured thread
// count.
func Summarize(r *harness.Result) Summary {
	t := r.Threads[len(r.Threads)-1]
	best, worst := r.BestModel(t), r.WorstModel(t)
	return Summary{
		Experiment:    r.Experiment.ID,
		Threads:       t,
		Best:          best,
		Worst:         worst,
		WorstOverBest: r.Ratio(worst, best, t),
	}
}

// ModelNames returns the registered model names (sorted).
func ModelNames() []string { return models.Names() }

// NewModel constructs a threading model by name.
func NewModel(name string, threads int) (models.Model, error) {
	return models.New(name, threads)
}
