package core

import (
	"strings"
	"testing"
)

func TestModelNames(t *testing.T) {
	if len(ModelNames()) != 6 {
		t.Fatalf("ModelNames = %v", ModelNames())
	}
}

func TestNewModel(t *testing.T) {
	m, err := NewModel("omp_for", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Threads() != 2 {
		t.Fatalf("Threads = %d", m.Threads())
	}
	if _, err := NewModel("nope", 2); err == nil {
		t.Fatal("NewModel accepted unknown name")
	}
}

func TestFeatureReportAll(t *testing.T) {
	var sb strings.Builder
	if err := FeatureReport(nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"TABLE I:", "TABLE II:", "TABLE III:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q", want)
		}
	}
}

func TestFeatureReportSelect(t *testing.T) {
	var sb strings.Builder
	if err := FeatureReport([]int{2}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "TABLE I:") || !strings.Contains(out, "TABLE II:") {
		t.Error("table selection wrong")
	}
	if err := FeatureReport([]int{7}, &sb); err == nil {
		t.Error("accepted table 7")
	}
}

func TestRunSuiteSingle(t *testing.T) {
	var sb strings.Builder
	results, err := RunSuite(SuiteConfig{
		Experiments: []string{"fig2"},
		Threads:     []int{1, 2},
		Reps:        1,
		Scale:       0.002,
		Verify:      true,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Experiment.ID != "fig2" {
		t.Fatalf("results = %v", results)
	}
	if !strings.Contains(sb.String(), "fig2") {
		t.Error("output lacks experiment id")
	}
	sum := Summarize(results[0])
	if sum.Experiment != "fig2" || sum.Threads != 2 || sum.Best == "" || sum.Worst == "" {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.WorstOverBest < 1 {
		t.Fatalf("WorstOverBest = %g < 1", sum.WorstOverBest)
	}
}

func TestRunSuiteCSV(t *testing.T) {
	var sb strings.Builder
	_, err := RunSuite(SuiteConfig{
		Experiments: []string{"fig1"},
		Threads:     []int{1},
		Reps:        1,
		Scale:       0.001,
		CSV:         true,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "experiment,model,threads") {
		t.Error("CSV output missing header")
	}
}

func TestRunSuiteUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if _, err := RunSuite(SuiteConfig{Experiments: []string{"fig42"}}, &sb); err == nil {
		t.Fatal("RunSuite accepted unknown experiment")
	}
}
