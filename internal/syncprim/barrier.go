// Package syncprim implements the synchronization primitives the
// threading runtimes in this repository are built on: barriers (two
// algorithms, ablated in the benchmarks), spin and ticket locks, a
// counting semaphore and a countdown latch.
//
// The paper compares programming models partly by the synchronization
// constructs they expose (Table II); this package is the substrate on
// which internal/forkjoin realizes the OpenMP-style barrier, critical
// and single constructs.
package syncprim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Barrier is a reusable rendezvous point for a fixed number of
// participants: each Wait call blocks until all participants of the
// current phase have arrived.
type Barrier interface {
	// Wait blocks the caller until all participants have called Wait
	// for the current phase, then releases them all and begins a new
	// phase. It returns true for exactly one (arbitrary) participant
	// per phase, which lets callers implement "single" semantics.
	Wait() bool
	// Participants reports the number of parties the barrier was
	// created for.
	Participants() int
}

// spinRounds is how long a barrier waiter spins before blocking.
// Spinning briefly keeps short rendezvous off the scheduler; blocking
// afterwards keeps long waits from burning a core.
const spinRounds = 64

// SenseBarrier is a sense-reversing centralized barrier. Arrivals
// decrement a shared counter; the last arrival resets the counter and
// flips the phase sense, releasing the spinning waiters. Waiters spin
// briefly on the sense word before falling back to a condition
// variable, so the barrier is fast when all parties arrive together
// and civilized when they do not.
type SenseBarrier struct {
	n     int
	count atomic.Int64
	sense atomic.Uint64 // phase number, incremented on release

	mu   sync.Mutex
	cond *sync.Cond
}

// NewSenseBarrier returns a sense-reversing barrier for n participants.
// n must be at least 1.
func NewSenseBarrier(n int) *SenseBarrier {
	if n < 1 {
		panic("syncprim: barrier needs at least 1 participant")
	}
	b := &SenseBarrier{n: n}
	b.count.Store(int64(n))
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Participants reports the number of parties.
func (b *SenseBarrier) Participants() int { return b.n }

// Wait blocks until all participants arrive. The last arrival returns
// true; all others return false.
func (b *SenseBarrier) Wait() bool {
	phase := b.sense.Load()
	if b.count.Add(-1) == 0 {
		// Last arrival: reset and release.
		b.count.Store(int64(b.n))
		b.mu.Lock()
		b.sense.Add(1)
		b.cond.Broadcast()
		b.mu.Unlock()
		return true
	}
	for i := 0; i < spinRounds; i++ {
		if b.sense.Load() != phase {
			return false
		}
		runtime.Gosched()
	}
	b.mu.Lock()
	for b.sense.Load() == phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
	return false
}

// CentralBarrier is a textbook mutex-and-condition-variable barrier.
// It exists as the ablation partner of SenseBarrier: every arrival
// takes the lock, so it serializes arrivals where SenseBarrier uses a
// single atomic decrement.
type CentralBarrier struct {
	n     int
	mu    sync.Mutex
	cond  *sync.Cond
	count int
	phase uint64
}

// NewCentralBarrier returns a lock-based barrier for n participants.
// n must be at least 1.
func NewCentralBarrier(n int) *CentralBarrier {
	if n < 1 {
		panic("syncprim: barrier needs at least 1 participant")
	}
	b := &CentralBarrier{n: n, count: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Participants reports the number of parties.
func (b *CentralBarrier) Participants() int { return b.n }

// Wait blocks until all participants arrive. The last arrival returns
// true; all others return false.
func (b *CentralBarrier) Wait() bool {
	b.mu.Lock()
	phase := b.phase
	b.count--
	if b.count == 0 {
		b.count = b.n
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return true
	}
	for phase == b.phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
	return false
}
