package syncprim

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func barriers(n int) map[string]Barrier {
	return map[string]Barrier{
		"sense":   NewSenseBarrier(n),
		"central": NewCentralBarrier(n),
	}
}

func TestBarrierPhases(t *testing.T) {
	const (
		parties = 4
		phases  = 50
	)
	for name, b := range barriers(parties) {
		t.Run(name, func(t *testing.T) {
			if b.Participants() != parties {
				t.Fatalf("Participants = %d, want %d", b.Participants(), parties)
			}
			// counter[p] must be exactly `parties` after phase p: no
			// participant may enter phase p+1 before all finished p.
			counters := make([]atomic.Int64, phases)
			var wg sync.WaitGroup
			errc := make(chan string, parties)
			for w := 0; w < parties; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for p := 0; p < phases; p++ {
						counters[p].Add(1)
						b.Wait()
						if got := counters[p].Load(); got != parties {
							errc <- "phase " + string(rune('0'+p%10)) + " incomplete at barrier exit"
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errc)
			for msg := range errc {
				t.Fatal(msg)
			}
		})
	}
}

func TestBarrierSingleWinner(t *testing.T) {
	const parties = 6
	for name, b := range barriers(parties) {
		t.Run(name, func(t *testing.T) {
			const phases = 30
			var winners atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < parties; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for p := 0; p < phases; p++ {
						if b.Wait() {
							winners.Add(1)
						}
					}
				}()
			}
			wg.Wait()
			if winners.Load() != phases {
				t.Fatalf("got %d winners over %d phases, want exactly one per phase",
					winners.Load(), phases)
			}
		})
	}
}

func TestBarrierSolo(t *testing.T) {
	for name, b := range barriers(1) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 10; i++ {
				if !b.Wait() {
					t.Fatal("solo participant must always be the releaser")
				}
			}
		})
	}
}

func TestBarrierPanicsOnZero(t *testing.T) {
	for _, ctor := range []func() Barrier{
		func() Barrier { return NewSenseBarrier(0) },
		func() Barrier { return NewCentralBarrier(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for 0 participants")
				}
			}()
			ctor()
		}()
	}
}

func TestLocksMutualExclusion(t *testing.T) {
	locks := map[string]sync.Locker{
		"spin":   new(SpinLock),
		"ticket": new(TicketLock),
	}
	for name, l := range locks {
		t.Run(name, func(t *testing.T) {
			const (
				workers = 8
				iters   = 2000
			)
			counter := 0 // deliberately unsynchronized; the lock must protect it
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						l.Lock()
						counter++
						l.Unlock()
					}
				}()
			}
			wg.Wait()
			if counter != workers*iters {
				t.Fatalf("counter = %d, want %d (lost updates)", counter, workers*iters)
			}
		})
	}
}

func TestSpinLockTryLock(t *testing.T) {
	var l SpinLock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}

func TestLatch(t *testing.T) {
	l := NewLatch(3)
	released := make(chan struct{})
	go func() {
		l.Wait()
		close(released)
	}()
	for i := 0; i < 2; i++ {
		l.Done()
		select {
		case <-released:
			t.Fatal("latch opened early")
		case <-time.After(time.Millisecond):
		}
	}
	l.Done()
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("latch never opened")
	}
	// Wait on an open latch must not block.
	l.Wait()
	if l.Count() != 0 {
		t.Fatalf("Count = %d, want 0", l.Count())
	}
}

func TestLatchAdd(t *testing.T) {
	l := NewLatch(1)
	l.Add(2)
	if l.Count() != 3 {
		t.Fatalf("Count = %d, want 3", l.Count())
	}
	l.Done()
	l.Done()
	l.Done()
	l.Wait()
}

func TestLatchNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative count")
		}
	}()
	l := NewLatch(0)
	l.Done()
}

func TestSemaphore(t *testing.T) {
	s := NewSemaphore(2)
	s.Acquire()
	s.Acquire()
	if s.TryAcquire() {
		t.Fatal("TryAcquire succeeded with no permits")
	}
	if s.Available() != 0 {
		t.Fatalf("Available = %d, want 0", s.Available())
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire failed with a free permit")
	}
	s.Release()
	s.Release()
	if s.Available() != 2 {
		t.Fatalf("Available = %d, want 2", s.Available())
	}
}

// TestSemaphoreBounds checks the semaphore invariant: with n permits,
// at most n goroutines are ever inside the critical region.
func TestSemaphoreBounds(t *testing.T) {
	check := func(permits8 uint8) bool {
		permits := int(permits8%4) + 1
		s := NewSemaphore(permits)
		var inside, peak atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < 16; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					s.Acquire()
					cur := inside.Add(1)
					for {
						p := peak.Load()
						if cur <= p || peak.CompareAndSwap(p, cur) {
							break
						}
					}
					inside.Add(-1)
					s.Release()
				}
			}()
		}
		wg.Wait()
		return peak.Load() <= int64(permits)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBarrier(b *testing.B) {
	for _, parties := range []int{2, 4} {
		ctors := map[string]func(int) Barrier{
			"sense":   func(n int) Barrier { return NewSenseBarrier(n) },
			"central": func(n int) Barrier { return NewCentralBarrier(n) },
		}
		for name, ctor := range ctors {
			b.Run(name+"/p="+string(rune('0'+parties)), func(b *testing.B) {
				bar := ctor(parties)
				var wg sync.WaitGroup
				b.ResetTimer()
				for w := 0; w < parties; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < b.N; i++ {
							bar.Wait()
						}
					}()
				}
				wg.Wait()
			})
		}
	}
}

func BenchmarkLocks(b *testing.B) {
	locks := map[string]sync.Locker{
		"spin":   new(SpinLock),
		"ticket": new(TicketLock),
		"mutex":  new(sync.Mutex),
	}
	for name, l := range locks {
		b.Run(name, func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					l.Lock()
					l.Unlock() //nolint:staticcheck // empty critical section is the point
				}
			})
		})
	}
}
