package syncprim

import (
	"runtime"
	"sync/atomic"
)

// SpinLock is a test-and-test-and-set spin lock. It models the cheap
// user-space locks threading runtimes use for short critical sections
// (for example OpenMP's omp_lock in its speculative configurations).
// The zero value is an unlocked SpinLock.
type SpinLock struct {
	state atomic.Uint32
}

// Lock acquires the lock, spinning with exponential yielding until it
// is available.
func (l *SpinLock) Lock() {
	for {
		if l.state.CompareAndSwap(0, 1) {
			return
		}
		// Test-and-test-and-set: spin on the read to avoid hammering
		// the cache line with CAS traffic.
		for l.state.Load() != 0 {
			runtime.Gosched()
		}
	}
}

// TryLock acquires the lock without blocking and reports whether it
// succeeded.
func (l *SpinLock) TryLock() bool {
	return l.state.CompareAndSwap(0, 1)
}

// Unlock releases the lock. It must only be called by the holder.
func (l *SpinLock) Unlock() {
	l.state.Store(0)
}

// TicketLock is a FIFO spin lock: acquirers take a ticket and wait for
// the grant counter to reach it, so the lock is fair under contention
// (unlike SpinLock, where a fast core can barge repeatedly). The zero
// value is an unlocked TicketLock.
type TicketLock struct {
	next  atomic.Uint64
	grant atomic.Uint64
}

// Lock acquires the lock in FIFO order.
func (l *TicketLock) Lock() {
	ticket := l.next.Add(1) - 1
	for l.grant.Load() != ticket {
		runtime.Gosched()
	}
}

// Unlock releases the lock to the next ticket holder. It must only be
// called by the holder.
func (l *TicketLock) Unlock() {
	l.grant.Add(1)
}
