package syncprim

import (
	"sync"
	"sync/atomic"
)

// Latch is a single-use countdown latch: Wait blocks until the count
// reaches zero. It is the join primitive beneath taskwait-style
// synchronization (OpenMP taskwait, cilk_sync, std::future::get all
// reduce to "wait until N outstanding children finish").
type Latch struct {
	count atomic.Int64
	mu    sync.Mutex
	cond  *sync.Cond
}

// NewLatch returns a latch that opens after n calls to Done.
// n must be non-negative.
func NewLatch(n int) *Latch {
	if n < 0 {
		panic("syncprim: negative latch count")
	}
	l := &Latch{}
	l.count.Store(int64(n))
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Add increases the outstanding count by delta. It must not be called
// after the latch has opened.
func (l *Latch) Add(delta int) {
	if l.count.Add(int64(delta)) < 0 {
		panic("syncprim: latch count went negative")
	}
}

// Done decrements the count, opening the latch when it reaches zero.
func (l *Latch) Done() {
	n := l.count.Add(-1)
	if n < 0 {
		panic("syncprim: latch count went negative")
	}
	if n == 0 {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// Count reports the current outstanding count.
func (l *Latch) Count() int { return int(l.count.Load()) }

// Wait blocks until the count reaches zero.
func (l *Latch) Wait() {
	if l.count.Load() == 0 {
		return
	}
	l.mu.Lock()
	for l.count.Load() != 0 {
		l.cond.Wait()
	}
	l.mu.Unlock()
}

// Semaphore is a counting semaphore built on a mutex and condition
// variable. It backs throttling in the runtimes (bounding outstanding
// oversubscribed work, mirroring thread-pool size limits in
// breadth-first OpenMP task scheduling).
type Semaphore struct {
	mu      sync.Mutex
	cond    *sync.Cond
	permits int
}

// NewSemaphore returns a semaphore holding n permits. n must be
// non-negative.
func NewSemaphore(n int) *Semaphore {
	if n < 0 {
		panic("syncprim: negative semaphore permits")
	}
	s := &Semaphore{permits: n}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Acquire takes one permit, blocking until one is available.
func (s *Semaphore) Acquire() {
	s.mu.Lock()
	for s.permits == 0 {
		s.cond.Wait()
	}
	s.permits--
	s.mu.Unlock()
}

// TryAcquire takes one permit without blocking and reports whether it
// succeeded.
func (s *Semaphore) TryAcquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.permits == 0 {
		return false
	}
	s.permits--
	return true
}

// Release returns one permit.
func (s *Semaphore) Release() {
	s.mu.Lock()
	s.permits++
	s.cond.Signal()
	s.mu.Unlock()
}

// Available reports the number of free permits.
func (s *Semaphore) Available() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.permits
}
