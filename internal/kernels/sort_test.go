package kernels

import (
	"sort"
	"testing"
	"testing/quick"

	"threading/internal/models"
)

func TestSortSeqMatchesStdlib(t *testing.T) {
	check := func(n16 uint16) bool {
		n := int(n16 % 5000)
		data := RandomVector(n, uint64(n)+1)
		want := make([]float64, n)
		copy(want, data)
		sort.Float64s(want)
		SortSeq(data, make([]float64, n))
		for i := range data {
			if data[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSortSeqEdgeCases(t *testing.T) {
	for _, data := range [][]float64{
		{},
		{1},
		{2, 1},
		{1, 1, 1, 1},
		{5, 4, 3, 2, 1},
	} {
		d := append([]float64(nil), data...)
		SortSeq(d, make([]float64, len(d)))
		if !IsSorted(d) {
			t.Fatalf("not sorted: %v", d)
		}
	}
}

func TestSortSeqScratchMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("scratch mismatch not rejected")
		}
	}()
	SortSeq(make([]float64, 4), make([]float64, 3))
}

func TestSortTaskAllTaskModels(t *testing.T) {
	const n = 60000
	orig := RandomVector(n, 99)
	want := make([]float64, n)
	copy(want, orig)
	sort.Float64s(want)
	for _, name := range models.TaskNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := models.MustNew(name, 4)
			defer m.Close()
			data := make([]float64, n)
			copy(data, orig)
			SortTask(m, data, 4096)
			for i := range data {
				if data[i] != want[i] {
					t.Fatalf("element %d: %g, want %g", i, data[i], want[i])
				}
			}
		})
	}
}

func TestSortTaskTinyCutoffClamped(t *testing.T) {
	m := models.MustNew(models.CilkSpawn, 2)
	defer m.Close()
	data := RandomVector(10000, 3)
	SortTask(m, data, 0) // clamped to 64
	if !IsSorted(data) {
		t.Fatal("not sorted with clamped cutoff")
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]float64{1, 2, 2, 3}) || IsSorted([]float64{2, 1}) || !IsSorted(nil) {
		t.Fatal("IsSorted wrong")
	}
}
