package kernels

import "threading/internal/models"

// This file adds a recursive divide-and-conquer sort (merge sort, in
// the spirit of BOTS/cilksort from the paper's related work) as an
// extension workload: unlike Fibonacci its tasks carry real work and
// real memory traffic, so it probes the task runtimes between the
// extremes of fib (all scheduling) and the flat loops (no task
// structure).

// SortSeq merge-sorts data in place using scratch (same length).
func SortSeq(data, scratch []float64) {
	if len(data) != len(scratch) {
		panic("kernels: scratch length mismatch")
	}
	mergeSortSeq(data, scratch)
}

func mergeSortSeq(data, scratch []float64) {
	n := len(data)
	if n < 2 {
		return
	}
	if n <= 32 {
		insertionSort(data)
		return
	}
	mid := n / 2
	mergeSortSeq(data[:mid], scratch[:mid])
	mergeSortSeq(data[mid:], scratch[mid:])
	merge(data, scratch, mid)
}

func insertionSort(data []float64) {
	for i := 1; i < len(data); i++ {
		v := data[i]
		j := i - 1
		for j >= 0 && data[j] > v {
			data[j+1] = data[j]
			j--
		}
		data[j+1] = v
	}
}

// merge combines the sorted halves data[:mid] and data[mid:] using
// scratch.
func merge(data, scratch []float64, mid int) {
	copy(scratch, data)
	i, j := 0, mid
	for k := range data {
		switch {
		case i >= mid:
			data[k] = scratch[j]
			j++
		case j >= len(data):
			data[k] = scratch[i]
			i++
		case scratch[j] < scratch[i]:
			data[k] = scratch[j]
			j++
		default:
			data[k] = scratch[i]
			i++
		}
	}
}

// SortTask merge-sorts data under model m: halves below cutoff sort
// sequentially; larger halves are sorted as spawned sibling tasks and
// merged after the join. m must support tasks. cutoff < 64 is raised
// to 64.
func SortTask(m models.Model, data []float64, cutoff int) {
	if cutoff < 64 {
		cutoff = 64
	}
	scratch := make([]float64, len(data))
	m.TaskRun(func(s models.TaskScope) {
		sortScope(s, data, scratch, cutoff)
	})
}

func sortScope(s models.TaskScope, data, scratch []float64, cutoff int) {
	n := len(data)
	if n <= cutoff {
		mergeSortSeq(data, scratch)
		return
	}
	mid := n / 2
	s.Spawn(func(cs models.TaskScope) {
		sortScope(cs, data[:mid], scratch[:mid], cutoff)
	})
	sortScope(s, data[mid:], scratch[mid:], cutoff)
	s.Sync()
	merge(data, scratch, mid)
}

// IsSorted reports whether data is in non-decreasing order.
func IsSorted(data []float64) bool {
	for i := 1; i < len(data); i++ {
		if data[i] < data[i-1] {
			return false
		}
	}
	return true
}
