// Package kernels implements the five micro-kernels of the reproduced
// paper's Section IV-A — Axpy, Sum, Matvec, Matmul and Fibonacci —
// each as a sequential reference plus a version parameterized by a
// threading model. The parallel versions perform identical arithmetic
// under every model, so timing differences isolate the runtimes.
package kernels

import "threading/internal/models"

// splitmix64 advances and mixes the generator state; used for
// deterministic workload generation without math/rand.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// RandomVector returns a deterministic pseudo-random vector with
// entries in [0, 1).
func RandomVector(n int, seed uint64) []float64 {
	v := make([]float64, n)
	st := seed
	for i := range v {
		v[i] = float64(splitmix64(&st)>>11) / float64(1<<53)
	}
	return v
}

// RandomMatrix returns a deterministic pseudo-random n x n row-major
// matrix with entries in [0, 1).
func RandomMatrix(n int, seed uint64) []float64 {
	return RandomVector(n*n, seed)
}

// AxpySeq computes y[i] += a*x[i] sequentially.
func AxpySeq(a float64, x, y []float64) {
	for i := range x {
		y[i] += a * x[i]
	}
}

// Axpy computes y[i] += a*x[i] under model m. x and y must have equal
// length.
func Axpy(m models.Model, a float64, x, y []float64) {
	m.ParallelFor(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += a * x[i]
		}
	})
}

// SumSeq computes the sum of a*x[i] sequentially.
func SumSeq(a float64, x []float64) float64 {
	var s float64
	for _, v := range x {
		s += a * v
	}
	return s
}

// Sum computes the sum of a*x[i] under model m — the paper's
// work-sharing + reduction kernel.
func Sum(m models.Model, a float64, x []float64) float64 {
	return m.ParallelReduce(len(x), 0,
		func(lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				acc += a * x[i]
			}
			return acc
		},
		func(p, q float64) float64 { return p + q })
}

// MatvecSeq computes y = A*x for a row-major n x n matrix.
func MatvecSeq(a, x, y []float64, n int) {
	for i := 0; i < n; i++ {
		row := a[i*n : (i+1)*n]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// Matvec computes y = A*x under model m, parallel over rows.
func Matvec(m models.Model, a, x, y []float64, n int) {
	m.ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a[i*n : (i+1)*n]
			var s float64
			for j, v := range row {
				s += v * x[j]
			}
			y[i] = s
		}
	})
}

// MatmulSeq computes c = a*b for row-major n x n matrices using the
// cache-friendly ikj loop order.
func MatmulSeq(a, b, c []float64, n int) {
	for i := 0; i < n; i++ {
		ci := c[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			bk := b[k*n : (k+1)*n]
			for j, v := range bk {
				ci[j] += aik * v
			}
		}
	}
}

// Matmul computes c = a*b under model m, parallel over rows of c,
// with the same ikj inner kernel as MatmulSeq.
func Matmul(m models.Model, a, b, c []float64, n int) {
	m.ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c[i*n : (i+1)*n]
			for j := range ci {
				ci[j] = 0
			}
			for k := 0; k < n; k++ {
				aik := a[i*n+k]
				bk := b[k*n : (k+1)*n]
				for j, v := range bk {
					ci[j] += aik * v
				}
			}
		}
	})
}

// FibSeq computes the nth Fibonacci number by naive recursion — the
// sequential baseline with the same O(fib(n)) call tree the parallel
// versions traverse.
func FibSeq(n int) uint64 {
	if n < 2 {
		return uint64(n)
	}
	return FibSeq(n-1) + FibSeq(n-2)
}

// FibTask computes fib(n) under model m using one spawned task per
// recursive branch, the paper's task-parallelism stress test. Below
// cutoff the recursion continues sequentially; cutoff < 2 disables
// the cut-off entirely (pure spawning — which, for the thread-backed
// models, reproduces the paper's observation that uncut std::thread
// recursion is unusable: every branch becomes a live thread).
// m must support tasks.
func FibTask(m models.Model, n, cutoff int) uint64 {
	var result uint64
	m.TaskRun(func(s models.TaskScope) {
		fibScope(s, n, cutoff, &result)
	})
	return result
}

func fibScope(s models.TaskScope, n, cutoff int, out *uint64) {
	if n < 2 {
		*out = uint64(n)
		return
	}
	if n <= cutoff {
		*out = FibSeq(n)
		return
	}
	var a, b uint64
	s.Spawn(func(cs models.TaskScope) { fibScope(cs, n-1, cutoff, &a) })
	fibScope(s, n-2, cutoff, &b)
	s.Sync()
	*out = a + b
}
