package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"threading/internal/models"
)

const tol = 1e-9

func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(scale, 1)
}

func TestRandomVectorDeterministic(t *testing.T) {
	a := RandomVector(100, 42)
	b := RandomVector(100, 42)
	c := RandomVector(100, 43)
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
		if a[i] < 0 || a[i] >= 1 {
			t.Fatalf("value %g out of [0,1)", a[i])
		}
	}
	if !same {
		t.Fatal("same seed produced different vectors")
	}
	if !diff {
		t.Fatal("different seeds produced identical vectors")
	}
}

func TestRandomMatrixSize(t *testing.T) {
	m := RandomMatrix(17, 1)
	if len(m) != 17*17 {
		t.Fatalf("matrix has %d entries, want %d", len(m), 17*17)
	}
}

func TestAxpySeq(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	AxpySeq(2, x, y)
	want := []float64{12, 24, 36}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func eachModel(t *testing.T, threads int, fn func(t *testing.T, m models.Model)) {
	t.Helper()
	for _, name := range models.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := models.MustNew(name, threads)
			defer m.Close()
			fn(t, m)
		})
	}
}

func TestAxpyMatchesSeq(t *testing.T) {
	const n = 30000
	x := RandomVector(n, 1)
	ref := RandomVector(n, 2)
	want := make([]float64, n)
	copy(want, ref)
	AxpySeq(1.5, x, want)
	eachModel(t, 4, func(t *testing.T, m models.Model) {
		y := make([]float64, n)
		copy(y, ref)
		Axpy(m, 1.5, x, y)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("y[%d] = %g, want %g", i, y[i], want[i])
			}
		}
	})
}

func TestSumMatchesSeq(t *testing.T) {
	const n = 30000
	x := RandomVector(n, 3)
	want := SumSeq(2.5, x)
	eachModel(t, 4, func(t *testing.T, m models.Model) {
		got := Sum(m, 2.5, x)
		if !almostEqual(got, want) {
			t.Fatalf("sum = %g, want %g", got, want)
		}
	})
}

func TestMatvecMatchesSeq(t *testing.T) {
	const n = 120
	a := RandomMatrix(n, 4)
	x := RandomVector(n, 5)
	want := make([]float64, n)
	MatvecSeq(a, x, want, n)
	eachModel(t, 4, func(t *testing.T, m models.Model) {
		y := make([]float64, n)
		Matvec(m, a, x, y, n)
		for i := range y {
			if !almostEqual(y[i], want[i]) {
				t.Fatalf("y[%d] = %g, want %g", i, y[i], want[i])
			}
		}
	})
}

func TestMatmulMatchesSeq(t *testing.T) {
	const n = 64
	a := RandomMatrix(n, 6)
	b := RandomMatrix(n, 7)
	want := make([]float64, n*n)
	MatmulSeq(a, b, want, n)
	eachModel(t, 4, func(t *testing.T, m models.Model) {
		c := make([]float64, n*n)
		Matmul(m, a, b, c, n)
		for i := range c {
			if !almostEqual(c[i], want[i]) {
				t.Fatalf("c[%d] = %g, want %g", i, c[i], want[i])
			}
		}
	})
}

func TestMatmulSeqIdentity(t *testing.T) {
	const n = 8
	a := RandomMatrix(n, 8)
	id := make([]float64, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	c := make([]float64, n*n)
	MatmulSeq(a, id, c, n)
	for i := range c {
		if !almostEqual(c[i], a[i]) {
			t.Fatalf("A*I != A at %d: %g vs %g", i, c[i], a[i])
		}
	}
}

func TestFibSeqValues(t *testing.T) {
	want := []uint64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	for n, w := range want {
		if got := FibSeq(n); got != w {
			t.Fatalf("FibSeq(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestFibTaskAllTaskModels(t *testing.T) {
	want := FibSeq(23)
	for _, name := range models.TaskNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := models.MustNew(name, 4)
			defer m.Close()
			if got := FibTask(m, 23, 12); got != want {
				t.Fatalf("fib(23) = %d, want %d", got, want)
			}
		})
	}
}

func TestFibTaskNoCutoffPooled(t *testing.T) {
	// Without a cut-off, every branch is a task. The pooled runtimes
	// must survive this (the thread-backed ones model the paper's
	// hang and are exercised only at tiny sizes).
	for _, name := range []string{models.OMPTask, models.CilkSpawn} {
		m := models.MustNew(name, 4)
		if got, want := FibTask(m, 18, 0), FibSeq(18); got != want {
			t.Fatalf("%s: fib(18) uncut = %d, want %d", name, got, want)
		}
		m.Close()
	}
}

func TestFibTaskUncutThreadModelSmall(t *testing.T) {
	// fib(12) uncut creates ~465 live threads — small enough to pass,
	// demonstrating why the paper's uncut std::thread version dies at
	// fib(20)+ (~20k live threads on their system).
	m := models.MustNew(models.CPPThread, 4)
	defer m.Close()
	if got, want := FibTask(m, 12, 0), FibSeq(12); got != want {
		t.Fatalf("fib(12) = %d, want %d", got, want)
	}
}

func TestKernelsPropertySumLinearity(t *testing.T) {
	m := models.MustNew(models.OMPFor, 2)
	defer m.Close()
	check := func(n16 uint16, a8 uint8) bool {
		n := int(n16%2000) + 1
		a := float64(a8) / 16
		x := RandomVector(n, uint64(n))
		// Sum(a*x) == a * Sum(1*x)
		return almostEqual(Sum(m, a, x), a*Sum(m, 1, x))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
