// Package worksteal implements a Cilk-style work-stealing task
// scheduler: each worker owns a deque of tasks, pushes and pops work
// at the bottom, and steals from a random victim's top when its own
// deque runs dry.
//
// The deque backend is pluggable (see internal/deque): the lock-free
// Chase-Lev deque models the Cilk Plus runtime, while the mutex-based
// deque models the Intel OpenMP task runtime. The reproduced paper
// attributes the cilk_spawn vs omp-task gap on recursive task
// parallelism (Fig. 5) to this difference, and the gap can be measured
// here by flipping a single option.
//
// Loop parallelism is provided by ForDAC, which mirrors cilk_for:
// the iteration space is split recursively into spawned halves until a
// grain size is reached. Distribution of chunks therefore rides on the
// stealing mechanism — the very property the paper blames for
// cilk_for's poor showing on flat data-parallel loops (Figs. 1-4).
package worksteal

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"threading/internal/deque"
	"threading/internal/sched"
)

// task is one schedulable unit: a closure plus the frame whose Sync
// is waiting on it and the cancellation region of the Run it belongs
// to. The task's own frame and context are embedded so that a spawn
// costs one allocation for the whole record.
type task struct {
	fn     func(*Ctx)
	parent *frame
	reg    *sched.Region
	own    frame
	ctx    Ctx
}

// frame tracks the outstanding children of one task invocation. Sync
// blocks until pending returns to zero.
type frame struct {
	pending atomic.Int64
	waiter  atomic.Pointer[sched.Parker]
}

// childDone signals completion of one child, waking a blocked Sync if
// this was the last one.
func (f *frame) childDone() {
	if f.pending.Add(-1) == 0 {
		if p := f.waiter.Load(); p != nil {
			p.Unpark()
		}
	}
}

// worker is one scheduler participant.
type worker struct {
	id     int
	pool   *Pool
	dq     deque.Deque[task]
	rng    *sched.Rand
	st     *sched.Shard
	parker sched.Parker
	parked atomic.Bool
}

// Options configure a Pool.
//
// Deprecated: prefer the functional options (WithDequeKind,
// WithSpinBeforePark). Options remains usable — a literal passed to
// NewPool still applies wholesale — so existing callers compile
// unchanged.
type Options struct {
	// DequeKind selects the deque implementation for every worker.
	// The default, deque.KindChaseLev, models Cilk Plus; use
	// deque.KindLocked to model the Intel OpenMP task runtime.
	DequeKind deque.Kind
	// SpinBeforePark is how many failed find-work rounds a worker or
	// a Sync performs before blocking. Zero selects a default.
	SpinBeforePark int
}

// Option configures a Pool at construction. The legacy Options struct
// itself implements Option (applying every field at once), so both
// NewPool(n, Options{...}) and NewPool(n, WithDequeKind(k)) are valid.
type Option interface{ applyPool(*Options) }

func (o Options) applyPool(dst *Options) { *dst = o }

type poolOption func(*Options)

func (f poolOption) applyPool(o *Options) { f(o) }

// WithDequeKind selects the deque backend for every worker: the
// lock-free Chase-Lev deque (Cilk Plus) or the lock-based deque
// (Intel OpenMP task runtime).
func WithDequeKind(k deque.Kind) Option {
	return poolOption(func(o *Options) { o.DequeKind = k })
}

// WithSpinBeforePark sets how many failed find-work rounds a worker
// or a Sync performs before blocking.
func WithSpinBeforePark(n int) Option {
	return poolOption(func(o *Options) { o.SpinBeforePark = n })
}

const defaultSpin = 32

// Pool is a work-stealing scheduler with a fixed set of workers.
// Create one with NewPool, submit roots with Run, release the workers
// with Close.
type Pool struct {
	workers []*worker
	inbox   *deque.Locked[task] // external submissions; stolen by any worker
	stats   *sched.Stats
	spin    int

	parkedCount atomic.Int64 // workers currently parked (or about to)
	closed      atomic.Bool

	wg sync.WaitGroup
}

// NewPool starts a scheduler with n workers. n must be at least 1.
// Options may be given either as functional options or as a legacy
// Options literal.
func NewPool(n int, options ...Option) *Pool {
	if n < 1 {
		panic("worksteal: pool needs at least 1 worker")
	}
	var opts Options
	for _, o := range options {
		o.applyPool(&opts)
	}
	spin := opts.SpinBeforePark
	if spin <= 0 {
		spin = defaultSpin
	}
	p := &Pool{
		workers: make([]*worker, n),
		inbox:   deque.NewLocked[task](),
		stats:   sched.NewStats(n),
		spin:    spin,
	}
	for i := range p.workers {
		p.workers[i] = &worker{
			id:   i,
			pool: p,
			dq:   deque.New[task](opts.DequeKind),
			rng:  sched.NewRand(uint64(i)*0x9E3779B9 + 1),
			st:   p.stats.Shard(i),
		}
	}
	for _, w := range p.workers {
		p.wg.Add(1)
		go w.loop()
	}
	return p
}

// Workers reports the number of workers in the pool.
func (p *Pool) Workers() int { return len(p.workers) }

// Stats returns a snapshot of the scheduler counters.
func (p *Pool) Stats() sched.Snapshot { return p.stats.Snapshot() }

// ResetStats zeroes the scheduler counters.
func (p *Pool) ResetStats() { p.stats.Reset() }

// Close shuts the pool down. Outstanding Run calls must have returned;
// Close waits for all workers to exit. The pool must not be used
// afterwards.
func (p *Pool) Close() {
	p.closed.Store(true)
	for _, w := range p.workers {
		w.parker.Unpark()
	}
	p.wg.Wait()
}

// Run submits root as a task and blocks until it — and every task it
// transitively spawned — has completed. If any task panicked, Run
// re-panics with the first recorded panic value. Multiple Runs may be
// issued concurrently.
func (p *Pool) Run(root func(*Ctx)) {
	if err := p.RunCtx(context.Background(), root); err != nil {
		var pe *sched.PanicError
		if errors.As(err, &pe) {
			panic(fmt.Sprintf("worksteal: task panicked: %v", pe.Value))
		}
		panic(fmt.Sprintf("worksteal: run failed: %v", err))
	}
}

// RunCtx is Run with cooperative cancellation and structured error
// propagation. Cancellation (including deadline expiry) is observed
// at task boundaries and at ForDAC chunk boundaries: in-flight task
// bodies run to completion, queued tasks are drained without
// executing their bodies, and the pool remains reusable — concurrent
// Runs are unaffected, since each Run carries its own cancellation
// region. The returned error is the first failure: the context's
// error, or a *sched.PanicError wrapping the first panic recovered
// from any task of this run (a panic also cancels the run's remaining
// tasks). A nil return means every task ran to completion.
func (p *Pool) RunCtx(ctx context.Context, root func(*Ctx)) error {
	if p.closed.Load() {
		panic("worksteal: Run on closed pool")
	}
	reg := sched.NewRegion(ctx)
	f := &frame{}
	f.pending.Store(1)
	p.inbox.PushBottom(&task{fn: root, parent: f, reg: reg})
	p.unparkAll()

	// The submitting goroutine is not a worker, so it cannot help; it
	// parks until the root frame drains.
	if f.pending.Load() != 0 {
		var pk sched.Parker
		f.waiter.Store(&pk)
		for f.pending.Load() != 0 {
			pk.Park()
		}
		f.waiter.Store(nil)
	}
	return reg.Finish()
}

// queuedWork reports whether any deque or the inbox holds a task.
func (p *Pool) queuedWork() bool {
	if p.inbox.Len() > 0 {
		return true
	}
	for _, w := range p.workers {
		if w.dq.Len() > 0 {
			return true
		}
	}
	return false
}

// unparkAll wakes every parked worker.
func (p *Pool) unparkAll() {
	for _, w := range p.workers {
		if w.parked.Load() {
			w.parker.Unpark()
		}
	}
}

// unparkOne wakes one parked worker, if any.
func (p *Pool) unparkOne() {
	for _, w := range p.workers {
		if w.parked.CompareAndSwap(true, false) {
			w.parker.Unpark()
			return
		}
	}
}

// loop is the worker main loop: pop own work, else steal, else park.
func (w *worker) loop() {
	defer w.pool.wg.Done()
	idle := 0
	for {
		t := w.findWork()
		if t != nil {
			idle = 0
			w.run(t)
			continue
		}
		idle++
		if idle < w.pool.spin {
			runtime.Gosched()
			continue
		}
		if w.pool.closed.Load() {
			return
		}
		// Publish parked state, then re-check for queued work to close
		// the race against a spawner that read parkedCount before our
		// increment became visible.
		w.pool.parkedCount.Add(1)
		w.parked.Store(true)
		if w.pool.queuedWork() || w.pool.closed.Load() {
			w.parked.Store(false)
			w.pool.parkedCount.Add(-1)
			idle = 0
			continue
		}
		w.st.CountPark()
		w.parker.Park()
		w.parked.Store(false)
		w.pool.parkedCount.Add(-1)
		idle = 0
	}
}

// findWork returns the next task: own deque first, then the external
// inbox, then a randomized sweep over the other workers' deques.
func (w *worker) findWork() *task {
	if t := w.dq.PopBottom(); t != nil {
		return t
	}
	if t := w.pool.inbox.Steal(); t != nil {
		return t
	}
	n := len(w.pool.workers)
	if n == 1 {
		w.st.CountFailedSteal()
		return nil
	}
	start := w.rng.Intn(n)
	for i := 0; i < n; i++ {
		v := w.pool.workers[(start+i)%n]
		if v == w {
			continue
		}
		if t := v.dq.Steal(); t != nil {
			w.st.CountSteal()
			return t
		}
	}
	w.st.CountFailedSteal()
	return nil
}

// run executes t with its embedded frame, waits for its children (the
// implicit sync at task return, as in Cilk), and signals the parent.
// A task whose run has been canceled skips its body but still syncs
// and signals, so queued work drains and frames resolve.
func (w *worker) run(t *task) {
	w.st.CountTask()
	t.ctx = Ctx{pool: w.pool, worker: w, frame: &t.own, reg: t.reg}
	c := &t.ctx
	if !t.reg.Canceled() {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.reg.RecordPanic(r)
				}
			}()
			t.fn(c)
		}()
	}
	c.Sync() // implicit sync: children must not outlive the task
	t.parent.childDone()
}
