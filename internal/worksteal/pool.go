// Package worksteal implements a Cilk-style work-stealing task
// scheduler: each worker owns a deque of tasks, pushes and pops work
// at the bottom, and steals from a random victim's top when its own
// deque runs dry.
//
// The deque backend is pluggable (see internal/deque): the lock-free
// Chase-Lev deque models the Cilk Plus runtime, while the mutex-based
// deque models the Intel OpenMP task runtime. The reproduced paper
// attributes the cilk_spawn vs omp-task gap on recursive task
// parallelism (Fig. 5) to this difference, and the gap can be measured
// here by flipping a single option.
//
// Loop parallelism is provided by ForDAC, which mirrors cilk_for under
// two selectable partitioners (WithPartitioner): the paper-faithful
// Eager mode splits the iteration space up front so chunk distribution
// rides entirely on the stealing protocol — the property the paper
// blames for cilk_for's poor showing on flat data-parallel loops
// (Figs. 1-4) — while the Lazy mode splits only when another worker
// signals demand, closing most of that gap.
//
// Work distribution is demand-driven end to end: thieves migrate half
// a victim's queue per visit (deque.StealHalf), submitters join
// help-first (the goroutine calling RunCtx executes tasks until its
// root frame drains instead of parking), and wake-ups are throttled
// through a pending-work counter instead of broadcast scans.
package worksteal

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strconv"
	"sync"
	"sync/atomic"

	"threading/internal/deque"
	"threading/internal/sched"
	"threading/internal/tracez"
)

// task is one schedulable unit, in one of two shapes: a plain closure
// (fn), the cilk_spawn form; or a loop-range descriptor (body over
// [lo, hi) at grain), the ForDAC form — so chunk spawns carry their
// range in the record instead of in a per-chunk closure. The task's
// own frame and context are embedded, and finished records are
// recycled through the executing worker's freelist (worker.alloc /
// worker.recycle), so in steady state a spawn allocates nothing: the
// record cycles between the arena and the deques for the life of the
// pool.
type task struct {
	fn     func(*Ctx)           // closure body; nil for range tasks
	body   func(*Ctx, int, int) // range body; nil for closure tasks
	lo, hi int                  // range bounds (body != nil)
	grain  int                  // range grain (body != nil)
	lazy   bool                 // range runs under the lazy partitioner
	parent *frame
	reg    *sched.Region
	next   *task // freelist link while recycled
	own    frame
	ctx    Ctx
}

// frame tracks the outstanding children of one task invocation. Sync
// blocks until pending returns to zero.
type frame struct {
	pending atomic.Int64
	waiter  atomic.Pointer[sched.Parker]
}

// childDone signals completion of one child, waking a blocked Sync if
// this was the last one.
func (f *frame) childDone() {
	if f.pending.Add(-1) == 0 {
		if p := f.waiter.Load(); p != nil {
			p.Unpark()
		}
	}
}

// stealBatch bounds how many tasks one steal visit can migrate.
const stealBatch = 16

// worker is one scheduler participant: a dedicated pool worker, or a
// help-first helper animated by a goroutine that called RunCtx.
//
// Layout: the fields above the pad are owner-only — touched solely by
// the goroutine animating the worker (for helper slots, ownership is
// transferred by the helperBusy CAS). parked and parker below the pad
// are written by other workers (unparkOne's CAS, Parker.Unpark) and
// would otherwise false-share with the owner's per-task deque and
// freelist accesses.
type worker struct {
	id   int
	pool *Pool
	dq   deque.Deque[task]
	rng  *sched.Rand
	st   *sched.Shard
	help bool         // a help-first submitter slot, not a dedicated worker
	ring *tracez.Ring // nil unless the pool was built WithTracer

	// free is the worker-local task arena: records recycled by run and
	// handed back out by alloc. Capped at maxFreeTasks; overflow spills
	// to the pool-wide list so records stolen cross-worker circulate
	// back to the spawners.
	free  *task
	nfree int

	// stealBuf is the scratch buffer for StealHalf visits. findWork
	// re-nils every slot it filled before returning, so a dead run's
	// tasks are not pinned — and recycled records are not kept
	// reachable — by a stale buffer entry.
	stealBuf [stealBatch]*task

	_      [sched.CacheLine]byte
	parker sched.Parker
	parked atomic.Bool
}

// MaxHelpers is the number of help-first submitter slots per pool:
// up to this many concurrent RunCtx calls execute tasks themselves
// (with stealable deques and WorkerIDs in [Workers(),
// Workers()+MaxHelpers)); further concurrent submitters fall back to
// submit-and-park.
const MaxHelpers = 4

// Options configure a Pool.
//
// Deprecated: prefer the functional options (WithDequeKind,
// WithSpinBeforePark, WithPartitioner). Options remains usable — a
// literal passed to NewPool still applies wholesale — so existing
// callers compile unchanged.
type Options struct {
	// DequeKind selects the deque implementation for every worker.
	// The default, deque.KindChaseLev, models Cilk Plus; use
	// deque.KindLocked to model the Intel OpenMP task runtime.
	DequeKind deque.Kind
	// SpinBeforePark is how many failed find-work rounds a worker or
	// a Sync performs before blocking. Zero selects a default.
	SpinBeforePark int
	// Partitioner selects how ForDAC distributes loop iterations; the
	// default, Eager, is the paper-faithful cilk_for decomposition.
	Partitioner Partitioner
	// Tracer, when non-nil, receives per-worker scheduler events
	// (task/chunk spans, spawns, steals, parks). Nil disables tracing;
	// the hot paths then pay only a nil check.
	Tracer *tracez.Tracer
	// PinWorkers locks each dedicated worker goroutine to an OS thread
	// (runtime.LockOSThread) for the life of the pool, preventing the
	// Go scheduler from migrating workers between threads mid-run.
	// Help-first helper slots are animated by submitter goroutines and
	// are never pinned.
	PinWorkers bool
}

// Option configures a Pool at construction. The legacy Options struct
// itself implements Option (applying every field at once), so both
// NewPool(n, Options{...}) and NewPool(n, WithDequeKind(k)) are valid.
type Option interface{ applyPool(*Options) }

func (o Options) applyPool(dst *Options) { *dst = o }

type poolOption func(*Options)

func (f poolOption) applyPool(o *Options) { f(o) }

// WithDequeKind selects the deque backend for every worker: the
// lock-free Chase-Lev deque (Cilk Plus) or the lock-based deque
// (Intel OpenMP task runtime).
func WithDequeKind(k deque.Kind) Option {
	return poolOption(func(o *Options) { o.DequeKind = k })
}

// WithSpinBeforePark sets how many failed find-work rounds a worker
// or a Sync performs before blocking.
func WithSpinBeforePark(n int) Option {
	return poolOption(func(o *Options) { o.SpinBeforePark = n })
}

// WithPartitioner selects the ForDAC loop partitioner: Eager for the
// paper-faithful up-front decomposition, Lazy for demand-driven
// splitting.
func WithPartitioner(p Partitioner) Option {
	return poolOption(func(o *Options) { o.Partitioner = p })
}

// WithTracer attaches a scheduler-event tracer: every worker and
// help-first helper slot records its events into the tracer's ring for
// its WorkerID. A nil tracer leaves tracing disabled.
func WithTracer(tr *tracez.Tracer) Option {
	return poolOption(func(o *Options) { o.Tracer = tr })
}

// WithPinnedWorkers locks each dedicated worker goroutine to an OS
// thread for the life of the pool, so workers keep their caches and
// (on NUMA machines) their memory locality instead of migrating
// between threads at the Go scheduler's whim. Help-first helper slots
// are animated by submitter goroutines and are never pinned.
func WithPinnedWorkers(on bool) Option {
	return poolOption(func(o *Options) { o.PinWorkers = on })
}

const defaultSpin = 32

// Pool is a work-stealing scheduler with a fixed set of workers.
// Create one with NewPool, submit roots with Run, release the workers
// with Close.
type Pool struct {
	workers []*worker
	helpers []*worker           // help-first submitter slots, stealable like workers
	victims []*worker           // workers + helpers: the steal-sweep targets
	inbox   *deque.Locked[task] // overflow submissions; stolen by any worker
	stats   *sched.Stats
	spin    int
	part    Partitioner

	helperBusy [MaxHelpers]atomic.Bool
	closed     atomic.Bool
	async      sched.AsyncGroup // in-flight SubmitCtx tasks, joined by Quiesce

	// freeMu guards the pool-wide overflow freelist that worker arenas
	// spill to and refill from, so task records stolen cross-worker
	// (and hence recycled by the thief, not the spawner) circulate back
	// to whoever allocates next. Touched only when a local list runs
	// dry or overflows.
	freeMu    sync.Mutex
	freeList  *task
	freeCount int

	// Shared hot counters, each padded onto its own cache line: every
	// spawn and every take bumps pending, every idle transition bumps
	// searching or parkedCount — packed together (as they used to be)
	// the three lines' traffic collapses onto one contended line.
	_           [sched.CacheLine]byte
	pending     atomic.Int64 // queued-but-not-taken tasks (conservative)
	_           [sched.CacheLine - 8]byte
	searching   atomic.Int64 // workers in the idle find-work phase
	_           [sched.CacheLine - 8]byte
	parkedCount atomic.Int64 // workers currently parked (or about to)
	_           [sched.CacheLine - 8]byte

	wg sync.WaitGroup
}

// NewPool starts a scheduler with n workers. n must be at least 1.
// Options may be given either as functional options or as a legacy
// Options literal.
func NewPool(n int, options ...Option) *Pool {
	if n < 1 {
		panic("worksteal: pool needs at least 1 worker")
	}
	var opts Options
	for _, o := range options {
		o.applyPool(&opts)
	}
	spin := opts.SpinBeforePark
	if spin <= 0 {
		spin = defaultSpin
	}
	p := &Pool{
		workers: make([]*worker, n),
		helpers: make([]*worker, MaxHelpers),
		inbox:   deque.NewLocked[task](),
		stats:   sched.NewStats(n + MaxHelpers),
		spin:    spin,
		part:    opts.Partitioner,
	}
	newWorker := func(i int, help bool) *worker {
		w := &worker{
			id:   i,
			pool: p,
			dq:   deque.New[task](opts.DequeKind),
			rng:  sched.NewRand(uint64(i)*0x9E3779B9 + 1),
			st:   p.stats.Shard(i),
			help: help,
		}
		if opts.Tracer != nil {
			w.ring = opts.Tracer.Ring(i)
			if help {
				opts.Tracer.Label(i, "ws-h"+strconv.Itoa(i-n))
			} else {
				opts.Tracer.Label(i, "ws-w"+strconv.Itoa(i))
			}
		}
		return w
	}
	for i := range p.workers {
		p.workers[i] = newWorker(i, false)
	}
	for i := range p.helpers {
		p.helpers[i] = newWorker(n+i, true)
	}
	p.victims = append(append([]*worker{}, p.workers...), p.helpers...)
	for _, w := range p.workers {
		p.wg.Add(1)
		go func() {
			if opts.PinWorkers {
				// Pin for the goroutine's whole life; the lock dies with
				// the goroutine when loop returns at Close, so no
				// UnlockOSThread pairing is needed.
				runtime.LockOSThread()
			}
			// pprof label the worker goroutine so CPU profiles split by
			// runtime and worker, not one anonymous goroutine blob.
			pprof.Do(context.Background(), pprof.Labels(
				"runtime", "worksteal", "worker", strconv.Itoa(w.id),
			), func(context.Context) { w.loop() })
		}()
	}
	return p
}

// maxFreeTasks caps each worker-local freelist; freeTransfer is the
// batch moved between a local list and the pool-wide overflow list;
// maxPoolFree caps the pool-wide list, beyond which records are
// dropped for the GC — the bound that keeps a spawn storm from
// hoarding memory forever.
const (
	maxFreeTasks = 256
	freeTransfer = 64
	maxPoolFree  = 4096
)

// alloc returns a task record from the worker's arena, refilling from
// the pool-wide overflow list when the local list is dry; a fresh heap
// allocation is the last resort (cold start, or churn beyond every
// cap). Only the goroutine animating w may call it.
func (w *worker) alloc() *task {
	if w.free == nil {
		w.refill()
	}
	if t := w.free; t != nil {
		w.free = t.next
		w.nfree--
		t.next = nil
		return t
	}
	return new(task)
}

// recycle resets t and returns it to the executing worker's arena.
//
// Ownership rule: a record is recycled by whichever worker *ran* it
// (return-to-executor), after run has signalled the parent. At that
// point no deque can yield t again — the take that delivered it
// already advanced past its slot, and a stale Chase-Lev ring slot is
// never dereferenced without winning the top CAS, which can no longer
// name t's index. The only possible straggler is a child's childDone
// still loading t.own.waiter; the frame's fields are accessed
// atomically for the record's entire life (recycle resets the waiter
// with an atomic store and never rewrites the frame wholesale), so
// that straggler at worst spuriously unparks the record's next owner,
// whose park loops all recheck their condition.
func (w *worker) recycle(t *task) {
	t.fn, t.body = nil, nil // don't pin dead closures through the arena
	t.parent, t.reg = nil, nil
	t.ctx = Ctx{}
	t.own.waiter.Store(nil) // pending already drained by the implicit sync
	if w.nfree >= maxFreeTasks {
		w.spill()
	}
	t.next = w.free
	w.free = t
	w.nfree++
}

// refill moves up to freeTransfer records from the pool-wide list to
// w's. Batching keeps the shared lock off the per-spawn path: it is
// taken once per freeTransfer allocations at worst.
func (w *worker) refill() {
	p := w.pool
	p.freeMu.Lock()
	n := 0
	for n < freeTransfer && p.freeList != nil {
		t := p.freeList
		p.freeList = t.next
		t.next = w.free
		w.free = t
		n++
	}
	p.freeCount -= n
	p.freeMu.Unlock()
	w.nfree += n
}

// spill moves a freeTransfer batch from w's overfull local list to the
// pool-wide list, so a worker that executes far more than it spawns
// (the thief side of a steal-heavy run) hands records back to the
// spawners instead of hoarding them. When the pool-wide list is at
// capacity too, the batch is dropped for the GC.
func (w *worker) spill() {
	var head, tail *task
	n := 0
	for n < freeTransfer && w.free != nil {
		t := w.free
		w.free = t.next
		t.next = head
		if head == nil {
			tail = t
		}
		head = t
		n++
	}
	w.nfree -= n
	if head == nil {
		return
	}
	p := w.pool
	p.freeMu.Lock()
	if p.freeCount+n <= maxPoolFree {
		tail.next = p.freeList
		p.freeList = head
		p.freeCount += n
	}
	p.freeMu.Unlock()
}

// flushFree returns the hoard beyond a one-refill stash to the
// pool-wide list. Called on the park path (cold by definition): a
// thief that executed stolen tasks hands their records back to the
// spawning side as soon as it goes idle, instead of hoarding them
// until the maxFreeTasks cap forces a spill — without this, a
// steady spawner next to mostly-idle thieves re-allocates every
// record the thieves absorb until their hoards fill.
func (w *worker) flushFree() {
	for w.nfree > freeTransfer {
		w.spill()
	}
}

// Workers reports the number of dedicated workers in the pool (not
// counting help-first submitter slots).
func (p *Pool) Workers() int { return len(p.workers) }

// ParkedWorkers reports how many dedicated workers are currently
// parked (or committed to parking). With PendingWork and Workers it
// gives the metrics stall watchdog its pending-work-while-parked
// view; like the wake-up protocol itself, the value is advisory and
// may be momentarily stale.
func (p *Pool) ParkedWorkers() int { return int(p.parkedCount.Load()) }

// Partitioner reports the ForDAC loop partitioner the pool was
// configured with.
func (p *Pool) Partitioner() Partitioner { return p.part }

// Stats returns a snapshot of the scheduler counters.
func (p *Pool) Stats() sched.Snapshot { return p.stats.Snapshot() }

// ResetStats zeroes the scheduler counters.
func (p *Pool) ResetStats() { p.stats.Reset() }

// Close shuts the pool down. Outstanding Run calls must have returned;
// Close waits for all workers to exit. The pool must not be used
// afterwards.
func (p *Pool) Close() {
	p.closed.Store(true)
	for _, w := range p.workers {
		w.parker.Unpark()
	}
	p.wg.Wait()
}

// Run submits root as a task and blocks until it — and every task it
// transitively spawned — has completed. If any task panicked, Run
// re-panics with the first recorded panic value. Multiple Runs may be
// issued concurrently.
func (p *Pool) Run(root func(*Ctx)) {
	if err := p.RunCtx(context.Background(), root); err != nil {
		var pe *sched.PanicError
		if errors.As(err, &pe) {
			panic(fmt.Sprintf("worksteal: task panicked: %v", pe.Value))
		}
		panic(fmt.Sprintf("worksteal: run failed: %v", err))
	}
}

// RunCtx is Run with cooperative cancellation and structured error
// propagation. Cancellation (including deadline expiry) is observed
// at task boundaries and at ForDAC chunk boundaries: in-flight task
// bodies run to completion, queued tasks are drained without
// executing their bodies, and the pool remains reusable — concurrent
// Runs are unaffected, since each Run carries its own cancellation
// region. The returned error is the first failure: the context's
// error, or a *sched.PanicError wrapping the first panic recovered
// from any task of this run (a panic also cancels the run's remaining
// tasks). A nil return means every task ran to completion.
//
// The submitting goroutine joins help-first: it claims a helper
// worker slot, executes the root itself (so the root's spawns land on
// a stealable deque without a trip through the shared inbox), and
// keeps executing tasks until its root frame drains. Only when all
// MaxHelpers slots are taken by concurrent Runs does it fall back to
// enqueueing the root and parking.
func (p *Pool) RunCtx(ctx context.Context, root func(*Ctx)) error {
	if p.closed.Load() {
		panic("worksteal: Run on closed pool")
	}
	reg := sched.NewRegion(ctx)
	f := &frame{}
	f.pending.Store(1)
	if hw := p.claimHelper(); hw != nil {
		// The root task comes from the claimed helper's arena — the
		// helper goroutine owns that freelist for the duration — so a
		// steady-state Run allocates only its region and root frame.
		t := hw.alloc()
		t.fn, t.parent, t.reg = root, f, reg
		hw.ring.Record(tracez.KindHelpClaim, int64(hw.id-len(p.workers)), 0)
		hw.run(t)
		hw.syncFrame(f)
		p.releaseHelper(hw)
	} else {
		t := &task{fn: root, parent: f, reg: reg}
		p.pending.Add(1)
		p.inbox.PushBottom(t)
		p.signalWork()
		if f.pending.Load() != 0 {
			var pk sched.Parker
			f.waiter.Store(&pk)
			for f.pending.Load() != 0 {
				pk.Park()
			}
			f.waiter.Store(nil)
		}
	}
	return reg.Finish()
}

// claimHelper acquires a free help-first worker slot, or nil if all
// MaxHelpers are in use. The CAS transfers deque ownership to the
// claiming goroutine.
func (p *Pool) claimHelper() *worker {
	for i := range p.helperBusy {
		if p.helperBusy[i].CompareAndSwap(false, true) {
			return p.helpers[i]
		}
	}
	return nil
}

// releaseHelper returns a helper slot. The caller must be between
// tasks, which (by the sync-before-return invariant) means the
// helper's deque is empty.
func (p *Pool) releaseHelper(hw *worker) {
	p.helperBusy[hw.id-len(p.workers)].Store(false)
}

// signalWork wakes one parked worker, unless some worker is already
// searching for work (it will find the new task on its sweep). This
// pending-counter wake throttle replaces the O(workers) unparkAll
// broadcast the scheduler used to perform on every submission.
func (p *Pool) signalWork() {
	if p.searching.Load() == 0 && p.parkedCount.Load() > 0 {
		p.unparkOne()
	}
}

// demand reports whether some worker is hungry — parked, or actively
// searching for work. It is the signal the Lazy partitioner polls at
// chunk boundaries to decide whether splitting off half its remaining
// range would feed anyone.
func (p *Pool) demand() bool {
	return p.searching.Load() > 0 || p.parkedCount.Load() > 0
}

// unparkOne wakes one parked worker, if any.
func (p *Pool) unparkOne() {
	for _, w := range p.workers {
		if w.parked.CompareAndSwap(true, false) {
			w.parker.Unpark()
			return
		}
	}
}

// loop is the worker main loop: pop own work, else steal, else park.
func (w *worker) loop() {
	defer w.pool.wg.Done()
	idle := 0
	searching := false
	setSearch := func(on bool) {
		if on != searching {
			searching = on
			if on {
				w.pool.searching.Add(1)
				// Out of local work: hand the free-record hoard beyond a
				// one-refill stash back to the pool list, so a thief's
				// recycled records reach the spawning side promptly.
				// flushFree is a no-op below the stash watermark, so this
				// costs one locked batch per ~freeTransfer recycles at
				// worst, not one per search episode.
				w.flushFree()
			} else {
				w.pool.searching.Add(-1)
			}
		}
	}
	for {
		t := w.findWork()
		if t != nil {
			setSearch(false)
			idle = 0
			w.run(t)
			continue
		}
		setSearch(true)
		idle++
		if idle < w.pool.spin {
			runtime.Gosched()
			continue
		}
		if w.pool.closed.Load() {
			setSearch(false)
			return
		}
		// Stop advertising as searching before publishing parked
		// state: a submitter that reads searching == 0 is then
		// guaranteed to read parkedCount > 0 and wake us, and the
		// pending re-check below closes the race against a submitter
		// that enqueued before our parked flag became visible.
		setSearch(false)
		w.pool.parkedCount.Add(1)
		w.parked.Store(true)
		if w.pool.pending.Load() > 0 || w.pool.closed.Load() {
			w.parked.Store(false)
			w.pool.parkedCount.Add(-1)
			idle = 0
			continue
		}
		w.flushFree()
		w.st.CountPark()
		w.ring.Record(tracez.KindPark, 0, 0)
		w.parker.Park()
		w.ring.Record(tracez.KindUnpark, 0, 0)
		w.parked.Store(false)
		w.pool.parkedCount.Add(-1)
		idle = 0
	}
}

// findWork returns the next task: own deque first, then the external
// inbox, then a randomized sweep over the other workers' (and active
// helpers') deques. A successful steal migrates up to half the
// victim's queue in one visit, keeping one task and requeueing the
// rest locally where other thieves can take them.
func (w *worker) findWork() *task {
	if t := w.dq.PopBottom(); t != nil {
		w.pool.pending.Add(-1)
		return t
	}
	if t := w.pool.inbox.Steal(); t != nil {
		w.pool.pending.Add(-1)
		if w.pool.pending.Load() > 0 {
			w.pool.signalWork()
		}
		return t
	}
	victims := w.pool.victims
	n := len(victims)
	start := w.rng.Intn(n)
	for i := 0; i < n; i++ {
		v := victims[(start+i)%n]
		if v == w {
			continue
		}
		k := v.dq.StealHalf(w.stealBuf[:])
		if k == 0 {
			continue
		}
		w.st.CountSteal()
		w.ring.Record(tracez.KindSteal, int64(v.id), int64(k))
		if k > 1 {
			w.st.CountBatchSteal(k)
			for j := 1; j < k; j++ {
				w.dq.PushBottom(w.stealBuf[j])
				w.stealBuf[j] = nil
			}
		}
		t := w.stealBuf[0]
		w.stealBuf[0] = nil
		w.pool.pending.Add(-1) // took k, requeued k-1
		if k > 1 || w.pool.pending.Load() > 0 {
			// The batch we just requeued (or work still queued
			// elsewhere) can feed another thief: propagate the wake.
			w.pool.signalWork()
		}
		return t
	}
	w.st.CountFailedSteal()
	w.ring.Record(tracez.KindStealFail, 0, 0)
	return nil
}

// syncFrame executes tasks until f's pending count drains, parking on
// f's waiter as a last resort. It is the shared help-while-waiting
// loop behind Ctx.Sync and the help-first join in RunCtx: the waiting
// goroutine keeps executing other tasks (its own deque first, then
// steals), so a join deep in a recursive decomposition does not idle
// the core.
func (w *worker) syncFrame(f *frame) {
	idle := 0
	for f.pending.Load() > 0 {
		if t := w.findWork(); t != nil {
			idle = 0
			w.run(t)
			continue
		}
		idle++
		if idle < w.pool.spin {
			runtime.Gosched()
			continue
		}
		// Nothing runnable anywhere: block until the last child
		// signals. Children of this frame may be executing on other
		// workers, so there is legitimately nothing to help with.
		var pk sched.Parker
		f.waiter.Store(&pk)
		if f.pending.Load() > 0 {
			w.st.CountPark()
			w.ring.Record(tracez.KindPark, 0, 0)
			pk.Park()
			w.ring.Record(tracez.KindUnpark, 0, 0)
		}
		f.waiter.Store(nil)
		idle = 0
	}
}

// run executes t with its embedded frame, waits for its children (the
// implicit sync at task return, as in Cilk), signals the parent, and
// recycles the record into w's arena. A task whose run has been
// canceled skips its body but still syncs and signals, so queued work
// drains and frames resolve (and their records are still reclaimed).
func (w *worker) run(t *task) {
	w.st.CountTask()
	if w.help {
		w.st.CountHelpFirst()
	}
	w.ring.Record(tracez.KindTaskStart, t.reg.TraceID(), 0)
	if w.ring != nil && trace.IsEnabled() {
		defer trace.StartRegion(context.Background(), "worksteal.task").End()
	}
	t.ctx = Ctx{pool: w.pool, worker: w, frame: &t.own, reg: t.reg}
	c := &t.ctx
	if !t.reg.Canceled() {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.reg.RecordPanic(r)
				}
			}()
			if t.body != nil {
				// Range task: re-enter the partitioner loop. The arena'd
				// record is the chunk descriptor; no per-chunk closure
				// ever existed.
				if t.lazy {
					c.forLazy(t.lo, t.hi, t.grain, t.body)
				} else {
					c.forDAC(t.lo, t.hi, t.grain, t.body)
				}
			} else {
				t.fn(c)
			}
		}()
	}
	c.Sync() // implicit sync: children must not outlive the task
	w.ring.Record(tracez.KindTaskEnd, 0, 0)
	t.parent.childDone()
	w.recycle(t) // nothing can reach t now; see recycle's safety note
}
