package worksteal

import (
	"context"
	"errors"
)

// ErrClosed is returned by SubmitCtx on a closed pool.
var ErrClosed = errors.New("worksteal: pool is closed")

// The methods in this file make *Pool satisfy the shard.Executor
// submission surface, the runtime-neutral interface the shard.Resolver
// routes over. They are thin adapters over RunCtx/ForDAC: the pool's
// help-first join, partitioner, and cancellation semantics all apply
// unchanged.

// ParallelForCtx runs body over every chunk of [lo, hi) under the
// pool's configured partitioner and blocks until the loop completes.
// A grain < 1 selects DefaultGrain. The submitting goroutine joins
// help-first, exactly as with RunCtx.
func (p *Pool) ParallelForCtx(ctx context.Context, lo, hi, grain int, body func(l, h int)) error {
	if lo >= hi {
		return ctx.Err()
	}
	return p.RunCtx(ctx, func(c *Ctx) {
		c.ForDAC(lo, hi, grain, func(_ *Ctx, l, h int) { body(l, h) })
	})
}

// ParallelReduceCtx runs a chunked reduction over [lo, hi): body folds
// each assigned chunk into that worker's private accumulator (seeded
// with identity), and combine folds the per-worker partials after the
// loop joins. combine must be associative and commutative. On error
// the identity is returned.
func (p *Pool) ParallelReduceCtx(ctx context.Context, lo, hi, grain int, identity float64,
	body func(l, h int, acc float64) float64,
	combine func(a, b float64) float64) (float64, error) {

	if lo >= hi {
		return identity, ctx.Err()
	}
	r := NewReducer(p, identity, combine)
	err := p.RunCtx(ctx, func(c *Ctx) {
		c.ForDAC(lo, hi, grain, func(cc *Ctx, l, h int) {
			v := r.View(cc)
			*v = body(l, h, *v)
		})
	})
	if err != nil {
		return identity, err
	}
	return r.Value(), nil
}

// SubmitCtx schedules fn as an asynchronous root task and returns
// without waiting for it. The task runs with the full scheduler
// underneath it (it could itself call RunCtx); its completion and
// first failure are observed through Quiesce. The caller must Quiesce
// before Close.
func (p *Pool) SubmitCtx(ctx context.Context, fn func()) error {
	if p.closed.Load() {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	p.async.Add()
	go func() {
		defer p.async.Done()
		p.async.Record(p.RunCtx(ctx, func(*Ctx) { fn() }))
	}()
	return nil
}

// Quiesce blocks until every task submitted with SubmitCtx has
// completed and returns the first failure recorded since the previous
// Quiesce. Synchronous Run/RunCtx calls are unaffected — they already
// join before returning.
func (p *Pool) Quiesce() error { return p.async.Wait() }

// PendingWork reports the pool's conservative count of queued-but-not-
// taken tasks — the signal a least-loaded balancer reads when choosing
// a shard.
func (p *Pool) PendingWork() int64 { return p.pending.Load() }
