package worksteal

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// allocsPerRun measures the average heap allocations of one Run call
// issuing spawns tasks, after the pool's freelists and rings have been
// warmed.
func allocsPerRun(p *Pool, spawns int, body func(*Ctx)) float64 {
	run := func() {
		p.Run(func(c *Ctx) {
			for i := 0; i < spawns; i++ {
				c.Spawn(body)
			}
			c.Sync()
		})
	}
	for i := 0; i < 5; i++ {
		run() // warm freelists, deque rings, parker state
	}
	return testing.AllocsPerRun(10, run)
}

// TestSpawnZeroAlloc proves the arena removes the per-spawn
// allocation: quadrupling the spawn count must not move the per-run
// allocation count (the fixed Run overhead — frame, region, root
// closure — cancels in the differential).
func TestSpawnZeroAlloc(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var sink atomic.Int64
	body := func(*Ctx) { sink.Add(1) }

	small := allocsPerRun(p, 64, body)
	big := allocsPerRun(p, 256, body)
	perSpawn := (big - small) / 192
	if perSpawn > 0.05 {
		t.Errorf("Spawn allocates: %.3f allocs/spawn (runs: %.1f @64 vs %.1f @256)",
			perSpawn, small, big)
	}
}

// allocsPerFor measures one Run of an eager or lazy ForDAC over n
// iterations at the given grain.
func allocsPerFor(p *Pool, n, grain int, body func(*Ctx, int, int)) float64 {
	run := func() {
		p.Run(func(c *Ctx) {
			c.ForDAC(0, n, grain, body)
		})
	}
	for i := 0; i < 5; i++ {
		run()
	}
	return testing.AllocsPerRun(10, run)
}

// TestForDACZeroAlloc proves eager chunk descriptors recycle: 4x the
// chunk count must not move the per-run allocation count.
func TestForDACZeroAlloc(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var sink atomic.Int64
	body := func(_ *Ctx, l, h int) { sink.Add(int64(h - l)) }

	const grain = 16
	small := allocsPerFor(p, 64*grain, grain, body)
	big := allocsPerFor(p, 256*grain, grain, body)
	perChunk := (big - small) / 192
	if perChunk > 0.05 {
		t.Errorf("eager ForDAC allocates: %.3f allocs/chunk (runs: %.1f vs %.1f)",
			perChunk, small, big)
	}
}

// TestForLazyZeroAlloc proves lazy-split children recycle. Splits only
// happen under observed demand, so the differential bound is the same:
// whatever splitting occurs must come from the arena.
func TestForLazyZeroAlloc(t *testing.T) {
	p := NewPool(2, WithPartitioner(Lazy))
	defer p.Close()
	var sink atomic.Int64
	body := func(_ *Ctx, l, h int) { sink.Add(int64(h - l)) }

	const grain = 16
	small := allocsPerFor(p, 64*grain, grain, body)
	big := allocsPerFor(p, 256*grain, grain, body)
	perChunk := (big - small) / 192
	if perChunk > 0.05 {
		t.Errorf("lazy ForDAC allocates: %.3f allocs/chunk (runs: %.1f vs %.1f)",
			perChunk, small, big)
	}
}

// TestArenaRecycleStress churns the arena under concurrent stealing,
// draining, and cancellation — the recycle-safety scenarios: stolen
// tasks recycled on the thief, records crossing back through the
// pool-wide freelist, and stragglers observing a parent frame after
// its last child finished. Run with -race this asserts the recycle
// path introduces no data race.
func TestArenaRecycleStress(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sink atomic.Int64
	rounds := 40
	if testing.Short() {
		rounds = 10
	}

	for round := 0; round < rounds; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		// Half the rounds cancel mid-flight from outside.
		if round%2 == 1 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for sink.Load() == 0 {
				}
				cancel()
			}()
		}
		var spawnTree func(c *Ctx, depth int)
		spawnTree = func(c *Ctx, depth int) {
			sink.Add(1)
			if depth == 0 {
				return
			}
			for i := 0; i < 3; i++ {
				c.Spawn(func(cc *Ctx) { spawnTree(cc, depth-1) })
			}
			c.ForDAC(0, 64, 8, func(_ *Ctx, l, h int) { sink.Add(int64(h - l)) })
			c.Sync()
		}
		_ = p.RunCtx(ctx, func(c *Ctx) { spawnTree(c, 3) })
		cancel()
		wg.Wait()
		sink.Store(0)
	}
	// The pool must still run to completion after the churn.
	var total atomic.Int64
	p.Run(func(c *Ctx) {
		c.ForDAC(0, 1000, 10, func(_ *Ctx, l, h int) { total.Add(int64(h - l)) })
	})
	if total.Load() != 1000 {
		t.Fatalf("post-stress ForDAC covered %d of 1000 iterations", total.Load())
	}
}
