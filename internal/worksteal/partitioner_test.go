package worksteal

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"threading/internal/deque"
)

var partitioners = []Partitioner{Eager, Lazy}

func TestPartitionerString(t *testing.T) {
	if Eager.String() != "eager" || Lazy.String() != "lazy" {
		t.Errorf("String: eager=%q lazy=%q", Eager.String(), Lazy.String())
	}
	if Partitioner(99).String() != "unknown" {
		t.Errorf("Partitioner(99).String() = %q", Partitioner(99).String())
	}
	for _, tc := range []struct {
		in   string
		want Partitioner
		ok   bool
	}{
		{"eager", Eager, true},
		{"", Eager, true},
		{"lazy", Lazy, true},
		{"bogus", Eager, false},
	} {
		got, err := ParsePartitioner(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParsePartitioner(%q) = %v, %v", tc.in, got, err)
		}
	}
}

// TestPartitionerCoversRangeOnce is the core partitioner property: for
// both modes, over both deque backends, every iteration of [0, n) is
// executed exactly once, in chunks no larger than the grain.
func TestPartitionerCoversRangeOnce(t *testing.T) {
	for _, part := range partitioners {
		for _, be := range backends {
			part, be := part, be
			t.Run(part.String()+"/"+be.name, func(t *testing.T) {
				p := NewPool(4, WithDequeKind(be.kind), WithPartitioner(part))
				defer p.Close()
				if p.Partitioner() != part {
					t.Fatalf("Partitioner() = %v, want %v", p.Partitioner(), part)
				}
				check := func(n16 uint16, grain8 uint8) bool {
					n := int(n16 % 5000)
					grain := int(grain8%64) + 1
					touched := make([]atomic.Int32, n)
					p.Run(func(c *Ctx) {
						c.ForDAC(0, n, grain, func(_ *Ctx, l, h int) {
							if h-l > grain {
								t.Errorf("chunk [%d,%d) exceeds grain %d", l, h, grain)
							}
							for i := l; i < h; i++ {
								touched[i].Add(1)
							}
						})
					})
					for i := range touched {
						if touched[i].Load() != 1 {
							return false
						}
					}
					return true
				}
				if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestPartitionerCancellation cancels mid-loop and verifies no
// iteration ran more than once, the error is reported, and the pool
// stays usable with full coverage afterwards.
func TestPartitionerCancellation(t *testing.T) {
	for _, part := range partitioners {
		part := part
		t.Run(part.String(), func(t *testing.T) {
			p := NewPool(4, WithPartitioner(part))
			defer p.Close()
			const n = 100000
			touched := make([]atomic.Int32, n)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var fired atomic.Int64
			err := p.RunCtx(ctx, func(c *Ctx) {
				c.ForDAC(0, n, 16, func(_ *Ctx, l, h int) {
					// Cancel partway through so chunks queued behind
					// this one drain without executing.
					if fired.Add(1) == 50 {
						cancel()
					}
					for i := l; i < h; i++ {
						touched[i].Add(1)
					}
				})
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			ran := 0
			for i := range touched {
				switch touched[i].Load() {
				case 0:
				case 1:
					ran++
				default:
					t.Fatalf("iteration %d executed %d times", i, touched[i].Load())
				}
			}
			if ran == n {
				t.Log("cancellation raced loop completion; coverage property still verified")
			}
			// The pool must remain fully usable: exact coverage on a
			// fresh run.
			for i := range touched {
				touched[i].Store(0)
			}
			p.Run(func(c *Ctx) {
				c.ForDAC(0, n, 64, func(_ *Ctx, l, h int) {
					for i := l; i < h; i++ {
						touched[i].Add(1)
					}
				})
			})
			for i := range touched {
				if touched[i].Load() != 1 {
					t.Fatalf("after cancel: iteration %d executed %d times", i, touched[i].Load())
				}
			}
		})
	}
}

// TestLazyReduction checks the reducer path (per-worker views,
// including help-first slots) under the lazy partitioner.
func TestLazyReduction(t *testing.T) {
	p := NewPool(4, WithPartitioner(Lazy))
	defer p.Close()
	const n = 200000
	r := NewReducer(p, 0.0, func(a, b float64) float64 { return a + b })
	p.Run(func(c *Ctx) {
		c.ForDAC(0, n, 0, func(cc *Ctx, l, h int) {
			v := r.View(cc)
			for i := l; i < h; i++ {
				*v += float64(i)
			}
		})
	})
	want := float64(n) * float64(n-1) / 2
	if got := r.Value(); got != want {
		t.Fatalf("lazy reducer sum = %g, want %g", got, want)
	}
}

// TestHelpFirstSubmitter verifies that the submitting goroutine
// executes tasks itself: on a pool whose single worker is blocked, the
// run can only finish if the submitter works help-first.
func TestHelpFirstSubmitter(t *testing.T) {
	p := NewPool(1)
	defer p.Close()

	// Occupy the only dedicated worker (it may also be the helper
	// executing the root; either way the second run below can only
	// proceed through a help-first submitter).
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Run(func(c *Ctx) {
			c.Spawn(func(*Ctx) {
				close(started)
				<-block
			})
			c.Sync()
		})
	}()
	<-started

	var ran atomic.Int64
	p.Run(func(c *Ctx) {
		for i := 0; i < 32; i++ {
			c.Spawn(func(*Ctx) { ran.Add(1) })
		}
		c.Sync()
	})
	if ran.Load() != 32 {
		t.Fatalf("help-first run executed %d of 32 tasks", ran.Load())
	}
	s := p.Stats()
	if s.HelpFirstTasks == 0 {
		t.Error("HelpFirstTasks = 0, want > 0")
	}
	close(block)
	wg.Wait()
}

// TestManyConcurrentRuns exceeds MaxHelpers so some submitters take
// the fallback submit-and-park path, and checks every run completes.
func TestManyConcurrentRuns(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	const runs = 3 * MaxHelpers
	var total atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < runs; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Run(func(c *Ctx) {
				c.ForEach(0, 500, 7, func(_ *Ctx, i int) { total.Add(1) })
			})
		}()
	}
	wg.Wait()
	if total.Load() != runs*500 {
		t.Fatalf("total = %d, want %d", total.Load(), runs*500)
	}
}

// TestLazySplitsUnderDemand forces demand (idle parked workers) and
// verifies the lazy partitioner actually splits — i.e. parallelism is
// not silently lost when other workers are hungry.
func TestLazySplitsUnderDemand(t *testing.T) {
	const workers = 4
	p := NewPool(workers, WithPartitioner(Lazy))
	defer p.Close()
	// On a loaded or single-CPU machine the dedicated workers may not
	// have been scheduled (and parked) yet; demand is only signalled by
	// parked or searching workers, so wait for them to settle first.
	deadline := time.Now().Add(5 * time.Second)
	for p.parkedCount.Load() < workers {
		if time.Now().After(deadline) {
			t.Fatalf("workers never parked (parkedCount=%d)", p.parkedCount.Load())
		}
		runtime.Gosched()
	}
	var sink atomic.Int64
	p.Run(func(c *Ctx) {
		c.ForDAC(0, 1<<16, 8, func(_ *Ctx, l, h int) {
			acc := int64(0)
			for i := l; i < h; i++ {
				acc += int64(i)
			}
			sink.Add(acc)
		})
	})
	if s := p.Stats(); s.LazySplits == 0 {
		t.Errorf("LazySplits = 0 under demand, want > 0 (stats: %+v)", s)
	}
}

func TestBatchStealCounted(t *testing.T) {
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			p := NewPool(4, WithDequeKind(be.kind))
			defer p.Close()
			// A wide eager fan-out from one producer gives thieves
			// queues worth batch-stealing from.
			var n atomic.Int64
			p.Run(func(c *Ctx) {
				for i := 0; i < 5000; i++ {
					c.Spawn(func(*Ctx) { n.Add(1) })
				}
				c.Sync()
			})
			if n.Load() != 5000 {
				t.Fatalf("ran %d of 5000", n.Load())
			}
			if s := p.Stats(); s.BatchSteals == 0 {
				t.Logf("no batch steals observed (stats: %+v); legal but unexpected under fan-out", s)
			} else if s.BatchStolen < 2*s.BatchSteals {
				t.Errorf("BatchStolen = %d < 2*BatchSteals = %d", s.BatchStolen, 2*s.BatchSteals)
			}
		})
	}
}

// TestLazyDeque runs the lazy partitioner over the locked backend so
// the StealHalf/Locked path is exercised by the scheduler too.
func TestLazyDeque(t *testing.T) {
	p := NewPool(3, Options{DequeKind: deque.KindLocked, Partitioner: Lazy})
	defer p.Close()
	var n atomic.Int64
	p.Run(func(c *Ctx) {
		c.ForEach(0, 10000, 4, func(_ *Ctx, i int) { n.Add(1) })
	})
	if n.Load() != 10000 {
		t.Fatalf("ran %d of 10000", n.Load())
	}
}
