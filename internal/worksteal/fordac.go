package worksteal

import (
	"fmt"

	"threading/internal/tracez"
)

// Partitioner selects how ForDAC distributes loop iterations over the
// workers.
type Partitioner int

const (
	// Eager is the paper-faithful cilk_for decomposition: the
	// iteration space is recursively halved into spawned tasks up
	// front, so every chunk reaches an idle worker only through a
	// steal. This serializes chunk distribution through the stealing
	// protocol — the behaviour the reproduced paper identifies as the
	// reason cilk_for trails work-sharing on flat data-parallel loops
	// (Figs. 1-4) — and is therefore required when reproducing the
	// paper's figures.
	Eager Partitioner = iota
	// Lazy is demand-driven binary splitting in the style of TBB's
	// auto_partitioner: the executing worker iterates in place and
	// splits off half its remaining range only when its own deque is
	// empty and some other worker is hungry (parked or searching).
	// A balanced flat loop thus runs with near-sequential overhead,
	// while imbalance or idleness still triggers splitting.
	Lazy
)

// String returns the partitioner's flag-friendly name.
func (p Partitioner) String() string {
	switch p {
	case Eager:
		return "eager"
	case Lazy:
		return "lazy"
	default:
		return "unknown"
	}
}

// ParsePartitioner converts a flag value ("eager" or "lazy") to a
// Partitioner.
func ParsePartitioner(s string) (Partitioner, error) {
	switch s {
	case "eager", "":
		return Eager, nil
	case "lazy":
		return Lazy, nil
	default:
		return Eager, fmt.Errorf("worksteal: unknown partitioner %q (have eager, lazy)", s)
	}
}

// DefaultGrain computes the cilk_for default grain size for n
// iterations on p workers: min(2048, ceil(n/(8p))), the heuristic the
// Cilk Plus runtime documents. Small grains expose parallelism; the
// cap bounds scheduling overhead on huge loops.
func DefaultGrain(n, p int) int {
	if p < 1 {
		p = 1
	}
	g := (n + 8*p - 1) / (8 * p)
	if g > 2048 {
		g = 2048
	}
	if g < 1 {
		g = 1
	}
	return g
}

// ForDAC executes body over [lo, hi) under the pool's configured
// partitioner (WithPartitioner) and joins every spawned subrange
// before returning.
//
// Under Eager it mirrors cilk_for: ranges larger than grain are
// halved, the upper half spawned, and the lower half processed by the
// continuation, so every chunk reaches an idle worker only through a
// steal — chunk distribution serialized through the stealing
// protocol, the behaviour the reproduced paper identifies as the
// reason cilk_for trails work-sharing on flat data-parallel loops.
// Under Lazy the worker iterates in place and splits off half its
// remaining range only when demand is observed.
//
// body receives the context of the worker actually executing the
// chunk (which differs from c for stolen chunks) and a half-open
// subrange [l, h) with h-l <= grain. A grain < 1 selects DefaultGrain.
func (c *Ctx) ForDAC(lo, hi, grain int, body func(cc *Ctx, l, h int)) {
	if lo >= hi {
		return
	}
	if grain < 1 {
		grain = DefaultGrain(hi-lo, c.pool.Workers())
	}
	if c.pool.part == Lazy {
		c.forLazy(lo, hi, grain, body)
	} else {
		c.forDAC(lo, hi, grain, body)
	}
	c.Sync()
}

// forLazy is the demand-driven splitting loop: process one grain-size
// chunk at a time, and only when another worker is hungry (and our
// deque has nothing queued for it already) split off the upper half
// of the remaining range as a stealable task. Cancellation is checked
// at every chunk boundary, like the eager path.
func (c *Ctx) forLazy(lo, hi, grain int, body func(cc *Ctx, l, h int)) {
	for lo < hi {
		if c.reg.Canceled() {
			return
		}
		if hi-lo > grain && c.worker.dq.Len() == 0 && c.pool.demand() {
			mid := lo + (hi-lo)/2
			c.worker.st.CountLazySplit()
			c.worker.ring.Record(tracez.KindLazySplit, int64(mid), int64(hi))
			c.spawnRange(mid, hi, grain, true, body)
			hi = mid
			continue
		}
		h := lo + grain
		if h > hi {
			h = hi
		}
		c.worker.ring.Record(tracez.KindChunkStart, int64(lo), int64(h))
		body(c, lo, h)
		c.worker.ring.Record(tracez.KindChunkEnd, int64(lo), int64(h))
		lo = h
	}
}

// forDAC is the splitting loop: spawn the upper half, keep the lower,
// repeat until the range fits in one grain. Cancellation is checked
// before every split and before the leaf body — the chunk boundaries
// of the divide-and-conquer loop.
func (c *Ctx) forDAC(lo, hi, grain int, body func(cc *Ctx, l, h int)) {
	for hi-lo > grain {
		if c.reg.Canceled() {
			return
		}
		mid := lo + (hi-lo)/2
		// The upper half becomes a range task that re-enters forDAC on
		// whichever worker runs it; its implicit sync at task return
		// joins the nested spawns, as the closure form used to.
		c.spawnRange(mid, hi, grain, false, body)
		hi = mid
	}
	if c.reg.Canceled() {
		return
	}
	c.worker.ring.Record(tracez.KindChunkStart, int64(lo), int64(hi))
	body(c, lo, hi)
	c.worker.ring.Record(tracez.KindChunkEnd, int64(lo), int64(hi))
}

// ForEach is a convenience wrapper over ForDAC that invokes body once
// per index rather than per chunk. As with ForDAC, body receives the
// context of the worker executing the iteration.
func (c *Ctx) ForEach(lo, hi, grain int, body func(cc *Ctx, i int)) {
	c.ForDAC(lo, hi, grain, func(cc *Ctx, l, h int) {
		for i := l; i < h; i++ {
			body(cc, i)
		}
	})
}

// Reducer accumulates a value across tasks without locking, in the
// manner of Cilk Plus reducers: each worker owns a private view,
// updated without synchronization, and Value folds the views together
// after the parallel phase. Unlike true Cilk reducers the combination
// order is by worker index, so Combine must be associative and
// commutative for a deterministic result.
type Reducer[T any] struct {
	views    []paddedView[T]
	identity T
	combine  func(a, b T) T
}

// paddedView keeps each worker's view on its own cache line; without
// the padding, adjacent views would false-share and the reduction
// benchmarks would measure cache-line ping-pong instead of scheduling.
type paddedView[T any] struct {
	v T
	_ [64]byte
}

// NewReducer returns a reducer for the pool with the given identity
// element and combining function. One view is allocated per dedicated
// worker and per help-first submitter slot, since either may execute
// chunks.
func NewReducer[T any](p *Pool, identity T, combine func(a, b T) T) *Reducer[T] {
	r := &Reducer[T]{
		views:    make([]paddedView[T], p.Workers()+MaxHelpers),
		identity: identity,
		combine:  combine,
	}
	for i := range r.views {
		r.views[i].v = identity
	}
	return r
}

// Update folds v into the calling worker's private view.
func (r *Reducer[T]) Update(c *Ctx, v T) {
	id := c.WorkerID()
	r.views[id].v = r.combine(r.views[id].v, v)
}

// View returns a pointer to the calling worker's private view, for
// callers that want to accumulate in place within a chunk.
func (r *Reducer[T]) View(c *Ctx) *T {
	return &r.views[c.WorkerID()].v
}

// Value folds all views and returns the result. It must only be
// called after the parallel phase using the reducer has synced.
func (r *Reducer[T]) Value() T {
	acc := r.identity
	for i := range r.views {
		acc = r.combine(acc, r.views[i].v)
	}
	return acc
}

// Reset restores every view to the identity element.
func (r *Reducer[T]) Reset() {
	for i := range r.views {
		r.views[i].v = r.identity
	}
}
