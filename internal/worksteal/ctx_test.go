package worksteal

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"threading/internal/deque"
	"threading/internal/sched"
)

func TestRunCtxCancelAndReuse(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	err := pool.RunCtx(ctx, func(c *Ctx) {
		for i := 0; i < 16; i++ {
			c.Spawn(func(*Ctx) {
				once.Do(cancel)
				<-ctx.Done()
			})
		}
		c.Sync()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// The pool must remain fully usable after a canceled run.
	var n atomic.Int64
	pool.Run(func(c *Ctx) {
		c.ForEach(0, 100, 0, func(_ *Ctx, i int) { n.Add(1) })
	})
	if n.Load() != 100 {
		t.Fatalf("after cancel, ForEach ran %d of 100", n.Load())
	}
}

func TestRunCtxPanicTyped(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()

	err := pool.RunCtx(context.Background(), func(c *Ctx) {
		c.Spawn(func(*Ctx) { panic("spawn-boom") })
		c.Sync()
	})
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *sched.PanicError", err)
	}
	if pe.Value != "spawn-boom" {
		t.Fatalf("PanicError.Value = %v, want spawn-boom", pe.Value)
	}
}

func TestNewPoolOptionForms(t *testing.T) {
	// Legacy struct literal and functional options must both work.
	legacy := NewPool(2, Options{DequeKind: deque.KindLocked})
	defer legacy.Close()
	modern := NewPool(2, WithDequeKind(deque.KindLocked), WithSpinBeforePark(8))
	defer modern.Close()

	for _, pool := range []*Pool{legacy, modern} {
		var n atomic.Int64
		pool.Run(func(c *Ctx) {
			c.ForEach(0, 64, 0, func(_ *Ctx, i int) { n.Add(1) })
		})
		if n.Load() != 64 {
			t.Fatalf("ran %d of 64", n.Load())
		}
	}
}
