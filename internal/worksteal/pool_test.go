package worksteal

import (
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"threading/internal/deque"
)

var backends = []struct {
	name string
	kind deque.Kind
}{
	{"chase-lev", deque.KindChaseLev},
	{"locked", deque.KindLocked},
}

func TestRunSimple(t *testing.T) {
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			p := NewPool(4, Options{DequeKind: be.kind})
			defer p.Close()
			var ran atomic.Bool
			p.Run(func(c *Ctx) { ran.Store(true) })
			if !ran.Load() {
				t.Fatal("root task did not run")
			}
		})
	}
}

func TestSpawnSyncCounts(t *testing.T) {
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			p := NewPool(4, Options{DequeKind: be.kind})
			defer p.Close()
			var count atomic.Int64
			p.Run(func(c *Ctx) {
				for i := 0; i < 100; i++ {
					c.Spawn(func(cc *Ctx) { count.Add(1) })
				}
				c.Sync()
				if got := count.Load(); got != 100 {
					t.Errorf("after Sync: count = %d, want 100", got)
				}
			})
			if got := count.Load(); got != 100 {
				t.Fatalf("count = %d, want 100", got)
			}
		})
	}
}

func TestImplicitSyncAtReturn(t *testing.T) {
	p := NewPool(2, Options{})
	defer p.Close()
	var inner atomic.Bool
	p.Run(func(c *Ctx) {
		c.Spawn(func(cc *Ctx) {
			cc.Spawn(func(ccc *Ctx) { inner.Store(true) })
			// No explicit Sync: the implicit sync at return must join
			// the grandchild before the child is reported done.
		})
	})
	if !inner.Load() {
		t.Fatal("grandchild not joined by implicit sync")
	}
}

// fibCtx is the canonical recursive spawn test: compute fib(n) with a
// spawn per branch and verify the result.
func fibCtx(c *Ctx, n int, out *uint64) {
	if n < 2 {
		*out = uint64(n)
		return
	}
	var a, b uint64
	c.Spawn(func(cc *Ctx) { fibCtx(cc, n-1, &a) })
	fibCtx(c, n-2, &b)
	c.Sync()
	*out = a + b
}

func fibSeq(n int) uint64 {
	if n < 2 {
		return uint64(n)
	}
	return fibSeq(n-1) + fibSeq(n-2)
}

func TestFibRecursive(t *testing.T) {
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			for _, workers := range []int{1, 2, 4} {
				p := NewPool(workers, Options{DequeKind: be.kind})
				var got uint64
				p.Run(func(c *Ctx) { fibCtx(c, 20, &got) })
				p.Close()
				if want := fibSeq(20); got != want {
					t.Fatalf("workers=%d: fib(20) = %d, want %d", workers, got, want)
				}
			}
		})
	}
}

func TestForDACCoversRange(t *testing.T) {
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			p := NewPool(4, Options{DequeKind: be.kind})
			defer p.Close()
			check := func(n16 uint16, grain8 uint8) bool {
				n := int(n16 % 5000)
				grain := int(grain8%64) + 1
				touched := make([]atomic.Int32, n)
				p.Run(func(c *Ctx) {
					c.ForDAC(0, n, grain, func(_ *Ctx, l, h int) {
						if h-l > grain {
							t.Errorf("chunk [%d,%d) exceeds grain %d", l, h, grain)
						}
						for i := l; i < h; i++ {
							touched[i].Add(1)
						}
					})
				})
				for i := range touched {
					if touched[i].Load() != 1 {
						return false
					}
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestForDACEmptyAndDefaults(t *testing.T) {
	p := NewPool(2, Options{})
	defer p.Close()
	p.Run(func(c *Ctx) {
		ran := false
		c.ForDAC(5, 5, 0, func(_ *Ctx, l, h int) { ran = true })
		if ran {
			t.Error("body ran for empty range")
		}
		var n atomic.Int64
		c.ForDAC(0, 1000, 0, func(_ *Ctx, l, h int) { n.Add(int64(h - l)) }) // grain 0 -> default
		if n.Load() != 1000 {
			t.Errorf("default-grain ForDAC covered %d iterations, want 1000", n.Load())
		}
	})
}

func TestForEach(t *testing.T) {
	p := NewPool(4, Options{})
	defer p.Close()
	const n = 10000
	data := make([]int64, n)
	p.Run(func(c *Ctx) {
		c.ForEach(0, n, 16, func(_ *Ctx, i int) { atomic.AddInt64(&data[i], int64(i)) })
	})
	for i, v := range data {
		if v != int64(i) {
			t.Fatalf("data[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestDefaultGrain(t *testing.T) {
	cases := []struct{ n, p, want int }{
		{0, 4, 1},
		{1, 4, 1},
		{32, 4, 1},
		{1 << 20, 4, 2048},    // capped
		{800, 4, 25},          // 800/(8*4)
		{100, 0, 13},          // p clamped to 1: ceil(100/8)
		{8_000_000, 36, 2048}, // paper-scale loop
	}
	for _, tc := range cases {
		if got := DefaultGrain(tc.n, tc.p); got != tc.want {
			t.Errorf("DefaultGrain(%d,%d) = %d, want %d", tc.n, tc.p, got, tc.want)
		}
	}
}

func TestReducerSum(t *testing.T) {
	p := NewPool(4, Options{})
	defer p.Close()
	const n = 100000
	r := NewReducer(p, 0.0, func(a, b float64) float64 { return a + b })
	p.Run(func(c *Ctx) {
		c.ForDAC(0, n, 0, func(cc *Ctx, l, h int) {
			v := r.View(cc)
			for i := l; i < h; i++ {
				*v += float64(i)
			}
		})
	})
	want := float64(n) * float64(n-1) / 2
	if got := r.Value(); got != want {
		t.Fatalf("reducer sum = %g, want %g", got, want)
	}
	r.Reset()
	if got := r.Value(); got != 0 {
		t.Fatalf("after Reset: %g, want 0", got)
	}
}

func TestReducerUpdate(t *testing.T) {
	p := NewPool(3, Options{})
	defer p.Close()
	r := NewReducer(p, 1.0, func(a, b float64) float64 { return a * b })
	p.Run(func(c *Ctx) {
		c.ForEach(1, 11, 1, func(cc *Ctx, i int) { r.Update(cc, float64(i)) })
	})
	if got, want := r.Value(), 3628800.0; got != want { // 10!
		t.Fatalf("product = %g, want %g", got, want)
	}
}

func TestPanicPropagates(t *testing.T) {
	p := NewPool(2, Options{})
	defer p.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not re-panic")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic value %q does not carry the original message", r)
		}
	}()
	p.Run(func(c *Ctx) {
		c.Spawn(func(cc *Ctx) { panic("boom") })
		c.Sync()
	})
}

func TestPoolSurvivesPanic(t *testing.T) {
	p := NewPool(2, Options{})
	defer p.Close()
	func() {
		defer func() { recover() }()
		p.Run(func(c *Ctx) { panic("first") })
	}()
	var ok atomic.Bool
	p.Run(func(c *Ctx) { ok.Store(true) })
	if !ok.Load() {
		t.Fatal("pool unusable after a panicking run")
	}
}

func TestConcurrentRuns(t *testing.T) {
	p := NewPool(4, Options{})
	defer p.Close()
	const runs = 8
	var total atomic.Int64
	done := make(chan struct{}, runs)
	for r := 0; r < runs; r++ {
		go func() {
			p.Run(func(c *Ctx) {
				c.ForEach(0, 1000, 10, func(_ *Ctx, i int) { total.Add(1) })
			})
			done <- struct{}{}
		}()
	}
	for r := 0; r < runs; r++ {
		<-done
	}
	if total.Load() != runs*1000 {
		t.Fatalf("total = %d, want %d", total.Load(), runs*1000)
	}
}

func TestStatsRecorded(t *testing.T) {
	p := NewPool(2, Options{})
	defer p.Close()
	p.Run(func(c *Ctx) {
		for i := 0; i < 50; i++ {
			c.Spawn(func(cc *Ctx) {})
		}
		c.Sync()
	})
	s := p.Stats()
	if s.Spawns != 50 {
		t.Errorf("Spawns = %d, want 50", s.Spawns)
	}
	if s.TasksExecuted != 51 { // 50 children + root
		t.Errorf("TasksExecuted = %d, want 51", s.TasksExecuted)
	}
	p.ResetStats()
	if p.Stats().Spawns != 0 {
		t.Error("ResetStats left residue")
	}
}

func TestWorkerIDInRange(t *testing.T) {
	const workers = 3
	p := NewPool(workers, Options{})
	defer p.Close()
	p.Run(func(c *Ctx) {
		c.ForEach(0, 1000, 1, func(_ *Ctx, i int) {})
		// The root may execute on a help-first submitter slot, whose
		// ids follow the dedicated workers'.
		if id := c.WorkerID(); id < 0 || id >= workers+MaxHelpers {
			t.Errorf("WorkerID = %d out of range", id)
		}
		if c.Pool() != p {
			t.Error("Ctx.Pool mismatch")
		}
	})
}

func TestRunOnClosedPoolPanics(t *testing.T) {
	p := NewPool(1, Options{})
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Run on closed pool did not panic")
		}
	}()
	p.Run(func(c *Ctx) {})
}

func TestNewPoolValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(0) did not panic")
		}
	}()
	NewPool(0, Options{})
}
