package worksteal

import (
	"threading/internal/sched"
	"threading/internal/tracez"
)

// Ctx is the handle a task uses to interact with the scheduler. A Ctx
// is valid only for the duration of the task invocation it was passed
// to and must not be retained or shared across tasks.
type Ctx struct {
	pool   *Pool
	worker *worker
	frame  *frame
	reg    *sched.Region
}

// Pool returns the scheduler this context belongs to.
func (c *Ctx) Pool() *Pool { return c.pool }

// WorkerID returns the index of the worker executing the task, in
// [0, Pool().Workers()+MaxHelpers): dedicated workers occupy
// [0, Workers()), help-first submitter slots the rest. Useful for
// per-worker reducer views.
func (c *Ctx) WorkerID() int { return c.worker.id }

// Canceled reports whether the enclosing Run has been canceled — by
// the context passed to RunCtx or by a panic in another task of the
// run. Long-running task bodies can poll it to stop early; the
// scheduler itself checks it at every task and chunk boundary.
func (c *Ctx) Canceled() bool { return c.reg.Canceled() }

// Spawn schedules fn as a child task of the current one, equivalent to
// cilk_spawn. The child may run on any worker; the current task
// continues immediately. Children are joined by Sync, or implicitly
// when the task returns. The child inherits the Run's cancellation
// region, so spawning into a canceled run queues tasks that drain
// without executing.
func (c *Ctx) Spawn(fn func(*Ctx)) {
	t := c.worker.alloc()
	t.fn, t.parent, t.reg = fn, c.frame, c.reg
	c.push(t)
}

// spawnRange schedules body over [lo, hi) as a child task without
// materializing a closure: the arena'd task record itself is the
// chunk descriptor (run re-enters the partitioner loop from it), so
// ForDAC decomposition allocates nothing in steady state.
func (c *Ctx) spawnRange(lo, hi, grain int, lazy bool, body func(cc *Ctx, l, h int)) {
	t := c.worker.alloc()
	t.body, t.lo, t.hi, t.grain, t.lazy = body, lo, hi, grain, lazy
	t.parent, t.reg = c.frame, c.reg
	c.push(t)
}

// push enqueues a prepared child task on the executing worker's deque
// with the shared spawn bookkeeping.
func (c *Ctx) push(t *task) {
	c.frame.pending.Add(1)
	c.worker.st.CountSpawn()
	c.worker.ring.Record(tracez.KindSpawn, 0, 0)
	c.pool.pending.Add(1)
	c.worker.dq.PushBottom(t)
	c.pool.signalWork()
}

// Sync blocks until every child spawned by this task has completed,
// equivalent to cilk_sync. While waiting, the worker keeps executing
// other tasks (its own deque first, then steals), so a Sync deep in a
// recursive decomposition does not idle the core.
func (c *Ctx) Sync() {
	c.worker.syncFrame(c.frame)
}
