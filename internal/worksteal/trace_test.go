package worksteal

import (
	"testing"

	"threading/internal/tracez"
)

func traceKindCounts(tr *tracez.Tracer) map[tracez.Kind]int {
	counts := map[tracez.Kind]int{}
	for _, wt := range tr.Snapshot().Workers {
		for _, e := range wt.Events {
			counts[e.Kind]++
		}
	}
	return counts
}

func TestPoolTracingRecordsEvents(t *testing.T) {
	tr := tracez.New(1 << 12)
	p := NewPool(2, WithTracer(tr))
	defer p.Close()

	grain := 16
	p.Run(func(c *Ctx) {
		c.ForDAC(0, 512, grain, func(*Ctx, int, int) {})
	})
	p.Run(func(c *Ctx) {
		for i := 0; i < 8; i++ {
			c.Spawn(func(*Ctx) {})
		}
		c.Sync()
	})

	counts := traceKindCounts(tr)
	if counts[tracez.KindTaskStart] == 0 || counts[tracez.KindTaskStart] != counts[tracez.KindTaskEnd] {
		t.Fatalf("task spans unbalanced: %d starts, %d ends",
			counts[tracez.KindTaskStart], counts[tracez.KindTaskEnd])
	}
	if counts[tracez.KindSpawn] < 8 {
		t.Fatalf("spawn events = %d, want >= 8", counts[tracez.KindSpawn])
	}
	if counts[tracez.KindChunkStart] == 0 || counts[tracez.KindChunkStart] != counts[tracez.KindChunkEnd] {
		t.Fatalf("chunk spans unbalanced: %d starts, %d ends",
			counts[tracez.KindChunkStart], counts[tracez.KindChunkEnd])
	}
	// Run joins help-first, so the submitter claimed a helper slot.
	if counts[tracez.KindHelpClaim] == 0 {
		t.Fatal("no help-claim events from the submitting goroutine")
	}
}

func TestPoolChunkEventsCarryRanges(t *testing.T) {
	tr := tracez.New(1 << 12)
	p := NewPool(1, WithTracer(tr))
	defer p.Close()

	grain := 32
	p.Run(func(c *Ctx) {
		c.ForDAC(0, 128, grain, func(*Ctx, int, int) {})
	})

	var covered int64
	for _, wt := range tr.Snapshot().Workers {
		for _, e := range wt.Events {
			if e.Kind == tracez.KindChunkStart {
				if e.A2 <= e.A1 || e.A2-e.A1 > int64(grain) {
					t.Fatalf("chunk [%d, %d) violates grain %d", e.A1, e.A2, grain)
				}
				covered += e.A2 - e.A1
			}
		}
	}
	if covered != 128 {
		t.Fatalf("chunk events cover %d iterations, want 128", covered)
	}
}

func TestPoolUntracedHasNoRings(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	for _, w := range p.victims {
		if w.ring != nil {
			t.Fatalf("worker %d has a ring without WithTracer", w.id)
		}
	}
}
