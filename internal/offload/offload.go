// Package offload simulates an accelerator with a discrete memory
// space — the offloading model of the paper's Table I (OpenMP target,
// OpenACC, CUDA, OpenCL) and the explicit data map/movement feature
// of Table II.
//
// No accelerator hardware is assumed: the "device" is a worker pool
// with its own address space. What the simulation preserves is the
// programming model and its costs: device buffers are genuine copies
// (host writes after a transfer are invisible to the device, exactly
// as across PCIe), transfers are real memcpys plus a configurable
// latency, kernels are data-parallel launches over the device's
// compute units, and streams give CUDA-style asynchronous ordering
// (FIFO within a stream, concurrency across streams).
package offload

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"threading/internal/sched"
	"threading/internal/worksteal"
)

// Options configure a simulated device.
//
// Deprecated: prefer the functional options (WithUnits, WithLatency).
// Options remains usable — a literal passed to NewDevice still
// applies wholesale — so existing callers compile unchanged.
type Options struct {
	// Units is the number of compute units (kernel-executing
	// workers). Zero selects 4.
	Units int
	// TransferLatency is added to every host<->device copy to model
	// interconnect latency. Zero means copies cost only the memcpy.
	TransferLatency time.Duration
}

// Option configures a Device at construction. The legacy Options
// struct itself implements Option (applying every field at once), so
// both NewDevice(name, Options{...}) and NewDevice(name, WithUnits(8))
// are valid.
type Option interface{ applyDevice(*Options) }

func (o Options) applyDevice(dst *Options) { *dst = o }

type deviceOption func(*Options)

func (f deviceOption) applyDevice(o *Options) { f(o) }

// WithUnits sets the number of compute units.
func WithUnits(n int) Option {
	return deviceOption(func(o *Options) { o.Units = n })
}

// WithLatency sets the simulated interconnect latency added to every
// host<->device copy.
func WithLatency(d time.Duration) Option {
	return deviceOption(func(o *Options) { o.TransferLatency = d })
}

// Device is a simulated accelerator.
type Device struct {
	name string
	opts Options
	pool *worksteal.Pool

	mu     sync.Mutex
	live   int // live buffers, for leak detection
	closed bool

	statsMu   sync.Mutex
	toDevice  int64 // bytes host->device
	fromDev   int64 // bytes device->host
	launches  int64
	workItems int64
}

// NewDevice creates a simulated accelerator. Options may be given
// either as functional options or as a legacy Options literal.
func NewDevice(name string, options ...Option) *Device {
	var opts Options
	for _, o := range options {
		o.applyDevice(&opts)
	}
	if opts.Units <= 0 {
		opts.Units = 4
	}
	return &Device{
		name: name,
		opts: opts,
		pool: worksteal.NewPool(opts.Units),
	}
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Units returns the number of compute units.
func (d *Device) Units() int { return d.opts.Units }

// Close releases the device. All buffers must have been freed.
func (d *Device) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("offload: device %s closed twice", d.name)
	}
	if d.live != 0 {
		return fmt.Errorf("offload: device %s closed with %d live buffers", d.name, d.live)
	}
	d.closed = true
	d.pool.Close()
	return nil
}

// TransferStats reports cumulative transfer and launch counters.
type TransferStats struct {
	BytesToDevice   int64
	BytesFromDevice int64
	KernelLaunches  int64
	WorkItems       int64
}

// Stats returns the device's cumulative counters.
func (d *Device) Stats() TransferStats {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return TransferStats{
		BytesToDevice:   d.toDevice,
		BytesFromDevice: d.fromDev,
		KernelLaunches:  d.launches,
		WorkItems:       d.workItems,
	}
}

// Buffer is a device-resident float64 array. Its storage belongs to
// the device's address space: the only way data crosses the boundary
// is ToDevice / FromDevice.
type Buffer struct {
	dev  *Device
	data []float64
	free bool
}

// Alloc creates an uninitialized device buffer of n elements
// (cudaMalloc).
func (d *Device) Alloc(n int) *Buffer {
	if n < 0 {
		panic("offload: negative buffer size")
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		panic("offload: Alloc on closed device")
	}
	d.live++
	d.mu.Unlock()
	return &Buffer{dev: d, data: make([]float64, n)}
}

// Len returns the buffer's element count.
func (b *Buffer) Len() int { return len(b.data) }

// Device returns the owning device.
func (b *Buffer) Device() *Device { return b.dev }

// Free releases the buffer (cudaFree). Using a freed buffer panics.
func (b *Buffer) Free() {
	if b.free {
		panic("offload: buffer freed twice")
	}
	b.free = true
	b.data = nil
	b.dev.mu.Lock()
	b.dev.live--
	b.dev.mu.Unlock()
}

func (b *Buffer) check(n int, op string) {
	if b.free {
		panic("offload: " + op + " on freed buffer")
	}
	if n != len(b.data) {
		panic(fmt.Sprintf("offload: %s size mismatch: host %d, device %d", op, n, len(b.data)))
	}
}

// ToDevice copies host into the buffer (cudaMemcpy host-to-device).
// The buffer and slice lengths must match.
func (d *Device) ToDevice(b *Buffer, host []float64) {
	b.check(len(host), "ToDevice")
	if d.opts.TransferLatency > 0 {
		time.Sleep(d.opts.TransferLatency)
	}
	copy(b.data, host)
	d.statsMu.Lock()
	d.toDevice += int64(8 * len(host))
	d.statsMu.Unlock()
}

// FromDevice copies the buffer into host (cudaMemcpy
// device-to-host).
func (d *Device) FromDevice(host []float64, b *Buffer) {
	b.check(len(host), "FromDevice")
	if d.opts.TransferLatency > 0 {
		time.Sleep(d.opts.TransferLatency)
	}
	copy(host, b.data)
	d.statsMu.Lock()
	d.fromDev += int64(8 * len(b.data))
	d.statsMu.Unlock()
}

// Kernel is a device function invoked once per work item with the
// item index and the launch's buffer arguments (device views).
type Kernel func(i int, args [][]float64)

// Launch executes kernel over n work items on the device's compute
// units and blocks until completion — a synchronous kernel launch.
// Buffers must belong to this device. A panic in the kernel re-panics
// on the launcher; LaunchCtx surfaces it as an error instead.
func (d *Device) Launch(n int, kernel Kernel, args ...*Buffer) {
	if err := d.LaunchCtx(context.Background(), n, kernel, args...); err != nil {
		var pe *sched.PanicError
		if errors.As(err, &pe) {
			panic(fmt.Sprintf("offload: kernel panicked: %v", pe.Value))
		}
		panic(fmt.Sprintf("offload: launch failed: %v", err))
	}
}

// LaunchCtx is Launch with cooperative cancellation: once ctx is done
// remaining work items are skipped at chunk boundaries, in-flight
// items drain, and the context's error is returned. A panic in the
// kernel cancels the launch and is returned as a *sched.PanicError.
// The device remains usable afterwards.
func (d *Device) LaunchCtx(ctx context.Context, n int, kernel Kernel, args ...*Buffer) error {
	views := make([][]float64, len(args))
	for i, b := range args {
		if b.dev != d {
			panic(fmt.Sprintf("offload: buffer of device %s passed to %s", b.dev.name, d.name))
		}
		if b.free {
			panic("offload: Launch with freed buffer")
		}
		views[i] = b.data
	}
	d.statsMu.Lock()
	d.launches++
	d.workItems += int64(n)
	d.statsMu.Unlock()
	return d.pool.RunCtx(ctx, func(c *worksteal.Ctx) {
		c.ForEach(0, n, 0, func(_ *worksteal.Ctx, i int) {
			kernel(i, views)
		})
	})
}

// MapDir selects OpenMP-style map semantics.
type MapDir int

const (
	// MapTo copies host data in before the region (map(to:...)).
	MapTo MapDir = 1 << iota
	// MapFrom copies device data out after the region (map(from:...)).
	MapFrom
	// MapToFrom does both (map(tofrom:...)).
	MapToFrom = MapTo | MapFrom
	// MapAlloc allocates uninitialized device storage (map(alloc:...)).
	MapAlloc MapDir = 0
)

// Mapping binds one host slice to map semantics for a target region.
type Mapping struct {
	Host []float64
	Dir  MapDir
}

// Target runs body with device buffers mapped from the given host
// slices, implementing the OpenMP target-region data environment:
// alloc/to copies in as requested, body runs with the device buffers,
// from/tofrom copies out, and all buffers are freed — regardless of
// how body returns. A panic in body re-panics after cleanup;
// TargetCtx surfaces it as an error instead.
func (d *Device) Target(maps []Mapping, body func(bufs []*Buffer)) {
	if err := d.TargetCtx(context.Background(), maps, body); err != nil {
		var pe *sched.PanicError
		if errors.As(err, &pe) {
			panic(fmt.Sprintf("offload: target region panicked: %v", pe.Value))
		}
		panic(fmt.Sprintf("offload: target region failed: %v", err))
	}
}

// TargetCtx is Target with cooperative cancellation and structured
// error propagation. If ctx is done before the region starts, nothing
// is mapped and the context's error is returned. If the region is
// canceled while body runs (or body panics), the from/tofrom copy-out
// is skipped — the device data is not known to be complete — but all
// buffers are still freed, and the first failure (the context's error
// or the panic as a *sched.PanicError) is returned. The device
// remains usable afterwards.
func (d *Device) TargetCtx(ctx context.Context, maps []Mapping, body func(bufs []*Buffer)) error {
	reg := sched.NewRegion(ctx)
	if reg.Canceled() {
		return reg.Finish()
	}
	bufs := make([]*Buffer, len(maps))
	for i, mp := range maps {
		bufs[i] = d.Alloc(len(mp.Host))
		if mp.Dir&MapTo != 0 {
			d.ToDevice(bufs[i], mp.Host)
		}
	}
	defer func() {
		copyOut := !reg.Canceled()
		for i, mp := range maps {
			if copyOut && mp.Dir&MapFrom != 0 {
				d.FromDevice(mp.Host, bufs[i])
			}
			bufs[i].Free()
		}
	}()
	func() {
		defer func() {
			if r := recover(); r != nil {
				reg.RecordPanic(r)
			}
		}()
		body(bufs)
	}()
	return reg.Finish()
}
