// Package offload simulates an accelerator with a discrete memory
// space — the offloading model of the paper's Table I (OpenMP target,
// OpenACC, CUDA, OpenCL) and the explicit data map/movement feature
// of Table II.
//
// No accelerator hardware is assumed: the "device" is a worker pool
// with its own address space. What the simulation preserves is the
// programming model and its costs: device buffers are genuine copies
// (host writes after a transfer are invisible to the device, exactly
// as across PCIe), transfers are real memcpys plus a configurable
// latency, kernels are data-parallel launches over the device's
// compute units, and streams give CUDA-style asynchronous ordering
// (FIFO within a stream, concurrency across streams).
package offload

import (
	"fmt"
	"sync"
	"time"

	"threading/internal/worksteal"
)

// Options configure a simulated device.
type Options struct {
	// Units is the number of compute units (kernel-executing
	// workers). Zero selects 4.
	Units int
	// TransferLatency is added to every host<->device copy to model
	// interconnect latency. Zero means copies cost only the memcpy.
	TransferLatency time.Duration
}

// Device is a simulated accelerator.
type Device struct {
	name string
	opts Options
	pool *worksteal.Pool

	mu     sync.Mutex
	live   int // live buffers, for leak detection
	closed bool

	statsMu   sync.Mutex
	toDevice  int64 // bytes host->device
	fromDev   int64 // bytes device->host
	launches  int64
	workItems int64
}

// NewDevice creates a simulated accelerator.
func NewDevice(name string, opts Options) *Device {
	if opts.Units <= 0 {
		opts.Units = 4
	}
	return &Device{
		name: name,
		opts: opts,
		pool: worksteal.NewPool(opts.Units, worksteal.Options{}),
	}
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Units returns the number of compute units.
func (d *Device) Units() int { return d.opts.Units }

// Close releases the device. All buffers must have been freed.
func (d *Device) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("offload: device %s closed twice", d.name)
	}
	if d.live != 0 {
		return fmt.Errorf("offload: device %s closed with %d live buffers", d.name, d.live)
	}
	d.closed = true
	d.pool.Close()
	return nil
}

// TransferStats reports cumulative transfer and launch counters.
type TransferStats struct {
	BytesToDevice   int64
	BytesFromDevice int64
	KernelLaunches  int64
	WorkItems       int64
}

// Stats returns the device's cumulative counters.
func (d *Device) Stats() TransferStats {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return TransferStats{
		BytesToDevice:   d.toDevice,
		BytesFromDevice: d.fromDev,
		KernelLaunches:  d.launches,
		WorkItems:       d.workItems,
	}
}

// Buffer is a device-resident float64 array. Its storage belongs to
// the device's address space: the only way data crosses the boundary
// is ToDevice / FromDevice.
type Buffer struct {
	dev  *Device
	data []float64
	free bool
}

// Alloc creates an uninitialized device buffer of n elements
// (cudaMalloc).
func (d *Device) Alloc(n int) *Buffer {
	if n < 0 {
		panic("offload: negative buffer size")
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		panic("offload: Alloc on closed device")
	}
	d.live++
	d.mu.Unlock()
	return &Buffer{dev: d, data: make([]float64, n)}
}

// Len returns the buffer's element count.
func (b *Buffer) Len() int { return len(b.data) }

// Device returns the owning device.
func (b *Buffer) Device() *Device { return b.dev }

// Free releases the buffer (cudaFree). Using a freed buffer panics.
func (b *Buffer) Free() {
	if b.free {
		panic("offload: buffer freed twice")
	}
	b.free = true
	b.data = nil
	b.dev.mu.Lock()
	b.dev.live--
	b.dev.mu.Unlock()
}

func (b *Buffer) check(n int, op string) {
	if b.free {
		panic("offload: " + op + " on freed buffer")
	}
	if n != len(b.data) {
		panic(fmt.Sprintf("offload: %s size mismatch: host %d, device %d", op, n, len(b.data)))
	}
}

// ToDevice copies host into the buffer (cudaMemcpy host-to-device).
// The buffer and slice lengths must match.
func (d *Device) ToDevice(b *Buffer, host []float64) {
	b.check(len(host), "ToDevice")
	if d.opts.TransferLatency > 0 {
		time.Sleep(d.opts.TransferLatency)
	}
	copy(b.data, host)
	d.statsMu.Lock()
	d.toDevice += int64(8 * len(host))
	d.statsMu.Unlock()
}

// FromDevice copies the buffer into host (cudaMemcpy
// device-to-host).
func (d *Device) FromDevice(host []float64, b *Buffer) {
	b.check(len(host), "FromDevice")
	if d.opts.TransferLatency > 0 {
		time.Sleep(d.opts.TransferLatency)
	}
	copy(host, b.data)
	d.statsMu.Lock()
	d.fromDev += int64(8 * len(b.data))
	d.statsMu.Unlock()
}

// Kernel is a device function invoked once per work item with the
// item index and the launch's buffer arguments (device views).
type Kernel func(i int, args [][]float64)

// Launch executes kernel over n work items on the device's compute
// units and blocks until completion — a synchronous kernel launch.
// Buffers must belong to this device.
func (d *Device) Launch(n int, kernel Kernel, args ...*Buffer) {
	views := make([][]float64, len(args))
	for i, b := range args {
		if b.dev != d {
			panic(fmt.Sprintf("offload: buffer of device %s passed to %s", b.dev.name, d.name))
		}
		if b.free {
			panic("offload: Launch with freed buffer")
		}
		views[i] = b.data
	}
	d.statsMu.Lock()
	d.launches++
	d.workItems += int64(n)
	d.statsMu.Unlock()
	d.pool.Run(func(c *worksteal.Ctx) {
		c.ForEach(0, n, 0, func(_ *worksteal.Ctx, i int) {
			kernel(i, views)
		})
	})
}

// MapDir selects OpenMP-style map semantics.
type MapDir int

const (
	// MapTo copies host data in before the region (map(to:...)).
	MapTo MapDir = 1 << iota
	// MapFrom copies device data out after the region (map(from:...)).
	MapFrom
	// MapToFrom does both (map(tofrom:...)).
	MapToFrom = MapTo | MapFrom
	// MapAlloc allocates uninitialized device storage (map(alloc:...)).
	MapAlloc MapDir = 0
)

// Mapping binds one host slice to map semantics for a target region.
type Mapping struct {
	Host []float64
	Dir  MapDir
}

// Target runs body with device buffers mapped from the given host
// slices, implementing the OpenMP target-region data environment:
// alloc/to copies in as requested, body runs with the device buffers,
// from/tofrom copies out, and all buffers are freed — regardless of
// how body returns.
func (d *Device) Target(maps []Mapping, body func(bufs []*Buffer)) {
	bufs := make([]*Buffer, len(maps))
	for i, mp := range maps {
		bufs[i] = d.Alloc(len(mp.Host))
		if mp.Dir&MapTo != 0 {
			d.ToDevice(bufs[i], mp.Host)
		}
	}
	defer func() {
		for i, mp := range maps {
			if mp.Dir&MapFrom != 0 {
				d.FromDevice(mp.Host, bufs[i])
			}
			bufs[i].Free()
		}
	}()
	body(bufs)
}
