package offload

import "sync"

// Stream is a CUDA-style execution stream: operations enqueued on one
// stream execute in FIFO order; operations on different streams may
// overlap. This is the asynchronous-execution mechanism Table I lists
// for CUDA (stream) and groups with OpenCL pipes and TBB pipelines.
type Stream struct {
	dev    *Device
	ops    chan func()
	drain  sync.WaitGroup
	closed bool
}

// NewStream creates a stream on the device. Streams must be
// Destroyed before the device is Closed.
func (d *Device) NewStream() *Stream {
	s := &Stream{dev: d, ops: make(chan func(), 64)}
	s.drain.Add(1)
	go func() {
		defer s.drain.Done()
		for op := range s.ops {
			op()
		}
	}()
	return s
}

// LaunchAsync enqueues a kernel launch on the stream and returns
// immediately.
func (s *Stream) LaunchAsync(n int, kernel Kernel, args ...*Buffer) {
	if s.closed {
		panic("offload: LaunchAsync on destroyed stream")
	}
	s.ops <- func() { s.dev.Launch(n, kernel, args...) }
}

// CopyToDeviceAsync enqueues a host-to-device copy. The host slice
// must not be written until the stream is synchronized.
func (s *Stream) CopyToDeviceAsync(b *Buffer, host []float64) {
	if s.closed {
		panic("offload: CopyToDeviceAsync on destroyed stream")
	}
	s.ops <- func() { s.dev.ToDevice(b, host) }
}

// CopyFromDeviceAsync enqueues a device-to-host copy. The host slice
// must not be read until the stream is synchronized.
func (s *Stream) CopyFromDeviceAsync(host []float64, b *Buffer) {
	if s.closed {
		panic("offload: CopyFromDeviceAsync on destroyed stream")
	}
	s.ops <- func() { s.dev.FromDevice(host, b) }
}

// Synchronize blocks until every operation enqueued so far has
// completed (cudaStreamSynchronize).
func (s *Stream) Synchronize() {
	if s.closed {
		return
	}
	done := make(chan struct{})
	s.ops <- func() { close(done) }
	<-done
}

// Destroy synchronizes and releases the stream.
func (s *Stream) Destroy() {
	if s.closed {
		return
	}
	s.closed = true
	close(s.ops)
	s.drain.Wait()
}
