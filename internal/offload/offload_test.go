package offload

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func newDev(t *testing.T) *Device {
	t.Helper()
	d := NewDevice("sim0", Options{Units: 3})
	t.Cleanup(func() {
		if err := d.Close(); err != nil {
			t.Error(err)
		}
	})
	return d
}

func TestDeviceIdentity(t *testing.T) {
	d := newDev(t)
	if d.Name() != "sim0" || d.Units() != 3 {
		t.Fatalf("name=%s units=%d", d.Name(), d.Units())
	}
}

func TestAddressSpaceIsolation(t *testing.T) {
	d := newDev(t)
	host := []float64{1, 2, 3}
	b := d.Alloc(3)
	d.ToDevice(b, host)
	host[0] = 99 // mutate host AFTER the transfer
	out := make([]float64, 3)
	d.FromDevice(out, b)
	b.Free()
	if out[0] != 1 {
		t.Fatalf("device saw host mutation after transfer: %v", out)
	}
}

func TestVectorAddKernel(t *testing.T) {
	d := newDev(t)
	const n = 10000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = 2 * float64(i)
	}
	bx, by, bz := d.Alloc(n), d.Alloc(n), d.Alloc(n)
	d.ToDevice(bx, x)
	d.ToDevice(by, y)
	d.Launch(n, func(i int, args [][]float64) {
		args[2][i] = args[0][i] + args[1][i]
	}, bx, by, bz)
	z := make([]float64, n)
	d.FromDevice(z, bz)
	bx.Free()
	by.Free()
	bz.Free()
	for i := range z {
		if z[i] != 3*float64(i) {
			t.Fatalf("z[%d] = %g, want %g", i, z[i], 3*float64(i))
		}
	}
}

func TestTargetMapSemantics(t *testing.T) {
	d := newDev(t)
	in := []float64{1, 2, 3, 4}
	out := make([]float64, 4)
	d.Target([]Mapping{
		{Host: in, Dir: MapTo},
		{Host: out, Dir: MapFrom},
	}, func(bufs []*Buffer) {
		d.Launch(4, func(i int, a [][]float64) { a[1][i] = a[0][i] * 10 }, bufs[0], bufs[1])
	})
	for i := range out {
		if out[i] != in[i]*10 {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestTargetMapToDoesNotCopyBack(t *testing.T) {
	d := newDev(t)
	data := []float64{5, 5}
	d.Target([]Mapping{{Host: data, Dir: MapTo}}, func(bufs []*Buffer) {
		d.Launch(2, func(i int, a [][]float64) { a[0][i] = -1 }, bufs[0])
	})
	if data[0] != 5 {
		t.Fatal("map(to:) leaked device writes back to host")
	}
}

func TestTargetMapToFrom(t *testing.T) {
	d := newDev(t)
	data := []float64{1, 2, 3}
	d.Target([]Mapping{{Host: data, Dir: MapToFrom}}, func(bufs []*Buffer) {
		d.Launch(3, func(i int, a [][]float64) { a[0][i] += 1 }, bufs[0])
	})
	for i, v := range data {
		if v != float64(i+2) {
			t.Fatalf("data = %v", data)
		}
	}
}

func TestTargetFreesOnPanic(t *testing.T) {
	d := newDev(t)
	func() {
		defer func() { recover() }()
		d.Target([]Mapping{{Host: []float64{1}, Dir: MapAlloc}}, func([]*Buffer) {
			panic("kernel bug")
		})
	}()
	// Close (via cleanup) verifies no leaked buffers.
}

func TestStats(t *testing.T) {
	d := newDev(t)
	b := d.Alloc(100)
	h := make([]float64, 100)
	d.ToDevice(b, h)
	d.FromDevice(h, b)
	d.Launch(100, func(int, [][]float64) {}, b)
	b.Free()
	s := d.Stats()
	if s.BytesToDevice != 800 || s.BytesFromDevice != 800 {
		t.Fatalf("transfer bytes = %+v", s)
	}
	if s.KernelLaunches != 1 || s.WorkItems != 100 {
		t.Fatalf("launch stats = %+v", s)
	}
}

func TestCrossDeviceBufferPanics(t *testing.T) {
	d1 := newDev(t)
	d2 := NewDevice("sim1", Options{Units: 1})
	defer func() {
		if err := d2.Close(); err != nil {
			t.Error(err)
		}
	}()
	b2 := d2.Alloc(1)
	defer b2.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("cross-device launch did not panic")
		}
	}()
	d1.Launch(1, func(int, [][]float64) {}, b2)
}

func TestFreedBufferPanics(t *testing.T) {
	d := newDev(t)
	b := d.Alloc(1)
	b.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("use after free did not panic")
		}
	}()
	d.ToDevice(b, []float64{1})
}

func TestSizeMismatchPanics(t *testing.T) {
	d := newDev(t)
	b := d.Alloc(2)
	defer b.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	d.ToDevice(b, []float64{1, 2, 3})
}

func TestCloseDetectsLeak(t *testing.T) {
	d := NewDevice("leaky", Options{})
	b := d.Alloc(1)
	if err := d.Close(); err == nil {
		t.Fatal("Close ignored a live buffer")
	}
	b.Free()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamFIFO(t *testing.T) {
	d := newDev(t)
	s := d.NewStream()
	defer s.Destroy()
	const n = 1000
	b := d.Alloc(n)
	defer b.Free()
	h := make([]float64, n)
	for i := range h {
		h[i] = float64(i)
	}
	out := make([]float64, n)
	// copy-in -> kernel -> copy-out must execute in order despite
	// being enqueued without waiting.
	s.CopyToDeviceAsync(b, h)
	s.LaunchAsync(n, func(i int, a [][]float64) { a[0][i] *= 2 }, b)
	s.CopyFromDeviceAsync(out, b)
	s.Synchronize()
	for i := range out {
		if out[i] != 2*float64(i) {
			t.Fatalf("out[%d] = %g", i, out[i])
		}
	}
}

func TestStreamsOverlap(t *testing.T) {
	d := newDev(t)
	s1, s2 := d.NewStream(), d.NewStream()
	defer s1.Destroy()
	defer s2.Destroy()
	var count atomic.Int64
	b1, b2 := d.Alloc(64), d.Alloc(64)
	defer b1.Free()
	defer b2.Free()
	for i := 0; i < 10; i++ {
		s1.LaunchAsync(64, func(int, [][]float64) { count.Add(1) }, b1)
		s2.LaunchAsync(64, func(int, [][]float64) { count.Add(1) }, b2)
	}
	s1.Synchronize()
	s2.Synchronize()
	if count.Load() != 20*64 {
		t.Fatalf("count = %d, want %d", count.Load(), 20*64)
	}
}

func TestStreamDestroyIdempotent(t *testing.T) {
	d := newDev(t)
	s := d.NewStream()
	s.Destroy()
	s.Destroy()
	s.Synchronize() // no-op after destroy
}

func TestQuickSaxpyOffload(t *testing.T) {
	d := newDev(t)
	check := func(n8 uint8, a8 uint8) bool {
		n := int(n8)%500 + 1
		a := float64(a8) / 8
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i)
			y[i] = float64(n - i)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = y[i] + a*x[i]
		}
		d.Target([]Mapping{
			{Host: x, Dir: MapTo},
			{Host: y, Dir: MapToFrom},
		}, func(bufs []*Buffer) {
			d.Launch(n, func(i int, v [][]float64) {
				v[1][i] += a * v[0][i]
			}, bufs[0], bufs[1])
		})
		for i := range y {
			if y[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBufferAccessors(t *testing.T) {
	d := newDev(t)
	b := d.Alloc(7)
	if b.Len() != 7 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Device() != d {
		t.Fatal("Device mismatch")
	}
	b.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("double Free not rejected")
		}
	}()
	b.Free()
}

func TestAllocOnClosedDevicePanics(t *testing.T) {
	d := NewDevice("closed", Options{})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc on closed device did not panic")
		}
	}()
	d.Alloc(1)
}

func TestNegativeAllocPanics(t *testing.T) {
	d := newDev(t)
	defer func() {
		if recover() == nil {
			t.Fatal("negative Alloc did not panic")
		}
	}()
	d.Alloc(-1)
}
