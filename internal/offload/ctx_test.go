package offload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"threading/internal/sched"
)

func TestLaunchCtxCancelDeviceReusable(t *testing.T) {
	dev := NewDevice("gpu-ctx", WithUnits(2))
	defer func() {
		if err := dev.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	buf := dev.Alloc(16)
	defer buf.Free()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	err := dev.LaunchCtx(ctx, 16, func(i int, args [][]float64) {
		once.Do(cancel)
		<-ctx.Done()
	}, buf)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// The device must stay usable after a canceled launch.
	if err := dev.LaunchCtx(context.Background(), 16, func(i int, args [][]float64) {
		args[0][i] = float64(i)
	}, buf); err != nil {
		t.Fatalf("LaunchCtx after cancel: %v", err)
	}
	host := make([]float64, 16)
	dev.FromDevice(host, buf)
	if host[15] != 15 {
		t.Fatalf("host[15] = %v, want 15", host[15])
	}
}

func TestTargetCtxCancelSkipsCopyOut(t *testing.T) {
	dev := NewDevice("gpu-target", WithUnits(2))
	host := []float64{1, 2, 3}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := dev.TargetCtx(ctx, []Mapping{{Host: host, Dir: MapToFrom}}, func(bufs []*Buffer) {
		dev.Launch(3, func(i int, args [][]float64) { args[0][i] = 99 }, bufs[0])
		cancel()
		<-ctx.Done()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, v := range host {
		if v != float64(i+1) {
			t.Fatalf("host[%d] = %v: copy-out ran on a canceled region", i, v)
		}
	}
	// All buffers were freed despite the cancellation.
	if err := dev.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestTargetCtxExpiredMapsNothing(t *testing.T) {
	dev := NewDevice("gpu-expired")
	defer func() {
		if err := dev.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	ran := false
	err := dev.TargetCtx(ctx, []Mapping{{Host: []float64{1}, Dir: MapTo}}, func([]*Buffer) {
		ran = true
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if ran {
		t.Fatal("body ran under an expired context")
	}
}

func TestTargetCtxPanicFreesBuffers(t *testing.T) {
	dev := NewDevice("gpu-panic")
	host := []float64{1, 2, 3}
	err := dev.TargetCtx(context.Background(), []Mapping{{Host: host, Dir: MapToFrom}},
		func([]*Buffer) { panic("target-boom") })
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *sched.PanicError", err)
	}
	if pe.Value != "target-boom" {
		t.Fatalf("PanicError.Value = %v, want target-boom", pe.Value)
	}
	if host[0] != 1 {
		t.Fatal("copy-out ran on a panicked region")
	}
	// The panicked region must not leak buffers.
	if err := dev.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestKernelPanicTyped(t *testing.T) {
	dev := NewDevice("gpu-kpanic", WithUnits(2))
	defer func() {
		if err := dev.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	buf := dev.Alloc(8)
	defer buf.Free()
	err := dev.LaunchCtx(context.Background(), 8, func(i int, args [][]float64) {
		if i == 0 {
			panic("kernel-boom")
		}
	}, buf)
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *sched.PanicError", err)
	}
	if pe.Value != "kernel-boom" {
		t.Fatalf("PanicError.Value = %v, want kernel-boom", pe.Value)
	}
}

func TestNewDeviceOptionForms(t *testing.T) {
	legacy := NewDevice("gpu-legacy", Options{Units: 3})
	defer legacy.Close()
	modern := NewDevice("gpu-modern", WithUnits(3), WithLatency(0))
	defer modern.Close()
	if legacy.Units() != 3 || modern.Units() != 3 {
		t.Fatalf("Units = %d / %d, want 3 / 3", legacy.Units(), modern.Units())
	}
}
