package benchgate

import (
	"context"
	"testing"

	"threading/internal/models"
)

// healthyReport satisfies the paper's orderings: omp_for fastest,
// lazy cilk_for close behind, eager cilk_for far slower.
func healthyReport(threads, grain int) *Report {
	rep := New("test", RunConfig{Threads: threads, Grain: grain, Scale: 1, Reps: 6})
	for _, kernel := range []string{"axpy", "sum"} {
		rep.Add(Series{
			Key:      Key{Kernel: kernel, Model: models.OMPFor, Threads: threads, Grain: 0, Partitioner: "-"},
			SampleNs: []int64{100, 101, 102, 103, 104, 105},
		})
		rep.Add(Series{
			Key:      Key{Kernel: kernel, Model: models.CilkFor, Threads: threads, Grain: grain, Partitioner: "eager"},
			SampleNs: []int64{400, 401, 402, 403, 404, 405},
		})
		rep.Add(Series{
			Key:      Key{Kernel: kernel, Model: models.CilkFor, Threads: threads, Grain: grain, Partitioner: "lazy"},
			SampleNs: []int64{110, 111, 112, 113, 114, 115},
		})
	}
	return rep
}

func TestInvariantsHoldOnHealthyReport(t *testing.T) {
	rep := healthyReport(1, 64)
	rs := CheckInvariants(rep, DefaultInvariants(1, 64), Options{})
	if len(rs) != 4 {
		t.Fatalf("got %d results, want 4", len(rs))
	}
	for _, r := range rs {
		if r.Skipped {
			t.Errorf("%s skipped; keys not found", r.Name)
		}
		if !r.Holds {
			t.Errorf("%s violated on healthy data (ratio %v, p %v)", r.Name, r.MinRatio, r.P)
		}
	}
	if AnyViolated(rs) {
		t.Error("AnyViolated on healthy data")
	}
}

func TestInvariantsCatchDoctoredInversion(t *testing.T) {
	rep := healthyReport(1, 64)
	// Doctor the baseline: make work-sharing far slower than eager
	// work-stealing on sum — the inversion of the paper's Fig. 2
	// ordering.
	s := rep.Find(Key{Kernel: "sum", Model: models.OMPFor, Threads: 1, Grain: 0, Partitioner: "-"})
	for i := range s.SampleNs {
		s.SampleNs[i] *= 100
	}
	rs := CheckInvariants(rep, DefaultInvariants(1, 64), Options{})
	var violated []string
	for _, r := range rs {
		if !r.Holds {
			violated = append(violated, r.Name)
		}
	}
	if len(violated) != 1 || violated[0] != "sum-sharing-beats-stealing" {
		t.Errorf("violated = %v, want exactly sum-sharing-beats-stealing", violated)
	}
	if !AnyViolated(rs) {
		t.Error("AnyViolated missed the doctored inversion")
	}
}

func TestInvariantToleranceAbsorbsSmallInversion(t *testing.T) {
	rep := healthyReport(1, 64)
	// omp_for 10% slower than eager: inverted, but inside the loose
	// 1.3 ratio CI uses — must not gate.
	s := rep.Find(Key{Kernel: "axpy", Model: models.OMPFor, Threads: 1, Grain: 0, Partitioner: "-"})
	eager := rep.Find(Key{Kernel: "axpy", Model: models.CilkFor, Threads: 1, Grain: 64, Partitioner: "eager"})
	for i := range s.SampleNs {
		s.SampleNs[i] = eager.SampleNs[i] + eager.SampleNs[i]/10
	}
	rs := CheckInvariants(rep, DefaultInvariants(1, 64), Options{MinRatio: 1.3})
	for _, r := range rs {
		if !r.Holds {
			t.Errorf("%s violated inside tolerance (ratio %v)", r.Name, r.MinRatio)
		}
	}
}

func TestInvariantsSkipMissingKeys(t *testing.T) {
	rep := New("test", RunConfig{})
	rep.Add(Series{Key: Key{Kernel: "matvec", Model: models.OMPFor, Threads: 1, Partitioner: "-"},
		SampleNs: []int64{1}})
	rs := CheckInvariants(rep, DefaultInvariants(1, 64), Options{})
	for _, r := range rs {
		if !r.Skipped || !r.Holds {
			t.Errorf("%s: skipped=%v holds=%v, want vacuous hold", r.Name, r.Skipped, r.Holds)
		}
	}
}

// The suite itself, at a tiny scale: keys must line up with what the
// default invariants expect, and a run must be self-consistent.
func TestRunSuiteProducesInvariantKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("measures wall time")
	}
	cfg := SuiteConfig{Kernels: []string{"axpy", "sum"}, Threads: 1, Reps: 3, Grain: 64, Scale: 0.01}
	rep, err := RunSuite(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	if got, want := len(rep.Series), 2*5; got != want {
		t.Fatalf("got %d series, want %d", got, want)
	}
	for _, s := range rep.Series {
		if len(s.SampleNs) != 3 {
			t.Errorf("%s: %d samples, want 3", s.Key, len(s.SampleNs))
		}
	}
	rs := CheckInvariants(rep, DefaultInvariants(1, 64), Options{})
	for _, r := range rs {
		if r.Skipped {
			t.Errorf("%s skipped: suite keys do not line up with invariant keys", r.Name)
		}
	}
}

func TestRunSuiteUnknownKernel(t *testing.T) {
	if _, err := RunSuite(context.Background(), SuiteConfig{Kernels: []string{"nope"}}); err == nil {
		t.Error("RunSuite accepted an unknown kernel")
	}
}

func TestRunSuiteCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSuite(ctx, SuiteConfig{Kernels: []string{"axpy"}, Reps: 1, Scale: 0.01}); err == nil {
		t.Error("RunSuite ignored a canceled context")
	}
}
