package benchgate

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"threading/internal/stats"
)

// Options controls verdict classification.
type Options struct {
	// Alpha is the Mann-Whitney U significance level. A key's verdict
	// can only leave "unchanged" when the two sample sets differ at
	// this level. Zero selects 0.05.
	Alpha float64
	// MinRatio is the minimum effect threshold: both the min and the
	// median must move by at least this factor for a verdict to flip,
	// so a statistically detectable but practically irrelevant shift
	// stays "unchanged". Zero selects 1.10.
	MinRatio float64
}

func (o Options) withDefaults() Options {
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	if o.MinRatio <= 1 {
		o.MinRatio = 1.10
	}
	return o
}

// Outcome classifies one key across two runs.
type Outcome string

const (
	// Unchanged: no statistically significant shift beyond the
	// minimum effect threshold.
	Unchanged Outcome = "unchanged"
	// Improved: the new run is significantly faster.
	Improved Outcome = "improved"
	// Regressed: the new run is significantly slower.
	Regressed Outcome = "regressed"
	// Added / Removed: the key exists in only one of the runs.
	Added   Outcome = "added"
	Removed Outcome = "removed"
)

// Summary condenses one series' samples: min, median, and a
// distribution-free ~95% confidence interval on the median.
type Summary struct {
	N        int   `json:"n"`
	MinNs    int64 `json:"min_ns"`
	MedianNs int64 `json:"median_ns"`
	CILoNs   int64 `json:"ci_lo_ns"`
	CIHiNs   int64 `json:"ci_hi_ns"`
}

// Summarize computes a Summary from raw nanosecond samples.
func Summarize(ns []int64) Summary {
	if len(ns) == 0 {
		return Summary{}
	}
	ds := make([]time.Duration, len(ns))
	fs := make([]float64, len(ns))
	for i, v := range ns {
		ds[i] = time.Duration(v)
		fs[i] = float64(v)
	}
	s := stats.Summarize(ds)
	lo, hi := stats.MedianCI(fs, 0.95)
	return Summary{
		N:        s.N,
		MinNs:    int64(s.Min),
		MedianNs: int64(s.Median),
		CILoNs:   int64(lo),
		CIHiNs:   int64(hi),
	}
}

// Verdict is the comparison result for one key.
type Verdict struct {
	Key
	Outcome Outcome `json:"outcome"`
	// P is the two-sided Mann-Whitney U p-value (1 for added/removed
	// keys, where no test ran).
	P float64 `json:"p"`
	// MinRatio and MedianRatio are new/old; > 1 means slower.
	MinRatio    float64  `json:"min_ratio"`
	MedianRatio float64  `json:"median_ratio"`
	Old         *Summary `json:"old,omitempty"`
	New         *Summary `json:"new,omitempty"`
}

// classify runs the statistical test for one key present in both
// runs. A verdict leaves Unchanged only when the U test rejects the
// null at alpha AND both the min and the median moved by at least
// MinRatio in the same direction — the two-condition design keeps
// single-run noise (which can achieve significance on micro-kernels)
// from flipping a verdict without a material effect.
func classify(k Key, oldNs, newNs []int64, opt Options) Verdict {
	oldF := toFloat(oldNs)
	newF := toFloat(newNs)
	u := stats.MannWhitneyU(oldF, newF)
	oldSum, newSum := Summarize(oldNs), Summarize(newNs)
	v := Verdict{
		Key:         k,
		Outcome:     Unchanged,
		P:           u.P,
		MinRatio:    ratio(newSum.MinNs, oldSum.MinNs),
		MedianRatio: ratio(newSum.MedianNs, oldSum.MedianNs),
		Old:         &oldSum,
		New:         &newSum,
	}
	if u.P >= opt.Alpha {
		return v
	}
	switch {
	case v.MinRatio >= opt.MinRatio && v.MedianRatio >= opt.MinRatio:
		v.Outcome = Regressed
	case v.MinRatio <= 1/opt.MinRatio && v.MedianRatio <= 1/opt.MinRatio:
		v.Outcome = Improved
	}
	return v
}

// Compare classifies every key across the two reports: old-report
// order first, then keys only the new report has. The returned
// warnings flag conditions (environment mismatch) under which the
// regression verdicts are advisory rather than gating.
func Compare(old, new *Report, opt Options) (verdicts []Verdict, warnings []string) {
	opt = opt.withDefaults()
	if !old.Env.Comparable(new.Env) {
		warnings = append(warnings, fmt.Sprintf(
			"environments differ (old %s/%s p=%d, new %s/%s p=%d): absolute comparisons are advisory",
			old.Env.GOOS, old.Env.GOARCH, old.Env.GOMAXPROCS,
			new.Env.GOOS, new.Env.GOARCH, new.Env.GOMAXPROCS))
	}
	if old.Config.Scale != new.Config.Scale {
		warnings = append(warnings, fmt.Sprintf(
			"workload scales differ (old %g, new %g): timings are not comparable",
			old.Config.Scale, new.Config.Scale))
	}
	for _, os := range old.Series {
		ns := new.Find(os.Key)
		if ns == nil {
			sum := Summarize(os.SampleNs)
			verdicts = append(verdicts, Verdict{Key: os.Key, Outcome: Removed, P: 1, Old: &sum})
			continue
		}
		verdicts = append(verdicts, classify(os.Key, os.SampleNs, ns.SampleNs, opt))
	}
	for _, ns := range new.Series {
		if old.Find(ns.Key) == nil {
			sum := Summarize(ns.SampleNs)
			verdicts = append(verdicts, Verdict{Key: ns.Key, Outcome: Added, P: 1, New: &sum})
		}
	}
	return verdicts, warnings
}

// AnyRegressed reports whether any verdict is a regression.
func AnyRegressed(vs []Verdict) bool {
	for _, v := range vs {
		if v.Outcome == Regressed {
			return true
		}
	}
	return false
}

// WriteVerdictTable renders verdicts as an aligned human table.
func WriteVerdictTable(w io.Writer, vs []Verdict) {
	fmt.Fprintf(w, "%-34s %12s %12s %7s %8s  %s\n",
		"key", "old min", "new min", "ratio", "p", "verdict")
	for _, v := range vs {
		oldMin, newMin := "-", "-"
		if v.Old != nil {
			oldMin = time.Duration(v.Old.MinNs).Round(time.Microsecond).String()
		}
		if v.New != nil {
			newMin = time.Duration(v.New.MinNs).Round(time.Microsecond).String()
		}
		fmt.Fprintf(w, "%-34s %12s %12s %7.3f %8.4f  %s\n",
			v.Key, oldMin, newMin, v.MinRatio, v.P, v.Outcome)
	}
}

// WriteVerdictJSON emits one JSON object per verdict (NDJSON), the
// machine-readable twin of WriteVerdictTable.
func WriteVerdictJSON(w io.Writer, vs []Verdict) error {
	enc := json.NewEncoder(w)
	for _, v := range vs {
		if err := enc.Encode(v); err != nil {
			return err
		}
	}
	return nil
}

func toFloat(ns []int64) []float64 {
	out := make([]float64, len(ns))
	for i, v := range ns {
		out[i] = float64(v)
	}
	return out
}

func ratio(num, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}
