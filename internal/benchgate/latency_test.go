package benchgate

import (
	"context"
	"runtime"
	"testing"

	"threading/internal/models"
)

// latencyReport builds a healthy low-load latency report: every
// runtime's per-request latency distribution is near-identical, the
// parity, sharded-tail, and metrics-overhead claims all hold.
func latencyReport() *Report {
	cfg := LatencySuiteConfig{
		Models:  []string{models.OMPFor, models.CilkFor, models.ShardedPrefix + models.CilkFor},
		Threads: 1, Offered: []int{200, 400}, Requests: 40,
	}
	rep := New("test", cfg.RunConfig())
	base := []int64{100, 102, 104, 106, 108, 110, 112, 114, 116, 200}
	series := func(k Key) {
		ns := make([]int64, len(base))
		copy(ns, base)
		rep.Add(Series{Key: k, SampleNs: ns, Goodput: float64(k.Offered), ShedRate: 0})
	}
	for _, m := range rep.Config.Models {
		for _, off := range rep.Config.Offered {
			k := Key{Kernel: "sum", Model: m, Threads: 1,
				Partitioner: "-", Scenario: Scenario, Offered: off, Metrics: true}
			if m == models.ShardedPrefix+models.CilkFor {
				k.Shards = rep.Config.Shards
				k.Balancer = rep.Config.Balancer
			}
			series(k)
		}
	}
	// The telemetry-off twin of the reference model at the low point.
	series(Key{Kernel: "sum", Model: models.OMPFor, Threads: 1,
		Partitioner: "-", Scenario: Scenario, Offered: 200})
	return rep
}

func TestLatencyInvariantsShape(t *testing.T) {
	rep := latencyReport()
	invs := InvariantsFor(rep.Config)
	// cilk_for <-> omp_for parity both ways, the sharded-tail bound
	// (all p99), plus the metrics-overhead bound (p50): four claims at
	// the low offered point.
	if len(invs) != 4 {
		t.Fatalf("got %d invariants, want 4: %+v", len(invs), invs)
	}
	for _, inv := range invs {
		want := "p99"
		if inv.Name == "serve-metrics-overhead" {
			want = "p50"
			if inv.Fast.Metrics == inv.Slow.Metrics {
				t.Errorf("%s must pit telemetry-on against telemetry-off: %+v", inv.Name, inv)
			}
		}
		if inv.Metric != want {
			t.Errorf("%s metric = %q, want %s", inv.Name, inv.Metric, want)
		}
		if inv.Fast.Offered != 200 || inv.Slow.Offered != 200 {
			t.Errorf("%s not at the low offered point: %+v", inv.Name, inv)
		}
		if inv.Name == "serve-sharded-tail-overhead" && inv.MinProcs != 2 {
			t.Errorf("%s must require shard parallelism (MinProcs 2), got %d", inv.Name, inv.MinProcs)
		}
	}
	rs := CheckInvariants(rep, invs, Options{})
	for _, r := range rs {
		if r.Skipped {
			// The sharded-tail bound legitimately skips on a box that
			// cannot run the shards in parallel.
			if r.MinProcs > 0 && runtime.GOMAXPROCS(0) < r.MinProcs {
				continue
			}
			t.Errorf("%s skipped: %s", r.Name, r.SkipReason)
		}
		if !r.Holds {
			t.Errorf("%s violated on healthy data (ratio %v, p %v)", r.Name, r.MinRatio, r.P)
		}
	}
}

func TestInvariantMinProcsSkips(t *testing.T) {
	rep := latencyReport()
	invs := []Invariant{{
		Name: "needs-a-datacenter", Metric: "p99", MinProcs: 1 << 20,
		Fast: rep.Series[0].Key, Slow: rep.Series[2].Key,
	}}
	rs := CheckInvariants(rep, invs, Options{})
	if len(rs) != 1 || !rs[0].Skipped || !rs[0].Holds {
		t.Fatalf("MinProcs beyond the machine: %+v, want vacuous skip", rs)
	}
	if rs[0].SkipReason == "" {
		t.Error("skip carries no reason")
	}
}

func TestMetricInvariantCatchesTailInversion(t *testing.T) {
	rep := latencyReport()
	// Doctor cilk_for's low-load distribution: every request 10x
	// slower — both the p99 ratio and the U test fire.
	s := rep.Find(Key{Kernel: "sum", Model: models.CilkFor, Threads: 1,
		Partitioner: "-", Scenario: Scenario, Offered: 200, Metrics: true})
	for i := range s.SampleNs {
		s.SampleNs[i] *= 10
	}
	rs := CheckInvariants(rep, InvariantsFor(rep.Config), Options{})
	var violated []string
	for _, r := range rs {
		if !r.Holds {
			violated = append(violated, r.Name)
		}
	}
	if len(violated) != 1 || violated[0] != "serve-p99-parity-"+models.CilkFor {
		t.Errorf("violated = %v, want exactly serve-p99-parity-cilk_for", violated)
	}
}

func TestMetricInvariantTailBlipWithoutShiftDoesNotGate(t *testing.T) {
	rep := latencyReport()
	// One outlier request 100x slower: the p99 ratio blows past the
	// bound, but the distributions are otherwise identical, so the U
	// test cannot reject equality — a blip is noise, not a verdict.
	s := rep.Find(Key{Kernel: "sum", Model: models.CilkFor, Threads: 1,
		Partitioner: "-", Scenario: Scenario, Offered: 200, Metrics: true})
	s.SampleNs[len(s.SampleNs)-1] *= 100
	rs := CheckInvariants(rep, InvariantsFor(rep.Config), Options{})
	for _, r := range rs {
		if !r.Holds {
			t.Errorf("%s gated a single-request blip (ratio %v, p %v)", r.Name, r.MinRatio, r.P)
		}
	}
}

func TestMetricInvariantUnknownMetricSkips(t *testing.T) {
	rep := latencyReport()
	invs := []Invariant{{
		Name: "bogus", Metric: "p12345",
		Fast: rep.Series[0].Key, Slow: rep.Series[2].Key,
	}}
	rs := CheckInvariants(rep, invs, Options{})
	if len(rs) != 1 || !rs[0].Skipped || !rs[0].Holds {
		t.Fatalf("unknown metric: %+v, want vacuous skip", rs)
	}
}

// The latency suite itself, at a tiny scale: an in-process sweep must
// produce exactly the keys the latency invariants expect, with the
// scenario telemetry filled in.
func TestRunLatencySuiteProducesInvariantKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("measures wall time")
	}
	cfg := LatencySuiteConfig{
		Models:   []string{models.OMPFor, models.CilkFor, models.ShardedPrefix + models.CilkFor},
		Threads:  1,
		Offered:  []int{2000, 4000},
		Requests: 30,
		WorkSize: 1 << 10,
	}
	rep, err := RunLatencySuite(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunLatencySuite: %v", err)
	}
	// 3 models x 2 points, plus the telemetry-off twin of the
	// reference model at the low point.
	if got, want := len(rep.Series), 3*2+1; got != want {
		t.Fatalf("series = %d, want %d", got, want)
	}
	for _, s := range rep.Series {
		if s.Scenario != Scenario || s.Offered == 0 {
			t.Errorf("series %s missing scenario tagging", s.Key)
		}
		if s.Goodput <= 0 {
			t.Errorf("series %s goodput = %v, want > 0", s.Key, s.Goodput)
		}
		if len(s.SampleNs) == 0 {
			t.Errorf("series %s has no latency samples", s.Key)
		}
		if s.Key.Metrics {
			if len(s.Telemetry) == 0 {
				t.Errorf("series %s measured with telemetry but carries no scraped telemetry", s.Key)
			}
			if s.Telemetry["requests.completed"] <= 0 {
				t.Errorf("series %s scraped window shows no completed requests: %v", s.Key, s.Telemetry)
			}
		} else if s.Telemetry != nil {
			t.Errorf("telemetry-off twin %s carries scraped metrics", s.Key)
		}
	}
	rs := CheckInvariants(rep, InvariantsFor(rep.Config), Options{})
	if len(rs) == 0 {
		t.Fatal("no latency invariants for the suite's own config")
	}
	for _, r := range rs {
		if r.Skipped && !(r.MinProcs > 0 && runtime.GOMAXPROCS(0) < r.MinProcs) {
			t.Errorf("%s skipped: suite keys do not line up with invariant keys", r.Name)
		}
	}
}

func TestRunLatencySuiteCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunLatencySuite(ctx, LatencySuiteConfig{
		Models: []string{models.OMPFor}, Threads: 1,
		Offered: []int{1000}, Requests: 10, WorkSize: 1 << 10,
	})
	if err == nil {
		t.Fatal("canceled sweep returned nil error")
	}
	if rep == nil {
		t.Fatal("canceled sweep must still return the partial report")
	}
}
