package benchgate

import (
	"context"
	"testing"

	"threading/internal/models"
)

// latencyReport builds a healthy low-load latency report: every
// runtime's per-request latency distribution is near-identical, the
// parity and sharded-tail claims all hold.
func latencyReport() *Report {
	cfg := LatencySuiteConfig{
		Models:  []string{models.OMPFor, models.CilkFor, models.ShardedPrefix + models.CilkFor},
		Threads: 1, Offered: []int{200, 400}, Requests: 40,
	}
	rep := New("test", cfg.RunConfig())
	base := []int64{100, 102, 104, 106, 108, 110, 112, 114, 116, 200}
	for _, m := range rep.Config.Models {
		for _, off := range rep.Config.Offered {
			k := Key{Kernel: "sum", Model: m, Threads: 1,
				Partitioner: "-", Scenario: Scenario, Offered: off}
			if m == models.ShardedPrefix+models.CilkFor {
				k.Shards = rep.Config.Shards
				k.Balancer = rep.Config.Balancer
			}
			ns := make([]int64, len(base))
			copy(ns, base)
			rep.Add(Series{Key: k, SampleNs: ns, Goodput: float64(off), ShedRate: 0})
		}
	}
	return rep
}

func TestLatencyInvariantsShape(t *testing.T) {
	rep := latencyReport()
	invs := InvariantsFor(rep.Config)
	// cilk_for <-> omp_for parity both ways, plus the sharded-tail
	// bound: three claims, all on the p99 metric at the low point.
	if len(invs) != 3 {
		t.Fatalf("got %d invariants, want 3: %+v", len(invs), invs)
	}
	for _, inv := range invs {
		if inv.Metric != "p99" {
			t.Errorf("%s metric = %q, want p99", inv.Name, inv.Metric)
		}
		if inv.Fast.Offered != 200 || inv.Slow.Offered != 200 {
			t.Errorf("%s not at the low offered point: %+v", inv.Name, inv)
		}
	}
	rs := CheckInvariants(rep, invs, Options{})
	for _, r := range rs {
		if r.Skipped {
			t.Errorf("%s skipped; latency keys not found", r.Name)
		}
		if !r.Holds {
			t.Errorf("%s violated on healthy data (ratio %v, p %v)", r.Name, r.MinRatio, r.P)
		}
	}
}

func TestMetricInvariantCatchesTailInversion(t *testing.T) {
	rep := latencyReport()
	// Doctor cilk_for's low-load distribution: every request 10x
	// slower — both the p99 ratio and the U test fire.
	s := rep.Find(Key{Kernel: "sum", Model: models.CilkFor, Threads: 1,
		Partitioner: "-", Scenario: Scenario, Offered: 200})
	for i := range s.SampleNs {
		s.SampleNs[i] *= 10
	}
	rs := CheckInvariants(rep, InvariantsFor(rep.Config), Options{})
	var violated []string
	for _, r := range rs {
		if !r.Holds {
			violated = append(violated, r.Name)
		}
	}
	if len(violated) != 1 || violated[0] != "serve-p99-parity-"+models.CilkFor {
		t.Errorf("violated = %v, want exactly serve-p99-parity-cilk_for", violated)
	}
}

func TestMetricInvariantTailBlipWithoutShiftDoesNotGate(t *testing.T) {
	rep := latencyReport()
	// One outlier request 100x slower: the p99 ratio blows past the
	// bound, but the distributions are otherwise identical, so the U
	// test cannot reject equality — a blip is noise, not a verdict.
	s := rep.Find(Key{Kernel: "sum", Model: models.CilkFor, Threads: 1,
		Partitioner: "-", Scenario: Scenario, Offered: 200})
	s.SampleNs[len(s.SampleNs)-1] *= 100
	rs := CheckInvariants(rep, InvariantsFor(rep.Config), Options{})
	for _, r := range rs {
		if !r.Holds {
			t.Errorf("%s gated a single-request blip (ratio %v, p %v)", r.Name, r.MinRatio, r.P)
		}
	}
}

func TestMetricInvariantUnknownMetricSkips(t *testing.T) {
	rep := latencyReport()
	invs := []Invariant{{
		Name: "bogus", Metric: "p12345",
		Fast: rep.Series[0].Key, Slow: rep.Series[2].Key,
	}}
	rs := CheckInvariants(rep, invs, Options{})
	if len(rs) != 1 || !rs[0].Skipped || !rs[0].Holds {
		t.Fatalf("unknown metric: %+v, want vacuous skip", rs)
	}
}

// The latency suite itself, at a tiny scale: an in-process sweep must
// produce exactly the keys the latency invariants expect, with the
// scenario telemetry filled in.
func TestRunLatencySuiteProducesInvariantKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("measures wall time")
	}
	cfg := LatencySuiteConfig{
		Models:   []string{models.OMPFor, models.CilkFor, models.ShardedPrefix + models.CilkFor},
		Threads:  1,
		Offered:  []int{2000, 4000},
		Requests: 30,
		WorkSize: 1 << 10,
	}
	rep, err := RunLatencySuite(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunLatencySuite: %v", err)
	}
	if got, want := len(rep.Series), 3*2; got != want {
		t.Fatalf("series = %d, want %d", got, want)
	}
	for _, s := range rep.Series {
		if s.Scenario != Scenario || s.Offered == 0 {
			t.Errorf("series %s missing scenario tagging", s.Key)
		}
		if s.Goodput <= 0 {
			t.Errorf("series %s goodput = %v, want > 0", s.Key, s.Goodput)
		}
		if len(s.SampleNs) == 0 {
			t.Errorf("series %s has no latency samples", s.Key)
		}
	}
	rs := CheckInvariants(rep, InvariantsFor(rep.Config), Options{})
	if len(rs) == 0 {
		t.Fatal("no latency invariants for the suite's own config")
	}
	for _, r := range rs {
		if r.Skipped {
			t.Errorf("%s skipped: suite keys do not line up with invariant keys", r.Name)
		}
	}
}

func TestRunLatencySuiteCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunLatencySuite(ctx, LatencySuiteConfig{
		Models: []string{models.OMPFor}, Threads: 1,
		Offered: []int{1000}, Requests: 10, WorkSize: 1 << 10,
	})
	if err == nil {
		t.Fatal("canceled sweep returned nil error")
	}
	if rep == nil {
		t.Fatal("canceled sweep must still return the partial report")
	}
}
