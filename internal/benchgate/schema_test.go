package benchgate

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleReport() *Report {
	rep := New("test", RunConfig{Threads: 2, Grain: 64, Scale: 0.5, Reps: 3, Kernels: []string{"axpy"}})
	rep.Add(Series{
		Key:      Key{Kernel: "axpy", Model: "omp_for", Threads: 2, Grain: 0, Partitioner: "-"},
		SampleNs: []int64{100, 110, 105},
	})
	rep.Add(Series{
		Key:      Key{Kernel: "axpy", Model: "cilk_for", Threads: 2, Grain: 64, Partitioner: "eager"},
		SampleNs: []int64{200, 220, 210},
		Counters: map[string]int64{"spawns_per_run": 4095},
	})
	return rep
}

func TestSchemaRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	want := sampleReport()
	if err := WriteFile(path, want); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestSchemaVersionChecks(t *testing.T) {
	dir := t.TempDir()

	newer := sampleReport()
	newer.Schema = SchemaVersion + 1
	path := filepath.Join(dir, "newer.json")
	if err := WriteFile(path, newer); err == nil {
		t.Error("WriteFile accepted a future schema version")
	}
	// Bypass the writer's validation to simulate a file written by a
	// future tool.
	if err := os.WriteFile(path, []byte(`{"schema": 99, "series": [{"kernel":"a","model":"m","threads":1,"grain":0,"partitioner":"-","sample_ns":[1]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Errorf("ReadFile(schema 99) err = %v, want newer-schema error", err)
	}

	missing := filepath.Join(dir, "missing.json")
	if err := os.WriteFile(missing, []byte(`{"series": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(missing); err == nil {
		t.Error("ReadFile accepted a file without a schema version")
	}

	if _, err := ReadFile(filepath.Join(dir, "nonexistent.json")); err == nil {
		t.Error("ReadFile accepted a nonexistent path")
	}

	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(garbage); err == nil {
		t.Error("ReadFile accepted non-JSON input")
	}
}

func TestValidateRejectsBadSeries(t *testing.T) {
	empty := sampleReport()
	empty.Series[0].SampleNs = nil
	if err := empty.Validate(); err == nil {
		t.Error("Validate accepted a series without samples")
	}

	dup := sampleReport()
	dup.Add(dup.Series[0])
	if err := dup.Validate(); err == nil {
		t.Error("Validate accepted duplicate keys")
	}
}

func TestFind(t *testing.T) {
	rep := sampleReport()
	k := rep.Series[1].Key
	if s := rep.Find(k); s == nil || s.SampleNs[0] != 200 {
		t.Errorf("Find(%v) = %v", k, s)
	}
	if s := rep.Find(Key{Kernel: "nope"}); s != nil {
		t.Errorf("Find(unknown) = %v, want nil", s)
	}
}

// TestFindNormalizesKeys pins the baseline-compatibility contract:
// the omitempty key fields (partitioner, balancer) may be absent from
// an old or hand-trimmed baseline, and an unsharded key may carry a
// stray balancer label — every spelling must resolve to the same
// series instead of degrading the gate to "missing key".
func TestFindNormalizesKeys(t *testing.T) {
	rep := New("test", RunConfig{})
	rep.Add(Series{
		Key: Key{Kernel: "axpy", Model: "sharded:cilk_for", Threads: 2,
			Grain: 64, Partitioner: "eager", Shards: 2, Balancer: "round-robin"},
		SampleNs: []int64{100},
	})
	rep.Add(Series{
		Key:      Key{Kernel: "axpy", Model: "omp_for", Threads: 2, Partitioner: "-"},
		SampleNs: []int64{200},
	})

	// A sharded key with the default balancer omitted matches its
	// explicit round-robin twin.
	dropped := Key{Kernel: "axpy", Model: "sharded:cilk_for", Threads: 2,
		Grain: 64, Partitioner: "eager", Shards: 2}
	if s := rep.Find(dropped); s == nil || s.SampleNs[0] != 100 {
		t.Errorf("Find(balancer omitted) = %v, want the round-robin series", s)
	}
	// An unsharded key with a stray balancer, or a missing partitioner,
	// matches the plain series.
	stray := Key{Kernel: "axpy", Model: "omp_for", Threads: 2, Balancer: "least-loaded"}
	if s := rep.Find(stray); s == nil || s.SampleNs[0] != 200 {
		t.Errorf("Find(stray balancer, no partitioner) = %v, want the omp_for series", s)
	}
	// But a genuinely different balancer on a sharded key must not match.
	other := dropped
	other.Balancer = "least-loaded"
	if s := rep.Find(other); s != nil {
		t.Errorf("Find(least-loaded) = %v, want nil", s)
	}
}

// TestNormalizationRoundTrip writes a baseline whose omitempty fields
// vanish from the JSON and re-reads it: the gate's Find must still
// match the in-memory key that produced it.
func TestNormalizationRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	k := Key{Kernel: "sum", Model: "omp_for", Threads: 1, Partitioner: "-"}
	rep := New("test", RunConfig{})
	rep.Add(Series{Key: k, SampleNs: []int64{7}})
	if err := WriteFile(path, rep); err != nil {
		t.Fatal(err)
	}
	// Simulate a hand-trimmed baseline: strip the partitioner field.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := strings.Replace(string(data), `"partitioner": "-",`, "", 1)
	if trimmed == string(data) {
		t.Fatal("test setup: partitioner field not found to strip")
	}
	if err := os.WriteFile(path, []byte(trimmed), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s := got.Find(k); s == nil || s.SampleNs[0] != 7 {
		t.Errorf("Find after trim = %v, want the original series", s)
	}
}

func TestValidateRejectsDuplicateUnderNormalization(t *testing.T) {
	rep := New("test", RunConfig{})
	rep.Add(Series{
		Key:      Key{Kernel: "sum", Model: "omp_for", Threads: 1, Partitioner: "-"},
		SampleNs: []int64{1},
	})
	rep.Add(Series{
		// Same key spelled with the omitempty defaults dropped.
		Key:      Key{Kernel: "sum", Model: "omp_for", Threads: 1},
		SampleNs: []int64{2},
	})
	if err := rep.Validate(); err == nil {
		t.Error("Validate accepted two spellings of the same key")
	}
}

func TestEnvComparable(t *testing.T) {
	a := Env{GoVersion: "go1.23.0", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 4}
	b := a
	b.GoVersion = "go1.24.0" // patch/minor drift alone stays comparable
	if !a.Comparable(b) {
		t.Error("go version drift should stay comparable")
	}
	b.GOMAXPROCS = 8
	if a.Comparable(b) {
		t.Error("different GOMAXPROCS must not be comparable")
	}
}
