package benchgate

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleReport() *Report {
	rep := New("test", RunConfig{Threads: 2, Grain: 64, Scale: 0.5, Reps: 3, Kernels: []string{"axpy"}})
	rep.Add(Series{
		Key:      Key{Kernel: "axpy", Model: "omp_for", Threads: 2, Grain: 0, Partitioner: "-"},
		SampleNs: []int64{100, 110, 105},
	})
	rep.Add(Series{
		Key:      Key{Kernel: "axpy", Model: "cilk_for", Threads: 2, Grain: 64, Partitioner: "eager"},
		SampleNs: []int64{200, 220, 210},
		Counters: map[string]int64{"spawns_per_run": 4095},
	})
	return rep
}

func TestSchemaRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	want := sampleReport()
	if err := WriteFile(path, want); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestSchemaVersionChecks(t *testing.T) {
	dir := t.TempDir()

	newer := sampleReport()
	newer.Schema = SchemaVersion + 1
	path := filepath.Join(dir, "newer.json")
	if err := WriteFile(path, newer); err == nil {
		t.Error("WriteFile accepted a future schema version")
	}
	// Bypass the writer's validation to simulate a file written by a
	// future tool.
	if err := os.WriteFile(path, []byte(`{"schema": 99, "series": [{"kernel":"a","model":"m","threads":1,"grain":0,"partitioner":"-","sample_ns":[1]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Errorf("ReadFile(schema 99) err = %v, want newer-schema error", err)
	}

	missing := filepath.Join(dir, "missing.json")
	if err := os.WriteFile(missing, []byte(`{"series": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(missing); err == nil {
		t.Error("ReadFile accepted a file without a schema version")
	}

	if _, err := ReadFile(filepath.Join(dir, "nonexistent.json")); err == nil {
		t.Error("ReadFile accepted a nonexistent path")
	}

	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(garbage); err == nil {
		t.Error("ReadFile accepted non-JSON input")
	}
}

func TestValidateRejectsBadSeries(t *testing.T) {
	empty := sampleReport()
	empty.Series[0].SampleNs = nil
	if err := empty.Validate(); err == nil {
		t.Error("Validate accepted a series without samples")
	}

	dup := sampleReport()
	dup.Add(dup.Series[0])
	if err := dup.Validate(); err == nil {
		t.Error("Validate accepted duplicate keys")
	}
}

func TestFind(t *testing.T) {
	rep := sampleReport()
	k := rep.Series[1].Key
	if s := rep.Find(k); s == nil || s.SampleNs[0] != 200 {
		t.Errorf("Find(%v) = %v", k, s)
	}
	if s := rep.Find(Key{Kernel: "nope"}); s != nil {
		t.Errorf("Find(unknown) = %v, want nil", s)
	}
}

func TestEnvComparable(t *testing.T) {
	a := Env{GoVersion: "go1.23.0", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 4}
	b := a
	b.GoVersion = "go1.24.0" // patch/minor drift alone stays comparable
	if !a.Comparable(b) {
		t.Error("go version drift should stay comparable")
	}
	b.GOMAXPROCS = 8
	if a.Comparable(b) {
		t.Error("different GOMAXPROCS must not be comparable")
	}
}
