package benchgate

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// mkReport builds a report holding one series per entry of samples.
func mkReport(samples map[Key][]int64) *Report {
	rep := New("test", RunConfig{Threads: 1, Grain: 64, Scale: 1, Reps: 8})
	// Deterministic order: insertion via sorted-ish fixed keys is not
	// needed for these tests; Compare walks old.Series order.
	for k, ns := range samples {
		rep.Add(Series{Key: k, SampleNs: ns})
	}
	return rep
}

var testKey = Key{Kernel: "axpy", Model: "cilk_for", Threads: 1, Grain: 64, Partitioner: "eager"}

func verdictFor(t *testing.T, old, new []int64, opt Options) Verdict {
	t.Helper()
	vs, _ := Compare(mkReport(map[Key][]int64{testKey: old}),
		mkReport(map[Key][]int64{testKey: new}), opt)
	if len(vs) != 1 {
		t.Fatalf("got %d verdicts, want 1", len(vs))
	}
	return vs[0]
}

func TestClassifyClearRegression(t *testing.T) {
	old := []int64{100, 101, 102, 103, 104, 105, 106, 107}
	slow := []int64{150, 151, 152, 153, 154, 155, 156, 157}
	v := verdictFor(t, old, slow, Options{})
	if v.Outcome != Regressed {
		t.Errorf("clear regression classified as %s (p=%v ratio=%v)", v.Outcome, v.P, v.MinRatio)
	}
	if v.MinRatio < 1.4 || v.MedianRatio < 1.4 {
		t.Errorf("ratios = %v/%v, want ~1.5", v.MinRatio, v.MedianRatio)
	}
}

func TestClassifyClearWin(t *testing.T) {
	old := []int64{150, 151, 152, 153, 154, 155, 156, 157}
	fast := []int64{100, 101, 102, 103, 104, 105, 106, 107}
	v := verdictFor(t, old, fast, Options{})
	if v.Outcome != Improved {
		t.Errorf("clear win classified as %s (p=%v ratio=%v)", v.Outcome, v.P, v.MinRatio)
	}
}

func TestClassifyPureNoise(t *testing.T) {
	// Interleaved draws from the same spread: the U test must not
	// reject, whatever the effect gate says.
	a := []int64{100, 104, 101, 107, 102, 106, 103, 105}
	b := []int64{103, 100, 106, 102, 107, 101, 105, 104}
	v := verdictFor(t, a, b, Options{})
	if v.Outcome != Unchanged {
		t.Errorf("noise classified as %s (p=%v)", v.Outcome, v.P)
	}
}

func TestClassifySignificantButTinyEffectStaysUnchanged(t *testing.T) {
	// Fully separated (p = 2/C(16,8) ~ 0.00016) but only 2% slower:
	// the minimum-effect threshold must hold the verdict at
	// unchanged.
	old := []int64{1000, 1001, 1002, 1003, 1004, 1005, 1006, 1007}
	slightly := []int64{1020, 1021, 1022, 1023, 1024, 1025, 1026, 1027}
	v := verdictFor(t, old, slightly, Options{})
	if v.P >= 0.05 {
		t.Fatalf("setup broken: p = %v, want significant", v.P)
	}
	if v.Outcome != Unchanged {
		t.Errorf("2%% shift classified as %s, want unchanged", v.Outcome)
	}
	// Lowering the effect threshold flips it.
	v = verdictFor(t, old, slightly, Options{MinRatio: 1.01})
	if v.Outcome != Regressed {
		t.Errorf("2%% shift at ratio 1.01 classified as %s, want regressed", v.Outcome)
	}
}

func TestClassifySingleRunOutlierCannotFlip(t *testing.T) {
	// One wild sample in the new run (GC pause, preemption): min and
	// U test both keep the verdict at unchanged.
	old := []int64{100, 101, 102, 103, 104, 105, 106, 107}
	noisy := []int64{101, 100, 103, 102, 500, 104, 106, 105}
	v := verdictFor(t, old, noisy, Options{})
	if v.Outcome != Unchanged {
		t.Errorf("single outlier classified as %s (p=%v, ratios %v/%v)",
			v.Outcome, v.P, v.MinRatio, v.MedianRatio)
	}
}

func TestCompareIdenticalReportAllUnchanged(t *testing.T) {
	rep := mkReport(map[Key][]int64{
		testKey: {100, 101, 102, 103, 104},
		{Kernel: "sum", Model: "omp_for", Threads: 1, Grain: 0, Partitioner: "-"}: {50, 51, 52, 53, 54},
	})
	vs, warnings := Compare(rep, rep, Options{})
	if len(warnings) != 0 {
		t.Errorf("warnings on self-compare: %v", warnings)
	}
	if len(vs) != 2 {
		t.Fatalf("got %d verdicts, want 2", len(vs))
	}
	for _, v := range vs {
		if v.Outcome != Unchanged {
			t.Errorf("%s: self-compare verdict %s", v.Key, v.Outcome)
		}
	}
}

func TestCompareAddedRemoved(t *testing.T) {
	kOld := Key{Kernel: "old", Model: "omp_for", Threads: 1, Partitioner: "-"}
	kNew := Key{Kernel: "new", Model: "omp_for", Threads: 1, Partitioner: "-"}
	vs, _ := Compare(mkReport(map[Key][]int64{kOld: {1, 2, 3}}),
		mkReport(map[Key][]int64{kNew: {1, 2, 3}}), Options{})
	if len(vs) != 2 {
		t.Fatalf("got %d verdicts, want 2", len(vs))
	}
	outcomes := map[Key]Outcome{vs[0].Key: vs[0].Outcome, vs[1].Key: vs[1].Outcome}
	if outcomes[kOld] != Removed || outcomes[kNew] != Added {
		t.Errorf("outcomes = %v", outcomes)
	}
	if AnyRegressed(vs) {
		t.Error("added/removed keys must not gate")
	}
}

func TestCompareWarnsOnEnvAndScaleMismatch(t *testing.T) {
	a := mkReport(map[Key][]int64{testKey: {1, 2, 3}})
	b := mkReport(map[Key][]int64{testKey: {1, 2, 3}})
	b.Env.GOMAXPROCS = a.Env.GOMAXPROCS + 1
	b.Config.Scale = a.Config.Scale * 2
	_, warnings := Compare(a, b, Options{})
	if len(warnings) != 2 {
		t.Errorf("warnings = %v, want env + scale", warnings)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int64{5, 1, 4, 2, 3})
	if s.N != 5 || s.MinNs != 1 || s.MedianNs != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.CILoNs != 1 || s.CIHiNs != 5 {
		// n=5 cannot reach 95% coverage: full range.
		t.Errorf("CI = [%d, %d], want [1, 5]", s.CILoNs, s.CIHiNs)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("Summarize(nil) = %+v", z)
	}
}

func TestWriteVerdictJSONShape(t *testing.T) {
	old := []int64{100, 101, 102, 103, 104, 105, 106, 107}
	slow := []int64{150, 151, 152, 153, 154, 155, 156, 157}
	v := verdictFor(t, old, slow, Options{})
	var buf bytes.Buffer
	if err := WriteVerdictJSON(&buf, []Verdict{v}); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("NDJSON line is not JSON: %v", err)
	}
	for _, field := range []string{"kernel", "model", "threads", "grain", "partitioner",
		"outcome", "p", "min_ratio", "median_ratio", "old", "new"} {
		if _, ok := m[field]; !ok {
			t.Errorf("verdict JSON missing %q: %s", field, line)
		}
	}
	if m["outcome"] != "regressed" {
		t.Errorf("outcome = %v", m["outcome"])
	}
}
