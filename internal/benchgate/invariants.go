package benchgate

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"

	"threading/internal/models"
	"threading/internal/stats"
	"threading/internal/worksteal"
)

// Invariant is one of the paper's directional ordering claims as a
// machine-checked assertion over a single report: the Fast key's
// wall-time must not exceed the Slow key's beyond tolerance. These
// are within-run relative claims, so they gate even when a baseline
// was recorded on different hardware.
type Invariant struct {
	// Name identifies the invariant, e.g. "sum-sharing-beats-stealing".
	Name string `json:"name"`
	// Claim states the paper's finding the invariant encodes.
	Claim string `json:"claim"`
	// Fast must not be slower than Slow beyond the Options tolerance.
	Fast Key `json:"fast"`
	Slow Key `json:"slow"`
	// Ratio, when positive, overrides Options.MinRatio for this
	// invariant: the bound is fast <= Ratio * slow. Bounded-overhead
	// claims ("sharding costs at most 10%") carry their tolerance here
	// so the CLI's noise threshold cannot loosen them.
	Ratio float64 `json:"ratio,omitempty"`
	// Metric selects the compared statistic. Empty gates on the
	// min+median of whole-run repetition timings (the bench default);
	// "p50", "p99", or "p999" gate on that percentile of per-request
	// latency samples — the service-scenario tail claims.
	Metric string `json:"metric,omitempty"`
	// MinProcs, when positive, is the parallelism the claim assumes:
	// CheckInvariants skips the invariant when GOMAXPROCS is below it.
	// The sharded-tail bound carries 2 — when every shard timeshares
	// one core, routing provably costs the tail, and gating would
	// measure core oversubscription, not routing.
	MinProcs int `json:"min_procs,omitempty"`
}

// DefaultInvariants returns the gated ordering claims at the given
// thread count and stress grain:
//
//   - work-sharing (omp_for) is not slower than eager work-stealing
//     (cilk_for) on the flat Axpy and Sum loops at stress grain — the
//     paper's Fig. 1/Fig. 2 ordering (cilk_for ~2x / ~5x worse);
//   - lazy splitting is not slower than eager at stress grain on the
//     same loops — the PR 2 adaptive-distribution win.
func DefaultInvariants(threads, grain int) []Invariant {
	var out []Invariant
	for _, kernel := range []string{"axpy", "sum"} {
		eager := Key{Kernel: kernel, Model: models.CilkFor, Threads: threads,
			Grain: grain, Partitioner: worksteal.Eager.String()}
		out = append(out,
			Invariant{
				Name:  kernel + "-sharing-beats-stealing",
				Claim: fmt.Sprintf("omp_for <= eager cilk_for on flat %s at grain %d (paper Figs. 1-2)", kernel, grain),
				Fast:  Key{Kernel: kernel, Model: models.OMPFor, Threads: threads, Grain: 0, Partitioner: "-"},
				Slow:  eager,
			},
			Invariant{
				Name:  kernel + "-lazy-beats-eager",
				Claim: fmt.Sprintf("lazy cilk_for <= eager cilk_for on flat %s at grain %d (adaptive distribution)", kernel, grain),
				Fast: Key{Kernel: kernel, Model: models.CilkFor, Threads: threads,
					Grain: grain, Partitioner: worksteal.Lazy.String()},
				Slow: eager,
			})
	}
	return out
}

// shardOverheadRatio bounds the cost of splitting one pool into
// shards: the sharded runtime may be at most 10% slower than its
// single-pool twin on the flat loops. The bound rides on the
// invariant itself (Invariant.Ratio), so a loose CLI -ratio cannot
// relax it.
const shardOverheadRatio = 1.1

// ShardInvariants returns the sharding-overhead claims: the sharded
// work-stealing runtime (least-loaded routing) stays within
// shardOverheadRatio of the single-pool eager cilk_for on the flat
// Axpy and Sum loops at stress grain. Bounding steal domains must not
// cost more than the routing saves.
func ShardInvariants(threads, grain, shards int, balancer string) []Invariant {
	var out []Invariant
	for _, kernel := range []string{"axpy", "sum"} {
		out = append(out, Invariant{
			Name: kernel + "-sharding-overhead",
			Claim: fmt.Sprintf("sharded cilk_for (%d shards, %s) <= %.1fx single-pool eager cilk_for on flat %s at grain %d",
				shards, balancer, shardOverheadRatio, kernel, grain),
			Fast: Key{Kernel: kernel, Model: models.ShardedPrefix + models.CilkFor, Threads: threads,
				Grain: grain, Partitioner: worksteal.Eager.String(), Shards: shards, Balancer: balancer},
			Slow: Key{Kernel: kernel, Model: models.CilkFor, Threads: threads,
				Grain: grain, Partitioner: worksteal.Eager.String()},
			Ratio: shardOverheadRatio,
		})
	}
	return out
}

// pinOverheadRatio bounds the cost of locking workers to OS threads:
// the pinned runtime may be at most 5% slower than its unpinned twin.
// With GOMAXPROCS matched to the worker count, LockOSThread should be
// nearly free; the bound catches a runtime change that makes pinning
// fight the Go scheduler.
const pinOverheadRatio = 1.05

// PinInvariants returns the pinning-overhead claims: the pinned-worker
// eager cilk_for stays within pinOverheadRatio of its unpinned twin on
// the flat Axpy and Sum loops at stress grain.
func PinInvariants(threads, grain int) []Invariant {
	var out []Invariant
	for _, kernel := range []string{"axpy", "sum"} {
		unpinned := Key{Kernel: kernel, Model: models.CilkFor, Threads: threads,
			Grain: grain, Partitioner: worksteal.Eager.String()}
		pinned := unpinned
		pinned.Pinned = true
		out = append(out, Invariant{
			Name: kernel + "-pinning-overhead",
			Claim: fmt.Sprintf("pinned eager cilk_for <= %.2fx unpinned on flat %s at grain %d",
				pinOverheadRatio, kernel, grain),
			Fast:  pinned,
			Slow:  unpinned,
			Ratio: pinOverheadRatio,
		})
	}
	return out
}

// Latency-scenario bounds. Both ride on the invariant (Invariant.
// Ratio), not the CLI noise threshold.
//
// tailParityRatio bounds cross-runtime p99 at low offered load: with
// the service far from saturation, tail latency is dominated by the
// kernel itself plus per-request scheduling overhead, so no runtime
// may tail more than 3x beyond another's. The bound is loose by
// design — it flags an inversion of kind (a runtime that queues or
// serializes where others do not), not percentage-level noise.
//
// shardTailRatio bounds the sharded runtime's p99 against its
// single-pool twin at low load: routing a request to one of k shards
// must not cost more than 10% of the tail — the latency twin of the
// throughput sharding-overhead bound.
const (
	tailParityRatio = 3.0
	shardTailRatio  = 1.1
)

// metricsOverheadRatio bounds what continuous telemetry may cost the
// service: with the registry, samplers, watchdog, and request-id
// tracing enabled, median latency at low load may be at most 5% above
// the telemetry-off twin. The fast paths are designed allocation-free
// and atomic-only, so anything past 5% means an update leaked onto
// the request path.
const metricsOverheadRatio = 1.05

// LatencyInvariants returns the service-scenario tail claims for a
// latency report: pairwise low-load p99 parity between the reference
// runtime (omp_for, or the first configured model) and every other
// unsharded model — both directions, since parity is symmetric — and
// the sharded-tail bound for every sharded model whose single-pool
// twin was also swept — plus, when the run measured telemetry-enabled
// series, the metrics-overhead bound pitting the reference model
// against its telemetry-off twin. All claims are defined at the
// lowest offered point, where queueing is rare and the tails measure
// the runtimes, not the load.
func LatencyInvariants(cfg RunConfig) []Invariant {
	if cfg.Scenario == "" || len(cfg.Offered) == 0 || len(cfg.Models) == 0 {
		return nil
	}
	low := cfg.Offered[0]
	for _, o := range cfg.Offered {
		if o < low {
			low = o
		}
	}
	kernel := "sum"
	if len(cfg.Kernels) > 0 {
		kernel = cfg.Kernels[0]
	}
	key := func(model string) Key {
		k := Key{Kernel: kernel, Model: model, Threads: cfg.Threads,
			Partitioner: "-", Scenario: cfg.Scenario, Offered: low,
			Metrics: cfg.Metrics}
		if strings.HasPrefix(model, models.ShardedPrefix) {
			k.Shards = cfg.Shards
			k.Balancer = cfg.Balancer
		}
		return k
	}
	ref := cfg.Models[0]
	for _, m := range cfg.Models {
		if m == models.OMPFor {
			ref = m
			break
		}
	}
	var out []Invariant
	for _, m := range cfg.Models {
		if m == ref || strings.HasPrefix(m, models.ShardedPrefix) {
			continue
		}
		claim := fmt.Sprintf("low-load p99 parity at %d rps: %%s <= %.1fx %%s", low, tailParityRatio)
		out = append(out,
			Invariant{
				Name:   "serve-p99-parity-" + m,
				Claim:  fmt.Sprintf(claim, m, ref),
				Fast:   key(m),
				Slow:   key(ref),
				Ratio:  tailParityRatio,
				Metric: "p99",
			},
			Invariant{
				Name:   "serve-p99-parity-" + ref + "-vs-" + m,
				Claim:  fmt.Sprintf(claim, ref, m),
				Fast:   key(ref),
				Slow:   key(m),
				Ratio:  tailParityRatio,
				Metric: "p99",
			})
	}
	if cfg.Metrics {
		off := key(ref)
		off.Metrics = false
		out = append(out, Invariant{
			Name: "serve-metrics-overhead",
			Claim: fmt.Sprintf("telemetry-on %s p50 <= %.2fx telemetry-off twin at %d rps (continuous metrics must be ~free)",
				ref, metricsOverheadRatio, low),
			Fast:   key(ref),
			Slow:   off,
			Ratio:  metricsOverheadRatio,
			Metric: "p50",
		})
	}
	for _, m := range cfg.Models {
		base, ok := strings.CutPrefix(m, models.ShardedPrefix)
		if !ok {
			continue
		}
		for _, twin := range cfg.Models {
			if twin == base {
				out = append(out, Invariant{
					Name: "serve-sharded-tail-overhead",
					Claim: fmt.Sprintf("sharded %s p99 <= %.1fx single-pool at %d rps (routing must not cost the tail)",
						base, shardTailRatio, low),
					Fast:     key(m),
					Slow:     key(twin),
					Ratio:    shardTailRatio,
					Metric:   "p99",
					MinProcs: 2,
				})
				break
			}
		}
	}
	return out
}

// FibInvariant returns the spawn-heavy ordering claim of the paper's
// Fig. 5: cilk_spawn (lock-free Chase-Lev deques, arena-recycled task
// records) is not slower than omp task (locked team deques) on uncut
// recursive Fibonacci. This is the series the task-arena fast path is
// accountable to.
func FibInvariant(threads int) Invariant {
	return Invariant{
		Name:  "fib-spawn-beats-omp-task",
		Claim: "cilk_spawn <= omp_task on uncut recursive fib (paper Fig. 5: lock-based deques contend)",
		Fast: Key{Kernel: "fib", Model: models.CilkSpawn, Threads: threads,
			Grain: 0, Partitioner: worksteal.Eager.String()},
		Slow: Key{Kernel: "fib", Model: models.OMPTask, Threads: threads,
			Grain: 0, Partitioner: "-"},
	}
}

// InvariantsFor returns every invariant a report with the given run
// configuration must satisfy: the paper's ordering claims, the
// sharding-overhead bound when the run measured a sharded series, the
// pinning-overhead bound when it measured pinned twins, and the
// Fig. 5 spawn ordering when it measured the fib kernel. A latency
// report (Config.Scenario set) carries only the tail claims — its
// series hold per-request latencies, not kernel repetition timings,
// so the bench invariants do not apply.
func InvariantsFor(cfg RunConfig) []Invariant {
	if cfg.Scenario != "" {
		return LatencyInvariants(cfg)
	}
	out := DefaultInvariants(cfg.Threads, cfg.Grain)
	if cfg.Shards != 0 {
		out = append(out, ShardInvariants(cfg.Threads, cfg.Grain, cfg.Shards, cfg.Balancer)...)
	}
	if cfg.Pinned {
		out = append(out, PinInvariants(cfg.Threads, cfg.Grain)...)
	}
	for _, k := range cfg.Kernels {
		if k == "fib" {
			out = append(out, FibInvariant(cfg.Threads))
			break
		}
	}
	return out
}

// InvariantResult is the checked outcome of one invariant.
type InvariantResult struct {
	Invariant
	// Holds is false only for a statistically significant inversion
	// beyond tolerance. A skipped invariant holds vacuously.
	Holds bool `json:"holds"`
	// Skipped is true when the invariant could not be evaluated;
	// SkipReason says why (missing keys, unknown metric, or a machine
	// below the claim's MinProcs).
	Skipped    bool   `json:"skipped"`
	SkipReason string `json:"skip_reason,omitempty"`
	// P is the U-test p-value for fast-vs-slow samples.
	P float64 `json:"p"`
	// MinRatio and MedianRatio are fast/slow; > 1 means the claimed
	// faster side measured slower.
	MinRatio    float64 `json:"min_ratio"`
	MedianRatio float64 `json:"median_ratio"`
}

// CheckInvariants evaluates each invariant against the report. An
// invariant is violated only when the claimed-faster side is slower
// by at least opt.MinRatio on both min and median AND the U test
// rejects equality at opt.Alpha — mirroring the regression verdict
// logic, so runner noise cannot flap the gate.
func CheckInvariants(rep *Report, invs []Invariant, opt Options) []InvariantResult {
	opt = opt.withDefaults()
	out := make([]InvariantResult, 0, len(invs))
	for _, inv := range invs {
		res := InvariantResult{Invariant: inv, Holds: true}
		if inv.MinProcs > 0 && runtime.GOMAXPROCS(0) < inv.MinProcs {
			res.Skipped = true
			res.SkipReason = fmt.Sprintf("needs GOMAXPROCS >= %d", inv.MinProcs)
			res.P = 1
			out = append(out, res)
			continue
		}
		fast, slow := rep.Find(inv.Fast), rep.Find(inv.Slow)
		if fast == nil || slow == nil {
			res.Skipped = true
			res.SkipReason = "keys absent"
			res.P = 1
			out = append(out, res)
			continue
		}
		u := stats.MannWhitneyU(toFloat(fast.SampleNs), toFloat(slow.SampleNs))
		res.P = u.P
		bound := opt.MinRatio
		if inv.Ratio > 0 {
			bound = inv.Ratio
		}
		if inv.Metric != "" {
			// Percentile claim: the named quantile of the fast side's
			// latency samples must stay within bound of the slow side's,
			// and the U test must reject distribution equality — a tail
			// blip without a distribution shift is noise, not a verdict.
			q, ok := metricQuantile(inv.Metric)
			if !ok {
				res.Skipped = true
				res.SkipReason = "unknown metric " + inv.Metric
				res.P = 1
				out = append(out, res)
				continue
			}
			r := ratio(stats.PercentileNs(fast.SampleNs, q), stats.PercentileNs(slow.SampleNs, q))
			res.MinRatio, res.MedianRatio = r, r
			if u.P < opt.Alpha && r >= bound {
				res.Holds = false
			}
			out = append(out, res)
			continue
		}
		fastSum, slowSum := Summarize(fast.SampleNs), Summarize(slow.SampleNs)
		res.MinRatio = ratio(fastSum.MinNs, slowSum.MinNs)
		res.MedianRatio = ratio(fastSum.MedianNs, slowSum.MedianNs)
		if u.P < opt.Alpha && res.MinRatio >= bound && res.MedianRatio >= bound {
			res.Holds = false
		}
		out = append(out, res)
	}
	return out
}

// metricQuantile maps an Invariant.Metric spelling to its quantile.
func metricQuantile(m string) (float64, bool) {
	switch m {
	case "p50":
		return 0.50, true
	case "p99":
		return 0.99, true
	case "p999":
		return 0.999, true
	}
	return 0, false
}

// AnyViolated reports whether any invariant failed.
func AnyViolated(rs []InvariantResult) bool {
	for _, r := range rs {
		if !r.Holds {
			return true
		}
	}
	return false
}

// WriteInvariantTable renders invariant results as a human table.
func WriteInvariantTable(w io.Writer, label string, rs []InvariantResult) {
	fmt.Fprintf(w, "directional invariants (%s):\n", label)
	for _, r := range rs {
		status := "ok"
		switch {
		case r.Skipped:
			status = "skipped (" + r.SkipReason + ")"
		case !r.Holds:
			metric := "min"
			if r.Metric != "" {
				metric = r.Metric
			}
			status = fmt.Sprintf("VIOLATED (fast/slow %s ratio %.2f, p=%.4f)", metric, r.MinRatio, r.P)
		}
		fmt.Fprintf(w, "  %-28s %-10s %s\n", r.Name, status, r.Claim)
	}
}

// WriteInvariantJSON emits one JSON object per invariant result
// (NDJSON).
func WriteInvariantJSON(w io.Writer, rs []InvariantResult) error {
	enc := json.NewEncoder(w)
	for _, r := range rs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}
