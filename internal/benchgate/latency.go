package benchgate

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"threading/internal/loadgen"
	"threading/internal/models"
	"threading/internal/serve"
)

// Scenario names the service scenario latency reports are keyed by.
const Scenario = "serve"

// DefaultServeModels is the default latency sweep: the two paper
// families with persistent runtimes (work-sharing team, work-stealing
// pool), the sharded pool (so the sharded-tail bound has a subject),
// and the per-request cpp_async model as the no-runtime contrast.
func DefaultServeModels() []string {
	return []string{models.OMPFor, models.CilkFor,
		models.ShardedPrefix + models.CilkFor, models.CPPAsync}
}

// DefaultOffered is the default offered-load sweep in requests per
// second: a low point where queueing is rare (the tail-parity and
// sharded-tail claims are defined there), then doublings that spread
// utilization so goodput tracking offered load — and any departure
// from it — is visible across the sweep.
func DefaultOffered() []int { return []int{200, 400, 800} }

// LatencySuiteConfig selects what RunLatencySuite measures.
type LatencySuiteConfig struct {
	// Models to sweep; empty selects DefaultServeModels.
	Models []string
	// Kernel each request executes; empty selects "sum".
	Kernel string
	// Threads is each runtime's worker count; 0 selects GOMAXPROCS.
	Threads int
	// Offered lists the swept arrival rates in requests/second; empty
	// selects DefaultOffered.
	Offered []int
	// Requests is the number of arrivals per point; 0 selects 400.
	Requests int
	// Warmup arrivals are excluded from every point's measurements;
	// negative selects Requests/10, 0 keeps 0.
	Warmup int
	// Shards splits the sharded models' runtimes; 0 selects 2.
	Shards int
	// Balancer routes the sharded models; empty selects least-loaded,
	// the balancer the sharded-tail bound is claimed for.
	Balancer string
	// Queue bounds each server's admission queue; 0 keeps the serve
	// default (4x threads).
	Queue int
	// Timeout is the per-request deadline; 0 keeps the serve default.
	Timeout time.Duration
	// WorkSize is the kernel working-set knob (serve.Config.WorkSize);
	// 0 keeps the serve default.
	WorkSize int
	// Seed drives the deterministic arrival schedule; 0 selects 1.
	Seed uint64
}

func (c LatencySuiteConfig) withDefaults() LatencySuiteConfig {
	if len(c.Models) == 0 {
		c.Models = DefaultServeModels()
	}
	if c.Kernel == "" {
		c.Kernel = "sum"
	}
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if len(c.Offered) == 0 {
		c.Offered = DefaultOffered()
	}
	if c.Requests <= 0 {
		c.Requests = 400
	}
	if c.Warmup < 0 {
		c.Warmup = c.Requests / 10
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Balancer == "" {
		c.Balancer = "least-loaded"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RunConfig returns the schema record of this configuration.
func (c LatencySuiteConfig) RunConfig() RunConfig {
	c = c.withDefaults()
	return RunConfig{
		Threads:  c.Threads,
		Reps:     c.Requests,
		Kernels:  []string{c.Kernel},
		Shards:   c.Shards,
		Balancer: c.Balancer,
		Scenario: Scenario,
		Offered:  c.Offered,
		Requests: c.Requests,
		Models:   c.Models,
		Seed:     c.Seed,
	}
}

// RunLatencySuite sweeps every configured model across the offered-
// load points and returns a latency report: one series per (model,
// offered) whose samples are per-request latencies, with goodput,
// shed rate, and the point's peak admission-queue depth alongside.
// Each model boots a fresh in-process threadserve driven through
// loadgen.HandlerTarget — no sockets, so the measured latency is
// admission + scheduling + kernel execution.
//
// Canceling ctx stops the sweep at the next point boundary (the
// in-flight point finishes early with a partial measurement, which is
// discarded) and returns the points measured so far alongside ctx's
// error — the partial-report path the SIGINT contract is built on.
func RunLatencySuite(ctx context.Context, cfg LatencySuiteConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := New("cmd/loadsweep", cfg.RunConfig())
	for _, model := range cfg.Models {
		if err := runLatencyModel(ctx, cfg, rep, model); err != nil {
			return rep, err
		}
	}
	return rep, rep.Validate()
}

// runLatencyModel sweeps one model, closing its server before
// returning so a canceled sweep still quiesces every runtime it
// booted.
func runLatencyModel(ctx context.Context, cfg LatencySuiteConfig, rep *Report, model string) error {
	scfg := serve.Config{
		Model:    model,
		Threads:  cfg.Threads,
		Queue:    cfg.Queue,
		Timeout:  cfg.Timeout,
		WorkSize: cfg.WorkSize,
	}
	if strings.HasPrefix(model, models.ShardedPrefix) {
		scfg.Shards = cfg.Shards
		scfg.Balancer = cfg.Balancer
	}
	s, err := serve.New(scfg)
	if err != nil {
		return fmt.Errorf("benchgate: boot %s: %w", model, err)
	}
	defer s.Close()
	target := loadgen.HandlerTarget{Handler: s}
	path := "/run?kernel=" + cfg.Kernel
	for _, offered := range cfg.Offered {
		s.Stats(true) // reset the peak-depth watermark for this point
		res, err := loadgen.Run(ctx, loadgen.Config{
			Target:   target,
			Path:     path,
			Offered:  float64(offered),
			Requests: cfg.Requests,
			Warmup:   cfg.Warmup,
			Seed:     cfg.Seed,
		})
		if err != nil {
			return err
		}
		if len(res.LatencyNs) == 0 {
			return fmt.Errorf("benchgate: %s at %d rps completed no requests (%d shed, %d timeouts, %d errors)",
				model, offered, res.Shed, res.Timeouts, res.Errors)
		}
		k := Key{Kernel: cfg.Kernel, Model: model, Threads: cfg.Threads,
			Partitioner: "-", Scenario: Scenario, Offered: offered}
		if strings.HasPrefix(model, models.ShardedPrefix) {
			k.Shards = cfg.Shards
			k.Balancer = cfg.Balancer
		}
		rep.Add(Series{
			Key:        k,
			SampleNs:   res.LatencyNs,
			Goodput:    res.Goodput(),
			ShedRate:   res.ShedRate(),
			QueueDepth: int(s.Stats(false).PeakDepth),
		})
	}
	return nil
}
