package benchgate

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"threading/internal/loadgen"
	"threading/internal/models"
	"threading/internal/serve"
)

// Scenario names the service scenario latency reports are keyed by.
const Scenario = "serve"

// warmBurst is the number of closed-loop requests driven through each
// freshly booted server before its measured points, so no series pays
// the runtime's boot cost (worker spin-up, first-touch of the kernel
// working set) while its comparison twins run warm.
const warmBurst = 64

// seedStride separates the per-server arrival-schedule seeds when a
// point is measured concurrently, so the servers' Poisson schedules
// are decorrelated: identical seeds would fire every arrival at the
// same instant and serialize the pair on a small machine.
const seedStride = 1000003

// DefaultServeModels is the default latency sweep: the two paper
// families with persistent runtimes (work-sharing team, work-stealing
// pool), the sharded pool (so the sharded-tail bound has a subject),
// and the per-request cpp_async model as the no-runtime contrast.
func DefaultServeModels() []string {
	return []string{models.OMPFor, models.CilkFor,
		models.ShardedPrefix + models.CilkFor, models.CPPAsync}
}

// DefaultOffered is the default offered-load sweep in requests per
// second: a low point where queueing is rare (the tail-parity and
// sharded-tail claims are defined there), then doublings that spread
// utilization so goodput tracking offered load — and any departure
// from it — is visible across the sweep.
func DefaultOffered() []int { return []int{200, 400, 800} }

// LatencySuiteConfig selects what RunLatencySuite measures.
type LatencySuiteConfig struct {
	// Models to sweep; empty selects DefaultServeModels.
	Models []string
	// Kernel each request executes; empty selects "sum".
	Kernel string
	// Threads is each runtime's worker count; 0 selects GOMAXPROCS.
	Threads int
	// Offered lists the swept arrival rates in requests/second; empty
	// selects DefaultOffered.
	Offered []int
	// Requests is the number of arrivals per point; 0 selects 400.
	Requests int
	// Warmup arrivals are excluded from every point's measurements;
	// negative selects Requests/10, 0 keeps 0.
	Warmup int
	// Shards splits the sharded models' runtimes; 0 selects 2.
	Shards int
	// Balancer routes the sharded models; empty selects least-loaded,
	// the balancer the sharded-tail bound is claimed for.
	Balancer string
	// Queue bounds each server's admission queue; 0 keeps the serve
	// default (4x threads).
	Queue int
	// Timeout is the per-request deadline; 0 keeps the serve default.
	Timeout time.Duration
	// WorkSize is the kernel working-set knob (serve.Config.WorkSize);
	// 0 keeps the serve default.
	WorkSize int
	// Seed drives the deterministic arrival schedule; 0 selects 1.
	Seed uint64
}

func (c LatencySuiteConfig) withDefaults() LatencySuiteConfig {
	if len(c.Models) == 0 {
		c.Models = DefaultServeModels()
	}
	if c.Kernel == "" {
		c.Kernel = "sum"
	}
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if len(c.Offered) == 0 {
		c.Offered = DefaultOffered()
	}
	if c.Requests <= 0 {
		c.Requests = 400
	}
	if c.Warmup < 0 {
		c.Warmup = c.Requests / 10
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Balancer == "" {
		c.Balancer = "least-loaded"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RunConfig returns the schema record of this configuration.
func (c LatencySuiteConfig) RunConfig() RunConfig {
	c = c.withDefaults()
	return RunConfig{
		Threads:  c.Threads,
		Reps:     c.Requests,
		Kernels:  []string{c.Kernel},
		Shards:   c.Shards,
		Balancer: c.Balancer,
		Scenario: Scenario,
		Offered:  c.Offered,
		Requests: c.Requests,
		Models:   c.Models,
		Seed:     c.Seed,
		Metrics:  true,
	}
}

// RunLatencySuite sweeps every configured model across the offered-
// load points and returns a latency report: one series per (model,
// offered) whose samples are per-request latencies, with goodput,
// shed rate, and the point's peak admission-queue depth alongside.
// Each model is a fresh in-process threadserve driven through
// loadgen.HandlerTarget — no sockets, so the measured latency is
// admission + scheduling + kernel execution.
//
// Every server runs with the live telemetry registry enabled — the
// production configuration — and each point's series carries the
// registry deltas scraped over its window (Series.Telemetry). One extra
// server re-measures the reference model at the lowest offered point
// with telemetry off, so the metrics-overhead invariant has its twin.
//
// All servers boot (and warm) up front and each offered point is
// measured across them concurrently — one open-loop generator per
// server over the same wall-clock window. The latency invariants are
// ratios between series at the same point, and a sequential
// model-after-model sweep hands each series a different position in
// machine-wide drift (frequency scaling, cache warm-up, noisy
// neighbors) — on a drifting box the last-measured series wins every
// comparison by position alone. Sharing the window makes drift and
// noise bursts common-mode: they land on both sides of every ratio.
// The combined offered load stays far below the service rate, so
// cross-server contention is second-order and symmetric.
//
// Canceling ctx stops the sweep at the next point boundary (the
// in-flight point finishes early with a partial measurement, which is
// discarded) and returns the points measured so far alongside ctx's
// error — the partial-report path the SIGINT contract is built on.
func RunLatencySuite(ctx context.Context, cfg LatencySuiteConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := New("cmd/loadsweep", cfg.RunConfig())

	low := cfg.Offered[0]
	for _, o := range cfg.Offered {
		if o < low {
			low = o
		}
	}

	var servers []*latencyServer
	defer func() {
		for _, sv := range servers {
			sv.srv.Close()
		}
	}()
	for _, model := range cfg.Models {
		sv, err := bootLatencyServer(cfg, model, true)
		if err != nil {
			return rep, err
		}
		servers = append(servers, sv)
	}
	twin, err := bootLatencyServer(cfg, refServeModel(cfg.Models), false)
	if err != nil {
		return rep, err
	}
	servers = append(servers, twin)

	path := "/run?kernel=" + cfg.Kernel
	for _, sv := range servers {
		if err := sv.warm(ctx, path); err != nil {
			return rep, err
		}
	}

	for _, point := range cfg.Offered {
		if err := runLatencyPoint(ctx, cfg, rep, servers, path, point, low); err != nil {
			return rep, err
		}
	}
	return rep, rep.Validate()
}

// refServeModel picks the reference runtime the parity and overhead
// invariants anchor on: omp_for when swept, else the first model.
func refServeModel(swept []string) string {
	for _, m := range swept {
		if m == models.OMPFor {
			return m
		}
	}
	return swept[0]
}

// latencyServer is one booted runtime in the sweep plus its series
// key shape — the Metrics flag doubles as "is the telemetry-off
// twin", which only the lowest offered point measures.
type latencyServer struct {
	cfg   LatencySuiteConfig
	model string
	srv   *serve.Server
	key   Key
}

// bootLatencyServer boots one in-process threadserve for the sweep.
func bootLatencyServer(cfg LatencySuiteConfig, model string, metricsOn bool) (*latencyServer, error) {
	scfg := serve.Config{
		Model:    model,
		Threads:  cfg.Threads,
		Queue:    cfg.Queue,
		Timeout:  cfg.Timeout,
		WorkSize: cfg.WorkSize,
		Metrics:  metricsOn,
	}
	k := Key{Kernel: cfg.Kernel, Model: model, Threads: cfg.Threads,
		Partitioner: "-", Scenario: Scenario, Metrics: metricsOn}
	if strings.HasPrefix(model, models.ShardedPrefix) {
		scfg.Shards = cfg.Shards
		scfg.Balancer = cfg.Balancer
		k.Shards = cfg.Shards
		k.Balancer = cfg.Balancer
	}
	s, err := serve.New(scfg)
	if err != nil {
		return nil, fmt.Errorf("benchgate: boot %s: %w", model, err)
	}
	return &latencyServer{cfg: cfg, model: model, srv: s, key: k}, nil
}

// warm drives warmBurst closed-loop requests through the server so a
// freshly booted runtime's spin-up cost never lands in a measured
// point. Outcomes are ignored; the per-round open-loop warmup still
// applies on top.
func (sv *latencyServer) warm(ctx context.Context, path string) error {
	target := loadgen.HandlerTarget{Handler: sv.srv}
	for i := 0; i < warmBurst; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		_, _ = target.Do(ctx, path)
	}
	return nil
}

// runLatencyPoint measures one offered-load point for every server
// concurrently — one open-loop generator per server, decorrelated
// arrival schedules, one shared wall-clock window — and appends the
// completed series to rep. The telemetry-off twin (the last server)
// joins only at the lowest offered point, where the metrics-overhead
// invariant lives. A canceled ctx abandons the whole point — no
// partial series is added.
func runLatencyPoint(ctx context.Context, cfg LatencySuiteConfig, rep *Report, servers []*latencyServer, path string, point, low int) error {
	measured := make([]*latencyServer, 0, len(servers))
	before := make([]map[string]float64, 0, len(servers))
	for _, sv := range servers {
		if !sv.key.Metrics && point != low {
			continue
		}
		sv.srv.Stats(true) // reset the peak-depth watermark for this point
		var b map[string]float64
		if reg := sv.srv.Registry(); reg != nil {
			b = reg.Gather()
		}
		measured = append(measured, sv)
		before = append(before, b)
	}

	results := make([]loadgen.Result, len(measured))
	errs := make([]error, len(measured))
	var wg sync.WaitGroup
	for i, sv := range measured {
		wg.Add(1)
		go func(i int, sv *latencyServer) {
			defer wg.Done()
			results[i], errs[i] = loadgen.Run(ctx, loadgen.Config{
				Target:   loadgen.HandlerTarget{Handler: sv.srv},
				Path:     path,
				Offered:  float64(point),
				Requests: cfg.Requests,
				Warmup:   cfg.Warmup,
				Seed:     cfg.Seed + uint64(i)*seedStride,
			})
		}(i, sv)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	for i, sv := range measured {
		res := results[i]
		if len(res.LatencyNs) == 0 {
			return fmt.Errorf("benchgate: %s at %d rps completed no requests (%d shed, %d timeouts, %d errors)",
				sv.model, point, res.Shed, res.Timeouts, res.Errors)
		}
		k := sv.key
		k.Offered = point
		ser := Series{
			Key:        k,
			SampleNs:   res.LatencyNs,
			Goodput:    res.Goodput(),
			ShedRate:   res.ShedRate(),
			QueueDepth: int(sv.srv.Stats(false).PeakDepth),
		}
		if reg := sv.srv.Registry(); reg != nil {
			ser.Telemetry = scrapeWindow(before[i], reg.Gather())
		}
		rep.Add(ser)
	}
	return nil
}

// scrapeWindow reduces two registry scrapes bracketing one offered-
// load point to the compact map stored in Series.Telemetry: deltas of
// the scheduler and request-outcome counters, watchdog stalls and
// trace-ring drops over the window, and the end-of-window mean
// per-worker utilization.
func scrapeWindow(before, after map[string]float64) map[string]float64 {
	const (
		schedPfx = `threadserve_sched_total{counter="`
		reqPfx   = `threadserve_requests_total{outcome="`
	)
	out := map[string]float64{"stalls": 0, "trace_dropped": 0}
	var utilSum float64
	var utilN int
	for k, v := range after {
		d := v - before[k]
		switch {
		case strings.HasPrefix(k, schedPfx):
			if d != 0 {
				out["sched."+strings.TrimSuffix(k[len(schedPfx):], `"}`)] = d
			}
		case strings.HasPrefix(k, reqPfx):
			if d != 0 {
				out["requests."+strings.TrimSuffix(k[len(reqPfx):], `"}`)] = d
			}
		case strings.HasPrefix(k, "threadserve_sched_stalls_total"):
			out["stalls"] += d
		case strings.HasPrefix(k, "threadserve_trace_dropped_total"):
			out["trace_dropped"] += d
		case strings.HasPrefix(k, "threadserve_worker_utilization{"):
			utilSum += v
			utilN++
		}
	}
	if utilN > 0 {
		out["worker_util_mean"] = utilSum / float64(utilN)
	}
	return out
}
