package benchgate

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"threading/internal/harness"
	"threading/internal/models"
	"threading/internal/worksteal"
)

// kernelFigs maps suite kernel names to the registered harness
// experiments whose workloads they reuse, so the gate measures
// exactly what the paper's figures measure.
var kernelFigs = map[string]string{
	"axpy":   "fig1",
	"sum":    "fig2",
	"matvec": "fig3",
	"matmul": "fig4",
	"fib":    "fig5",
}

// DefaultKernels is the default suite: the flat data-parallel loops
// whose ordering the paper's headline claims (and the gated
// invariants) are about, plus matvec for a higher-intensity point.
func DefaultKernels() []string { return []string{"axpy", "sum", "matvec"} }

// SuiteConfig selects what RunSuite measures.
type SuiteConfig struct {
	// Kernels to measure; empty selects DefaultKernels.
	Kernels []string
	// Threads is the pool size; 0 selects GOMAXPROCS.
	Threads int
	// Reps is the number of timed repetitions per series; 0 selects 7
	// (odd, and large enough for the exact U distribution to resolve
	// p < 0.05).
	Reps int
	// Grain is the distribution-stressing grain for the work-stealing
	// series; 0 selects 64.
	Grain int
	// Scale is the workload scale factor; 0 selects 0.1 (the gate
	// favors many cheap repetitions over one large run).
	Scale float64
	// Shards, when non-zero, adds a sharded work-stealing series per
	// kernel (sharded:cilk_for at the stress grain) split across this
	// many shards; negative selects GOMAXPROCS. The sharding-overhead
	// invariant is defined over this series.
	Shards int
	// Balancer routes the sharded series; empty selects least-loaded,
	// the balancer the overhead bound is claimed for.
	Balancer string
	// Pinned, when true, adds a pinned-worker twin of the stress-grain
	// eager work-stealing series per loop kernel (workers locked to OS
	// threads). The pinning-overhead invariant is defined over these
	// twins.
	Pinned bool
}

func (c SuiteConfig) withDefaults() SuiteConfig {
	if len(c.Kernels) == 0 {
		c.Kernels = DefaultKernels()
	}
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.Reps <= 0 {
		c.Reps = 7
	}
	if c.Grain <= 0 {
		c.Grain = 64
	}
	if c.Scale <= 0 {
		c.Scale = 0.1
	}
	if c.Shards < 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards != 0 && c.Balancer == "" {
		c.Balancer = "least-loaded"
	}
	return c
}

// RunConfig returns the schema record of this configuration.
func (c SuiteConfig) RunConfig() RunConfig {
	c = c.withDefaults()
	return RunConfig{
		Threads:  c.Threads,
		Grain:    c.Grain,
		Scale:    c.Scale,
		Reps:     c.Reps,
		Kernels:  c.Kernels,
		Shards:   c.Shards,
		Balancer: c.Balancer,
		Pinned:   c.Pinned,
	}
}

// seriesSpec is one measured configuration of a kernel.
type seriesSpec struct {
	model       string
	grain       int
	partitioner worksteal.Partitioner
	shards      int
	balancer    string
	pinned      bool
}

// specs returns the per-kernel series for the loop kernels: the
// work-sharing reference plus the work-stealing model under
// {stress, default} grain x {eager, lazy} — the grid the invariants
// and the loop-distribution trajectory are defined over — plus, when
// sharding is configured, the sharded work-stealing runtime at stress
// grain (the series the sharding-overhead invariant compares against
// its single-pool twin), and, when pinning is configured, a
// pinned-worker twin of the stress-grain eager series (the
// pinning-overhead invariant's subject).
func specs(stressGrain, shards int, balancer string, pinned bool) []seriesSpec {
	out := []seriesSpec{
		{model: models.OMPFor, grain: 0, partitioner: worksteal.Eager},
		{model: models.CilkFor, grain: stressGrain, partitioner: worksteal.Eager},
		{model: models.CilkFor, grain: stressGrain, partitioner: worksteal.Lazy},
		{model: models.CilkFor, grain: 0, partitioner: worksteal.Eager},
		{model: models.CilkFor, grain: 0, partitioner: worksteal.Lazy},
	}
	if shards != 0 {
		out = append(out, seriesSpec{
			model: models.ShardedPrefix + models.CilkFor, grain: stressGrain,
			partitioner: worksteal.Eager, shards: shards, balancer: balancer,
		})
	}
	if pinned {
		out = append(out, seriesSpec{
			model: models.CilkFor, grain: stressGrain,
			partitioner: worksteal.Eager, pinned: true,
		})
	}
	return out
}

// taskSpecs returns the per-kernel series for the task kernels (fib):
// the spawn-heavy pair the paper's Fig. 5 invariant is defined over —
// cilk_spawn over lock-free Chase-Lev deques versus omp task over the
// team's locked deques. Grain and partitioner do not shape these
// series (recursion spawns directly), so they record zero values.
func taskSpecs() []seriesSpec {
	return []seriesSpec{
		{model: models.OMPTask, grain: 0, partitioner: worksteal.Eager},
		{model: models.CilkSpawn, grain: 0, partitioner: worksteal.Eager},
	}
}

// taskKernel reports whether the named kernel is measured through the
// task models rather than the loop grid.
func taskKernel(kernel string) bool { return kernel == "fib" }

// RunSuite measures the configured kernels and returns a report in
// the shared schema. Each series runs through harness.RunCtx against
// the registered figure workload, with the raw repetition samples
// exported via the harness sample hook; ctx cancels the sweep at the
// next measurement boundary.
func RunSuite(ctx context.Context, cfg SuiteConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := New("cmd/benchgate", cfg.RunConfig())
	for _, kernel := range cfg.Kernels {
		figID, ok := kernelFigs[kernel]
		if !ok {
			return nil, fmt.Errorf("benchgate: unknown kernel %q (have axpy, sum, matvec, matmul, fib)", kernel)
		}
		base, ok := harness.ByID(figID)
		if !ok {
			return nil, fmt.Errorf("benchgate: experiment %s not registered", figID)
		}
		kernelSpecs := specs(cfg.Grain, cfg.Shards, cfg.Balancer, cfg.Pinned)
		if taskKernel(kernel) {
			kernelSpecs = taskSpecs()
		}
		for _, sp := range kernelSpecs {
			exp := &harness.Experiment{
				ID:      kernel,
				Title:   base.Title,
				Finding: base.Finding,
				Models:  []string{sp.model},
				Prepare: base.Prepare,
			}
			res, err := harness.RunCtx(ctx, exp, harness.Config{
				Threads:     []int{cfg.Threads},
				Reps:        cfg.Reps,
				Scale:       cfg.Scale,
				Grain:       sp.grain,
				Partitioner: sp.partitioner,
				Shards:      sp.shards,
				Balancer:    sp.balancer,
				Pinned:      sp.pinned,
				KeepSamples: true,
			})
			if err != nil {
				return nil, err
			}
			samples := res.RawSamples[sp.model][cfg.Threads]
			ns := make([]int64, len(samples))
			for i, d := range samples {
				ns[i] = d.Nanoseconds()
			}
			rep.Add(Series{
				Key: Key{
					Kernel:      kernel,
					Model:       sp.model,
					Threads:     cfg.Threads,
					Grain:       sp.grain,
					Partitioner: partitionerName(sp.model, sp.partitioner),
					Shards:      sp.shards,
					Balancer:    sp.balancer,
					Pinned:      sp.pinned,
				},
				SampleNs: ns,
			})
		}
	}
	return rep, rep.Validate()
}

// FromResults converts harness results collected with
// Config.KeepSamples into a schema report — the export path
// cmd/threadbench uses so a smoke run doubles as a compare-able
// artifact. The kernel name of each series is the experiment ID
// (fig1..fig10). Keys carry the full measured configuration the
// harness echoes (grain, sharding, pinning) — omitting them would
// collide a sharded smoke run's series with its unsharded twin.
func FromResults(results []*harness.Result, tool string, reps int, scale float64) *Report {
	rep := New(tool, RunConfig{Scale: scale, Reps: reps})
	for _, r := range results {
		for _, m := range r.Models {
			shards, balancer := 0, ""
			if strings.HasPrefix(m, models.ShardedPrefix) {
				shards, balancer = r.Shards, r.Balancer
			}
			for _, t := range r.Threads {
				samples, ok := r.RawSamples[m][t]
				if !ok {
					continue
				}
				ns := make([]int64, len(samples))
				for i, d := range samples {
					ns[i] = d.Nanoseconds()
				}
				rep.Add(Series{
					Key: Key{
						Kernel:      r.Experiment.ID,
						Model:       m,
						Threads:     t,
						Grain:       r.Grain,
						Partitioner: partitionerName(m, r.Partitioner),
						Shards:      shards,
						Balancer:    balancer,
						Pinned:      r.Pinned,
					},
					SampleNs: ns,
				})
			}
		}
	}
	return rep
}

// partitionerName is the schema spelling of the partitioner for a
// model: the partitioner's name for the work-stealing models (sharded
// or not — pool shards inherit the partitioner), "-" for models the
// option does not apply to.
func partitionerName(model string, p worksteal.Partitioner) string {
	model = strings.TrimPrefix(model, models.ShardedPrefix)
	if model == models.CilkFor || model == models.CilkSpawn {
		return p.String()
	}
	return "-"
}
