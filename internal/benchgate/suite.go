package benchgate

import (
	"context"
	"fmt"
	"runtime"

	"threading/internal/harness"
	"threading/internal/models"
	"threading/internal/worksteal"
)

// kernelFigs maps suite kernel names to the registered harness
// experiments whose workloads they reuse, so the gate measures
// exactly what the paper's figures measure.
var kernelFigs = map[string]string{
	"axpy":   "fig1",
	"sum":    "fig2",
	"matvec": "fig3",
	"matmul": "fig4",
}

// DefaultKernels is the default suite: the flat data-parallel loops
// whose ordering the paper's headline claims (and the gated
// invariants) are about, plus matvec for a higher-intensity point.
func DefaultKernels() []string { return []string{"axpy", "sum", "matvec"} }

// SuiteConfig selects what RunSuite measures.
type SuiteConfig struct {
	// Kernels to measure; empty selects DefaultKernels.
	Kernels []string
	// Threads is the pool size; 0 selects GOMAXPROCS.
	Threads int
	// Reps is the number of timed repetitions per series; 0 selects 7
	// (odd, and large enough for the exact U distribution to resolve
	// p < 0.05).
	Reps int
	// Grain is the distribution-stressing grain for the work-stealing
	// series; 0 selects 64.
	Grain int
	// Scale is the workload scale factor; 0 selects 0.1 (the gate
	// favors many cheap repetitions over one large run).
	Scale float64
}

func (c SuiteConfig) withDefaults() SuiteConfig {
	if len(c.Kernels) == 0 {
		c.Kernels = DefaultKernels()
	}
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.Reps <= 0 {
		c.Reps = 7
	}
	if c.Grain <= 0 {
		c.Grain = 64
	}
	if c.Scale <= 0 {
		c.Scale = 0.1
	}
	return c
}

// RunConfig returns the schema record of this configuration.
func (c SuiteConfig) RunConfig() RunConfig {
	c = c.withDefaults()
	return RunConfig{
		Threads: c.Threads,
		Grain:   c.Grain,
		Scale:   c.Scale,
		Reps:    c.Reps,
		Kernels: c.Kernels,
	}
}

// seriesSpec is one measured configuration of a kernel.
type seriesSpec struct {
	model       string
	grain       int
	partitioner worksteal.Partitioner
}

// specs returns the per-kernel series: the work-sharing reference
// plus the work-stealing model under {stress, default} grain x
// {eager, lazy} — the grid the invariants and the loop-distribution
// trajectory are defined over.
func specs(stressGrain int) []seriesSpec {
	return []seriesSpec{
		{models.OMPFor, 0, worksteal.Eager},
		{models.CilkFor, stressGrain, worksteal.Eager},
		{models.CilkFor, stressGrain, worksteal.Lazy},
		{models.CilkFor, 0, worksteal.Eager},
		{models.CilkFor, 0, worksteal.Lazy},
	}
}

// RunSuite measures the configured kernels and returns a report in
// the shared schema. Each series runs through harness.RunCtx against
// the registered figure workload, with the raw repetition samples
// exported via the harness sample hook; ctx cancels the sweep at the
// next measurement boundary.
func RunSuite(ctx context.Context, cfg SuiteConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := New("cmd/benchgate", cfg.RunConfig())
	for _, kernel := range cfg.Kernels {
		figID, ok := kernelFigs[kernel]
		if !ok {
			return nil, fmt.Errorf("benchgate: unknown kernel %q (have axpy, sum, matvec, matmul)", kernel)
		}
		base, ok := harness.ByID(figID)
		if !ok {
			return nil, fmt.Errorf("benchgate: experiment %s not registered", figID)
		}
		for _, sp := range specs(cfg.Grain) {
			exp := &harness.Experiment{
				ID:      kernel,
				Title:   base.Title,
				Finding: base.Finding,
				Models:  []string{sp.model},
				Prepare: base.Prepare,
			}
			res, err := harness.RunCtx(ctx, exp, harness.Config{
				Threads:     []int{cfg.Threads},
				Reps:        cfg.Reps,
				Scale:       cfg.Scale,
				Grain:       sp.grain,
				Partitioner: sp.partitioner,
				KeepSamples: true,
			})
			if err != nil {
				return nil, err
			}
			samples := res.RawSamples[sp.model][cfg.Threads]
			ns := make([]int64, len(samples))
			for i, d := range samples {
				ns[i] = d.Nanoseconds()
			}
			rep.Add(Series{
				Key: Key{
					Kernel:      kernel,
					Model:       sp.model,
					Threads:     cfg.Threads,
					Grain:       sp.grain,
					Partitioner: partitionerName(sp.model, sp.partitioner),
				},
				SampleNs: ns,
			})
		}
	}
	return rep, rep.Validate()
}

// FromResults converts harness results collected with
// Config.KeepSamples into a schema report — the export path
// cmd/threadbench uses so a smoke run doubles as a compare-able
// artifact. The kernel name of each series is the experiment ID
// (fig1..fig10).
func FromResults(results []*harness.Result, tool string, reps int, scale float64) *Report {
	rep := New(tool, RunConfig{Scale: scale, Reps: reps})
	for _, r := range results {
		for _, m := range r.Models {
			for _, t := range r.Threads {
				samples, ok := r.RawSamples[m][t]
				if !ok {
					continue
				}
				ns := make([]int64, len(samples))
				for i, d := range samples {
					ns[i] = d.Nanoseconds()
				}
				rep.Add(Series{
					Key: Key{
						Kernel:      r.Experiment.ID,
						Model:       m,
						Threads:     t,
						Grain:       0,
						Partitioner: partitionerName(m, r.Partitioner),
					},
					SampleNs: ns,
				})
			}
		}
	}
	return rep
}

// partitionerName is the schema spelling of the partitioner for a
// model: the partitioner's name for the work-stealing models, "-"
// for models the option does not apply to.
func partitionerName(model string, p worksteal.Partitioner) string {
	if model == models.CilkFor || model == models.CilkSpawn {
		return p.String()
	}
	return "-"
}
