// Package benchgate turns the repository's benchmark trajectory into
// an enforced contract. It defines a schema-versioned sample format
// shared by every bench-emitting tool (cmd/benchgate, cmd/loopdist,
// cmd/threadbench -out), a statistical comparison engine that
// classifies each measurement key as improved / regressed / unchanged
// using a Mann-Whitney U test plus a minimum-effect threshold, and
// machine-checked directional invariants encoding the paper's
// quantitative ordering claims (work-sharing beats work-stealing on
// flat loops; lazy splitting beats eager at stress grain).
package benchgate

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// SchemaVersion is the current sample-file schema. Readers accept
// files up to and including this version; newer files are rejected so
// an old gate never silently misreads a future format.
const SchemaVersion = 1

// Key identifies one measured series: a kernel executed under a
// model at a thread count, grain, and loop partitioner. Two reports
// are comparable key-by-key.
type Key struct {
	// Kernel names the workload, e.g. "axpy".
	Kernel string `json:"kernel"`
	// Model is the threading model, e.g. "omp_for".
	Model string `json:"model"`
	// Threads is the degree of parallelism.
	Threads int `json:"threads"`
	// Grain is the fixed loop grain; 0 is the runtime's default
	// heuristic.
	Grain int `json:"grain"`
	// Partitioner is "eager" or "lazy" for the work-stealing models
	// and "-" for models the option does not apply to.
	Partitioner string `json:"partitioner"`
	// Shards and Balancer identify a sharded series: the shard count
	// the model's runtime was split into and the routing balancer.
	// Zero values mean unsharded, so keys from pre-sharding reports
	// compare unchanged (the fields are additive; the schema version
	// is unchanged).
	Shards   int    `json:"shards,omitempty"`
	Balancer string `json:"balancer,omitempty"`
	// Pinned marks a series measured with the runtime's workers locked
	// to OS threads (WithPinnedWorkers). Additive like Shards: the zero
	// value means unpinned and keys from older reports compare
	// unchanged.
	Pinned bool `json:"pinned,omitempty"`
	// Sweep tags a scaling-suite series: "strong" (fixed total problem
	// size across the thread sweep) or "weak" (fixed per-thread size).
	// Empty for plain fixed-thread series.
	Sweep string `json:"sweep,omitempty"`
	// Scenario tags a service-scenario series (e.g. "serve"): samples
	// are per-request latencies from an open-loop load sweep rather
	// than whole-kernel repetition timings. Empty for bench series.
	Scenario string `json:"scenario,omitempty"`
	// Offered is the scenario's offered load in requests/second — the
	// sweep point this series was measured at. Zero outside scenarios.
	Offered int `json:"offered,omitempty"`
	// Metrics marks a scenario series measured with the live telemetry
	// registry enabled (serve.Config.Metrics). Additive like Pinned:
	// the zero value means telemetry off, so keys from pre-telemetry
	// reports compare unchanged. The metrics-overhead invariant pits a
	// Metrics series against its telemetry-off twin.
	Metrics bool `json:"metrics,omitempty"`
}

func (k Key) String() string {
	s := fmt.Sprintf("%s/%s t=%d g=%d %s",
		k.Kernel, k.Model, k.Threads, k.Grain, k.Partitioner)
	if k.Shards != 0 {
		s += fmt.Sprintf(" s=%d/%s", k.Shards, k.Balancer)
	}
	if k.Pinned {
		s += " pinned"
	}
	if k.Sweep != "" {
		s += " " + k.Sweep
	}
	if k.Scenario != "" {
		s += fmt.Sprintf(" %s@%drps", k.Scenario, k.Offered)
	}
	if k.Metrics {
		s += " metrics"
	}
	return s
}

// normalized maps a key to its canonical spelling, so reports written
// by different tools (or by hand-trimmed baselines) stay comparable:
// an absent partitioner means "does not apply", an unsharded series
// cannot carry a balancer, and a sharded series with no recorded
// balancer was routed by the default. Without this, a baseline whose
// omitempty fields were dropped would silently stop matching its
// freshly measured twin and the gate would report "missing key"
// instead of comparing.
func (k Key) normalized() Key {
	if k.Partitioner == "" {
		k.Partitioner = "-"
	}
	if k.Shards == 0 {
		k.Balancer = ""
	} else if k.Balancer == "" {
		k.Balancer = "round-robin"
	}
	return k
}

// Series is one key plus its raw repetition timings. All statistics
// (min, median, CI, U test) are derived from SampleNs at comparison
// time, so the file stays a faithful record of what was measured.
type Series struct {
	Key
	// SampleNs holds every timed repetition, in nanoseconds, in
	// measurement order.
	SampleNs []int64 `json:"sample_ns"`
	// Counters optionally carries scheduler counters explaining the
	// timings (e.g. spawns or lazy splits per run).
	Counters map[string]int64 `json:"counters,omitempty"`
	// Efficiency is the parallel efficiency of a scaling-suite series:
	// T(1)/(p*T(p)) for strong sweeps, T(1)/T(p) for weak sweeps, from
	// the minimum timings. Zero (and omitted) outside scaling sweeps.
	Efficiency float64 `json:"efficiency,omitempty"`
	// Goodput, ShedRate, and QueueDepth describe a service-scenario
	// series (Key.Scenario != ""): completed-OK requests per second
	// over the measured window, the shed (429) fraction of arrivals,
	// and the peak admission-queue depth observed at this sweep point.
	// Zero (and omitted) outside scenarios.
	Goodput    float64 `json:"goodput,omitempty"`
	ShedRate   float64 `json:"shed_rate,omitempty"`
	QueueDepth int     `json:"queue_depth,omitempty"`
	// Telemetry optionally carries metrics scraped from the server's
	// /metrics registry over this series' measurement window (deltas
	// for counters, end-of-window values for gauges) — the scheduler-
	// behavior context behind the latency samples. Present only when
	// the series was measured with Key.Metrics set.
	Telemetry map[string]float64 `json:"telemetry,omitempty"`
}

// Env records where a report was measured. Cross-environment
// comparisons are advisory: absolute times from different machines do
// not gate (see Comparable).
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// NewEnv captures the current process environment.
func NewEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Comparable reports whether absolute timings from the two
// environments may be compared for gating: same platform and the
// same degree of hardware parallelism. Go patch versions may differ.
func (e Env) Comparable(o Env) bool {
	return e.GOOS == o.GOOS && e.GOARCH == o.GOARCH && e.GOMAXPROCS == o.GOMAXPROCS
}

// RunConfig records the suite configuration a report was produced
// with, so `check` can regenerate comparable samples.
type RunConfig struct {
	// Threads is the pool size every series was run at.
	Threads int `json:"threads"`
	// Grain is the distribution-stressing grain the work-stealing
	// series were additionally run at.
	Grain int `json:"grain"`
	// Scale is the workload scale factor (see harness.Config.Scale).
	Scale float64 `json:"scale"`
	// Reps is the number of timed repetitions per series.
	Reps int `json:"reps"`
	// Kernels lists the measured kernels in order.
	Kernels []string `json:"kernels,omitempty"`
	// Shards and Balancer record the sharded series configuration
	// (resolved shard count; zero when the run measured no sharded
	// series).
	Shards   int    `json:"shards,omitempty"`
	Balancer string `json:"balancer,omitempty"`
	// Pinned records whether the run also measured pinned-worker twin
	// series (the pinning-overhead invariant's subjects).
	Pinned bool `json:"pinned,omitempty"`
	// Sweep records the scaling-suite mode the report was produced by:
	// "strong", "weak", or empty for fixed-thread runs.
	Sweep string `json:"sweep,omitempty"`
	// Scenario records the service scenario the report was produced
	// by (e.g. "serve"); empty for bench reports. When set, Offered
	// lists the swept offered-load points (requests/second), Requests
	// the arrivals generated per point, and Models the runtimes the
	// sweep was run against.
	Scenario string   `json:"scenario,omitempty"`
	Offered  []int    `json:"offered,omitempty"`
	Requests int      `json:"requests,omitempty"`
	Models   []string `json:"models,omitempty"`
	// Seed drives the scenario's deterministic arrival schedule.
	Seed uint64 `json:"seed,omitempty"`
	// Metrics records that the scenario series were measured with the
	// live telemetry registry enabled (plus one telemetry-off twin for
	// the overhead invariant). Zero for pre-telemetry reports, whose
	// keys then resolve without the Metrics mark.
	Metrics bool `json:"metrics,omitempty"`
}

// Report is the sample-file schema shared by all bench tools.
type Report struct {
	Schema int       `json:"schema"`
	Tool   string    `json:"tool"`
	Env    Env       `json:"env"`
	Config RunConfig `json:"config"`
	Series []Series  `json:"series"`
}

// New returns an empty report stamped with the current schema version
// and environment.
func New(tool string, cfg RunConfig) *Report {
	return &Report{Schema: SchemaVersion, Tool: tool, Env: NewEnv(), Config: cfg}
}

// Add appends a series.
func (r *Report) Add(s Series) { r.Series = append(r.Series, s) }

// Find returns the series with the given key, or nil. Keys are
// matched under normalization (see Key.normalized), so equivalent
// spellings of the same configuration — with or without omitempty
// defaults — resolve to the same series.
func (r *Report) Find(k Key) *Series {
	k = k.normalized()
	for i := range r.Series {
		if r.Series[i].Key.normalized() == k {
			return &r.Series[i]
		}
	}
	return nil
}

// Validate checks the schema version and that every series carries
// samples.
func (r *Report) Validate() error {
	if r.Schema < 1 {
		return fmt.Errorf("benchgate: missing or invalid schema version %d", r.Schema)
	}
	if r.Schema > SchemaVersion {
		return fmt.Errorf("benchgate: schema version %d is newer than this tool supports (%d)",
			r.Schema, SchemaVersion)
	}
	seen := make(map[Key]bool, len(r.Series))
	for _, s := range r.Series {
		if len(s.SampleNs) == 0 {
			return fmt.Errorf("benchgate: series %s has no samples", s.Key)
		}
		k := s.Key.normalized()
		if seen[k] {
			return fmt.Errorf("benchgate: duplicate series %s", s.Key)
		}
		seen[k] = true
	}
	return nil
}

// WriteFile marshals the report to path as indented JSON.
func WriteFile(path string, r *Report) error {
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile parses and validates a report.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
