package tracez

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// This file attributes scheduler cost to individual requests. A
// request id minted in internal/serve flows through the Ctx API into
// the runtimes' span events two ways: task spans carry it directly
// (KindTaskStart.A1, 0 when untagged — the pre-telemetry encoding, so
// old traces read identically), and the work-sharing runtimes bracket
// their regions with KindReqTag instants that set a worker's ambient
// id for the chunk spans in between, which have no free argument.
// SummarizeRequests folds both into a per-request scheduler-cost
// table: how much worker busy time, how many chunks, steals, and how
// much park time each request induced across the pool.

// RequestCost aggregates the scheduler cost attributed to one request.
type RequestCost struct {
	// ID is the request id (serve's X-Request-Id value).
	ID int64
	// Tasks and Chunks count completed task spans and loop chunks.
	Tasks  int64
	Chunks int64
	// Steals and FailedSteals count steal traffic attributed to the
	// request: steals landing inside its spans, plus the hunt that
	// immediately preceded a worker picking the request's work up.
	Steals       int64
	FailedSteals int64
	// BusyNs is worker busy time exclusive of nested spans, summed
	// across workers (can exceed the request's wall latency when
	// several workers serve it in parallel).
	BusyNs int64
	// ParkNs is park time immediately preceding the request's spans —
	// the wake-up cost of getting workers onto its work.
	ParkNs int64
	// Workers counts the distinct workers that executed the request's
	// spans.
	Workers int
}

// openSpan is one entry of a worker's in-progress span stack.
type openSpan struct {
	kind    Kind
	rid     int64
	start   int64
	childNs int64
}

// SummarizeRequests derives per-request costs from tr. Requests are
// identified by nonzero ids; untagged work (id 0 — benchmarks, or
// traces predating request correlation) is skipped, so the result is
// empty for non-serve traces. Results are ordered by request id.
func SummarizeRequests(tr *Trace) []RequestCost {
	if tr == nil {
		return nil
	}
	acc := make(map[int64]*RequestCost)
	workers := make(map[int64]map[int]bool)
	get := func(rid int64) *RequestCost {
		rc, ok := acc[rid]
		if !ok {
			rc = &RequestCost{ID: rid}
			acc[rid] = rc
			workers[rid] = make(map[int]bool)
		}
		return rc
	}

	for _, wt := range tr.Workers {
		summarizeWorkerRequests(wt, get, workers)
	}

	out := make([]RequestCost, 0, len(acc))
	for rid, rc := range acc {
		rc.Workers = len(workers[rid])
		out = append(out, *rc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// summarizeWorkerRequests walks one worker's events. Spans inherit
// their request id from (in order) their own KindTaskStart.A1, the
// enclosing span, or the worker's ambient KindReqTag. Idle-time costs
// — steal hunts and park intervals between spans — flush into the
// next request-tagged span: that hunt/wake-up is the price of getting
// this worker onto that request's work.
func summarizeWorkerRequests(wt WorkerTrace, get func(int64) *RequestCost, workers map[int64]map[int]bool) {
	if len(wt.Events) == 0 {
		return
	}
	lastTS := wt.Events[len(wt.Events)-1].TS

	var stack []openSpan
	var ambient int64
	var pendSteals, pendFails, pendParkNs int64
	parkStart := int64(-1)

	attribute := func(rid int64, busy int64) {
		if rid == 0 {
			// Untagged work: its idle costs don't belong to any
			// request either.
			pendSteals, pendFails, pendParkNs = 0, 0, 0
			return
		}
		rc := get(rid)
		rc.BusyNs += busy
		rc.Steals += pendSteals
		rc.FailedSteals += pendFails
		rc.ParkNs += pendParkNs
		pendSteals, pendFails, pendParkNs = 0, 0, 0
		workers[rid][wt.ID] = true
	}

	for _, e := range wt.Events {
		switch e.Kind {
		case KindReqTag:
			ambient = e.A1
		case KindTaskStart, KindChunkStart, KindThreadStart:
			rid := ambient
			if len(stack) > 0 {
				rid = stack[len(stack)-1].rid
			}
			if e.Kind == KindTaskStart && e.A1 != 0 {
				rid = e.A1
			}
			if rid != 0 {
				switch e.Kind {
				case KindChunkStart:
					get(rid).Chunks++
					workers[rid][wt.ID] = true
				case KindThreadStart:
					if e.A2 > e.A1 {
						get(rid).Chunks++
						workers[rid][wt.ID] = true
					}
				}
			}
			stack = append(stack, openSpan{kind: e.Kind, rid: rid, start: e.TS})
		case KindTaskEnd, KindChunkEnd, KindThreadEnd:
			if len(stack) == 0 {
				// Start lost to ring wraparound: nothing to attribute.
				continue
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			total := e.TS - top.start
			self := total - top.childNs
			if self < 0 {
				self = 0
			}
			if len(stack) > 0 {
				stack[len(stack)-1].childNs += total
			}
			attribute(top.rid, self)
			if top.rid != 0 && e.Kind == KindTaskEnd {
				get(top.rid).Tasks++
			}
		case KindSteal:
			if len(stack) > 0 && stack[len(stack)-1].rid != 0 {
				get(stack[len(stack)-1].rid).Steals++
			} else {
				pendSteals++
			}
		case KindStealFail:
			if len(stack) > 0 && stack[len(stack)-1].rid != 0 {
				get(stack[len(stack)-1].rid).FailedSteals++
			} else {
				pendFails++
			}
		case KindPark:
			parkStart = e.TS
		case KindUnpark:
			if parkStart >= 0 {
				pendParkNs += e.TS - parkStart
				parkStart = -1
			}
		}
	}
	// Spans still open at the capture edge: attribute what ran inside
	// the window, mirroring Summarize's handling of truncated spans.
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		self := lastTS - top.start - top.childNs
		if self < 0 {
			self = 0
		}
		attribute(top.rid, self)
	}
}

// RenderRequests writes the per-request scheduler-cost table.
func RenderRequests(w io.Writer, costs []RequestCost) {
	if len(costs) == 0 {
		return
	}
	fmt.Fprintf(w, "per-request scheduler cost (%d requests):\n", len(costs))
	fmt.Fprintf(w, "%-10s %10s %8s %8s %8s %8s %10s %7s\n",
		"request", "busy", "tasks", "chunks", "steals", "fails", "park", "workers")
	for _, rc := range costs {
		fmt.Fprintf(w, "%-10d %10v %8d %8d %8d %8d %10v %7d\n",
			rc.ID,
			time.Duration(rc.BusyNs).Round(time.Microsecond),
			rc.Tasks, rc.Chunks, rc.Steals, rc.FailedSteals,
			time.Duration(rc.ParkNs).Round(time.Microsecond),
			rc.Workers)
	}
}
