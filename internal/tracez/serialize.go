package tracez

import (
	"encoding/json"
	"fmt"
	"os"
)

// Event serializes as the compact array [ts, kind, a1, a2]: a trace
// holds up to capacity*workers events, and the keyed-object encoding
// would triple the file size for no information.

// MarshalJSON implements json.Marshaler.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal([4]int64{e.TS, int64(e.Kind), e.A1, e.A2})
}

// UnmarshalJSON implements json.Unmarshaler.
func (e *Event) UnmarshalJSON(data []byte) error {
	var a [4]int64
	if err := json.Unmarshal(data, &a); err != nil {
		return fmt.Errorf("tracez: event must be [ts, kind, a1, a2]: %w", err)
	}
	if a[1] < 0 || a[1] >= int64(kindCount) {
		return fmt.Errorf("tracez: unknown event kind %d", a[1])
	}
	e.TS, e.Kind, e.A1, e.A2 = a[0], Kind(a[1]), a[2], a[3]
	return nil
}

// WriteFile serializes tr to path as JSON (the raw trace format the
// -trace flags produce and cmd/traceview consumes).
func WriteFile(path string, tr *Trace) error {
	if tr == nil {
		return fmt.Errorf("tracez: nil trace")
	}
	data, err := json.Marshal(tr)
	if err != nil {
		return fmt.Errorf("tracez: encode trace: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("tracez: write %s: %w", path, err)
	}
	return nil
}

// ReadFile parses a raw trace written by WriteFile.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tracez: read %s: %w", path, err)
	}
	var tr Trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("tracez: parse %s: %w", path, err)
	}
	if tr.Version != Version {
		return nil, fmt.Errorf("tracez: %s: unsupported trace version %d (want %d)", path, tr.Version, Version)
	}
	return &tr, nil
}
