package tracez

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestNilTracerFastPath(t *testing.T) {
	var tr *Tracer
	if r := tr.Ring(3); r != nil {
		t.Fatalf("nil tracer handed out a ring: %v", r)
	}
	tr.Label(0, "w0") // must not panic
	if snap := tr.Snapshot(); snap != nil {
		t.Fatalf("nil tracer snapshot = %v, want nil", snap)
	}
	var ring *Ring
	ring.Record(KindTaskStart, 0, 0) // must not panic
}

func TestDisabledRingZeroAllocs(t *testing.T) {
	var ring *Ring
	allocs := testing.AllocsPerRun(1000, func() {
		ring.Record(KindSpawn, 1, 2)
	})
	if allocs != 0 {
		t.Fatalf("nil-ring Record allocates %.1f/op, want 0", allocs)
	}
}

func TestEnabledRingZeroAllocs(t *testing.T) {
	ring := New(64).Ring(0)
	allocs := testing.AllocsPerRun(1000, func() {
		ring.Record(KindSpawn, 1, 2)
	})
	if allocs != 0 {
		t.Fatalf("enabled Record allocates %.1f/op, want 0 (the hot path must not allocate)", allocs)
	}
}

func TestRingWraparound(t *testing.T) {
	tr := New(8) // rounds to 8
	ring := tr.Ring(0)
	const total = 21
	for i := 0; i < total; i++ {
		ring.Record(KindSpawn, int64(i), 0)
	}
	snap := tr.Snapshot()
	if len(snap.Workers) != 1 {
		t.Fatalf("workers = %d, want 1", len(snap.Workers))
	}
	wt := snap.Workers[0]
	if len(wt.Events) != 8 {
		t.Fatalf("retained %d events, want capacity 8", len(wt.Events))
	}
	if wt.Dropped != total-8 {
		t.Fatalf("dropped = %d, want %d", wt.Dropped, total-8)
	}
	// Oldest-first, and exactly the newest 8 survive.
	for i, e := range wt.Events {
		if want := int64(total - 8 + i); e.A1 != want {
			t.Fatalf("event %d has A1=%d, want %d (overwrite-oldest order)", i, e.A1, want)
		}
	}
	for i := 1; i < len(wt.Events); i++ {
		if wt.Events[i].TS < wt.Events[i-1].TS {
			t.Fatalf("events out of timestamp order at %d", i)
		}
	}
}

func TestCapacityRoundsUp(t *testing.T) {
	tr := New(9)
	ring := tr.Ring(0)
	for i := 0; i < 16; i++ {
		ring.Record(KindSpawn, int64(i), 0)
	}
	snap := tr.Snapshot()
	if got := len(snap.Workers[0].Events); got != 16 {
		t.Fatalf("capacity 9 rounds to %d retained, want 16", got)
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	tr := New(32)
	ring := tr.Ring(0) // deliberately shared: the futures layer multi-writes one ring
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ring.Record(KindSpawn, int64(i), 0)
			}
		}()
	}
	for i := 0; i < 20; i++ {
		tr.Snapshot()
	}
	wg.Wait()
	snap := tr.Snapshot()
	wt := snap.Workers[0]
	if len(wt.Events)+int(wt.Dropped) != 4*500 {
		t.Fatalf("retained+dropped = %d, want %d", len(wt.Events)+int(wt.Dropped), 4*500)
	}
}

func TestRoundtrip(t *testing.T) {
	tr := New(64)
	r0, r1 := tr.Ring(0), tr.Ring(1)
	tr.Label(0, "w0")
	tr.Label(1, "helper0")
	r0.Record(KindTaskStart, 0, 0)
	r0.Record(KindChunkStart, 10, 20)
	r0.Record(KindChunkEnd, 10, 20)
	r0.Record(KindTaskEnd, 0, 0)
	r1.Record(KindSteal, 0, 3)
	snap := tr.Snapshot()
	snap.Meta["model"] = "cilk_for"

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta["model"] != "cilk_for" {
		t.Fatalf("meta lost: %v", got.Meta)
	}
	if len(got.Workers) != 2 {
		t.Fatalf("workers = %d, want 2", len(got.Workers))
	}
	if got.Workers[1].Label != "helper0" {
		t.Fatalf("label = %q, want helper0", got.Workers[1].Label)
	}
	if got.Workers[0].Events[1] != snap.Workers[0].Events[1] {
		t.Fatalf("event changed across roundtrip: %+v vs %+v",
			got.Workers[0].Events[1], snap.Workers[0].Events[1])
	}
}

func TestReadFileRejectsBadVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	tr := &Trace{Version: Version + 1}
	data, _ := json.Marshal(tr)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("future-version trace accepted")
	}
}

func TestExportChromeValidJSON(t *testing.T) {
	tr := New(64)
	r0 := tr.Ring(0)
	r0.Record(KindTaskStart, 0, 0)
	r0.Record(KindSpawn, 0, 0)
	r0.Record(KindTaskEnd, 0, 0)
	r0.Record(KindPark, 0, 0)
	r0.Record(KindUnpark, 0, 0)
	r1 := tr.Ring(1)
	r1.Record(KindSteal, 0, 2)
	r1.Record(KindTaskStart, 0, 0)
	// Deliberately left open: must be closed at the window edge.
	snap := tr.Snapshot()

	var buf bytes.Buffer
	if err := ExportChrome(&buf, snap); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var tasks, instants, metas int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			if e.Dur <= 0 {
				t.Fatalf("span %q has non-positive dur %v", e.Name, e.Dur)
			}
			if e.Name == "task" {
				tasks++
			}
		case "i":
			instants++
		case "M":
			metas++
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if tasks != 2 {
		t.Fatalf("task spans = %d, want 2 (one closed, one open-at-end)", tasks)
	}
	if instants < 2 {
		t.Fatalf("instants = %d, want spawn + steal", instants)
	}
	if metas == 0 {
		t.Fatal("no metadata events (thread names)")
	}
}

func TestExportChromeSynthesizesLostStart(t *testing.T) {
	// A ring whose TaskStart was overwritten: the lone TaskEnd must
	// still produce a valid span from the window edge.
	wt := WorkerTrace{ID: 0, Label: "w0", Dropped: 1, Events: []Event{
		{TS: 50, Kind: KindSpawn},
		{TS: 100, Kind: KindTaskEnd},
	}}
	evs := workerChromeEvents(wt)
	var spans int
	for _, e := range evs {
		if e.Ph == "X" {
			spans++
			if e.TS != usec(50) {
				t.Fatalf("synthesized span starts at %v, want window edge %v", e.TS, usec(50))
			}
		}
	}
	if spans != 1 {
		t.Fatalf("spans = %d, want 1", spans)
	}
}

func TestSummarize(t *testing.T) {
	// Hand-built two-worker trace: w0 runs two tasks back to back,
	// w1 steals after hunting and runs one chunk.
	tr := &Trace{Version: Version, Workers: []WorkerTrace{
		{ID: 0, Label: "w0", Events: []Event{
			{TS: 0, Kind: KindTaskStart},
			{TS: 50, Kind: KindSpawn},
			{TS: 100, Kind: KindTaskEnd},
			{TS: 100, Kind: KindTaskStart},
			{TS: 200, Kind: KindTaskEnd},
		}},
		{ID: 1, Label: "w1", Events: []Event{
			{TS: 0, Kind: KindStealFail},
			{TS: 40, Kind: KindSteal, A1: 0, A2: 1},
			{TS: 40, Kind: KindTaskStart},
			{TS: 60, Kind: KindChunkStart, A1: 0, A2: 16},
			{TS: 90, Kind: KindChunkEnd, A1: 0, A2: 16},
			{TS: 100, Kind: KindTaskEnd},
		}},
	}}
	s := Summarize(tr)
	if s.WallNs != 200 {
		t.Fatalf("wall = %d, want 200", s.WallNs)
	}
	w0, w1 := s.Workers[0], s.Workers[1]
	if w0.BusyNs != 200 || w0.Tasks != 2 || w0.Spawns != 1 {
		t.Fatalf("w0 summary wrong: %+v", w0)
	}
	// w1's chunk nests inside its task: busy must not double-count.
	if w1.BusyNs != 60 {
		t.Fatalf("w1 busy = %d, want 60 (nested spans must union)", w1.BusyNs)
	}
	if w1.Steals != 1 || w1.FailedSteals != 1 || w1.Chunks != 1 {
		t.Fatalf("w1 summary wrong: %+v", w1)
	}
	if s.StealLatency.N() != 1 {
		t.Fatalf("steal latency samples = %d, want 1", s.StealLatency.N())
	}
	// Hungry since the window edge (TS 0), stole at 40.
	if got := s.StealLatency.Sum(); got != 40 {
		t.Fatalf("steal latency = %d, want 40", got)
	}
	if s.ChunkSizes.N() != 1 || s.ChunkSizes.Sum() != 16 {
		t.Fatalf("chunk sizes wrong: n=%d sum=%d", s.ChunkSizes.N(), s.ChunkSizes.Sum())
	}
	// max busy 200, mean (200+60)/2 = 130.
	if got, want := s.Imbalance, 200.0/130.0; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("imbalance = %v, want %v", got, want)
	}
	var buf bytes.Buffer
	s.Render(&buf)
	out := buf.String()
	for _, want := range []string{"load imbalance", "steal latency (1 successful steals)", "w0", "%"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("summary output missing %q:\n%s", want, out)
		}
	}
}
