package tracez

import (
	"fmt"
	"io"
	"strings"
	"time"

	"threading/internal/stats"
)

// This file derives the scheduler-behavior metrics a timeline alone
// makes you eyeball: per-worker utilization, steal latency (how long
// a worker hunted before a successful steal), the loop-chunk size
// distribution, and the load-imbalance ratio. These are the numbers
// behind the paper's narrative — eager cilk_for shows up as a long
// steal-latency tail and many small chunks; work-sharing as near-even
// utilization with no steals at all.

// WorkerSummary aggregates one worker's event stream.
type WorkerSummary struct {
	ID      int
	Label   string
	Dropped int64
	Events  int

	// BusyNs is the union of this worker's task/chunk/thread spans.
	BusyNs int64
	// ParkedNs is the union of park..unpark intervals.
	ParkedNs int64
	// BarrierNs is the union of barrier-wait intervals.
	BarrierNs int64

	Tasks        int64
	Chunks       int64
	Spawns       int64
	Steals       int64
	StolenTasks  int64
	FailedSteals int64
	LazySplits   int64
	HelpClaims   int64
	Parks        int64
	BarrierWaits int64
}

// Summary is the derived-metrics view of a Trace.
type Summary struct {
	Workers []WorkerSummary
	// WallNs spans the earliest to the latest event in the capture.
	WallNs int64
	// TotalBusyNs sums the workers' busy time.
	TotalBusyNs int64
	// Imbalance is max(worker busy)/mean(worker busy); 1.0 is a
	// perfectly balanced run, large values mean idle workers.
	Imbalance float64
	// StealLatency buckets, per successful steal, the nanoseconds
	// between the stealing worker going hungry (its previous busy span
	// ending, or the capture start) and the steal landing.
	StealLatency stats.LogHist
	// ChunkSizes buckets the iteration count of every loop-chunk and
	// chunk-thread span.
	ChunkSizes stats.LogHist
}

// Summarize derives a Summary from tr.
func Summarize(tr *Trace) *Summary {
	s := &Summary{}
	var minTS, maxTS int64
	first := true
	for _, wt := range tr.Workers {
		ws := summarizeWorker(wt, &s.StealLatency, &s.ChunkSizes)
		s.Workers = append(s.Workers, ws)
		s.TotalBusyNs += ws.BusyNs
		if len(wt.Events) > 0 {
			lo := wt.Events[0].TS
			hi := wt.Events[len(wt.Events)-1].TS
			if first || lo < minTS {
				minTS = lo
			}
			if first || hi > maxTS {
				maxTS = hi
			}
			first = false
		}
	}
	if !first {
		s.WallNs = maxTS - minTS
	}
	var maxBusy int64
	for _, ws := range s.Workers {
		if ws.BusyNs > maxBusy {
			maxBusy = ws.BusyNs
		}
	}
	if n := len(s.Workers); n > 0 && s.TotalBusyNs > 0 {
		mean := float64(s.TotalBusyNs) / float64(n)
		s.Imbalance = float64(maxBusy) / mean
	}
	return s
}

// busyDelta classifies an event as opening (+1) or closing (-1) a
// busy span, or neither (0).
func busyDelta(k Kind) int {
	switch k {
	case KindTaskStart, KindChunkStart, KindThreadStart:
		return 1
	case KindTaskEnd, KindChunkEnd, KindThreadEnd:
		return -1
	}
	return 0
}

func summarizeWorker(wt WorkerTrace, stealLat, chunkSizes *stats.LogHist) WorkerSummary {
	ws := WorkerSummary{ID: wt.ID, Label: wt.Label, Dropped: wt.Dropped, Events: len(wt.Events)}
	if len(wt.Events) == 0 {
		return ws
	}
	windowStart := wt.Events[0].TS
	lastTS := wt.Events[len(wt.Events)-1].TS

	// Busy time is the union of (possibly nested) busy spans, tracked
	// with a depth counter. idleStart marks when the worker last went
	// hungry, for steal latency; it starts at the window edge because
	// a worker is hungry until its first span.
	depth := 0
	var busyStart int64
	idleStart := windowStart
	var parkStart, barrierStart int64 = -1, -1

	for _, e := range wt.Events {
		switch d := busyDelta(e.Kind); {
		case d > 0:
			if depth == 0 {
				busyStart = e.TS
				idleStart = -1
			}
			depth++
		case d < 0:
			if depth == 0 {
				// Start lost to wraparound: count from the window edge.
				ws.BusyNs += e.TS - windowStart
				idleStart = e.TS
				break
			}
			depth--
			if depth == 0 {
				ws.BusyNs += e.TS - busyStart
				idleStart = e.TS
			}
		}
		switch e.Kind {
		case KindTaskEnd:
			ws.Tasks++
		case KindChunkStart:
			ws.Chunks++
			if e.A2 > e.A1 {
				chunkSizes.Add(e.A2 - e.A1)
			}
		case KindThreadStart:
			if e.A2 > e.A1 {
				ws.Chunks++
				chunkSizes.Add(e.A2 - e.A1)
			}
		case KindSpawn:
			ws.Spawns++
		case KindSteal:
			ws.Steals++
			ws.StolenTasks += e.A2
			if idleStart >= 0 {
				lat := e.TS - idleStart
				if lat < 1 {
					lat = 1
				}
				stealLat.Add(lat)
			}
		case KindStealFail:
			ws.FailedSteals++
		case KindLazySplit:
			ws.LazySplits++
		case KindHelpClaim:
			ws.HelpClaims++
		case KindPark:
			ws.Parks++
			parkStart = e.TS
		case KindUnpark:
			if parkStart >= 0 {
				ws.ParkedNs += e.TS - parkStart
				parkStart = -1
			}
		case KindBarrierStart:
			ws.BarrierWaits++
			barrierStart = e.TS
		case KindBarrierEnd:
			if barrierStart >= 0 {
				ws.BarrierNs += e.TS - barrierStart
				barrierStart = -1
			}
		}
	}
	if depth > 0 {
		ws.BusyNs += lastTS - busyStart
	}
	return ws
}

// Render writes the summary as text: per-worker utilization bars,
// then the derived histograms and the imbalance ratio.
func (s *Summary) Render(w io.Writer) {
	var events int
	var dropped int64
	for _, ws := range s.Workers {
		events += ws.Events
		dropped += ws.Dropped
	}
	fmt.Fprintf(w, "trace: %d workers, wall %v, %d events retained (%d dropped by ring wraparound)\n\n",
		len(s.Workers), time.Duration(s.WallNs).Round(time.Microsecond), events, dropped)

	const barWidth = 30
	fmt.Fprintf(w, "%-9s %-*s %6s %10s %8s %8s %8s %8s %7s %7s\n",
		"worker", barWidth+2, "utilization", "util%", "busy", "tasks", "chunks", "steals", "fails", "parks", "barrier")
	for _, ws := range s.Workers {
		util := 0.0
		if s.WallNs > 0 {
			util = float64(ws.BusyNs) / float64(s.WallNs)
		}
		if util > 1 {
			util = 1
		}
		fill := int(util*barWidth + 0.5)
		bar := strings.Repeat("#", fill) + strings.Repeat(".", barWidth-fill)
		fmt.Fprintf(w, "%-9s [%s] %5.1f%% %10v %8d %8d %8d %8d %7d %7v\n",
			ws.Label, bar, 100*util,
			time.Duration(ws.BusyNs).Round(time.Microsecond),
			ws.Tasks, ws.Chunks, ws.Steals, ws.FailedSteals, ws.Parks,
			time.Duration(ws.BarrierNs).Round(time.Microsecond))
	}
	fmt.Fprintf(w, "\nload imbalance (max/mean busy): %.2f\n", s.Imbalance)

	fmt.Fprintf(w, "\nsteal latency (%d successful steals):\n", s.StealLatency.N())
	s.StealLatency.Render(w, 40, func(v int64) string {
		return time.Duration(v).Round(time.Nanosecond).String()
	})
	fmt.Fprintf(w, "\nloop chunk sizes (%d chunks):\n", s.ChunkSizes.N())
	s.ChunkSizes.Render(w, 40, nil)
}
