package tracez

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file converts a Trace to the Chrome trace-event JSON format
// (the "JSON Array with metadata" flavor: {"traceEvents": [...]}),
// which chrome://tracing and ui.perfetto.dev load directly. Each
// worker becomes one thread track: spans (tasks, loop chunks, barrier
// and park waits) render as complete "X" events, instants (spawns,
// steals, lazy splits, help-first claims) as "i" events, so the
// paper's mechanisms — e.g. eager cilk_for's steal cascade — are
// visible as timeline shapes.

// chromeEvent is one trace-event object. TS and Dur are microseconds
// (fractional, so nanosecond resolution survives).
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

const chromePID = 1

// usec converts a trace timestamp (ns) to Chrome microseconds.
func usec(ns int64) float64 { return float64(ns) / 1e3 }

// spanStart returns the matching start kind when k is a span-end
// kind, and KindNone otherwise.
func spanStart(k Kind) Kind {
	switch k {
	case KindTaskEnd:
		return KindTaskStart
	case KindChunkEnd:
		return KindChunkStart
	case KindBarrierEnd:
		return KindBarrierStart
	case KindUnpark:
		return KindPark
	case KindThreadEnd:
		return KindThreadStart
	default:
		return KindNone
	}
}

// isSpanStart reports whether k opens a span.
func isSpanStart(k Kind) bool {
	switch k {
	case KindTaskStart, KindChunkStart, KindBarrierStart, KindPark, KindThreadStart:
		return true
	}
	return false
}

// spanArgs returns the args object for a completed span.
func spanArgs(e Event) map[string]any {
	switch e.Kind {
	case KindChunkStart, KindThreadStart:
		if e.A2 > e.A1 {
			return map[string]any{"lo": e.A1, "hi": e.A2, "iters": e.A2 - e.A1}
		}
	case KindTaskStart:
		if e.A1 != 0 {
			return map[string]any{"req": e.A1}
		}
	}
	return nil
}

// instantArgs returns the args object for an instant event.
func instantArgs(e Event) map[string]any {
	switch e.Kind {
	case KindSteal:
		return map[string]any{"victim": e.A1, "tasks": e.A2}
	case KindLazySplit:
		return map[string]any{"lo": e.A1, "hi": e.A2}
	case KindHelpClaim:
		return map[string]any{"slot": e.A1}
	case KindReqTag:
		return map[string]any{"req": e.A1}
	case KindStall:
		return map[string]any{"pending": e.A1, "parked": e.A2}
	}
	return nil
}

// ExportChrome writes tr as Chrome trace-event JSON. Spans whose
// start was overwritten by ring wraparound are drawn from the
// worker's first retained timestamp; spans still open at capture end
// are closed at the worker's last timestamp.
func ExportChrome(w io.Writer, tr *Trace) error {
	if tr == nil {
		return fmt.Errorf("tracez: nil trace")
	}
	events := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: chromePID,
		Args: map[string]any{"name": "threading scheduler"},
	}}
	for _, wt := range tr.Workers {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: wt.ID,
			Args: map[string]any{"name": wt.Label},
		}, chromeEvent{
			Name: "thread_sort_index", Ph: "M", PID: chromePID, TID: wt.ID,
			Args: map[string]any{"sort_index": wt.ID},
		})
		events = append(events, workerChromeEvents(wt)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ns",
		"otherData":       tr.Meta,
	})
}

// workerChromeEvents converts one worker's event stream, pairing span
// starts with their ends.
func workerChromeEvents(wt WorkerTrace) []chromeEvent {
	if len(wt.Events) == 0 {
		return nil
	}
	windowStart := wt.Events[0].TS
	windowEnd := wt.Events[len(wt.Events)-1].TS
	out := make([]chromeEvent, 0, len(wt.Events)/2+4)
	var stack []Event

	span := func(start Event, endTS int64) {
		dur := usec(endTS - start.TS)
		if dur <= 0 {
			dur = 0.001 // keep zero-length spans visible and valid
		}
		out = append(out, chromeEvent{
			Name: start.Kind.String(), Ph: "X", PID: chromePID, TID: wt.ID,
			TS: usec(start.TS), Dur: dur, Args: spanArgs(start),
		})
	}

	for _, e := range wt.Events {
		switch {
		case isSpanStart(e.Kind):
			stack = append(stack, e)
		case spanStart(e.Kind) != KindNone:
			want := spanStart(e.Kind)
			matched := false
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].Kind == want {
					span(stack[i], e.TS)
					stack = append(stack[:i], stack[i+1:]...)
					matched = true
					break
				}
			}
			if !matched {
				// Start lost to wraparound: draw from the window edge.
				span(Event{TS: windowStart, Kind: want, A1: e.A1, A2: e.A2}, e.TS)
			}
		default:
			out = append(out, chromeEvent{
				Name: e.Kind.String(), Ph: "i", PID: chromePID, TID: wt.ID,
				TS: usec(e.TS), Scope: "t", Args: instantArgs(e),
			})
		}
	}
	// Spans still open at capture end.
	for _, s := range stack {
		span(s, windowEnd)
	}
	return out
}
