package tracez

import (
	"strings"
	"testing"
)

// trace builds a single-version Trace from worker event streams.
func trace(workers ...WorkerTrace) *Trace {
	return &Trace{Version: Version, Workers: workers}
}

func costByID(t *testing.T, costs []RequestCost, id int64) RequestCost {
	t.Helper()
	for _, rc := range costs {
		if rc.ID == id {
			return rc
		}
	}
	t.Fatalf("request %d not in %+v", id, costs)
	return RequestCost{}
}

func TestSummarizeRequestsTaskAttribution(t *testing.T) {
	costs := SummarizeRequests(trace(WorkerTrace{ID: 0, Events: []Event{
		// Request 7: one task, a steal landing mid-span.
		{TS: 100, Kind: KindTaskStart, A1: 7},
		{TS: 150, Kind: KindSteal, A1: 1, A2: 1},
		{TS: 300, Kind: KindTaskEnd},
		// Idle costs (a failed hunt, a park) flush into request 9.
		{TS: 350, Kind: KindStealFail},
		{TS: 400, Kind: KindPark},
		{TS: 500, Kind: KindUnpark},
		{TS: 600, Kind: KindTaskStart, A1: 9},
		{TS: 700, Kind: KindTaskEnd},
	}}))
	if len(costs) != 2 {
		t.Fatalf("got %d requests, want 2: %+v", len(costs), costs)
	}
	r7 := costByID(t, costs, 7)
	if r7.BusyNs != 200 || r7.Tasks != 1 || r7.Steals != 1 || r7.Workers != 1 {
		t.Errorf("req 7 = %+v, want busy 200, 1 task, 1 steal, 1 worker", r7)
	}
	r9 := costByID(t, costs, 9)
	if r9.BusyNs != 100 || r9.FailedSteals != 1 || r9.ParkNs != 100 {
		t.Errorf("req 9 = %+v, want busy 100, 1 failed steal, park 100", r9)
	}
}

func TestSummarizeRequestsNestedSpansInherit(t *testing.T) {
	costs := SummarizeRequests(trace(WorkerTrace{ID: 2, Events: []Event{
		{TS: 1000, Kind: KindTaskStart, A1: 11},
		{TS: 1100, Kind: KindChunkStart, A1: 0, A2: 64},
		{TS: 1200, Kind: KindChunkEnd},
		{TS: 1300, Kind: KindTaskEnd},
	}}))
	rc := costByID(t, costs, 11)
	// Self time: task 300-100(child) = 200, chunk 100; total 300 — no
	// double counting of the nested interval.
	if rc.BusyNs != 300 {
		t.Errorf("busy = %d, want 300 (no nested double count)", rc.BusyNs)
	}
	if rc.Tasks != 1 || rc.Chunks != 1 {
		t.Errorf("tasks=%d chunks=%d, want 1 and 1", rc.Tasks, rc.Chunks)
	}
}

func TestSummarizeRequestsAmbientTag(t *testing.T) {
	// Work-sharing shape: no task spans, chunk spans carry iteration
	// ranges, and the ambient req-tag owns everything in between.
	costs := SummarizeRequests(trace(WorkerTrace{ID: 1, Events: []Event{
		{TS: 5, Kind: KindReqTag, A1: 5},
		{TS: 10, Kind: KindChunkStart, A1: 0, A2: 128},
		{TS: 60, Kind: KindChunkEnd},
		{TS: 65, Kind: KindReqTag, A1: 0},
		// After the clear: untagged work, attributed to nobody.
		{TS: 70, Kind: KindChunkStart, A1: 128, A2: 256},
		{TS: 90, Kind: KindChunkEnd},
	}}))
	if len(costs) != 1 {
		t.Fatalf("got %d requests, want 1 (untagged work skipped): %+v", len(costs), costs)
	}
	rc := costByID(t, costs, 5)
	if rc.BusyNs != 50 || rc.Chunks != 1 {
		t.Errorf("req 5 = %+v, want busy 50, 1 chunk", rc)
	}
}

func TestSummarizeRequestsMultiWorker(t *testing.T) {
	costs := SummarizeRequests(trace(
		WorkerTrace{ID: 0, Events: []Event{
			{TS: 0, Kind: KindTaskStart, A1: 3},
			{TS: 100, Kind: KindTaskEnd},
		}},
		WorkerTrace{ID: 1, Events: []Event{
			{TS: 20, Kind: KindTaskStart, A1: 3},
			{TS: 70, Kind: KindTaskEnd},
		}},
	))
	rc := costByID(t, costs, 3)
	if rc.Workers != 2 || rc.BusyNs != 150 || rc.Tasks != 2 {
		t.Errorf("req 3 = %+v, want 2 workers, busy 150, 2 tasks", rc)
	}
}

func TestSummarizeRequestsWraparoundTolerant(t *testing.T) {
	// An end without a start (start overwritten by the ring) must not
	// attribute garbage or panic; a start without an end attributes up
	// to the window edge.
	costs := SummarizeRequests(trace(WorkerTrace{ID: 0, Dropped: 10, Events: []Event{
		{TS: 50, Kind: KindTaskEnd}, // orphan end
		{TS: 100, Kind: KindTaskStart, A1: 4},
		{TS: 300, Kind: KindSteal}, // last event: window edge
	}}))
	rc := costByID(t, costs, 4)
	if rc.BusyNs != 200 {
		t.Errorf("open span busy = %d, want 200 (to window edge)", rc.BusyNs)
	}
}

func TestSummarizeRequestsEmptyForUntaggedTraces(t *testing.T) {
	costs := SummarizeRequests(trace(WorkerTrace{ID: 0, Events: []Event{
		{TS: 0, Kind: KindTaskStart}, // A1 == 0: the pre-telemetry encoding
		{TS: 10, Kind: KindTaskEnd},
	}}))
	if len(costs) != 0 {
		t.Fatalf("untagged trace produced request costs: %+v", costs)
	}
	if got := SummarizeRequests(nil); got != nil {
		t.Fatalf("nil trace: %+v", got)
	}
}

func TestRenderRequestsTable(t *testing.T) {
	var b strings.Builder
	RenderRequests(&b, []RequestCost{{ID: 12, Tasks: 3, BusyNs: 1500, Workers: 2}})
	out := b.String()
	if !strings.Contains(out, "per-request scheduler cost") || !strings.Contains(out, "12") {
		t.Errorf("table missing header or row:\n%s", out)
	}
	b.Reset()
	RenderRequests(&b, nil)
	if b.Len() != 0 {
		t.Errorf("empty cost set rendered output: %q", b.String())
	}
}

// Satellite coverage: View prefix/base composition — the exact shapes
// models/sharded.go builds (s0/, s1/ lanes, including a view of a
// view) — combined with request-id span attribution across lanes.
func TestViewCompositionWithRequestIDs(t *testing.T) {
	tr := New(64)

	// Two shard lanes as newShardResolver lays them out: shard 0 at
	// offset 0, shard 1 offset past shard 0's id range.
	s0 := tr.View(0, "s0/")
	s1 := tr.View(8, "s1/")
	s0.Label(0, "ws-w0")
	s1.Label(0, "ws-w0")
	if nested := s1.View(2, "h/"); nested != nil {
		nested.Label(0, "x") // base 8+2, prefix "s1/h/"
		nested.Ring(0).Record(KindSpawn, 0, 0)
	}

	s0.Ring(0).Record(KindTaskStart, 77, 0)
	s0.Ring(0).Record(KindTaskEnd, 0, 0)
	s1.Ring(0).Record(KindTaskStart, 77, 0)
	s1.Ring(0).Record(KindTaskEnd, 0, 0)

	snap := tr.Snapshot()
	labels := map[int]string{}
	for _, wt := range snap.Workers {
		labels[wt.ID] = wt.Label
	}
	if labels[0] != "s0/ws-w0" {
		t.Errorf("shard 0 label = %q, want s0/ws-w0", labels[0])
	}
	if labels[8] != "s1/ws-w0" {
		t.Errorf("shard 1 label = %q, want s1/ws-w0 (base offset composed)", labels[8])
	}
	if labels[10] != "s1/h/x" {
		t.Errorf("nested view label = %q, want s1/h/x (view-of-view composes additively)", labels[10])
	}

	// One request executed on both lanes: attribution sees through the
	// id offsets and counts two distinct workers.
	rc := costByID(t, SummarizeRequests(snap), 77)
	if rc.Workers != 2 || rc.Tasks != 2 {
		t.Errorf("cross-shard req = %+v, want 2 workers, 2 tasks", rc)
	}
}
