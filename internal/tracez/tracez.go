// Package tracez is the scheduler event tracer shared by the
// threading runtimes in this repository. Where internal/sched.Stats
// can only sum what happened, tracez records *when* it happened: each
// worker owns a fixed-capacity ring buffer of timestamped events
// (task spans, spawns, steals with their victim, parks, loop-chunk
// spans with iteration ranges), overwriting the oldest event when
// full, so tracing a long run costs bounded memory and never
// allocates on the hot path.
//
// The reproduced paper explains its headline results through
// scheduler *behavior over time* — eager cilk_for's chunk
// distribution serialized through the stealing protocol, lock-based
// vs lock-free task deques — and credits the original runtimes for
// shipping the tooling (Cilkview, Cilkscreen) to see it. This package
// is the equivalent substrate here: a captured Trace exports to
// Chrome/Perfetto trace-event JSON (cmd/traceview) so those
// mechanisms appear as timeline shapes rather than aggregate totals.
//
// Tracing is opt-in and nil-safe end to end: a nil *Tracer hands out
// nil *Rings, and every Ring method no-ops on a nil receiver, so the
// instrumented hot paths pay one nil check when tracing is off.
package tracez

import (
	"fmt"
	"sync"
	"time"
)

// Kind identifies one scheduler event type. Span kinds come in
// Start/End pairs recorded on the same worker; the rest are instants.
type Kind uint8

const (
	// KindNone is the zero Kind; it marks never-written ring slots.
	KindNone Kind = iota

	// KindTaskStart and KindTaskEnd bracket one task execution
	// (worksteal task, forkjoin explicit task).
	KindTaskStart
	KindTaskEnd
	// KindSpawn marks one task creation on the spawning worker.
	KindSpawn
	// KindSteal marks a successful steal: A1 is the victim's worker
	// id, A2 the number of tasks migrated (>= 2 for a batch steal).
	KindSteal
	// KindStealFail marks one full steal sweep that found nothing.
	KindStealFail
	// KindLazySplit marks a demand-driven loop split: the executing
	// worker spawned off [A1, A2) of its remaining range.
	KindLazySplit
	// KindPark and KindUnpark bracket one blocked-idle interval.
	KindPark
	KindUnpark
	// KindHelpClaim marks a submitting goroutine claiming help-first
	// worker slot A1.
	KindHelpClaim
	// KindBarrierStart and KindBarrierEnd bracket one barrier wait.
	KindBarrierStart
	KindBarrierEnd
	// KindChunkStart and KindChunkEnd bracket the execution of one
	// loop chunk over iterations [A1, A2).
	KindChunkStart
	KindChunkEnd
	// KindThreadStart and KindThreadEnd bracket one futures thread or
	// async task; for a loop chunk thread, [A1, A2) is its iteration
	// range.
	KindThreadStart
	KindThreadEnd
	// KindReqTag sets the worker's ambient request id to A1 (0 clears
	// it): spans recorded after it attribute to that request until the
	// next tag. The work-sharing runtimes emit it around regions whose
	// chunk spans carry no per-span request argument.
	KindReqTag
	// KindStall is an instant emitted by the metrics stall watchdog:
	// A1 is the pending-work count, A2 the parked-worker count at
	// detection.
	KindStall

	kindCount
)

// String returns the event kind's timeline name.
func (k Kind) String() string {
	switch k {
	case KindTaskStart, KindTaskEnd:
		return "task"
	case KindSpawn:
		return "spawn"
	case KindSteal:
		return "steal"
	case KindStealFail:
		return "steal-fail"
	case KindLazySplit:
		return "lazy-split"
	case KindPark, KindUnpark:
		return "park"
	case KindHelpClaim:
		return "help-claim"
	case KindBarrierStart, KindBarrierEnd:
		return "barrier"
	case KindChunkStart, KindChunkEnd:
		return "chunk"
	case KindThreadStart, KindThreadEnd:
		return "thread"
	case KindReqTag:
		return "req-tag"
	case KindStall:
		return "stall"
	default:
		return "unknown"
	}
}

// Event is one recorded scheduler event. TS is nanoseconds since the
// owning Tracer's epoch (a shared monotonic origin, so events from
// different workers order correctly). A1 and A2 carry kind-specific
// arguments (victim id, batch size, iteration range).
type Event struct {
	TS   int64
	Kind Kind
	A1   int64
	A2   int64
}

// Ring is one worker's private event buffer. Record appends,
// overwriting the oldest event once the fixed capacity is reached.
//
// Every method is nil-safe: a nil *Ring records nothing, which is the
// disabled-tracing fast path — instrumentation sites hold a *Ring and
// pay one nil check when tracing is off. An enabled Ring serializes
// Record under a per-ring mutex: uncontended in the intended
// one-writer-per-worker use, and safe for the shared multi-writer
// rings the futures layer uses, as well as against concurrent
// snapshots.
type Ring struct {
	epoch time.Time

	mu  sync.Mutex
	buf []Event
	pos int64 // total events ever recorded; next slot is pos % len(buf)
}

// Record appends one event with the current timestamp.
func (r *Ring) Record(k Kind, a1, a2 int64) {
	if r == nil {
		return
	}
	ts := time.Since(r.epoch).Nanoseconds()
	r.mu.Lock()
	r.buf[r.pos%int64(len(r.buf))] = Event{TS: ts, Kind: k, A1: a1, A2: a2}
	r.pos++
	r.mu.Unlock()
}

// snapshot returns the retained events oldest-first and the number of
// overwritten (dropped) events.
func (r *Ring) snapshot() (events []Event, dropped int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.pos
	capacity := int64(len(r.buf))
	if n > capacity {
		dropped = n - capacity
		n = capacity
	}
	events = make([]Event, 0, n)
	start := r.pos - n
	for i := int64(0); i < n; i++ {
		events = append(events, r.buf[(start+i)%capacity])
	}
	return events, dropped
}

// DefaultCapacity is the per-worker ring capacity used when New is
// given a non-positive capacity: 16Ki events (512 KiB per worker).
const DefaultCapacity = 1 << 14

// Tracer owns the per-worker rings and the shared time epoch. Create
// one with New, hand rings to workers with Ring, and materialize the
// captured events with Snapshot. A nil *Tracer is the disabled
// tracer: Ring returns nil and Snapshot returns nil.
//
// A Tracer is a window onto shared ring storage: View derives a tracer
// that maps worker ids through a base offset and prefixes labels, so a
// resolver can hand each shard's runtime its own id range while a
// single Snapshot still sees every shard's events on one timeline.
type Tracer struct {
	state  *traceState
	base   int
	prefix string
}

// traceState is the storage every view of a Tracer shares.
type traceState struct {
	epoch    time.Time
	capacity int

	mu     sync.Mutex
	rings  map[int]*Ring
	labels map[int]string
}

// New returns a tracer whose rings hold capacity events each
// (DefaultCapacity when capacity <= 0, rounded up to a power of two).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	p := 1
	for p < capacity {
		p <<= 1
	}
	return &Tracer{state: &traceState{
		epoch:    time.Now(),
		capacity: p,
		rings:    make(map[int]*Ring),
		labels:   make(map[int]string),
	}}
}

// View returns a tracer sharing this tracer's storage whose worker id
// i resolves to base+i and whose labels gain the given prefix. Views
// compose (a view of a view offsets further) and are nil-safe: a view
// of the disabled tracer is still disabled.
func (t *Tracer) View(base int, prefix string) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{state: t.state, base: t.base + base, prefix: t.prefix + prefix}
}

// Ring returns worker i's ring, creating it on first use. Returns nil
// on a nil tracer, so runtimes can attach rings unconditionally. This
// is construction-time plumbing, not a hot path.
func (t *Tracer) Ring(i int) *Ring {
	if t == nil {
		return nil
	}
	s := t.state
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rings[t.base+i]
	if !ok {
		r = &Ring{epoch: s.epoch, buf: make([]Event, s.capacity)}
		s.rings[t.base+i] = r
	}
	return r
}

// Label names worker i's timeline track (e.g. "w3", "helper0"),
// prefixed by the view's label prefix. Safe on a nil tracer.
func (t *Tracer) Label(i int, label string) {
	if t == nil {
		return
	}
	s := t.state
	s.mu.Lock()
	s.labels[t.base+i] = t.prefix + label
	s.mu.Unlock()
}

// Dropped returns the total number of ring-wraparound-overwritten
// events across every worker ring, without materializing a snapshot —
// the cheap overflow check the harness and the /metrics exposition
// poll. Safe on a nil tracer (returns 0).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	s := t.state
	s.mu.Lock()
	rings := make([]*Ring, 0, len(s.rings))
	for _, r := range s.rings {
		rings = append(rings, r)
	}
	s.mu.Unlock()

	var total int64
	for _, r := range rings {
		r.mu.Lock()
		if over := r.pos - int64(len(r.buf)); over > 0 {
			total += over
		}
		r.mu.Unlock()
	}
	return total
}

// Trace is a materialized capture: every worker's retained events in
// timestamp order, ready for serialization and export. It is the
// on-disk format the -trace flags write and cmd/traceview reads.
type Trace struct {
	// Version identifies the serialization schema.
	Version int `json:"version"`
	// Meta carries free-form capture context (command, model, kernel).
	Meta map[string]string `json:"meta,omitempty"`
	// Workers holds one entry per worker that recorded any event,
	// ordered by id.
	Workers []WorkerTrace `json:"workers"`
}

// WorkerTrace is one worker's share of a Trace.
type WorkerTrace struct {
	// ID is the worker's ring index.
	ID int `json:"id"`
	// Label is the worker's track name, when set.
	Label string `json:"label,omitempty"`
	// Dropped counts events overwritten by ring wraparound.
	Dropped int64 `json:"dropped,omitempty"`
	// Events are the retained events, oldest first.
	Events []Event `json:"events"`
}

// Version is the current Trace schema version.
const Version = 1

// Snapshot materializes the current capture. Workers with no events
// are omitted. Safe on a nil tracer (returns nil) and safe to call
// while workers are still recording — each ring is copied under its
// own mutex — though a quiescent runtime gives a cleaner timeline.
func (t *Tracer) Snapshot() *Trace {
	if t == nil {
		return nil
	}
	s := t.state
	s.mu.Lock()
	ids := make([]int, 0, len(s.rings))
	for id := range s.rings {
		ids = append(ids, id)
	}
	labels := make(map[int]string, len(s.labels))
	for id, l := range s.labels {
		labels[id] = l
	}
	rings := make(map[int]*Ring, len(s.rings))
	for id, r := range s.rings {
		rings[id] = r
	}
	s.mu.Unlock()

	sortInts(ids)
	tr := &Trace{Version: Version, Meta: map[string]string{}}
	for _, id := range ids {
		events, dropped := rings[id].snapshot()
		if len(events) == 0 && dropped == 0 {
			continue
		}
		label := labels[id]
		if label == "" {
			label = fmt.Sprintf("w%d", id)
		}
		tr.Workers = append(tr.Workers, WorkerTrace{
			ID: id, Label: label, Dropped: dropped, Events: events,
		})
	}
	return tr
}

// sortInts is a tiny insertion sort; the input is one entry per
// worker, so n is small.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
