// Package features encodes the qualitative half of the reproduced
// paper: Tables I, II and III, which compare eight threading APIs
// (OpenMP, Cilk Plus, TBB, OpenACC, CUDA, OpenCL, C++11, PThreads)
// across parallelism patterns, memory-hierarchy abstraction,
// synchronization, mutual exclusion, language binding, error handling
// and tool support. The tables are data, not prose: they can be
// queried programmatically and rendered as text (cmd/feattable).
package features

import (
	"fmt"
	"sort"
	"strings"
)

// API identifies one of the compared programming models.
type API string

// The eight APIs compared in the paper, in its alphabetical row order.
const (
	CilkPlus API = "Cilk Plus"
	CUDA     API = "CUDA"
	CPP11    API = "C++11"
	OpenACC  API = "OpenACC"
	OpenCL   API = "OpenCL"
	OpenMP   API = "OpenMP"
	PThreads API = "PThread"
	TBB      API = "TBB"
)

// APIs returns the compared APIs in table row order.
func APIs() []API {
	return []API{CilkPlus, CUDA, CPP11, OpenACC, OpenCL, OpenMP, PThreads, TBB}
}

// Feature identifies one comparison column across the three tables.
type Feature string

// Table I — parallelism patterns.
const (
	DataParallelism Feature = "Data parallelism"
	AsyncTasks      Feature = "Async task parallelism"
	EventDriven     Feature = "Data/event-driven"
	Offloading      Feature = "Offloading"
)

// Table II — memory abstraction and synchronization.
const (
	MemoryHierarchy Feature = "Abstraction of memory hierarchy"
	DataBinding     Feature = "Data/computation binding"
	ExplicitDataMap Feature = "Explicit data map/movement"
	Barrier         Feature = "Barrier"
	Reduction       Feature = "Reduction"
	Join            Feature = "Join"
)

// Table III — mutual exclusion and others.
const (
	MutualExclusion Feature = "Mutual exclusion"
	LanguageBinding Feature = "Language or library"
	ErrorHandling   Feature = "Error handling"
	ToolSupport     Feature = "Tool support"
)

// Cell is one table entry: whether the API supports the feature and
// the paper's description of how.
type Cell struct {
	Supported bool
	Detail    string
}

// String renders the cell the way the paper prints it ("x" for
// unsupported).
func (c Cell) String() string {
	if !c.Supported {
		if c.Detail != "" {
			return c.Detail // e.g. "N/A(host only)"
		}
		return "x"
	}
	return c.Detail
}

// Table is one of the paper's comparison tables.
type Table struct {
	Number  int
	Title   string
	Columns []Feature
	cells   map[API]map[Feature]Cell
}

// Cell returns the entry for (api, feature). The second result is
// false if the feature is not a column of this table.
func (t *Table) Cell(api API, f Feature) (Cell, bool) {
	row, ok := t.cells[api]
	if !ok {
		return Cell{}, false
	}
	c, ok := row[f]
	return c, ok
}

// Supports reports whether the table marks (api, feature) supported.
func (t *Table) Supports(api API, f Feature) bool {
	c, ok := t.Cell(api, f)
	return ok && c.Supported
}

// Render writes the table as aligned text.
func (t *Table) Render(sb *strings.Builder) {
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len("API")
	for _, api := range APIs() {
		if len(api) > widths[0] {
			widths[0] = len(string(api))
		}
	}
	rows := make([][]string, 0, len(APIs()))
	for _, api := range APIs() {
		row := []string{string(api)}
		for j, f := range t.Columns {
			c, _ := t.Cell(api, f)
			s := c.String()
			row = append(row, s)
			w := len(string(f))
			if len(s) > w {
				w = len(s)
			}
			if w > widths[j+1] {
				widths[j+1] = w
			}
		}
		rows = append(rows, row)
	}
	fmt.Fprintf(sb, "TABLE %s: %s\n\n", roman(t.Number), t.Title)
	header := []string{"API"}
	for _, f := range t.Columns {
		header = append(header, string(f))
	}
	writeRow(sb, header, widths)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sb, sep, widths)
	for _, row := range rows {
		writeRow(sb, row, widths)
	}
}

func writeRow(sb *strings.Builder, cells []string, widths []int) {
	for i, c := range cells {
		if i > 0 {
			sb.WriteString(" | ")
		}
		fmt.Fprintf(sb, "%-*s", widths[i], c)
	}
	sb.WriteString("\n")
}

func roman(n int) string {
	switch n {
	case 1:
		return "I"
	case 2:
		return "II"
	case 3:
		return "III"
	default:
		return fmt.Sprint(n)
	}
}

// Tables returns the paper's three comparison tables.
func Tables() []*Table {
	return []*Table{TableI(), TableII(), TableIII()}
}

// Lookup finds the table containing feature f.
func Lookup(f Feature) (*Table, bool) {
	for _, t := range Tables() {
		for _, c := range t.Columns {
			if c == f {
				return t, true
			}
		}
	}
	return nil, false
}

// Supports reports whether the paper marks (api, feature) supported,
// searching all three tables.
func Supports(api API, f Feature) bool {
	t, ok := Lookup(f)
	return ok && t.Supports(api, f)
}

// SupportedAPIs returns the APIs supporting f, in row order.
func SupportedAPIs(f Feature) []API {
	var out []API
	for _, api := range APIs() {
		if Supports(api, f) {
			out = append(out, api)
		}
	}
	return out
}

// FeatureCount returns how many of the features across all tables the
// API supports — the paper's observation that OpenMP is the most
// comprehensive model is this count's ordering.
func FeatureCount(api API) int {
	n := 0
	for _, t := range Tables() {
		for _, f := range t.Columns {
			if t.Supports(api, f) {
				n++
			}
		}
	}
	return n
}

// Ranking returns the APIs sorted by descending FeatureCount, ties by
// row order.
func Ranking() []API {
	apis := APIs()
	sort.SliceStable(apis, func(i, j int) bool {
		return FeatureCount(apis[i]) > FeatureCount(apis[j])
	})
	return apis
}
