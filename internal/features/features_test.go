package features

import (
	"strings"
	"testing"
)

func TestAPIsComplete(t *testing.T) {
	if len(APIs()) != 8 {
		t.Fatalf("APIs() = %v, want 8 entries", APIs())
	}
}

func TestTablesComplete(t *testing.T) {
	// Every table must have a cell for every API/column pair.
	for _, tab := range Tables() {
		for _, api := range APIs() {
			for _, f := range tab.Columns {
				if _, ok := tab.Cell(api, f); !ok {
					t.Errorf("table %d missing cell (%s, %s)", tab.Number, api, f)
				}
			}
		}
	}
}

// TestPaperFactsTableI pins cells of Table I to the paper.
func TestPaperFactsTableI(t *testing.T) {
	facts := []struct {
		api     API
		f       Feature
		support bool
	}{
		// Async tasking is the foundational mechanism supported by all.
		{CilkPlus, AsyncTasks, true}, {CUDA, AsyncTasks, true},
		{CPP11, AsyncTasks, true}, {OpenACC, AsyncTasks, true},
		{OpenCL, AsyncTasks, true}, {OpenMP, AsyncTasks, true},
		{PThreads, AsyncTasks, true}, {TBB, AsyncTasks, true},
		// C++11 and PThreads have no data-parallel construct.
		{CPP11, DataParallelism, false},
		{PThreads, DataParallelism, false},
		// Host-only models do not offload.
		{CilkPlus, Offloading, false}, {TBB, Offloading, false},
		{CPP11, Offloading, false}, {PThreads, Offloading, false},
		// Offloading models.
		{OpenMP, Offloading, true}, {OpenACC, Offloading, true},
		{CUDA, Offloading, true}, {OpenCL, Offloading, true},
		// Event-driven support.
		{OpenMP, EventDriven, true}, {CilkPlus, EventDriven, false},
		{PThreads, EventDriven, false}, {TBB, EventDriven, true},
	}
	for _, fact := range facts {
		if got := Supports(fact.api, fact.f); got != fact.support {
			t.Errorf("Supports(%s, %s) = %v, want %v", fact.api, fact.f, got, fact.support)
		}
	}
}

// TestPaperFactsTableII pins cells of Table II.
func TestPaperFactsTableII(t *testing.T) {
	// Only OpenMP provides memory-hierarchy abstraction AND
	// computation/data binding.
	if got := SupportedAPIs(DataBinding); len(got) != 2 || got[0] != OpenMP && got[1] != OpenMP {
		// The paper credits OpenMP (proc_bind) and TBB (affinity
		// partitioner).
		t.Errorf("SupportedAPIs(DataBinding) = %v, want [OpenMP TBB]", got)
	}
	if !Supports(OpenMP, Barrier) || !Supports(PThreads, Barrier) {
		t.Error("OpenMP and PThreads must support barriers")
	}
	if Supports(CPP11, Barrier) {
		t.Error("C++11 has no barrier in the paper's table")
	}
	if Supports(TBB, Barrier) {
		t.Error("TBB tasking model omits barriers by design")
	}
	if !Supports(CilkPlus, Reduction) || !Supports(TBB, Reduction) {
		t.Error("Cilk Plus and TBB provide reducers")
	}
	if Supports(CUDA, Reduction) {
		t.Error("CUDA has no reduction construct in Table II")
	}
}

// TestPaperFactsTableIII pins cells of Table III.
func TestPaperFactsTableIII(t *testing.T) {
	// Locks/mutexes: every API has some mutual-exclusion mechanism.
	for _, api := range APIs() {
		if !Supports(api, MutualExclusion) {
			t.Errorf("%s must support mutual exclusion", api)
		}
	}
	// Only OpenMP and OpenACC have Fortran bindings.
	for _, api := range APIs() {
		c, _ := TableIII().Cell(api, LanguageBinding)
		hasFortran := strings.Contains(c.Detail, "Fortran")
		wantFortran := api == OpenMP || api == OpenACC
		if hasFortran != wantFortran {
			t.Errorf("%s Fortran binding = %v, want %v", api, hasFortran, wantFortran)
		}
	}
	// Dedicated error models.
	if !Supports(OpenMP, ErrorHandling) {
		t.Error("OpenMP has omp cancel")
	}
	if Supports(CilkPlus, ErrorHandling) || Supports(CUDA, ErrorHandling) {
		t.Error("Cilk Plus and CUDA lack dedicated error handling in the table")
	}
}

func TestOpenMPMostComprehensive(t *testing.T) {
	// The paper: "OpenMP provides the most comprehensive set of
	// features".
	if r := Ranking(); r[0] != OpenMP {
		t.Fatalf("Ranking()[0] = %s, want OpenMP (counts: %d vs %d)",
			r[0], FeatureCount(r[0]), FeatureCount(OpenMP))
	}
}

func TestFeatureCountBounds(t *testing.T) {
	total := 0
	for _, tab := range Tables() {
		total += len(tab.Columns)
	}
	for _, api := range APIs() {
		n := FeatureCount(api)
		if n < 1 || n > total {
			t.Errorf("FeatureCount(%s) = %d out of bounds (1..%d)", api, n, total)
		}
	}
}

func TestLookup(t *testing.T) {
	tab, ok := Lookup(Barrier)
	if !ok || tab.Number != 2 {
		t.Fatalf("Lookup(Barrier) = table %v, ok=%v", tab, ok)
	}
	if _, ok := Lookup(Feature("Nonexistent")); ok {
		t.Fatal("Lookup accepted unknown feature")
	}
}

func TestCellString(t *testing.T) {
	if yes("foo").String() != "foo" {
		t.Error("supported cell should print its detail")
	}
	if no().String() != "x" {
		t.Error("unsupported cell should print x")
	}
	if na("N/A(host only)").String() != "N/A(host only)" {
		t.Error("n/a cell should print its marker")
	}
}

func TestRenderContainsEverything(t *testing.T) {
	var sb strings.Builder
	for _, tab := range Tables() {
		tab.Render(&sb)
		sb.WriteString("\n")
	}
	out := sb.String()
	for _, api := range APIs() {
		if !strings.Contains(out, string(api)) {
			t.Errorf("render lacks API %s", api)
		}
	}
	for _, want := range []string{"TABLE I:", "TABLE II:", "TABLE III:",
		"cilk_spawn/cilk_sync", "proc_bind clause", "omp cancel"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q", want)
		}
	}
}

func TestCellUnknownAPI(t *testing.T) {
	if _, ok := TableI().Cell(API("Rust"), DataParallelism); ok {
		t.Fatal("Cell accepted unknown API")
	}
}
