package features

// yes returns a supported cell with the paper's construct names.
func yes(detail string) Cell { return Cell{Supported: true, Detail: detail} }

// no returns an unsupported cell ("x" in the paper).
func no() Cell { return Cell{} }

// na returns an unsupported cell with an explanatory marker, e.g.
// "N/A(host only)".
func na(detail string) Cell { return Cell{Detail: detail} }

// TableI returns the paper's Table I: Comparison of Parallelism.
func TableI() *Table {
	return &Table{
		Number:  1,
		Title:   "Comparison of Parallelism",
		Columns: []Feature{DataParallelism, AsyncTasks, EventDriven, Offloading},
		cells: map[API]map[Feature]Cell{
			CilkPlus: {
				DataParallelism: yes("cilk_for, array operations, elemental functions"),
				AsyncTasks:      yes("cilk_spawn/cilk_sync"),
				EventDriven:     no(),
				Offloading:      na("host only"),
			},
			CUDA: {
				DataParallelism: yes("<<<--->>>"),
				AsyncTasks:      yes("async kernel launching and memcpy"),
				EventDriven:     yes("stream"),
				Offloading:      yes("device only"),
			},
			CPP11: {
				DataParallelism: no(),
				AsyncTasks:      yes("std::thread, std::async/future"),
				EventDriven:     yes("std::future"),
				Offloading:      na("host only"),
			},
			OpenACC: {
				DataParallelism: yes("kernel/parallel"),
				AsyncTasks:      yes("async/wait"),
				EventDriven:     yes("wait"),
				Offloading:      yes("device only (acc)"),
			},
			OpenCL: {
				DataParallelism: yes("kernel"),
				AsyncTasks:      yes("clEnqueueTask()"),
				EventDriven:     yes("pipe, general DAG"),
				Offloading:      yes("host and device"),
			},
			OpenMP: {
				DataParallelism: yes("parallel for, simd, distribute"),
				AsyncTasks:      yes("task/taskwait"),
				EventDriven:     yes("depend (in/out/inout)"),
				Offloading:      yes("host and device (target)"),
			},
			PThreads: {
				DataParallelism: no(),
				AsyncTasks:      yes("pthread create/join"),
				EventDriven:     no(),
				Offloading:      na("host only"),
			},
			TBB: {
				DataParallelism: yes("parallel for/while/do, etc"),
				AsyncTasks:      yes("task::spawn/wait"),
				EventDriven:     yes("pipeline, parallel pipeline, general DAG (flow::graph)"),
				Offloading:      na("host only"),
			},
		},
	}
}

// TableII returns the paper's Table II: Comparison of Abstractions of
// Memory Hierarchy and Synchronizations.
func TableII() *Table {
	return &Table{
		Number: 2,
		Title:  "Comparison of Abstractions of Memory Hierarchy and Synchronizations",
		Columns: []Feature{
			MemoryHierarchy, DataBinding, ExplicitDataMap, Barrier, Reduction, Join,
		},
		cells: map[API]map[Feature]Cell{
			CilkPlus: {
				MemoryHierarchy: no(),
				DataBinding:     no(),
				ExplicitDataMap: na("N/A(host only)"),
				Barrier:         yes("implicit for cilk_for only"),
				Reduction:       yes("reducers"),
				Join:            yes("cilk_sync"),
			},
			CUDA: {
				MemoryHierarchy: yes("blocks/threads, shared memory"),
				DataBinding:     no(),
				ExplicitDataMap: yes("cudaMemcpy function"),
				Barrier:         yes("synchthreads"),
				Reduction:       no(),
				Join:            no(),
			},
			CPP11: {
				MemoryHierarchy: na("x (but memory consistency)"),
				DataBinding:     no(),
				ExplicitDataMap: na("N/A(host only)"),
				Barrier:         no(),
				Reduction:       no(),
				Join:            yes("std::join, std::future"),
			},
			OpenACC: {
				MemoryHierarchy: yes("cache, gang/worker/vector"),
				DataBinding:     no(),
				ExplicitDataMap: yes("data copy/copyin/copyout"),
				Barrier:         no(),
				Reduction:       yes("reduction"),
				Join:            yes("wait"),
			},
			OpenCL: {
				MemoryHierarchy: yes("work group/item"),
				DataBinding:     no(),
				ExplicitDataMap: yes("buffer Write function"),
				Barrier:         yes("work group barrier"),
				Reduction:       yes("work group reduction"),
				Join:            no(),
			},
			OpenMP: {
				MemoryHierarchy: yes("OMP_PLACES, teams and distribute"),
				DataBinding:     yes("proc_bind clause"),
				ExplicitDataMap: yes("map(to/from/tofrom/alloc)"),
				Barrier:         yes("barrier, implicit for parallel/for"),
				Reduction:       yes("reduction"),
				Join:            yes("taskwait"),
			},
			PThreads: {
				MemoryHierarchy: no(),
				DataBinding:     no(),
				ExplicitDataMap: na("N/A(host only)"),
				Barrier:         yes("pthread_barrier"),
				Reduction:       no(),
				Join:            yes("pthread_join"),
			},
			TBB: {
				MemoryHierarchy: no(),
				DataBinding:     yes("affinity partitioner"),
				ExplicitDataMap: na("N/A(host only)"),
				Barrier:         na("N/A(tasking)"),
				Reduction:       yes("parallel_reduce"),
				Join:            yes("wait"),
			},
		},
	}
}

// TableIII returns the paper's Table III: Comparison of Mutual
// Exclusions and Others.
func TableIII() *Table {
	return &Table{
		Number: 3,
		Title:  "Comparison of Mutual Exclusions and Others",
		Columns: []Feature{
			MutualExclusion, LanguageBinding, ErrorHandling, ToolSupport,
		},
		cells: map[API]map[Feature]Cell{
			CilkPlus: {
				MutualExclusion: yes("containers, mutex, atomic"),
				LanguageBinding: yes("C/C++ elidable language extension"),
				ErrorHandling:   no(),
				ToolSupport:     yes("Cilkscreen, Cilkview"),
			},
			CUDA: {
				MutualExclusion: yes("atomic"),
				LanguageBinding: yes("C/C++ extensions"),
				ErrorHandling:   no(),
				ToolSupport:     yes("CUDA profiling tools"),
			},
			CPP11: {
				MutualExclusion: yes("std::mutex, atomic"),
				LanguageBinding: yes("C++"),
				ErrorHandling:   yes("C++ exception"),
				ToolSupport:     yes("System tools"),
			},
			OpenACC: {
				MutualExclusion: yes("atomic"),
				LanguageBinding: yes("directives for C/C++ and Fortran"),
				ErrorHandling:   no(),
				ToolSupport:     yes("System/vendor tools"),
			},
			OpenCL: {
				MutualExclusion: yes("atomic"),
				LanguageBinding: yes("C/C++ extensions"),
				ErrorHandling:   yes("exceptions"),
				ToolSupport:     yes("System/vendor tools"),
			},
			OpenMP: {
				MutualExclusion: yes("locks, critical, atomic, single, master"),
				LanguageBinding: yes("directives for C/C++ and Fortran"),
				ErrorHandling:   yes("omp cancel"),
				ToolSupport:     yes("OMP Tool interface"),
			},
			PThreads: {
				MutualExclusion: yes("pthread_mutex, pthread_cond"),
				LanguageBinding: yes("C library"),
				ErrorHandling:   yes("pthread_cancel"),
				ToolSupport:     yes("System tools"),
			},
			TBB: {
				MutualExclusion: yes("containers, mutex, atomic"),
				LanguageBinding: yes("C++ library"),
				ErrorHandling:   yes("cancellation and exception"),
				ToolSupport:     yes("System tools"),
			},
		},
	}
}
