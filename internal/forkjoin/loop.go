package forkjoin

import "sync/atomic"

// ScheduleKind names a work-sharing loop schedule, mirroring OpenMP's
// schedule clause.
type ScheduleKind int

const (
	// ScheduleStatic divides iterations among members before the loop
	// runs: with Chunk 0, one contiguous block per member; with Chunk
	// k, chunks of k iterations dealt round-robin. Hand-out is O(1)
	// and contention-free — the property that makes work-sharing win
	// on flat data-parallel loops in the paper.
	ScheduleStatic ScheduleKind = iota
	// ScheduleDynamic hands out chunks of Chunk iterations (default 1)
	// from a shared counter, first-come first-served.
	ScheduleDynamic
	// ScheduleGuided hands out exponentially shrinking chunks, never
	// smaller than Chunk (default 1).
	ScheduleGuided
)

// String returns the OpenMP-style name of the schedule kind.
func (k ScheduleKind) String() string {
	switch k {
	case ScheduleStatic:
		return "static"
	case ScheduleDynamic:
		return "dynamic"
	case ScheduleGuided:
		return "guided"
	default:
		return "unknown"
	}
}

// Schedule pairs a schedule kind with its chunk parameter.
type Schedule struct {
	Kind  ScheduleKind
	Chunk int
}

// Static is the default schedule: one contiguous block per member.
var Static = Schedule{Kind: ScheduleStatic}

// Dynamic returns a dynamic schedule with the given chunk size.
func Dynamic(chunk int) Schedule { return Schedule{Kind: ScheduleDynamic, Chunk: chunk} }

// Guided returns a guided schedule with the given minimum chunk size.
func Guided(chunk int) Schedule { return Schedule{Kind: ScheduleGuided, Chunk: chunk} }

// StaticChunked returns a static schedule with round-robin chunks.
func StaticChunked(chunk int) Schedule { return Schedule{Kind: ScheduleStatic, Chunk: chunk} }

// loopDesc is the shared state of one work-sharing loop instance.
type loopDesc struct {
	next     atomic.Int64 // dynamic/guided: next unclaimed iteration
	hi       int64
	partials []paddedFloat // reduction slots, one per member
	result   float64       // combined reduction result
}

// paddedFloat keeps per-member reduction slots on separate cache
// lines.
type paddedFloat struct {
	v float64
	_ [56]byte
}

// getLoop returns the shared descriptor for the seq-th work-sharing
// construct of the region, creating it on first arrival.
func (r *region) getLoop(seq int, team *Team, lo, hi int) *loopDesc {
	r.mu.Lock()
	d, ok := r.loops[seq]
	if !ok {
		d = &loopDesc{partials: make([]paddedFloat, team.n)}
		d.next.Store(int64(lo))
		d.hi = int64(hi)
		r.loops[seq] = d
	}
	r.mu.Unlock()
	return d
}

// singleDesc is the shared state of one single construct.
type singleDesc struct {
	claimed atomic.Bool
}

// getSingle returns the shared descriptor for the seq-th single
// construct of the region.
func (r *region) getSingle(seq int) *singleDesc {
	r.mu.Lock()
	d, ok := r.singles[seq]
	if !ok {
		d = &singleDesc{}
		r.singles[seq] = d
	}
	r.mu.Unlock()
	return d
}

// forStatic runs the member's share of [lo,hi) under a static
// schedule and reports each chunk to body.
func forStatic(id, nMembers, lo, hi, chunk int, body func(l, h int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		// Block distribution: sizes differ by at most one.
		base := n / nMembers
		rem := n % nMembers
		start := lo + id*base + min(id, rem)
		size := base
		if id < rem {
			size++
		}
		if size > 0 {
			body(start, start+size)
		}
		return
	}
	for start := lo + id*chunk; start < hi; start += nMembers * chunk {
		end := start + chunk
		if end > hi {
			end = hi
		}
		body(start, end)
	}
}

// forDynamic claims fixed-size chunks from the shared counter until
// the loop is exhausted.
func forDynamic(d *loopDesc, m *member, chunk int, body func(l, h int)) {
	if chunk <= 0 {
		chunk = 1
	}
	c64 := int64(chunk)
	for !m.reg.Canceled() {
		start := d.next.Add(c64) - c64
		if start >= d.hi {
			return
		}
		end := start + c64
		if end > d.hi {
			end = d.hi
		}
		m.st.CountLoopChunk()
		body(int(start), int(end))
	}
}

// forGuided claims exponentially shrinking chunks: each claim takes
// remaining/(2*members), but never less than minChunk.
func forGuided(d *loopDesc, m *member, minChunk int, body func(l, h int)) {
	if minChunk <= 0 {
		minChunk = 1
	}
	for !m.reg.Canceled() {
		cur := d.next.Load()
		if cur >= d.hi {
			return
		}
		rem := d.hi - cur
		ch := rem / int64(2*m.team.n)
		if ch < int64(minChunk) {
			ch = int64(minChunk)
		}
		if ch > rem {
			ch = rem
		}
		if !d.next.CompareAndSwap(cur, cur+ch) {
			continue
		}
		m.st.CountLoopChunk()
		body(int(cur), int(cur+ch))
	}
}
