package forkjoin

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestTaskDependWriteAfterWrite(t *testing.T) {
	tm := NewTeam(4, Options{})
	defer tm.Close()
	var obj int
	const chainLen = 200
	order := make([]int32, 0, chainLen)
	var mu SpinOrder
	tm.Parallel(func(tc *Ctx) {
		tc.Master(func() {
			for i := 0; i < chainLen; i++ {
				i := i
				// Every task writes obj: out->out dependences chain
				// them in creation order.
				tc.TaskDepend(Deps{Out: []any{&obj}}, func(*Ctx) {
					mu.Append(&order, int32(i))
				})
			}
			tc.Taskwait()
		})
	})
	if len(order) != chainLen {
		t.Fatalf("ran %d tasks, want %d", len(order), chainLen)
	}
	for i, v := range order {
		if v != int32(i) {
			t.Fatalf("out-dependences violated: position %d ran task %d", i, v)
		}
	}
}

// SpinOrder appends under a tiny spin lock (test helper).
type SpinOrder struct{ flag atomic.Bool }

func (s *SpinOrder) Append(dst *[]int32, v int32) {
	for !s.flag.CompareAndSwap(false, true) {
	}
	*dst = append(*dst, v)
	s.flag.Store(false)
}

func TestTaskDependReadersRunConcurrentlyAfterWriter(t *testing.T) {
	tm := NewTeam(4, Options{})
	defer tm.Close()
	var obj int
	var writerDone atomic.Bool
	var readersAfterWriter atomic.Int64
	var finalAfterReaders atomic.Bool
	var readersDone atomic.Int64
	const readers = 16
	tm.Parallel(func(tc *Ctx) {
		tc.Master(func() {
			tc.TaskDepend(Deps{Out: []any{&obj}}, func(*Ctx) {
				writerDone.Store(true)
			})
			for i := 0; i < readers; i++ {
				tc.TaskDepend(Deps{In: []any{&obj}}, func(*Ctx) {
					if writerDone.Load() {
						readersAfterWriter.Add(1)
					}
					readersDone.Add(1)
				})
			}
			// A second writer must wait for all readers.
			tc.TaskDepend(Deps{Out: []any{&obj}}, func(*Ctx) {
				finalAfterReaders.Store(readersDone.Load() == readers)
			})
			tc.Taskwait()
		})
	})
	if readersAfterWriter.Load() != readers {
		t.Fatalf("%d/%d readers saw the writer's effect", readersAfterWriter.Load(), readers)
	}
	if !finalAfterReaders.Load() {
		t.Fatal("second writer ran before all readers finished")
	}
}

func TestTaskDependIndependentObjectsUnordered(t *testing.T) {
	// Tasks on disjoint objects have no edges; all must simply run.
	tm := NewTeam(4, Options{})
	defer tm.Close()
	const n = 100
	objs := make([]int, n)
	var ran atomic.Int64
	tm.Parallel(func(tc *Ctx) {
		tc.Master(func() {
			for i := 0; i < n; i++ {
				tc.TaskDepend(Deps{Out: []any{&objs[i]}}, func(*Ctx) { ran.Add(1) })
			}
			tc.Taskwait()
		})
	})
	if ran.Load() != n {
		t.Fatalf("ran %d, want %d", ran.Load(), n)
	}
}

// TestTaskDependDiamond checks the classic diamond: A writes, B and C
// read, D writes — D must observe both B and C.
func TestTaskDependDiamond(t *testing.T) {
	tm := NewTeam(4, Options{})
	defer tm.Close()
	for trial := 0; trial < 50; trial++ {
		var x int
		var a, b, c atomic.Bool
		ok := true
		tm.Parallel(func(tc *Ctx) {
			tc.Master(func() {
				tc.TaskDepend(Deps{Out: []any{&x}}, func(*Ctx) { a.Store(true) })
				tc.TaskDepend(Deps{In: []any{&x}}, func(*Ctx) {
					if !a.Load() {
						ok = false
					}
					b.Store(true)
				})
				tc.TaskDepend(Deps{In: []any{&x}}, func(*Ctx) {
					if !a.Load() {
						ok = false
					}
					c.Store(true)
				})
				tc.TaskDepend(Deps{Out: []any{&x}}, func(*Ctx) {
					if !b.Load() || !c.Load() {
						ok = false
					}
				})
				tc.Taskwait()
			})
		})
		if !ok {
			t.Fatalf("diamond ordering violated on trial %d", trial)
		}
	}
}

// TestTaskDependStencilPipeline drives the dependence engine with a
// 1-D stencil wavefront: cell i depends on cells i-1 and i of the
// previous step (in) and writes cell i (out).
func TestTaskDependStencilPipeline(t *testing.T) {
	tm := NewTeam(4, Options{})
	defer tm.Close()
	const cells, steps = 16, 8
	// data[i] counts updates; each step must see the previous step's
	// value in both i-1 and i.
	data := make([]int64, cells)
	bad := atomic.Bool{}
	tm.Parallel(func(tc *Ctx) {
		tc.Master(func() {
			for s := 0; s < steps; s++ {
				s := s
				for i := 0; i < cells; i++ {
					i := i
					in := []any{&data[i]}
					if i > 0 {
						in = append(in, &data[i-1])
					}
					tc.TaskDepend(Deps{In: nil, Out: in}, func(*Ctx) {
						// Using Out for both makes each cell's tasks a
						// chain and couples neighbors stepwise.
						if data[i] != int64(s) {
							bad.Store(true)
						}
						data[i]++
					})
				}
			}
			tc.Taskwait()
		})
	})
	if bad.Load() {
		t.Fatal("stencil step ordering violated")
	}
	for i, v := range data {
		if v != steps {
			t.Fatalf("cell %d updated %d times, want %d", i, v, steps)
		}
	}
}

func TestTaskDependMixedWithPlainTasks(t *testing.T) {
	tm := NewTeam(4, Options{})
	defer tm.Close()
	var dep, plain atomic.Int64
	var x int
	tm.Parallel(func(tc *Ctx) {
		tc.Master(func() {
			for i := 0; i < 50; i++ {
				tc.TaskDepend(Deps{Out: []any{&x}}, func(*Ctx) { dep.Add(1) })
				tc.Task(func(*Ctx) { plain.Add(1) })
			}
			tc.Taskwait()
		})
	})
	if dep.Load() != 50 || plain.Load() != 50 {
		t.Fatalf("dep=%d plain=%d, want 50/50", dep.Load(), plain.Load())
	}
}

func TestTaskDependRegionEndDrains(t *testing.T) {
	// Without taskwait, the implicit region end must still run the
	// whole chain.
	tm := NewTeam(2, Options{})
	defer tm.Close()
	var x int
	var count atomic.Int64
	tm.Parallel(func(tc *Ctx) {
		tc.Master(func() {
			for i := 0; i < 30; i++ {
				tc.TaskDepend(Deps{Out: []any{&x}}, func(*Ctx) { count.Add(1) })
			}
		})
	})
	if count.Load() != 30 {
		t.Fatalf("count = %d, want 30", count.Load())
	}
}

func TestTaskDependPropertyChainAlwaysOrdered(t *testing.T) {
	tm := NewTeam(3, Options{})
	defer tm.Close()
	check := func(n8 uint8) bool {
		n := int(n8%40) + 2
		var obj int
		last := int32(-1)
		okFlag := atomic.Bool{}
		okFlag.Store(true)
		tm.Parallel(func(tc *Ctx) {
			tc.Master(func() {
				for i := 0; i < n; i++ {
					i := i
					tc.TaskDepend(Deps{Out: []any{&obj}}, func(*Ctx) {
						if last != int32(i-1) {
							okFlag.Store(false)
						}
						last = int32(i)
					})
				}
				tc.Taskwait()
			})
		})
		return okFlag.Load() && last == int32(n-1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
