package forkjoin

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"threading/internal/sched"
)

func TestParallelCtxCancelAndReuse(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	err := team.ParallelCtx(ctx, func(tc *Ctx) {
		tc.ForRange(Static, 0, 16, func(lo, hi int) {
			once.Do(cancel)
			<-ctx.Done()
		})
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// The team must remain fully usable after a canceled region.
	var n atomic.Int64
	team.Parallel(func(tc *Ctx) {
		tc.ForRange(Static, 0, 100, func(lo, hi int) { n.Add(int64(hi - lo)) })
	})
	if n.Load() != 100 {
		t.Fatalf("after cancel, ForRange covered %d of 100", n.Load())
	}
}

func TestParallelCtxPanicTyped(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()

	err := team.ParallelCtx(context.Background(), func(tc *Ctx) {
		tc.ForRange(Static, 0, 16, func(lo, hi int) {
			if lo == 0 {
				panic("region-boom")
			}
		})
	})
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *sched.PanicError", err)
	}
	if pe.Value != "region-boom" {
		t.Fatalf("PanicError.Value = %v, want region-boom", pe.Value)
	}
}

func TestParallelCtxTaskPanicTyped(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()

	err := team.ParallelCtx(context.Background(), func(tc *Ctx) {
		tc.Master(func() {
			tc.Task(func(*Ctx) { panic("task-boom") })
			tc.Taskwait()
		})
	})
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *sched.PanicError", err)
	}
	if pe.Value != "task-boom" {
		t.Fatalf("PanicError.Value = %v, want task-boom", pe.Value)
	}
}

func TestNewTeamOptionForms(t *testing.T) {
	// Legacy struct literal and functional options must both work.
	legacy := NewTeam(2, Options{CentralBarrier: true})
	defer legacy.Close()
	modern := NewTeam(2, WithCentralBarrier(), WithSchedule(Dynamic(4)))
	defer modern.Close()

	if modern.DefaultSchedule().Kind != ScheduleDynamic {
		t.Fatalf("DefaultSchedule = %v, want dynamic", modern.DefaultSchedule().Kind)
	}
	for _, team := range []*Team{legacy, modern} {
		var n atomic.Int64
		team.Parallel(func(tc *Ctx) {
			tc.ForRange(team.DefaultSchedule(), 0, 64, func(lo, hi int) { n.Add(int64(hi - lo)) })
		})
		if n.Load() != 64 {
			t.Fatalf("covered %d of 64", n.Load())
		}
	}
}
