package forkjoin

import (
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestParallelRunsAllMembers(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		tm := NewTeam(n, Options{})
		seen := make([]atomic.Int32, n)
		tm.Parallel(func(tc *Ctx) {
			seen[tc.ID()].Add(1)
			if tc.Team() != tm {
				t.Error("Ctx.Team mismatch")
			}
		})
		tm.Close()
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("n=%d: member %d ran %d times, want 1", n, i, seen[i].Load())
			}
		}
	}
}

func TestTeamReuse(t *testing.T) {
	tm := NewTeam(3, Options{})
	defer tm.Close()
	var total atomic.Int64
	for r := 0; r < 20; r++ {
		tm.Parallel(func(tc *Ctx) { total.Add(1) })
	}
	if total.Load() != 60 {
		t.Fatalf("total = %d, want 60", total.Load())
	}
}

func TestForStaticBlockCoverage(t *testing.T) {
	check := func(n16 uint16, members8 uint8) bool {
		n := int(n16 % 3000)
		members := int(members8%8) + 1
		covered := make([]int, n)
		for id := 0; id < members; id++ {
			forStatic(id, members, 0, n, 0, func(l, h int) {
				if l >= h {
					t.Errorf("empty chunk [%d,%d)", l, h)
				}
				for i := l; i < h; i++ {
					covered[i]++
				}
			})
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestForStaticChunkedCoverage(t *testing.T) {
	check := func(n16 uint16, members8, chunk8 uint8) bool {
		n := int(n16 % 3000)
		members := int(members8%8) + 1
		chunk := int(chunk8%32) + 1
		covered := make([]int, n)
		for id := 0; id < members; id++ {
			forStatic(id, members, 0, n, chunk, func(l, h int) {
				for i := l; i < h; i++ {
					covered[i]++
				}
			})
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestForSchedulesCoverEveryIteration(t *testing.T) {
	schedules := map[string]Schedule{
		"static":         Static,
		"static-chunked": StaticChunked(7),
		"dynamic":        Dynamic(13),
		"dynamic-1":      Dynamic(0), // default chunk
		"guided":         Guided(4),
	}
	for name, s := range schedules {
		t.Run(name, func(t *testing.T) {
			tm := NewTeam(4, Options{})
			defer tm.Close()
			const n = 50000
			hits := make([]atomic.Int32, n)
			tm.Parallel(func(tc *Ctx) {
				tc.For(s, 0, n, func(i int) { hits[i].Add(1) })
			})
			for i := range hits {
				if hits[i].Load() != 1 {
					t.Fatalf("iteration %d executed %d times, want 1", i, hits[i].Load())
				}
			}
		})
	}
}

func TestTwoLoopsSameRegion(t *testing.T) {
	tm := NewTeam(4, Options{})
	defer tm.Close()
	const n = 10000
	a := make([]int64, n)
	b := make([]int64, n)
	tm.Parallel(func(tc *Ctx) {
		tc.ForRange(Dynamic(64), 0, n, func(l, h int) {
			for i := l; i < h; i++ {
				atomic.AddInt64(&a[i], 1)
			}
		})
		// Second loop depends on first being complete (implicit barrier).
		tc.ForRange(Dynamic(64), 0, n, func(l, h int) {
			for i := l; i < h; i++ {
				atomic.AddInt64(&b[i], atomic.LoadInt64(&a[i]))
			}
		})
	})
	for i := 0; i < n; i++ {
		if a[i] != 1 || b[i] != 1 {
			t.Fatalf("i=%d: a=%d b=%d, want 1 1", i, a[i], b[i])
		}
	}
}

func TestForRangeEmpty(t *testing.T) {
	tm := NewTeam(3, Options{})
	defer tm.Close()
	var calls atomic.Int64
	tm.Parallel(func(tc *Ctx) {
		tc.ForRange(Static, 10, 10, func(l, h int) { calls.Add(1) })
		tc.ForRange(Dynamic(4), 5, 5, func(l, h int) { calls.Add(1) })
		tc.ForRange(Guided(2), 3, 3, func(l, h int) { calls.Add(1) })
	})
	if calls.Load() != 0 {
		t.Fatalf("body ran %d times for empty loops", calls.Load())
	}
}

func TestFewerIterationsThanMembers(t *testing.T) {
	tm := NewTeam(8, Options{})
	defer tm.Close()
	hits := make([]atomic.Int32, 3)
	tm.Parallel(func(tc *Ctx) {
		tc.For(Static, 0, 3, func(i int) { hits[i].Add(1) })
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("iteration %d executed %d times", i, hits[i].Load())
		}
	}
}

func TestReduceFloat64(t *testing.T) {
	for _, s := range []Schedule{Static, Dynamic(128), Guided(16)} {
		tm := NewTeam(4, Options{})
		const n = 100000
		var fromEveryMember [4]float64
		tm.Parallel(func(tc *Ctx) {
			got := tc.ReduceFloat64(s, 0, n, 0,
				func(l, h int, acc float64) float64 {
					for i := l; i < h; i++ {
						acc += float64(i)
					}
					return acc
				},
				func(a, b float64) float64 { return a + b })
			fromEveryMember[tc.ID()] = got
		})
		tm.Close()
		want := float64(n) * float64(n-1) / 2
		for id, got := range fromEveryMember {
			if got != want {
				t.Fatalf("schedule %v member %d: sum = %g, want %g", s, id, got, want)
			}
		}
	}
}

func TestBarrierOrdering(t *testing.T) {
	tm := NewTeam(4, Options{})
	defer tm.Close()
	var before, after atomic.Int64
	tm.Parallel(func(tc *Ctx) {
		before.Add(1)
		tc.Barrier()
		if before.Load() != 4 {
			t.Error("barrier released before all members arrived")
		}
		after.Add(1)
	})
	if after.Load() != 4 {
		t.Fatalf("after = %d, want 4", after.Load())
	}
}

func TestCriticalMutualExclusion(t *testing.T) {
	tm := NewTeam(4, Options{})
	defer tm.Close()
	counter := 0
	tm.Parallel(func(tc *Ctx) {
		for i := 0; i < 1000; i++ {
			tc.Critical(func() { counter++ })
		}
	})
	if counter != 4000 {
		t.Fatalf("counter = %d, want 4000 (lost updates)", counter)
	}
}

func TestMasterOnlyMemberZero(t *testing.T) {
	tm := NewTeam(4, Options{})
	defer tm.Close()
	var who atomic.Int64
	who.Store(-1)
	tm.Parallel(func(tc *Ctx) {
		tc.Master(func() {
			if !who.CompareAndSwap(-1, int64(tc.ID())) {
				t.Error("master ran twice")
			}
		})
	})
	if who.Load() != 0 {
		t.Fatalf("master ran on member %d, want 0", who.Load())
	}
}

func TestSingleRunsOnce(t *testing.T) {
	tm := NewTeam(4, Options{})
	defer tm.Close()
	var runs atomic.Int64
	var after atomic.Int64
	tm.Parallel(func(tc *Ctx) {
		tc.Single(func() { runs.Add(1) })
		// Implicit barrier: the first single's body must be complete
		// here. (A fast member may already be inside the second
		// single, so the count is 1 or 2, never 0.)
		if runs.Load() < 1 {
			t.Error("single not complete after its barrier")
		}
		after.Add(1)
		tc.Single(func() { runs.Add(1) }) // a second single is a new instance
	})
	if runs.Load() != 2 {
		t.Fatalf("singles ran %d times total, want 2", runs.Load())
	}
	if after.Load() != 4 {
		t.Fatalf("after = %d, want 4", after.Load())
	}
}

func TestTasksAllExecute(t *testing.T) {
	for _, opt := range []Options{{}, {LockFreeTasks: true}, {Policy: TaskImmediate}} {
		tm := NewTeam(4, opt)
		var count atomic.Int64
		tm.Parallel(func(tc *Ctx) {
			tc.Master(func() {
				for i := 0; i < 500; i++ {
					tc.Task(func(*Ctx) { count.Add(1) })
				}
			})
		})
		tm.Close()
		if count.Load() != 500 {
			t.Fatalf("opts %+v: %d tasks ran, want 500", opt, count.Load())
		}
	}
}

func TestTaskwaitJoinsChildren(t *testing.T) {
	tm := NewTeam(4, Options{})
	defer tm.Close()
	tm.Parallel(func(tc *Ctx) {
		tc.Master(func() {
			var done atomic.Int64
			for i := 0; i < 100; i++ {
				tc.Task(func(*Ctx) { done.Add(1) })
			}
			tc.Taskwait()
			if got := done.Load(); got != 100 {
				t.Errorf("after Taskwait: %d children done, want 100", got)
			}
		})
	})
}

func TestNestedTasks(t *testing.T) {
	tm := NewTeam(4, Options{})
	defer tm.Close()
	var leaves atomic.Int64
	tm.Parallel(func(tc *Ctx) {
		tc.Master(func() {
			for i := 0; i < 10; i++ {
				tc.Task(func(c1 *Ctx) {
					for j := 0; j < 10; j++ {
						c1.Task(func(*Ctx) { leaves.Add(1) })
					}
					c1.Taskwait()
				})
			}
			tc.Taskwait()
			if got := leaves.Load(); got != 100 {
				t.Errorf("after Taskwait: %d leaves, want 100", got)
			}
		})
	})
	if leaves.Load() != 100 {
		t.Fatalf("leaves = %d, want 100", leaves.Load())
	}
}

// taskFib computes fib(n) with omp-style tasks, checking the
// taskwait-based join used by the paper's omp task Fibonacci.
func taskFib(tc *Ctx, n int, out *uint64) {
	if n < 2 {
		*out = uint64(n)
		return
	}
	var a, b uint64
	tc.Task(func(c *Ctx) { taskFib(c, n-1, &a) })
	taskFib(tc, n-2, &b)
	tc.Taskwait()
	*out = a + b
}

func TestTaskFib(t *testing.T) {
	want := uint64(6765) // fib(20)
	for _, opts := range []Options{{}, {LockFreeTasks: true}} {
		tm := NewTeam(4, opts)
		var got uint64
		tm.Parallel(func(tc *Ctx) {
			tc.Master(func() { taskFib(tc, 20, &got) })
		})
		tm.Close()
		if got != want {
			t.Fatalf("opts %+v: fib(20) = %d, want %d", opts, got, want)
		}
	}
}

func TestRegionEndDrainsTasks(t *testing.T) {
	tm := NewTeam(4, Options{})
	defer tm.Close()
	var done atomic.Int64
	tm.Parallel(func(tc *Ctx) {
		// No taskwait: the implicit region-end drain must run these.
		for i := 0; i < 50; i++ {
			tc.Task(func(*Ctx) { done.Add(1) })
		}
	})
	if done.Load() != 200 {
		t.Fatalf("done = %d, want 200", done.Load())
	}
}

func TestPanicInRegionPropagates(t *testing.T) {
	tm := NewTeam(2, Options{})
	defer tm.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Parallel did not re-panic")
		}
		if !strings.Contains(r.(string), "kaboom") {
			t.Fatalf("panic %q lost the original message", r)
		}
	}()
	tm.Parallel(func(tc *Ctx) {
		if tc.ID() == 1 {
			panic("kaboom")
		}
	})
}

func TestTeamSurvivesPanic(t *testing.T) {
	tm := NewTeam(2, Options{})
	defer tm.Close()
	func() {
		defer func() { recover() }()
		tm.Parallel(func(tc *Ctx) { panic("x") })
	}()
	var ok atomic.Bool
	tm.Parallel(func(tc *Ctx) { ok.Store(true) })
	if !ok.Load() {
		t.Fatal("team unusable after panic")
	}
}

func TestCentralBarrierOption(t *testing.T) {
	tm := NewTeam(4, Options{CentralBarrier: true})
	defer tm.Close()
	var n atomic.Int64
	tm.Parallel(func(tc *Ctx) {
		n.Add(1)
		tc.Barrier()
		if n.Load() != 4 {
			t.Error("central barrier released early")
		}
	})
}

func TestScheduleString(t *testing.T) {
	if ScheduleStatic.String() != "static" || ScheduleDynamic.String() != "dynamic" ||
		ScheduleGuided.String() != "guided" || ScheduleKind(9).String() != "unknown" {
		t.Error("ScheduleKind.String values wrong")
	}
}

func TestStatsCount(t *testing.T) {
	tm := NewTeam(2, Options{})
	defer tm.Close()
	tm.ResetStats()
	tm.Parallel(func(tc *Ctx) {
		tc.Master(func() {
			for i := 0; i < 10; i++ {
				tc.Task(func(*Ctx) {})
			}
			tc.Taskwait()
		})
	})
	s := tm.Stats()
	if s.Spawns != 10 || s.TasksExecuted != 10 {
		t.Fatalf("stats = %+v, want 10 spawns and 10 executions", s)
	}
}

func TestNewTeamValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTeam(0) did not panic")
		}
	}()
	NewTeam(0, Options{})
}

func TestSize(t *testing.T) {
	tm := NewTeam(5, Options{})
	defer tm.Close()
	if tm.Size() != 5 {
		t.Fatalf("Size = %d, want 5", tm.Size())
	}
}

func TestSectionsEachRunsOnce(t *testing.T) {
	tm := NewTeam(3, Options{})
	defer tm.Close()
	var counts [5]atomic.Int32
	var after atomic.Int32
	tm.Parallel(func(tc *Ctx) {
		tc.Sections(
			func() { counts[0].Add(1) },
			func() { counts[1].Add(1) },
			func() { counts[2].Add(1) },
			func() { counts[3].Add(1) },
			func() { counts[4].Add(1) },
		)
		// Implicit barrier: all sections complete before any member
		// proceeds.
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Errorf("section %d ran %d times at barrier exit", i, counts[i].Load())
			}
		}
		after.Add(1)
	})
	if after.Load() != 3 {
		t.Fatalf("after = %d", after.Load())
	}
}

func TestSectionsMoreSectionsThanMembers(t *testing.T) {
	tm := NewTeam(2, Options{})
	defer tm.Close()
	var n atomic.Int32
	fns := make([]func(), 20)
	for i := range fns {
		fns[i] = func() { n.Add(1) }
	}
	tm.Parallel(func(tc *Ctx) { tc.Sections(fns...) })
	if n.Load() != 20 {
		t.Fatalf("ran %d sections, want 20", n.Load())
	}
}

func TestNestedParallelRejected(t *testing.T) {
	tm := NewTeam(2, Options{})
	defer tm.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("nested Parallel did not panic")
		}
	}()
	tm.Parallel(func(tc *Ctx) {
		tc.Master(func() {
			tm.Parallel(func(*Ctx) {})
		})
	})
}
