package forkjoin

import (
	"context"
	"errors"
)

// ErrClosed is returned by SubmitCtx on a closed team.
var ErrClosed = errors.New("forkjoin: team is closed")

// The methods in this file make *Team satisfy the shard.Executor
// submission surface, the runtime-neutral interface the shard.Resolver
// routes over. A Team rejects nested and concurrent parallel regions,
// so the executor surface serializes its callers through execMu: two
// concurrent ParallelForCtx calls on the same Team queue behind one
// another instead of panicking. Direct Parallel/ParallelCtx callers
// keep the original single-caller contract and bypass the lock.

// executorSchedule maps the Executor grain argument onto a
// work-sharing schedule: a positive grain selects dynamic chunking at
// that chunk size (the closest analogue of a task grain), anything
// else selects the team's default schedule.
func (t *Team) executorSchedule(grain int) Schedule {
	if grain > 0 {
		return Dynamic(grain)
	}
	return t.opts.DefaultSchedule
}

// ParallelForCtx runs one parallel region distributing [lo, hi) over
// the team and blocks until the region joins. A grain > 0 selects the
// dynamic schedule at that chunk size; otherwise the team's default
// schedule applies.
func (t *Team) ParallelForCtx(ctx context.Context, lo, hi, grain int, body func(l, h int)) error {
	if lo >= hi {
		return ctx.Err()
	}
	s := t.executorSchedule(grain)
	t.execMu.Lock()
	defer t.execMu.Unlock()
	return t.ParallelCtx(ctx, func(tc *Ctx) {
		tc.ForRangeNoWait(s, lo, hi, body)
	})
}

// ParallelReduceCtx runs one parallel region reducing over [lo, hi):
// body folds each assigned chunk into the member's accumulator (seeded
// with identity) and combine folds the members' partials. combine must
// be associative and commutative. On error the identity is returned.
func (t *Team) ParallelReduceCtx(ctx context.Context, lo, hi, grain int, identity float64,
	body func(l, h int, acc float64) float64,
	combine func(a, b float64) float64) (float64, error) {

	if lo >= hi {
		return identity, ctx.Err()
	}
	s := t.executorSchedule(grain)
	t.execMu.Lock()
	defer t.execMu.Unlock()
	var result float64
	err := t.ParallelCtx(ctx, func(tc *Ctx) {
		r := tc.ReduceFloat64(s, lo, hi, identity, body, combine)
		tc.Master(func() { result = r })
	})
	if err != nil {
		return identity, err
	}
	return result, nil
}

// SubmitCtx schedules fn to run asynchronously as the master's work in
// a dedicated parallel region and returns without waiting for it.
// Completion and the first failure are observed through Quiesce. The
// caller must Quiesce before Close.
func (t *Team) SubmitCtx(ctx context.Context, fn func()) error {
	if t.closed.Load() {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	t.async.Add()
	go func() {
		defer t.async.Done()
		t.execMu.Lock()
		defer t.execMu.Unlock()
		if t.closed.Load() {
			t.async.Record(ErrClosed)
			return
		}
		t.async.Record(t.ParallelCtx(ctx, func(tc *Ctx) {
			tc.Master(fn)
		}))
	}()
	return nil
}

// Quiesce blocks until every task submitted with SubmitCtx has
// completed and returns the first failure recorded since the previous
// Quiesce. Synchronous Parallel calls are unaffected — they already
// join before returning.
func (t *Team) Quiesce() error { return t.async.Wait() }

// PendingWork reports the number of live explicit tasks in the team —
// the signal a least-loaded balancer reads when choosing a shard.
func (t *Team) PendingWork() int64 { return t.outstanding.Load() }
