// Package forkjoin implements an OpenMP-style fork-join runtime: a
// persistent team of workers executes parallel regions, inside which
// loop iterations are distributed by work-sharing schedules (static,
// dynamic, guided) and explicit tasks are scheduled over per-member
// deques.
//
// This is the "OpenMP" side of the reproduced paper. Its two defining
// properties — O(1) hand-out of loop chunks by work-sharing (no steals
// on the distribution path), and lock-based task deques in the tasking
// layer (matching the Intel OpenMP runtime the paper measured) — are
// the mechanisms behind the paper's headline results on data-parallel
// kernels (Figs. 1-4) and recursive tasking (Fig. 5).
package forkjoin

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strconv"
	"sync"
	"sync/atomic"

	"threading/internal/deque"
	"threading/internal/sched"
	"threading/internal/syncprim"
	"threading/internal/tracez"
)

// TaskPolicy selects when an explicit task body runs.
type TaskPolicy int

const (
	// TaskDeferred queues tasks on the creating member's deque, to be
	// executed at scheduling points (taskwait, barriers, region end)
	// or stolen by idle members. This models breadth-first task
	// creation as in the Intel OpenMP runtime.
	TaskDeferred TaskPolicy = iota
	// TaskImmediate executes the task body inline at the creation
	// site, modelling a work-first scheduler (undeferred tasks).
	TaskImmediate
)

// Options configure a Team.
//
// Deprecated: prefer the functional options (WithLockFreeTasks,
// WithTaskPolicy, WithCentralBarrier, WithSpinBeforeYield,
// WithSchedule). Options remains usable — a literal passed to NewTeam
// still applies wholesale — so existing callers compile unchanged.
type Options struct {
	// TaskDeque selects the deque backing explicit tasks. The default
	// deque.KindChaseLev is overridden to deque.KindLocked by NewTeam
	// unless LockFreeTasks is set, because the modelled runtime uses
	// lock-based deques.
	LockFreeTasks bool
	// Policy selects deferred (default) or immediate task execution.
	Policy TaskPolicy
	// CentralBarrier replaces the default sense-reversing barrier
	// with the lock-based central barrier (ablation).
	CentralBarrier bool
	// SpinBeforeYield is how many find-work failures a draining member
	// tolerates before yielding the processor. Zero selects a default.
	SpinBeforeYield int
	// DefaultSchedule is the work-sharing schedule used by callers
	// that ask the team for its default (Team.DefaultSchedule). The
	// zero value is the static schedule.
	DefaultSchedule Schedule
	// Tracer, when non-nil, receives per-member runtime events
	// (task/chunk spans, spawns, steals, barrier waits). Nil disables
	// tracing; the hot paths then pay only a nil check.
	Tracer *tracez.Tracer
	// PinWorkers locks members 1..n-1 to OS threads
	// (runtime.LockOSThread) for the life of the team. Member 0 is the
	// caller's goroutine and is never pinned by the team.
	PinWorkers bool
}

// Option configures a Team at construction. The legacy Options struct
// itself implements Option (applying every field at once), so both
// NewTeam(n, Options{...}) and NewTeam(n, WithCentralBarrier()) are
// valid.
type Option interface{ applyTeam(*Options) }

func (o Options) applyTeam(dst *Options) { *dst = o }

type teamOption func(*Options)

func (f teamOption) applyTeam(o *Options) { f(o) }

// WithLockFreeTasks backs explicit tasks with lock-free Chase-Lev
// deques instead of the default lock-based deques.
func WithLockFreeTasks() Option {
	return teamOption(func(o *Options) { o.LockFreeTasks = true })
}

// WithTaskPolicy selects deferred or immediate task execution.
func WithTaskPolicy(p TaskPolicy) Option {
	return teamOption(func(o *Options) { o.Policy = p })
}

// WithCentralBarrier selects the lock-based central barrier.
func WithCentralBarrier() Option {
	return teamOption(func(o *Options) { o.CentralBarrier = true })
}

// WithSpinBeforeYield sets how many find-work failures a draining
// member tolerates before yielding the processor.
func WithSpinBeforeYield(n int) Option {
	return teamOption(func(o *Options) { o.SpinBeforeYield = n })
}

// WithSchedule sets the team's default work-sharing schedule.
func WithSchedule(s Schedule) Option {
	return teamOption(func(o *Options) { o.DefaultSchedule = s })
}

// WithTracer attaches a runtime-event tracer: every member records its
// events into the tracer's ring for its member id. A nil tracer leaves
// tracing disabled.
func WithTracer(tr *tracez.Tracer) Option {
	return teamOption(func(o *Options) { o.Tracer = tr })
}

// WithPinnedWorkers locks each persistent member goroutine (members
// 1..n-1) to an OS thread for the life of the team, so members keep
// their caches instead of migrating between threads at the Go
// scheduler's whim. Member 0 is the calling goroutine and is never
// pinned by the team (pin it yourself if the master must not move).
func WithPinnedWorkers(on bool) Option {
	return teamOption(func(o *Options) { o.PinWorkers = on })
}

// Team is a fixed-size group of workers executing parallel regions.
// The calling goroutine acts as member 0 (the master); members
// 1..n-1 are persistent goroutines that block between regions, so a
// region launch costs one channel send per worker, not a goroutine
// spawn — the fork-join model's "fork".
//
// A Team is not safe for concurrent Parallel calls and regions must
// not nest; this mirrors the single-level OpenMP usage the paper
// benchmarks.
type Team struct {
	n       int
	opts    Options
	barrier syncprim.Barrier
	members []*member
	stats   *sched.Stats

	criticalMu sync.Mutex
	execMu     sync.Mutex       // serializes Executor-surface regions
	async      sched.AsyncGroup // in-flight SubmitCtx tasks, joined by Quiesce
	inRegion   atomic.Bool      // guards against nested/concurrent Parallel
	closed     atomic.Bool

	// freeMu guards the team-wide overflow freelist that member arenas
	// spill to and refill from, so task records stolen cross-member
	// circulate back to whoever allocates next. Touched only when a
	// local list runs dry or overflows.
	freeMu    sync.Mutex
	freeList  *task
	freeCount int

	// outstanding is bumped twice per explicit task, by whichever
	// members create and finish it; padded onto its own cache line so
	// that per-task traffic doesn't false-share with the locks and
	// flags above (closed and inRegion are read on every region entry).
	_           [sched.CacheLine]byte
	outstanding atomic.Int64 // live explicit tasks
	_           [sched.CacheLine - 8]byte

	wg sync.WaitGroup
}

// member is one team participant. Member 0 has no cmds channel: it is
// driven directly by Parallel on the calling goroutine.
type member struct {
	id   int
	team *Team
	cmds chan *region
	dq   deque.Deque[task]
	rng  *sched.Rand
	st   *sched.Shard
	cur  *taskNode     // node whose children a taskwait would join
	reg  *sched.Region // cancellation state of the region being run
	ring *tracez.Ring  // nil unless the team was built WithTracer

	// free is the member-local task arena: records recycled by execute
	// and reused by alloc. Capped at maxFreeTasks with overflow spilled
	// to the team-wide list. Owner-only, like dq's bottom end.
	free  *task
	nfree int
}

// region is the shared state of one parallel region: the body, the
// cancellation/failure state, and the lazily created descriptors for
// each work-sharing construct in it.
type region struct {
	fn      func(*Ctx)
	reg     *sched.Region
	mu      sync.Mutex
	loops   map[int]*loopDesc
	singles map[int]*singleDesc
}

const defaultDrainSpin = 64

// NewTeam creates a team of n members (including the master). n must
// be at least 1. Options may be given either as functional options or
// as a legacy Options literal.
func NewTeam(n int, options ...Option) *Team {
	if n < 1 {
		panic("forkjoin: team needs at least 1 member")
	}
	var opts Options
	for _, o := range options {
		o.applyTeam(&opts)
	}
	if opts.SpinBeforeYield <= 0 {
		opts.SpinBeforeYield = defaultDrainSpin
	}
	t := &Team{n: n, opts: opts, stats: sched.NewStats(n)}
	if opts.CentralBarrier {
		t.barrier = syncprim.NewCentralBarrier(n)
	} else {
		t.barrier = syncprim.NewSenseBarrier(n)
	}
	kind := deque.KindLocked
	if opts.LockFreeTasks {
		kind = deque.KindChaseLev
	}
	t.members = make([]*member, n)
	for i := 0; i < n; i++ {
		m := &member{
			id:   i,
			team: t,
			dq:   deque.New[task](kind),
			rng:  sched.NewRand(uint64(i)*0x9E3779B9 + 7),
			st:   t.stats.Shard(i),
		}
		if opts.Tracer != nil {
			m.ring = opts.Tracer.Ring(i)
			opts.Tracer.Label(i, "fj-m"+strconv.Itoa(i))
		}
		if i > 0 {
			m.cmds = make(chan *region)
		}
		t.members[i] = m
	}
	for i := 1; i < n; i++ {
		t.wg.Add(1)
		m := t.members[i]
		go func() {
			if opts.PinWorkers {
				// Pin for the goroutine's whole life; the lock dies with
				// the goroutine when loop returns at Close.
				runtime.LockOSThread()
			}
			// pprof label the member goroutine so CPU profiles split by
			// runtime and member, not one anonymous goroutine blob.
			// Member 0 is the caller's goroutine and keeps its labels.
			pprof.Do(context.Background(), pprof.Labels(
				"runtime", "forkjoin", "worker", strconv.Itoa(m.id),
			), func(context.Context) { m.loop() })
		}()
	}
	return t
}

// maxFreeTasks caps each member-local freelist; freeTransfer is the
// batch moved between a local list and the team-wide overflow list;
// maxTeamFree caps the team-wide list, beyond which records are
// dropped for the GC.
const (
	maxFreeTasks = 256
	freeTransfer = 64
	maxTeamFree  = 4096
)

// alloc returns a task record from the member's arena, refilling from
// the team-wide overflow list when the local list is dry; a fresh heap
// allocation is the last resort. Only the member's own goroutine may
// call it.
func (m *member) alloc() *task {
	if m.free == nil {
		m.refill()
	}
	if tk := m.free; tk != nil {
		m.free = tk.next
		m.nfree--
		tk.next = nil
		return tk
	}
	return new(task)
}

// recycle returns tk to the executing member's arena — the
// return-to-executor rule, matching worksteal's. It must run after
// execute's final bookkeeping: at that point no deque can yield tk
// again, and if the embedded node was exposed to children (node ==
// &own) it is reset only when their count has drained to zero — the
// atomic load ordering the last child's decrement before the reset.
// A record whose embedded node still has live children (a task that
// returned without joining deferred children) is left for the GC.
func (m *member) recycle(tk *task) {
	if tk.node == &tk.own {
		if tk.own.children.Load() != 0 {
			return
		}
		tk.own = taskNode{}
	}
	tk.fn, tk.node = nil, nil
	if m.nfree >= maxFreeTasks {
		m.spill()
	}
	tk.next = m.free
	m.free = tk
	m.nfree++
}

// refill moves up to freeTransfer records from the team-wide list to
// m's; batching keeps the shared lock off the per-task path.
func (m *member) refill() {
	t := m.team
	t.freeMu.Lock()
	n := 0
	for n < freeTransfer && t.freeList != nil {
		tk := t.freeList
		t.freeList = tk.next
		tk.next = m.free
		m.free = tk
		n++
	}
	t.freeCount -= n
	t.freeMu.Unlock()
	m.nfree += n
}

// spill moves a freeTransfer batch from m's overfull local list to
// the team-wide list (or drops it for the GC when that list is full),
// so a member that executes far more than it creates hands records
// back to the creators.
func (m *member) spill() {
	var head, tail *task
	n := 0
	for n < freeTransfer && m.free != nil {
		tk := m.free
		m.free = tk.next
		tk.next = head
		if head == nil {
			tail = tk
		}
		head = tk
		n++
	}
	m.nfree -= n
	if head == nil {
		return
	}
	t := m.team
	t.freeMu.Lock()
	if t.freeCount+n <= maxTeamFree {
		tail.next = t.freeList
		t.freeList = head
		t.freeCount += n
	}
	t.freeMu.Unlock()
}

// Size reports the number of team members.
func (t *Team) Size() int { return t.n }

// DefaultSchedule returns the team's default work-sharing schedule
// (set with WithSchedule; the zero value is Static).
func (t *Team) DefaultSchedule() Schedule { return t.opts.DefaultSchedule }

// Stats returns a snapshot of the runtime counters.
func (t *Team) Stats() sched.Snapshot { return t.stats.Snapshot() }

// ResetStats zeroes the runtime counters.
func (t *Team) ResetStats() { t.stats.Reset() }

// Close releases the worker goroutines. The team must not be used
// afterwards.
func (t *Team) Close() {
	if t.closed.Swap(true) {
		return
	}
	for i := 1; i < t.n; i++ {
		close(t.members[i].cmds)
	}
	t.wg.Wait()
}

// Parallel executes fn once on every team member concurrently — the
// OpenMP "parallel" construct. It returns after every member has
// finished, every explicit task created in the region has completed,
// and all members have joined the implicit end-of-region barrier. If
// any member or task panicked, Parallel re-panics on the caller with
// the first recorded value.
func (t *Team) Parallel(fn func(tc *Ctx)) {
	if err := t.ParallelCtx(context.Background(), fn); err != nil {
		var pe *sched.PanicError
		if errors.As(err, &pe) {
			panic(fmt.Sprintf("forkjoin: parallel region panicked: %v", pe.Value))
		}
		panic(fmt.Sprintf("forkjoin: parallel region failed: %v", err))
	}
}

// ParallelCtx is Parallel with cooperative cancellation and structured
// error propagation. Cancellation (including deadline expiry) is
// observed at work-sharing chunk boundaries and explicit-task
// boundaries: in-flight chunk bodies run to completion, queued chunks
// and tasks are skipped, every member still joins the end-of-region
// barrier, and the team remains reusable. The returned error is the
// first failure: the context's error, or a *sched.PanicError wrapping
// the first panic recovered from any member or task (a panic also
// cancels the rest of the region). A nil return means every chunk and
// task ran to completion.
func (t *Team) ParallelCtx(ctx context.Context, fn func(tc *Ctx)) error {
	if t.closed.Load() {
		panic("forkjoin: Parallel on closed team")
	}
	if !t.inRegion.CompareAndSwap(false, true) {
		panic("forkjoin: nested or concurrent parallel regions are not supported")
	}
	defer t.inRegion.Store(false)
	r := &region{
		fn:      fn,
		reg:     sched.NewRegion(ctx),
		loops:   make(map[int]*loopDesc),
		singles: make(map[int]*singleDesc),
	}
	for i := 1; i < t.n; i++ {
		t.members[i].cmds <- r
	}
	t.members[0].runRegion(r)
	return r.reg.Finish()
}

// loop is the worker main loop: run regions until the team closes.
func (m *member) loop() {
	defer m.team.wg.Done()
	for r := range m.cmds {
		m.runRegion(r)
	}
}

// runRegion executes the region body on this member, drains explicit
// tasks, and joins the implicit end-of-region barrier.
func (m *member) runRegion(r *region) {
	root := &taskNode{}
	m.cur = root
	m.reg = r.reg
	// Work-sharing chunk spans have no free argument for a request id
	// (A1/A2 are the iteration range), so tag the member's whole
	// region with an ambient req-tag instant instead; the matching
	// clear below keeps ids from leaking across regions.
	if rid := r.reg.TraceID(); rid != 0 {
		m.ring.Record(tracez.KindReqTag, rid, 0)
	}
	tc := &Ctx{m: m, r: r}
	func() {
		defer func() {
			if p := recover(); p != nil {
				m.reg.RecordPanic(p)
			}
		}()
		r.fn(tc)
	}()
	// Region end: help until every explicit task in the region has
	// finished, then join the implicit barrier. Hand the hoard beyond a
	// one-refill stash back to the team list on the way out, so records
	// drained here flow back to whichever member spawns in the next
	// region instead of waiting for the maxFreeTasks cap.
	m.drainAllTasks(tc)
	for m.nfree > freeTransfer {
		m.spill()
	}
	m.st.CountBarrierWait()
	m.ring.Record(tracez.KindBarrierStart, 0, 0)
	m.team.barrier.Wait()
	m.ring.Record(tracez.KindBarrierEnd, 0, 0)
	if r.reg.TraceID() != 0 {
		m.ring.Record(tracez.KindReqTag, 0, 0)
	}
	m.cur = nil
	m.reg = nil
}

// drainAllTasks executes or waits out every outstanding explicit task
// in the team.
func (m *member) drainAllTasks(tc *Ctx) {
	idle := 0
	for m.team.outstanding.Load() > 0 {
		if tk := m.findTask(); tk != nil {
			idle = 0
			m.execute(tc, tk)
			continue
		}
		idle++
		if idle >= m.team.opts.SpinBeforeYield {
			runtime.Gosched()
			idle = 0
		}
	}
}

// findTask pops the member's own deque or steals from a random
// victim.
func (m *member) findTask() *task {
	if tk := m.dq.PopBottom(); tk != nil {
		return tk
	}
	n := len(m.team.members)
	if n == 1 {
		return nil
	}
	start := m.rng.Intn(n)
	for i := 0; i < n; i++ {
		v := m.team.members[(start+i)%n]
		if v == m {
			continue
		}
		if tk := v.dq.Steal(); tk != nil {
			m.st.CountSteal()
			m.ring.Record(tracez.KindSteal, int64(v.id), 1)
			return tk
		}
	}
	m.st.CountFailedSteal()
	m.ring.Record(tracez.KindStealFail, 0, 0)
	return nil
}

// execute runs one explicit task body with parent tracking so that a
// taskwait inside the body joins the right children. In a canceled
// region the body is skipped but the bookkeeping still runs, so
// queued tasks drain and taskwait/region-end conditions resolve.
func (m *member) execute(tc *Ctx, tk *task) {
	m.st.CountTask()
	m.ring.Record(tracez.KindTaskStart, m.reg.TraceID(), 0)
	if m.ring != nil && trace.IsEnabled() {
		defer trace.StartRegion(context.Background(), "forkjoin.task").End()
	}
	saved := m.cur
	m.cur = tk.node
	if !m.reg.Canceled() {
		func() {
			defer func() {
				if p := recover(); p != nil {
					m.reg.RecordPanic(p)
				}
			}()
			tk.fn(tc)
		}()
	}
	m.cur = saved
	m.ring.Record(tracez.KindTaskEnd, 0, 0)
	tk.node.parent.children.Add(-1)
	m.team.outstanding.Add(-1)
	m.recycle(tk) // nothing can reach tk now; see recycle's safety note
}
