package forkjoin

import (
	"sync/atomic"
	"testing"
)

// allocsPerTaskRun measures the average heap allocations of one
// Parallel region in which member 0 submits tasks deferred tasks,
// after the team's freelists are warm.
func allocsPerTaskRun(tm *Team, tasks int, body func(*Ctx)) float64 {
	run := func() {
		tm.Parallel(func(tc *Ctx) {
			if tc.ID() != 0 {
				return
			}
			for i := 0; i < tasks; i++ {
				tc.Task(body)
			}
			tc.Taskwait()
		})
	}
	for i := 0; i < 5; i++ {
		run()
	}
	return testing.AllocsPerRun(10, run)
}

// TestTaskZeroAlloc proves deferred-task records recycle through the
// member arenas: quadrupling the task count must not move the per-run
// allocation count (the fixed region overhead cancels in the
// differential).
func TestTaskZeroAlloc(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	var sink atomic.Int64
	body := func(*Ctx) { sink.Add(1) }

	small := allocsPerTaskRun(tm, 64, body)
	big := allocsPerTaskRun(tm, 256, body)
	perTask := (big - small) / 192
	if perTask > 0.05 {
		t.Errorf("Task allocates: %.3f allocs/task (runs: %.1f @64 vs %.1f @256)",
			perTask, small, big)
	}
}
