package forkjoin

import (
	"testing"

	"threading/internal/tracez"
)

func TestTeamTracingRecordsEvents(t *testing.T) {
	tr := tracez.New(1 << 12)
	tm := NewTeam(2, WithTracer(tr))
	defer tm.Close()

	tm.Parallel(func(tc *Ctx) {
		tc.ForRange(Dynamic(16), 0, 256, func(int, int) {})
	})
	tm.Parallel(func(tc *Ctx) {
		tc.Master(func() {
			for i := 0; i < 8; i++ {
				tc.Task(func(*Ctx) {})
			}
			tc.Taskwait()
		})
	})

	counts := map[tracez.Kind]int{}
	var covered int64
	for _, wt := range tr.Snapshot().Workers {
		for _, e := range wt.Events {
			counts[e.Kind]++
			if e.Kind == tracez.KindChunkStart {
				covered += e.A2 - e.A1
			}
		}
	}
	if counts[tracez.KindChunkStart] == 0 || counts[tracez.KindChunkStart] != counts[tracez.KindChunkEnd] {
		t.Fatalf("chunk spans unbalanced: %d starts, %d ends",
			counts[tracez.KindChunkStart], counts[tracez.KindChunkEnd])
	}
	if covered != 256 {
		t.Fatalf("chunk events cover %d iterations, want 256", covered)
	}
	if counts[tracez.KindSpawn] != 8 {
		t.Fatalf("spawn events = %d, want 8", counts[tracez.KindSpawn])
	}
	if counts[tracez.KindTaskStart] != 8 || counts[tracez.KindTaskEnd] != 8 {
		t.Fatalf("task spans = %d/%d, want 8/8",
			counts[tracez.KindTaskStart], counts[tracez.KindTaskEnd])
	}
	if counts[tracez.KindBarrierStart] == 0 || counts[tracez.KindBarrierStart] != counts[tracez.KindBarrierEnd] {
		t.Fatalf("barrier spans unbalanced: %d starts, %d ends",
			counts[tracez.KindBarrierStart], counts[tracez.KindBarrierEnd])
	}
}

func TestTeamUntracedHasNoRings(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	for _, m := range tm.members {
		if m.ring != nil {
			t.Fatalf("member %d has a ring without WithTracer", m.id)
		}
	}
}
