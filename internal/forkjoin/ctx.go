package forkjoin

import (
	"runtime"
	"sync"
	"sync/atomic"

	"threading/internal/tracez"
)

// Ctx is a member's handle inside a parallel region. All members of a
// region execute the same code (SPMD), so work-sharing constructs
// (ForRange, Single, Reduce) must be reached by every member in the
// same order — as in OpenMP.
type Ctx struct {
	m         *member
	r         *region
	loopSeq   int
	singleSeq int
}

// ID returns this member's index, in [0, Team().Size()).
func (tc *Ctx) ID() int { return tc.m.id }

// Team returns the executing team.
func (tc *Ctx) Team() *Team { return tc.m.team }

// Canceled reports whether the region has been canceled — by the
// context passed to ParallelCtx or by a panic elsewhere in the
// region. Long-running chunk bodies can poll it to stop early; the
// runtime itself checks it at every chunk and task boundary.
func (tc *Ctx) Canceled() bool { return tc.m.reg.Canceled() }

// guard wraps a chunk body with the region's cancellation check and
// panic capture: a canceled region skips remaining chunks, and a
// panicking chunk records a *sched.PanicError and cancels the region
// while its siblings drain — the shared chunk-boundary semantics of
// every work-sharing schedule.
func (tc *Ctx) guard(body func(l, h int)) func(l, h int) {
	reg := tc.m.reg
	return func(l, h int) {
		if reg.Canceled() {
			return
		}
		defer func() {
			if p := recover(); p != nil {
				reg.RecordPanic(p)
			}
		}()
		body(l, h)
	}
}

// Barrier blocks until every member of the region arrives —
// the OpenMP "barrier" construct. It returns true on exactly one
// member per phase.
func (tc *Ctx) Barrier() bool {
	tc.m.st.CountBarrierWait()
	tc.m.ring.Record(tracez.KindBarrierStart, 0, 0)
	last := tc.m.team.barrier.Wait()
	tc.m.ring.Record(tracez.KindBarrierEnd, 0, 0)
	return last
}

// Critical executes fn under the team-wide critical-section lock —
// the OpenMP "critical" construct (single unnamed lock).
func (tc *Ctx) Critical(fn func()) {
	tc.m.team.criticalMu.Lock()
	defer tc.m.team.criticalMu.Unlock()
	fn()
}

// Master executes fn on member 0 only, without synchronization — the
// OpenMP "master" construct. A panic in fn is recorded and cancels
// the region rather than unwinding past the region's barriers.
func (tc *Ctx) Master(fn func()) {
	if tc.m.id == 0 {
		tc.guard(func(_, _ int) { fn() })(0, 1)
	}
}

// Single executes fn on the first member to arrive; all members then
// synchronize at an implicit barrier — the OpenMP "single" construct.
func (tc *Ctx) Single(fn func()) {
	d := tc.r.getSingle(tc.singleSeq)
	tc.singleSeq++
	if d.claimed.CompareAndSwap(false, true) {
		tc.guard(func(_, _ int) { fn() })(0, 1)
	}
	tc.Barrier()
}

// Sections distributes the given function blocks across the team,
// each executing exactly once on some member, followed by an implicit
// barrier — the OpenMP "sections" construct. Blocks are claimed
// first-come first-served, so a member may execute several.
func (tc *Ctx) Sections(fns ...func()) {
	seq := tc.loopSeq
	tc.loopSeq++
	d := tc.r.getLoop(seq, tc.m.team, 0, len(fns))
	run := tc.guard(func(l, _ int) { fns[l]() })
	for !tc.m.reg.Canceled() {
		i := d.next.Add(1) - 1
		if i >= d.hi {
			break
		}
		run(int(i), int(i)+1)
	}
	tc.Barrier()
}

// ForRange distributes the iteration space [lo, hi) across the team
// according to s and calls body once per assigned chunk — the OpenMP
// "for" work-sharing construct with its implicit end barrier.
func (tc *Ctx) ForRange(s Schedule, lo, hi int, body func(l, h int)) {
	tc.forRange(s, lo, hi, body)
	tc.Barrier()
}

// ForRangeNoWait is ForRange without the implicit end barrier —
// the "nowait" clause.
func (tc *Ctx) ForRangeNoWait(s Schedule, lo, hi int, body func(l, h int)) {
	tc.forRange(s, lo, hi, body)
}

func (tc *Ctx) forRange(s Schedule, lo, hi int, body func(l, h int)) {
	seq := tc.loopSeq
	tc.loopSeq++
	run := tc.guard(body)
	if ring := tc.m.ring; ring != nil {
		// Wrap once per loop, not per chunk, so the disabled path pays
		// only this nil check.
		inner := run
		run = func(l, h int) {
			ring.Record(tracez.KindChunkStart, int64(l), int64(h))
			inner(l, h)
			ring.Record(tracez.KindChunkEnd, int64(l), int64(h))
		}
	}
	switch s.Kind {
	case ScheduleStatic:
		// No shared descriptor needed: assignment is a pure function
		// of the member id, which is what makes static cheap.
		tc.m.st.CountLoopChunk()
		forStatic(tc.m.id, tc.m.team.n, lo, hi, s.Chunk, run)
	case ScheduleDynamic:
		d := tc.r.getLoop(seq, tc.m.team, lo, hi)
		forDynamic(d, tc.m, s.Chunk, run)
	case ScheduleGuided:
		d := tc.r.getLoop(seq, tc.m.team, lo, hi)
		forGuided(d, tc.m, s.Chunk, run)
	}
}

// For distributes [lo, hi) and calls body once per iteration.
func (tc *Ctx) For(s Schedule, lo, hi int, body func(i int)) {
	tc.ForRange(s, lo, hi, func(l, h int) {
		for i := l; i < h; i++ {
			body(i)
		}
	})
}

// ReduceFloat64 is a work-sharing loop with a float64 reduction:
// body folds each assigned chunk into acc and returns the new value;
// combine folds the members' partial results. Every member receives
// the combined value — the OpenMP "for reduction(...)" construct.
// combine must be associative and commutative.
func (tc *Ctx) ReduceFloat64(s Schedule, lo, hi int, identity float64,
	body func(l, h int, acc float64) float64,
	combine func(a, b float64) float64) float64 {

	seq := tc.loopSeq
	d := tc.r.getLoop(seq, tc.m.team, lo, hi) // claim descriptor for partials
	acc := identity
	tc.forRange(s, lo, hi, func(l, h int) {
		acc = body(l, h, acc)
	})
	d.partials[tc.m.id].v = acc
	tc.Barrier()
	tc.Master(func() {
		res := identity
		for i := range d.partials {
			res = combine(res, d.partials[i].v)
		}
		d.result = res
	})
	tc.Barrier()
	return d.result
}

// node of the implicit task a member is currently executing; explicit
// tasks created here become its children.
type taskNode struct {
	children atomic.Int64
	parent   *taskNode

	// Dependency table for TaskDepend children, created on demand.
	depOnce sync.Once
	deps    *depDomain
}

// task is one explicit task: a body plus its node in the task tree.
// The node is embedded (node normally points at own), and finished
// records are recycled through the executing member's freelist
// (member.alloc / member.recycle), so in steady state an OpenMP-style
// task creation allocates nothing. Dependency tasks keep standalone
// nodes (their depTask graph outlives any one record), so for them
// node points elsewhere and own stays unused.
type task struct {
	fn   func(*Ctx)
	node *taskNode
	next *task // freelist link while recycled
	own  taskNode
}

// Task creates an explicit task — the OpenMP "task" construct. Under
// the default deferred policy the task is pushed on this member's
// deque and runs at a scheduling point (Taskwait, Barrier with help,
// region end) on whichever member claims it; under TaskImmediate it
// runs inline. The body receives the Ctx of the executing member.
func (tc *Ctx) Task(fn func(*Ctx)) {
	t := tc.m.team
	tc.m.st.CountSpawn()
	tc.m.ring.Record(tracez.KindSpawn, 0, 0)
	tk := tc.m.alloc()
	tk.fn = fn
	tk.node = &tk.own
	tk.own.parent = tc.m.cur
	tc.m.cur.children.Add(1)
	t.outstanding.Add(1)
	if t.opts.Policy == TaskImmediate {
		tc.m.execute(tc, tk)
		return
	}
	tc.m.dq.PushBottom(tk)
}

// Taskwait blocks until every child task created by the current task
// (or by this member's implicit region task) has completed — the
// OpenMP "taskwait" construct. While waiting, the member executes
// queued tasks, its own first.
func (tc *Ctx) Taskwait() {
	m := tc.m
	node := m.cur
	idle := 0
	for node.children.Load() > 0 {
		if tk := m.findTask(); tk != nil {
			idle = 0
			m.execute(tc, tk)
			continue
		}
		idle++
		if idle >= m.team.opts.SpinBeforeYield {
			runtime.Gosched()
			idle = 0
		}
	}
}
