package forkjoin

import "sync"

// This file implements OpenMP 4.0-style task dependencies — the
// `depend(in/out/inout)` clause of the paper's Table I (data/event-
// driven parallelism row for OpenMP). The paper cites the authors'
// own prototype of this feature (Ghosh et al., "A Prototype
// Implementation of OpenMP Task Dependency Support"); this is the
// same construction: a per-region dependency table keyed by the
// depend-object address, where each new task serializes against the
// last writer (for in) and against all readers plus the last writer
// (for out/inout).

// Deps declares a task's dependences. Objects are compared by
// identity (use pointers to the protected data, as OpenMP uses base
// addresses).
type Deps struct {
	// In lists objects the task reads: it must wait for the previous
	// writer of each.
	In []any
	// Out lists objects the task writes: it must wait for the
	// previous writer and all readers since — and becomes the new
	// last writer. (OpenMP's out and inout have identical ordering
	// semantics, so both are expressed here.)
	Out []any
}

// depEntry tracks the dependence history of one object within the
// enclosing task's domain.
type depEntry struct {
	lastWriter *depTask
	// readers since the last writer.
	readers []*depTask
}

// depTask is the dependency-graph node of one deferred task.
type depTask struct {
	fn        func(*Ctx)
	node      *taskNode
	dom       *depDomain
	waitCount int // unmet predecessors; guarded by the domain mutex
	succs     []*depTask
	done      bool
}

// depDomain is the dependency table of one generating task: sibling
// tasks with depend clauses are ordered against each other, matching
// OpenMP's rule that dependences connect sibling tasks only.
type depDomain struct {
	mu      sync.Mutex
	entries map[any]*depEntry
}

func newDepDomain() *depDomain {
	return &depDomain{entries: make(map[any]*depEntry)}
}

func (d *depDomain) entry(obj any) *depEntry {
	e, ok := d.entries[obj]
	if !ok {
		e = &depEntry{}
		d.entries[obj] = e
	}
	return e
}

// addEdge makes succ wait for pred unless pred already finished.
// Both locks are held by the caller (domain mutex).
func addEdge(pred, succ *depTask) {
	if pred == nil || pred.done || pred == succ {
		return
	}
	pred.succs = append(pred.succs, succ)
	succ.waitCount++
}

// TaskDepend creates an explicit task ordered by deps against its
// sibling tasks — the OpenMP `task depend(...)` construct. Tasks
// whose dependences are already satisfied are queued immediately;
// others start when their last predecessor finishes. Dependences
// relate tasks created by the same parent task (or the same implicit
// region task), as in OpenMP.
func (tc *Ctx) TaskDepend(deps Deps, fn func(*Ctx)) {
	t := tc.m.team
	tc.m.st.CountSpawn()
	node := &taskNode{parent: tc.m.cur}
	tc.m.cur.children.Add(1)
	t.outstanding.Add(1)

	dom := tc.m.cur.depDomain()
	dt := &depTask{fn: fn, node: node, dom: dom}

	dom.mu.Lock()
	for _, obj := range deps.In {
		e := dom.entry(obj)
		addEdge(e.lastWriter, dt)
		e.readers = append(e.readers, dt)
	}
	for _, obj := range deps.Out {
		e := dom.entry(obj)
		addEdge(e.lastWriter, dt)
		for _, r := range e.readers {
			addEdge(r, dt)
		}
		e.lastWriter = dt
		e.readers = nil
	}
	ready := dt.waitCount == 0
	dom.mu.Unlock()

	if ready {
		dt.enqueue(tc.m)
	}
}

// enqueue makes the dependency task schedulable by pushing it on m's
// deque. m must be the member whose goroutine is executing the call
// (the creator at first enqueue, or whichever member completed the
// last predecessor), since only a deque's owner may push to it.
func (dt *depTask) enqueue(m *member) {
	// The wrapper record comes from m's arena, but its node is the
	// depTask's standalone node (own stays unused): the dependency
	// graph references nodes beyond any single record's lifetime.
	tk := m.alloc()
	tk.node = dt.node
	tk.fn = func(tc *Ctx) {
		dt.fn(tc)
		// Completion: release successors under the domain lock.
		dt.dom.mu.Lock()
		dt.done = true
		var ready []*depTask
		for _, s := range dt.succs {
			s.waitCount--
			if s.waitCount == 0 {
				ready = append(ready, s)
			}
		}
		dt.succs = nil
		dt.dom.mu.Unlock()
		for _, s := range ready {
			s.enqueue(tc.m)
		}
	}
	m.dq.PushBottom(tk)
}

// depDomain lazily creates the dependency table attached to a task
// node.
func (n *taskNode) depDomain() *depDomain {
	n.depOnce.Do(func() { n.deps = newDepDomain() })
	return n.deps
}
