package metrics

import (
	"math"
	"sync/atomic"

	"threading/internal/sched"
)

// padded is one counter slot padded out to a cache line, the same
// idiom as the worksteal pool's counter block: adjacent shards never
// share a line, so concurrent writers on different shards don't
// invalidate each other's caches.
type padded struct {
	v atomic.Int64
	_ [sched.CacheLine - 8]byte
}

// ShardedCounter is a counter split across padded per-shard slots —
// the fast path for counts bumped concurrently from many workers or
// request goroutines. Writers pick a shard (worker ID, or any cheap
// spreading index such as a request ID) and Add there; readers Value
// sums the shards. Reads are O(shards) and slightly stale under
// concurrent writes, which is fine for scrape-time exposition.
type ShardedCounter struct {
	shards []padded
}

// NewShardedCounter returns a counter with n padded shards (minimum 1).
func NewShardedCounter(n int) *ShardedCounter {
	if n < 1 {
		n = 1
	}
	return &ShardedCounter{shards: make([]padded, n)}
}

// Add increments shard (i mod shards) by n. Any non-negative i works;
// callers pass their worker index or another cheap spreading value.
func (c *ShardedCounter) Add(i int, n int64) {
	c.shards[i%len(c.shards)].v.Add(n)
}

// Inc increments shard (i mod shards) by one.
func (c *ShardedCounter) Inc(i int) { c.Add(i, 1) }

// Value returns the sum across shards.
func (c *ShardedCounter) Value() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Shards returns the shard count.
func (c *ShardedCounter) Shards() int { return len(c.shards) }

// floatBits and floatFromBits convert gauge values to and from their
// atomic storage representation.
func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
