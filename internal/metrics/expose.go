package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"threading/internal/stats"
)

// withLE merges an le="..." label into an already-rendered label
// block (histogram bucket lines carry the series labels plus le).
func withLE(suffix, le string) string {
	if suffix == "" {
		return `{le="` + le + `"}`
	}
	return suffix[:len(suffix)-1] + `,le="` + le + `"}`
}

// counterValue reads a counter-kind series as an int64.
func (s *series) counterValue() int64 {
	switch {
	case s.c != nil:
		return s.c.Value()
	case s.cf != nil:
		return s.cf()
	case s.sc != nil:
		return s.sc.Value()
	}
	return 0
}

// WritePrometheus writes every registered family in Prometheus text
// exposition format 0.0.4 (# HELP / # TYPE headers, one line per
// series; histograms as cumulative le buckets plus _sum and _count).
// Scrape collectors run first, so derived gauges are fresh.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshot() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.k); err != nil {
			return err
		}
		for _, suffix := range f.order {
			s := f.series[suffix]
			var err error
			switch f.k {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, suffix, s.counterValue())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, suffix,
					strconv.FormatFloat(s.value(), 'g', -1, 64))
			case kindHistogram:
				err = writeHistogram(w, f.name, suffix, s.h)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram emits the cumulative bucket lines for one histogram
// series. Only buckets with observations get a line (plus the
// mandatory +Inf), so idle histograms stay three lines.
func writeHistogram(w io.Writer, name, suffix string, h *Histogram) error {
	snap := h.snapshot()
	var cum int64
	// The last bucket folds into the mandatory +Inf line below (its
	// upper bound is already MaxInt64), so the loop stops short of it.
	for i := 0; i < stats.NumBuckets-1; i++ {
		c := snap.counts[i]
		if c == 0 {
			continue
		}
		cum += c
		_, hi := stats.BucketBounds(i)
		le := strconv.FormatInt(hi, 10)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(suffix, le), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n%s_sum%s %d\n%s_count%s %d\n",
		name, withLE(suffix, "+Inf"), snap.n,
		name, suffix, snap.sum,
		name, suffix, snap.n)
	return err
}

// Gather flattens the registry into name{labels} -> value. Counters
// and gauges contribute one entry; histograms contribute _count,
// _sum, and quantile-bound entries (_p50, _p90, _p99), which is the
// form cmd/loadsweep and benchgate consume between load points.
func (r *Registry) Gather() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range r.snapshot() {
		for _, suffix := range f.order {
			s := f.series[suffix]
			switch f.k {
			case kindCounter:
				out[f.name+suffix] = float64(s.counterValue())
			case kindGauge:
				out[f.name+suffix] = s.value()
			case kindHistogram:
				snap := s.h.snapshot()
				out[f.name+"_count"+suffix] = float64(snap.n)
				out[f.name+"_sum"+suffix] = float64(snap.sum)
				out[f.name+"_p50"+suffix] = float64(snap.quantile(0.50))
				out[f.name+"_p90"+suffix] = float64(snap.quantile(0.90))
				out[f.name+"_p99"+suffix] = float64(snap.quantile(0.99))
			}
		}
	}
	return out
}

// WriteJSON writes the Gather map as indented JSON (keys sorted by
// encoding/json) — the expvar-style exposition behind
// /metrics?format=json.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Gather())
}
