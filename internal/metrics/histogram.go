package metrics

import (
	"math"
	"sync/atomic"

	"threading/internal/stats"
)

// Histogram is the concurrent counterpart of stats.LogHist: the same
// 65-bucket log-2 geometry (stats.BucketOf / stats.BucketBounds), but
// every bucket is an atomic counter so many goroutines can Observe
// without locks. Observe is three atomic adds and no allocation —
// cheap enough for the per-request latency path.
//
// The zero Histogram is ready; obtain registered histograms from
// Registry.Histogram.
type Histogram struct {
	counts [stats.NumBuckets]atomic.Int64
	n      atomic.Int64
	sum    atomic.Int64
}

// Observe records one value (negative values clamp to zero, matching
// LogHist.Add).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[stats.BucketOf(v)].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
}

// N returns the number of observed values.
func (h *Histogram) N() int64 { return h.n.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// histSnapshot is a point-in-time copy of the bucket counts. The copy
// is not a consistent cut (observers keep writing), so n is derived
// from the copied buckets rather than the atomic total — that keeps
// the cumulative bucket lines and the _count line exposition emits
// mutually consistent, which Prometheus requires.
type histSnapshot struct {
	counts [stats.NumBuckets]int64
	n      int64
	sum    int64
}

func (h *Histogram) snapshot() histSnapshot {
	var s histSnapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		s.counts[i] = c
		s.n += c
	}
	s.sum = h.sum.Load()
	return s
}

// quantile mirrors stats.LogHist.Quantile on a snapshot: the upper
// edge of the bucket where the cumulative count crosses q*N.
func (s *histSnapshot) quantile(q float64) int64 {
	if s.n == 0 {
		return 0
	}
	q = math.Min(math.Max(q, 0), 1)
	target := int64(q * float64(s.n))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.counts {
		cum += c
		if cum >= target {
			_, hi := stats.BucketBounds(i)
			return hi
		}
	}
	_, hi := stats.BucketBounds(len(s.counts) - 1)
	return hi
}
