package metrics

import (
	"testing"

	"threading/internal/tracez"
)

// fakeSched is an injectable SchedTarget: the test sets the exact
// pending/parked/workers view each tick observes.
type fakeSched struct {
	pending int64
	parked  int
	workers int
}

func (f *fakeSched) PendingWork() int64 { return f.pending }
func (f *fakeSched) ParkedWorkers() int { return f.parked }
func (f *fakeSched) Workers() int       { return f.workers }

func stallEvents(tr *tracez.Tracer) int {
	n := 0
	snap := tr.Snapshot()
	if snap == nil {
		return 0
	}
	for _, wt := range snap.Workers {
		for _, e := range wt.Events {
			if e.Kind == tracez.KindStall {
				n++
			}
		}
	}
	return n
}

func TestWatchdogInjectedStall(t *testing.T) {
	r := New()
	tr := tracez.New(64)
	target := &fakeSched{pending: 5, parked: 2, workers: 2}
	w := NewWatchdog(r, "stalls_total", target, tr.Ring(0),
		WatchdogConfig{FullThreshold: 3, PartialThreshold: 5})

	// Two anomalous ticks: under threshold, nothing trips.
	w.tick()
	w.tick()
	if got := w.full.Value(); got != 0 {
		t.Fatalf("tripped after 2 ticks (threshold 3): %d", got)
	}
	// Third consecutive tick trips once — metric and trace event.
	w.tick()
	if got := w.full.Value(); got != 1 {
		t.Fatalf("all-parked stalls = %d after threshold, want 1", got)
	}
	if got := stallEvents(tr); got != 1 {
		t.Fatalf("stall trace events = %d, want 1", got)
	}
	// Still stalled: same episode, no double count.
	w.tick()
	w.tick()
	if got := w.full.Value(); got != 1 {
		t.Fatalf("one episode counted %d times", got)
	}
	// Clear, then stall again: a new episode counts.
	target.pending = 0
	w.tick()
	target.pending = 5
	w.tick()
	w.tick()
	w.tick()
	if got := w.full.Value(); got != 2 {
		t.Fatalf("second episode not counted: %d", got)
	}
}

func TestWatchdogPartialPark(t *testing.T) {
	r := New()
	target := &fakeSched{pending: 1, parked: 1, workers: 4}
	w := NewWatchdog(r, "stalls_total", target, nil,
		WatchdogConfig{FullThreshold: 3, PartialThreshold: 5})
	for i := 0; i < 4; i++ {
		w.tick()
	}
	if got := w.partial.Value(); got != 0 {
		t.Fatalf("partial tripped early: %d", got)
	}
	w.tick()
	if got := w.partial.Value(); got != 1 {
		t.Fatalf("partial stalls = %d after threshold, want 1", got)
	}
	if got := w.full.Value(); got != 0 {
		t.Fatalf("full stall counted on a partial park: %d", got)
	}
}

func TestWatchdogQuietOnHealthySchedules(t *testing.T) {
	r := New()
	target := &fakeSched{workers: 4}
	w := NewWatchdog(r, "stalls_total", target, nil,
		WatchdogConfig{FullThreshold: 1, PartialThreshold: 1})
	states := []fakeSched{
		{pending: 0, parked: 4, workers: 4}, // idle pool, everyone parked
		{pending: 9, parked: 0, workers: 4}, // busy pool, nobody parked
		{pending: 0, parked: 0, workers: 4},
	}
	for _, st := range states {
		*target = st
		for i := 0; i < 10; i++ {
			w.tick()
		}
	}
	if full, partial := w.full.Value(), w.partial.Value(); full != 0 || partial != 0 {
		t.Fatalf("healthy states tripped watchdog: full=%d partial=%d", full, partial)
	}
}

// An interval streak must be consecutive: a healthy tick in between
// resets it.
func TestWatchdogStreakResets(t *testing.T) {
	r := New()
	target := &fakeSched{pending: 5, parked: 2, workers: 2}
	w := NewWatchdog(r, "stalls_total", target, nil,
		WatchdogConfig{FullThreshold: 3, PartialThreshold: 5})
	w.tick()
	w.tick()
	target.parked = 0 // a worker woke: healthy
	w.tick()
	target.parked = 2
	w.tick()
	w.tick()
	if got := w.full.Value(); got != 0 {
		t.Fatalf("non-consecutive anomaly ticks tripped the watchdog: %d", got)
	}
}
