package metrics

import (
	"sync"
	"time"
)

// DefaultInterval is the sampling period pollers and watchdogs use
// when the caller passes zero — frequent enough that utilization and
// stall detection track load transients, cheap enough (one snapshot
// walk) to leave running for the life of a server.
const DefaultInterval = 250 * time.Millisecond

// Poller runs fn on a fixed interval in its own goroutine — the
// periodic half of the telemetry layer, driving the samplers that
// turn monotone counters (sched.Snapshot, tracez busy time) into
// rates and utilizations. Samplers that only need freshness at scrape
// time should use Registry.OnScrape instead; a Poller is for values
// that need a fixed Δt to be meaningful.
type Poller struct {
	interval time.Duration
	fn       func()

	once sync.Once
	stop chan struct{}
	done chan struct{}
}

// NewPoller returns an unstarted poller; a zero or negative interval
// selects DefaultInterval.
func NewPoller(interval time.Duration, fn func()) *Poller {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Poller{
		interval: interval,
		fn:       fn,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the polling goroutine. Calling Start twice is a
// no-op.
func (p *Poller) Start() {
	p.once.Do(func() {
		go p.run()
	})
}

func (p *Poller) run() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.fn()
		}
	}
}

// Stop halts the poller and waits for the goroutine to exit. Safe to
// call more than once; a Stop before Start just marks the poller
// finished.
func (p *Poller) Stop() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	p.once.Do(func() { close(p.done) }) // never started: nothing to wait for
	<-p.done
}
