// Package metrics is the repository's stdlib-only continuous-telemetry
// layer: a registry of atomic counters, gauges, and log-bucketed
// histograms, exposed as Prometheus text format and expvar-style JSON.
// Where internal/sched.Stats counts what a runtime did and
// internal/tracez records when, this package makes both observable
// *while the process is running* — the live view internal/serve mounts
// at /metrics.
//
// Every update path is a single atomic operation on pre-registered
// state: Counter.Add, Gauge.Set, and Histogram.Observe allocate
// nothing (pinned by allocation tests), so instrumentation is cheap
// enough for request and scheduler hot paths. Contended counters have
// a padded per-shard fast path (ShardedCounter), mirroring the
// sched.Shard idiom, so concurrent writers do not false-share one
// cache line. Values that already exist as atomics elsewhere are
// exposed through fn-backed registrations (CounterFunc, GaugeFunc)
// read only at scrape time, so mirroring them costs the hot path
// nothing at all.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// kind tags a metric family's type; one family holds one kind.
type kind uint8

const (
	kindCounter kind = iota + 1
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing int64. The zero value is
// ready; obtain registered counters from Registry.Counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float64 (stored as atomic bits, so Set and
// Value are single atomic operations).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return floatFromBits(g.bits.Load()) }

// series is one (family, labels) instance. Exactly one of the value
// fields is set, fixed at registration.
type series struct {
	suffix string // rendered label block, e.g. `{handler="run"}`, or ""

	c  *Counter
	g  *Gauge
	cf func() int64
	gf func() float64
	h  *Histogram
	sc *ShardedCounter
}

// value reads the series as a float64; histograms are excluded (they
// expose through their buckets).
func (s *series) value() float64 {
	switch {
	case s.c != nil:
		return float64(s.c.Value())
	case s.cf != nil:
		return float64(s.cf())
	case s.sc != nil:
		return float64(s.sc.Value())
	case s.g != nil:
		return s.g.Value()
	case s.gf != nil:
		return s.gf()
	}
	return 0
}

// family is one named metric with its help text, type, and series.
type family struct {
	name string
	help string
	k    kind

	order  []string // label-suffix registration order
	series map[string]*series
}

// Registry holds metric families and scrape-time collectors. Create
// one with New; all methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	order      []string
	families   map[string]*family
	collectors []func()
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// OnScrape registers fn to run at the start of every exposition
// (WritePrometheus, WriteJSON, Gather) — the hook samplers use to
// refresh gauges that are derived rather than maintained inline.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// labelSuffix renders labels as a Prometheus label block. Labels are
// sorted by key so equivalent label sets register one series.
func labelSuffix(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// seriesFor returns the series for (name, labels), creating family
// and series as needed. Registration is idempotent: the same name and
// labels return the same series. Registering one name under two kinds
// panics — that is a programming error, not a runtime condition.
func (r *Registry) seriesFor(name, help string, k kind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, k: k, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.k != k {
		panic(fmt.Sprintf("metrics: %s registered as %s, re-registered as %s", name, f.k, k))
	}
	suffix := labelSuffix(labels)
	s, ok := f.series[suffix]
	if !ok {
		s = &series{suffix: suffix}
		f.series[suffix] = s
		f.order = append(f.order, suffix)
	}
	return s
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.seriesFor(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.c == nil {
		if s.cf != nil || s.sc != nil {
			panic("metrics: " + name + " already registered as a fn-backed or sharded counter")
		}
		s.c = &Counter{}
	}
	return s.c
}

// CounterFunc registers a counter series whose value is read from fn
// at scrape time — the zero-hot-path-cost mirror for counts that
// already live in an atomic elsewhere. Re-registration replaces fn.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	s := r.seriesFor(name, help, kindCounter, labels)
	r.mu.Lock()
	s.cf = fn
	r.mu.Unlock()
}

// ShardedCounter registers (or returns the existing) sharded counter
// series with the given shard count (see NewShardedCounter).
func (r *Registry) ShardedCounter(name, help string, shards int, labels ...Label) *ShardedCounter {
	s := r.seriesFor(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.sc == nil {
		if s.c != nil || s.cf != nil {
			panic("metrics: " + name + " already registered as a plain or fn-backed counter")
		}
		s.sc = NewShardedCounter(shards)
	}
	return s.sc
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.seriesFor(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.g == nil {
		if s.gf != nil {
			panic("metrics: " + name + " already registered as a fn-backed gauge")
		}
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge series whose value is read from fn at
// scrape time. Re-registration replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.seriesFor(name, help, kindGauge, labels)
	r.mu.Lock()
	s.gf = fn
	r.mu.Unlock()
}

// Histogram registers (or returns the existing) histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	s := r.seriesFor(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		s.h = &Histogram{}
	}
	return s.h
}

// snapshot returns the families in registration order after running
// the scrape collectors. Collectors run outside the registry lock so
// they may register new series (the poller discovers workers lazily).
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	r.mu.Unlock()
	for _, fn := range collectors {
		fn()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.families[name])
	}
	return out
}
