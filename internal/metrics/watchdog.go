package metrics

import (
	"time"

	"threading/internal/tracez"
)

// SchedTarget is the view of a scheduler the stall watchdog observes.
// worksteal.Pool and shard.Resolver satisfy it; forkjoin.Team does
// not (its members spin via Gosched between regions rather than
// parking), so the watchdog is a work-stealing-family facility —
// callers gate on a type assertion.
type SchedTarget interface {
	// PendingWork returns tasks admitted but not yet completed.
	PendingWork() int64
	// ParkedWorkers returns workers currently blocked in park.
	ParkedWorkers() int
	// Workers returns the worker count.
	Workers() int
}

// WatchdogConfig tunes stall detection. Thresholds are consecutive
// observation ticks, not wall time, so slowing the interval slows
// detection proportionally rather than causing false trips.
type WatchdogConfig struct {
	// Interval between observations (DefaultInterval when zero).
	Interval time.Duration
	// FullThreshold is the consecutive-tick count of "work pending,
	// every worker parked" before tripping — the lost-wakeup shape.
	// Default 3.
	FullThreshold int
	// PartialThreshold is the consecutive-tick count of "work pending,
	// some workers parked" before tripping — the long-parked-with-
	// nonempty-deque shape. Legitimately occurs in bursts (a task was
	// just submitted, a parked worker hasn't woken yet), so the
	// default is much longer: 40 ticks (10s at the default interval).
	PartialThreshold int
}

// Watchdog periodically inspects a SchedTarget for stall anomalies
// and, on detection, bumps a stall counter and records a
// tracez.KindStall instant event — so a stall is visible both on
// /metrics and in the trace timeline next to the scheduler events
// that led to it. A tripped condition must fully clear (no pending
// work, or no parked workers) before it can trip again, so one stuck
// episode counts once.
type Watchdog struct {
	target SchedTarget
	ring   *tracez.Ring
	cfg    WatchdogConfig

	full    *Counter
	partial *Counter

	fullStreak     int
	partialStreak  int
	fullTripped    bool
	partialTripped bool

	poller *Poller
}

// NewWatchdog builds a watchdog over target, registering its stall
// counters on r under name (series per anomaly kind). ring may be nil
// (no trace events, metric only). The watchdog is unstarted.
func NewWatchdog(r *Registry, name string, target SchedTarget, ring *tracez.Ring, cfg WatchdogConfig) *Watchdog {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.FullThreshold <= 0 {
		cfg.FullThreshold = 3
	}
	if cfg.PartialThreshold <= 0 {
		cfg.PartialThreshold = 40
	}
	help := "Stall anomalies detected by the scheduler watchdog."
	w := &Watchdog{
		target:  target,
		ring:    ring,
		cfg:     cfg,
		full:    r.Counter(name, help, Label{"kind", "all-parked"}),
		partial: r.Counter(name, help, Label{"kind", "partial-park"}),
	}
	w.poller = NewPoller(cfg.Interval, w.tick)
	return w
}

// Start launches the observation goroutine.
func (w *Watchdog) Start() { w.poller.Start() }

// Stop halts it and waits for exit.
func (w *Watchdog) Stop() { w.poller.Stop() }

// tick is one observation. It is the whole detection algorithm, kept
// goroutine-free so tests drive it directly with a fake target.
func (w *Watchdog) tick() {
	pending := w.target.PendingWork()
	parked := w.target.ParkedWorkers()
	workers := w.target.Workers()

	// Anomaly 1: work is pending yet every worker is parked. With a
	// correct unpark path this state is transient (a submit wakes a
	// worker within one park/unpark round trip); sustained across
	// FullThreshold ticks it means a lost wakeup.
	if pending > 0 && workers > 0 && parked >= workers {
		w.fullStreak++
		if w.fullStreak >= w.cfg.FullThreshold && !w.fullTripped {
			w.fullTripped = true
			w.full.Inc()
			w.record(pending, parked)
		}
	} else {
		w.fullStreak = 0
		if pending == 0 || parked == 0 {
			w.fullTripped = false
		}
	}

	// Anomaly 2: some workers stay parked while work is pending —
	// fine briefly (wakeups are racy by design), suspicious when
	// sustained: it usually means the unpark fan-out undercounts or
	// a deque owner is blocked in user code while its deque is full.
	if pending > 0 && parked > 0 && parked < workers {
		w.partialStreak++
		if w.partialStreak >= w.cfg.PartialThreshold && !w.partialTripped {
			w.partialTripped = true
			w.partial.Inc()
			w.record(pending, parked)
		}
	} else {
		w.partialStreak = 0
		if pending == 0 || parked == 0 {
			w.partialTripped = false
		}
	}
}

func (w *Watchdog) record(pending int64, parked int) {
	w.ring.Record(tracez.KindStall, pending, int64(parked))
}
