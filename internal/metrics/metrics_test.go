package metrics

import (
	"regexp"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "help")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := New()
	a := r.Counter("c_total", "help", Label{"k", "v"})
	b := r.Counter("c_total", "help", Label{"k", "v"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("c_total", "help", Label{"k", "w"})
	if a == other {
		t.Fatal("distinct labels returned the same counter")
	}
	// Label order must not matter.
	x := r.Gauge("g", "help", Label{"a", "1"}, Label{"b", "2"})
	y := r.Gauge("g", "help", Label{"b", "2"}, Label{"a", "1"})
	if x != y {
		t.Fatal("label order produced distinct series")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "help")
}

func TestShardedCounter(t *testing.T) {
	c := NewShardedCounter(4)
	for i := 0; i < 100; i++ {
		c.Inc(i)
	}
	c.Add(2, 10)
	if got := c.Value(); got != 110 {
		t.Fatalf("sharded sum = %d, want 110", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.N() != 1000 {
		t.Fatalf("N = %d, want 1000", h.N())
	}
	snap := h.snapshot()
	// Log buckets: the p50 upper bound lands within one power of two
	// of the true median.
	if q := snap.quantile(0.5); q < 500 || q > 1024 {
		t.Fatalf("p50 bound = %d, want within (500, 1024]", q)
	}
	if q := snap.quantile(1); q < 1000 {
		t.Fatalf("p100 bound = %d, want >= 1000", q)
	}
}

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9]+(\.[0-9eE+-]+)?$`)

func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Counter("req_total", "requests", Label{"code", "200"}).Add(7)
	r.Gauge("depth", "queue depth").Set(3)
	h := r.Histogram("lat_ns", "latency", Label{"handler", "run"})
	h.Observe(3) // bucket le=4
	h.Observe(5) // bucket le=8
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE req_total counter",
		`req_total{code="200"} 7`,
		"# TYPE depth gauge",
		"depth 3",
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{handler="run",le="4"} 1`,
		`lat_ns_bucket{handler="run",le="8"} 3`,
		`lat_ns_bucket{handler="run",le="+Inf"} 3`,
		`lat_ns_sum{handler="run"} 13`,
		`lat_ns_count{handler="run"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid sample line %q", line)
		}
	}
}

func TestGatherAndScrapeHook(t *testing.T) {
	r := New()
	r.Counter("c_total", "help").Add(2)
	calls := 0
	r.OnScrape(func() { calls++ })
	h := r.Histogram("lat_ns", "help")
	h.Observe(100)

	m := r.Gather()
	if calls != 1 {
		t.Fatalf("scrape hook ran %d times, want 1", calls)
	}
	if m["c_total"] != 2 {
		t.Errorf("c_total = %v, want 2", m["c_total"])
	}
	if m["lat_ns_count"] != 1 {
		t.Errorf("lat_ns_count = %v, want 1", m["lat_ns_count"])
	}
	if m["lat_ns_p50"] < 100 {
		t.Errorf("lat_ns_p50 = %v, want >= 100", m["lat_ns_p50"])
	}
}

// The hot-path contract: metric updates allocate nothing. A regression
// here silently taxes every request and worker loop, so it's pinned.
func TestUpdatesZeroAlloc(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "help")
	g := r.Gauge("g", "help")
	h := r.Histogram("h_ns", "help")
	sc := r.ShardedCounter("s_total", "help", 8)
	for name, fn := range map[string]func(){
		"counter.Add":       func() { c.Add(1) },
		"gauge.Set":         func() { g.Set(1.5) },
		"histogram.Observe": func() { h.Observe(12345) },
		"sharded.Inc":       func() { sc.Inc(3) },
	} {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", name, allocs)
		}
	}
}
