package stats

import (
	"bytes"
	"strings"
	"testing"
)

func TestLogHistBuckets(t *testing.T) {
	var h LogHist
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1000, -5} {
		h.Add(v)
	}
	if h.N() != 9 {
		t.Fatalf("N = %d, want 9", h.N())
	}
	if h.Min() != 0 || h.Max() != 1000 {
		t.Fatalf("min/max = %d/%d, want 0/1000", h.Min(), h.Max())
	}
	type bucket struct{ lo, hi, count int64 }
	var got []bucket
	h.Buckets(func(lo, hi, c int64) { got = append(got, bucket{lo, hi, c}) })
	want := []bucket{
		{0, 1, 2},      // 0, -5 (clamped)
		{1, 2, 1},      // 1
		{2, 4, 2},      // 2, 3
		{4, 8, 2},      // 4, 7
		{8, 16, 1},     // 8
		{512, 1024, 1}, // 1000
	}
	if len(got) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestLogHistPowersOfTwoLandLow(t *testing.T) {
	// An exact power of two must open its bucket: [2^(i-1), 2^i) gets
	// v = 2^(i-1), not v = 2^i.
	var h LogHist
	h.Add(64)
	h.Buckets(func(lo, hi, c int64) {
		if lo != 64 || hi != 128 {
			t.Fatalf("64 landed in [%d, %d), want [64, 128)", lo, hi)
		}
	})
}

func TestLogHistQuantile(t *testing.T) {
	var h LogHist
	for i := 0; i < 90; i++ {
		h.Add(10) // bucket [8, 16)
	}
	for i := 0; i < 10; i++ {
		h.Add(1000) // bucket [512, 1024)
	}
	if q := h.Quantile(0.5); q != 16 {
		t.Fatalf("p50 = %d, want 16 (upper edge of the [8,16) bucket)", q)
	}
	if q := h.Quantile(0.99); q != 1024 {
		t.Fatalf("p99 = %d, want 1024", q)
	}
	var empty LogHist
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
}

func TestLogHistMean(t *testing.T) {
	var h LogHist
	h.Add(10)
	h.Add(30)
	if m := h.Mean(); m != 20 {
		t.Fatalf("mean = %v, want 20", m)
	}
}

func TestLogHistRender(t *testing.T) {
	var h LogHist
	for i := 0; i < 8; i++ {
		h.Add(100)
	}
	h.Add(5)
	var buf bytes.Buffer
	h.Render(&buf, 20, nil)
	out := buf.String()
	if !strings.Contains(out, "#") {
		t.Fatalf("render has no bars:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Fatalf("render has %d lines, want 2 non-empty buckets:\n%s", lines, out)
	}
	// The single-count bucket must still draw a visible bar.
	var empty LogHist
	buf.Reset()
	empty.Render(&buf, 20, nil)
	if !strings.Contains(buf.String(), "(empty)") {
		t.Fatalf("empty render = %q", buf.String())
	}
}
