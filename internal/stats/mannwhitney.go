package stats

import (
	"math"
	"sort"
)

// UTest is the result of a two-sided Mann-Whitney U test: the
// rank-based significance test the benchmark gate uses to decide
// whether two sample sets of timings come from the same distribution.
// It makes no normality assumption, which matters for wall-clock
// samples (long right tails from preemption and frequency shifts).
type UTest struct {
	// N1, N2 are the sample sizes.
	N1, N2 int
	// U is the Mann-Whitney U statistic for the first sample: the
	// number of (x, y) pairs with x > y, counting ties as 1/2.
	U float64
	// P is the two-sided p-value: the probability of a U at least
	// this extreme when both samples come from the same distribution.
	P float64
	// Exact reports whether P came from the exact permutation
	// distribution (small, tie-free samples) or from the normal
	// approximation with tie correction and continuity correction.
	Exact bool
}

// exactLimit is the largest per-sample size for which the exact U
// distribution is enumerated. Above it (or in the presence of ties)
// the normal approximation is used; at benchmark rep counts (3-20)
// tie-free samples always take the exact path.
const exactLimit = 25

// MannWhitneyU runs a two-sided Mann-Whitney U test on the two sample
// sets. Degenerate inputs (an empty sample, or all values identical
// across both sets) yield P = 1: no evidence of a difference.
func MannWhitneyU(x, y []float64) UTest {
	n1, n2 := len(x), len(y)
	t := UTest{N1: n1, N2: n2, P: 1}
	if n1 == 0 || n2 == 0 {
		return t
	}

	// Midranks over the pooled sample.
	type val struct {
		v     float64
		first bool // from x
	}
	pool := make([]val, 0, n1+n2)
	for _, v := range x {
		pool = append(pool, val{v, true})
	}
	for _, v := range y {
		pool = append(pool, val{v, false})
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].v < pool[j].v })

	n := n1 + n2
	ranks := make([]float64, n)
	ties := false
	var tieCorr float64 // sum over tie groups of t^3 - t
	for i := 0; i < n; {
		j := i
		for j < n && pool[j].v == pool[i].v {
			j++
		}
		r := float64(i+j+1) / 2 // midrank, 1-based
		for k := i; k < j; k++ {
			ranks[k] = r
		}
		if g := j - i; g > 1 {
			ties = true
			tieCorr += float64(g*g*g - g)
		}
		i = j
	}

	var r1 float64
	for i, p := range pool {
		if p.first {
			r1 += ranks[i]
		}
	}
	u1 := r1 - float64(n1*(n1+1))/2
	u2 := float64(n1*n2) - u1
	t.U = u1

	if !ties && n1 <= exactLimit && n2 <= exactLimit {
		t.Exact = true
		t.P = exactP(n1, n2, math.Min(u1, u2))
		return t
	}

	// Normal approximation with tie correction and continuity
	// correction.
	mu := float64(n1*n2) / 2
	sigma2 := float64(n1*n2) / 12 * (float64(n+1) - tieCorr/float64(n*(n-1)))
	if sigma2 <= 0 {
		// Every pooled value identical: no information.
		t.P = 1
		return t
	}
	z := (math.Abs(u1-mu) - 0.5) / math.Sqrt(sigma2)
	if z < 0 {
		z = 0
	}
	t.P = math.Erfc(z / math.Sqrt2)
	return t
}

// exactP returns the exact two-sided p-value 2*P(U <= umin) under the
// null, clamped to 1. The U distribution is built with the standard
// recurrence on the largest pooled element: if it belongs to the
// first sample it dominates all n2 of the second, contributing n2 to
// U; otherwise U is unchanged.
//
//	f(n1, n2, u) = f(n1-1, n2, u-n2) + f(n1, n2-1, u)
//
// Counts stay below 2^53 for the sizes exactLimit admits, so float64
// arithmetic is exact.
func exactP(n1, n2 int, umin float64) float64 {
	k := int(umin) // tie-free U is integral
	maxU := n1 * n2
	// f[j][u] for the current i (number of first-sample elements).
	f := make([][]float64, n2+1)
	for j := range f {
		f[j] = make([]float64, maxU+1)
		f[j][0] = 1 // i = 0: only u = 0
	}
	for i := 1; i <= n1; i++ {
		for j := 0; j <= n2; j++ {
			for u := maxU; u >= 0; u-- {
				var w float64
				if u >= j {
					w = f[j][u-j] // largest element from the first sample: beats j
				}
				if j > 0 {
					w += f[j-1][u]
				}
				f[j][u] = w
			}
		}
	}
	var tail, total float64
	for u, w := range f[n2] {
		total += w
		if u <= k {
			tail += w
		}
	}
	p := 2 * tail / total
	if p > 1 {
		p = 1
	}
	return p
}

// MedianCI returns a distribution-free confidence interval for the
// median at confidence level conf (e.g. 0.95), built from order
// statistics: the widest symmetric pair (x_(r), x_(n+1-r)) whose
// binomial coverage 1 - 2*BinCDF(r-1; n, 1/2) reaches conf. When no
// interior pair achieves the requested coverage (n < 6 at 0.95) the
// full sample range is returned. The input need not be sorted; an
// empty input yields (0, 0).
func MedianCI(ds []float64, conf float64) (lo, hi float64) {
	n := len(ds)
	if n == 0 {
		return 0, 0
	}
	sorted := make([]float64, n)
	copy(sorted, ds)
	sort.Float64s(sorted)
	if n == 1 {
		return sorted[0], sorted[0]
	}
	best := 1 // 1-based r; r = 1 is the full range
	for r := 2; r <= n/2; r++ {
		if 1-2*binomCDF(r-1, n) >= conf {
			best = r
		} else {
			break
		}
	}
	return sorted[best-1], sorted[n-best]
}

// binomCDF is P(X <= k) for X ~ Binomial(n, 1/2).
func binomCDF(k, n int) float64 {
	if k < 0 {
		return 0
	}
	var sum float64
	c := 1.0 // C(n, 0)
	for i := 0; i <= k; i++ {
		sum += c
		c = c * float64(n-i) / float64(i+1)
	}
	return sum / math.Pow(2, float64(n))
}
