// Package stats provides the small sample statistics the benchmark
// harness reports: min, max, mean, median and standard deviation over
// repeated timings, plus speedup calculations.
package stats

import (
	"math"
	"sort"
	"time"
)

// Sample summarizes a set of duration measurements.
type Sample struct {
	N      int
	Min    time.Duration
	Max    time.Duration
	Mean   time.Duration
	Median time.Duration
	Stddev time.Duration
}

// Summarize computes a Sample from ds. An empty input yields a zero
// Sample.
func Summarize(ds []time.Duration) Sample {
	if len(ds) == 0 {
		return Sample{}
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var sum float64
	for _, d := range sorted {
		sum += float64(d)
	}
	mean := sum / float64(len(sorted))

	var sq float64
	for _, d := range sorted {
		diff := float64(d) - mean
		sq += diff * diff
	}
	std := 0.0
	if len(sorted) > 1 {
		std = math.Sqrt(sq / float64(len(sorted)-1))
	}

	mid := len(sorted) / 2
	median := sorted[mid]
	if len(sorted)%2 == 0 {
		median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return Sample{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   time.Duration(mean),
		Median: median,
		Stddev: time.Duration(std),
	}
}

// Speedup returns base/measured — how many times faster measured is
// than base. A non-positive measured duration yields 0.
func Speedup(base, measured time.Duration) float64 {
	if measured <= 0 {
		return 0
	}
	return float64(base) / float64(measured)
}

// Efficiency returns parallel efficiency: Speedup / threads.
func Efficiency(base, measured time.Duration, threads int) float64 {
	if threads <= 0 {
		return 0
	}
	return Speedup(base, measured) / float64(threads)
}
