// Package stats provides the small sample statistics the benchmark
// harness reports: min, max, mean, median and standard deviation over
// repeated timings, plus speedup calculations.
package stats

import (
	"math"
	"sort"
	"time"
)

// Sample summarizes a set of duration measurements.
type Sample struct {
	N      int
	Min    time.Duration
	Max    time.Duration
	Mean   time.Duration
	Median time.Duration
	Stddev time.Duration
}

// Summarize computes a Sample from ds. An empty input yields a zero
// Sample.
func Summarize(ds []time.Duration) Sample {
	if len(ds) == 0 {
		return Sample{}
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var sum float64
	for _, d := range sorted {
		sum += float64(d)
	}
	mean := sum / float64(len(sorted))

	var sq float64
	for _, d := range sorted {
		diff := float64(d) - mean
		sq += diff * diff
	}
	std := 0.0
	if len(sorted) > 1 {
		std = math.Sqrt(sq / float64(len(sorted)-1))
	}

	mid := len(sorted) / 2
	median := sorted[mid]
	if len(sorted)%2 == 0 {
		median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return Sample{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   time.Duration(mean),
		Median: median,
		Stddev: time.Duration(std),
	}
}

// PercentileNs returns the q-quantile (0 <= q <= 1) of ns by linear
// interpolation between order statistics (the R-7 / NumPy "linear"
// definition): rank h = q*(n-1) selects sorted[floor(h)] blended with
// sorted[ceil(h)] by the fractional part. The input is not modified.
// An empty input yields 0; q is clamped to [0, 1].
//
// Latency gating reads tails through this: p50/p99/p999 are
// PercentileNs(samples, 0.50/0.99/0.999). With n samples the largest
// observation dominates every quantile past (n-1)/n, so a p999 from a
// few hundred requests is close to the max — report it, but bound
// invariants on p99.
func PercentileNs(ns []int64, q float64) int64 {
	if len(ns) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]int64, len(ns))
	copy(sorted, ns)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	h := q * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return sorted[lo]
	}
	frac := h - float64(lo)
	return sorted[lo] + int64(frac*float64(sorted[hi]-sorted[lo]))
}

// Speedup returns base/measured — how many times faster measured is
// than base. A non-positive measured duration yields 0.
func Speedup(base, measured time.Duration) float64 {
	if measured <= 0 {
		return 0
	}
	return float64(base) / float64(measured)
}

// Efficiency returns parallel efficiency: Speedup / threads.
func Efficiency(base, measured time.Duration, threads int) float64 {
	if threads <= 0 {
		return 0
	}
	return Speedup(base, measured) / float64(threads)
}
