package stats

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Sample{}) {
		t.Fatalf("Summarize(nil) = %+v, want zero", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]time.Duration{5 * time.Millisecond})
	if s.N != 1 || s.Min != 5*time.Millisecond || s.Max != 5*time.Millisecond ||
		s.Mean != 5*time.Millisecond || s.Median != 5*time.Millisecond || s.Stddev != 0 {
		t.Fatalf("single-sample summary wrong: %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	ds := []time.Duration{4, 2, 6, 8} // sorted: 2 4 6 8
	s := Summarize(ds)
	if s.Min != 2 || s.Max != 8 {
		t.Fatalf("min/max wrong: %+v", s)
	}
	if s.Mean != 5 {
		t.Fatalf("mean = %d, want 5", s.Mean)
	}
	if s.Median != 5 { // (4+6)/2
		t.Fatalf("median = %d, want 5", s.Median)
	}
	// Sample stddev of {2,4,6,8}: sqrt(20/3) ~ 2.58
	if s.Stddev < 2 || s.Stddev > 3 {
		t.Fatalf("stddev = %d, want ~2.58", s.Stddev)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]time.Duration{9, 1, 5})
	if s.Median != 5 {
		t.Fatalf("median = %d, want 5", s.Median)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	ds := []time.Duration{3, 1, 2}
	Summarize(ds)
	if ds[0] != 3 || ds[1] != 1 || ds[2] != 2 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestSummarizeInvariants(t *testing.T) {
	check := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		ds := make([]time.Duration, len(raw))
		for i, v := range raw {
			ds[i] = time.Duration(v)
		}
		s := Summarize(ds)
		return s.N == len(ds) &&
			s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10*time.Second, 2*time.Second); got != 5 {
		t.Fatalf("Speedup = %g, want 5", got)
	}
	if got := Speedup(time.Second, 0); got != 0 {
		t.Fatalf("Speedup with zero divisor = %g, want 0", got)
	}
}

func TestEfficiency(t *testing.T) {
	if got := Efficiency(8*time.Second, 2*time.Second, 4); got != 1 {
		t.Fatalf("Efficiency = %g, want 1", got)
	}
	if got := Efficiency(time.Second, time.Second, 0); got != 0 {
		t.Fatalf("Efficiency with 0 threads = %g, want 0", got)
	}
}

func TestPercentileNs(t *testing.T) {
	// 0..100 shuffled: the q-quantile of an arithmetic ramp is exact.
	ns := make([]int64, 101)
	for i := range ns {
		ns[i] = int64((i * 37) % 101) // a permutation of 0..100
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0, 0}, {0.25, 25}, {0.5, 50}, {0.99, 99}, {1, 100},
		{-1, 0}, {2, 100}, // clamped
	}
	for _, c := range cases {
		if got := PercentileNs(ns, c.q); got != c.want {
			t.Errorf("PercentileNs(ramp, %g) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestPercentileNsInterpolates(t *testing.T) {
	// Two samples: the median is the linear midpoint.
	if got := PercentileNs([]int64{100, 200}, 0.5); got != 150 {
		t.Fatalf("PercentileNs([100 200], 0.5) = %d, want 150", got)
	}
	// p999 of a small sample rides on the max (rank past n-2).
	if got := PercentileNs([]int64{1, 2, 3, 1000}, 0.999); got < 997 {
		t.Fatalf("PercentileNs p999 = %d, want near max", got)
	}
}

func TestPercentileNsEmptyAndSingle(t *testing.T) {
	if got := PercentileNs(nil, 0.5); got != 0 {
		t.Fatalf("PercentileNs(nil) = %d, want 0", got)
	}
	if got := PercentileNs([]int64{42}, 0.99); got != 42 {
		t.Fatalf("PercentileNs(single) = %d, want 42", got)
	}
}

func TestPercentileNsDoesNotMutate(t *testing.T) {
	ns := []int64{5, 1, 4, 2, 3}
	PercentileNs(ns, 0.5)
	want := []int64{5, 1, 4, 2, 3}
	for i := range ns {
		if ns[i] != want[i] {
			t.Fatalf("input mutated: %v", ns)
		}
	}
}
