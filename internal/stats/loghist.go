package stats

import (
	"fmt"
	"io"
	"math/bits"
	"strings"
)

// LogHist is a log-bucketed histogram of non-negative int64 values:
// bucket i >= 1 holds values in [2^(i-1), 2^i); bucket 0 holds
// values <= 0 (clamped). It is the fixed-size, allocation-free
// distribution summary the trace tooling uses for steal latencies
// (nanoseconds) and loop-chunk sizes (iterations), where the
// interesting structure spans several orders of magnitude.
//
// The zero LogHist is ready to use. LogHist is not safe for
// concurrent use.
type LogHist struct {
	counts [65]int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

// NumBuckets is the fixed bucket count of the log-bucket geometry.
// internal/metrics.Histogram reuses it (one atomic counter per bucket)
// so live histograms and offline LogHist summaries bucket identically.
const NumBuckets = 65

// BucketOf returns the bucket index for v — the exported form of the
// geometry for concurrent reimplementations that can't embed LogHist.
func BucketOf(v int64) int { return bucketOf(v) }

// BucketBounds returns the inclusive lower and exclusive upper value
// bounds of bucket i.
func BucketBounds(i int) (lo, hi int64) { return bucketLo(i), bucketHi(i) }

// bucketOf returns the bucket index for v: 0 for v <= 0, else
// bits.Len64(v), so bucket i >= 1 holds [2^(i-1), 2^i) and exact
// powers of two open their bucket.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Add records one value. Negative values are clamped to zero.
func (h *LogHist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.counts[bucketOf(v)]++
}

// N returns the number of recorded values.
func (h *LogHist) N() int64 { return h.n }

// Sum returns the sum of recorded values.
func (h *LogHist) Sum() int64 { return h.sum }

// Min and Max return the extremes of the recorded values (zero when
// empty).
func (h *LogHist) Min() int64 { return h.min }
func (h *LogHist) Max() int64 { return h.max }

// Mean returns the arithmetic mean of the recorded values, 0 when
// empty.
func (h *LogHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns an upper bound for the q-quantile (q in [0, 1]):
// the upper edge of the bucket in which the cumulative count crosses
// q*N. It is exact to within one bucket (a factor of two).
func (h *LogHist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.n))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return bucketHi(i)
		}
	}
	return bucketHi(len(h.counts) - 1)
}

// bucketLo and bucketHi return the inclusive lower and exclusive
// upper value bounds of bucket i.
func bucketLo(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1) << (i - 1)
}

func bucketHi(i int) int64 {
	if i >= 63 {
		return int64(1)<<62 - 1 + int64(1)<<62 // MaxInt64
	}
	return int64(1) << i
}

// Buckets calls fn for every non-empty bucket in ascending order with
// the bucket's bounds [lo, hi) and count.
func (h *LogHist) Buckets(fn func(lo, hi, count int64)) {
	for i, c := range h.counts {
		if c > 0 {
			fn(bucketLo(i), bucketHi(i), c)
		}
	}
}

// Render writes the histogram as one bar line per non-empty bucket.
// format renders a bucket bound as a label (e.g. a duration or a
// plain count); a nil format prints raw integers. The bars are scaled
// so the fullest bucket spans width characters.
func (h *LogHist) Render(w io.Writer, width int, format func(v int64) string) {
	if h.n == 0 {
		fmt.Fprintln(w, "  (empty)")
		return
	}
	if width < 1 {
		width = 40
	}
	if format == nil {
		format = func(v int64) string { return fmt.Sprintf("%d", v) }
	}
	var peak int64
	h.Buckets(func(_, _, c int64) {
		if c > peak {
			peak = c
		}
	})
	h.Buckets(func(lo, hi, c int64) {
		bar := int(float64(width) * float64(c) / float64(peak))
		if bar < 1 {
			bar = 1
		}
		fmt.Fprintf(w, "  [%8s, %8s) %-*s %d\n",
			format(lo), format(hi), width, strings.Repeat("#", bar), c)
	})
}
