package stats

import (
	"math"
	"testing"
)

// Known-answer cases computable by hand from the exact permutation
// distribution: with full separation, the one-sided tail is
// 1/C(n1+n2, n1).
func TestMannWhitneyKnownAnswers(t *testing.T) {
	cases := []struct {
		name  string
		x, y  []float64
		wantU float64
		wantP float64
	}{
		// C(6,3) = 20 orderings; U=0 is the single most extreme.
		{"separated-3v3", []float64{1, 2, 3}, []float64{4, 5, 6}, 0, 2.0 / 20},
		// C(8,4) = 70.
		{"separated-4v4", []float64{1, 2, 3, 4}, []float64{5, 6, 7, 8}, 0, 2.0 / 70},
		// Reversed direction: U = n1*n2, same p by symmetry.
		{"separated-rev", []float64{4, 5, 6}, []float64{1, 2, 3}, 9, 2.0 / 20},
		// Perfect interleave on 2v2: U=2 is the distribution center,
		// so the doubled tail saturates at 1.
		{"center-2v2", []float64{1, 4}, []float64{2, 3}, 2, 1},
	}
	for _, c := range cases {
		got := MannWhitneyU(c.x, c.y)
		if !got.Exact {
			t.Errorf("%s: expected exact path", c.name)
		}
		if got.U != c.wantU {
			t.Errorf("%s: U = %v, want %v", c.name, got.U, c.wantU)
		}
		if math.Abs(got.P-c.wantP) > 1e-12 {
			t.Errorf("%s: P = %v, want %v", c.name, got.P, c.wantP)
		}
	}
}

// Cross-check the DP-based exact distribution against a direct
// enumeration of every assignment of pooled ranks to the first
// sample.
func TestMannWhitneyExactMatchesEnumeration(t *testing.T) {
	cases := []struct{ x, y []float64 }{
		{[]float64{1, 7, 9, 12, 15, 16}, []float64{2, 3, 8, 10, 11, 14}},
		{[]float64{5, 6, 13, 20}, []float64{1, 2, 3, 4, 40, 50}},
		{[]float64{100, 200, 300}, []float64{150, 250, 350, 450, 550}},
	}
	for _, c := range cases {
		got := MannWhitneyU(c.x, c.y)
		if !got.Exact {
			t.Fatalf("expected exact path for n=%d,%d", len(c.x), len(c.y))
		}
		want := bruteForceP(c.x, c.y)
		if math.Abs(got.P-want) > 1e-12 {
			t.Errorf("x=%v y=%v: P = %v, enumeration says %v", c.x, c.y, got.P, want)
		}
	}
}

// bruteForceP computes the exact two-sided p-value by enumerating all
// C(n1+n2, n1) assignments of the pooled values to the first sample.
func bruteForceP(x, y []float64) float64 {
	pool := append(append([]float64{}, x...), y...)
	n1, n := len(x), len(pool)
	obs := uStat(x, y)
	if alt := float64(n1*(n-n1)) - obs; alt < obs {
		obs = alt
	}
	var tail, total float64
	idx := make([]int, n1)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n1 {
			a := make([]float64, 0, n1)
			taken := make([]bool, n)
			for _, i := range idx {
				a = append(a, pool[i])
				taken[i] = true
			}
			b := make([]float64, 0, n-n1)
			for i, v := range pool {
				if !taken[i] {
					b = append(b, v)
				}
			}
			total++
			if uStat(a, b) <= obs {
				tail++
			}
			return
		}
		for i := start; i < n; i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	p := 2 * tail / total
	if p > 1 {
		p = 1
	}
	return p
}

// uStat counts pairs (xi, yj) with xi > yj.
func uStat(x, y []float64) float64 {
	var u float64
	for _, a := range x {
		for _, b := range y {
			if a > b {
				u++
			}
		}
	}
	return u
}

func TestMannWhitneyDegenerate(t *testing.T) {
	if p := MannWhitneyU(nil, []float64{1, 2}).P; p != 1 {
		t.Errorf("empty sample: P = %v, want 1", p)
	}
	// All pooled values identical: ties force the approximation,
	// whose variance is zero -> no evidence.
	if p := MannWhitneyU([]float64{5, 5, 5}, []float64{5, 5, 5}).P; p != 1 {
		t.Errorf("all-identical: P = %v, want 1", p)
	}
}

func TestMannWhitneyTiesUseApproximation(t *testing.T) {
	got := MannWhitneyU([]float64{1, 2, 2, 3}, []float64{2, 4, 5, 6})
	if got.Exact {
		t.Fatal("tied samples must not take the exact path")
	}
	if got.P <= 0 || got.P > 1 {
		t.Fatalf("P = %v out of range", got.P)
	}
}

func TestMannWhitneyLargeSamples(t *testing.T) {
	// Beyond exactLimit: approximation path. Clearly shifted
	// distributions must be detected, overlapping ones must not.
	var lo, hi, mixA, mixB []float64
	for i := 0; i < 30; i++ {
		lo = append(lo, 100+float64(i))
		hi = append(hi, 200+float64(i))
		// Interleaved values from one distribution.
		mixA = append(mixA, float64(1000+2*i))
		mixB = append(mixB, float64(1001+2*i))
	}
	shifted := MannWhitneyU(lo, hi)
	if shifted.Exact {
		t.Fatal("n=30 should use the approximation")
	}
	if shifted.P > 1e-6 {
		t.Errorf("separated n=30: P = %v, want < 1e-6", shifted.P)
	}
	same := MannWhitneyU(mixA, mixB)
	if same.P < 0.3 {
		t.Errorf("interleaved n=30: P = %v, want > 0.3", same.P)
	}
}

// The exact and approximate paths must agree to a few percent at
// moderate sizes — that agreement is what justifies trusting the
// approximation beyond exactLimit.
func TestMannWhitneyApproxTracksExact(t *testing.T) {
	x := []float64{1, 4, 6, 9, 11, 13, 15, 18, 21, 22}
	y := []float64{2, 3, 5, 7, 8, 10, 12, 14, 16, 17}
	exact := MannWhitneyU(x, y)
	if !exact.Exact {
		t.Fatal("expected exact path")
	}
	// Recompute via the normal approximation by perturbing one value
	// into a tie (tie correction term is tiny here).
	y2 := append([]float64{}, y...)
	y2[0] = 1 // tie with x[0]
	approx := MannWhitneyU(x, y2)
	if approx.Exact {
		t.Fatal("expected approximation path")
	}
	if math.Abs(exact.P-approx.P) > 0.1 {
		t.Errorf("exact P = %v vs approx P = %v: disagreement too large", exact.P, approx.P)
	}
}

func TestMedianCI(t *testing.T) {
	// n=15 at 95%: the standard order-statistic interval is
	// (x_(4), x_(12)) with coverage 96.48%.
	var ds []float64
	for i := 1; i <= 15; i++ {
		ds = append(ds, float64(i))
	}
	lo, hi := MedianCI(ds, 0.95)
	if lo != 4 || hi != 12 {
		t.Errorf("n=15: CI = [%v, %v], want [4, 12]", lo, hi)
	}

	// n=6 at 95%: only the full range reaches coverage (96.875%).
	lo, hi = MedianCI([]float64{10, 20, 30, 40, 50, 60}, 0.95)
	if lo != 10 || hi != 60 {
		t.Errorf("n=6: CI = [%v, %v], want [10, 60]", lo, hi)
	}

	// n=5 cannot reach 95% (93.75%): fall back to the full range.
	lo, hi = MedianCI([]float64{1, 2, 3, 4, 5}, 0.95)
	if lo != 1 || hi != 5 {
		t.Errorf("n=5: CI = [%v, %v], want [1, 5]", lo, hi)
	}

	if lo, hi = MedianCI(nil, 0.95); lo != 0 || hi != 0 {
		t.Errorf("empty: CI = [%v, %v], want [0, 0]", lo, hi)
	}
	if lo, hi = MedianCI([]float64{7}, 0.95); lo != 7 || hi != 7 {
		t.Errorf("n=1: CI = [%v, %v], want [7, 7]", lo, hi)
	}
}
