package shard

// Resolver stress test in the style of dbresolver's: many concurrent
// submitters hammer one Resolver through every balancer while shards
// are hot-added and drained mid-storm. The assertions are the
// contracts that matter under churn: every loop covers its range
// exactly once, every submission runs exactly once, reductions stay
// correct, drains never drop assigned work, and shutdown is clean.
// The race-sched CI job runs this file under -race.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"threading/internal/forkjoin"
	"threading/internal/worksteal"
)

// stressShard builds a small shard, alternating runtimes so the storm
// always crosses the Pool/Team seam.
func stressShard(i int) Executor {
	if i%2 == 0 {
		return worksteal.NewPool(2)
	}
	return forkjoin.NewTeam(2)
}

func TestResolverStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	for _, name := range Balancers {
		t.Run(name, func(t *testing.T) {
			bal, err := ParseBalancer(name)
			if err != nil {
				t.Fatalf("ParseBalancer(%q): %v", name, err)
			}
			r, err := New(
				WithBalancer(bal),
				WithShards(stressShard(0), stressShard(1), stressShard(2), stressShard(3)),
			)
			if err != nil {
				t.Fatalf("New: %v", err)
			}

			const (
				submitters = 6
				loops      = 8
				iters      = 2048
				tasks      = 32
			)
			ctx := context.Background()

			// Churn shards while the storm runs: add a shard, then
			// drain one that has had time to accumulate work, keeping
			// at least the four originals' worth routable.
			stop := make(chan struct{})
			var churn sync.WaitGroup
			churn.Add(1)
			go func() {
				defer churn.Done()
				next := 4
				for {
					select {
					case <-stop:
						return
					default:
					}
					id, err := r.AddShard(stressShard(next))
					next++
					if err != nil {
						t.Errorf("AddShard: %v", err)
						return
					}
					ids := r.Shards()
					// Drain the oldest routable shard, never the one
					// just added, and never below 4.
					if len(ids) > 4 {
						if err := r.Drain(ids[0]); err != nil {
							t.Errorf("Drain(%d): %v", ids[0], err)
							return
						}
					}
					_ = id
				}
			}()

			var submitted atomic.Int64
			var ran atomic.Int64
			var wg sync.WaitGroup
			for s := 0; s < submitters; s++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					hits := make([]atomic.Int32, iters)
					for l := 0; l < loops; l++ {
						// Exact-once chunk coverage under churn.
						if err := r.ParallelForCtx(ctx, 0, iters, 32, func(lo, hi int) {
							for i := lo; i < hi; i++ {
								hits[i].Add(1)
							}
						}); err != nil {
							t.Errorf("submitter %d loop %d: %v", seed, l, err)
							return
						}
						// Reduction correctness under churn.
						sum, err := r.ParallelReduceCtx(ctx, 0, iters, 64, 0,
							func(lo, hi int, acc float64) float64 {
								for i := lo; i < hi; i++ {
									acc += float64(i)
								}
								return acc
							},
							func(a, b float64) float64 { return a + b })
						if err != nil {
							t.Errorf("submitter %d reduce %d: %v", seed, l, err)
							return
						}
						if want := float64(iters*(iters-1)) / 2; sum != want {
							t.Errorf("submitter %d reduce %d = %v, want %v", seed, l, sum, want)
							return
						}
						for i := 0; i < tasks; i++ {
							if err := r.SubmitCtx(ctx, func() { ran.Add(1) }); err != nil {
								t.Errorf("submitter %d submit: %v", seed, err)
								return
							}
							submitted.Add(1)
						}
					}
					for i := range hits {
						if c := hits[i].Load(); c != int32(loops) {
							t.Errorf("submitter %d: iteration %d executed %d times, want %d", seed, i, c, loops)
							return
						}
					}
				}(s)
			}
			wg.Wait()
			close(stop)
			churn.Wait()

			if err := r.Quiesce(); err != nil {
				t.Fatalf("Quiesce: %v", err)
			}
			if got, want := ran.Load(), submitted.Load(); got != want {
				t.Fatalf("%d of %d submissions ran", got, want)
			}
			// Clean shutdown: Close must retire every remaining shard
			// without dropping anything or deadlocking.
			r.Close()
			if err := r.SubmitCtx(ctx, func() {}); err == nil {
				t.Fatal("SubmitCtx after Close should fail")
			}
		})
	}
}

// TestResolverDrainUnderLoad drains a shard while loops are in flight
// and asserts no work is lost: the drain must wait out assigned
// dispatches rather than dropping them.
func TestResolverDrainUnderLoad(t *testing.T) {
	r, err := New(
		WithBalancer(RoundRobin()),
		WithShards(stressShard(0), stressShard(1), stressShard(2)),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()
	ctx := context.Background()

	const iters = 4096
	var wg sync.WaitGroup
	var covered atomic.Int64
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for l := 0; l < 10; l++ {
				if err := r.ParallelForCtx(ctx, 0, iters, 64, func(lo, hi int) {
					covered.Add(int64(hi - lo))
				}); err != nil {
					t.Errorf("loop: %v", err)
					return
				}
			}
		}()
	}
	// Drain mid-storm.
	ids := r.Shards()
	if err := r.Drain(ids[1]); err != nil {
		t.Fatalf("Drain(%d) under load: %v", ids[1], err)
	}
	wg.Wait()
	if got, want := covered.Load(), int64(4*10*iters); got != want {
		t.Fatalf("covered %d iterations, want %d", got, want)
	}
}
