package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"threading/internal/sched"
)

// ErrClosed is returned by operations on a closed Resolver.
var ErrClosed = errors.New("shard: resolver is closed")

// handle is one shard's routing record. inflight counts dispatches the
// Resolver has assigned but not yet seen complete; retired marks a
// shard removed from routing whose drain is waiting for inflight to
// reach zero. The inc-then-check-retired order in acquire pairs with
// the set-retired-then-read-inflight order in Drain so a dispatch
// never lands on a shard whose drain already observed it idle.
// inflight is padded onto its own cache line: every dispatch and
// completion on a shard bumps it, and handles are allocated together
// by the balancer-facing slices, so unpadded counters of neighbouring
// shards (and the id/exec words every acquire reads) would false-share.
type handle struct {
	id   int
	exec Executor

	_        [sched.CacheLine]byte
	inflight atomic.Int64
	_        [sched.CacheLine - 8]byte
	retired  atomic.Bool
}

// load is the signal the least-loaded balancer reads: assigned-but-
// unfinished dispatches plus the runtime's own queued-work counter.
func (h *handle) load() int64 {
	l := h.inflight.Load()
	if pw, ok := h.exec.(PendingWorker); ok {
		l += pw.PendingWork()
	}
	return l
}

// Resolver routes work across a mutable set of shards. It implements
// Executor, so callers written against the interface are oblivious to
// sharding: a ParallelForCtx splits the range into one contiguous part
// per shard and dispatches each part through the balancer, a reduction
// additionally folds the per-shard partials, and a submission routes
// whole to one shard.
//
// The Resolver owns its shards: Close (and Drain, for one shard)
// quiesces and closes them. Construct with New.
type Resolver struct {
	mu     sync.Mutex
	live   []*handle // copy-on-write: mutations replace the slice
	nextID int
	bal    Balancer
	closed bool

	async sched.AsyncGroup // in-flight SubmitCtx tasks, joined by Quiesce
}

// config collects New's options.
type config struct {
	shards []Executor
	bal    Balancer
}

// Option configures a Resolver at construction.
type Option func(*config)

// WithShards sets the initial shard set. At least one shard is
// required; the Resolver takes ownership and will Close them.
func WithShards(execs ...Executor) Option {
	return func(c *config) { c.shards = append(c.shards, execs...) }
}

// WithBalancer selects the routing balancer. The default is
// round-robin.
func WithBalancer(b Balancer) Option {
	return func(c *config) { c.bal = b }
}

// New returns a Resolver routing across the shards given via
// WithShards, which must supply at least one.
func New(opts ...Option) (*Resolver, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.shards) == 0 {
		return nil, errors.New("shard: resolver needs at least one shard (WithShards)")
	}
	if cfg.bal == nil {
		cfg.bal = RoundRobin()
	}
	r := &Resolver{bal: cfg.bal}
	for _, e := range cfg.shards {
		r.live = append(r.live, &handle{id: r.nextID, exec: e})
		r.nextID++
	}
	return r, nil
}

// BalancerName reports the name of the configured balancer.
func (r *Resolver) BalancerName() string { return r.bal.Name() }

// Shards returns the ids of the currently routable shards, in routing
// order.
func (r *Resolver) Shards() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]int, len(r.live))
	for i, h := range r.live {
		ids[i] = h.id
	}
	return ids
}

// NumShards reports the number of currently routable shards.
func (r *Resolver) NumShards() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.live)
}

// AddShard adds a shard to the routing set and returns its id. The
// Resolver takes ownership of the executor.
func (r *Resolver) AddShard(e Executor) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, ErrClosed
	}
	id := r.nextID
	r.nextID++
	live := make([]*handle, 0, len(r.live)+1)
	live = append(live, r.live...)
	live = append(live, &handle{id: id, exec: e})
	r.live = live
	return id, nil
}

// Drain removes shard id from routing, waits for every dispatch
// already assigned to it (and every task submitted directly to it) to
// complete, then closes it — retirement without dropping work. The
// last shard cannot be drained. Drain returns the shard's first
// quiesce failure, if any.
func (r *Resolver) Drain(id int) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	idx := -1
	for i, h := range r.live {
		if h.id == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		r.mu.Unlock()
		return fmt.Errorf("shard: no routable shard %d", id)
	}
	if len(r.live) == 1 {
		r.mu.Unlock()
		return errors.New("shard: cannot drain the last shard")
	}
	h := r.live[idx]
	live := make([]*handle, 0, len(r.live)-1)
	live = append(live, r.live[:idx]...)
	live = append(live, r.live[idx+1:]...)
	r.live = live
	h.retired.Store(true)
	r.mu.Unlock()
	waitIdle(h)
	err := h.exec.Quiesce()
	h.exec.Close()
	return err
}

// waitIdle blocks until every dispatch assigned to h has completed.
// Drain and Close are control-plane operations, so a polling wait
// keeps the data-plane decrement a plain atomic.
func waitIdle(h *handle) {
	for i := 0; h.inflight.Load() > 0; i++ {
		if i < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// routable returns the current routing set.
func (r *Resolver) routable() ([]*handle, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	return r.live, nil
}

// acquire picks a shard through the balancer and reserves one dispatch
// on it, retrying if the pick raced a Drain.
func (r *Resolver) acquire(key func() uint64) (*handle, error) {
	for {
		shards, err := r.routable()
		if err != nil {
			return nil, err
		}
		if len(shards) == 0 {
			return nil, ErrClosed
		}
		i := 0
		if len(shards) > 1 {
			i = r.bal.Pick(len(shards), func(j int) int64 { return shards[j].load() }, key)
			if i < 0 || i >= len(shards) {
				i = 0
			}
		}
		h := shards[i]
		h.inflight.Add(1)
		if h.retired.Load() {
			// Raced a Drain between snapshot and reservation; the
			// drainer is waiting on inflight, so back out and repick.
			h.inflight.Add(-1)
			continue
		}
		return h, nil
	}
}

// release returns one reserved dispatch.
func release(h *handle) { h.inflight.Add(-1) }

// parts returns how many contiguous parts an n-iteration loop should
// split into: one per routable shard, capped by the iteration count.
func (r *Resolver) parts(n int) int {
	r.mu.Lock()
	k := len(r.live)
	r.mu.Unlock()
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	return k
}

// cut returns part i of [lo, hi) split into parts near-equal
// contiguous pieces.
func cut(lo, hi, parts, i int) (int, int) {
	n := hi - lo
	base, rem := n/parts, n%parts
	start := lo + i*base
	if i < rem {
		start += i
	} else {
		start += rem
	}
	end := start + base
	if i < rem {
		end++
	}
	return start, end
}

// acquireParts reserves one shard per part up front, so a least-loaded
// balancer sees the tentative load of the parts already placed and
// spreads the remainder.
func (r *Resolver) acquireParts(parts int, key func() uint64) ([]*handle, error) {
	handles := make([]*handle, parts)
	for i := range handles {
		h, err := r.acquire(key)
		if err != nil {
			for _, a := range handles[:i] {
				release(a)
			}
			return nil, err
		}
		handles[i] = h
	}
	return handles, nil
}

// firstErr collects the first failure across concurrent part
// dispatches.
type firstErr struct {
	mu  sync.Mutex
	err error
}

func (f *firstErr) record(err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

// ParallelForCtx splits [lo, hi) into one contiguous part per routable
// shard, dispatches the parts concurrently through the balancer, and
// blocks until all complete. Under the affinity balancer every part
// routes to the submitter's shard, trading spread for locality.
func (r *Resolver) ParallelForCtx(ctx context.Context, lo, hi, grain int, body func(l, h int)) error {
	if lo >= hi {
		return ctx.Err()
	}
	key := submitterKey()
	parts := r.parts(hi - lo)
	handles, err := r.acquireParts(parts, key)
	if err != nil {
		return err
	}
	if parts == 1 {
		defer release(handles[0])
		return handles[0].exec.ParallelForCtx(ctx, lo, hi, grain, body)
	}
	var fe firstErr
	var wg sync.WaitGroup
	for i := 1; i < parts; i++ {
		l, h := cut(lo, hi, parts, i)
		hd := handles[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer release(hd)
			fe.record(hd.exec.ParallelForCtx(ctx, l, h, grain, body))
		}()
	}
	// Part 0 runs on the calling goroutine, keeping the submitter on
	// the help-first path of its own shard.
	l, h := cut(lo, hi, parts, 0)
	fe.record(handles[0].exec.ParallelForCtx(ctx, l, h, grain, body))
	release(handles[0])
	wg.Wait()
	return fe.err
}

// ParallelReduceCtx splits the reduction like ParallelForCtx and folds
// the per-shard partial results with combine. combine must be
// associative and commutative; on error the identity is returned.
func (r *Resolver) ParallelReduceCtx(ctx context.Context, lo, hi, grain int, identity float64,
	body func(l, h int, acc float64) float64,
	combine func(a, b float64) float64) (float64, error) {

	if lo >= hi {
		return identity, ctx.Err()
	}
	key := submitterKey()
	parts := r.parts(hi - lo)
	handles, err := r.acquireParts(parts, key)
	if err != nil {
		return identity, err
	}
	if parts == 1 {
		defer release(handles[0])
		return handles[0].exec.ParallelReduceCtx(ctx, lo, hi, grain, identity, body, combine)
	}
	partials := make([]float64, parts)
	var fe firstErr
	var wg sync.WaitGroup
	run := func(i int) {
		l, h := cut(lo, hi, parts, i)
		v, err := handles[i].exec.ParallelReduceCtx(ctx, l, h, grain, identity, body, combine)
		partials[i] = v
		fe.record(err)
		release(handles[i])
	}
	for i := 1; i < parts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run(i)
		}()
	}
	run(0)
	wg.Wait()
	if fe.err != nil {
		return identity, fe.err
	}
	acc := identity
	for _, v := range partials {
		acc = combine(acc, v)
	}
	return acc, nil
}

// SubmitCtx routes fn whole to one shard chosen by the balancer and
// returns without waiting. Completion and failures are observed
// through Quiesce; the reservation pins the shard against Drain until
// fn finishes, so draining never drops submitted work.
func (r *Resolver) SubmitCtx(ctx context.Context, fn func()) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	h, err := r.acquire(submitterKey())
	if err != nil {
		return err
	}
	r.async.Add()
	go func() {
		defer r.async.Done()
		defer release(h)
		// A single-iteration loop gives the submission a synchronous
		// completion point on the shard, which is what ties the
		// reservation (and so Drain) to the task actually finishing.
		//threadvet:ignore grainconst the loop is a single task, not an iteration space
		r.async.Record(h.exec.ParallelForCtx(ctx, 0, 1, 1, func(_, _ int) { fn() }))
	}()
	return nil
}

// Quiesce blocks until every task submitted through the Resolver has
// completed, then quiesces each routable shard (covering work
// submitted to a shard directly), and returns the first failure.
func (r *Resolver) Quiesce() error {
	err := r.async.Wait()
	shards, rerr := r.routable()
	if rerr != nil {
		if err != nil {
			return err
		}
		return rerr
	}
	for _, h := range shards {
		if e := h.exec.Quiesce(); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// Close retires every shard — waiting for assigned dispatches, then
// quiescing and closing each — and marks the Resolver unusable.
// Close is idempotent.
func (r *Resolver) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	shards := r.live
	r.live = nil
	r.mu.Unlock()
	for _, h := range shards {
		h.retired.Store(true)
	}
	for _, h := range shards {
		waitIdle(h)
	}
	_ = r.async.Wait()
	for _, h := range shards {
		_ = h.exec.Quiesce()
		h.exec.Close()
	}
}

// PendingWork sums the queued work across every routable shard, so a
// Resolver used as a shard of an outer Resolver still feeds its
// least-loaded balancer.
func (r *Resolver) PendingWork() int64 {
	r.mu.Lock()
	shards := r.live
	r.mu.Unlock()
	var sum int64
	for _, h := range shards {
		sum += h.load()
	}
	return sum
}

// Workers sums the worker counts of every routable shard whose
// executor reports one (the worksteal pools; forkjoin teams don't).
// With ParkedWorkers and PendingWork it lets a sharded deployment sit
// behind the metrics stall watchdog like a single pool.
func (r *Resolver) Workers() int {
	r.mu.Lock()
	shards := r.live
	r.mu.Unlock()
	var sum int
	for _, h := range shards {
		if wk, ok := h.exec.(interface{ Workers() int }); ok {
			sum += wk.Workers()
		}
	}
	return sum
}

// ParkedWorkers sums the parked-worker counts across routable shards
// that report one.
func (r *Resolver) ParkedWorkers() int {
	r.mu.Lock()
	shards := r.live
	r.mu.Unlock()
	var sum int
	for _, h := range shards {
		if pk, ok := h.exec.(interface{ ParkedWorkers() int }); ok {
			sum += pk.ParkedWorkers()
		}
	}
	return sum
}

// Stat is one shard's scheduler counters, tagged with the shard id.
type Stat struct {
	ID       int
	Snapshot sched.Snapshot
}

// statser and resetter are the optional stats surfaces of the
// underlying runtimes, asserted per shard.
type statser interface{ Stats() sched.Snapshot }
type resetter interface{ ResetStats() }

// ShardStats returns each routable shard's counter snapshot in shard
// id order. Shards whose executor exposes no Stats method are omitted.
func (r *Resolver) ShardStats() []Stat {
	r.mu.Lock()
	shards := r.live
	r.mu.Unlock()
	out := make([]Stat, 0, len(shards))
	for _, h := range shards {
		if s, ok := h.exec.(statser); ok {
			out = append(out, Stat{ID: h.id, Snapshot: s.Stats()})
		}
	}
	return out
}

// Stats returns the sum of every routable shard's counters — the
// merged view the aggregate reporting paths use.
func (r *Resolver) Stats() sched.Snapshot {
	var sum sched.Snapshot
	for _, st := range r.ShardStats() {
		sum = sum.Add(st.Snapshot)
	}
	return sum
}

// ResetStats zeroes every routable shard's counters.
func (r *Resolver) ResetStats() {
	r.mu.Lock()
	shards := r.live
	r.mu.Unlock()
	for _, h := range shards {
		if rs, ok := h.exec.(resetter); ok {
			rs.ResetStats()
		}
	}
}
