package shard

import (
	"fmt"
	"sync/atomic"
)

// Balancer picks which shard receives the next unit of work. The
// Resolver consults it once per routed unit — per loop part, per
// submission — under concurrent submitters, so implementations must be
// safe for concurrent use.
//
// Pick receives the number of routable shards n (always >= 1), a load
// probe reporting shard i's current queued work (the Resolver's
// in-flight count for that shard plus the runtime's PendingWork, when
// exposed), and a lazily computed submitter key that is stable for one
// submitting goroutine (only affinity pays its cost). Pick returns an
// index in [0, n); out-of-range returns are clamped to 0 by the
// Resolver.
//
// The index is positional within the Resolver's current routing set,
// not a stable shard id: hot add/drain renumbers positions. Balancers
// that derive placement from the key (affinity) therefore provide
// best-effort stickiness — stable while the shard set is stable.
type Balancer interface {
	// Name returns the balancer's flag-friendly name.
	Name() string
	Pick(n int, load func(int) int64, key func() uint64) int
}

// RoundRobin returns a balancer cycling through shards in order. Each
// call returns a fresh instance with its own cursor.
func RoundRobin() Balancer { return &roundRobin{} }

type roundRobin struct{ next atomic.Uint64 }

func (b *roundRobin) Name() string { return "round-robin" }

func (b *roundRobin) Pick(n int, _ func(int) int64, _ func() uint64) int {
	return int((b.next.Add(1) - 1) % uint64(n))
}

// Random returns a balancer picking shards uniformly at random, from a
// lock-free splitmix64 sequence.
func Random() Balancer { return &random{} }

type random struct{ seq atomic.Uint64 }

func (b *random) Name() string { return "random" }

func (b *random) Pick(n int, _ func(int) int64, _ func() uint64) int {
	// splitmix64: each Add claims a distinct stream position, so
	// concurrent picks never share an output.
	x := b.seq.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % uint64(n))
}

// LeastLoaded returns a balancer picking the shard with the smallest
// current load: the Resolver's in-flight dispatch count plus the
// runtime's own pending-work counter (worksteal's queued-task count,
// forkjoin's live explicit tasks). Ties go to the lowest index.
func LeastLoaded() Balancer { return leastLoaded{} }

type leastLoaded struct{}

func (leastLoaded) Name() string { return "least-loaded" }

func (leastLoaded) Pick(n int, load func(int) int64, _ func() uint64) int {
	best, bestLoad := 0, load(0)
	for i := 1; i < n; i++ {
		if l := load(i); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// Affinity returns a balancer that sticks each submitting goroutine to
// one shard by hashing a goroutine-local key, preserving whatever
// cache locality the submitter has built up on that shard's workers.
// Stickiness is best-effort: hot add/drain changes the shard count and
// remaps keys.
func Affinity() Balancer { return affinity{} }

type affinity struct{}

func (affinity) Name() string { return "affinity" }

func (affinity) Pick(n int, _ func(int) int64, key func() uint64) int {
	// Finalize the raw goroutine id (a small counter) so consecutive
	// submitters spread across shards instead of clustering.
	x := key()
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return int(x % uint64(n))
}

// Balancers lists the recognized balancer names in flag-help order.
var Balancers = []string{"round-robin", "random", "least-loaded", "affinity"}

// ParseBalancer converts a flag value to a fresh Balancer instance.
// The empty string selects round-robin.
func ParseBalancer(s string) (Balancer, error) {
	switch s {
	case "round-robin", "":
		return RoundRobin(), nil
	case "random":
		return Random(), nil
	case "least-loaded":
		return LeastLoaded(), nil
	case "affinity":
		return Affinity(), nil
	default:
		return nil, fmt.Errorf("shard: unknown balancer %q (have round-robin, random, least-loaded, affinity)", s)
	}
}
