package shard

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"threading/internal/forkjoin"
	"threading/internal/worksteal"
)

// newMixedResolver builds a resolver over two pool shards and one team
// shard — the interface must hide which runtime backs a shard.
func newMixedResolver(t *testing.T, bal Balancer) *Resolver {
	t.Helper()
	r, err := New(
		WithBalancer(bal),
		WithShards(
			worksteal.NewPool(2),
			worksteal.NewPool(2),
			forkjoin.NewTeam(2),
		),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestNewRequiresShards(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("New() without shards should fail")
	}
}

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	r := newMixedResolver(t, RoundRobin())
	defer r.Close()
	const n = 10_000
	hits := make([]atomic.Int32, n)
	err := r.ParallelForCtx(context.Background(), 0, n, 64, func(l, h int) {
		for i := l; i < h; i++ {
			hits[i].Add(1)
		}
	})
	if err != nil {
		t.Fatalf("ParallelForCtx: %v", err)
	}
	for i := range hits {
		if c := hits[i].Load(); c != 1 {
			t.Fatalf("iteration %d executed %d times", i, c)
		}
	}
}

func TestParallelReduce(t *testing.T) {
	for _, bal := range []Balancer{RoundRobin(), Random(), LeastLoaded(), Affinity()} {
		t.Run(bal.Name(), func(t *testing.T) {
			r := newMixedResolver(t, bal)
			defer r.Close()
			const n = 5000
			got, err := r.ParallelReduceCtx(context.Background(), 0, n, 32, 0,
				func(l, h int, acc float64) float64 {
					for i := l; i < h; i++ {
						acc += float64(i)
					}
					return acc
				},
				func(a, b float64) float64 { return a + b })
			if err != nil {
				t.Fatalf("ParallelReduceCtx: %v", err)
			}
			want := float64(n*(n-1)) / 2
			if got != want {
				t.Fatalf("sum = %v, want %v", got, want)
			}
		})
	}
}

func TestSubmitQuiesce(t *testing.T) {
	r := newMixedResolver(t, LeastLoaded())
	defer r.Close()
	var ran atomic.Int64
	const n = 100
	for i := 0; i < n; i++ {
		if err := r.SubmitCtx(context.Background(), func() { ran.Add(1) }); err != nil {
			t.Fatalf("SubmitCtx: %v", err)
		}
	}
	if err := r.Quiesce(); err != nil {
		t.Fatalf("Quiesce: %v", err)
	}
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d of %d submissions", got, n)
	}
}

func TestSubmitPanicSurfacesInQuiesce(t *testing.T) {
	r := newMixedResolver(t, RoundRobin())
	defer r.Close()
	for i := 0; i < 3; i++ {
		if err := r.SubmitCtx(context.Background(), func() { panic("boom") }); err != nil {
			t.Fatalf("SubmitCtx: %v", err)
		}
	}
	if err := r.Quiesce(); err == nil {
		t.Fatal("Quiesce should report the submitted panic")
	}
	// A later quiesce interval starts clean.
	if err := r.Quiesce(); err != nil {
		t.Fatalf("second Quiesce: %v", err)
	}
}

func TestCanceledContext(t *testing.T) {
	r := newMixedResolver(t, RoundRobin())
	defer r.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r.ParallelForCtx(ctx, 0, 1000, 8, func(_, _ int) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ParallelForCtx on canceled ctx = %v, want context.Canceled", err)
	}
	if err := r.SubmitCtx(ctx, func() {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitCtx on canceled ctx = %v, want context.Canceled", err)
	}
}

func TestAddDrain(t *testing.T) {
	r := newMixedResolver(t, RoundRobin())
	defer r.Close()
	if got := r.NumShards(); got != 3 {
		t.Fatalf("NumShards = %d, want 3", got)
	}
	id, err := r.AddShard(worksteal.NewPool(1))
	if err != nil {
		t.Fatalf("AddShard: %v", err)
	}
	if got := r.NumShards(); got != 4 {
		t.Fatalf("NumShards after add = %d, want 4", got)
	}
	if err := r.Drain(id); err != nil {
		t.Fatalf("Drain(%d): %v", id, err)
	}
	if got := r.NumShards(); got != 3 {
		t.Fatalf("NumShards after drain = %d, want 3", got)
	}
	if err := r.Drain(id); err == nil {
		t.Fatal("double Drain should fail")
	}
	// Work still routes after the drain.
	var n atomic.Int64
	if err := r.ParallelForCtx(context.Background(), 0, 100, 10, func(l, h int) {
		n.Add(int64(h - l))
	}); err != nil {
		t.Fatalf("ParallelForCtx after drain: %v", err)
	}
	if n.Load() != 100 {
		t.Fatalf("covered %d iterations, want 100", n.Load())
	}
}

func TestDrainLastShardRefused(t *testing.T) {
	r, err := New(WithShards(worksteal.NewPool(1)))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()
	ids := r.Shards()
	if len(ids) != 1 {
		t.Fatalf("Shards = %v, want one", ids)
	}
	if err := r.Drain(ids[0]); err == nil {
		t.Fatal("draining the last shard should be refused")
	}
}

func TestClosedResolverRejectsWork(t *testing.T) {
	r := newMixedResolver(t, RoundRobin())
	r.Close()
	r.Close() // idempotent
	if err := r.ParallelForCtx(context.Background(), 0, 10, 1, func(_, _ int) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("ParallelForCtx after Close = %v, want ErrClosed", err)
	}
	if err := r.SubmitCtx(context.Background(), func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitCtx after Close = %v, want ErrClosed", err)
	}
	if _, err := r.AddShard(worksteal.NewPool(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("AddShard after Close = %v, want ErrClosed", err)
	}
}

func TestShardStats(t *testing.T) {
	r := newMixedResolver(t, RoundRobin())
	defer r.Close()
	if err := r.ParallelForCtx(context.Background(), 0, 4096, 16, func(_, _ int) {}); err != nil {
		t.Fatalf("ParallelForCtx: %v", err)
	}
	stats := r.ShardStats()
	if len(stats) != 3 {
		t.Fatalf("ShardStats returned %d entries, want 3", len(stats))
	}
	var tasks, chunks int64
	for _, st := range stats {
		tasks += st.Snapshot.TasksExecuted
		chunks += st.Snapshot.LoopChunks
	}
	merged := r.Stats()
	if merged.TasksExecuted != tasks || merged.LoopChunks != chunks {
		t.Fatalf("merged Stats %+v does not sum ShardStats", merged)
	}
	if tasks == 0 && chunks == 0 {
		t.Fatal("no shard recorded any activity")
	}
	r.ResetStats()
	if after := r.Stats(); after.TasksExecuted != 0 {
		t.Fatalf("ResetStats left %d tasks", after.TasksExecuted)
	}
}

func TestCutPartition(t *testing.T) {
	for _, tc := range []struct{ lo, hi, parts int }{
		{0, 10, 3}, {5, 6, 1}, {0, 7, 7}, {3, 103, 4}, {0, 2, 2},
	} {
		prev := tc.lo
		total := 0
		for i := 0; i < tc.parts; i++ {
			l, h := cut(tc.lo, tc.hi, tc.parts, i)
			if l != prev {
				t.Fatalf("cut(%d,%d,%d,%d) starts at %d, want %d", tc.lo, tc.hi, tc.parts, i, l, prev)
			}
			if h < l {
				t.Fatalf("cut(%d,%d,%d,%d) = [%d,%d) inverted", tc.lo, tc.hi, tc.parts, i, l, h)
			}
			total += h - l
			prev = h
		}
		if prev != tc.hi || total != tc.hi-tc.lo {
			t.Fatalf("cut(%d,%d,%d) covers %d ending at %d", tc.lo, tc.hi, tc.parts, total, prev)
		}
	}
}

func TestBalancerPicks(t *testing.T) {
	noLoad := func(int) int64 { return 0 }
	noKey := func() uint64 { return 0 }

	rr := RoundRobin()
	for i := 0; i < 8; i++ {
		if got := rr.Pick(4, noLoad, noKey); got != i%4 {
			t.Fatalf("round-robin pick %d = %d, want %d", i, got, i%4)
		}
	}

	rand := Random()
	for i := 0; i < 100; i++ {
		if got := rand.Pick(4, noLoad, noKey); got < 0 || got >= 4 {
			t.Fatalf("random pick out of range: %d", got)
		}
	}

	loads := []int64{5, 1, 7}
	if got := LeastLoaded().Pick(3, func(i int) int64 { return loads[i] }, noKey); got != 1 {
		t.Fatalf("least-loaded pick = %d, want 1", got)
	}

	aff := Affinity()
	key := func() uint64 { return 42 }
	first := aff.Pick(4, noLoad, key)
	for i := 0; i < 10; i++ {
		if got := aff.Pick(4, noLoad, key); got != first {
			t.Fatalf("affinity pick moved from %d to %d for the same key", first, got)
		}
	}
}

func TestAffinityRoutesSubmitterToOneShard(t *testing.T) {
	r, err := New(
		WithBalancer(Affinity()),
		WithShards(worksteal.NewPool(1), worksteal.NewPool(1), worksteal.NewPool(1), worksteal.NewPool(1)),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()
	// From a fixed goroutine, every loop must land on the same shard:
	// exactly one shard accumulates tasks across repeated loops.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for rep := 0; rep < 5; rep++ {
			_ = r.ParallelForCtx(context.Background(), 0, 256, 16, func(_, _ int) {})
		}
	}()
	wg.Wait()
	active := 0
	for _, st := range r.ShardStats() {
		if st.Snapshot.TasksExecuted > 0 {
			active++
		}
	}
	if active != 1 {
		t.Fatalf("affinity spread one submitter across %d shards, want 1", active)
	}
}

func TestParseBalancer(t *testing.T) {
	for _, name := range Balancers {
		b, err := ParseBalancer(name)
		if err != nil {
			t.Fatalf("ParseBalancer(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Fatalf("ParseBalancer(%q).Name() = %q", name, b.Name())
		}
	}
	if b, err := ParseBalancer(""); err != nil || b.Name() != "round-robin" {
		t.Fatalf("ParseBalancer(\"\") = %v, %v; want round-robin", b, err)
	}
	if _, err := ParseBalancer("nope"); err == nil {
		t.Fatal("ParseBalancer(\"nope\") should fail")
	}
}

func TestNestedResolver(t *testing.T) {
	inner, err := New(WithShards(worksteal.NewPool(1), worksteal.NewPool(1)))
	if err != nil {
		t.Fatalf("New inner: %v", err)
	}
	outer, err := New(WithBalancer(LeastLoaded()), WithShards(inner, forkjoin.NewTeam(1)))
	if err != nil {
		t.Fatalf("New outer: %v", err)
	}
	defer outer.Close() // closes inner through ownership
	var n atomic.Int64
	if err := outer.ParallelForCtx(context.Background(), 0, 1000, 50, func(l, h int) {
		n.Add(int64(h - l))
	}); err != nil {
		t.Fatalf("ParallelForCtx: %v", err)
	}
	if n.Load() != 1000 {
		t.Fatalf("covered %d iterations, want 1000", n.Load())
	}
}
