// Package shard implements sharded multi-pool scheduling: a Resolver
// routes parallel loops, reductions, and task submissions across N
// shards — each an independent worksteal.Pool or forkjoin.Team — via a
// pluggable load balancer. Sharding bounds each steal-contention
// domain to one shard's workers: at high core counts a single
// work-stealing pool serializes chunk distribution through one
// stealing protocol (the contention the reproduced paper's flat-loop
// results foreshadow), whereas N shards steal only among themselves.
//
// The package follows the resolver shape of bxcodec/dbresolver — one
// facade resolving submissions across swappable backends behind
// swappable balancers — transplanted from database connections to
// schedulers. The Resolver is itself an Executor, so resolvers nest.
package shard

import (
	"context"

	"threading/internal/forkjoin"
	"threading/internal/worksteal"
)

// Executor is the runtime-neutral submission surface shared by
// worksteal.Pool, forkjoin.Team, and Resolver. It is the stable
// interface the root threading package re-exports: code written
// against it runs unchanged on a single pool, a single team, or a
// sharded resolver over any mix of the two.
//
// All range arguments are half-open [lo, hi). A grain < 1 selects the
// implementation's default chunking; a grain > 0 requests chunks of at
// most that many iterations (mapped to ForDAC grain on pools and the
// dynamic schedule's chunk size on teams).
type Executor interface {
	// ParallelForCtx runs body once per chunk of [lo, hi) and blocks
	// until the whole loop has completed. Cancellation is observed at
	// chunk boundaries; the first failure (context error or wrapped
	// panic) is returned.
	ParallelForCtx(ctx context.Context, lo, hi, grain int, body func(l, h int)) error
	// ParallelReduceCtx is ParallelForCtx with a float64 reduction:
	// body folds each chunk into an accumulator seeded with identity,
	// and combine — which must be associative and commutative — folds
	// the partial results. On error the identity is returned.
	ParallelReduceCtx(ctx context.Context, lo, hi, grain int, identity float64,
		body func(l, h int, acc float64) float64,
		combine func(a, b float64) float64) (float64, error)
	// SubmitCtx schedules fn to run asynchronously and returns without
	// waiting. Completion and failures are observed through Quiesce.
	SubmitCtx(ctx context.Context, fn func()) error
	// Quiesce blocks until every SubmitCtx task has completed and
	// returns the first failure recorded since the previous Quiesce.
	Quiesce() error
	// Close releases the executor's workers. Callers must Quiesce
	// first; the executor must not be used afterwards.
	Close()
}

// PendingWorker is implemented by executors that expose a conservative
// queued-work counter. The least-loaded balancer folds it into a
// shard's load alongside the Resolver's own in-flight count.
type PendingWorker interface {
	PendingWork() int64
}

// The three executors of the tentpole contract.
var (
	_ Executor = (*worksteal.Pool)(nil)
	_ Executor = (*forkjoin.Team)(nil)
	_ Executor = (*Resolver)(nil)

	_ PendingWorker = (*worksteal.Pool)(nil)
	_ PendingWorker = (*forkjoin.Team)(nil)
	_ PendingWorker = (*Resolver)(nil)
)
