package shard

import (
	"runtime"
	"sync"
)

// submitterKey returns a lazily computed, memoized key identifying the
// submitting goroutine. Only balancers that ask for the key (affinity)
// pay its cost: one runtime.Stack header parse per routed operation.
func submitterKey() func() uint64 {
	var once sync.Once
	var key uint64
	return func() uint64 {
		once.Do(func() { key = goroutineID() })
		return key
	}
}

// goroutineID parses the current goroutine's id from the
// runtime.Stack header ("goroutine 123 [running]:"). Go deliberately
// exposes no cheaper identity; this is the standard workaround, paid
// only on the submission path and only under the affinity balancer.
func goroutineID() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = "goroutine "
	if n <= len(prefix) {
		return 0
	}
	var id uint64
	for _, c := range buf[len(prefix):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
