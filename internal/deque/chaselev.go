package deque

import "sync/atomic"

// minRingCap is the initial capacity of a ChaseLev ring buffer.
// It must be a power of two.
const minRingCap = 64

// ring is a fixed-size circular buffer of atomically accessed slots.
// Elements are addressed by an ever-increasing int64 index modulo the
// ring size; the mask makes the modulo a single AND.
type ring[T any] struct {
	mask  int64
	slots []atomic.Pointer[T]
}

func newRing[T any](capacity int64) *ring[T] {
	return &ring[T]{
		mask:  capacity - 1,
		slots: make([]atomic.Pointer[T], capacity),
	}
}

func (r *ring[T]) load(i int64) *T     { return r.slots[i&r.mask].Load() }
func (r *ring[T]) store(i int64, v *T) { r.slots[i&r.mask].Store(v) }
func (r *ring[T]) capacity() int64     { return r.mask + 1 }

// grow returns a ring of twice the capacity holding the elements in
// the logical index range [top, bottom).
func (r *ring[T]) grow(top, bottom int64) *ring[T] {
	next := newRing[T](2 * r.capacity())
	for i := top; i < bottom; i++ {
		next.store(i, r.load(i))
	}
	return next
}

// ChaseLev is a lock-free, growable work-stealing deque. The zero
// value is not usable; construct with NewChaseLev.
//
// The owner operates on the bottom end without synchronization beyond
// atomic loads and stores; thieves synchronize on the top index with a
// compare-and-swap. Go's sync/atomic operations are sequentially
// consistent, which satisfies the fence requirements of the original
// algorithm.
// top is padded away from bottom and buf: thieves hammer top with
// loads and CASes while the owner updates bottom on every push/pop,
// and with all three words on one line every steal attempt would
// invalidate the owner's line (and vice versa). Splitting them keeps
// the owner's hot push/pop traffic on a line thieves only read when
// sizing a batch.
type ChaseLev[T any] struct {
	top    atomic.Int64
	_      [56]byte // rest of top's cache line (64 - 8)
	bottom atomic.Int64
	buf    atomic.Pointer[ring[T]]
}

// NewChaseLev returns an empty lock-free deque.
func NewChaseLev[T any]() *ChaseLev[T] {
	d := &ChaseLev[T]{}
	d.buf.Store(newRing[T](minRingCap))
	return d
}

// PushBottom adds v at the owner end. Only the owner may call it.
func (d *ChaseLev[T]) PushBottom(v *T) {
	b := d.bottom.Load()
	t := d.top.Load()
	buf := d.buf.Load()
	if b-t >= buf.capacity() {
		buf = buf.grow(t, b)
		d.buf.Store(buf)
	}
	buf.store(b, v)
	d.bottom.Store(b + 1)
}

// PopBottom removes the most recently pushed element, or returns nil
// if the deque is empty. Only the owner may call it.
func (d *ChaseLev[T]) PopBottom() *T {
	b := d.bottom.Load() - 1
	buf := d.buf.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Deque was empty; restore the invariant bottom >= top.
		d.bottom.Store(t)
		return nil
	}
	v := buf.load(b)
	if t == b {
		// Last element: race against thieves for it.
		if !d.top.CompareAndSwap(t, t+1) {
			v = nil // a thief won
		}
		d.bottom.Store(t + 1)
	}
	return v
}

// Steal removes the oldest element, or returns nil if the deque is
// empty or the steal lost a race with another thief or the owner.
func (d *ChaseLev[T]) Steal() *T {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	buf := d.buf.Load()
	v := buf.load(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return v
}

// StealHalf removes up to half of the queued elements from the top
// into buf. A single-CAS multi-element steal is unsound on a pure
// Chase-Lev deque (the owner pops non-last elements without
// synchronizing against top, so a batch reservation can overlap pops
// that already happened), so each element is taken with its own top
// CAS — exactly the proven Steal step. The batch still amortizes the
// expensive part of stealing: victim selection, the cache miss on the
// victim's descriptor, and the wake-up of further thieves happen once
// per visit instead of once per task. The run stops at the first lost
// race.
func (d *ChaseLev[T]) StealHalf(buf []*T) int {
	t := d.top.Load()
	b := d.bottom.Load()
	avail := b - t
	if avail <= 0 {
		return 0
	}
	want := int((avail + 1) / 2)
	if want > len(buf) {
		want = len(buf)
	}
	n := 0
	for n < want {
		v := d.Steal()
		if v == nil {
			break
		}
		buf[n] = v
		n++
	}
	return n
}

// Len reports the approximate number of queued elements.
func (d *ChaseLev[T]) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}
