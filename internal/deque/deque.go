// Package deque provides work-stealing double-ended queues.
//
// Two implementations are provided behind the same interface:
//
//   - ChaseLev: a lock-free growable deque after Chase and Lev
//     ("Dynamic Circular Work-Stealing Deque", SPAA 2005), the design
//     used by Cilk-style runtimes. The owner pushes and pops at the
//     bottom without locking; thieves steal from the top with a single
//     compare-and-swap.
//
//   - Locked: a mutex-protected deque, modelling the lock-based task
//     deques of the Intel OpenMP task runtime. Every operation takes
//     the lock, so concurrent steals serialize against the owner.
//
// The paper this repository reproduces attributes the performance gap
// between cilk_spawn and omp task on recursive task parallelism
// (Fibonacci, Fig. 5) to exactly this difference, so both designs are
// first-class here and the schedulers in internal/worksteal can be
// configured with either.
package deque

// Deque is a work-stealing deque of *T. The owner worker calls
// PushBottom and PopBottom; any other worker may call Steal
// concurrently. A nil return means the deque was (or appeared) empty.
type Deque[T any] interface {
	// PushBottom adds v to the bottom (owner end) of the deque.
	// Only the owning worker may call it.
	PushBottom(v *T)
	// PopBottom removes and returns the most recently pushed element,
	// or nil if the deque is empty. Only the owning worker may call it.
	PopBottom() *T
	// Steal removes and returns the oldest element, or nil if the
	// deque is empty or the steal lost a race. Any worker may call it.
	Steal() *T
	// StealHalf removes up to half of the queued elements (rounded up,
	// so a single element is still stealable) from the top, oldest
	// first, stores them into buf, and returns how many were taken —
	// never more than len(buf). Zero means the deque was (or appeared)
	// empty, or the steal lost a race. Any worker may call it.
	//
	// Batch stealing is what lets a thief migrate half a victim's loop
	// chunks in one visit instead of re-running the victim-selection
	// protocol once per task — the steal-serialization the reproduced
	// paper blames for cilk_for's flat-loop losses. The Locked backend
	// migrates the whole batch under a single lock acquisition; the
	// Chase-Lev backend pays one top CAS per element (each individually
	// linearizable, so no element is ever lost or duplicated) but still
	// amortizes the visit.
	StealHalf(buf []*T) int
	// Len reports the approximate number of elements. It is only a
	// snapshot: concurrent operations may change it immediately.
	Len() int
}

// Kind selects a deque implementation.
type Kind int

const (
	// KindChaseLev selects the lock-free Chase-Lev deque.
	KindChaseLev Kind = iota
	// KindLocked selects the mutex-based deque.
	KindLocked
)

// String returns the human-readable name of the deque kind.
func (k Kind) String() string {
	switch k {
	case KindChaseLev:
		return "chase-lev"
	case KindLocked:
		return "locked"
	default:
		return "unknown"
	}
}

// New returns an empty deque of the requested kind.
func New[T any](kind Kind) Deque[T] {
	switch kind {
	case KindLocked:
		return NewLocked[T]()
	default:
		return NewChaseLev[T]()
	}
}
