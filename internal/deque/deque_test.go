package deque

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

var kinds = []Kind{KindChaseLev, KindLocked}

func TestKindString(t *testing.T) {
	if KindChaseLev.String() != "chase-lev" {
		t.Errorf("KindChaseLev.String() = %q", KindChaseLev.String())
	}
	if KindLocked.String() != "locked" {
		t.Errorf("KindLocked.String() = %q", KindLocked.String())
	}
	if Kind(99).String() != "unknown" {
		t.Errorf("Kind(99).String() = %q", Kind(99).String())
	}
}

func TestEmpty(t *testing.T) {
	for _, k := range kinds {
		d := New[int](k)
		if got := d.PopBottom(); got != nil {
			t.Errorf("%v: PopBottom on empty = %v, want nil", k, got)
		}
		if got := d.Steal(); got != nil {
			t.Errorf("%v: Steal on empty = %v, want nil", k, got)
		}
		if d.Len() != 0 {
			t.Errorf("%v: Len on empty = %d, want 0", k, d.Len())
		}
	}
}

func TestLIFOOwner(t *testing.T) {
	for _, k := range kinds {
		d := New[int](k)
		vals := []int{1, 2, 3, 4, 5}
		for i := range vals {
			d.PushBottom(&vals[i])
		}
		if d.Len() != 5 {
			t.Errorf("%v: Len = %d, want 5", k, d.Len())
		}
		for i := len(vals) - 1; i >= 0; i-- {
			got := d.PopBottom()
			if got == nil || *got != vals[i] {
				t.Fatalf("%v: PopBottom = %v, want %d", k, got, vals[i])
			}
		}
		if got := d.PopBottom(); got != nil {
			t.Errorf("%v: PopBottom after drain = %v, want nil", k, got)
		}
	}
}

func TestFIFOSteal(t *testing.T) {
	for _, k := range kinds {
		d := New[int](k)
		vals := []int{10, 20, 30}
		for i := range vals {
			d.PushBottom(&vals[i])
		}
		for i := range vals {
			got := d.Steal()
			if got == nil || *got != vals[i] {
				t.Fatalf("%v: Steal = %v, want %d", k, got, vals[i])
			}
		}
		if got := d.Steal(); got != nil {
			t.Errorf("%v: Steal after drain = %v, want nil", k, got)
		}
	}
}

func TestMixedEnds(t *testing.T) {
	for _, k := range kinds {
		d := New[int](k)
		vals := []int{1, 2, 3, 4}
		for i := range vals {
			d.PushBottom(&vals[i])
		}
		if got := d.Steal(); got == nil || *got != 1 {
			t.Fatalf("%v: first Steal = %v, want 1", k, got)
		}
		if got := d.PopBottom(); got == nil || *got != 4 {
			t.Fatalf("%v: PopBottom = %v, want 4", k, got)
		}
		if got := d.Steal(); got == nil || *got != 2 {
			t.Fatalf("%v: second Steal = %v, want 2", k, got)
		}
		if got := d.PopBottom(); got == nil || *got != 3 {
			t.Fatalf("%v: last PopBottom = %v, want 3", k, got)
		}
		if d.Len() != 0 {
			t.Errorf("%v: Len = %d, want 0", k, d.Len())
		}
	}
}

// TestGrow pushes past the initial ring capacity to exercise ChaseLev
// ring growth, interleaving steals so the live window straddles a wrap.
func TestGrow(t *testing.T) {
	d := NewChaseLev[int]()
	const n = 10 * minRingCap
	vals := make([]int, n)
	stolen := 0
	for i := 0; i < n; i++ {
		vals[i] = i
		d.PushBottom(&vals[i])
		if i%3 == 0 {
			if got := d.Steal(); got == nil || *got != stolen {
				t.Fatalf("Steal = %v, want %d", got, stolen)
			}
			stolen++
		}
	}
	// Drain the rest from the bottom and verify the set of values.
	seen := make(map[int]bool)
	for {
		v := d.PopBottom()
		if v == nil {
			break
		}
		if seen[*v] {
			t.Fatalf("value %d popped twice", *v)
		}
		seen[*v] = true
	}
	if len(seen) != n-stolen {
		t.Fatalf("popped %d values, want %d", len(seen), n-stolen)
	}
	for i := stolen; i < n; i++ {
		if !seen[i] {
			t.Fatalf("value %d lost", i)
		}
	}
}

// TestQuickSequential drives a random sequence of operations against a
// reference slice model and checks each result, for both kinds.
func TestQuickSequential(t *testing.T) {
	for _, k := range kinds {
		k := k
		check := func(ops []uint8) bool {
			d := New[int](k)
			var model []int
			next := 0
			vals := make([]int, 0, len(ops))
			for _, op := range ops {
				switch op % 3 {
				case 0: // push
					vals = append(vals, next)
					d.PushBottom(&vals[len(vals)-1])
					model = append(model, next)
					next++
				case 1: // pop bottom
					got := d.PopBottom()
					if len(model) == 0 {
						if got != nil {
							return false
						}
					} else {
						want := model[len(model)-1]
						model = model[:len(model)-1]
						if got == nil || *got != want {
							return false
						}
					}
				case 2: // steal
					got := d.Steal()
					if len(model) == 0 {
						if got != nil {
							return false
						}
					} else {
						want := model[0]
						model = model[1:]
						if got == nil || *got != want {
							return false
						}
					}
				}
			}
			return d.Len() == len(model)
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
}

// TestConcurrentSteal runs one owner against several thieves and
// verifies that every pushed element is consumed exactly once.
func TestConcurrentSteal(t *testing.T) {
	for _, k := range kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			const (
				n       = 100000
				thieves = 4
			)
			d := New[int](k)
			consumed := make([]atomic.Int32, n)
			var done atomic.Bool
			var wg sync.WaitGroup
			for i := 0; i < thieves; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !done.Load() {
						if v := d.Steal(); v != nil {
							consumed[*v].Add(1)
						}
					}
					// Final sweep after the owner finishes.
					for {
						v := d.Steal()
						if v == nil {
							return
						}
						consumed[*v].Add(1)
					}
				}()
			}
			vals := make([]int, n)
			for i := 0; i < n; i++ {
				vals[i] = i
				d.PushBottom(&vals[i])
				if i%7 == 0 {
					if v := d.PopBottom(); v != nil {
						consumed[*v].Add(1)
					}
				}
			}
			for {
				v := d.PopBottom()
				if v == nil {
					break
				}
				consumed[*v].Add(1)
			}
			done.Store(true)
			wg.Wait()
			// The deque can legitimately look empty to the owner's
			// final PopBottom while a thief holds the last element, so
			// check totals only after everyone stopped.
			for i := range consumed {
				if c := consumed[i].Load(); c != 1 {
					t.Fatalf("element %d consumed %d times", i, c)
				}
			}
		})
	}
}

func TestStealHalfSequential(t *testing.T) {
	for _, k := range kinds {
		d := New[int](k)
		vals := make([]int, 10)
		for i := range vals {
			vals[i] = i
			d.PushBottom(&vals[i])
		}
		buf := make([]*int, 16)
		// Half of 10 is 5, oldest first.
		if n := d.StealHalf(buf); n != 5 {
			t.Fatalf("%v: StealHalf took %d, want 5", k, n)
		}
		for i := 0; i < 5; i++ {
			if *buf[i] != i {
				t.Fatalf("%v: buf[%d] = %d, want %d", k, i, *buf[i], i)
			}
		}
		// 5 remain; half rounded up is 3.
		if n := d.StealHalf(buf); n != 3 {
			t.Fatalf("%v: second StealHalf took %d, want 3", k, n)
		}
		// A short buffer caps the batch.
		if n := d.StealHalf(buf[:1]); n != 1 {
			t.Fatalf("%v: capped StealHalf took %d, want 1", k, n)
		}
		// One element left: half rounds up, so it is stealable.
		if n := d.StealHalf(buf); n != 1 {
			t.Fatalf("%v: last StealHalf took %d, want 1", k, n)
		}
		if n := d.StealHalf(buf); n != 0 {
			t.Fatalf("%v: StealHalf on empty took %d, want 0", k, n)
		}
	}
}

func TestStealHalfQuickSequential(t *testing.T) {
	for _, k := range kinds {
		k := k
		check := func(ops []uint8) bool {
			d := New[int](k)
			var model []int
			next := 0
			vals := make([]int, 0, len(ops))
			buf := make([]*int, 4)
			for _, op := range ops {
				switch op % 3 {
				case 0, 1: // push twice as often as batch-steal
					vals = append(vals, next)
					d.PushBottom(&vals[len(vals)-1])
					model = append(model, next)
					next++
				case 2:
					n := d.StealHalf(buf)
					want := (len(model) + 1) / 2
					if want > len(buf) {
						want = len(buf)
					}
					if n != want {
						return false
					}
					for i := 0; i < n; i++ {
						if *buf[i] != model[i] {
							return false
						}
					}
					model = model[n:]
				}
			}
			return d.Len() == len(model)
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
}

// TestConcurrentStealHalf runs one owner (pushing and popping) against
// thieves that mix single and batch steals, and verifies every element
// is consumed exactly once — the no-loss/no-duplication property the
// scheduler relies on.
func TestConcurrentStealHalf(t *testing.T) {
	for _, k := range kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			const (
				n       = 100000
				thieves = 4
			)
			d := New[int](k)
			consumed := make([]atomic.Int32, n)
			var done atomic.Bool
			var wg sync.WaitGroup
			for i := 0; i < thieves; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					buf := make([]*int, 8)
					take := func() bool {
						if i%2 == 0 {
							m := d.StealHalf(buf)
							for j := 0; j < m; j++ {
								consumed[*buf[j]].Add(1)
							}
							return m > 0
						}
						if v := d.Steal(); v != nil {
							consumed[*v].Add(1)
							return true
						}
						return false
					}
					for !done.Load() {
						take()
					}
					for take() {
					}
				}()
			}
			vals := make([]int, n)
			for i := 0; i < n; i++ {
				vals[i] = i
				d.PushBottom(&vals[i])
				if i%7 == 0 {
					if v := d.PopBottom(); v != nil {
						consumed[*v].Add(1)
					}
				}
			}
			for {
				v := d.PopBottom()
				if v == nil {
					break
				}
				consumed[*v].Add(1)
			}
			done.Store(true)
			wg.Wait()
			for i := range consumed {
				if c := consumed[i].Load(); c != 1 {
					t.Fatalf("element %d consumed %d times", i, c)
				}
			}
		})
	}
}

func BenchmarkPushPop(b *testing.B) {
	for _, k := range kinds {
		b.Run(k.String(), func(b *testing.B) {
			d := New[int](k)
			v := 42
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.PushBottom(&v)
				d.PopBottom()
			}
		})
	}
}

func BenchmarkStealContention(b *testing.B) {
	for _, k := range kinds {
		b.Run(k.String(), func(b *testing.B) {
			d := New[int](k)
			v := 42
			var wg sync.WaitGroup
			var done atomic.Bool
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !done.Load() {
						d.Steal()
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.PushBottom(&v)
				d.PopBottom()
			}
			b.StopTimer()
			done.Store(true)
			wg.Wait()
		})
	}
}
