package deque

import "sync"

// Locked is a mutex-protected work-stealing deque. It models the
// lock-based task deques used by the Intel OpenMP runtime: the owner
// and every thief contend on a single lock, so under heavy stealing
// (fine-grained recursive tasks such as Fibonacci) the lock becomes a
// serialization point. The zero value is ready to use.
type Locked[T any] struct {
	mu    sync.Mutex
	items []*T
}

// NewLocked returns an empty lock-based deque.
func NewLocked[T any]() *Locked[T] {
	return &Locked[T]{}
}

// PushBottom adds v at the owner end.
func (d *Locked[T]) PushBottom(v *T) {
	d.mu.Lock()
	d.items = append(d.items, v)
	d.mu.Unlock()
}

// PopBottom removes the most recently pushed element, or returns nil
// if the deque is empty.
func (d *Locked[T]) PopBottom() *T {
	d.mu.Lock()
	n := len(d.items)
	if n == 0 {
		d.mu.Unlock()
		return nil
	}
	v := d.items[n-1]
	d.items[n-1] = nil // release for GC
	d.items = d.items[:n-1]
	d.mu.Unlock()
	return v
}

// Steal removes the oldest element, or returns nil if the deque is
// empty.
func (d *Locked[T]) Steal() *T {
	d.mu.Lock()
	if len(d.items) == 0 {
		d.mu.Unlock()
		return nil
	}
	v := d.items[0]
	d.items[0] = nil
	d.items = d.items[1:]
	d.mu.Unlock()
	return v
}

// StealHalf removes up to half of the queued elements (rounded up)
// from the top into buf under a single lock acquisition — one
// serialization point for the whole batch, where per-element Steal
// calls would contend with the owner once per task.
func (d *Locked[T]) StealHalf(buf []*T) int {
	d.mu.Lock()
	n := (len(d.items) + 1) / 2
	if n > len(buf) {
		n = len(buf)
	}
	for i := 0; i < n; i++ {
		buf[i] = d.items[i]
		d.items[i] = nil
	}
	d.items = d.items[n:]
	d.mu.Unlock()
	return n
}

// Len reports the current number of queued elements.
func (d *Locked[T]) Len() int {
	d.mu.Lock()
	n := len(d.items)
	d.mu.Unlock()
	return n
}
