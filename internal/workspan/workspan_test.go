package workspan

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

const ms = time.Millisecond

func TestSerialChain(t *testing.T) {
	// Three sequential strands: work == span, parallelism 1.
	r := Profile(Options{}, func(s Scope) {
		s.Charge(10 * ms)
		s.Charge(20 * ms)
		s.Charge(30 * ms)
	})
	if r.Work != 60*ms || r.Span != 60*ms {
		t.Fatalf("work=%v span=%v, want 60ms both", r.Work, r.Span)
	}
	if p := r.Parallelism(); math.Abs(p-1) > 1e-9 {
		t.Fatalf("parallelism = %g, want 1", p)
	}
}

func TestTwoParallelChildren(t *testing.T) {
	// Root spawns two 100ms children and does nothing itself:
	// work 200ms, span 100ms, parallelism 2.
	r := Profile(Options{}, func(s Scope) {
		s.Spawn(func(c Scope) { c.Charge(100 * ms) })
		s.Spawn(func(c Scope) { c.Charge(100 * ms) })
		s.Sync()
	})
	if r.Work != 200*ms {
		t.Fatalf("work = %v", r.Work)
	}
	if r.Span != 100*ms {
		t.Fatalf("span = %v", r.Span)
	}
	if p := r.Parallelism(); math.Abs(p-2) > 1e-9 {
		t.Fatalf("parallelism = %g, want 2", p)
	}
	if r.Tasks != 3 || r.Spawns != 2 || r.MaxDepth != 1 {
		t.Fatalf("counts: %+v", r)
	}
}

func TestSpawnPlusContinuation(t *testing.T) {
	// Child does 100ms while the continuation does 40ms, then a 10ms
	// tail after sync: span = max(100, 40) + 10 = 110; work = 150.
	r := Profile(Options{}, func(s Scope) {
		s.Spawn(func(c Scope) { c.Charge(100 * ms) })
		s.Charge(40 * ms)
		s.Sync()
		s.Charge(10 * ms)
	})
	if r.Work != 150*ms {
		t.Fatalf("work = %v", r.Work)
	}
	if r.Span != 110*ms {
		t.Fatalf("span = %v, want 110ms", r.Span)
	}
}

func TestSpawnOffsetOnSpanPath(t *testing.T) {
	// 30ms of work before the spawn is on the child's path too:
	// span = 30 + 100 = 130.
	r := Profile(Options{}, func(s Scope) {
		s.Charge(30 * ms)
		s.Spawn(func(c Scope) { c.Charge(100 * ms) })
		s.Sync()
	})
	if r.Span != 130*ms {
		t.Fatalf("span = %v, want 130ms", r.Span)
	}
}

func TestSequentialSpawnsWithSyncBetween(t *testing.T) {
	// Sync between spawns serializes them: span = 100 + 100.
	r := Profile(Options{}, func(s Scope) {
		s.Spawn(func(c Scope) { c.Charge(100 * ms) })
		s.Sync()
		s.Spawn(func(c Scope) { c.Charge(100 * ms) })
		s.Sync()
	})
	if r.Span != 200*ms {
		t.Fatalf("span = %v, want 200ms", r.Span)
	}
	if r.Syncs != 2 { // explicit syncs only
		t.Fatalf("syncs = %d", r.Syncs)
	}
}

func TestImplicitSyncAtReturn(t *testing.T) {
	// No explicit sync: the implicit join must still fold the child
	// into the span.
	r := Profile(Options{}, func(s Scope) {
		s.Spawn(func(c Scope) { c.Charge(100 * ms) })
	})
	if r.Span != 100*ms || r.Work != 100*ms {
		t.Fatalf("work=%v span=%v", r.Work, r.Span)
	}
}

// balancedTree spawns a perfect binary tree of depth d with leaf
// charge c: work = 2^d * c, span = d levels... all internal work is
// zero so span = c (all leaves parallel).
func balancedTree(s Scope, depth int, c time.Duration) {
	if depth == 0 {
		s.Charge(c)
		return
	}
	s.Spawn(func(l Scope) { balancedTree(l, depth-1, c) })
	balancedTree(s, depth-1, c)
	s.Sync()
}

func TestBalancedTreeParallelism(t *testing.T) {
	const depth = 6
	r := Profile(Options{}, func(s Scope) { balancedTree(s, depth, 10*ms) })
	wantWork := time.Duration(1<<depth) * 10 * ms
	if r.Work != wantWork {
		t.Fatalf("work = %v, want %v", r.Work, wantWork)
	}
	if r.Span != 10*ms {
		t.Fatalf("span = %v, want 10ms (all leaves parallel)", r.Span)
	}
	if p := r.Parallelism(); math.Abs(p-64) > 1e-9 {
		t.Fatalf("parallelism = %g, want 64", p)
	}
	if r.MaxDepth != depth {
		t.Fatalf("depth = %d, want %d", r.MaxDepth, depth)
	}
}

func TestBurdenedSpanExceedsSpan(t *testing.T) {
	r := Profile(Options{SpawnBurden: ms, SyncBurden: ms}, func(s Scope) {
		balancedTree(s, 4, 10*ms)
	})
	if r.BurdenedSpan <= r.Span {
		t.Fatalf("burdened span %v not greater than span %v", r.BurdenedSpan, r.Span)
	}
	if r.BurdenedParallelism() >= r.Parallelism() {
		t.Fatal("burdened parallelism should be lower")
	}
}

func TestSpeedupBound(t *testing.T) {
	r := Profile(Options{}, func(s Scope) {
		s.Spawn(func(c Scope) { c.Charge(100 * ms) })
		s.Spawn(func(c Scope) { c.Charge(100 * ms) })
		s.Sync()
	})
	if b := r.SpeedupBound(1); b != 1 {
		t.Fatalf("bound(1) = %g", b)
	}
	if b := r.SpeedupBound(16); math.Abs(b-2) > 1e-9 {
		t.Fatalf("bound(16) = %g, want 2 (parallelism-limited)", b)
	}
}

func TestNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge not rejected")
		}
	}()
	Profile(Options{}, func(s Scope) { s.Charge(-ms) })
}

func TestWallClockAddsTime(t *testing.T) {
	r := Profile(Options{WallClock: true}, func(s Scope) {
		time.Sleep(5 * ms)
		s.Charge(0)
	})
	if r.Work < 4*ms {
		t.Fatalf("wall-clock work %v did not capture the sleep", r.Work)
	}
}

func TestReportString(t *testing.T) {
	r := Profile(Options{}, func(s Scope) { s.Charge(ms) })
	out := r.String()
	for _, want := range []string{"work:", "span:", "parallelism:", "tasks:"} {
		if !contains(out, want) {
			t.Fatalf("report %q lacks %q", out, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestWorkInvariant: work is charge-order independent and equals the
// sum of all charges regardless of graph shape.
func TestWorkInvariant(t *testing.T) {
	check := func(charges []uint16, spawnMask uint32) bool {
		var total time.Duration
		r := Profile(Options{}, func(s Scope) {
			for i, c := range charges {
				d := time.Duration(c) * time.Microsecond
				total += d
				if spawnMask&(1<<(i%32)) != 0 {
					s.Spawn(func(cs Scope) { cs.Charge(d) })
				} else {
					s.Charge(d)
				}
			}
			s.Sync()
		})
		return r.Work == total && r.Span <= r.Work &&
			(len(charges) == 0 || r.Span > 0 || total == 0)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSpanLowerBound: span is at least the largest single charge.
func TestSpanLowerBound(t *testing.T) {
	check := func(charges []uint16) bool {
		if len(charges) == 0 {
			return true
		}
		var maxC time.Duration
		r := Profile(Options{}, func(s Scope) {
			for _, c := range charges {
				d := time.Duration(c) * time.Microsecond
				if d > maxC {
					maxC = d
				}
				s.Spawn(func(cs Scope) { cs.Charge(d) })
			}
			s.Sync()
		})
		return r.Span >= maxC
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
