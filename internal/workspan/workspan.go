// Package workspan implements a Cilkview-style scalability analyzer —
// the "Tool support" column of the paper's Table III credits Cilk
// Plus with Cilkview, which executes a program serially while
// computing the *work* (total computation, T1) and *span* (critical
// path, T-infinity) of its task DAG; their ratio is the program's
// inherent parallelism, an upper bound on achievable speedup on any
// number of processors.
//
// Profile runs a task graph serially on the calling goroutine,
// tracking work and span online with the standard strand algebra:
// a spawn forks the span path, a sync joins it with a max. Costs are
// charged explicitly (Charge) for deterministic analysis, with
// optional wall-clock strand timing for real code.
//
// The burdened span adds a fixed scheduling cost per spawn and per
// sync, giving Cilkview's "burdened parallelism" — the realistic
// bound once runtime overhead is priced in.
package workspan

import (
	"fmt"
	"time"
)

// Scope is the instrumented task surface: the same Spawn/Sync shape
// as models.TaskScope plus explicit cost accounting.
type Scope interface {
	// Spawn declares a child task; in the serial profile it runs
	// immediately, but its costs land on a parallel branch of the
	// DAG.
	Spawn(fn func(Scope))
	// Sync joins all children spawned so far in this task.
	Sync()
	// Charge accounts d of computation on the current strand.
	Charge(d time.Duration)
}

// Options configure a profile run.
type Options struct {
	// WallClock adds real elapsed time between scope events to the
	// charged costs. Off by default so tests and analyses are
	// deterministic.
	WallClock bool
	// SpawnBurden and SyncBurden are the per-event scheduling costs
	// used for the burdened span (Cilkview's burdened parallelism).
	// Zero values select 1 microsecond each.
	SpawnBurden, SyncBurden time.Duration
}

// Report is the result of a profile run.
type Report struct {
	// Work is T1: the total computation of the DAG.
	Work time.Duration
	// Span is T-infinity: the critical path.
	Span time.Duration
	// BurdenedSpan is the critical path with per-spawn/sync burden.
	BurdenedSpan time.Duration
	// Tasks is the number of tasks (including the root).
	Tasks int
	// Spawns is the number of Spawn calls.
	Spawns int
	// Syncs is the number of explicit Sync calls (implicit
	// task-return joins are not counted).
	Syncs int
	// MaxDepth is the deepest spawn nesting.
	MaxDepth int
}

// Parallelism returns Work/Span — the inherent parallelism.
func (r Report) Parallelism() float64 {
	if r.Span <= 0 {
		return 0
	}
	return float64(r.Work) / float64(r.Span)
}

// BurdenedParallelism returns Work/BurdenedSpan.
func (r Report) BurdenedParallelism() float64 {
	if r.BurdenedSpan <= 0 {
		return 0
	}
	return float64(r.Work) / float64(r.BurdenedSpan)
}

// SpeedupBound returns the lesser of p and the parallelism — the
// Cilkview speedup bound on p processors.
func (r Report) SpeedupBound(p int) float64 {
	par := r.Parallelism()
	if float64(p) < par {
		return float64(p)
	}
	return par
}

// String renders the report in Cilkview's style.
func (r Report) String() string {
	return fmt.Sprintf(
		"work: %v\nspan: %v\nburdened span: %v\nparallelism: %.2f\nburdened parallelism: %.2f\ntasks: %d  spawns: %d  syncs: %d  max depth: %d",
		r.Work, r.Span, r.BurdenedSpan,
		r.Parallelism(), r.BurdenedParallelism(),
		r.Tasks, r.Spawns, r.Syncs, r.MaxDepth)
}

// profiler carries the run-wide accumulators.
type profiler struct {
	opts   Options
	work   time.Duration
	tasks  int
	spawns int
	syncs  int
	depth  int
	last   time.Time
}

// scope is one task's frame in the serial execution.
type scope struct {
	p *profiler
	// cspan: span from task start to the current point along the
	// continuation; bspan is its burdened twin.
	cspan, bspan time.Duration
	// mspan/mbspan: max over children of (span at spawn + child
	// span).
	mspan, mbspan time.Duration
	depth         int
}

// Profile executes root serially and returns its DAG metrics.
func Profile(opts Options, root func(Scope)) Report {
	if opts.SpawnBurden == 0 {
		opts.SpawnBurden = time.Microsecond
	}
	if opts.SyncBurden == 0 {
		opts.SyncBurden = time.Microsecond
	}
	p := &profiler{opts: opts, last: time.Now()}
	rootSpan, rootBSpan := p.runTask(root, 0)
	return Report{
		Work:         p.work,
		Span:         rootSpan,
		BurdenedSpan: rootBSpan,
		Tasks:        p.tasks,
		Spawns:       p.spawns,
		Syncs:        p.syncs,
		MaxDepth:     p.depth,
	}
}

// tick charges wall-clock time since the last event, when enabled.
func (p *profiler) tick(s *scope) {
	if !p.opts.WallClock {
		return
	}
	now := time.Now()
	d := now.Sub(p.last)
	p.last = now
	p.work += d
	s.cspan += d
	s.bspan += d
}

// runTask executes one task body and returns its total span and
// burdened span (after the implicit final sync).
func (p *profiler) runTask(fn func(Scope), depth int) (time.Duration, time.Duration) {
	p.tasks++
	if depth > p.depth {
		p.depth = depth
	}
	s := &scope{p: p, depth: depth}
	fn(s)
	s.join() // implicit sync at task return
	return s.cspan, s.bspan
}

func (s *scope) Charge(d time.Duration) {
	if d < 0 {
		panic("workspan: negative charge")
	}
	s.p.tick(s)
	s.p.work += d
	s.cspan += d
	s.bspan += d
}

func (s *scope) Spawn(fn func(Scope)) {
	s.p.tick(s)
	s.p.spawns++
	childSpan, childBSpan := s.p.runTask(fn, s.depth+1)
	if sp := s.cspan + childSpan; sp > s.mspan {
		s.mspan = sp
	}
	// Burden: the spawn itself costs scheduling time on the child's
	// path.
	if sp := s.bspan + s.p.opts.SpawnBurden + childBSpan; sp > s.mbspan {
		s.mbspan = sp
	}
	if s.p.opts.WallClock {
		s.p.last = time.Now() // child time was its own; restart strand
	}
}

// join folds outstanding children into the continuation span.
func (s *scope) join() {
	s.p.tick(s)
	if s.mspan > s.cspan {
		s.cspan = s.mspan
	}
	if s.mbspan > s.bspan {
		s.bspan = s.mbspan
	}
	s.mspan, s.mbspan = 0, 0
}

func (s *scope) Sync() {
	s.p.syncs++
	s.join()
	s.bspan += s.p.opts.SyncBurden
}
