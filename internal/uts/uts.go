// Package uts implements an Unbalanced Tree Search in the style of
// the UTS benchmark the paper's related work uses to compare task
// runtimes (Olivier and Prins, "Comparison of OpenMP 3.0 and Other
// Task Parallel Frameworks on Unbalanced Task Graphs"). The tree is
// defined implicitly by a hash function, so it occupies no memory, is
// perfectly reproducible, and its shape is *unbalanced and
// unpredictable* — the property that makes it a pure test of dynamic
// load balancing: a static partition of such a tree is always wrong.
//
// We implement the binomial variant: the root has RootChildren
// children; every other node has M children with probability Q and
// none otherwise. For M*Q < 1 the tree is finite with expected size
// RootChildren/(1-M*Q) + 1.
package uts

import (
	"sync/atomic"

	"threading/internal/models"
)

// Params describes a binomial UTS tree.
type Params struct {
	// Seed selects the tree.
	Seed uint64
	// RootChildren is the root's branching factor (b0).
	RootChildren int
	// M is the branching factor of interior non-root nodes.
	M int
	// QNum/QDen express the interior branching probability Q as a
	// rational, avoiding float state in the hot path. M*Q must be < 1
	// for the tree to be finite.
	QNum, QDen uint64
}

// ExpectedSize returns the expected node count of the tree.
func (p Params) ExpectedSize() float64 {
	q := float64(p.QNum) / float64(p.QDen)
	return 1 + float64(p.RootChildren)/(1-float64(p.M)*q)
}

// valid panics on parameter combinations that give infinite trees.
func (p Params) valid() {
	if p.QDen == 0 || p.RootChildren < 0 || p.M < 0 {
		panic("uts: malformed parameters")
	}
	if uint64(p.M)*p.QNum >= p.QDen {
		panic("uts: M*Q >= 1 gives an infinite expected tree")
	}
}

func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// childID derives child i's identity from its parent's.
func childID(parent uint64, i int) uint64 {
	return mix(parent ^ (uint64(i)+0x51E03B)<<17)
}

// numChildren returns a node's branching factor. The root (depth 0)
// always has RootChildren children; interior nodes draw from the
// binomial rule.
func (p Params) numChildren(id uint64, depth int) int {
	if depth == 0 {
		return p.RootChildren
	}
	// id is already a mixed hash; compare against Q scaled to 2^64.
	threshold := uint64(float64(p.QNum) / float64(p.QDen) * float64(1<<63) * 2)
	if mix(id^0xC0FFEE) < threshold {
		return p.M
	}
	return 0
}

// Root returns the tree's root node identity.
func (p Params) Root() uint64 { return mix(p.Seed) }

// NumChildren returns the branching factor of the node with the given
// identity at the given depth.
func (p Params) NumChildren(id uint64, depth int) int {
	return p.numChildren(id, depth)
}

// Child returns the identity of child i of the given node.
func (p Params) Child(id uint64, i int) uint64 { return childID(id, i) }

// CountSeq traverses the tree sequentially (explicit stack) and
// returns the node count.
func CountSeq(p Params) int64 {
	p.valid()
	type frame struct {
		id    uint64
		depth int
	}
	stack := []frame{{id: mix(p.Seed), depth: 0}}
	var count int64
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		n := p.numChildren(f.id, f.depth)
		for i := 0; i < n; i++ {
			stack = append(stack, frame{id: childID(f.id, i), depth: f.depth + 1})
		}
	}
	return count
}

// Count traverses the tree under model m with one task per subtree
// and returns the node count. Subtrees below the spawn threshold are
// counted sequentially inside their task; threshold 0 spawns at every
// node (maximum scheduler stress, as the UTS paper runs it).
// m must support tasks.
func Count(m models.Model, p Params, seqDepth int) int64 {
	p.valid()
	var count atomic.Int64
	m.TaskRun(func(s models.TaskScope) {
		countScope(s, p, mix(p.Seed), 0, seqDepth, &count)
	})
	return count.Load()
}

// countSub counts a subtree sequentially without spawning.
func countSub(p Params, id uint64, depth int) int64 {
	var count int64 = 1
	n := p.numChildren(id, depth)
	for i := 0; i < n; i++ {
		count += countSub(p, childID(id, i), depth+1)
	}
	return count
}

func countScope(s models.TaskScope, p Params, id uint64, depth, seqDepth int, count *atomic.Int64) {
	if depth >= seqDepth && seqDepth > 0 {
		count.Add(countSub(p, id, depth))
		return
	}
	count.Add(1)
	n := p.numChildren(id, depth)
	for i := 0; i < n; i++ {
		cid := childID(id, i)
		s.Spawn(func(cs models.TaskScope) {
			countScope(cs, p, cid, depth+1, seqDepth, count)
		})
	}
	s.Sync()
}

// Small returns parameters for a tree of roughly expected 20k nodes —
// large enough to be unbalanced, small enough for tests.
func Small(seed uint64) Params {
	return Params{Seed: seed, RootChildren: 200, M: 4, QNum: 2475, QDen: 10000}
}

// Medium returns parameters for roughly 200k expected nodes.
func Medium(seed uint64) Params {
	return Params{Seed: seed, RootChildren: 2000, M: 4, QNum: 2475, QDen: 10000}
}
