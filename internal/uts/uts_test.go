package uts

import (
	"testing"
	"testing/quick"

	"threading/internal/models"
)

func TestSeqDeterministic(t *testing.T) {
	p := Small(7)
	a := CountSeq(p)
	b := CountSeq(p)
	if a != b {
		t.Fatalf("counts differ: %d vs %d", a, b)
	}
	if a < 100 {
		t.Fatalf("tree suspiciously small: %d nodes", a)
	}
}

func TestDifferentSeedsDifferentTrees(t *testing.T) {
	a := CountSeq(Small(1))
	b := CountSeq(Small(2))
	if a == b {
		t.Fatalf("seeds 1 and 2 gave identical counts (%d); generator too regular", a)
	}
}

func TestExpectedSizeBallpark(t *testing.T) {
	// Average over seeds should be near the analytic expectation.
	p := Small(0)
	want := p.ExpectedSize()
	var total int64
	const trees = 30
	for s := uint64(0); s < trees; s++ {
		q := Small(s)
		total += CountSeq(q)
	}
	avg := float64(total) / trees
	if avg < want/2 || avg > want*2 {
		t.Fatalf("average size %.0f not within 2x of expectation %.0f", avg, want)
	}
}

func TestInfiniteTreeRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("M*Q >= 1 not rejected")
		}
	}()
	CountSeq(Params{Seed: 1, RootChildren: 1, M: 4, QNum: 1, QDen: 4})
}

func TestMalformedRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("QDen=0 not rejected")
		}
	}()
	CountSeq(Params{Seed: 1, RootChildren: 1, M: 1})
}

func TestParallelMatchesSeqAllTaskModels(t *testing.T) {
	p := Small(42)
	want := CountSeq(p)
	for _, name := range models.TaskNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := models.MustNew(name, 4)
			defer m.Close()
			// Thread-backed models need a sequential floor; pooled
			// models run with spawn-per-node (seqDepth 0 disabled via
			// a deep threshold of 0 means full spawning).
			seqDepth := 0
			if name == models.CPPThread || name == models.CPPAsync {
				seqDepth = 3
			}
			if got := Count(m, p, seqDepth); got != want {
				t.Fatalf("count = %d, want %d", got, want)
			}
		})
	}
}

func TestSeqDepthInvariance(t *testing.T) {
	// The count must not depend on where spawning stops.
	p := Small(9)
	want := CountSeq(p)
	m := models.MustNew(models.CilkSpawn, 4)
	defer m.Close()
	check := func(d8 uint8) bool {
		d := int(d8 % 6)
		return Count(m, p, d) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestTreeIsUnbalanced(t *testing.T) {
	// Verify the defining property: sibling subtrees differ wildly in
	// size (so static partitioning must lose).
	p := Small(11)
	root := mix(p.Seed)
	n := p.numChildren(root, 0)
	minSub, maxSub := int64(1<<62), int64(0)
	for i := 0; i < n; i++ {
		sz := countSub(p, childID(root, i), 1)
		if sz < minSub {
			minSub = sz
		}
		if sz > maxSub {
			maxSub = sz
		}
	}
	if maxSub < 10*minSub {
		t.Fatalf("subtrees too balanced: min %d, max %d", minSub, maxSub)
	}
}

func TestMediumLargerThanSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("medium tree in -short mode")
	}
	small := CountSeq(Small(5))
	medium := CountSeq(Medium(5))
	if medium <= small {
		t.Fatalf("Medium (%d) not larger than Small (%d)", medium, small)
	}
}
