// Package sched provides plumbing shared by the threading runtimes in
// this repository: per-worker pseudo-random victim selection, a
// lightweight parking primitive for idle workers, and scheduler
// statistics counters.
//
// The runtimes in internal/forkjoin and internal/worksteal differ in
// scheduling policy (work-sharing vs work-stealing) — exactly the
// difference the reproduced paper measures — but share this mechanical
// layer, so measured differences between them come from policy, not
// from incidental implementation detail.
package sched

import "sync"

// Rand is a small xorshift64* pseudo-random generator. Each worker
// owns one, so victim selection for stealing needs no shared state.
// It is not safe for concurrent use; give each worker its own.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded from seed. A zero seed is
// replaced with a fixed odd constant, since xorshift requires a
// non-zero state.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Next returns the next pseudo-random value.
func (r *Rand) Next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	return int(r.Next() % uint64(n))
}

// Parker blocks a single worker until another worker unparks it.
// Unpark before Park leaves a token, so the wakeup is never lost.
// It is the blocking fallback of the runtimes' spin-then-block idle
// loops.
type Parker struct {
	mu    sync.Mutex
	cond  *sync.Cond
	token bool
	init  sync.Once
}

func (p *Parker) lazyInit() {
	p.init.Do(func() { p.cond = sync.NewCond(&p.mu) })
}

// Park blocks until a token is available, then consumes it.
func (p *Parker) Park() {
	p.lazyInit()
	p.mu.Lock()
	for !p.token {
		p.cond.Wait()
	}
	p.token = false
	p.mu.Unlock()
}

// Unpark deposits a token, waking a parked worker if there is one.
// Multiple Unparks coalesce into a single token.
func (p *Parker) Unpark() {
	p.lazyInit()
	p.mu.Lock()
	p.token = true
	p.cond.Signal()
	p.mu.Unlock()
}
