package sched

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRandNonZero(t *testing.T) {
	r := NewRand(0)
	for i := 0; i < 100; i++ {
		if r.Next() == 0 && r.Next() == 0 {
			t.Fatal("xorshift state collapsed to zero")
		}
	}
}

func TestRandIntnRange(t *testing.T) {
	check := func(seed uint64, n8 uint8) bool {
		n := int(n8%31) + 1
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestRandCoversAllValues(t *testing.T) {
	r := NewRand(12345)
	const n = 8
	seen := make(map[int]bool)
	for i := 0; i < 1000 && len(seen) < n; i++ {
		seen[r.Intn(n)] = true
	}
	if len(seen) != n {
		t.Fatalf("Intn(%d) produced only %d distinct values in 1000 draws", n, len(seen))
	}
}

func TestParkerTokenBeforePark(t *testing.T) {
	var p Parker
	p.Unpark()
	done := make(chan struct{})
	go func() {
		p.Park() // must not block: token already deposited
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Park blocked despite pre-deposited token")
	}
}

func TestParkerWakeup(t *testing.T) {
	var p Parker
	done := make(chan struct{})
	go func() {
		p.Park()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Park returned without Unpark")
	case <-time.After(5 * time.Millisecond):
	}
	p.Unpark()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Unpark did not wake the parked worker")
	}
}

func TestParkerCoalesce(t *testing.T) {
	var p Parker
	p.Unpark()
	p.Unpark() // must coalesce into one token
	p.Park()
	done := make(chan struct{})
	go func() {
		p.Park()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("second Park consumed a coalesced token that should not exist")
	case <-time.After(5 * time.Millisecond):
	}
	p.Unpark()
	<-done
}

func TestStatsConcurrent(t *testing.T) {
	const workers, iters = 8, 1000
	s := NewStats(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh := s.Shard(w)
			for i := 0; i < iters; i++ {
				sh.CountTask()
				sh.CountSpawn()
				sh.CountSteal()
				sh.CountFailedSteal()
				sh.CountPark()
				sh.CountBarrierWait()
				sh.CountLoopChunk()
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	want := int64(workers * iters)
	if snap.TasksExecuted != want || snap.Spawns != want || snap.Steals != want ||
		snap.FailedSteals != want || snap.Parks != want ||
		snap.BarrierWaits != want || snap.LoopChunks != want {
		t.Fatalf("lost counter updates: %+v, want all %d", snap, want)
	}
	s.Reset()
	if s.Snapshot() != (Snapshot{}) {
		t.Fatalf("Reset left residue: %+v", s.Snapshot())
	}
}
