package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestRegionBackgroundNeverCancels(t *testing.T) {
	r := NewRegion(context.Background())
	if r.Canceled() {
		t.Fatal("background region born canceled")
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish = %v, want nil", err)
	}
}

func TestRegionNilContext(t *testing.T) {
	r := NewRegion(nil)
	if r.Canceled() || r.Finish() != nil {
		t.Fatal("nil-context region should be inert")
	}
}

func TestRegionObservesCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := NewRegion(ctx)
	if r.Canceled() {
		t.Fatal("canceled before cancel")
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for !r.Canceled() {
		if time.Now().After(deadline) {
			t.Fatal("region never observed cancellation")
		}
		time.Sleep(time.Millisecond)
	}
	if err := r.Finish(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Finish = %v, want context.Canceled", err)
	}
}

func TestRegionExpiredContextTripsSynchronously(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRegion(ctx)
	if !r.Canceled() {
		t.Fatal("already-expired context did not trip the region")
	}
	if err := r.Finish(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Finish = %v, want context.Canceled", err)
	}
}

func TestRegionDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	r := NewRegion(ctx)
	deadline := time.Now().Add(2 * time.Second)
	for !r.Canceled() {
		if time.Now().After(deadline) {
			t.Fatal("deadline never tripped the region")
		}
		time.Sleep(time.Millisecond)
	}
	if err := r.Finish(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Finish = %v, want context.DeadlineExceeded", err)
	}
}

func TestRegionFirstFailureWins(t *testing.T) {
	r := NewRegion(context.Background())
	r.RecordPanic("first")
	r.RecordPanic("second")
	r.RecordError(errors.New("third"))
	var pe *PanicError
	if err := r.Finish(); !errors.As(err, &pe) || fmt.Sprint(pe.Value) != "first" {
		t.Fatalf("Finish = %v, want PanicError(first)", err)
	}
	if !r.Canceled() {
		t.Fatal("recorded panic did not cancel the region")
	}
}

func TestPanicErrorCarriesStack(t *testing.T) {
	r := NewRegion(context.Background())
	func() {
		defer func() { r.RecordPanic(recover()) }()
		panic("kaboom")
	}()
	var pe *PanicError
	if !errors.As(r.Err(), &pe) {
		t.Fatalf("Err = %v, want *PanicError", r.Err())
	}
	if !strings.Contains(pe.Error(), "kaboom") {
		t.Fatalf("Error() = %q lost the panic value", pe.Error())
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
		t.Fatalf("stack not captured: %q", pe.Stack)
	}
	if plus := fmt.Sprintf("%+v", pe); !strings.Contains(plus, "goroutine") {
		t.Fatalf("%%+v did not include the stack: %q", plus)
	}
}

func TestRegionRecordErrorNil(t *testing.T) {
	r := NewRegion(context.Background())
	r.RecordError(nil)
	if r.Canceled() || r.Err() != nil {
		t.Fatal("RecordError(nil) should be a no-op")
	}
}

func TestRegionFinishIdempotent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := NewRegion(ctx)
	if err := r.Finish(); err != nil {
		t.Fatalf("first Finish = %v", err)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("second Finish = %v", err)
	}
}

// stuckTimerCtx models a deadline whose runtime timer never fires —
// what a request context looks like on a saturated GOMAXPROCS=1 box
// where every worker is busy and the scheduler never runs the timer:
// the deadline is objectively in the past, but Done never closes and
// Err stays nil.
type stuckTimerCtx struct {
	context.Context
	dl time.Time
}

func (c stuckTimerCtx) Deadline() (time.Time, bool) { return c.dl, true }

func TestRegionObservesDeadlineWithoutTimer(t *testing.T) {
	ctx := stuckTimerCtx{context.Background(), time.Now().Add(-time.Second)}
	if ctx.Err() != nil || ctx.Done() != nil {
		t.Fatal("fixture must look uncanceled to the channel protocol")
	}
	// Done is nil here, so the region takes the value-only fast path;
	// wrap in a cancelable parent to force the watched path instead.
	parent, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := NewRegion(stuckTimerCtx{parent, time.Now().Add(-time.Second)})
	if !r.Canceled() {
		t.Fatal("past-deadline region not tripped at entry")
	}
	if err := r.Finish(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Finish = %v, want DeadlineExceeded", err)
	}

	// A live (future) deadline must not trip anything.
	r = NewRegion(stuckTimerCtx{parent, time.Now().Add(time.Hour)})
	if r.Canceled() {
		t.Fatal("future-deadline region born canceled")
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish = %v, want nil", err)
	}
}
