package sched

import (
	"sync"
	"testing"
)

func TestSnapshotDelta(t *testing.T) {
	s := NewStats(2)
	s.Shard(0).CountTask()
	s.Shard(0).CountSpawn()
	s.Shard(1).CountSteal()
	base := s.Snapshot()

	s.Shard(0).CountTask()
	s.Shard(1).CountFailedSteal()
	s.Shard(1).CountBatchSteal(3)
	d := s.Snapshot().Delta(base)

	if d.TasksExecuted != 1 || d.Spawns != 0 || d.Steals != 0 {
		t.Fatalf("delta = %+v, want only the post-base increments", d)
	}
	if d.FailedSteals != 1 || d.BatchSteals != 1 || d.BatchStolen != 3 {
		t.Fatalf("delta = %+v, want failed=1 bsteals=1 bstolen=3", d)
	}
}

func TestSnapshotFieldsCoverEveryCounter(t *testing.T) {
	// Every Snapshot counter must appear in Fields exactly once, with
	// the right value — renderers iterate Fields instead of hardcoding
	// the column list, so a missing entry silently drops a column.
	s := Snapshot{
		TasksExecuted: 1, Spawns: 2, Steals: 3, FailedSteals: 4,
		Parks: 5, BarrierWaits: 6, LoopChunks: 7, LazySplits: 8,
		BatchSteals: 9, BatchStolen: 10, HelpFirstTasks: 11,
	}
	fields := s.Fields()
	if len(fields) != 11 {
		t.Fatalf("Fields has %d entries, want 11 (one per counter)", len(fields))
	}
	var sum int64
	names := map[string]bool{}
	for _, f := range fields {
		if names[f.Name] {
			t.Fatalf("duplicate field name %q", f.Name)
		}
		names[f.Name] = true
		sum += f.Value
	}
	if sum != 1+2+3+4+5+6+7+8+9+10+11 {
		t.Fatalf("field values sum to %d; some counter is missing or duplicated", sum)
	}
}

func TestStatsConcurrentResetSnapshotCount(t *testing.T) {
	// Counting, Snapshot, and Reset racing from different goroutines
	// must be race-detector clean (the counters are advisory, so torn
	// totals are fine; data races are not).
	s := NewStats(4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(sh *Shard) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sh.CountTask()
				sh.CountSteal()
				sh.CountBatchSteal(2)
			}
		}(s.Shard(i))
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = s.Snapshot()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s.Reset()
		}
	}()
	for i := 0; i < 200; i++ {
		_ = s.Snapshot().Delta(Snapshot{})
	}
	close(stop)
	wg.Wait()
	if snap := s.Snapshot(); snap.TasksExecuted < 0 {
		t.Fatalf("impossible counter value: %+v", snap)
	}
}
