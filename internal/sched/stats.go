package sched

import (
	"sync/atomic"
	"unsafe"
)

// CacheLine is the assumed cache-line size in bytes. Hot structs that
// are written by different workers are padded in units of this so
// their stores do not false-share; 64 covers every platform this
// module targets (x86-64 and arm64 both use 64-byte lines).
const CacheLine = 64

// Stats aggregates scheduler event counters, sharded per worker so
// that hot paths (a counter bump per spawned task) never contend on a
// shared cache line. Workers obtain their Shard once and count
// through it; Snapshot and Reset fold over all shards.
//
// The zero Stats has no shards and silently counts nothing through
// the aggregate helpers; construct with NewStats.
type Stats struct {
	shards []Shard
}

// shardCounters holds one worker's counters. It is separated from
// Shard so the pad below can be computed from its size at compile
// time: adding a counter grows the struct and shrinks the pad
// automatically instead of silently overflowing a fixed-size pad and
// reintroducing false sharing between adjacent shards.
type shardCounters struct {
	tasksExecuted atomic.Int64
	spawns        atomic.Int64
	steals        atomic.Int64
	failedSteals  atomic.Int64
	parks         atomic.Int64
	barrierWaits  atomic.Int64
	loopChunks    atomic.Int64
	lazySplits    atomic.Int64
	batchSteals   atomic.Int64
	batchStolen   atomic.Int64
	helpFirst     atomic.Int64
}

// Shard is one worker's private counter block. The trailing pad rounds
// the struct up to a multiple of two cache lines, so shards laid out
// contiguously in Stats never share a line — two lines rather than
// one, because adjacent-line prefetchers pull neighbouring lines into
// the same coherence traffic. shard_test.go asserts the invariant.
type Shard struct {
	shardCounters
	_ [(2*CacheLine - unsafe.Sizeof(shardCounters{})%(2*CacheLine)) % (2 * CacheLine)]byte
}

// NewStats returns counters with one shard per worker.
func NewStats(workers int) *Stats {
	if workers < 1 {
		workers = 1
	}
	return &Stats{shards: make([]Shard, workers)}
}

// Shard returns worker i's counter block.
func (s *Stats) Shard(i int) *Shard { return &s.shards[i] }

// CountTask records one executed task.
func (s *Shard) CountTask() { s.tasksExecuted.Add(1) }

// CountSpawn records one spawned task.
func (s *Shard) CountSpawn() { s.spawns.Add(1) }

// CountSteal records one successful steal.
func (s *Shard) CountSteal() { s.steals.Add(1) }

// CountFailedSteal records one steal attempt that found nothing.
func (s *Shard) CountFailedSteal() { s.failedSteals.Add(1) }

// CountPark records one worker park.
func (s *Shard) CountPark() { s.parks.Add(1) }

// CountBarrierWait records one barrier arrival.
func (s *Shard) CountBarrierWait() { s.barrierWaits.Add(1) }

// CountLoopChunk records one work-sharing loop chunk hand-out.
func (s *Shard) CountLoopChunk() { s.loopChunks.Add(1) }

// CountLazySplit records one demand-driven split performed by the lazy
// loop partitioner.
func (s *Shard) CountLazySplit() { s.lazySplits.Add(1) }

// CountBatchSteal records one steal visit that migrated n tasks in a
// batch (n >= 2); single-task steals count only as Steals.
func (s *Shard) CountBatchSteal(n int) {
	s.batchSteals.Add(1)
	s.batchStolen.Add(int64(n))
}

// CountHelpFirst records one task executed by a submitting goroutine
// acting as a temporary (help-first) worker.
func (s *Shard) CountHelpFirst() { s.helpFirst.Add(1) }

// Snapshot is a point-in-time sum of all shards.
type Snapshot struct {
	TasksExecuted  int64 // tasks run to completion
	Spawns         int64 // tasks created
	Steals         int64 // successful steals
	FailedSteals   int64 // empty or lost steal attempts
	Parks          int64 // times a worker blocked idle
	BarrierWaits   int64 // barrier arrivals
	LoopChunks     int64 // work-sharing chunks handed out
	LazySplits     int64 // demand-driven splits by the lazy partitioner
	BatchSteals    int64 // steal visits that migrated >= 2 tasks
	BatchStolen    int64 // tasks migrated by batch steal visits
	HelpFirstTasks int64 // tasks executed by help-first submitters
}

// Snapshot sums the current counter values across shards.
func (s *Stats) Snapshot() Snapshot {
	var out Snapshot
	for i := range s.shards {
		sh := &s.shards[i]
		out.TasksExecuted += sh.tasksExecuted.Load()
		out.Spawns += sh.spawns.Load()
		out.Steals += sh.steals.Load()
		out.FailedSteals += sh.failedSteals.Load()
		out.Parks += sh.parks.Load()
		out.BarrierWaits += sh.barrierWaits.Load()
		out.LoopChunks += sh.loopChunks.Load()
		out.LazySplits += sh.lazySplits.Load()
		out.BatchSteals += sh.batchSteals.Load()
		out.BatchStolen += sh.batchStolen.Load()
		out.HelpFirstTasks += sh.helpFirst.Load()
	}
	return out
}

// Delta returns the counter increments between prev and s: the
// activity of the interval that started when prev was taken. Callers
// bracket a region with two Snapshots and subtract, instead of
// Resetting shared counters (which would race concurrent regions and
// lose history).
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	return Snapshot{
		TasksExecuted:  s.TasksExecuted - prev.TasksExecuted,
		Spawns:         s.Spawns - prev.Spawns,
		Steals:         s.Steals - prev.Steals,
		FailedSteals:   s.FailedSteals - prev.FailedSteals,
		Parks:          s.Parks - prev.Parks,
		BarrierWaits:   s.BarrierWaits - prev.BarrierWaits,
		LoopChunks:     s.LoopChunks - prev.LoopChunks,
		LazySplits:     s.LazySplits - prev.LazySplits,
		BatchSteals:    s.BatchSteals - prev.BatchSteals,
		BatchStolen:    s.BatchStolen - prev.BatchStolen,
		HelpFirstTasks: s.HelpFirstTasks - prev.HelpFirstTasks,
	}
}

// Add returns the element-wise sum of s and o. Shard resolvers use it
// to merge per-shard snapshots into one aggregate view.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		TasksExecuted:  s.TasksExecuted + o.TasksExecuted,
		Spawns:         s.Spawns + o.Spawns,
		Steals:         s.Steals + o.Steals,
		FailedSteals:   s.FailedSteals + o.FailedSteals,
		Parks:          s.Parks + o.Parks,
		BarrierWaits:   s.BarrierWaits + o.BarrierWaits,
		LoopChunks:     s.LoopChunks + o.LoopChunks,
		LazySplits:     s.LazySplits + o.LazySplits,
		BatchSteals:    s.BatchSteals + o.BatchSteals,
		BatchStolen:    s.BatchStolen + o.BatchStolen,
		HelpFirstTasks: s.HelpFirstTasks + o.HelpFirstTasks,
	}
}

// Field is one named Snapshot counter, as produced by Fields.
type Field struct {
	Name  string
	Value int64
}

// Fields returns every counter with its display name, in the stable
// presentation order the CLI tools print. Renderers iterate this
// instead of hardcoding the column list, so a new counter shows up
// everywhere by extending this one method.
func (s Snapshot) Fields() []Field {
	return []Field{
		{"tasks", s.TasksExecuted},
		{"spawns", s.Spawns},
		{"steals", s.Steals},
		{"failed-steals", s.FailedSteals},
		{"batch-steals", s.BatchSteals},
		{"batch-stolen", s.BatchStolen},
		{"help-first", s.HelpFirstTasks},
		{"parks", s.Parks},
		{"barriers", s.BarrierWaits},
		{"loop-chunks", s.LoopChunks},
		{"lazy-splits", s.LazySplits},
	}
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.tasksExecuted.Store(0)
		sh.spawns.Store(0)
		sh.steals.Store(0)
		sh.failedSteals.Store(0)
		sh.parks.Store(0)
		sh.barrierWaits.Store(0)
		sh.loopChunks.Store(0)
		sh.lazySplits.Store(0)
		sh.batchSteals.Store(0)
		sh.batchStolen.Store(0)
		sh.helpFirst.Store(0)
	}
}
