package sched

import (
	"testing"
	"unsafe"
)

// TestShardPadding pins the layout contract of the per-worker counter
// shards: every Shard occupies a whole number of cache-line pairs, so
// shards laid out contiguously by NewStats never share a line (nor an
// adjacent-prefetch pair). The pad inside Shard is computed from
// unsafe.Sizeof(shardCounters{}) at compile time, so adding a counter
// can never overflow it — but a change to the pad formula or to
// CacheLine could, and this test catches that.
func TestShardPadding(t *testing.T) {
	size := unsafe.Sizeof(Shard{})
	if size%(2*CacheLine) != 0 {
		t.Errorf("Shard size = %d, want a multiple of %d (two cache lines)", size, 2*CacheLine)
	}
	inner := unsafe.Sizeof(shardCounters{})
	if size < inner {
		t.Errorf("Shard size = %d smaller than its counters (%d)", size, inner)
	}
	if size-inner >= 2*CacheLine {
		t.Errorf("Shard pad = %d, want < %d (pad formula should round up to the next pair, not add a full spare pair)", size-inner, 2*CacheLine)
	}
	if a := unsafe.Alignof(Shard{}); a < unsafe.Alignof(int64(0)) {
		t.Errorf("Shard alignment = %d, want >= %d", a, unsafe.Alignof(int64(0)))
	}

	// Adjacent shards in a Stats slice must start 2*CacheLine apart or
	// more — the property the padding exists to provide.
	s := NewStats(2)
	a, b := uintptr(unsafe.Pointer(s.Shard(0))), uintptr(unsafe.Pointer(s.Shard(1)))
	if d := b - a; d < 2*CacheLine {
		t.Errorf("adjacent shards %d bytes apart, want >= %d", d, 2*CacheLine)
	}
}
