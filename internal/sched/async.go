package sched

import "sync"

// AsyncGroup tracks fire-and-forget submissions for an executor's
// Quiesce: each background submission brackets itself with Add/Done,
// records its failure (if any) with Record, and Wait blocks until the
// in-flight count drains, returning the first recorded error.
//
// The zero AsyncGroup is ready to use.
type AsyncGroup struct {
	mu       sync.Mutex
	cond     *sync.Cond
	inflight int
	err      error
}

// Add registers one in-flight submission.
func (g *AsyncGroup) Add() {
	g.mu.Lock()
	g.inflight++
	g.mu.Unlock()
}

// Done retires one in-flight submission, waking waiters when the count
// reaches zero.
func (g *AsyncGroup) Done() {
	g.mu.Lock()
	g.inflight--
	if g.inflight == 0 && g.cond != nil {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// Record stores err as the group's failure unless one is already
// recorded. A nil err is ignored.
func (g *AsyncGroup) Record(err error) {
	if err == nil {
		return
	}
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.mu.Unlock()
}

// Wait blocks until every in-flight submission has retired, then
// returns the first recorded error and clears it, so each quiesce
// interval reports its own failures.
func (g *AsyncGroup) Wait() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.inflight > 0 {
		if g.cond == nil {
			g.cond = sync.NewCond(&g.mu)
		}
		g.cond.Wait()
	}
	err := g.err
	g.err = nil
	return err
}
