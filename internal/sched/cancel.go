package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// PanicError is the structured form of a panic recovered inside a
// parallel region, task, thread, or kernel: it wraps the recovered
// value together with the stack of the goroutine that panicked. The
// context-aware entry points of every runtime in this repository
// (Team.ParallelCtx, Pool.RunCtx, Future.GetCtx, ...) surface task
// panics as a *PanicError instead of re-panicking, so callers can
// distinguish "a worker crashed" from "the context was canceled" with
// errors.As.
type PanicError struct {
	// Value is the value the task panicked with.
	Value any
	// Stack is the formatted stack of the panicking goroutine,
	// captured at recovery.
	Stack []byte
}

// NewPanicError wraps a recovered panic value together with the
// calling goroutine's stack. Call it from inside the recovering
// deferred function so the captured stack is the panicking one.
func NewPanicError(v any) *PanicError {
	buf := make([]byte, 16<<10)
	buf = buf[:runtime.Stack(buf, false)]
	return &PanicError{Value: v, Stack: buf}
}

// Error formats the recovered value. The captured stack is available
// via the Stack field (and Format's %+v).
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Format implements fmt.Formatter: %+v appends the captured stack.
func (e *PanicError) Format(f fmt.State, verb rune) {
	if verb == 'v' && f.Flag('+') {
		fmt.Fprintf(f, "panic: %v\n%s", e.Value, e.Stack)
		return
	}
	fmt.Fprint(f, e.Error())
}

// Region is the cancellation and failure state of one blocking
// parallel operation (a parallel region, a pool run, a pipeline run, a
// target region). It converts a context.Context — a channel-based
// protocol too expensive to poll on a per-chunk basis — into a single
// atomic flag the runtimes check at chunk and task boundaries, so
// every threading model pays the same (one-load) cancellation cost and
// cross-model timings remain comparable.
//
// A Region records the first failure (context error or recovered
// panic) and trips the canceled flag; later failures are dropped, so
// error propagation is deterministic under races. A Region is valid
// for one blocking call; create it on entry and Finish it on return.
type Region struct {
	canceled atomic.Bool

	mu  sync.Mutex
	err error

	ctx      context.Context
	stop     chan struct{}
	stopOnce sync.Once
	watched  bool

	// traceID is the request id carried by the region's context (see
	// WithRequestID), captured once at region creation so the worker
	// hot paths read a plain field instead of walking a context chain
	// per task. Zero means unattributed.
	traceID int64
}

// NewRegion returns a region bound to ctx. For a context that can
// never be canceled (context.Background, context.TODO, or nil) no
// watcher goroutine is started and Canceled only ever reports true
// after a failure is recorded — the legacy entry points therefore add
// no per-call goroutine.
func NewRegion(ctx context.Context) *Region {
	r := &Region{}
	if ctx == nil {
		return r
	}
	// Capture the request id before the can-this-cancel check: a
	// value-only context (WithRequestID over Background) has a nil
	// Done but still attributes its region's trace spans.
	r.traceID = RequestIDFrom(ctx)
	done := ctx.Done()
	if done == nil {
		return r
	}
	r.ctx = ctx
	if err := expired(ctx); err != nil {
		// Already expired: trip synchronously, no watcher needed.
		r.fail(err)
		return r
	}
	r.stop = make(chan struct{})
	r.watched = true
	go func() {
		select {
		case <-done:
			r.fail(ctx.Err())
		case <-r.stop:
		}
	}()
	return r
}

// TraceID returns the request id captured from the region's context
// at creation, 0 when unattributed. Nil-safe, so instrumentation
// sites can call it on an absent region.
func (r *Region) TraceID() int64 {
	if r == nil {
		return 0
	}
	return r.traceID
}

// Canceled reports whether the region has been canceled — by its
// context or by a recorded failure. It is a single atomic load, cheap
// enough for per-chunk polling in scheduler inner loops.
func (r *Region) Canceled() bool { return r.canceled.Load() }

// fail records err as the region's failure if it is the first, and
// trips the canceled flag either way.
func (r *Region) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
	r.canceled.Store(true)
}

// RecordPanic records a recovered panic value (with the calling
// goroutine's stack) as the region's failure and cancels the region,
// so sibling chunks and queued tasks stop at their next boundary —
// first-panic-wins propagation.
func (r *Region) RecordPanic(v any) {
	r.fail(NewPanicError(v))
}

// RecordError records err as the region's failure and cancels the
// region. A nil err is ignored.
func (r *Region) RecordError(err error) {
	if err == nil {
		return
	}
	r.fail(err)
}

// Err returns the first recorded failure: a *PanicError, the
// context's error, or nil.
func (r *Region) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Finish releases the context watcher (if any) and returns the first
// recorded failure. A context that was canceled before Finish is
// reported even if the watcher goroutine has not run yet, so callers
// deterministically observe the cancellation. Finish is idempotent.
func (r *Region) Finish() error {
	if r.watched {
		r.stopOnce.Do(func() { close(r.stop) })
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err == nil && r.ctx != nil {
		if err := expired(r.ctx); err != nil {
			r.err = err
			r.canceled.Store(true)
		}
	}
	return r.err
}

// expired reports why ctx should be treated as dead: its recorded
// error, or DeadlineExceeded when its deadline has passed on the wall
// clock even though the runtime timer has not fired yet. The second
// check matters on a saturated machine (e.g. GOMAXPROCS=1 with every
// worker busy): Go timers fire from the scheduler, so a hot parallel
// region can outrun its own deadline timer by tens of milliseconds —
// region entry and Finish must not depend on timer delivery to
// observe a deadline that has objectively passed.
func expired(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
		return context.DeadlineExceeded
	}
	return nil
}
