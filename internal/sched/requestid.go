package sched

import "context"

// Request correlation: internal/serve mints an id per admitted
// request and threads it through the standard context chain; every
// runtime's Ctx entry point builds a Region from that context, which
// captures the id once (Region.TraceID) for the worker hot paths to
// stamp into tracez span events. The id lives here rather than in
// serve because sched is the one package every runtime already
// depends on — the same reason Region itself lives here.

// requestIDKey is the private context key type for request ids.
type requestIDKey struct{}

// WithRequestID returns a context carrying the request id. Zero and
// negative ids are valid to store but render the work unattributed
// (tracez treats id 0 as "no request").
func WithRequestID(ctx context.Context, id int64) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom extracts the request id from ctx, 0 when absent or
// when ctx is nil.
func RequestIDFrom(ctx context.Context) int64 {
	if ctx == nil {
		return 0
	}
	if id, ok := ctx.Value(requestIDKey{}).(int64); ok {
		return id
	}
	return 0
}
