package loadgen

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// statusTarget answers every request with a fixed status after an
// optional service time, tracking peak concurrency.
type statusTarget struct {
	status  int
	delay   time.Duration
	inFl    atomic.Int64
	peak    atomic.Int64
	served  atomic.Int64
	failErr error
}

func (t *statusTarget) Do(ctx context.Context, path string) (int, error) {
	d := t.inFl.Add(1)
	defer t.inFl.Add(-1)
	for {
		p := t.peak.Load()
		if d <= p || t.peak.CompareAndSwap(p, d) {
			break
		}
	}
	if t.delay > 0 {
		select {
		case <-time.After(t.delay):
		case <-ctx.Done():
			return http.StatusGatewayTimeout, nil
		}
	}
	t.served.Add(1)
	if t.failErr != nil {
		return 0, t.failErr
	}
	return t.status, nil
}

func TestRunCountsByStatus(t *testing.T) {
	cases := []struct {
		status int
		check  func(Result) bool
	}{
		{http.StatusOK, func(r Result) bool { return r.OK == 20 && len(r.LatencyNs) == 20 }},
		{http.StatusTooManyRequests, func(r Result) bool { return r.Shed == 20 && len(r.LatencyNs) == 0 }},
		{http.StatusGatewayTimeout, func(r Result) bool { return r.Timeouts == 20 }},
		{http.StatusInternalServerError, func(r Result) bool { return r.Errors == 20 }},
	}
	for _, c := range cases {
		res, err := Run(context.Background(), Config{
			Target: &statusTarget{status: c.status}, Path: "/x",
			Offered: 5000, Requests: 20, Seed: 1,
		})
		if err != nil {
			t.Fatalf("status %d: %v", c.status, err)
		}
		if res.Sent != 20 || !c.check(res) {
			t.Fatalf("status %d: %+v", c.status, res)
		}
	}
}

// TestOpenLoopDoesNotSerialize is the generator's defining property:
// with a 30ms service time and arrivals every ~2ms, requests must
// overlap — a closed loop would take 20*30ms = 600ms, the open loop
// roughly 20*2ms + 30ms.
func TestOpenLoopDoesNotSerialize(t *testing.T) {
	tgt := &statusTarget{status: http.StatusOK, delay: 30 * time.Millisecond}
	start := time.Now()
	res, err := Run(context.Background(), Config{
		Target: tgt, Path: "/x", Offered: 500, Requests: 20, Seed: 1,
	})
	if err != nil || res.OK != 20 {
		t.Fatalf("run: %+v, %v", res, err)
	}
	if el := time.Since(start); el > 400*time.Millisecond {
		t.Fatalf("arrivals serialized: 20 reqs took %v", el)
	}
	if p := tgt.peak.Load(); p < 2 {
		t.Fatalf("peak concurrency = %d, want >= 2 (open loop overlaps)", p)
	}
}

func TestRunWarmupExcluded(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Target: &statusTarget{status: http.StatusOK}, Path: "/x",
		Offered: 5000, Requests: 30, Warmup: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 30 || res.OK != 20 || len(res.LatencyNs) != 20 {
		t.Fatalf("warmup not excluded: %+v", res)
	}
}

func TestRunDeterministicSchedule(t *testing.T) {
	st1, st2 := uint64(7), uint64(7)
	for i := 0; i < 100; i++ {
		if a, b := expInterval(&st1, 100), expInterval(&st2, 100); a != b {
			t.Fatalf("draw %d: %v != %v", i, a, b)
		}
	}
	// Mean inter-arrival ~ 1/rate: 10k draws at rate 100 ≈ 10ms mean.
	st := uint64(3)
	var sum time.Duration
	for i := 0; i < 10000; i++ {
		sum += expInterval(&st, 100)
	}
	mean := sum / 10000
	if mean < 8*time.Millisecond || mean > 12*time.Millisecond {
		t.Fatalf("mean inter-arrival %v, want ~10ms", mean)
	}
}

func TestRunInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tgt := &statusTarget{status: http.StatusOK}
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	// 10 req/s: the run would take ~1s; cancellation cuts it short.
	res, err := Run(ctx, Config{Target: tgt, Path: "/x", Offered: 10, Requests: 10, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if !res.Interrupted {
		t.Fatal("Interrupted not set")
	}
	if res.Sent >= 10 {
		t.Fatalf("sent %d, want fewer than all", res.Sent)
	}
	// Whatever was issued completed and was classified.
	if got := res.OK + res.Shed + res.Timeouts + res.Errors; got != res.Sent {
		t.Fatalf("classified %d != sent %d", got, res.Sent)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Run(context.Background(), Config{Target: &statusTarget{}, Offered: -1, Requests: 5}); err == nil {
		t.Fatal("negative offered accepted")
	}
}

func TestResultDerived(t *testing.T) {
	r := Result{OK: 50, Shed: 25, Timeouts: 15, Errors: 10, Elapsed: 2 * time.Second}
	if g := r.Goodput(); g != 25 {
		t.Fatalf("Goodput = %g, want 25", g)
	}
	if s := r.ShedRate(); s != 0.25 {
		t.Fatalf("ShedRate = %g, want 0.25", s)
	}
	if (Result{}).Goodput() != 0 || (Result{}).ShedRate() != 0 {
		t.Fatal("zero result not zero-safe")
	}
}
