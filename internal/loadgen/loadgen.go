// Package loadgen is an open-loop load generator for the service
// scenario: arrivals follow a Poisson process at a configured offered
// load, and every arrival issues its request immediately regardless
// of how many are still outstanding. That distinction — open loop, as
// in pSTL-Bench-style methodology, versus the closed request-per-
// worker loop most microbenchmarks run — is what makes tail latency
// honest: a closed loop slows its own arrival rate exactly when the
// system under test stalls (coordinated omission), while an open loop
// keeps offering work and measures the queueing the stall caused.
//
// The generator drives a Target: either a live HTTP endpoint or an
// in-process http.Handler (no sockets), which is how CI and the
// benchgate latency suite boot threadserve without a port.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// Target issues one request and reports its HTTP status.
type Target interface {
	Do(ctx context.Context, path string) (status int, err error)
}

// HandlerTarget drives an http.Handler in process — request and
// response never touch a socket, so the measured latency is admission
// + scheduling + kernel execution.
type HandlerTarget struct {
	Handler http.Handler
}

func (t HandlerTarget) Do(ctx context.Context, path string) (int, error) {
	req := httptest.NewRequest(http.MethodGet, path, nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	t.Handler.ServeHTTP(rec, req)
	return rec.Code, nil
}

// HTTPTarget drives a live endpoint, e.g. "http://127.0.0.1:8080".
type HTTPTarget struct {
	Base   string
	Client *http.Client
}

func (t HTTPTarget) Do(ctx context.Context, path string) (int, error) {
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.Base+path, nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// Config is one measurement point.
type Config struct {
	Target Target
	// Path is the request path, e.g. "/run?kernel=sum".
	Path string
	// Offered is the arrival rate in requests per second.
	Offered float64
	// Requests is the number of arrivals to generate.
	Requests int
	// Warmup arrivals at the front are issued but excluded from every
	// counter and latency except Sent.
	Warmup int
	// Seed drives the deterministic Poisson arrival schedule.
	Seed uint64
}

// Result is one point's outcome. Latencies cover completed-OK
// requests only; shed (429) and deadline (504) requests are counted
// separately — folding a 429's sub-millisecond turnaround into the
// latency distribution would make an overloaded server look fast.
type Result struct {
	Offered   float64
	Sent      int
	OK        int
	Shed      int
	Timeouts  int
	Errors    int
	LatencyNs []int64
	// Elapsed spans the measured window (first post-warmup arrival to
	// last completion).
	Elapsed time.Duration
	// Interrupted reports that ctx canceled the run; counts and
	// latencies cover what completed — a partial but valid point.
	Interrupted bool
}

// Goodput is completed-OK requests per second over the measured
// window.
func (r Result) Goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.OK) / r.Elapsed.Seconds()
}

// ShedRate is the shed fraction of measured arrivals.
func (r Result) ShedRate() float64 {
	n := r.OK + r.Shed + r.Timeouts + r.Errors
	if n == 0 {
		return 0
	}
	return float64(r.Shed) / float64(n)
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// expInterval draws an exponential inter-arrival time for rate
// arrivals/second — a Poisson arrival process.
func expInterval(state *uint64, rate float64) time.Duration {
	u := float64(splitmix64(state)>>11) / (1 << 53) // uniform [0, 1)
	return time.Duration(-math.Log(1-u) / rate * float64(time.Second))
}

// Run generates cfg.Requests arrivals against the target and blocks
// until every issued request has completed. The schedule is absolute
// (each arrival time is the sum of exponential gaps from the start),
// so a slow target cannot push later arrivals back — the open-loop
// property. Canceling ctx stops new arrivals, lets the in-flight
// requests finish (their own deadlines bound the wait), and returns
// the partial Result with Interrupted set and ctx's error.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.Target == nil || cfg.Offered <= 0 || cfg.Requests <= 0 {
		return Result{}, fmt.Errorf("loadgen: config needs a target, offered > 0, requests > 0 (got %+v)", cfg)
	}
	res := Result{Offered: cfg.Offered}
	var (
		mu    sync.Mutex
		wg    sync.WaitGroup
		state = cfg.Seed
	)
	start := time.Now()
	next := start
	measureStart := start
	var lastDone time.Time

	for i := 0; i < cfg.Requests; i++ {
		next = next.Add(expInterval(&state, cfg.Offered))
		if d := time.Until(next); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				res.Interrupted = true
			}
		} else if ctx.Err() != nil {
			res.Interrupted = true
		}
		if res.Interrupted {
			break
		}
		if i == cfg.Warmup {
			measureStart = time.Now()
		}
		res.Sent++
		measured := i >= cfg.Warmup
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			status, err := cfg.Target.Do(ctx, cfg.Path)
			lat := time.Since(t0)
			if !measured {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			lastDone = time.Now()
			switch {
			case err != nil:
				res.Errors++
			case status == http.StatusOK:
				res.OK++
				res.LatencyNs = append(res.LatencyNs, lat.Nanoseconds())
			case status == http.StatusTooManyRequests:
				res.Shed++
			case status == http.StatusGatewayTimeout:
				res.Timeouts++
			default:
				res.Errors++
			}
		}()
	}
	wg.Wait()
	if lastDone.IsZero() {
		lastDone = time.Now()
	}
	res.Elapsed = lastDone.Sub(measureStart)
	if res.Interrupted {
		return res, context.Cause(ctx)
	}
	return res, nil
}
