package hotspot

import (
	"math"
	"testing"

	"threading/internal/models"
)

func TestNewConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewConfig(0,5) did not panic")
		}
	}()
	NewConfig(0, 5)
}

func TestConfigCoefficientsPositive(t *testing.T) {
	cfg := NewConfig(64, 64)
	if cfg.Rx <= 0 || cfg.Ry <= 0 || cfg.Rz <= 0 || cfg.Cap <= 0 || cfg.Step <= 0 {
		t.Fatalf("non-positive coefficient: %+v", cfg)
	}
}

func TestGenerateInputDeterministic(t *testing.T) {
	t1, p1 := GenerateInput(32, 32, 5)
	t2, p2 := GenerateInput(32, 32, 5)
	for i := range t1 {
		if t1[i] != t2[i] || p1[i] != p2[i] {
			t.Fatal("generator not deterministic")
		}
		if t1[i] < 323 || t1[i] >= 325 {
			t.Fatalf("temp[%d] = %g outside [323,325)", i, t1[i])
		}
		if p1[i] < 0 || p1[i] >= 3 {
			t.Fatalf("power[%d] = %g outside [0,3)", i, p1[i])
		}
	}
}

func TestSeqUniformNoPowerStaysNearAmbientEquilibrium(t *testing.T) {
	// With zero power and a uniform starting field, every interior
	// update pulls toward ambient; the field must remain uniform in
	// the interior-free sense: all cells identical after each step
	// because the stencil is symmetric and boundaries mirror.
	cfg := NewConfig(16, 16)
	n := 16 * 16
	temp := make([]float64, n)
	power := make([]float64, n)
	for i := range temp {
		temp[i] = 400
	}
	out := Seq(cfg, temp, power, 10)
	for i := range out {
		if out[i] >= 400 {
			t.Fatalf("cell %d did not cool toward ambient: %g", i, out[i])
		}
		if out[i] != out[0] {
			t.Fatalf("uniform field lost uniformity: out[%d]=%g out[0]=%g", i, out[i], out[0])
		}
	}
}

func TestSeqDoesNotMutateInput(t *testing.T) {
	cfg := NewConfig(8, 8)
	temp, power := GenerateInput(8, 8, 1)
	orig := make([]float64, len(temp))
	copy(orig, temp)
	Seq(cfg, temp, power, 5)
	for i := range temp {
		if temp[i] != orig[i] {
			t.Fatal("Seq mutated the input field")
		}
	}
}

func TestParallelMatchesSeq(t *testing.T) {
	const rows, cols, steps = 64, 64, 20
	cfg := NewConfig(rows, cols)
	temp, power := GenerateInput(rows, cols, 9)
	want := Seq(cfg, temp, power, steps)
	for _, name := range models.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := models.MustNew(name, 4)
			defer m.Close()
			got := Parallel(m, cfg, temp, power, steps)
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-12*math.Max(1, math.Abs(want[i])) {
					t.Fatalf("cell %d: %g, want %g", i, got[i], want[i])
				}
			}
		})
	}
}

func TestParallelZeroSteps(t *testing.T) {
	cfg := NewConfig(8, 8)
	temp, power := GenerateInput(8, 8, 2)
	m := models.MustNew(models.OMPFor, 2)
	defer m.Close()
	got := Parallel(m, cfg, temp, power, 0)
	for i := range temp {
		if got[i] != temp[i] {
			t.Fatal("zero steps changed the field")
		}
	}
}

func TestFieldStaysFinite(t *testing.T) {
	cfg := NewConfig(32, 32)
	temp, power := GenerateInput(32, 32, 3)
	out := Seq(cfg, temp, power, 100)
	for i, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("cell %d diverged: %g", i, v)
		}
	}
}
