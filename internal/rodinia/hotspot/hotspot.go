// Package hotspot ports the Rodinia HotSpot benchmark: a transient
// thermal simulation that estimates processor temperature from an
// architectural floorplan and per-cell power dissipation, solving the
// heat differential equations with an explicit finite-difference
// iteration. Each time step is a 5-point stencil over the grid —
// compute-intensive parallel loops with a dependency between steps,
// the structure the paper points to when tasking overtakes
// work-sharing on this application.
package hotspot

import "threading/internal/models"

// Physical constants from the Rodinia implementation.
const (
	maxPD     = 3.0e6  // maximum power density (W/m^2)
	precision = 0.001  // required precision
	specHeat  = 875000 // capacitance scaling (spec_heat_si * 0.5)
	kSi       = 100    // silicon thermal conductivity
	tChip     = 0.0005 // chip thickness (m)
	chipHt    = 0.016  // chip height (m)
	chipWd    = 0.016  // chip width (m)
	ambTemp   = 80.0   // ambient temperature
)

// Config holds the simulation geometry and derived coefficients.
type Config struct {
	Rows, Cols int
	Rx, Ry, Rz float64
	Cap        float64
	Step       float64
}

// NewConfig derives the Rodinia coefficients for a rows x cols grid.
func NewConfig(rows, cols int) Config {
	if rows < 1 || cols < 1 {
		panic("hotspot: grid must be at least 1x1")
	}
	gridH := chipHt / float64(rows)
	gridW := chipWd / float64(cols)
	cap := specHeat * tChip * gridH * gridW
	rx := gridW / (2 * kSi * tChip * gridH)
	ry := gridH / (2 * kSi * tChip * gridW)
	rz := tChip / (kSi * gridH * gridW)
	maxSlope := maxPD / (specHeat * tChip)
	step := precision / maxSlope
	return Config{Rows: rows, Cols: cols, Rx: rx, Ry: ry, Rz: rz, Cap: cap, Step: step}
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// GenerateInput produces a deterministic temperature field around
// 323K and a power map in [0, maxPD*1e-6), standing in for the
// Rodinia temp_* / power_* input files.
func GenerateInput(rows, cols int, seed uint64) (temp, power []float64) {
	n := rows * cols
	temp = make([]float64, n)
	power = make([]float64, n)
	st := seed
	for i := 0; i < n; i++ {
		temp[i] = 323 + 2*float64(splitmix64(&st)>>11)/float64(1<<53)
		power[i] = 3 * float64(splitmix64(&st)>>11) / float64(1<<53)
	}
	return temp, power
}

// stepRow advances one grid row by one time step, reading from src
// and writing dst.
func stepRow(cfg *Config, dst, src, power []float64, r int) {
	rows, cols := cfg.Rows, cfg.Cols
	stepDivCap := cfg.Step / cfg.Cap
	for c := 0; c < cols; c++ {
		idx := r*cols + c
		t := src[idx]
		up := t
		if r > 0 {
			up = src[idx-cols]
		}
		down := t
		if r < rows-1 {
			down = src[idx+cols]
		}
		left := t
		if c > 0 {
			left = src[idx-1]
		}
		right := t
		if c < cols-1 {
			right = src[idx+1]
		}
		delta := stepDivCap * (power[idx] +
			(up+down-2*t)/cfg.Ry +
			(left+right-2*t)/cfg.Rx +
			(ambTemp-t)/cfg.Rz)
		dst[idx] = t + delta
	}
}

// Seq advances the simulation steps time steps sequentially and
// returns the final temperature field. temp is not modified.
func Seq(cfg Config, temp, power []float64, steps int) []float64 {
	cur := make([]float64, len(temp))
	copy(cur, temp)
	next := make([]float64, len(temp))
	for s := 0; s < steps; s++ {
		for r := 0; r < cfg.Rows; r++ {
			stepRow(&cfg, next, cur, power, r)
		}
		cur, next = next, cur
	}
	return cur
}

// Parallel advances the simulation under model m, parallel over rows
// within each time step; the model's join is the inter-step
// dependency. temp is not modified.
func Parallel(m models.Model, cfg Config, temp, power []float64, steps int) []float64 {
	cur := make([]float64, len(temp))
	copy(cur, temp)
	next := make([]float64, len(temp))
	for s := 0; s < steps; s++ {
		src, dst := cur, next
		m.ParallelFor(cfg.Rows, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				stepRow(&cfg, dst, src, power, r)
			}
		})
		cur, next = next, cur
	}
	return cur
}
