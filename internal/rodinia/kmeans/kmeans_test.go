package kmeans

import (
	"math"
	"testing"

	"threading/internal/models"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(100, 4, 5, 1)
	b := Generate(100, 4, 5, 1)
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate(0,...) did not panic")
		}
	}()
	Generate(0, 2, 2, 1)
}

func TestSeqConverges(t *testing.T) {
	ds := Generate(600, 3, 4, 7)
	res := Seq(ds, 4, 100)
	if res.Iterations >= 100 {
		t.Fatalf("did not converge in 100 iterations")
	}
	// Every membership assigned.
	for i, c := range res.Membership {
		if c < 0 || int(c) >= 4 {
			t.Fatalf("point %d has membership %d", i, c)
		}
	}
}

func TestSeqFindsPlantedClusters(t *testing.T) {
	// With tight planted clusters, within-cluster distance to the
	// found center must be much smaller than the lattice spacing.
	ds := Generate(1000, 2, 5, 11)
	res := Seq(ds, 5, 100)
	for p := 0; p < ds.N; p++ {
		point := ds.Points[p*2 : p*2+2]
		c := int(res.Membership[p])
		dd := distSq(point, res.Centers[c*2:c*2+2])
		if dd > 1.0 { // planted noise is ±0.25 per axis
			t.Fatalf("point %d is %.2f away from its center", p, math.Sqrt(dd))
		}
	}
}

func TestOnePointPerCluster(t *testing.T) {
	ds := Generate(3, 2, 3, 5)
	res := Seq(ds, 3, 10)
	seen := map[int32]bool{}
	for _, c := range res.Membership {
		seen[c] = true
	}
	if len(seen) != 3 {
		t.Fatalf("3 points / 3 clusters should use all clusters: %v", res.Membership)
	}
}

func TestTooManyClustersPanics(t *testing.T) {
	ds := Generate(2, 2, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("k > n not rejected")
		}
	}()
	Seq(ds, 5, 1)
}

func TestParallelMatchesSeq(t *testing.T) {
	ds := Generate(4000, 4, 6, 13)
	const iters = 8
	want := Seq(ds, 6, iters)
	for _, name := range models.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := models.MustNew(name, 4)
			defer m.Close()
			got := Parallel(m, ds, 6, iters)
			if got.Iterations != want.Iterations {
				t.Fatalf("iterations %d != %d", got.Iterations, want.Iterations)
			}
			for i := range want.Membership {
				if got.Membership[i] != want.Membership[i] {
					t.Fatalf("point %d: cluster %d != %d", i, got.Membership[i], want.Membership[i])
				}
			}
			for i := range want.Centers {
				// Parallel merge reorders float sums; allow drift.
				if math.Abs(got.Centers[i]-want.Centers[i]) > 1e-9 {
					t.Fatalf("center coord %d: %g != %g", i, got.Centers[i], want.Centers[i])
				}
			}
		})
	}
}

func TestParallelConvergedStateStable(t *testing.T) {
	// Running more iterations after convergence must not change the
	// result (fixed point).
	ds := Generate(500, 3, 4, 21)
	m := models.MustNew(models.OMPFor, 2)
	defer m.Close()
	a := Parallel(m, ds, 4, 100)
	b := Parallel(m, ds, 4, 200)
	if a.Iterations != b.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", a.Iterations, b.Iterations)
	}
	for i := range a.Centers {
		if a.Centers[i] != b.Centers[i] {
			t.Fatal("converged centers not stable")
		}
	}
}
