// Package kmeans ports the Rodinia K-means benchmark: iterative
// clustering of n points in d dimensions around k centers. Each
// iteration is a parallel assignment phase (every point finds its
// nearest center — uniform, compute-heavy) followed by a center
// update from per-thread partial sums, the structure of the Rodinia
// OpenMP implementation.
//
// (K-means is part of the Rodinia suite the paper evaluates from; it
// is included as an extension workload.)
package kmeans

import (
	"sync"

	"threading/internal/models"
)

// Dataset is n points of d float64 coordinates, row-major.
type Dataset struct {
	N, D   int
	Points []float64
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Generate builds a deterministic dataset of k natural clusters:
// cluster centers on a coarse lattice with points scattered tightly
// around them, so K-means has real structure to find.
func Generate(n, d, k int, seed uint64) *Dataset {
	if n < 1 || d < 1 || k < 1 {
		panic("kmeans: n, d, k must be positive")
	}
	ds := &Dataset{N: n, D: d, Points: make([]float64, n*d)}
	st := seed
	// Lattice cluster centers in [0, 10)^d.
	centers := make([]float64, k*d)
	for i := range centers {
		centers[i] = float64(splitmix64(&st) % 10)
	}
	for p := 0; p < n; p++ {
		c := p % k
		for j := 0; j < d; j++ {
			noise := (float64(splitmix64(&st)>>11)/float64(1<<53) - 0.5) * 0.5
			ds.Points[p*d+j] = centers[c*d+j] + noise
		}
	}
	return ds
}

// Result holds a clustering outcome.
type Result struct {
	// Centers is k x d, row-major.
	Centers []float64
	// Membership[i] is point i's cluster.
	Membership []int32
	// Iterations actually performed.
	Iterations int
}

// nearest returns the index of the center closest to point p
// (squared Euclidean distance; ties to the lower index, so the result
// is deterministic).
func nearest(point, centers []float64, k, d int) int32 {
	best := int32(0)
	bestDist := distSq(point, centers[:d])
	for c := 1; c < k; c++ {
		if dd := distSq(point, centers[c*d:(c+1)*d]); dd < bestDist {
			bestDist = dd
			best = int32(c)
		}
	}
	return best
}

func distSq(a, b []float64) float64 {
	var s float64
	for i := range a {
		diff := a[i] - b[i]
		s += diff * diff
	}
	return s
}

// initialCenters copies the first k points, Rodinia's initialization.
func initialCenters(ds *Dataset, k int) []float64 {
	centers := make([]float64, k*ds.D)
	copy(centers, ds.Points[:k*ds.D])
	return centers
}

// Seq clusters sequentially for at most maxIters iterations, stopping
// early when no membership changes.
func Seq(ds *Dataset, k, maxIters int) *Result {
	if k > ds.N {
		panic("kmeans: more clusters than points")
	}
	centers := initialCenters(ds, k)
	membership := make([]int32, ds.N)
	for i := range membership {
		membership[i] = -1
	}
	sums := make([]float64, k*ds.D)
	counts := make([]int64, k)
	iters := 0
	for it := 0; it < maxIters; it++ {
		iters++
		changed := false
		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for p := 0; p < ds.N; p++ {
			point := ds.Points[p*ds.D : (p+1)*ds.D]
			c := nearest(point, centers, k, ds.D)
			if membership[p] != c {
				membership[p] = c
				changed = true
			}
			for j := 0; j < ds.D; j++ {
				sums[int(c)*ds.D+j] += point[j]
			}
			counts[c]++
		}
		updateCenters(centers, sums, counts, k, ds.D)
		if !changed {
			break
		}
	}
	return &Result{Centers: centers, Membership: membership, Iterations: iters}
}

// updateCenters replaces each non-empty cluster's center by its mean.
func updateCenters(centers, sums []float64, counts []int64, k, d int) {
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue // Rodinia keeps empty clusters' old centers
		}
		inv := 1 / float64(counts[c])
		for j := 0; j < d; j++ {
			centers[c*d+j] = sums[c*d+j] * inv
		}
	}
}

// Parallel clusters under model m: the assignment phase runs as a
// parallel loop with chunk-local partial sums merged under a lock
// (the Rodinia OpenMP scheme of per-thread partial new_centers).
func Parallel(m models.Model, ds *Dataset, k, maxIters int) *Result {
	if k > ds.N {
		panic("kmeans: more clusters than points")
	}
	d := ds.D
	centers := initialCenters(ds, k)
	membership := make([]int32, ds.N)
	for i := range membership {
		membership[i] = -1
	}
	sums := make([]float64, k*d)
	counts := make([]int64, k)
	iters := 0
	for it := 0; it < maxIters; it++ {
		iters++
		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		var mu sync.Mutex
		changed := false
		m.ParallelFor(ds.N, func(lo, hi int) {
			localSums := make([]float64, k*d)
			localCounts := make([]int64, k)
			localChanged := false
			for p := lo; p < hi; p++ {
				point := ds.Points[p*d : (p+1)*d]
				c := nearest(point, centers, k, d)
				if membership[p] != c {
					membership[p] = c
					localChanged = true
				}
				for j := 0; j < d; j++ {
					localSums[int(c)*d+j] += point[j]
				}
				localCounts[c]++
			}
			mu.Lock()
			for i := range sums {
				sums[i] += localSums[i]
			}
			for i := range counts {
				counts[i] += localCounts[i]
			}
			changed = changed || localChanged
			mu.Unlock()
		})
		updateCenters(centers, sums, counts, k, d)
		if !changed {
			break
		}
	}
	return &Result{Centers: centers, Membership: membership, Iterations: iters}
}
