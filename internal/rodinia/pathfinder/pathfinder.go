// Package pathfinder ports the Rodinia PathFinder benchmark: dynamic
// programming on a 2-D grid, finding the minimum-cost path from the
// bottom row to the top moving straight or diagonally. Each row's
// computation is a flat parallel loop over columns; rows are strictly
// ordered — one dependent parallel phase per row, the same structure
// class as HotSpot but with a trivial per-cell kernel, so it stresses
// per-phase runtime overhead harder than any other application here.
//
// (PathFinder is part of the Rodinia suite the paper evaluates from;
// it is included as an extension workload.)
package pathfinder

import (
	"context"

	"threading/internal/models"
	"threading/internal/shard"
)

// Grid is a rows x cols field of step costs.
type Grid struct {
	Rows, Cols int
	Weight     []int32 // row-major
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Generate builds a deterministic grid with weights in [0, 10), the
// Rodinia input distribution.
func Generate(rows, cols int, seed uint64) *Grid {
	if rows < 1 || cols < 1 {
		panic("pathfinder: grid must be at least 1x1")
	}
	g := &Grid{Rows: rows, Cols: cols, Weight: make([]int32, rows*cols)}
	st := seed
	for i := range g.Weight {
		g.Weight[i] = int32(splitmix64(&st) % 10)
	}
	return g
}

// stepRange advances the DP for columns [lo, hi) of row r: dst[j] =
// weight[r][j] + min of the up-to-three reachable cells of src.
func stepRange(g *Grid, dst, src []int32, r, lo, hi int) {
	row := g.Weight[r*g.Cols : (r+1)*g.Cols]
	for j := lo; j < hi; j++ {
		best := src[j]
		if j > 0 && src[j-1] < best {
			best = src[j-1]
		}
		if j < g.Cols-1 && src[j+1] < best {
			best = src[j+1]
		}
		dst[j] = row[j] + best
	}
}

// Seq computes the DP sequentially and returns the final cost row
// (minimum path cost ending at each top-row column).
func Seq(g *Grid) []int32 {
	cur := make([]int32, g.Cols)
	next := make([]int32, g.Cols)
	copy(cur, g.Weight[:g.Cols])
	for r := 1; r < g.Rows; r++ {
		stepRange(g, next, cur, r, 0, g.Cols)
		cur, next = next, cur
	}
	return cur
}

// Parallel computes the DP under model m, one parallel loop over
// columns per row; the model's join is the row dependency.
func Parallel(m models.Model, g *Grid) []int32 {
	cur := make([]int32, g.Cols)
	next := make([]int32, g.Cols)
	copy(cur, g.Weight[:g.Cols])
	for r := 1; r < g.Rows; r++ {
		src, dst, row := cur, next, r
		m.ParallelFor(g.Cols, func(lo, hi int) {
			stepRange(g, dst, src, row, lo, hi)
		})
		cur, next = next, cur
	}
	return cur
}

// ParallelCtx computes the DP by driving ex, one ParallelForCtx per
// row, honoring ctx at every chunk boundary — the deadline-aware,
// concurrent-safe form a service uses (cmd/threadserve). cur and next
// are scratch rows of at least g.Cols elements; pass nil to allocate.
// Callers that pool the scratch must copy what they need out of the
// returned row (it aliases one of the two buffers) before recycling.
// On error the partial DP state is meaningless and nil is returned.
func ParallelCtx(ctx context.Context, ex shard.Executor, g *Grid, grain int, cur, next []int32) ([]int32, error) {
	if len(cur) < g.Cols || len(next) < g.Cols {
		cur = make([]int32, g.Cols)
		next = make([]int32, g.Cols)
	}
	cur, next = cur[:g.Cols], next[:g.Cols]
	copy(cur, g.Weight[:g.Cols])
	for r := 1; r < g.Rows; r++ {
		src, dst, row := cur, next, r
		if err := ex.ParallelForCtx(ctx, 0, g.Cols, grain, func(lo, hi int) {
			stepRange(g, dst, src, row, lo, hi)
		}); err != nil {
			return nil, err
		}
		cur, next = next, cur
	}
	return cur, nil
}

// View returns a sub-grid restricted to the first rows rows, sharing
// the backing weights — a cheap way for a service to serve
// variable-depth requests off one pre-generated grid. rows is clamped
// to [1, g.Rows].
func (g *Grid) View(rows int) *Grid {
	if rows < 1 {
		rows = 1
	}
	if rows > g.Rows {
		rows = g.Rows
	}
	return &Grid{Rows: rows, Cols: g.Cols, Weight: g.Weight[:rows*g.Cols]}
}

// MinCost returns the smallest value in a result row.
func MinCost(costs []int32) int32 {
	best := costs[0]
	for _, c := range costs[1:] {
		if c < best {
			best = c
		}
	}
	return best
}
