package pathfinder

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"threading/internal/models"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(10, 20, 3)
	b := Generate(10, 20, 3)
	for i := range a.Weight {
		if a.Weight[i] != b.Weight[i] {
			t.Fatal("generator not deterministic")
		}
		if a.Weight[i] < 0 || a.Weight[i] >= 10 {
			t.Fatalf("weight %d out of [0,10)", a.Weight[i])
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate(0, 5) did not panic")
		}
	}()
	Generate(0, 5, 1)
}

func TestSeqKnownGrid(t *testing.T) {
	// 3x3 grid, hand-checked DP.
	g := &Grid{Rows: 3, Cols: 3, Weight: []int32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}}
	// Row 0: [1 2 3]
	// Row 1: 4+min(1,2)=5; 5+min(1,2,3)=6; 6+min(2,3)=8
	// Row 2: 7+min(5,6)=12; 8+min(5,6,8)=13; 9+min(6,8)=15
	want := []int32{12, 13, 15}
	got := Seq(g)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if MinCost(got) != 12 {
		t.Fatalf("MinCost = %d", MinCost(got))
	}
}

func TestSingleRow(t *testing.T) {
	g := &Grid{Rows: 1, Cols: 4, Weight: []int32{3, 1, 4, 1}}
	got := Seq(g)
	for i, v := range []int32{3, 1, 4, 1} {
		if got[i] != v {
			t.Fatalf("single-row DP wrong: %v", got)
		}
	}
}

func TestParallelMatchesSeq(t *testing.T) {
	g := Generate(100, 4000, 17)
	want := Seq(g)
	for _, name := range models.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := models.MustNew(name, 4)
			defer m.Close()
			got := Parallel(m, g)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("column %d: %d, want %d", j, got[j], want[j])
				}
			}
		})
	}
}

func TestQuickSmallGrids(t *testing.T) {
	m := models.MustNew(models.CilkSpawn, 3)
	defer m.Close()
	check := func(r8, c8 uint8, seed uint64) bool {
		rows := int(r8%20) + 1
		cols := int(c8%50) + 1
		g := Generate(rows, cols, seed)
		want := Seq(g)
		got := Parallel(m, g)
		for j := range want {
			if got[j] != want[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMonotonicity(t *testing.T) {
	// Costs only accumulate: result >= first row minimum.
	g := Generate(50, 200, 5)
	res := Seq(g)
	var rowMin int32 = 10
	for j := 0; j < g.Cols; j++ {
		if g.Weight[j] < rowMin {
			rowMin = g.Weight[j]
		}
	}
	if MinCost(res) < rowMin {
		t.Fatalf("final cost %d below first-row minimum %d", MinCost(res), rowMin)
	}
}

func TestParallelCtxMatchesSeq(t *testing.T) {
	g := Generate(16, 500, 7)
	want := Seq(g)
	ex, err := models.NewExecutor(models.CilkFor, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	got, err := ParallelCtx(context.Background(), ex, g, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("col %d: ParallelCtx %d != Seq %d", j, got[j], want[j])
		}
	}
	// Caller-provided scratch gives the same answer.
	cur, next := make([]int32, g.Cols), make([]int32, g.Cols)
	got2, err := ParallelCtx(context.Background(), ex, g, 32, cur, next)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if got2[j] != want[j] {
			t.Fatalf("col %d with scratch: %d != %d", j, got2[j], want[j])
		}
	}
}

func TestParallelCtxCanceled(t *testing.T) {
	g := Generate(8, 100, 7)
	ex, err := models.NewExecutor(models.OMPFor, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ParallelCtx(ctx, ex, g, 0, nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("ParallelCtx on canceled ctx = %v, want Canceled", err)
	}
}

func TestGridView(t *testing.T) {
	g := Generate(16, 50, 3)
	v := g.View(4)
	if v.Rows != 4 || v.Cols != 50 || len(v.Weight) != 200 {
		t.Fatalf("View(4) = %dx%d/%d", v.Rows, v.Cols, len(v.Weight))
	}
	// The view's DP equals a freshly truncated grid's.
	want := Seq(&Grid{Rows: 4, Cols: 50, Weight: g.Weight[:200]})
	got := Seq(v)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("col %d: view %d != truncated %d", j, got[j], want[j])
		}
	}
	if v := g.View(0); v.Rows != 1 {
		t.Fatalf("View(0).Rows = %d, want clamp to 1", v.Rows)
	}
	if v := g.View(99); v.Rows != 16 {
		t.Fatalf("View(99).Rows = %d, want clamp to 16", v.Rows)
	}
}
