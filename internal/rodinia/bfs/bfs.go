// Package bfs ports the Rodinia breadth-first-search benchmark: a
// level-synchronous BFS over a CSR graph with the benchmark's two
// parallel phases per level (explore the frontier, then publish the
// newly discovered frontier). Each thread receives the same number of
// nodes per phase while the work per node (its degree) varies, and
// memory access is non-contiguous — the characteristics the paper
// cites for this application.
//
// Rodinia ships a graph generator rather than real datasets; Generate
// reproduces that: every node gets a uniformly random degree in
// [1, 2*avgDegree) with uniformly random neighbors.
package bfs

import (
	"fmt"
	"sync/atomic"

	"threading/internal/models"
)

// Unreached marks nodes not reached from the source.
const Unreached int32 = -1

// Graph is a directed graph in compressed sparse row form.
type Graph struct {
	NumNodes int
	// Offsets has NumNodes+1 entries; the neighbors of node u are
	// Edges[Offsets[u]:Offsets[u+1]].
	Offsets []int32
	Edges   []int32
}

// Degree returns the out-degree of node u.
func (g *Graph) Degree(u int32) int {
	return int(g.Offsets[u+1] - g.Offsets[u])
}

// NumEdges returns the total edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Validate checks structural invariants and returns a descriptive
// error for the first violation.
func (g *Graph) Validate() error {
	if len(g.Offsets) != g.NumNodes+1 {
		return fmt.Errorf("bfs: offsets length %d, want %d", len(g.Offsets), g.NumNodes+1)
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("bfs: offsets[0] = %d, want 0", g.Offsets[0])
	}
	for u := 0; u < g.NumNodes; u++ {
		if g.Offsets[u+1] < g.Offsets[u] {
			return fmt.Errorf("bfs: offsets not monotone at node %d", u)
		}
	}
	if int(g.Offsets[g.NumNodes]) != len(g.Edges) {
		return fmt.Errorf("bfs: last offset %d, want %d", g.Offsets[g.NumNodes], len(g.Edges))
	}
	for i, v := range g.Edges {
		if v < 0 || int(v) >= g.NumNodes {
			return fmt.Errorf("bfs: edge %d targets %d outside [0,%d)", i, v, g.NumNodes)
		}
	}
	return nil
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Generate builds a random graph in the style of the Rodinia BFS
// input generator: each node's degree is uniform in [1, 2*avgDegree)
// and its neighbors are uniform over all nodes. To guarantee the
// whole graph is reachable from node 0 (so runs traverse all n nodes,
// as the 16M-node Rodinia input effectively does), node i also links
// to node i+1.
func Generate(n, avgDegree int, seed uint64) *Graph {
	if n < 1 {
		panic("bfs: need at least one node")
	}
	if avgDegree < 1 {
		avgDegree = 1
	}
	st := seed
	degrees := make([]int32, n)
	total := 0
	for i := range degrees {
		d := int32(splitmix64(&st)%uint64(2*avgDegree-1)) + 1
		if i < n-1 {
			d++ // the chain edge
		}
		degrees[i] = d
		total += int(d)
	}
	g := &Graph{
		NumNodes: n,
		Offsets:  make([]int32, n+1),
		Edges:    make([]int32, total),
	}
	for i := 0; i < n; i++ {
		g.Offsets[i+1] = g.Offsets[i] + degrees[i]
	}
	for i := 0; i < n; i++ {
		e := g.Offsets[i]
		if i < n-1 {
			g.Edges[e] = int32(i + 1)
			e++
		}
		for ; e < g.Offsets[i+1]; e++ {
			g.Edges[e] = int32(splitmix64(&st) % uint64(n))
		}
	}
	return g
}

// Seq runs a sequential level-synchronous BFS from src and returns
// each node's level (Unreached if not reachable).
func Seq(g *Graph, src int32) []int32 {
	cost := make([]int32, g.NumNodes)
	for i := range cost {
		cost[i] = Unreached
	}
	cost[src] = 0
	frontier := []int32{src}
	for level := int32(1); len(frontier) > 0; level++ {
		var next []int32
		for _, u := range frontier {
			for _, v := range g.Edges[g.Offsets[u]:g.Offsets[u+1]] {
				if cost[v] == Unreached {
					cost[v] = level
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return cost
}

// Parallel runs the Rodinia two-phase BFS from src under model m and
// returns each node's level. Both phases enumerate all nodes, as in
// the original benchmark (mask arrays, not worklists).
func Parallel(m models.Model, g *Graph, src int32) []int32 {
	n := g.NumNodes
	cost := make([]int32, n)
	for i := range cost {
		cost[i] = Unreached
	}
	mask := make([]int32, n)     // current frontier
	updating := make([]int32, n) // next frontier, written concurrently
	visited := make([]int32, n)

	cost[src] = 0
	mask[src] = 1
	visited[src] = 1

	for {
		var progressed atomic.Bool
		// Phase 1: expand the frontier. Multiple frontier nodes may
		// discover the same neighbor; they write identical cost
		// values, but the mark must still be atomic to stay
		// race-free.
		m.ParallelFor(n, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				if mask[u] == 0 {
					continue
				}
				mask[u] = 0
				cu := cost[u]
				for _, v := range g.Edges[g.Offsets[u]:g.Offsets[u+1]] {
					if atomic.LoadInt32(&visited[v]) == 0 {
						atomic.StoreInt32(&cost[v], cu+1)
						atomic.StoreInt32(&updating[v], 1)
					}
				}
			}
		})
		// Phase 2: publish newly discovered nodes as the next
		// frontier.
		m.ParallelFor(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				if updating[v] == 0 {
					continue
				}
				updating[v] = 0
				mask[v] = 1
				visited[v] = 1
				progressed.Store(true)
			}
		})
		if !progressed.Load() {
			return cost
		}
	}
}
