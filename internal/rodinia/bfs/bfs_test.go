package bfs

import (
	"testing"
	"testing/quick"

	"threading/internal/models"
)

func TestGenerateValid(t *testing.T) {
	g := Generate(1000, 8, 42)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 1000 {
		t.Fatalf("NumNodes = %d", g.NumNodes)
	}
	if g.NumEdges() < 1000 {
		t.Fatalf("suspiciously few edges: %d", g.NumEdges())
	}
	// Deterministic for a given seed.
	g2 := Generate(1000, 8, 42)
	if g2.NumEdges() != g.NumEdges() || g2.Edges[13] != g.Edges[13] {
		t.Fatal("generator is not deterministic")
	}
}

func TestGenerateDegreeBounds(t *testing.T) {
	check := func(seed uint64, avg8 uint8) bool {
		avg := int(avg8%8) + 1
		g := Generate(200, avg, seed)
		if g.Validate() != nil {
			return false
		}
		for u := int32(0); u < int32(g.NumNodes); u++ {
			d := g.Degree(u)
			if d < 1 || d > 2*avg {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSeqChainGraph(t *testing.T) {
	// A pure chain: node i -> i+1 only.
	n := 10
	g := &Graph{NumNodes: n, Offsets: make([]int32, n+1), Edges: make([]int32, n-1)}
	for i := 0; i < n-1; i++ {
		g.Offsets[i+1] = int32(i + 1)
		g.Edges[i] = int32(i + 1)
	}
	g.Offsets[n] = int32(n - 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cost := Seq(g, 0)
	for i := 0; i < n; i++ {
		if cost[i] != int32(i) {
			t.Fatalf("cost[%d] = %d, want %d", i, cost[i], i)
		}
	}
}

func TestSeqUnreachable(t *testing.T) {
	// Two isolated nodes.
	g := &Graph{NumNodes: 2, Offsets: []int32{0, 0, 0}, Edges: nil}
	cost := Seq(g, 0)
	if cost[0] != 0 || cost[1] != Unreached {
		t.Fatalf("cost = %v", cost)
	}
}

func TestParallelMatchesSeq(t *testing.T) {
	g := Generate(20000, 6, 7)
	want := Seq(g, 0)
	for _, name := range models.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := models.MustNew(name, 4)
			defer m.Close()
			got := Parallel(m, g, 0)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("node %d: level %d, want %d", i, got[i], want[i])
				}
			}
		})
	}
}

func TestParallelAllReachable(t *testing.T) {
	// The chain edge guarantees full reachability from node 0.
	g := Generate(5000, 4, 99)
	m := models.MustNew(models.OMPFor, 2)
	defer m.Close()
	cost := Parallel(m, g, 0)
	for i, c := range cost {
		if c == Unreached {
			t.Fatalf("node %d unreached", i)
		}
	}
}

func TestParallelFromNonzeroSource(t *testing.T) {
	g := Generate(3000, 5, 3)
	src := int32(1500)
	want := Seq(g, src)
	m := models.MustNew(models.CilkFor, 4)
	defer m.Close()
	got := Parallel(m, g, src)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("node %d: level %d, want %d", i, got[i], want[i])
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := Generate(100, 4, 1)
	g.Edges[0] = 1000 // out of range
	if g.Validate() == nil {
		t.Fatal("Validate accepted out-of-range edge")
	}
	g = Generate(100, 4, 1)
	g.Offsets[5] = g.Offsets[6] + 1 // non-monotone
	if g.Validate() == nil {
		t.Fatal("Validate accepted non-monotone offsets")
	}
	g = Generate(100, 4, 1)
	g.Offsets = g.Offsets[:50]
	if g.Validate() == nil {
		t.Fatal("Validate accepted truncated offsets")
	}
}
