// Package lud ports the Rodinia LU-decomposition benchmark: in-place
// factorization of a dense matrix into lower and upper triangular
// factors without pivoting. Each outer step k eliminates one column:
// a parallel loop scales the multipliers, a second parallel loop
// updates the trailing submatrix — two parallel loops with a
// dependency on the outer loop, whose shrinking triangular iteration
// space gives threads equal task counts but unequal work, exactly the
// imbalance the paper discusses for this application.
package lud

import (
	"math"

	"threading/internal/models"
)

func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// GenerateMatrix returns a deterministic, diagonally dominant n x n
// row-major matrix, so factorization without pivoting is stable —
// the same trick the Rodinia input generator uses.
func GenerateMatrix(n int, seed uint64) []float64 {
	a := make([]float64, n*n)
	st := seed
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			v := float64(splitmix64(&st)>>11)/float64(1<<53) - 0.5
			a[i*n+j] = v
			rowSum += math.Abs(v)
		}
		a[i*n+i] = rowSum + 1 // strict diagonal dominance
	}
	return a
}

// Seq factorizes a in place sequentially: afterwards the strict lower
// triangle holds L (unit diagonal implied) and the upper triangle
// holds U.
func Seq(a []float64, n int) {
	for k := 0; k < n; k++ {
		pivot := a[k*n+k]
		for i := k + 1; i < n; i++ {
			a[i*n+k] /= pivot
		}
		for i := k + 1; i < n; i++ {
			lik := a[i*n+k]
			rowK := a[k*n : k*n+n]
			rowI := a[i*n : i*n+n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= lik * rowK[j]
			}
		}
	}
}

// Parallel factorizes a in place under model m. Both per-step loops
// run over the shrinking range [k+1, n); the model's join provides
// the dependency between the multiplier and update phases and between
// outer steps.
func Parallel(m models.Model, a []float64, n int) {
	for k := 0; k < n; k++ {
		pivot := a[k*n+k]
		rows := n - k - 1
		if rows <= 0 {
			break
		}
		m.ParallelFor(rows, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				i := k + 1 + r
				a[i*n+k] /= pivot
			}
		})
		m.ParallelFor(rows, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				i := k + 1 + r
				lik := a[i*n+k]
				rowK := a[k*n : k*n+n]
				rowI := a[i*n : i*n+n]
				for j := k + 1; j < n; j++ {
					rowI[j] -= lik * rowK[j]
				}
			}
		})
	}
}

// Reconstruct multiplies the packed L and U factors back into a dense
// matrix, for verification: out[i][j] = sum_k L[i][k]*U[k][j].
func Reconstruct(lu []float64, n int) []float64 {
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			kmax := min(i, j)
			for k := 0; k < kmax; k++ {
				s += lu[i*n+k] * lu[k*n+j]
			}
			if i <= j {
				s += lu[i*n+j] // L[i][i] = 1 times U[i][j]
			} else {
				s += lu[i*n+j] * lu[j*n+j] // L[i][j] * U[j][j]
			}
			out[i*n+j] = s
		}
	}
	return out
}

// MaxError returns the largest absolute elementwise difference
// between a and b.
func MaxError(a, b []float64) float64 {
	var worst float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}
