package lud

import (
	"math"
	"testing"

	"threading/internal/models"
)

func TestGenerateDiagonallyDominant(t *testing.T) {
	const n = 50
	a := GenerateMatrix(n, 11)
	for i := 0; i < n; i++ {
		var off float64
		for j := 0; j < n; j++ {
			if j != i {
				off += math.Abs(a[i*n+j])
			}
		}
		if a[i*n+i] <= off {
			t.Fatalf("row %d not diagonally dominant: diag %g, off %g", i, a[i*n+i], off)
		}
	}
}

func TestSeqFactorizationReconstructs(t *testing.T) {
	const n = 60
	orig := GenerateMatrix(n, 21)
	a := make([]float64, len(orig))
	copy(a, orig)
	Seq(a, n)
	back := Reconstruct(a, n)
	if err := MaxError(back, orig); err > 1e-9 {
		t.Fatalf("reconstruction error %g", err)
	}
}

func TestSeqKnownSmall(t *testing.T) {
	// A = [[4,3],[6,3]] -> L = [[1,0],[1.5,1]], U = [[4,3],[0,-1.5]]
	a := []float64{4, 3, 6, 3}
	Seq(a, 2)
	want := []float64{4, 3, 1.5, -1.5}
	for i := range a {
		if math.Abs(a[i]-want[i]) > 1e-12 {
			t.Fatalf("lu = %v, want %v", a, want)
		}
	}
}

func TestParallelMatchesSeq(t *testing.T) {
	const n = 96
	orig := GenerateMatrix(n, 33)
	want := make([]float64, len(orig))
	copy(want, orig)
	Seq(want, n)
	for _, name := range models.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := models.MustNew(name, 4)
			defer m.Close()
			a := make([]float64, len(orig))
			copy(a, orig)
			Parallel(m, a, n)
			if err := MaxError(a, want); err > 1e-9 {
				t.Fatalf("max deviation from sequential factorization: %g", err)
			}
		})
	}
}

func TestParallelReconstructs(t *testing.T) {
	const n = 80
	orig := GenerateMatrix(n, 44)
	a := make([]float64, len(orig))
	copy(a, orig)
	m := models.MustNew(models.CilkSpawn, 4)
	defer m.Close()
	Parallel(m, a, n)
	if err := MaxError(Reconstruct(a, n), orig); err > 1e-9 {
		t.Fatalf("reconstruction error %g", err)
	}
}

func TestTinyMatrices(t *testing.T) {
	m := models.MustNew(models.OMPFor, 4)
	defer m.Close()
	for _, n := range []int{1, 2, 3} {
		orig := GenerateMatrix(n, uint64(n))
		a := make([]float64, len(orig))
		copy(a, orig)
		Parallel(m, a, n)
		if err := MaxError(Reconstruct(a, n), orig); err > 1e-12 {
			t.Fatalf("n=%d: reconstruction error %g", n, err)
		}
	}
}

func TestMaxError(t *testing.T) {
	if MaxError([]float64{1, 2, 3}, []float64{1, 5, 3}) != 3 {
		t.Fatal("MaxError wrong")
	}
	if MaxError(nil, nil) != 0 {
		t.Fatal("MaxError of empty should be 0")
	}
}
