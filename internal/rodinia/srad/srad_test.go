package srad

import (
	"math"
	"testing"

	"threading/internal/models"
)

func TestNewImageValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewImage(1,5) did not panic")
		}
	}()
	NewImage(1, 5)
}

func TestGenerateImageRange(t *testing.T) {
	im := GenerateImage(32, 48, 4)
	if im.Rows != 32 || im.Cols != 48 || len(im.Pix) != 32*48 {
		t.Fatalf("bad geometry: %dx%d, %d pixels", im.Rows, im.Cols, len(im.Pix))
	}
	for i, v := range im.Pix {
		if v < 1 || v > math.E {
			t.Fatalf("pixel %d = %g outside [1, e]", i, v)
		}
	}
	im2 := GenerateImage(32, 48, 4)
	for i := range im.Pix {
		if im.Pix[i] != im2.Pix[i] {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestClone(t *testing.T) {
	im := GenerateImage(8, 8, 1)
	cp := im.Clone()
	cp.Pix[0] = -1
	if im.Pix[0] == -1 {
		t.Fatal("Clone shares storage")
	}
}

func TestSeqSmoothsSpeckle(t *testing.T) {
	// Diffusion must reduce the image's variance.
	im := GenerateImage(64, 64, 7)
	before := variance(im)
	out := Seq(im, 0.5, 20)
	after := variance(out)
	if after >= before {
		t.Fatalf("variance did not decrease: %g -> %g", before, after)
	}
	for i, v := range out.Pix {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("pixel %d diverged", i)
		}
	}
}

func variance(im *Image) float64 {
	var sum, sum2 float64
	for _, v := range im.Pix {
		sum += v
		sum2 += v * v
	}
	n := float64(len(im.Pix))
	mean := sum / n
	return sum2/n - mean*mean
}

func TestSeqUniformImageFixedPoint(t *testing.T) {
	// A constant image has zero derivatives everywhere; diffusion
	// must leave it untouched (q0sqr is 0/0-free because variance=0
	// gives q0sqr=0... which divides by zero in the coefficient; the
	// Rodinia kernel has the same behaviour, so use a near-constant
	// image instead and require near-identity).
	im := NewImage(16, 16)
	for i := range im.Pix {
		im.Pix[i] = 2 + 1e-9*float64(i%3)
	}
	out := Seq(im, 0.5, 3)
	for i := range out.Pix {
		if math.Abs(out.Pix[i]-im.Pix[i]) > 1e-6 {
			t.Fatalf("pixel %d moved: %g -> %g", i, im.Pix[i], out.Pix[i])
		}
	}
}

func TestSeqDoesNotMutateInput(t *testing.T) {
	im := GenerateImage(16, 16, 2)
	orig := im.Clone()
	Seq(im, 0.5, 3)
	for i := range im.Pix {
		if im.Pix[i] != orig.Pix[i] {
			t.Fatal("Seq mutated its input")
		}
	}
}

func TestParallelMatchesSeq(t *testing.T) {
	im := GenerateImage(96, 80, 13)
	const lambda, iters = 0.5, 5
	want := Seq(im, lambda, iters)
	for _, name := range models.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := models.MustNew(name, 4)
			defer m.Close()
			got := Parallel(m, im, lambda, iters)
			for i := range want.Pix {
				// Parallel reductions reassociate the noise-statistic
				// sums, so allow small drift.
				if d := math.Abs(got.Pix[i] - want.Pix[i]); d > 1e-6 {
					t.Fatalf("pixel %d differs by %g", i, d)
				}
			}
		})
	}
}

func TestParallelZeroIters(t *testing.T) {
	im := GenerateImage(8, 8, 3)
	m := models.MustNew(models.OMPFor, 2)
	defer m.Close()
	out := Parallel(m, im, 0.5, 0)
	for i := range im.Pix {
		if out.Pix[i] != im.Pix[i] {
			t.Fatal("zero iterations changed the image")
		}
	}
}
