// Package srad ports the Rodinia SRAD benchmark (Speckle Reducing
// Anisotropic Diffusion), an image de-speckling method used on
// ultrasonic and radar imagery. Each iteration is (1) a reduction
// over the region of interest to estimate the noise statistic, (2) a
// stencil loop computing per-pixel diffusion coefficients, and (3) a
// second stencil loop applying the divergence update — dependent
// compute-intensive parallel phases, which is why the paper groups
// SRAD with LavaMD among the regular applications where the models
// perform closely.
package srad

import (
	"math"

	"threading/internal/models"
)

// Image is a rows x cols grayscale image in row-major order.
type Image struct {
	Rows, Cols int
	Pix        []float64
}

// NewImage allocates a zero image.
func NewImage(rows, cols int) *Image {
	if rows < 2 || cols < 2 {
		panic("srad: image must be at least 2x2")
	}
	return &Image{Rows: rows, Cols: cols, Pix: make([]float64, rows*cols)}
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	out := NewImage(im.Rows, im.Cols)
	copy(out.Pix, im.Pix)
	return out
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// GenerateImage produces the Rodinia input: random pixel values in
// [0, 255] passed through exp(v/255), mirroring the benchmark's
// pre-processing of its random input matrix.
func GenerateImage(rows, cols int, seed uint64) *Image {
	im := NewImage(rows, cols)
	st := seed
	for i := range im.Pix {
		v := 255 * float64(splitmix64(&st)>>11) / float64(1<<53)
		im.Pix[i] = math.Exp(v / 255)
	}
	return im
}

// iterBuffers holds the per-iteration scratch arrays (directional
// derivatives and diffusion coefficient), allocated once.
type iterBuffers struct {
	dN, dS, dW, dE, c []float64
}

func newBuffers(n int) *iterBuffers {
	return &iterBuffers{
		dN: make([]float64, n),
		dS: make([]float64, n),
		dW: make([]float64, n),
		dE: make([]float64, n),
		c:  make([]float64, n),
	}
}

// coeffRow computes derivatives and the diffusion coefficient for one
// row (Rodinia's first compute loop). q0sqr is the noise estimate of
// the current iteration.
func coeffRow(im *Image, b *iterBuffers, q0sqr float64, r int) {
	rows, cols := im.Rows, im.Cols
	J := im.Pix
	rn := r - 1
	if rn < 0 {
		rn = 0
	}
	rs := r + 1
	if rs > rows-1 {
		rs = rows - 1
	}
	for c := 0; c < cols; c++ {
		cw := c - 1
		if cw < 0 {
			cw = 0
		}
		ce := c + 1
		if ce > cols-1 {
			ce = cols - 1
		}
		k := r*cols + c
		jc := J[k]
		b.dN[k] = J[rn*cols+c] - jc
		b.dS[k] = J[rs*cols+c] - jc
		b.dW[k] = J[r*cols+cw] - jc
		b.dE[k] = J[r*cols+ce] - jc

		g2 := (b.dN[k]*b.dN[k] + b.dS[k]*b.dS[k] +
			b.dW[k]*b.dW[k] + b.dE[k]*b.dE[k]) / (jc * jc)
		l := (b.dN[k] + b.dS[k] + b.dW[k] + b.dE[k]) / jc
		num := 0.5*g2 - (1.0/16.0)*l*l
		den := 1 + 0.25*l
		qsqr := num / (den * den)
		den = (qsqr - q0sqr) / (q0sqr * (1 + q0sqr))
		cv := 1.0 / (1.0 + den)
		if cv < 0 {
			cv = 0
		} else if cv > 1 {
			cv = 1
		}
		b.c[k] = cv
	}
}

// updateRow applies the divergence update for one row (Rodinia's
// second compute loop).
func updateRow(im *Image, b *iterBuffers, lambda float64, r int) {
	rows, cols := im.Rows, im.Cols
	J := im.Pix
	rs := r + 1
	if rs > rows-1 {
		rs = rows - 1
	}
	for c := 0; c < cols; c++ {
		ce := c + 1
		if ce > cols-1 {
			ce = cols - 1
		}
		k := r*cols + c
		cN := b.c[k]
		cS := b.c[rs*cols+c]
		cW := b.c[k]
		cE := b.c[r*cols+ce]
		d := cN*b.dN[k] + cS*b.dS[k] + cW*b.dW[k] + cE*b.dE[k]
		J[k] += 0.25 * lambda * d
	}
}

// roiStats returns mean and variance-based q0sqr over the whole image
// (the benchmark uses a rectangular ROI; we use the full frame, as
// the Rodinia OpenMP version does with its default 0..rows ROI).
func roiStats(im *Image) float64 {
	var sum, sum2 float64
	for _, v := range im.Pix {
		sum += v
		sum2 += v * v
	}
	n := float64(len(im.Pix))
	mean := sum / n
	variance := (sum2 / n) - mean*mean
	return variance / (mean * mean)
}

// Seq runs iters diffusion iterations sequentially on a copy of im
// and returns the result.
func Seq(im *Image, lambda float64, iters int) *Image {
	out := im.Clone()
	b := newBuffers(len(out.Pix))
	for it := 0; it < iters; it++ {
		q0sqr := roiStats(out)
		for r := 0; r < out.Rows; r++ {
			coeffRow(out, b, q0sqr, r)
		}
		for r := 0; r < out.Rows; r++ {
			updateRow(out, b, lambda, r)
		}
	}
	return out
}

// Parallel runs the same iterations under model m: the ROI statistic
// is a ParallelReduce, the two stencil phases are ParallelFor over
// rows, with the model's joins enforcing the phase dependencies.
func Parallel(m models.Model, im *Image, lambda float64, iters int) *Image {
	out := im.Clone()
	b := newBuffers(len(out.Pix))
	for it := 0; it < iters; it++ {
		n := float64(len(out.Pix))
		sum := m.ParallelReduce(len(out.Pix), 0,
			func(lo, hi int, acc float64) float64 {
				for i := lo; i < hi; i++ {
					acc += out.Pix[i]
				}
				return acc
			}, func(a, c float64) float64 { return a + c })
		sum2 := m.ParallelReduce(len(out.Pix), 0,
			func(lo, hi int, acc float64) float64 {
				for i := lo; i < hi; i++ {
					acc += out.Pix[i] * out.Pix[i]
				}
				return acc
			}, func(a, c float64) float64 { return a + c })
		mean := sum / n
		variance := (sum2 / n) - mean*mean
		q0sqr := variance / (mean * mean)

		m.ParallelFor(out.Rows, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				coeffRow(out, b, q0sqr, r)
			}
		})
		m.ParallelFor(out.Rows, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				updateRow(out, b, lambda, r)
			}
		})
	}
	return out
}
