package lavamd

import (
	"math"
	"testing"

	"threading/internal/models"
)

func TestGenerateStructure(t *testing.T) {
	s := Generate(3, 17)
	if s.NumBoxes() != 27 {
		t.Fatalf("NumBoxes = %d, want 27", s.NumBoxes())
	}
	if s.NumParticles() != 27*ParticlesPerBox {
		t.Fatalf("NumParticles = %d", s.NumParticles())
	}
	// Center box of a 3^3 grid has itself + 26 neighbors.
	center := (1*3+1)*3 + 1
	if len(s.Neighbors[center]) != 27 {
		t.Fatalf("center box has %d neighbor entries, want 27", len(s.Neighbors[center]))
	}
	// Corner box: itself + 7.
	if len(s.Neighbors[0]) != 8 {
		t.Fatalf("corner box has %d neighbor entries, want 8", len(s.Neighbors[0]))
	}
	// Every neighbor list starts with the home box.
	for b, nbrs := range s.Neighbors {
		if nbrs[0] != int32(b) {
			t.Fatalf("box %d neighbor list starts with %d", b, nbrs[0])
		}
		seen := map[int32]bool{}
		for _, nb := range nbrs {
			if nb < 0 || int(nb) >= s.NumBoxes() {
				t.Fatalf("box %d has out-of-range neighbor %d", b, nb)
			}
			if seen[nb] {
				t.Fatalf("box %d lists neighbor %d twice", b, nb)
			}
			seen[nb] = true
		}
	}
}

func TestNeighborSymmetry(t *testing.T) {
	s := Generate(4, 5)
	adj := make(map[[2]int32]bool)
	for b, nbrs := range s.Neighbors {
		for _, nb := range nbrs[1:] {
			adj[[2]int32{int32(b), nb}] = true
		}
	}
	for k := range adj {
		if !adj[[2]int32{k[1], k[0]}] {
			t.Fatalf("adjacency %v not symmetric", k)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(2, 9)
	b := Generate(2, 9)
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] || a.Charges[i] != b.Charges[i] {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestSeqProducesFiniteNonzero(t *testing.T) {
	s := Generate(2, 1)
	out := Seq(s)
	var nonzero int
	for i, v := range out {
		for _, f := range [4]float64{v.V, v.X, v.Y, v.Z} {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				t.Fatalf("particle %d has non-finite accumulator", i)
			}
		}
		if v.V != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("all potentials zero — kernel did nothing")
	}
}

func TestSingleParticleSelfInteraction(t *testing.T) {
	// With one box, every particle interacts with all 100 in the box,
	// including itself; the self term has r2 = 2v - |p|^2. Just check
	// the kernel against a direct reimplementation for one particle.
	s := Generate(1, 3)
	out := Seq(s)
	i := 7
	pi := s.Positions[i]
	var want float64
	for j := 0; j < ParticlesPerBox; j++ {
		pj := s.Positions[j]
		r2 := pi.V + pj.V - (pi.X*pj.X + pi.Y*pj.Y + pi.Z*pj.Z)
		want += s.Charges[j] * math.Exp(-2*alpha*alpha*r2)
	}
	if math.Abs(out[i].V-want) > 1e-12*math.Abs(want) {
		t.Fatalf("potential = %g, want %g", out[i].V, want)
	}
}

func TestParallelMatchesSeq(t *testing.T) {
	s := Generate(3, 77)
	want := Seq(s)
	for _, name := range models.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := models.MustNew(name, 4)
			defer m.Close()
			got := Parallel(m, s)
			for i := range want {
				if d := math.Abs(got[i].V - want[i].V); d > 1e-12 {
					t.Fatalf("particle %d V differs by %g", i, d)
				}
				if got[i].X != want[i].X || got[i].Y != want[i].Y || got[i].Z != want[i].Z {
					t.Fatalf("particle %d force differs", i)
				}
			}
		})
	}
}

func TestGenerateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate(0) did not panic")
		}
	}()
	Generate(0, 1)
}
