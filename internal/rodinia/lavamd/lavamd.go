// Package lavamd ports the Rodinia LavaMD benchmark: particle
// potential and relocation computation in a 3D space partitioned into
// a cubic grid of boxes. For every box, forces on its particles are
// accumulated from the particles of the box itself and its (up to 26)
// neighbor boxes, under a cut-off potential. Work per box is uniform
// — the paper cites LavaMD among the applications where all models
// perform closely.
package lavamd

import (
	"math"

	"threading/internal/models"
)

// ParticlesPerBox matches the Rodinia NUMBER_PAR_PER_BOX constant.
const ParticlesPerBox = 100

// alpha is the Rodinia potential parameter (a2 = 2*alpha^2 in the
// kernel).
const alpha = 0.5

// Vec4 is a particle record: position (X, Y, Z) and charge V, matching
// Rodinia's FOUR_VECTOR.
type Vec4 struct {
	V, X, Y, Z float64
}

// Space is the boxed particle system.
type Space struct {
	BoxesPerDim int
	// Neighbors[b] lists the box indices adjacent to box b,
	// including b itself (Rodinia iterates self + neighbors).
	Neighbors [][]int32
	// Positions holds ParticlesPerBox records per box.
	Positions []Vec4
	// Charges holds one charge value per particle (Rodinia's qv).
	Charges []float64
}

// NumBoxes returns the total box count.
func (s *Space) NumBoxes() int { return s.BoxesPerDim * s.BoxesPerDim * s.BoxesPerDim }

// NumParticles returns the total particle count.
func (s *Space) NumParticles() int { return s.NumBoxes() * ParticlesPerBox }

func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func rand01(st *uint64) float64 {
	return float64(splitmix64(st)>>11) / float64(1<<53)
}

// Generate builds a deterministic boxed particle system with
// boxesPerDim^3 boxes, replicating the Rodinia initialization
// (uniform random positions and charges in (0, 1]).
func Generate(boxesPerDim int, seed uint64) *Space {
	if boxesPerDim < 1 {
		panic("lavamd: need at least one box per dimension")
	}
	nb := boxesPerDim * boxesPerDim * boxesPerDim
	s := &Space{
		BoxesPerDim: boxesPerDim,
		Neighbors:   make([][]int32, nb),
		Positions:   make([]Vec4, nb*ParticlesPerBox),
		Charges:     make([]float64, nb*ParticlesPerBox),
	}
	d := boxesPerDim
	idx := func(x, y, z int) int32 { return int32((z*d+y)*d + x) }
	for z := 0; z < d; z++ {
		for y := 0; y < d; y++ {
			for x := 0; x < d; x++ {
				b := idx(x, y, z)
				nbrs := []int32{b} // home box first, as in Rodinia
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							if dx == 0 && dy == 0 && dz == 0 {
								continue
							}
							nx, ny, nz := x+dx, y+dy, z+dz
							if nx < 0 || nx >= d || ny < 0 || ny >= d || nz < 0 || nz >= d {
								continue
							}
							nbrs = append(nbrs, idx(nx, ny, nz))
						}
					}
				}
				s.Neighbors[b] = nbrs
			}
		}
	}
	st := seed
	for i := range s.Positions {
		s.Positions[i] = Vec4{
			V: rand01(&st) + 0.1,
			X: rand01(&st) + 0.1,
			Y: rand01(&st) + 0.1,
			Z: rand01(&st) + 0.1,
		}
	}
	for i := range s.Charges {
		s.Charges[i] = rand01(&st) + 0.1
	}
	return s
}

// forcesForBox accumulates the Rodinia kernel for one home box into
// out (indexed like Positions).
func forcesForBox(s *Space, out []Vec4, b int) {
	a2 := 2 * alpha * alpha
	home := s.Positions[b*ParticlesPerBox : (b+1)*ParticlesPerBox]
	acc := out[b*ParticlesPerBox : (b+1)*ParticlesPerBox]
	for _, nb := range s.Neighbors[b] {
		remote := s.Positions[nb*ParticlesPerBox : (nb+1)*ParticlesPerBox]
		charges := s.Charges[nb*ParticlesPerBox : (nb+1)*ParticlesPerBox]
		for i := range home {
			pi := &home[i]
			ai := &acc[i]
			for j := range remote {
				pj := &remote[j]
				// r2 = pi.v + pj.v - dot(pi, pj): Rodinia's unusual
				// squared-distance surrogate.
				r2 := pi.V + pj.V - (pi.X*pj.X + pi.Y*pj.Y + pi.Z*pj.Z)
				u2 := a2 * r2
				vij := math.Exp(-u2)
				fs := 2 * vij
				dx := pi.X - pj.X
				dy := pi.Y - pj.Y
				dz := pi.Z - pj.Z
				fxij := fs * dx
				fyij := fs * dy
				fzij := fs * dz
				q := charges[j]
				ai.V += q * vij
				ai.X += q * fxij
				ai.Y += q * fyij
				ai.Z += q * fzij
			}
		}
	}
}

// Seq computes the potential/force accumulation for every box
// sequentially and returns the per-particle accumulators.
func Seq(s *Space) []Vec4 {
	out := make([]Vec4, len(s.Positions))
	for b := 0; b < s.NumBoxes(); b++ {
		forcesForBox(s, out, b)
	}
	return out
}

// Parallel computes the same accumulation under model m, parallel
// over home boxes (the Rodinia OpenMP parallelization).
func Parallel(m models.Model, s *Space) []Vec4 {
	out := make([]Vec4, len(s.Positions))
	m.ParallelFor(s.NumBoxes(), func(lo, hi int) {
		for b := lo; b < hi; b++ {
			forcesForBox(s, out, b)
		}
	})
	return out
}
