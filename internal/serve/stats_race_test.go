package serve

import (
	"sync"
	"testing"
)

// The peak-depth watermark reset must be atomic with concurrent
// admit/release traffic. The old read-then-Store reset could (a) lose
// a peak raised between the read and the write, and (b) store a stale
// depth below the live depth, making the watermark dip under what was
// actually in flight. This test pins the repaired Swap+re-raise: it
// holds a floor of admitted requests and hammers Stats(true) against
// admit/release churn — under -race for the memory model, with the
// floor assertion for the semantics.
func TestStatsPeakResetRace(t *testing.T) {
	s := newTestServer(t, Config{Model: "omp_for", Threads: 2, Queue: 64})

	// A held floor: these tokens stay admitted for the whole test, so
	// depth never drops below floorN and no correct watermark can
	// either.
	const floorN = 8
	for i := 0; i < floorN; i++ {
		if !s.admit() {
			t.Fatal("admit refused below queue capacity")
		}
	}
	defer func() {
		for i := 0; i < floorN; i++ {
			s.release()
		}
	}()

	const (
		churners = 4
		rounds   = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < churners; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if s.admit() {
					s.release()
				}
			}
		}()
	}

	for i := 0; i < rounds; i++ {
		st := s.Stats(true)
		if st.PeakDepth < floorN {
			t.Errorf("round %d: PeakDepth = %d fell below held floor %d", i, st.PeakDepth, floorN)
			break
		}
		if st.Depth < floorN {
			t.Errorf("round %d: Depth = %d fell below held floor %d", i, st.Depth, floorN)
			break
		}
	}
	close(stop)
	wg.Wait()

	// After the churn quiesces, a reset must land exactly on the held
	// floor — the reset actually resets.
	s.Stats(true)
	if st := s.Stats(false); st.PeakDepth != floorN {
		t.Errorf("post-churn reset PeakDepth = %d, want %d", st.PeakDepth, floorN)
	}
}

// Sequential semantics of resetPeak: the returned snapshot carries the
// pre-reset peak, and the stored watermark becomes the current depth.
func TestStatsPeakResetSemantics(t *testing.T) {
	s := newTestServer(t, Config{Model: "omp_for", Threads: 2, Queue: 16})

	for i := 0; i < 3; i++ {
		if !s.admit() {
			t.Fatal("admit refused")
		}
	}
	s.release() // depth 2, peak 3

	st := s.Stats(true)
	if st.PeakDepth != 3 {
		t.Errorf("reset returned PeakDepth %d, want pre-reset 3", st.PeakDepth)
	}
	if st := s.Stats(false); st.PeakDepth != 2 {
		t.Errorf("watermark after reset = %d, want current depth 2", st.PeakDepth)
	}
	for i := 0; i < 2; i++ {
		s.release()
	}
}
