package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"threading/internal/futures"
	"threading/internal/metrics"
	"threading/internal/sched"
)

// errBadRequest marks client errors (unknown kernel, malformed
// parameters): reported as 400, never counted as a runtime failure.
var errBadRequest = errors.New("bad request")

// Response is the JSON body of a successful kernel request.
type Response struct {
	Kernel string  `json:"kernel"`
	Result float64 `json:"result"`
	NS     int64   `json:"ns"`
	Ways   int     `json:"ways,omitempty"`
	Hedged bool    `json:"hedged,omitempty"`
	Winner int     `json:"winner,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// instrumented wraps a kernel handler with the service envelope:
// admission (shed with 429 when the bounded queue is full), the
// per-request deadline (?timeout_ms, default Config.Timeout) flowing
// into the executor's Ctx API, latency stamping, and counter upkeep.
// By the time a 504 is written the request's region has drained —
// ParallelForCtx does not return before its chunks stop — so the
// runtime is reusable immediately.
func (s *Server) instrumented(name string, fn func(ctx context.Context, r *http.Request) (Response, error)) http.Handler {
	// Telemetry series are resolved once, at registration; the request
	// path below touches them without registry lookups. Both stay nil
	// when metrics are off.
	var latency *metrics.Histogram
	var entered *metrics.ShardedCounter
	if s.registry != nil {
		latency = s.registry.Histogram("threadserve_request_latency_ns",
			"End-to-end request latency by handler, nanoseconds.",
			metrics.Label{Key: "handler", Value: name})
		entered = s.registry.ShardedCounter("threadserve_handler_requests_total",
			"Requests entering each handler (admitted only).",
			s.cfg.Threads, metrics.Label{Key: "handler", Value: name})
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.admit() {
			w.Header().Set("Retry-After", "0")
			writeJSON(w, http.StatusTooManyRequests,
				errorResponse{Error: "admission queue full: request shed"})
			return
		}
		defer s.release()

		timeout := s.cfg.Timeout
		if ms, ok, err := queryInt(r, "timeout_ms"); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		} else if ok && ms > 0 {
			timeout = time.Duration(ms) * time.Millisecond
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		// With tracing active, mint a request id and thread it through
		// the context: every runtime's Ctx entry point captures it into
		// its Region, and the workers stamp it into their span events —
		// the correlation traceview's per-request table is built from.
		// The id is echoed as X-Request-Id so a client can find its own
		// request in the trace.
		var rid int64
		if s.tracer != nil {
			rid = s.nextReq.Add(1)
			ctx = sched.WithRequestID(ctx, rid)
			w.Header().Set("X-Request-Id", strconv.FormatInt(rid, 10))
		}
		if entered != nil {
			// The id doubles as the spreading index across the padded
			// counter shards, so concurrent handlers don't contend on
			// one cache line.
			entered.Inc(int(rid))
		}

		start := time.Now()
		resp, err := fn(ctx, r)
		resp.NS = time.Since(start).Nanoseconds()
		if latency != nil {
			latency.Observe(resp.NS)
		}
		switch {
		case err == nil:
			s.completed.Add(1)
			writeJSON(w, http.StatusOK, resp)
		case errors.Is(err, errBadRequest):
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			s.timeouts.Add(1)
			s.failed.Add(1)
			writeJSON(w, http.StatusGatewayTimeout,
				errorResponse{Error: fmt.Sprintf("%s: deadline exceeded after %v (region drained)", name, timeout)})
		default:
			s.failed.Add(1)
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		}
	})
}

// queryInt parses an optional integer query parameter.
func queryInt(r *http.Request, key string) (int, bool, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return 0, false, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, false, fmt.Errorf("%w: %s=%q is not an integer", errBadRequest, key, v)
	}
	return n, true, nil
}

// parseKernelReq reads the shared kernel parameters.
func parseKernelReq(r *http.Request) (kernelReq, error) {
	req := kernelReq{kernel: r.URL.Query().Get("kernel")}
	if req.kernel == "" {
		req.kernel = "sum"
	}
	if n, ok, err := queryInt(r, "n"); err != nil {
		return req, err
	} else if ok {
		req.n = n
	}
	if rows, ok, err := queryInt(r, "rows"); err != nil {
		return req, err
	} else if ok {
		req.rows = rows
	}
	return req, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"model":   s.cfg.Model,
		"threads": s.cfg.Threads,
		"queue":   s.cfg.Queue,
		"kernels": Kernels(),
	})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats(r.URL.Query().Get("reset-peak") != ""))
}

// handleRun executes one kernel under the request deadline.
func (s *Server) handleRun(ctx context.Context, r *http.Request) (Response, error) {
	req, err := parseKernelReq(r)
	if err != nil {
		return Response{}, err
	}
	if _, err := s.work.clamp(req); err != nil {
		return Response{}, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	v, err := s.run(ctx, req)
	return Response{Kernel: req.kernel, Result: v}, err
}

// handleFanout forks a sum into ?ways= concurrent sub-requests — one
// future per part, joined with WhenAll (the golang-restclient
// ForkJoin shape: launch everything, then read every response). Each
// part is an independent executor submission, so parts of one request
// compete with other requests under the same balancer/steal policy.
func (s *Server) handleFanout(ctx context.Context, r *http.Request) (Response, error) {
	ways := 4
	if k, ok, err := queryInt(r, "ways"); err != nil {
		return Response{}, err
	} else if ok {
		if k < 1 || k > 64 {
			return Response{}, fmt.Errorf("%w: ways=%d out of [1, 64]", errBadRequest, k)
		}
		ways = k
	}
	n := s.work.n
	fs := make([]*futures.Future[float64], ways)
	for i := 0; i < ways; i++ {
		lo, hi := i*n/ways, (i+1)*n/ways
		fs[i] = futures.Async(futures.LaunchAsync, func() (float64, error) {
			return s.sumRange(ctx, lo, hi)
		})
	}
	//threadvet:ignore ctxdrop drain on purpose: every sub-request observes ctx at chunk boundaries, so WhenAll settles promptly on expiry and no future outlives the handler (GetCtx would abandon live parts)
	parts, err := futures.WhenAll(fs...).Get()
	if err != nil {
		return Response{}, err
	}
	var total float64
	for _, p := range parts {
		total += p
	}
	return Response{Kernel: "sum", Result: total, Ways: ways}, nil
}

// handleHedged runs one kernel with a hedged duplicate: if the
// primary has not finished within ?hedge_ms (default Config.Hedge),
// a duplicate launches and the first to finish wins; the loser is
// canceled and drained before the response is written.
func (s *Server) handleHedged(ctx context.Context, r *http.Request) (Response, error) {
	req, err := parseKernelReq(r)
	if err != nil {
		return Response{}, err
	}
	if _, err := s.work.clamp(req); err != nil {
		return Response{}, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	delay := s.cfg.Hedge
	if ms, ok, err := queryInt(r, "hedge_ms"); err != nil {
		return Response{}, err
	} else if ok {
		delay = time.Duration(ms) * time.Millisecond
	}
	res, err := futures.HedgeCtx(ctx, delay, func(hctx context.Context) (float64, error) {
		return s.run(hctx, req)
	})
	if res.Hedged {
		s.hedges.Add(1)
		if res.Winner == 1 {
			s.hedgeWins.Add(1)
		}
	}
	if err != nil {
		return Response{}, err
	}
	return Response{Kernel: req.kernel, Result: res.Value, Hedged: res.Hedged, Winner: res.Winner}, nil
}
